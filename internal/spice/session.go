package spice

import "math"

// Session is the batch-reuse entry point of the solver: it elaborates
// a circuit ONCE — interned node indices, MNA dimensions, the dense
// Jacobian slab — and then supports any number of parameter
// perturbations and DC re-solves with zero steady-state allocations.
// It exists for workloads that solve the same topology thousands of
// times with slightly different device parameters (Monte-Carlo yield
// under Vth/β variation), where per-sample re-elaboration through
// New/M/V plus a fresh system would dominate the run; the split
// mirrors logicsim's Reset/Rerun netlist reuse from the fault-sim
// batch path.
//
// A Session owns its Circuit's mutable device parameters: Perturb
// rewrites them in place, so a Circuit must not be shared between
// Sessions, and per-worker parallelism means one Circuit + Session
// per worker. Auto-added device capacitances (Circuit.M) stay at
// their nominal values under Perturb; they do not enter DC solves.
type Session struct {
	c   *Circuit
	sys *system
	v   []float64
	nom []nomParams // per-MOSFET nominal VT0/KP snapshot
}

// nomParams is the elaboration-time parameter snapshot Perturb
// deviates from, so perturbations are absolute against nominal rather
// than cumulative.
type nomParams struct{ vt0, kp float64 }

// NewSession elaborates c. Construction errors recorded by the fluent
// builders surface here, exactly as OP/Transient would surface them.
func NewSession(c *Circuit) (*Session, error) {
	if c.err != nil {
		return nil, c.err
	}
	s := &Session{c: c, sys: newSystem(c)}
	s.v = make([]float64, s.sys.dim)
	s.nom = make([]nomParams, len(c.mos))
	for i := range c.mos {
		s.nom[i] = nomParams{vt0: c.mos[i].p.VT0, kp: c.mos[i].p.KP}
	}
	return s, nil
}

// Dim is the solution-vector length: node count plus source count.
func (s *Session) Dim() int { return s.sys.dim }

// Devices returns how many MOSFETs the circuit holds, indexable by
// the order of the Circuit.M calls that built it.
func (s *Session) Devices() int { return len(s.c.mos) }

// DeviceName returns MOSFET i's name from elaboration.
func (s *Session) DeviceName(i int) string { return s.c.mos[i].name }

// Nominal returns MOSFET i's elaboration-time threshold voltage and
// transconductance.
func (s *Session) Nominal(i int) (vt0, kp float64) {
	return s.nom[i].vt0, s.nom[i].kp
}

// Perturb sets MOSFET i's parameters relative to nominal: threshold
// VT0 = nominal + dVT0, transconductance KP = nominal × kpScale.
// Perturbations are absolute against the elaboration snapshot (never
// cumulative), so a sample loop needs no balancing Reset between
// samples as long as it writes every varied device each time.
func (s *Session) Perturb(i int, dVT0, kpScale float64) {
	m := &s.c.mos[i]
	m.p.VT0 = s.nom[i].vt0 + dVT0
	m.p.KP = s.nom[i].kp * kpScale
}

// Reset restores every device to its nominal parameters.
func (s *Session) Reset() {
	for i := range s.c.mos {
		m := &s.c.mos[i]
		m.p.VT0 = s.nom[i].vt0
		m.p.KP = s.nom[i].kp
	}
}

// NodeIndex resolves a node name to its slot in Solution (-1 for
// ground or unknown names).
func (s *Session) NodeIndex(name string) int { return s.c.NodeIndex(name) }

// SolveFrom runs the DC Newton solve starting from the given initial
// guess (nil means all zeros; shorter slices seed a prefix). The
// initial guess decides which equilibrium a bistable circuit lands
// in, and making it explicit keeps session re-solves bit-identical to
// fresh-elaboration solves from the same guess — the differential
// contract the reuse tests pin. Zero allocations in steady state.
func (s *Session) SolveFrom(init []float64) error {
	n := copy(s.v, init)
	for i := n; i < len(s.v); i++ {
		s.v[i] = 0
	}
	return s.sys.newton(s.v, nil, 0, 0)
}

// Solution exposes the live solution vector (node voltages then
// source branch currents). It is valid until the next SolveFrom;
// callers that need to keep it must copy.
func (s *Session) Solution() []float64 { return s.v }

// At returns the solved voltage of a named node (NaN for names the
// circuit never interned; 0 for ground).
func (s *Session) At(name string) float64 {
	i := s.c.NodeIndex(name)
	if i < 0 {
		if _, ok := s.c.nodeIdx[name]; ok {
			return 0 // ground alias
		}
		return math.NaN()
	}
	return s.v[i]
}

// OPInto solves the operating point from a zero guess and fills the
// result map, preserving the historical OP contract on top of the
// reusable machinery.
func (s *Session) opInto(out map[string]float64) error {
	if err := s.SolveFrom(nil); err != nil {
		return err
	}
	for i, name := range s.c.nodes {
		out[name] = s.v[i]
	}
	return nil
}

// OP computes the DC operating point and returns node voltages by
// name. One-shot convenience over NewSession + SolveFrom.
func (c *Circuit) OP() (map[string]float64, error) {
	s, err := NewSession(c)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(c.nodes))
	if err := s.opInto(out); err != nil {
		return nil, err
	}
	return out, nil
}
