package spice

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/tech"
)

// BalancePWidth returns the PMOS width that balances the rise and fall
// propagation delays of an inverter with the given NMOS width, found
// by transient bisection around the analytic mobility-ratio seed. This
// is the "automatic N/P sizing for balanced rise and fall times" the
// paper attributes to BISRAMGEN's built-in SPICE access.
//
// Widths and lengths are in metres; cload is the external load in
// farads.
func BalancePWidth(p *tech.Process, wn, l, cload float64) (float64, error) {
	seed := wn * p.BetaRatio()
	lo, hi := seed*0.3, seed*3.0
	skewLo, err := inverterSkew(p, wn, lo, l, cload)
	if err != nil {
		return 0, err
	}
	skewHi, err := inverterSkew(p, wn, hi, l, cload)
	if err != nil {
		return 0, err
	}
	if skewLo*skewHi > 0 {
		// No sign change: return the analytic seed as best effort.
		return seed, nil
	}
	for i := 0; i < 30; i++ {
		mid := (lo + hi) / 2
		s, err := inverterSkew(p, wn, mid, l, cload)
		if err != nil {
			return 0, err
		}
		if s == 0 || (hi-lo)/mid < 1e-3 {
			return mid, nil
		}
		if s*skewLo > 0 {
			lo, skewLo = mid, s
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// inverterSkew returns riseDelay - fallDelay for an inverter with the
// given device widths driving cload.
func inverterSkew(p *tech.Process, wn, wp, l, cload float64) (float64, error) {
	rise, fall, err := InverterDelays(p, wn, wp, l, cload)
	if err != nil {
		return 0, err
	}
	return rise - fall, nil
}

// InverterDelays measures the output-rising and output-falling 50/50
// propagation delays of a CMOS inverter under a fast input step.
// InverterDelays is InverterDelaysCtx with a background context.
func InverterDelays(p *tech.Process, wn, wp, l, cload float64) (rise, fall float64, err error) {
	return InverterDelaysCtx(context.Background(), p, wn, wp, l, cload)
}

// InverterDelaysCtx is InverterDelays under a context: the two
// transient simulations run on the caller's context, so deadlines
// bound them and an attached obs.Trace records their spans.
func InverterDelaysCtx(ctx context.Context, p *tech.Process, wn, wp, l, cload float64) (rise, fall float64, err error) {
	tstop := 8e-9
	edge := 2e-9
	slew := 50e-12
	build := func(up bool) *Circuit {
		c := New()
		c.V("vdd", "vdd", DC(p.VDD))
		var wave Waveform
		if up {
			wave = Step(0, p.VDD, edge, slew)
		} else {
			wave = Step(p.VDD, 0, edge, slew)
		}
		c.V("vin", "in", wave)
		c.M("mn", "out", "in", "0", tech.NMOS, wn, l, p)
		c.M("mp", "out", "in", "vdd", tech.PMOS, wp, l, p)
		c.C("out", "0", cload)
		return c
	}
	// Input rising -> output falls.
	res, err := build(true).TransientCtx(ctx, tstop, 5e-12)
	if err != nil {
		return 0, 0, fmt.Errorf("fall sim: %w", err)
	}
	fall, err = res.PropDelay("in", "out", p.VDD, edge)
	if err != nil {
		return 0, 0, fmt.Errorf("fall measure: %w", err)
	}
	// Input falling -> output rises.
	res, err = build(false).TransientCtx(ctx, tstop, 5e-12)
	if err != nil {
		return 0, 0, fmt.Errorf("rise sim: %w", err)
	}
	rise, err = res.PropDelay("in", "out", p.VDD, edge)
	if err != nil {
		return 0, 0, fmt.Errorf("rise measure: %w", err)
	}
	return rise, fall, nil
}

// Deck renders the circuit as a SPICE input deck, the simulation-model
// export format BISRAMGEN provides alongside layouts.
func (c *Circuit) Deck(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "* %s\n", title)
	name := func(i int) string {
		if i < 0 {
			return "0"
		}
		return c.nodes[i]
	}
	for i, r := range c.res {
		fmt.Fprintf(&b, "R%d %s %s %.6g\n", i, name(r.a), name(r.b), r.r)
	}
	for i, cp := range c.caps {
		fmt.Fprintf(&b, "C%d %s %s %.6g\n", i, name(cp.a), name(cp.b), cp.c)
	}
	for _, m := range c.mos {
		model := "NMOS1"
		if m.typ == tech.PMOS {
			model = "PMOS1"
		}
		fmt.Fprintf(&b, "M%s %s %s %s %s %s W=%.4gu L=%.4gu\n",
			m.name, name(m.d), name(m.g), name(m.s), name(m.s), model, m.w*1e6, m.l*1e6)
	}
	for _, v := range c.vsrc {
		switch w := v.wave.(type) {
		case DC:
			fmt.Fprintf(&b, "V%s %s 0 DC %.4g\n", v.name, name(v.a), float64(w))
		case PWL:
			fmt.Fprintf(&b, "V%s %s 0 PWL(", v.name, name(v.a))
			for i := range w.T {
				if i > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%.4g %.4g", w.T[i], w.Y[i])
			}
			b.WriteString(")\n")
		default:
			fmt.Fprintf(&b, "V%s %s 0 DC 0\n", v.name, name(v.a))
		}
	}
	b.WriteString(".end\n")
	return b.String()
}
