package spice

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/tech"
)

func TestPWL(t *testing.T) {
	w := PWL{T: []float64{0, 1, 2}, Y: []float64{0, 10, 10}}
	cases := []struct{ t, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 5}, {1, 10}, {1.5, 10}, {3, 10},
	}
	for _, c := range cases {
		if got := w.V(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("V(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	if (PWL{}).V(5) != 0 {
		t.Fatal("empty PWL should be 0")
	}
}

func TestResistorDividerOP(t *testing.T) {
	c := New()
	c.V("v1", "a", DC(10))
	c.R("a", "b", 1000)
	c.R("b", "0", 3000)
	op, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op["b"]-7.5) > 1e-3 {
		t.Fatalf("divider voltage = %g, want 7.5", op["b"])
	}
}

func TestRCTransient(t *testing.T) {
	// RC charge: tau = 1k * 1n = 1us; at t=tau, v = 0.632*V.
	c := New()
	c.V("v1", "in", Step(0, 1, 0, 1e-9))
	c.R("in", "out", 1000)
	c.C("out", "0", 1e-9)
	res, err := c.Transient(5e-6, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	got := res.At("out", 1e-6)
	if math.Abs(got-0.632) > 0.02 {
		t.Fatalf("RC at tau = %g, want ~0.632", got)
	}
	if v := res.At("out", 5e-6); v < 0.99 {
		t.Fatalf("RC should settle near 1, got %g", v)
	}
}

func TestInverterDC(t *testing.T) {
	p := tech.CDA07
	l := float64(p.Feature) * 1e-9
	for _, in := range []float64{0, p.VDD} {
		c := New()
		c.V("vdd", "vdd", DC(p.VDD))
		c.V("vin", "in", DC(in))
		c.M("mn", "out", "in", "0", tech.NMOS, 2e-6, l, p)
		c.M("mp", "out", "in", "vdd", tech.PMOS, 4e-6, l, p)
		op, err := c.OP()
		if err != nil {
			t.Fatal(err)
		}
		want := p.VDD
		if in > p.VDD/2 {
			want = 0
		}
		if math.Abs(op["out"]-want) > 0.05 {
			t.Fatalf("inverter(%g) out = %g, want %g", in, op["out"], want)
		}
	}
}

func TestInverterTransientDelaysPositive(t *testing.T) {
	p := tech.CDA07
	l := float64(p.Feature) * 1e-9
	rise, fall, err := InverterDelays(p, 2e-6, 4e-6, l, 50e-15)
	if err != nil {
		t.Fatal(err)
	}
	if rise <= 0 || fall <= 0 {
		t.Fatalf("non-positive delays: rise=%g fall=%g", rise, fall)
	}
	// Sub-micron inverter with 50fF load: delays should be well under 5ns.
	if rise > 5e-9 || fall > 5e-9 {
		t.Fatalf("implausibly slow: rise=%g fall=%g", rise, fall)
	}
}

func TestBalancePWidth(t *testing.T) {
	p := tech.CDA07
	l := float64(p.Feature) * 1e-9
	wn := 2e-6
	wp, err := BalancePWidth(p, wn, l, 50e-15)
	if err != nil {
		t.Fatal(err)
	}
	if wp <= wn {
		t.Fatalf("balanced PMOS should be wider than NMOS (mobility): wp=%g wn=%g", wp, wn)
	}
	rise, fall, err := InverterDelays(p, wn, wp, l, 50e-15)
	if err != nil {
		t.Fatal(err)
	}
	skew := math.Abs(rise-fall) / math.Max(rise, fall)
	if skew > 0.10 {
		t.Fatalf("balance failed: rise=%g fall=%g skew=%.1f%%", rise, fall, skew*100)
	}
}

func TestMOSCutoff(t *testing.T) {
	m := mosfet{typ: tech.NMOS, w: 1e-6, l: 0.5e-6,
		p: tech.CDA07.MOS(tech.NMOS)}
	i, _, _ := m.ids(5, 0, 0)
	if i != 0 {
		t.Fatalf("cutoff current = %g", i)
	}
	// Saturation current positive and increasing with Vgs.
	i1, _, _ := m.ids(5, 2, 0)
	i2, _, _ := m.ids(5, 3, 0)
	if !(i2 > i1 && i1 > 0) {
		t.Fatalf("saturation ordering broken: %g %g", i1, i2)
	}
	// Symmetric: swapping drain and source negates the current.
	ia, _, _ := m.ids(0, 2, 5)
	ib, _, _ := m.ids(5, 2, 0)
	// With Vs=5 the device sees Vgs=-3: cutoff; not a pure mirror.
	_ = ia
	_ = ib
	// True symmetry check at equal bias: Ids(vd,vg,vs) = -Ids(vs,vg,vd).
	x, _, _ := m.ids(3, 4, 1)
	y, _, _ := m.ids(1, 4, 3)
	if math.Abs(x+y) > 1e-12 {
		t.Fatalf("source/drain symmetry broken: %g vs %g", x, y)
	}
}

func TestPMOSPolarity(t *testing.T) {
	m := mosfet{typ: tech.PMOS, w: 1e-6, l: 0.5e-6, p: tech.CDA07.MOS(tech.PMOS)}
	// PMOS with source at 5V, gate 0, drain 0: conducts, current flows
	// s->d i.e. ids (d->s) negative.
	i, _, _ := m.ids(0, 0, 5)
	if i >= 0 {
		t.Fatalf("PMOS conduction direction wrong: %g", i)
	}
	// Gate at VDD: off.
	i, _, _ = m.ids(0, 5, 5)
	if i != 0 {
		t.Fatalf("PMOS should be off: %g", i)
	}
}

func TestElmore(t *testing.T) {
	// Single stage: delay = R*C.
	s := &RCStage{R: 1000, C: 1e-12}
	if d := ElmoreDelay(s); math.Abs(d-1e-9) > 1e-15 {
		t.Fatalf("single-stage Elmore = %g", d)
	}
	// Two-stage ladder: R1*(C1+C2) + R2*C2.
	lad := &RCStage{R: 1000, C: 1e-12, Children: []*RCStage{{R: 2000, C: 3e-12}}}
	want := 1000*(1e-12+3e-12) + 2000*3e-12
	if d := ElmoreDelay(lad, 0); math.Abs(d-want) > 1e-15 {
		t.Fatalf("ladder Elmore = %g, want %g", d, want)
	}
	// Branch: delay to leaf 0 unaffected by sibling R, affected by sibling C.
	tree := &RCStage{R: 100, C: 0, Children: []*RCStage{
		{R: 500, C: 1e-12},
		{R: 9999, C: 2e-12},
	}}
	want = 100*(3e-12) + 500*1e-12
	if d := ElmoreDelay(tree, 0); math.Abs(d-want) > 1e-18 {
		t.Fatalf("tree Elmore = %g, want %g", d, want)
	}
}

func TestWireRC(t *testing.T) {
	r, c := WireRC(1e-3, 1e-6, 0.05, 1.5e-5, 3.0e-11)
	if math.Abs(r-50) > 1e-9 {
		t.Fatalf("wire R = %g, want 50", r)
	}
	wantC := 1.5e-5*1e-3*1e-6 + 2*3.0e-11*1e-3
	if math.Abs(c-wantC) > 1e-20 {
		t.Fatalf("wire C = %g, want %g", c, wantC)
	}
	if r, c := WireRC(1, 0, 1, 1, 1); r != 0 || c != 0 {
		t.Fatal("zero-width wire should be 0,0")
	}
}

func TestDeckExport(t *testing.T) {
	p := tech.CDA07
	c := New()
	c.V("vdd", "vdd", DC(5))
	c.V("vin", "in", Step(0, 5, 1e-9, 0.1e-9))
	c.M("mn", "out", "in", "0", tech.NMOS, 2e-6, 0.7e-6, p)
	c.R("out", "0", 10000)
	deck := c.Deck("test inverter")
	for _, want := range []string{"* test inverter", "Mmn out in 0 0 NMOS1", "PWL(", ".end"} {
		if !strings.Contains(deck, want) {
			t.Errorf("deck missing %q:\n%s", want, deck)
		}
	}
}

func TestCrossTimeErrors(t *testing.T) {
	c := New()
	c.V("v", "a", DC(1))
	c.R("a", "0", 100)
	res, err := c.Transient(1e-9, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.CrossTime("a", 5, true, 0); err == nil {
		t.Fatal("expected no-crossing error")
	}
	if _, err := res.CrossTime("missing", 0.5, true, 0); err == nil {
		t.Fatal("expected missing-node error")
	}
}

func TestSourceChargeCVCheck(t *testing.T) {
	// Charging a 1 nF cap to 1 V through a resistor must pull Q = C*V
	// from the source (plus resistor losses are energy, not charge).
	c := New()
	c.V("vs", "in", Step(0, 1, 1e-9, 1e-10))
	c.R("in", "out", 1000)
	c.C("out", "0", 1e-9)
	res, err := c.Transient(10e-6, 2e-8)
	if err != nil {
		t.Fatal(err)
	}
	q, err := res.SourceCharge("vs", 0, 10e-6)
	if err != nil {
		t.Fatal(err)
	}
	want := 1e-9 * 1.0
	if math.Abs(q-want)/want > 0.05 {
		t.Fatalf("delivered charge %g, want ~%g (C*V)", q, want)
	}
	if _, err := res.SourceCharge("nope", 0, 1); err == nil {
		t.Fatal("missing source accepted")
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 1}, {1, 1}}
	b := []float64{1, 2}
	if col := solveLinear(a, b); col < 0 {
		t.Fatal("singular matrix should fail")
	}
}

// Property: PWL interpolation stays within the envelope of its knots.
func TestQuickPWLEnvelope(t *testing.T) {
	f := func(y0, y1, y2 float64, tf float64) bool {
		if math.IsNaN(y0) || math.IsNaN(y1) || math.IsNaN(y2) || math.IsNaN(tf) {
			return true
		}
		y0, y1, y2 = math.Mod(y0, 100), math.Mod(y1, 100), math.Mod(y2, 100)
		w := PWL{T: []float64{0, 1, 2}, Y: []float64{y0, y1, y2}}
		tt := math.Mod(math.Abs(tf), 3)
		v := w.V(tt)
		lo := math.Min(y0, math.Min(y1, y2))
		hi := math.Max(y0, math.Max(y1, y2))
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Elmore delay is monotone in every R and C.
func TestQuickElmoreMonotone(t *testing.T) {
	f := func(r1, r2, c1, c2 uint16) bool {
		R1, R2 := float64(r1)+1, float64(r2)+1
		C1, C2 := float64(c1)+1, float64(c2)+1
		base := ElmoreDelay(&RCStage{R: R1, C: C1, Children: []*RCStage{{R: R2, C: C2}}}, 0)
		moreR := ElmoreDelay(&RCStage{R: R1 * 2, C: C1, Children: []*RCStage{{R: R2, C: C2}}}, 0)
		moreC := ElmoreDelay(&RCStage{R: R1, C: C1, Children: []*RCStage{{R: R2, C: C2 * 2}}}, 0)
		return moreR > base && moreC > base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
