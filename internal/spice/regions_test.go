package spice

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cerr"
	"repro/internal/tech"
)

// TestMOSRegionContinuity probes the level-1 model across the
// linear/saturation boundary: current and its numeric derivative must
// be continuous (the Newton solver depends on it).
func TestMOSRegionContinuity(t *testing.T) {
	m := mosfet{typ: tech.NMOS, w: 2e-6, l: 0.7e-6, p: tech.CDA07.MOS(tech.NMOS)}
	vgs := 2.5
	vdsat := vgs - m.p.VT0
	below, _, _ := m.ids(vdsat-1e-6, vgs, 0)
	above, _, _ := m.ids(vdsat+1e-6, vgs, 0)
	if rel := math.Abs(above-below) / above; rel > 1e-3 {
		t.Fatalf("current discontinuity at pinch-off: %g vs %g", below, above)
	}
	// Monotone in Vds across the boundary.
	prev := -1.0
	for vds := 0.0; vds <= 5; vds += 0.05 {
		i, _, _ := m.ids(vds, vgs, 0)
		if i < prev-1e-12 {
			t.Fatalf("Ids not monotone in Vds at %g", vds)
		}
		prev = i
	}
}

// TestNMOSPassGateDegradedHigh reproduces the textbook pass-gate
// behaviour the 6T cell depends on: an NMOS passing a high level
// stops a threshold below the gate drive.
func TestNMOSPassGateDegradedHigh(t *testing.T) {
	p := tech.CDA07
	l := float64(p.Feature) * 1e-9
	c := New()
	c.V("vdd", "vdd", DC(p.VDD))
	c.V("vg", "g", DC(p.VDD))
	c.M("mpass", "vdd", "g", "out", tech.NMOS, 2e-6, l, p)
	c.C("out", "0", 10e-15)
	res, err := c.Transient(20e-9, 20e-12)
	if err != nil {
		t.Fatal(err)
	}
	final := res.At("out", 20e-9)
	want := p.VDD - p.NMOS.VT0
	if math.Abs(final-want) > 0.35 {
		t.Fatalf("pass-gate high = %.2f V, want ~VDD-VT = %.2f V", final, want)
	}
}

// TestRingOscillatorFrequency builds a 3-stage ring and checks it
// oscillates with a period in a plausible band for the process.
func TestRingOscillatorFrequency(t *testing.T) {
	p := tech.CDA07
	l := float64(p.Feature) * 1e-9
	wn, wp := 2e-6, 5e-6
	c := New()
	c.V("vdd", "vdd", DC(p.VDD))
	nodes := []string{"a", "b", "cc"}
	for i := range nodes {
		in := nodes[i]
		out := nodes[(i+1)%3]
		c.M("mn"+in, out, in, "0", tech.NMOS, wn, l, p)
		c.M("mp"+in, out, in, "vdd", tech.PMOS, wp, l, p)
		c.C(out, "0", 15e-15)
	}
	// Kick-start: a brief pulse on node a.
	c.R("kick", "a", 10000)
	c.V("vk", "kick", PWL{T: []float64{0, 1e-10, 2e-9, 2.1e-9}, Y: []float64{5, 5, 5, 0}})
	res, err := c.Transient(30e-9, 10e-12)
	if err != nil {
		t.Fatal(err)
	}
	// Count rising crossings of mid-rail on node b after startup.
	half := p.VDD / 2
	crossings := 0
	tAfter := 5e-9
	for {
		tc, err := res.CrossTime("b", half, true, tAfter)
		if err != nil {
			break
		}
		crossings++
		tAfter = tc + 1e-11
		if crossings > 200 {
			break
		}
	}
	if crossings < 3 {
		t.Fatalf("ring did not oscillate (%d rising crossings)", crossings)
	}
}

func TestStepWaveformShape(t *testing.T) {
	w := Step(0, 5, 1e-9, 0.2e-9)
	if w.V(0) != 0 || w.V(0.9e-9) != 0 {
		t.Fatal("pre-edge value wrong")
	}
	if math.Abs(w.V(1.1e-9)-2.5) > 1e-9 {
		t.Fatalf("mid-slew value %g", w.V(1.1e-9))
	}
	if w.V(2e-9) != 5 {
		t.Fatal("post-edge value wrong")
	}
}

func TestTransientRejectsBadParams(t *testing.T) {
	c := New()
	c.V("v", "a", DC(1))
	c.R("a", "0", 100)
	if _, err := c.Transient(0, 1e-9); err == nil {
		t.Fatal("zero tstop accepted")
	}
	if _, err := c.Transient(1e-9, 0); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestBadElementsAreTypedErrors(t *testing.T) {
	c := New()
	c.R("a", "b", -5)
	if err := c.Err(); err == nil {
		t.Error("non-positive resistor accepted")
	} else if !errors.Is(err, cerr.ErrNetlist) {
		t.Errorf("resistor error must be ErrNetlist, got %v", err)
	}
	c2 := New()
	c2.C("a", "b", -1e-12)
	if c2.Err() == nil {
		t.Error("negative capacitor accepted")
	}
	c3 := New()
	c3.C("a", "b", math.NaN())
	if c3.Err() == nil {
		t.Error("NaN capacitor accepted")
	}
	// A failed netlist refuses to simulate, with the construction error.
	if _, err := c3.OP(); err == nil || !errors.Is(err, cerr.ErrNetlist) {
		t.Errorf("OP on failed netlist must return ErrNetlist, got %v", err)
	}
}
