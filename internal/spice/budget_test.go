package spice

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/cerr"
	"repro/internal/tech"
)

// rcCircuit builds a small RC charging circuit that is cheap per step,
// so the transient budget is dominated by the step count.
func rcCircuit() *Circuit {
	p := tech.CDA07
	ckt := New()
	ckt.V("vin", "in", Step(0, p.VDD, 1e-9, 50e-12))
	ckt.R("in", "out", 10e3)
	ckt.C("out", "0", 1e-12)
	return ckt
}

// TestTransientCtxDeadline runs a step-heavy transient under a 1 ms
// wall-clock deadline: it must stop promptly with ERR_BUDGET_EXCEEDED
// and return the partial waveform computed so far.
func TestTransientCtxDeadline(t *testing.T) {
	ckt := rcCircuit()
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	// ~2M steps: far more than 1 ms of work.
	res, err := ckt.TransientCtx(ctx, 2e-6, 1e-12)
	elapsed := time.Since(start)
	if !errors.Is(err, cerr.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("transient did not stop promptly: %v", elapsed)
	}
	if res == nil || len(res.Times) == 0 {
		t.Fatal("no partial waveform returned")
	}
	if last := res.Times[len(res.Times)-1]; !(last < 2e-6) {
		t.Fatalf("partial result claims full run (t=%g)", last)
	}
}

// TestTransientStepCap rejects runs whose step count exceeds the
// static budget before any work happens.
func TestTransientStepCap(t *testing.T) {
	ckt := rcCircuit()
	_, err := ckt.Transient(1, 1e-12) // 1e12 steps
	if !errors.Is(err, cerr.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}

// TestTransientRejectsNonFiniteParams checks the NaN/Inf/zero guards on
// the public simulation entry point.
func TestTransientRejectsNonFiniteParams(t *testing.T) {
	cases := []struct{ tstop, h float64 }{
		{math.NaN(), 1e-12},
		{1e-9, math.NaN()},
		{math.Inf(1), 1e-12},
		{1e-9, 0},
		{-1e-9, 1e-12},
		{1e-9, -1e-12},
	}
	for _, tc := range cases {
		ckt := rcCircuit()
		if _, err := ckt.Transient(tc.tstop, tc.h); !errors.Is(err, cerr.ErrInvalidParams) {
			t.Fatalf("tstop=%g h=%g: want ErrInvalidParams, got %v", tc.tstop, tc.h, err)
		}
	}
}
