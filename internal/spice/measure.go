package spice

import (
	"fmt"
	"math"
)

// CrossTime returns the first time after tAfter at which the waveform
// crosses level in the given direction, using linear interpolation
// between samples. It returns an error when no crossing exists.
func (r *Result) CrossTime(node string, level float64, rising bool, tAfter float64) (float64, error) {
	w := r.wave[node]
	if w == nil {
		return 0, fmt.Errorf("spice: no waveform for node %q", node)
	}
	for i := 1; i < len(w); i++ {
		if r.Times[i] < tAfter {
			continue
		}
		a, b := w[i-1], w[i]
		var hit bool
		if rising {
			hit = a < level && b >= level
		} else {
			hit = a > level && b <= level
		}
		if hit {
			frac := (level - a) / (b - a)
			return r.Times[i-1] + frac*(r.Times[i]-r.Times[i-1]), nil
		}
	}
	return 0, fmt.Errorf("spice: node %q never crosses %.3f (%s) after %g",
		node, level, dir(rising), tAfter)
}

func dir(rising bool) string {
	if rising {
		return "rising"
	}
	return "falling"
}

// PropDelay measures 50%-to-50% propagation delay from the input edge
// at tEdge on node in to the first subsequent 50% crossing (either
// direction) on node out.
func (r *Result) PropDelay(in, out string, vdd, tEdge float64) (float64, error) {
	half := vdd / 2
	tIn, err := r.CrossTime(in, half, true, tEdge-1e-15)
	if err != nil {
		tIn, err = r.CrossTime(in, half, false, tEdge-1e-15)
		if err != nil {
			return 0, fmt.Errorf("input: %w", err)
		}
	}
	tr, errR := r.CrossTime(out, half, true, tIn)
	tf, errF := r.CrossTime(out, half, false, tIn)
	switch {
	case errR == nil && errF == nil:
		return math.Min(tr, tf) - tIn, nil
	case errR == nil:
		return tr - tIn, nil
	case errF == nil:
		return tf - tIn, nil
	default:
		return 0, fmt.Errorf("output: %v / %v", errR, errF)
	}
}

// EdgeTime measures the 10%-90% transition time of the first edge on
// node after tAfter. rising selects which edge.
func (r *Result) EdgeTime(node string, vdd float64, rising bool, tAfter float64) (float64, error) {
	lo, hi := 0.1*vdd, 0.9*vdd
	if rising {
		t0, err := r.CrossTime(node, lo, true, tAfter)
		if err != nil {
			return 0, err
		}
		t1, err := r.CrossTime(node, hi, true, t0)
		if err != nil {
			return 0, err
		}
		return t1 - t0, nil
	}
	t0, err := r.CrossTime(node, hi, false, tAfter)
	if err != nil {
		return 0, err
	}
	t1, err := r.CrossTime(node, lo, false, t0)
	if err != nil {
		return 0, err
	}
	return t1 - t0, nil
}

// SourceCharge integrates the current delivered BY the named voltage
// source over [t0, t1] (coulombs, positive = sourcing). Useful for
// CV² energy checks: the charge a supply delivers into a switched
// capacitor equals C·Vdd.
func (r *Result) SourceCharge(srcName string, t0, t1 float64) (float64, error) {
	w := r.wave["I("+srcName+")"]
	if w == nil {
		return 0, fmt.Errorf("spice: no current recorded for source %q", srcName)
	}
	q := 0.0
	for i := 1; i < len(r.Times); i++ {
		ta, tb := r.Times[i-1], r.Times[i]
		if tb <= t0 || ta >= t1 {
			continue
		}
		// Branch current is node->source; negate for delivered charge.
		q += -(w[i-1] + w[i]) / 2 * (tb - ta)
	}
	return q, nil
}

// RCStage is one segment of an RC ladder/tree for Elmore analysis.
type RCStage struct {
	R float64 // series resistance into the node
	C float64 // capacitance at the node
	// Children are downstream branches; Elmore delay to a leaf sums
	// upstream R times total downstream C.
	Children []*RCStage
}

// totalC returns the capacitance of the subtree rooted at s.
func (s *RCStage) totalC() float64 {
	c := s.C
	for _, ch := range s.Children {
		c += ch.totalC()
	}
	return c
}

// ElmoreDelay returns the Elmore delay from the tree root to the stage
// reached by following the given child-index path (empty path = root
// node itself).
func ElmoreDelay(root *RCStage, path ...int) float64 {
	delay := 0.0
	node := root
	delay += node.R * node.totalC()
	for _, idx := range path {
		node = node.Children[idx]
		delay += node.R * node.totalC()
	}
	return delay
}

// WireRC returns the lumped resistance and capacitance of a wire of
// the given length and width (both metres) with the given sheet
// resistance, area cap (F/m²) and edge cap (F/m).
func WireRC(length, width, rSheet, cArea, cEdge float64) (r, c float64) {
	if width <= 0 {
		return 0, 0
	}
	r = rSheet * length / width
	c = cArea*length*width + 2*cEdge*length
	return r, c
}
