package spice

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cerr"
	"repro/internal/obs"
)

// Solver parameters.
const (
	gmin      = 1e-9 // leak conductance to ground for convergence
	vTol      = 1e-6 // Newton convergence tolerance (volts)
	maxNewton = 200
	dvLimit   = 0.3  // max Newton voltage step (volts), for damping
	numDeriv  = 1e-6 // perturbation for numeric MOS derivatives
)

// Result holds a transient run: shared time points and per-node
// waveforms.
type Result struct {
	Times []float64
	wave  map[string][]float64
}

// Wave returns the voltage samples for a node name.
func (r *Result) Wave(node string) []float64 { return r.wave[node] }

// At returns node voltage at the sample nearest to t.
func (r *Result) At(node string, t float64) float64 {
	w := r.wave[node]
	if len(w) == 0 {
		return math.NaN()
	}
	// Times are uniform.
	if t <= r.Times[0] {
		return w[0]
	}
	if t >= r.Times[len(r.Times)-1] {
		return w[len(w)-1]
	}
	h := r.Times[1] - r.Times[0]
	i := int(t / h)
	if i >= len(w)-1 {
		i = len(w) - 2
	}
	frac := (t - r.Times[i]) / h
	return w[i]*(1-frac) + w[i+1]*frac
}

// system is the assembled MNA problem at one time point. The matrix
// structure (dimension, row slices) is fixed at elaboration; assemble
// rebuilds the numeric content from scratch every Newton iteration, so
// jac/rhs double as the scratch that solveLinear destroys in place —
// the transient inner loop and the Monte-Carlo sample loop both run
// thousands of solves per analysis, and a per-iteration pristine copy
// would dominate memory traffic for no numeric benefit.
type system struct {
	c   *Circuit
	n   int // node count
	m   int // vsource count
	dim int
	jac [][]float64
	rhs []float64
}

func newSystem(c *Circuit) *system {
	n, m := len(c.nodes), len(c.vsrc)
	dim := n + m
	s := &system{c: c, n: n, m: m, dim: dim}
	s.jac = make([][]float64, dim)
	flat := make([]float64, dim*dim)
	for i := range s.jac {
		s.jac[i] = flat[i*dim : (i+1)*dim : (i+1)*dim]
	}
	s.rhs = make([]float64, dim)
	return s
}

func (s *system) reset() {
	for i := range s.jac {
		row := s.jac[i]
		for j := range row {
			row[j] = 0
		}
		s.rhs[i] = 0
	}
}

// stampG adds conductance g between nodes a, b (-1 = ground) into the
// Jacobian.
func (s *system) stampG(a, b int, g float64) {
	if a >= 0 {
		s.jac[a][a] += g
		if b >= 0 {
			s.jac[a][b] -= g
		}
	}
	if b >= 0 {
		s.jac[b][b] += g
		if a >= 0 {
			s.jac[b][a] -= g
		}
	}
}

// stampI adds a current i flowing out of node a into node b to the
// residual (KCL: sum of currents leaving node = 0; rhs accumulates -F).
func (s *system) stampI(a, b int, i float64) {
	if a >= 0 {
		s.rhs[a] -= i
	}
	if b >= 0 {
		s.rhs[b] += i
	}
}

// assemble builds the linearised system at voltages v (length n+m:
// node voltages then source branch currents), time t, with transient
// companion models if h > 0 using previous voltages vPrev.
func (s *system) assemble(v, vPrev []float64, t, h float64) {
	s.reset()
	c := s.c
	at := func(i int) float64 {
		if i < 0 {
			return 0
		}
		return v[i]
	}
	// gmin to ground on every node.
	for i := 0; i < s.n; i++ {
		s.stampG(i, -1, gmin)
		s.stampI(i, -1, gmin*v[i])
	}
	for _, r := range c.res {
		g := 1 / r.r
		s.stampG(r.a, r.b, g)
		s.stampI(r.a, r.b, g*(at(r.a)-at(r.b)))
	}
	if h > 0 {
		for _, cp := range c.caps {
			g := cp.c / h
			dv := (at(cp.a) - at(cp.b)) - (prevAt(vPrev, cp.a) - prevAt(vPrev, cp.b))
			i := g * dv // backward Euler companion
			s.stampG(cp.a, cp.b, g)
			s.stampI(cp.a, cp.b, i)
		}
	}
	// MOSFETs: numeric 3-terminal Jacobian.
	for k := range c.mos {
		m := &c.mos[k]
		vd, vg, vs := at(m.d), at(m.g), at(m.s)
		i0, _, _ := m.ids(vd, vg, vs)
		var gdd, gdg, gds float64
		{
			ip, _, _ := m.ids(vd+numDeriv, vg, vs)
			gdd = (ip - i0) / numDeriv
			ip, _, _ = m.ids(vd, vg+numDeriv, vs)
			gdg = (ip - i0) / numDeriv
			ip, _, _ = m.ids(vd, vg, vs+numDeriv)
			gds = (ip - i0) / numDeriv
		}
		// Current i0 flows d -> s (leaves drain node, enters source).
		s.stampI(m.d, m.s, i0)
		// Jacobian rows for drain and source KCL equations.
		add := func(row, col int, g float64) {
			if row >= 0 && col >= 0 {
				s.jac[row][col] += g
			}
		}
		add(m.d, m.d, gdd)
		add(m.d, m.g, gdg)
		add(m.d, m.s, gds)
		add(m.s, m.d, -gdd)
		add(m.s, m.g, -gdg)
		add(m.s, m.s, -gds)
	}
	// Voltage sources: branch current unknowns at index n+k.
	for k, src := range c.vsrc {
		bi := s.n + k
		ib := v[bi]
		// KCL: branch current leaves node a.
		if src.a >= 0 {
			s.jac[src.a][bi] += 1
			s.rhs[src.a] -= ib
		}
		// Constraint: v[a] - wave(t) = 0.
		if src.a >= 0 {
			s.jac[bi][src.a] += 1
		}
		s.rhs[bi] -= at(src.a) - src.wave.V(t)
	}
}

// solveLinear solves jac*x = rhs in place by Gaussian elimination with
// partial pivoting. Returns -1 on success; on a singular matrix it
// returns the column index whose pivot vanished, which the caller maps
// back to the offending circuit unknown (node voltage or source branch
// current) for the typed ERR_SIM_SINGULAR report.
func solveLinear(a [][]float64, b []float64) int {
	n := len(b)
	for col := 0; col < n; col++ {
		// pivot
		p := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, p = v, r
			}
		}
		if best < 1e-18 {
			return col
		}
		if p != col {
			a[p], a[col] = a[col], a[p]
			b[p], b[col] = b[col], b[p]
		}
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			row, prow := a[r], a[col]
			for cc := col; cc < n; cc++ {
				row[cc] -= f * prow[cc]
			}
			b[r] -= f * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for cc := r + 1; cc < n; cc++ {
			sum -= a[r][cc] * b[cc]
		}
		b[r] = sum / a[r][r]
	}
	return -1
}

// unknownName maps an MNA column index onto the circuit unknown it
// represents: a node voltage for col < n, a source branch current
// otherwise.
func (s *system) unknownName(col int) string {
	if col >= 0 && col < s.n {
		return s.c.nodes[col]
	}
	if k := col - s.n; k >= 0 && k < s.m {
		return "I(" + s.c.vsrc[k].name + ")"
	}
	return fmt.Sprintf("unknown-%d", col)
}

func prevAt(v []float64, i int) float64 {
	if i < 0 {
		return 0
	}
	return v[i]
}

// newton iterates the nonlinear solve at time t. v is updated in
// place; vPrev supplies transient history (nil/h==0 for DC).
func (s *system) newton(v, vPrev []float64, t, h float64) error {
	for it := 0; it < maxNewton; it++ {
		// assemble fully rewrites jac/rhs, so solveLinear may destroy
		// them in place. (Pivoting swaps jac's row headers between
		// iterations; each row is still a full matrix row, so the next
		// assemble pass stays correct.)
		s.assemble(v, vPrev, t, h)
		rhs := s.rhs
		if col := solveLinear(s.jac, rhs); col >= 0 {
			return cerr.New(cerr.CodeSimSingular,
				"spice: singular system at t=%g: no pivot for %s", t, s.unknownName(col))
		}
		maxDv := 0.0
		for i := 0; i < s.n; i++ {
			dv := rhs[i]
			if dv > dvLimit {
				dv = dvLimit
			} else if dv < -dvLimit {
				dv = -dvLimit
			}
			v[i] += dv
			if a := math.Abs(dv); a > maxDv {
				maxDv = a
			}
		}
		for i := s.n; i < s.dim; i++ {
			v[i] += rhs[i]
		}
		if maxDv < vTol {
			return nil
		}
	}
	return cerr.New(cerr.CodeSimDiverged, "spice: Newton did not converge at t=%g", t)
}

// maxTransientSteps caps the fixed-step transient loop: a hostile
// tstop/h ratio (e.g. 1 second at 1 fs) would otherwise iterate
// effectively forever. Exceeding the cap is a typed
// cerr.ErrBudgetExceeded before any stepping begins.
const maxTransientSteps = 4_000_000

// Transient runs a fixed-step transient analysis from the DC operating
// point at t=0 to tstop with step h, recording every node.
func (c *Circuit) Transient(tstop, h float64) (*Result, error) {
	return c.TransientCtx(context.Background(), tstop, h)
}

// ctxCheckSteps is how many transient steps elapse between context
// checks: frequent enough to honour millisecond deadlines, sparse
// enough to keep ctx.Err off the inner Newton loop.
const ctxCheckSteps = 64

// TransientCtx is Transient with cooperative cancellation. The context
// deadline is checked every ctxCheckSteps time steps; on expiry the
// partial Result recorded so far is returned together with a typed
// cerr.ErrBudgetExceeded, so callers can still inspect the waveforms
// up to the cancellation point.
func (c *Circuit) TransientCtx(ctx context.Context, tstop, h float64) (*Result, error) {
	if c.err != nil {
		return nil, c.err
	}
	step := 0
	var endSpan func(...obs.Attr)
	ctx, endSpan = obs.Start(ctx, "spice.transient")
	defer func() { endSpan(obs.Int("steps", step)) }()
	if !(h > 0) || !(tstop > 0) || math.IsInf(h, 0) || math.IsInf(tstop, 0) {
		// The negated comparisons also reject NaN.
		return nil, cerr.New(cerr.CodeInvalidParams, "spice: bad transient params tstop=%g h=%g", tstop, h)
	}
	if tstop/h > maxTransientSteps {
		return nil, cerr.New(cerr.CodeBudgetExceeded,
			"spice: transient needs %g steps, cap is %d", math.Ceil(tstop/h), maxTransientSteps)
	}
	s := newSystem(c)
	v := make([]float64, s.dim)
	if err := s.newton(v, nil, 0, 0); err != nil {
		return nil, cerr.Wrap(cerr.CodeSimDiverged, err, "spice: op failed")
	}
	steps := int(math.Ceil(tstop/h)) + 1
	res := &Result{Times: make([]float64, 0, steps), wave: map[string][]float64{}}
	for _, n := range c.nodes {
		res.wave[n] = make([]float64, 0, steps)
	}
	// Branch-current wave keys, built once: concatenating them inside
	// record() made the recorder the hottest allocation site of a whole
	// timing analysis.
	branchKey := make([]string, len(c.vsrc))
	for k, src := range c.vsrc {
		branchKey[k] = "I(" + src.name + ")"
		res.wave[branchKey[k]] = make([]float64, 0, steps)
	}
	record := func(t float64) {
		res.Times = append(res.Times, t)
		for i, n := range c.nodes {
			res.wave[n] = append(res.wave[n], v[i])
		}
		// Branch currents: positive = current flowing from the node
		// into the source, so a supplying source reads negative.
		for k := range c.vsrc {
			res.wave[branchKey[k]] = append(res.wave[branchKey[k]], v[s.n+k])
		}
	}
	record(0)
	vPrev := append([]float64(nil), v...)
	for t := h; t <= tstop+h/2; t += h {
		if step%ctxCheckSteps == 0 {
			if err := ctx.Err(); err != nil {
				return res, cerr.Wrap(cerr.CodeBudgetExceeded, err,
					"spice: transient cancelled at t=%g (%d of ~%d steps)", t, step, steps)
			}
		}
		step++
		copy(vPrev, v)
		if err := s.newton(v, vPrev, t, h); err != nil {
			return res, err
		}
		record(t)
	}
	return res, nil
}
