// Package spice is the built-in circuit simulation utility that
// BISRAMGEN uses for transistor sizing and timing guarantees. It
// implements a small modified-nodal-analysis (MNA) simulator with a
// level-1 (Shichman–Hodges) MOS model, DC operating point and
// fixed-step transient analysis, plus the measurement helpers (delay,
// rise/fall time) and an Elmore RC estimator for interconnect.
//
// The paper states that BISRAMGEN has "built-in access to SPICE
// utilities" to size the N and P transistors of critical gates so that
// rise and fall times balance, and to extrapolate timing guarantees
// from extracted leaf cells; this package is that utility.
package spice

import (
	"math"
	"sort"

	"repro/internal/cerr"
	"repro/internal/tech"
)

// Circuit is a flat netlist of devices between named nodes. Node "0"
// (alias "gnd") is ground.
type Circuit struct {
	nodeIdx map[string]int
	nodes   []string // index -> name; ground is not stored

	res  []resistor
	caps []capacitor
	mos  []mosfet
	vsrc []vsource

	// err is the sticky first construction error. The builder methods
	// are fluent (no per-call error return); an impossible element —
	// non-positive resistance, negative or non-finite capacitance,
	// degenerate MOS geometry — records a typed cerr.ErrNetlist here
	// instead of panicking, and OP/Transient refuse to run until the
	// netlist is rebuilt. Check Err after building, or rely on the
	// analysis entry points surfacing it.
	err error
}

type resistor struct {
	a, b int
	r    float64
}

type capacitor struct {
	a, b int
	c    float64
}

type mosfet struct {
	name    string
	d, g, s int
	typ     tech.MOSType
	w, l    float64 // metres
	p       tech.MOSParams
}

type vsource struct {
	name string
	a    int // positive node (negative terminal is ground)
	wave Waveform
}

// Waveform is a voltage as a function of time.
type Waveform interface {
	V(t float64) float64
}

// DC is a constant waveform.
type DC float64

// V implements Waveform.
func (d DC) V(float64) float64 { return float64(d) }

// VarDC is a settable constant waveform: a batch driver (the
// Monte-Carlo cell tester) keeps the pointer and rewrites Val between
// solves of one elaborated circuit, instead of rebuilding the netlist
// per stimulus — rebinding a plain DC through the Waveform interface
// would allocate on every change.
type VarDC struct{ Val float64 }

// V implements Waveform.
func (d *VarDC) V(float64) float64 { return d.Val }

// PWL is a piecewise-linear waveform given as (time, value) pairs in
// ascending time order. Before the first point it holds the first
// value; after the last it holds the last value.
type PWL struct {
	T []float64
	Y []float64
}

// V implements Waveform.
func (p PWL) V(t float64) float64 {
	n := len(p.T)
	if n == 0 {
		return 0
	}
	if t <= p.T[0] {
		return p.Y[0]
	}
	if t >= p.T[n-1] {
		return p.Y[n-1]
	}
	i := sort.SearchFloat64s(p.T, t)
	if p.T[i] == t {
		return p.Y[i]
	}
	t0, t1 := p.T[i-1], p.T[i]
	y0, y1 := p.Y[i-1], p.Y[i]
	return y0 + (y1-y0)*(t-t0)/(t1-t0)
}

// Step returns a PWL step from v0 to v1 at time t with the given
// transition (slew) time.
func Step(v0, v1, t, slew float64) PWL {
	return PWL{T: []float64{0, t, t + slew}, Y: []float64{v0, v0, v1}}
}

// New returns an empty circuit.
func New() *Circuit {
	return &Circuit{nodeIdx: map[string]int{"0": -1, "gnd": -1, "GND": -1}}
}

// Node interns a node name and returns its index (-1 for ground).
func (c *Circuit) Node(name string) int {
	if i, ok := c.nodeIdx[name]; ok {
		return i
	}
	i := len(c.nodes)
	c.nodes = append(c.nodes, name)
	c.nodeIdx[name] = i
	return i
}

// NumNodes returns the number of non-ground nodes.
func (c *Circuit) NumNodes() int { return len(c.nodes) }

// NodeIndex returns the solution-vector index of a node interned by a
// builder call, or -1 for ground and names never used. Unlike Node it
// never interns, so probing is side-effect free.
func (c *Circuit) NodeIndex(name string) int {
	if i, ok := c.nodeIdx[name]; ok {
		return i
	}
	return -1
}

// Failf records a netlist construction error (first one wins) as a
// typed cerr.ErrNetlist.
func (c *Circuit) Failf(format string, args ...any) {
	if c.err == nil {
		c.err = cerr.New(cerr.CodeNetlist, format, args...)
	}
}

// Err returns the first netlist construction error, or nil.
func (c *Circuit) Err() error { return c.err }

// R adds a resistor of r ohms between nodes a and b. A non-positive
// or non-finite resistance is a construction error (see Err); the
// element is skipped.
func (c *Circuit) R(a, b string, r float64) {
	if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		c.Failf("spice: resistor %s-%s: non-positive or non-finite resistance %g", a, b, r)
		return
	}
	c.res = append(c.res, resistor{c.Node(a), c.Node(b), r})
}

// C adds a capacitor of f farads between nodes a and b. A negative or
// non-finite capacitance is a construction error (see Err); the
// element is skipped.
func (c *Circuit) C(a, b string, f float64) {
	if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		c.Failf("spice: capacitor %s-%s: negative or non-finite capacitance %g", a, b, f)
		return
	}
	if f == 0 {
		return
	}
	c.caps = append(c.caps, capacitor{c.Node(a), c.Node(b), f})
}

// M adds a MOSFET. w and l are in metres; parameters come from the
// process deck. Device capacitances (gate and junction) are added
// automatically as grounded linear capacitors. Degenerate geometry
// (non-positive or non-finite w or l) is a construction error.
func (c *Circuit) M(name string, d, g, s string, typ tech.MOSType, w, l float64, p *tech.Process) {
	if w <= 0 || l <= 0 || math.IsNaN(w) || math.IsInf(w, 0) || math.IsNaN(l) || math.IsInf(l, 0) {
		c.Failf("spice: mosfet %s: degenerate geometry w=%g l=%g", name, w, l)
		return
	}
	mp := p.MOS(typ)
	c.mos = append(c.mos, mosfet{name: name, d: c.Node(d), g: c.Node(g), s: c.Node(s), typ: typ, w: w, l: l, p: mp})
	c.C(g, "0", mp.CgsPerW*w)
	c.C(d, "0", mp.CjPerW*w)
	c.C(s, "0", mp.CjPerW*w)
}

// V adds an independent voltage source from node a to ground. A nil
// waveform is a construction error.
func (c *Circuit) V(name, a string, w Waveform) {
	if w == nil {
		c.Failf("spice: source %s: nil waveform", name)
		return
	}
	c.vsrc = append(c.vsrc, vsource{name: name, a: c.Node(a), wave: w})
}

// ids computes the drain current of m and its partial derivatives
// (gm = dI/dVgs, gds = dI/dVds) at the given node voltages, handling
// source/drain symmetry and both polarities. Current flows d->s for
// NMOS conduction.
func (m *mosfet) ids(vd, vg, vs float64) (i, gm, gds float64) {
	sign := 1.0
	vt := m.p.VT0
	if m.typ == tech.PMOS {
		// Transform to equivalent NMOS: negate all voltages.
		vd, vg, vs = -vd, -vg, -vs
		vt = -vt // PMOS VT0 is negative; equivalent NMOS threshold is positive
		sign = -1.0
	}
	swapped := false
	if vd < vs {
		vd, vs = vs, vd
		swapped = true
	}
	vgs := vg - vs
	vds := vd - vs
	beta := m.p.KP * m.w / m.l
	clm := 1 + m.p.Lambda*vds
	switch {
	case vgs <= vt:
		i, gm, gds = 0, 0, 0
	case vds < vgs-vt: // linear
		i = beta * ((vgs-vt)*vds - 0.5*vds*vds) * clm
		gm = beta * vds * clm
		gds = beta*((vgs-vt)-vds)*clm + beta*((vgs-vt)*vds-0.5*vds*vds)*m.p.Lambda
	default: // saturation
		vov := vgs - vt
		i = 0.5 * beta * vov * vov * clm
		gm = beta * vov * clm
		gds = 0.5 * beta * vov * vov * m.p.Lambda
	}
	if swapped {
		// Current direction reverses; gm referenced to the true gate
		// still, gds symmetric. For Newton stamping we only need i and
		// conductances to remain consistent: handle by sign flip of i
		// and noting roles of d/s swapped (caller stamps via numeric
		// derivative fallback, so this branch only flips i).
		i = -i
	}
	return sign * i, gm, gds
}
