package spice

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/cerr"
	"repro/internal/tech"
)

// perturbedProcess returns a copy of p whose MOS parameters for typ
// are shifted exactly the way Session.Perturb shifts a device:
// VT0 += dVT0, KP *= kpScale.
func perturbedProcess(p *tech.Process, typ tech.MOSType, dVT0, kpScale float64) *tech.Process {
	q := *p
	switch typ {
	case tech.NMOS:
		q.NMOS.VT0 += dVT0
		q.NMOS.KP *= kpScale
	default:
		q.PMOS.VT0 += dVT0
		q.PMOS.KP *= kpScale
	}
	return &q
}

// corpusDevice describes one MOSFET of a corpus circuit so the test
// can rebuild it with perturbed parameters baked in at elaboration.
type corpusDevice struct {
	name    string
	d, g, s string
	typ     tech.MOSType
	w, l    float64
}

// corpusSource is a DC source feeding one node. Sources are a slice,
// not a map: build order decides node interning order, and the
// differential test depends on both builds interning identically.
type corpusSource struct {
	node string
	v    float64
}

// corpusCircuit is a rebuildable netlist: sources and devices only
// (every corpus circuit is DC, caps are irrelevant to the solve but
// are added identically by M either way).
type corpusCircuit struct {
	name string
	dev  []corpusDevice
	src  []corpusSource
	init map[string]float64 // initial-guess voltages by node name
}

func (cc corpusCircuit) build(p *tech.Process, dVT0 []float64, kpScale []float64) *Circuit {
	c := New()
	for _, s := range cc.src {
		c.V("v"+s.node, s.node, DC(s.v))
	}
	for i, d := range cc.dev {
		pp := p
		if dVT0 != nil {
			pp = perturbedProcess(p, d.typ, dVT0[i], kpScale[i])
		}
		c.M(d.name, d.d, d.g, d.s, d.typ, d.w, d.l, pp)
	}
	return c
}

func (cc corpusCircuit) initVector(s *Session) []float64 {
	init := make([]float64, s.Dim())
	for node, v := range cc.init {
		if i := s.NodeIndex(node); i >= 0 {
			init[i] = v
		}
	}
	return init
}

func corpus(p *tech.Process) []corpusCircuit {
	l := float64(p.Feature) * 1e-9
	vdd := p.VDD
	inv := func(vin float64) corpusCircuit {
		return corpusCircuit{
			name: fmt.Sprintf("inverter@%.2g", vin),
			dev: []corpusDevice{
				{"mn", "out", "in", "0", tech.NMOS, 4 * l, l},
				{"mp", "out", "in", "vdd", tech.PMOS, 8 * l, l},
			},
			src:  []corpusSource{{"vdd", vdd}, {"in", vin}},
			init: map[string]float64{"vdd": vdd, "out": vdd - vin},
		}
	}
	cell := corpusCircuit{
		name: "sram6t-hold",
		dev: []corpusDevice{
			{"mn1", "q", "qb", "0", tech.NMOS, 4 * l, l},
			{"mp1", "q", "qb", "vdd", tech.PMOS, 2 * l, l},
			{"mn2", "qb", "q", "0", tech.NMOS, 4 * l, l},
			{"mp2", "qb", "q", "vdd", tech.PMOS, 2 * l, l},
			{"ma1", "bl", "wl", "q", tech.NMOS, 2 * l, l},
			{"ma2", "blb", "wl", "qb", tech.NMOS, 2 * l, l},
		},
		src: []corpusSource{{"vdd", vdd}, {"wl", 0}, {"bl", vdd}, {"blb", vdd}},
		// Biased toward the q=0 state: the explicit guess picks the
		// equilibrium, which is the whole point of SolveFrom.
		init: map[string]float64{"vdd": vdd, "bl": vdd, "blb": vdd, "qb": vdd},
	}
	return []corpusCircuit{inv(0), inv(vdd / 2), inv(vdd), cell}
}

// lcg is a tiny deterministic generator for perturbation draws.
type lcg uint64

func (g *lcg) next() float64 { // uniform in [-1, 1)
	*g = *g*6364136223846793005 + 1442695040888963407
	return float64(int64(*g)>>11) / (1 << 52)
}

// TestSessionPerturbMatchesFreshElaboration pins the batch-reuse
// contract: Perturb + SolveFrom on a long-lived Session is
// bit-identical to elaborating a fresh circuit with the perturbed
// parameters baked in and solving from the same initial guess.
func TestSessionPerturbMatchesFreshElaboration(t *testing.T) {
	procs := []*tech.Process{tech.CDA07}
	for _, corner := range []string{"slow", "fast"} {
		p, err := tech.CDA07.Corner(corner)
		if err != nil {
			t.Fatal(err)
		}
		procs = append(procs, p)
	}
	for _, p := range procs {
		for _, cc := range corpus(p) {
			t.Run(p.Name+"/"+cc.name, func(t *testing.T) {
				sess, err := NewSession(cc.build(p, nil, nil))
				if err != nil {
					t.Fatal(err)
				}
				init := cc.initVector(sess)
				g := lcg(12345)
				for trial := 0; trial < 8; trial++ {
					dVT0 := make([]float64, len(cc.dev))
					kps := make([]float64, len(cc.dev))
					for i := range cc.dev {
						dVT0[i] = 0.15 * g.next() // up to ±150 mV threshold shift
						kps[i] = 1 + 0.2*g.next() // ±20% transconductance
					}
					for i := range cc.dev {
						sess.Perturb(i, dVT0[i], kps[i])
					}
					if err := sess.SolveFrom(init); err != nil {
						t.Fatalf("trial %d session solve: %v", trial, err)
					}
					fresh, err := NewSession(cc.build(p, dVT0, kps))
					if err != nil {
						t.Fatal(err)
					}
					if err := fresh.SolveFrom(init); err != nil {
						t.Fatalf("trial %d fresh solve: %v", trial, err)
					}
					a, b := sess.Solution(), fresh.Solution()
					if len(a) != len(b) {
						t.Fatalf("dim mismatch %d vs %d", len(a), len(b))
					}
					for i := range a {
						if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
							t.Fatalf("trial %d: unknown %d differs: session %v fresh %v",
								trial, i, a[i], b[i])
						}
					}
				}
			})
		}
	}
}

// TestSessionResetRestoresNominal checks Reset undoes any Perturb so
// the next solve matches a never-perturbed session exactly.
func TestSessionResetRestoresNominal(t *testing.T) {
	p := tech.CDA07
	cc := corpus(p)[0]
	sess, _ := NewSession(cc.build(p, nil, nil))
	init := cc.initVector(sess)
	if err := sess.SolveFrom(init); err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), sess.Solution()...)
	for i := 0; i < sess.Devices(); i++ {
		sess.Perturb(i, 0.3, 0.5)
	}
	sess.Reset()
	if err := sess.SolveFrom(init); err != nil {
		t.Fatal(err)
	}
	for i, v := range sess.Solution() {
		if math.Float64bits(v) != math.Float64bits(want[i]) {
			t.Fatalf("unknown %d: reset solve %v != nominal %v", i, v, want[i])
		}
	}
}

// TestSessionSolveFromZeroAlloc pins the arena contract: steady-state
// Perturb + re-solve must not allocate.
func TestSessionSolveFromZeroAlloc(t *testing.T) {
	p := tech.CDA07
	cc := corpus(p)[3] // 6T cell, the real workload
	sess, err := NewSession(cc.build(p, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	init := cc.initVector(sess)
	if err := sess.SolveFrom(init); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		sess.Perturb(0, 0.01, 1.02)
		if err := sess.SolveFrom(init); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Perturb+SolveFrom allocates %.1f per run, want 0", allocs)
	}
}

// TestSessionConcurrentWorkers exercises the per-worker solver-state
// pattern under the race detector: one Circuit + Session per
// goroutine, identical perturbation schedules, identical results.
func TestSessionConcurrentWorkers(t *testing.T) {
	p := tech.CDA07
	cc := corpus(p)[3]
	const workers = 8
	results := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess, err := NewSession(cc.build(p, nil, nil))
			if err != nil {
				t.Error(err)
				return
			}
			init := cc.initVector(sess)
			g := lcg(999)
			for trial := 0; trial < 32; trial++ {
				for i := 0; i < sess.Devices(); i++ {
					sess.Perturb(i, 0.1*g.next(), 1+0.1*g.next())
				}
				if err := sess.SolveFrom(init); err != nil {
					t.Errorf("worker %d trial %d: %v", w, trial, err)
					return
				}
			}
			results[w] = append([]float64(nil), sess.Solution()...)
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if results[0] == nil || results[w] == nil {
			t.Fatal("missing worker result")
		}
		for i := range results[0] {
			if math.Float64bits(results[0][i]) != math.Float64bits(results[w][i]) {
				t.Fatalf("worker %d diverged from worker 0 at unknown %d", w, i)
			}
		}
	}
}

// TestSingularSystemNamesUnknown checks the ERR_SIM_SINGULAR
// contract: a rank-deficient MNA system (two ideal sources fighting
// over one node — the branch-current columns are linearly dependent)
// produces a typed error naming the offending unknown rather than a
// generic divergence. Note a merely floating node is NOT singular
// here: gmin leaks every node to ground.
func TestSingularSystemNamesUnknown(t *testing.T) {
	c := New()
	c.V("v1", "a", DC(1))
	c.V("v2", "a", DC(2))
	c.R("a", "0", 1000)
	_, err := c.OP()
	if err == nil {
		t.Fatal("expected singular-system error")
	}
	if cerr.CodeOf(err) != cerr.CodeSimSingular {
		t.Fatalf("code = %v, want CodeSimSingular (err %v)", cerr.CodeOf(err), err)
	}
	if !strings.Contains(err.Error(), "I(v") {
		t.Fatalf("error should name the offending unknown: %v", err)
	}
}
