package extract

import (
	"sort"

	"repro/internal/geom"
)

// Critical-area analysis, after Khare et al. (the paper's §VII cites
// it to argue that BISRAMGEN's 6T template leaves near-zero critical
// area for *fatal* defects — shorts involving the global supply nets
// that no amount of row redundancy can repair).
//
// A spot defect of radius r shorts two same-layer shapes when it
// bridges their gap; for two facing parallel edges of overlap length
// L at spacing s the classic estimate of the critical area is
// L·(2r − s) for 2r > s (corner contributions ignored).

// PairFilter selects which shape pairs count, based on their net
// labels (empty label = anonymous wiring).
type PairFilter func(netA, netB string) bool

// FatalPairs selects shorts between the two global supply nets — the
// §VII fatal class: a vdd-gnd bridge shorts the whole chip's supply
// and no amount of row redundancy repairs it. (Shorts between a
// supply and a local signal merely break that cell: repairable.)
func FatalPairs(a, b string) bool {
	return isSupply(a) && isSupply(b) && a != b
}

// SignalPairs selects shorts between two distinct non-supply nets —
// repairable by row replacement when inside the array.
func SignalPairs(a, b string) bool {
	return !isSupply(a) && !isSupply(b) && a != b && a != "" && b != ""
}

// RepairablePairs selects every distinct-net short that involves at
// least one local signal — the defects the BISR row redundancy can
// absorb.
func RepairablePairs(a, b string) bool {
	return a != b && a != "" && b != "" && !(isSupply(a) && isSupply(b))
}

func isSupply(n string) bool { return n == "vdd" || n == "gnd" }

// CriticalArea sums the short critical area (dbu²) on one layer of
// the flattened cell for a defect radius r (dbu), over pairs accepted
// by the filter.
func CriticalArea(c *geom.Cell, layer geom.Layer, radius int, filter PairFilter) int64 {
	var shapes []geom.Shape
	for _, s := range c.Flatten() {
		if s.Layer == layer {
			shapes = append(shapes, s)
		}
	}
	sort.Slice(shapes, func(i, j int) bool { return shapes[i].Rect.X0 < shapes[j].Rect.X0 })
	var total int64
	for i := range shapes {
		for j := i + 1; j < len(shapes); j++ {
			a, b := shapes[i], shapes[j]
			if b.Rect.X0-a.Rect.X1 >= 2*radius {
				break
			}
			if !filter(a.Net, b.Net) {
				continue
			}
			total += pairCritArea(a.Rect, b.Rect, radius)
		}
	}
	return total
}

// pairCritArea returns the facing-edge critical area between two
// rects for defect radius r.
func pairCritArea(a, b geom.Rect, r int) int64 {
	// Vertical adjacency: x-ranges overlap, gap in y.
	xo := min(a.X1, b.X1) - max(a.X0, b.X0)
	yGap := max(a.Y0-b.Y1, b.Y0-a.Y1)
	if xo > 0 && yGap > 0 && 2*r > yGap {
		return int64(xo) * int64(2*r-yGap)
	}
	// Horizontal adjacency: y-ranges overlap, gap in x.
	yo := min(a.Y1, b.Y1) - max(a.Y0, b.Y0)
	xGap := max(a.X0-b.X1, b.X0-a.X1)
	if yo > 0 && xGap > 0 && 2*r > xGap {
		return int64(yo) * int64(2*r-xGap)
	}
	return 0
}
