// Package extract derives electrical connectivity from layout
// geometry: overlapping or abutting shapes on the same layer join one
// net, and contact/via shapes join the layers of the process stack
// they cut between. The result supports a lightweight layout-versus-
// schematic check — comparing the geometric nets against the net
// labels the generators attached — and powers the critical-area
// analysis used to argue the §VII near-zero fatal critical area of
// the 6T template.
package extract

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/tech"
)

// cutLayers describes which pair of conducting layers each cut layer
// connects, for the standard stack.
var cutLayers = map[geom.Layer][2]geom.Layer{
	tech.Contact: {tech.Poly, tech.Metal1}, // also active-metal1; see below
	tech.Via1:    {tech.Metal1, tech.Metal2},
	tech.Via2:    {tech.Metal2, tech.Metal3},
}

// conducting reports whether a layer carries signal.
func conducting(l geom.Layer) bool {
	switch l {
	case tech.Active, tech.Poly, tech.Metal1, tech.Metal2, tech.Metal3:
		return true
	}
	return false
}

// Netlist is the extraction result.
type Netlist struct {
	// NetOf[i] is the net id of flattened conducting shape i (indices
	// into Shapes).
	NetOf  []int
	Shapes []geom.Shape
	// NumNets is the number of distinct nets found.
	NumNets int
	// Labels maps net id -> the set of generator labels seen on its
	// shapes (sorted, empty labels dropped).
	Labels map[int][]string
}

// union-find
type dsu struct{ parent []int }

func newDSU(n int) *dsu {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &dsu{parent: p}
}

func (d *dsu) find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

func (d *dsu) union(a, b int) { d.parent[d.find(a)] = d.find(b) }

// Extract flattens the cell and computes connectivity. MOS channels
// interrupt diffusion: every active shape is fragmented around the
// poly gates crossing it, so source and drain stay separate nets (the
// transistor itself is a device, not a wire).
func Extract(c *geom.Cell) *Netlist {
	all := c.Flatten()
	var shapes []geom.Shape
	var cuts []geom.Shape
	var polys []geom.Rect
	for _, s := range all {
		if s.Layer == tech.Poly {
			polys = append(polys, s.Rect)
		}
	}
	for _, s := range all {
		switch {
		case s.Layer == tech.Active:
			for _, frag := range subtractAll(s.Rect, polys) {
				shapes = append(shapes, geom.Shape{Layer: s.Layer, Rect: frag, Net: s.Net})
			}
		case conducting(s.Layer):
			shapes = append(shapes, s)
		default:
			if _, ok := cutLayers[s.Layer]; ok {
				cuts = append(cuts, s)
			}
		}
	}
	d := newDSU(len(shapes))

	// Per-layer spatial buckets: built once, used by both the
	// same-layer merge and the cut-resolution pass. This replaces the
	// old x-sorted sweep, which degenerated to O(n²) on bit-cell
	// arrays (every row repeats the same x-spans), and the
	// O(cuts × shapes) linear cut scan — together the hot loop behind
	// BenchmarkExtract6TArray and every timing analysis.
	rects := make([]geom.Rect, len(shapes))
	for i, s := range shapes {
		rects[i] = s.Rect
	}
	byLayer := map[geom.Layer][]int{}
	for i, s := range shapes {
		byLayer[s.Layer] = append(byLayer[s.Layer], i)
	}
	grids := map[geom.Layer]*bucketGrid{}
	for layer, idx := range byLayer {
		grids[layer] = newBucketGrid(rects, idx)
	}

	// Same-layer connectivity: touching or overlapping shapes merge.
	// Each shape queries its layer's grid neighbourhood; the j > i
	// guard visits every unordered pair exactly once.
	for layer, idx := range byLayer {
		g := grids[layer]
		for _, i := range idx {
			ri := rects[i]
			for _, j := range g.query(ri) {
				if j > i && touches(ri, rects[j]) {
					d.union(i, j)
				}
			}
		}
	}

	// Cross-layer connectivity through cuts: a cut joins every
	// conducting shape (of the two layers it connects) that it
	// overlaps. Contacts additionally connect active <-> metal1
	// (diffusion contacts). The candidate set comes from the bucket
	// grids of just the connected layers; the geometric test is
	// unchanged (expansion by one dbu keeps edge-abutting cuts
	// connected, matching touches() semantics).
	var hit []int
	for _, cut := range cuts {
		pair := cutLayers[cut.Layer]
		layers := []geom.Layer{pair[0], pair[1]}
		if cut.Layer == tech.Contact {
			layers = append(layers, tech.Active)
		}
		q := cut.Rect.Expand(1)
		hit = hit[:0]
		for _, layer := range layers {
			g, ok := grids[layer]
			if !ok {
				continue
			}
			for _, i := range g.query(q) {
				if rects[i].Expand(1).Overlaps(cut.Rect) {
					hit = append(hit, i)
				}
			}
		}
		for i := 1; i < len(hit); i++ {
			d.union(hit[0], hit[i])
		}
	}

	// Compact net ids.
	nl := &Netlist{Shapes: shapes, NetOf: make([]int, len(shapes)), Labels: map[int][]string{}}
	ids := map[int]int{}
	for i := range shapes {
		root := d.find(i)
		id, ok := ids[root]
		if !ok {
			id = len(ids)
			ids[root] = id
		}
		nl.NetOf[i] = id
	}
	nl.NumNets = len(ids)
	seen := map[int]map[string]bool{}
	for i, s := range shapes {
		if s.Net == "" {
			continue
		}
		id := nl.NetOf[i]
		if seen[id] == nil {
			seen[id] = map[string]bool{}
		}
		if !seen[id][s.Net] {
			seen[id][s.Net] = true
			nl.Labels[id] = append(nl.Labels[id], s.Net)
		}
	}
	for id := range nl.Labels {
		sort.Strings(nl.Labels[id])
	}
	return nl
}

// touches reports whether two rects overlap or abut (share edge or
// corner contact counts as connected metal).
func touches(a, b geom.Rect) bool {
	return a.X0 <= b.X1 && b.X0 <= a.X1 && a.Y0 <= b.Y1 && b.Y0 <= a.Y1
}

// subtract returns a minus cut as up to four rect pieces. The pieces
// are shrunk by nothing — they share edges with the cut, but the
// channel gap separates left/right diffusion because the cut spans
// the full overlap.
func subtract(a, cut geom.Rect) []geom.Rect {
	ov := a.Intersect(cut)
	if ov.Empty() {
		return []geom.Rect{a}
	}
	var out []geom.Rect
	if a.Y1 > ov.Y1 { // top slab
		out = append(out, geom.Rect{X0: a.X0, Y0: ov.Y1, X1: a.X1, Y1: a.Y1})
	}
	if a.Y0 < ov.Y0 { // bottom slab
		out = append(out, geom.Rect{X0: a.X0, Y0: a.Y0, X1: a.X1, Y1: ov.Y0})
	}
	if a.X0 < ov.X0 { // left slab
		out = append(out, geom.Rect{X0: a.X0, Y0: ov.Y0, X1: ov.X0, Y1: ov.Y1})
	}
	if a.X1 > ov.X1 { // right slab
		out = append(out, geom.Rect{X0: ov.X1, Y0: ov.Y0, X1: a.X1, Y1: ov.Y1})
	}
	return out
}

// subtractAll fragments a around every cutting rect. Fragments that
// merely share the cut's edge line would re-merge under touches(), so
// the left/right diffusion slabs are the only survivors of a gate
// crossing and they sit strictly apart. To guarantee separation the
// slabs flanking a cut are inset by one dbu from the cut edge.
func subtractAll(a geom.Rect, cuts []geom.Rect) []geom.Rect {
	pieces := []geom.Rect{a}
	for _, cut := range cuts {
		if !a.Overlaps(cut) {
			continue
		}
		grown := cut.Expand(1) // ensure the fragments do not abut
		var next []geom.Rect
		for _, p := range pieces {
			for _, f := range subtract(p, grown) {
				if !f.Empty() {
					next = append(next, f)
				}
			}
		}
		pieces = next
	}
	return pieces
}

// Short describes two different labels found on one geometric net.
type Short struct {
	Net    int
	Labels []string
}

// Open describes one label split across several geometric nets.
type Open struct {
	Label string
	Nets  []int
}

// Verify performs the LVS-style comparison between geometric nets and
// generator labels: a net carrying two labels is a short; a label
// spread over several nets is an open (unless the layout legitimately
// leaves it abstract — the caller decides which labels must be
// connected).
func (nl *Netlist) Verify(mustConnect []string) (shorts []Short, opens []Open) {
	for id, labels := range nl.Labels {
		if len(labels) > 1 {
			shorts = append(shorts, Short{Net: id, Labels: labels})
		}
	}
	byLabel := map[string][]int{}
	for id, labels := range nl.Labels {
		for _, l := range labels {
			byLabel[l] = append(byLabel[l], id)
		}
	}
	for _, l := range mustConnect {
		if nets := byLabel[l]; len(nets) > 1 {
			sort.Ints(nets)
			opens = append(opens, Open{Label: l, Nets: nets})
		}
	}
	sort.Slice(shorts, func(i, j int) bool { return shorts[i].Net < shorts[j].Net })
	sort.Slice(opens, func(i, j int) bool { return opens[i].Label < opens[j].Label })
	return shorts, opens
}

func (s Short) String() string { return fmt.Sprintf("short: net %d carries %v", s.Net, s.Labels) }
func (o Open) String() string {
	return fmt.Sprintf("open: label %q split over nets %v", o.Label, o.Nets)
}
