package extract

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/leafcell"
	"repro/internal/tech"
)

func TestSameLayerMerging(t *testing.T) {
	c := geom.NewCell("t")
	c.AddShape(tech.Metal1, geom.R(0, 0, 10, 10), "a")
	c.AddShape(tech.Metal1, geom.R(10, 0, 20, 10), "a") // abuts: same net
	c.AddShape(tech.Metal1, geom.R(30, 0, 40, 10), "b") // separate
	c.AddShape(tech.Metal2, geom.R(0, 0, 40, 10), "c")  // other layer: separate
	nl := Extract(c)
	if nl.NumNets != 3 {
		t.Fatalf("nets = %d, want 3", nl.NumNets)
	}
	if nl.NetOf[0] != nl.NetOf[1] {
		t.Fatal("abutting shapes should merge")
	}
	if nl.NetOf[0] == nl.NetOf[2] || nl.NetOf[0] == nl.NetOf[3] {
		t.Fatal("disjoint shapes merged")
	}
}

func TestViaConnectsLayers(t *testing.T) {
	c := geom.NewCell("t")
	c.AddShape(tech.Metal1, geom.R(0, 0, 100, 10), "x")
	c.AddShape(tech.Metal2, geom.R(0, 0, 10, 100), "x")
	nl := Extract(c)
	if nl.NumNets != 2 {
		t.Fatalf("without via: %d nets, want 2", nl.NumNets)
	}
	c.AddShape(tech.Via1, geom.R(2, 2, 8, 8), "")
	nl = Extract(c)
	if nl.NumNets != 1 {
		t.Fatalf("with via: %d nets, want 1", nl.NumNets)
	}
	// Via2 joins M2-M3 but not M1.
	c2 := geom.NewCell("t2")
	c2.AddShape(tech.Metal1, geom.R(0, 0, 10, 10), "m1")
	c2.AddShape(tech.Metal3, geom.R(0, 0, 10, 10), "m3")
	c2.AddShape(tech.Via2, geom.R(2, 2, 8, 8), "")
	nl2 := Extract(c2)
	if nl2.NumNets != 2 {
		t.Fatalf("via2 must not touch metal1: %d nets", nl2.NumNets)
	}
}

func TestContactConnectsPolyAndActive(t *testing.T) {
	c := geom.NewCell("t")
	c.AddShape(tech.Poly, geom.R(0, 0, 10, 10), "g")
	c.AddShape(tech.Metal1, geom.R(0, 0, 10, 10), "g")
	c.AddShape(tech.Contact, geom.R(2, 2, 8, 8), "")
	if nl := Extract(c); nl.NumNets != 1 {
		t.Fatalf("poly contact: %d nets", nl.NumNets)
	}
	c2 := geom.NewCell("t2")
	c2.AddShape(tech.Active, geom.R(0, 0, 10, 10), "d")
	c2.AddShape(tech.Metal1, geom.R(0, 0, 10, 10), "d")
	c2.AddShape(tech.Contact, geom.R(2, 2, 8, 8), "")
	if nl := Extract(c2); nl.NumNets != 1 {
		t.Fatalf("diffusion contact: %d nets", nl.NumNets)
	}
}

func TestVerifyShortsAndOpens(t *testing.T) {
	c := geom.NewCell("t")
	// Short: two labels on touching shapes.
	c.AddShape(tech.Metal1, geom.R(0, 0, 10, 10), "n1")
	c.AddShape(tech.Metal1, geom.R(10, 0, 20, 10), "n2")
	// Open: label "sig" on two disjoint islands.
	c.AddShape(tech.Metal2, geom.R(0, 50, 10, 60), "sig")
	c.AddShape(tech.Metal2, geom.R(100, 50, 110, 60), "sig")
	nl := Extract(c)
	shorts, opens := nl.Verify([]string{"sig"})
	if len(shorts) != 1 || len(shorts[0].Labels) != 2 {
		t.Fatalf("shorts = %v", shorts)
	}
	if len(opens) != 1 || opens[0].Label != "sig" || len(opens[0].Nets) != 2 {
		t.Fatalf("opens = %v", opens)
	}
	if shorts[0].String() == "" || opens[0].String() == "" {
		t.Fatal("string renderings empty")
	}
}

// TestLeafCellsShortFree runs the LVS-style check on every generated
// leaf cell: the geometric connectivity must never merge two
// different labelled nets (no shorts by construction).
func TestLeafCellsShortFree(t *testing.T) {
	lib, err := leafcell.NewLibrary(tech.CDA07, 2)
	if err != nil {
		t.Fatal(err)
	}
	cells := lib.All()
	cells = append(cells, lib.RowDecoder(8))
	for _, cell := range cells {
		nl := Extract(cell.Cell)
		shorts, _ := nl.Verify(nil)
		if len(shorts) > 0 {
			t.Errorf("%s: %v", cell.Name, shorts[0])
		}
	}
}

func TestCriticalAreaParallelWires(t *testing.T) {
	c := geom.NewCell("t")
	// Two horizontal wires, length 100, spacing 4.
	c.AddShape(tech.Metal1, geom.R(0, 0, 100, 3), "a")
	c.AddShape(tech.Metal1, geom.R(0, 7, 100, 10), "b")
	// r=1: 2r=2 < 4 -> no critical area.
	if ca := CriticalArea(c, tech.Metal1, 1, SignalPairs); ca != 0 {
		t.Fatalf("r=1 CA = %d, want 0", ca)
	}
	// r=3: 2r-4 = 2 over length 100 -> 200.
	if ca := CriticalArea(c, tech.Metal1, 3, SignalPairs); ca != 200 {
		t.Fatalf("r=3 CA = %d, want 200", ca)
	}
	// Monotone in radius.
	if !(CriticalArea(c, tech.Metal1, 5, SignalPairs) > 200) {
		t.Fatal("CA should grow with radius")
	}
	// Wrong layer: zero.
	if CriticalArea(c, tech.Metal2, 5, SignalPairs) != 0 {
		t.Fatal("CA on empty layer")
	}
}

func TestFatalPairFilter(t *testing.T) {
	if !FatalPairs("vdd", "gnd") || !FatalPairs("gnd", "vdd") {
		t.Fatal("vdd-gnd bridge is the fatal class")
	}
	if FatalPairs("vdd", "sig") || FatalPairs("sig", "gnd") || FatalPairs("vdd", "vdd") {
		t.Fatal("supply-signal / same-net is not fatal")
	}
	if FatalPairs("a", "b") {
		t.Fatal("signal-signal is not fatal")
	}
	if !SignalPairs("a", "b") || SignalPairs("a", "a") || SignalPairs("vdd", "b") {
		t.Fatal("signal filter wrong")
	}
	if !RepairablePairs("vdd", "b") || !RepairablePairs("a", "b") || RepairablePairs("vdd", "gnd") {
		t.Fatal("repairable filter wrong")
	}
}

// TestSRAMTemplateFatalCritArea reproduces the §VII argument: the 6T
// template keeps the two supply rails at opposite cell edges (and the
// array mirroring abuts like rails), so the fatal vdd-gnd critical
// area is zero for all realistic defect radii while repairable
// signal shorts dominate.
func TestSRAMTemplateFatalCritArea(t *testing.T) {
	cell := leafcell.SRAM6T(tech.CDA07)
	lambda := tech.CDA07.Lambda
	for _, rL := range []int{1, 2, 4} {
		if fatal := CriticalArea(cell.Cell, tech.Metal1, rL*lambda, FatalPairs); fatal != 0 {
			t.Errorf("fatal critical area at r=%dλ: %d, want 0", rL, fatal)
		}
	}
	// Repairable shorts exist already at small radii (device tabs at
	// the spacing rule).
	if rep := CriticalArea(cell.Cell, tech.Metal1, 2*lambda, RepairablePairs); rep == 0 {
		t.Fatal("expected repairable critical area at r=2λ")
	}
	// At some radius signal shorts appear on M2 too (bitline pair).
	sig := CriticalArea(cell.Cell, tech.Metal2, 20*lambda, SignalPairs)
	if sig == 0 {
		t.Fatal("expected non-zero signal critical area at large radius")
	}
}
