package extract

import (
	"math"

	"repro/internal/geom"
)

// bucketGrid is a uniform spatial hash over a fixed set of
// rectangles. It replaces the extractor's former O(n²)-worst-case
// same-layer pair scan (an x-sweep that degenerated on bit-cell
// arrays, where thousands of shapes share x-spans) and the
// O(cuts × shapes) cut-resolution loop with neighbourhood lookups:
// build once per layer, then query the handful of cells a rectangle
// covers.
//
// Determinism note: the union-find partition the extractor derives
// from these candidate sets is independent of the order pairs are
// discovered in, and net ids are compacted in shape-index order
// afterwards — so bucketing changes the visit order freely without
// changing a single output byte (the property the content-addressed
// cache depends on).
type bucketGrid struct {
	x0, y0 int // bbox origin
	cw, ch int // cell size (>= 1)
	nx, ny int
	// cells[cy*nx+cx] lists member indices (positions in members).
	cells [][]int32
	// members are the shape indices (caller's ids) in insertion order.
	members []int
	rects   []geom.Rect
	// stamp deduplicates query results without allocation; stampGen is
	// bumped per query.
	stamp    []int32
	stampGen int32
	// scratch is the reusable query result buffer.
	scratch []int
}

// newBucketGrid indexes rects[ids[i]] for every i. The grid targets
// about one member per cell: cell count ~ n with square cells scaled
// to the population bounding box.
func newBucketGrid(rects []geom.Rect, ids []int) *bucketGrid {
	g := &bucketGrid{members: ids, rects: rects}
	if len(ids) == 0 {
		g.nx, g.ny, g.cw, g.ch = 1, 1, 1, 1
		g.cells = make([][]int32, 1)
		return g
	}
	bbox := rects[ids[0]]
	for _, id := range ids[1:] {
		bbox = bbox.Union(rects[id])
	}
	side := int(math.Ceil(math.Sqrt(float64(len(ids)))))
	if side < 1 {
		side = 1
	}
	g.x0, g.y0 = bbox.X0, bbox.Y0
	g.nx, g.ny = side, side
	g.cw = (bbox.W() + side - 1) / side
	g.ch = (bbox.H() + side - 1) / side
	if g.cw < 1 {
		g.cw = 1
	}
	if g.ch < 1 {
		g.ch = 1
	}
	g.cells = make([][]int32, g.nx*g.ny)
	g.stamp = make([]int32, len(ids))
	for m, id := range ids {
		cx0, cy0, cx1, cy1 := g.cellRange(rects[id])
		for cy := cy0; cy <= cy1; cy++ {
			for cx := cx0; cx <= cx1; cx++ {
				k := cy*g.nx + cx
				g.cells[k] = append(g.cells[k], int32(m))
			}
		}
	}
	return g
}

// cellRange returns the inclusive cell span covered by r, clamped to
// the grid. Spans are computed on inclusive coordinates so two
// abutting rectangles (sharing an edge coordinate) always share at
// least one cell — abutment counts as connectivity.
func (g *bucketGrid) cellRange(r geom.Rect) (cx0, cy0, cx1, cy1 int) {
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	cx0 = clamp((r.X0-g.x0)/g.cw, 0, g.nx-1)
	cx1 = clamp((r.X1-g.x0)/g.cw, 0, g.nx-1)
	cy0 = clamp((r.Y0-g.y0)/g.ch, 0, g.ny-1)
	cy1 = clamp((r.Y1-g.y0)/g.ch, 0, g.ny-1)
	return
}

// query returns the shape indices of every member whose cell
// neighbourhood intersects r (a superset of the members actually
// touching r; callers re-check geometry). The returned slice is
// reused by the next query — do not retain it.
func (g *bucketGrid) query(r geom.Rect) []int {
	g.scratch = g.scratch[:0]
	if len(g.members) == 0 {
		return g.scratch
	}
	g.stampGen++
	cx0, cy0, cx1, cy1 := g.cellRange(r)
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			for _, m := range g.cells[cy*g.nx+cx] {
				if g.stamp[m] == g.stampGen {
					continue
				}
				g.stamp[m] = g.stampGen
				g.scratch = append(g.scratch, g.members[m])
			}
		}
	}
	return g.scratch
}
