package floorplan

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/cerr"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/tech"
)

// ctxCheckMoves is how many annealing moves run between context
// checks; checking every move would put a timer read in the hot loop.
const ctxCheckMoves = 256

// maxRefineIterations caps the annealing budget so that adversarial
// parameters cannot demand an effectively unbounded run. The cap is
// generous: production compiles use a few thousand iterations.
const maxRefineIterations = 10_000_000

// Refine improves a greedy floorplan by simulated annealing over
// macro placements: random re-orientation, relocation against another
// macro's edge, and pairwise position swaps, accepted under a
// geometric cooling schedule. The cost is the same outline-area /
// rectangularity / wirelength blend the constructive pass optimises,
// so Refine can only confirm or improve it. Deterministic for a given
// seed. Refine is RefineCtx with a background context.
func Refine(p *tech.Process, macros []Macro, nets []Net, initial *Result, iterations int, seed int64) (*Result, error) {
	return RefineCtx(context.Background(), p, macros, nets, initial, iterations, seed)
}

// RefineCtx is Refine under a context deadline. The annealing loop
// checks ctx every ctxCheckMoves moves; on expiry it rebuilds the
// floorplan from the best placements found so far and returns that
// partial result together with a cerr.ErrBudgetExceeded error, so
// callers keep a legal (if less optimised) floorplan as a diagnostic.
// An iteration budget above maxRefineIterations is rejected with
// cerr.ErrInvalidParams before any work runs.
func RefineCtx(ctx context.Context, p *tech.Process, macros []Macro, nets []Net, initial *Result, iterations int, seed int64) (*Result, error) {
	if iterations <= 0 {
		return initial, nil
	}
	if iterations > maxRefineIterations {
		return initial, cerr.New(cerr.CodeInvalidParams,
			"floorplan: refine budget %d exceeds cap %d", iterations, maxRefineIterations)
	}
	moves := 0
	var endSpan func(...obs.Attr)
	ctx, endSpan = obs.Start(ctx, "floorplan.refine")
	defer func() {
		endSpan(obs.Int("moves", moves), obs.Int("budget", iterations))
	}()
	byName := map[string]*Macro{}
	for i := range macros {
		byName[macros[i].Name] = &macros[i]
	}
	names := make([]string, 0, len(macros))
	for i := range macros {
		names = append(names, macros[i].Name)
	}
	cur := map[string]Placement{}
	for n, pl := range initial.Placements {
		cur[n] = pl
	}
	rng := rand.New(rand.NewSource(seed))

	cost := func(pls map[string]Placement) float64 {
		var bbox geom.Rect
		for n, pl := range pls {
			bbox = bbox.Union(placedBounds(byName[n], pl))
		}
		area := float64(bbox.Area())
		w, h := float64(bbox.W()), float64(bbox.H())
		aspect := 1.0
		if w > 0 && h > 0 {
			aspect = math.Max(w, h) / math.Min(w, h)
		}
		wl := 0.0
		for _, net := range nets {
			var pts []geom.Point
			for _, pin := range net.Pins {
				r, _, ok := portRect(byName[pin.Macro], pls[pin.Macro], pin.Port)
				if ok {
					pts = append(pts, r.Center())
				}
			}
			for i := 1; i < len(pts); i++ {
				wl += math.Abs(float64(pts[i].X-pts[i-1].X)) + math.Abs(float64(pts[i].Y-pts[i-1].Y))
			}
		}
		return area*(1+0.5*(aspect-1)) + wl*(math.Sqrt(area)+1)/8
	}
	legal := func(pls map[string]Placement) bool {
		boxes := make([]geom.Rect, 0, len(pls))
		for n, pl := range pls {
			boxes = append(boxes, placedBounds(byName[n], pl))
		}
		for i := range boxes {
			for j := i + 1; j < len(boxes); j++ {
				if boxes[i].Overlaps(boxes[j]) {
					return false
				}
			}
		}
		return true
	}

	curCost := cost(cur)
	best := clonePlacements(cur)
	bestCost := curCost
	temp := curCost * 0.05
	cool := math.Pow(0.01, 1/float64(iterations)) // decay to 1% over the run

	var budgetErr error
	for it := 0; it < iterations; it++ {
		moves = it + 1
		if it%ctxCheckMoves == 0 {
			if err := ctx.Err(); err != nil {
				moves = it
				budgetErr = cerr.Wrap(cerr.CodeBudgetExceeded, err,
					"floorplan: refine cancelled after %d of %d iterations", it, iterations)
				break
			}
		}
		cand := clonePlacements(cur)
		switch rng.Intn(3) {
		case 0: // re-orient in place (keep the lower-left corner)
			n := names[rng.Intn(len(names))]
			pl := cand[n]
			old := placedBounds(byName[n], pl)
			pl.Orient = geom.AllOrients[rng.Intn(len(geom.AllOrients))]
			tb := geom.TransformRect(byName[n].Cell.Bounds(), pl.Orient)
			pl.At = geom.Point{X: old.X0 - tb.X0, Y: old.Y0 - tb.Y0}
			cand[n] = pl
		case 1: // relocate against a random other macro's edge
			n := names[rng.Intn(len(names))]
			m := names[rng.Intn(len(names))]
			if n == m {
				continue
			}
			anchor := placedBounds(byName[m], cand[m])
			pl := cand[n]
			tb := geom.TransformRect(byName[n].Cell.Bounds(), pl.Orient)
			var at geom.Point
			switch rng.Intn(4) {
			case 0:
				at = geom.Point{X: anchor.X1, Y: anchor.Y0}
			case 1:
				at = geom.Point{X: anchor.X0, Y: anchor.Y1}
			case 2:
				at = geom.Point{X: anchor.X0 - tb.W(), Y: anchor.Y0}
			default:
				at = geom.Point{X: anchor.X0, Y: anchor.Y0 - tb.H()}
			}
			pl.At = geom.Point{X: at.X - tb.X0, Y: at.Y - tb.Y0}
			cand[n] = pl
		default: // swap two macros' anchor corners
			a := names[rng.Intn(len(names))]
			b := names[rng.Intn(len(names))]
			if a == b {
				continue
			}
			ba := placedBounds(byName[a], cand[a])
			bb := placedBounds(byName[b], cand[b])
			pa, pb := cand[a], cand[b]
			ta := geom.TransformRect(byName[a].Cell.Bounds(), pa.Orient)
			tbx := geom.TransformRect(byName[b].Cell.Bounds(), pb.Orient)
			pa.At = geom.Point{X: bb.X0 - ta.X0, Y: bb.Y0 - ta.Y0}
			pb.At = geom.Point{X: ba.X0 - tbx.X0, Y: ba.Y0 - tbx.Y0}
			cand[a], cand[b] = pa, pb
		}
		if !legal(cand) {
			temp *= cool
			continue
		}
		cc := cost(cand)
		if cc < curCost || rng.Float64() < math.Exp((curCost-cc)/math.Max(temp, 1)) {
			cur, curCost = cand, cc
			if cc < bestCost {
				best, bestCost = clonePlacements(cand), cc
			}
		}
		temp *= cool
	}

	// Rebuild the final result from the best placements (on budget
	// expiry this is the best-so-far partial answer).
	st := &state{p: p, placed: best, byName: byName, nets: nets}
	for _, n := range names {
		st.boxes = append(st.boxes, placedBounds(byName[n], best[n]))
		st.bbox = st.bbox.Union(st.boxes[len(st.boxes)-1])
	}
	res, err := st.finish(macros)
	if err != nil {
		return res, err
	}
	return res, budgetErr
}

func clonePlacements(in map[string]Placement) map[string]Placement {
	out := make(map[string]Placement, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}
