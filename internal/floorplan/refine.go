package floorplan

import (
	"context"
	"math"
	"math/rand"
	"sync"

	"repro/internal/cerr"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/tech"
)

// ctxCheckMoves is how many annealing moves run between context
// checks; checking every move would put a timer read in the hot loop.
const ctxCheckMoves = 256

// maxRefineIterations caps the annealing budget so that adversarial
// parameters cannot demand an effectively unbounded run. The cap is
// generous: production compiles use a few thousand iterations.
const maxRefineIterations = 10_000_000

// maxRefineStarts caps the multi-start fan-out.
const maxRefineStarts = 64

// Refine improves a greedy floorplan by simulated annealing over
// macro placements: random re-orientation, relocation against another
// macro's edge, and pairwise position swaps, accepted under a
// geometric cooling schedule. The cost is the same outline-area /
// rectangularity / wirelength blend the constructive pass optimises,
// so Refine can only confirm or improve it. Deterministic for a given
// seed. Refine is RefineCtx with a background context.
func Refine(p *tech.Process, macros []Macro, nets []Net, initial *Result, iterations int, seed int64) (*Result, error) {
	return RefineCtx(context.Background(), p, macros, nets, initial, iterations, seed)
}

// RefineCtx is Refine under a context deadline: a single annealing
// start. The loop checks ctx every ctxCheckMoves moves; on expiry it
// rebuilds the floorplan from the best placements found so far and
// returns that partial result together with a
// cerr.ErrBudgetExceeded error, so callers keep a legal (if less
// optimised) floorplan as a diagnostic. An iteration budget above
// maxRefineIterations is rejected with cerr.ErrInvalidParams before
// any work runs. RefineCtx is RefineMultiCtx with one start.
func RefineCtx(ctx context.Context, p *tech.Process, macros []Macro, nets []Net, initial *Result, iterations int, seed int64) (*Result, error) {
	return RefineMultiCtx(ctx, p, macros, nets, initial, iterations, seed, 1, 1)
}

// RefineMultiCtx runs `starts` independent annealing starts with the
// deterministic seed sequence seed, seed+1, …, seed+starts-1, the
// total move budget split evenly across starts (earlier starts absorb
// the remainder), and returns the floorplan of the winning start.
//
// The winner is chosen by (cost, seed): lowest annealing cost first,
// ties broken by the lowest seed. Every start is deterministic given
// its seed and budget share, and the tiebreak is scheduling-blind, so
// the result is byte-identical whether the starts run sequentially or
// concurrently — `par` (clamped to [1, starts]) only bounds how many
// run at once and never influences the outcome. Each start records
// its own "floorplan.refine" span (attrs: seed, moves, budget), so
// traces nest correctly under the caller's floorplan stage span even
// when starts interleave.
//
// On context expiry the in-flight starts return their best-so-far
// placements with a cerr.ErrBudgetExceeded; the winner among the
// partial results is still returned alongside the budget error, so
// callers keep a legal floorplan as a diagnostic (the compiler's
// degradation ladder records the stop instead of failing).
func RefineMultiCtx(ctx context.Context, p *tech.Process, macros []Macro, nets []Net, initial *Result, iterations int, seed int64, starts, par int) (*Result, error) {
	if iterations <= 0 {
		return initial, nil
	}
	if iterations > maxRefineIterations {
		return initial, cerr.New(cerr.CodeInvalidParams,
			"floorplan: refine budget %d exceeds cap %d", iterations, maxRefineIterations)
	}
	if starts < 1 {
		starts = 1
	}
	if starts > maxRefineStarts {
		return initial, cerr.New(cerr.CodeInvalidParams,
			"floorplan: %d refine starts exceed cap %d", starts, maxRefineStarts)
	}
	if starts > iterations {
		starts = iterations // every start must get at least one move
	}
	if par < 1 {
		par = 1
	}
	if par > starts {
		par = starts
	}

	type outcome struct {
		best map[string]Placement
		cost float64
		err  error
	}
	outs := make([]outcome, starts)
	share := iterations / starts
	extra := iterations % starts

	runStart := func(i int) {
		budget := share
		if i < extra {
			budget++
		}
		best, cost, err := refineOne(ctx, macros, nets, initial, budget, seed+int64(i))
		outs[i] = outcome{best: best, cost: cost, err: err}
	}

	if par == 1 {
		for i := 0; i < starts; i++ {
			runStart(i)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, par)
		for i := 0; i < starts; i++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				runStart(i)
			}(i)
		}
		wg.Wait()
	}

	// Winner by (cost, seed): strictly-lower cost wins; equal cost
	// keeps the earlier seed. Scheduling order cannot influence this.
	win := 0
	var budgetErr error
	for i := 0; i < starts; i++ {
		if outs[i].err != nil && budgetErr == nil {
			budgetErr = outs[i].err
		}
		if outs[i].cost < outs[win].cost {
			win = i
		}
	}

	// Rebuild the final result from the winning placements (on budget
	// expiry this is the best-so-far partial answer).
	byName := macrosByName(macros)
	st := &state{p: p, placed: outs[win].best, byName: byName, nets: nets}
	for i := range macros {
		st.boxes = append(st.boxes, placedBounds(byName[macros[i].Name], outs[win].best[macros[i].Name]))
		st.bbox = st.bbox.Union(st.boxes[len(st.boxes)-1])
	}
	res, err := st.finish(macros)
	if err != nil {
		return res, err
	}
	return res, budgetErr
}

// macrosByName indexes a macro slice; the map values point into the
// slice, which callers must treat as read-only for the map's life.
func macrosByName(macros []Macro) map[string]*Macro {
	byName := make(map[string]*Macro, len(macros))
	for i := range macros {
		byName[macros[i].Name] = &macros[i]
	}
	return byName
}

// refineOne is one deterministic annealing start: it owns its RNG and
// placement clones and shares only read-only inputs (macros, nets,
// initial), so any number of starts may run concurrently. It returns
// the best placements found, their annealing cost, and a typed budget
// error when ctx expired mid-run.
func refineOne(ctx context.Context, macros []Macro, nets []Net, initial *Result, iterations int, seed int64) (map[string]Placement, float64, error) {
	moves := 0
	var endSpan func(...obs.Attr)
	ctx, endSpan = obs.Start(ctx, "floorplan.refine")
	defer func() {
		endSpan(obs.Int("moves", moves), obs.Int("budget", iterations),
			obs.Int("seed", int(seed)))
	}()
	byName := macrosByName(macros)
	names := make([]string, 0, len(macros))
	for i := range macros {
		names = append(names, macros[i].Name)
	}
	cur := map[string]Placement{}
	for n, pl := range initial.Placements {
		cur[n] = pl
	}
	rng := rand.New(rand.NewSource(seed))

	cost := func(pls map[string]Placement) float64 {
		var bbox geom.Rect
		for n, pl := range pls {
			bbox = bbox.Union(placedBounds(byName[n], pl))
		}
		area := float64(bbox.Area())
		w, h := float64(bbox.W()), float64(bbox.H())
		aspect := 1.0
		if w > 0 && h > 0 {
			aspect = math.Max(w, h) / math.Min(w, h)
		}
		wl := 0.0
		for _, net := range nets {
			var pts []geom.Point
			for _, pin := range net.Pins {
				r, _, ok := portRect(byName[pin.Macro], pls[pin.Macro], pin.Port)
				if ok {
					pts = append(pts, r.Center())
				}
			}
			for i := 1; i < len(pts); i++ {
				wl += math.Abs(float64(pts[i].X-pts[i-1].X)) + math.Abs(float64(pts[i].Y-pts[i-1].Y))
			}
		}
		return area*(1+0.5*(aspect-1)) + wl*(math.Sqrt(area)+1)/8
	}
	legal := func(pls map[string]Placement) bool {
		boxes := make([]geom.Rect, 0, len(pls))
		for n, pl := range pls {
			boxes = append(boxes, placedBounds(byName[n], pl))
		}
		for i := range boxes {
			for j := i + 1; j < len(boxes); j++ {
				if boxes[i].Overlaps(boxes[j]) {
					return false
				}
			}
		}
		return true
	}

	curCost := cost(cur)
	best := clonePlacements(cur)
	bestCost := curCost
	temp := curCost * 0.05
	cool := math.Pow(0.01, 1/float64(iterations)) // decay to 1% over the run

	var budgetErr error
	for it := 0; it < iterations; it++ {
		moves = it + 1
		if it%ctxCheckMoves == 0 {
			if err := ctx.Err(); err != nil {
				moves = it
				budgetErr = cerr.Wrap(cerr.CodeBudgetExceeded, err,
					"floorplan: refine cancelled after %d of %d iterations", it, iterations)
				break
			}
		}
		cand := clonePlacements(cur)
		switch rng.Intn(3) {
		case 0: // re-orient in place (keep the lower-left corner)
			n := names[rng.Intn(len(names))]
			pl := cand[n]
			old := placedBounds(byName[n], pl)
			pl.Orient = geom.AllOrients[rng.Intn(len(geom.AllOrients))]
			tb := geom.TransformRect(byName[n].Cell.Bounds(), pl.Orient)
			pl.At = geom.Point{X: old.X0 - tb.X0, Y: old.Y0 - tb.Y0}
			cand[n] = pl
		case 1: // relocate against a random other macro's edge
			n := names[rng.Intn(len(names))]
			m := names[rng.Intn(len(names))]
			if n == m {
				continue
			}
			anchor := placedBounds(byName[m], cand[m])
			pl := cand[n]
			tb := geom.TransformRect(byName[n].Cell.Bounds(), pl.Orient)
			var at geom.Point
			switch rng.Intn(4) {
			case 0:
				at = geom.Point{X: anchor.X1, Y: anchor.Y0}
			case 1:
				at = geom.Point{X: anchor.X0, Y: anchor.Y1}
			case 2:
				at = geom.Point{X: anchor.X0 - tb.W(), Y: anchor.Y0}
			default:
				at = geom.Point{X: anchor.X0, Y: anchor.Y0 - tb.H()}
			}
			pl.At = geom.Point{X: at.X - tb.X0, Y: at.Y - tb.Y0}
			cand[n] = pl
		default: // swap two macros' anchor corners
			a := names[rng.Intn(len(names))]
			b := names[rng.Intn(len(names))]
			if a == b {
				continue
			}
			ba := placedBounds(byName[a], cand[a])
			bb := placedBounds(byName[b], cand[b])
			pa, pb := cand[a], cand[b]
			ta := geom.TransformRect(byName[a].Cell.Bounds(), pa.Orient)
			tbx := geom.TransformRect(byName[b].Cell.Bounds(), pb.Orient)
			pa.At = geom.Point{X: bb.X0 - ta.X0, Y: bb.Y0 - ta.Y0}
			pb.At = geom.Point{X: ba.X0 - tbx.X0, Y: ba.Y0 - tbx.Y0}
			cand[a], cand[b] = pa, pb
		}
		if !legal(cand) {
			temp *= cool
			continue
		}
		cc := cost(cand)
		if cc < curCost || rng.Float64() < math.Exp((curCost-cc)/math.Max(temp, 1)) {
			cur, curCost = cand, cc
			if cc < bestCost {
				best, bestCost = clonePlacements(cand), cc
			}
		}
		temp *= cool
	}

	return best, bestCost, budgetErr
}

func clonePlacements(in map[string]Placement) map[string]Placement {
	out := make(map[string]Placement, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}
