// Package floorplan implements BISRAMGEN's macrocell place-and-route:
// rectangular macrocells are sorted in decreasing order of area and
// placed greedily with the paper's two heuristics — port alignment
// (edges carrying connected ports are placed facing each other with
// the ports aligned, avoiding the 64-orientation-pair search) and
// stretching (a macro slides along its abutment edge so that as many
// connected ports as possible line up) — while keeping the overall
// outline "as rectangular as possible". Connections that do not
// resolve by abutment are routed over the cell with metal3 L-routes.
package floorplan

import (
	"math"
	"sort"

	"repro/internal/cerr"
	"repro/internal/geom"
	"repro/internal/tech"
)

// Macro is one block to place.
type Macro struct {
	Name string
	Cell *geom.Cell
}

// Pin names one macro port.
type Pin struct {
	Macro string
	Port  string
}

// Net is a logical connection between pins of different macros.
type Net struct {
	Name string
	Pins []Pin
}

// Placement is the final position of one macro.
type Placement struct {
	Orient geom.Orient
	At     geom.Point
}

// Result is the completed floorplan.
type Result struct {
	Top        *geom.Cell
	Placements map[string]Placement
	// Area is the bounding-box area; SumMacroArea the lower bound.
	Area         int64
	SumMacroArea int64
	// Rectangularity = Area / SumMacroArea (the paper's provably
	// (1+epsilon) claim is about this ratio staying near 1).
	Rectangularity float64
	// AspectRatio = long side / short side of the outline.
	AspectRatio float64
	Wirelength  int64
	AbuttedNets int
	RoutedNets  int
}

// Place floorplans the macros. The process supplies the metal3 rules
// for over-the-cell routing. All failures are typed cerr.ErrFloorplan
// errors so the compiler's degradation ladder can detect them and fall
// back to Stack.
func Place(p *tech.Process, macros []Macro, nets []Net) (*Result, error) {
	byName, err := indexMacros(macros, nets)
	if err != nil {
		return nil, err
	}

	// Decreasing-area order (paper's first step).
	order := make([]*Macro, len(macros))
	copy(order, func() []*Macro {
		v := make([]*Macro, len(macros))
		for i := range macros {
			v[i] = &macros[i]
		}
		return v
	}())
	sort.SliceStable(order, func(i, j int) bool { return order[i].Cell.Area() > order[j].Cell.Area() })

	st := &state{p: p, placed: map[string]Placement{}, byName: byName, nets: nets}
	// First macro at the origin.
	first := order[0]
	st.commit(first, Placement{Orient: geom.R0, At: geom.Point{}})
	for _, m := range order[1:] {
		best, ok := st.bestPlacement(m)
		if !ok {
			return nil, cerr.New(cerr.CodeFloorplan, "floorplan: no legal position for %q", m.Name)
		}
		st.commit(m, best)
	}
	return st.finish(macros)
}

// indexMacros validates the macro and net lists shared by Place and
// Stack and returns the name index. All errors are CodeFloorplan.
func indexMacros(macros []Macro, nets []Net) (map[string]*Macro, error) {
	if len(macros) == 0 {
		return nil, cerr.New(cerr.CodeFloorplan, "floorplan: no macros")
	}
	byName := map[string]*Macro{}
	for i := range macros {
		m := &macros[i]
		if m.Cell == nil || m.Cell.Bounds().Empty() {
			return nil, cerr.New(cerr.CodeFloorplan, "floorplan: macro %q has no geometry", m.Name)
		}
		if _, dup := byName[m.Name]; dup {
			return nil, cerr.New(cerr.CodeFloorplan, "floorplan: duplicate macro %q", m.Name)
		}
		byName[m.Name] = m
	}
	for _, n := range nets {
		for _, pin := range n.Pins {
			m, ok := byName[pin.Macro]
			if !ok {
				return nil, cerr.New(cerr.CodeFloorplan, "floorplan: net %q references unknown macro %q", n.Name, pin.Macro)
			}
			if _, ok := m.Cell.Port(pin.Port); !ok {
				return nil, cerr.New(cerr.CodeFloorplan, "floorplan: net %q references unknown port %s.%s", n.Name, pin.Macro, pin.Port)
			}
		}
	}
	return byName, nil
}

// Stack is the degraded-mode placer: macros are stacked vertically in
// decreasing-area order with no orientation search, no port alignment,
// and no stretching. It cannot fail once the inputs validate (every
// macro gets a fresh shelf above the previous one), which is what makes
// it a safe fallback rung for the compiler's degradation ladder when
// Place cannot find a legal abutment placement. Connectivity is still
// resolved in finish (abutment detection plus M3 L-routes), so the
// result is a legal — merely less compact — floorplan.
func Stack(p *tech.Process, macros []Macro, nets []Net) (*Result, error) {
	byName, err := indexMacros(macros, nets)
	if err != nil {
		return nil, err
	}
	order := make([]*Macro, len(macros))
	for i := range macros {
		order[i] = &macros[i]
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].Cell.Area() > order[j].Cell.Area() })

	st := &state{p: p, placed: map[string]Placement{}, byName: byName, nets: nets}
	y := 0
	for _, m := range order {
		b := m.Cell.Bounds()
		// Anchor the macro's lower-left at (0, y) in R0.
		st.commit(m, Placement{Orient: geom.R0, At: geom.Point{X: -b.X0, Y: y - b.Y0}})
		y += b.H()
	}
	return st.finish(macros)
}

type state struct {
	p      *tech.Process
	byName map[string]*Macro
	nets   []Net

	placed map[string]Placement
	boxes  []geom.Rect
	bbox   geom.Rect
}

// placedBounds returns the placed bbox of a macro under a placement.
func placedBounds(m *Macro, pl Placement) geom.Rect {
	return geom.TransformRect(m.Cell.Bounds(), pl.Orient).Translate(pl.At)
}

// portRect returns the placed rect of a macro port.
func portRect(m *Macro, pl Placement, port string) (geom.Rect, geom.Layer, bool) {
	pt, ok := m.Cell.Port(port)
	if !ok {
		return geom.Rect{}, 0, false
	}
	return geom.TransformRect(pt.Rect, pl.Orient).Translate(pl.At), pt.Layer, true
}

func (st *state) commit(m *Macro, pl Placement) {
	st.placed[m.Name] = pl
	b := placedBounds(m, pl)
	st.boxes = append(st.boxes, b)
	st.bbox = st.bbox.Union(b)
}

// overlapsPlaced reports whether r collides with any placed box.
func (st *state) overlapsPlaced(r geom.Rect) bool {
	for _, b := range st.boxes {
		if b.Overlaps(r) {
			return true
		}
	}
	return false
}

// connections lists the (newPort, placedMacro, placedPort) pairs of
// nets joining macro m to already-placed macros.
func (st *state) connections(m *Macro) [][3]string {
	var out [][3]string
	for _, n := range st.nets {
		var mine []string
		var theirs [][2]string
		for _, pin := range n.Pins {
			if pin.Macro == m.Name {
				mine = append(mine, pin.Port)
			} else if _, ok := st.placed[pin.Macro]; ok {
				theirs = append(theirs, [2]string{pin.Macro, pin.Port})
			}
		}
		for _, mp := range mine {
			for _, tp := range theirs {
				out = append(out, [3]string{mp, tp[0], tp[1]})
			}
		}
	}
	return out
}

// bestPlacement evaluates candidate positions x orientations and
// returns the lowest-cost legal placement.
func (st *state) bestPlacement(m *Macro) (Placement, bool) {
	conns := st.connections(m)
	gap := 0 // abutting placement; spacing comes from abutment boxes
	var cands []geom.Point
	// Global shelf positions.
	cands = append(cands,
		geom.Point{X: st.bbox.X1 + gap, Y: st.bbox.Y0},
		geom.Point{X: st.bbox.X0, Y: st.bbox.Y1 + gap},
	)
	// Adjacent to each placed box.
	for _, b := range st.boxes {
		cands = append(cands,
			geom.Point{X: b.X1 + gap, Y: b.Y0},
			geom.Point{X: b.X0, Y: b.Y1 + gap},
			geom.Point{X: b.X0, Y: b.Y0}, // will be shifted left/down below
		)
	}
	bestCost := math.Inf(1)
	var best Placement
	found := false
	for _, o := range geom.AllOrients {
		tb := geom.TransformRect(m.Cell.Bounds(), o)
		for _, c := range cands {
			// Anchor the transformed bounds' lower-left at c.
			at := geom.Point{X: c.X - tb.X0, Y: c.Y - tb.Y0}
			pl := Placement{Orient: o, At: at}
			pl = st.stretch(m, pl, conns)
			r := placedBounds(m, pl)
			if st.overlapsPlaced(r) {
				continue
			}
			cost := st.cost(m, pl, r, conns)
			if cost < bestCost {
				bestCost, best, found = cost, pl, true
			}
		}
	}
	return best, found
}

// stretch slides the macro along the axis that keeps it adjacent to
// the outline, minimising the port misalignment of its connections —
// the paper's stretching heuristic (implemented as a rigid slide; the
// macro's own geometry is not deformed).
func (st *state) stretch(m *Macro, pl Placement, conns [][3]string) Placement {
	if len(conns) == 0 {
		return pl
	}
	var dxs, dys []int
	for _, c := range conns {
		pr, _, ok := portRect(m, pl, c[0])
		if !ok {
			continue
		}
		om := st.byName[c[1]]
		opl, placedOK := st.placed[c[1]]
		if !placedOK {
			continue
		}
		or, _, ok := portRect(om, opl, c[2])
		if !ok {
			continue
		}
		dxs = append(dxs, or.Center().X-pr.Center().X)
		dys = append(dys, or.Center().Y-pr.Center().Y)
	}
	if len(dxs) == 0 {
		return pl
	}
	sort.Ints(dxs)
	sort.Ints(dys)
	medX := dxs[len(dxs)/2]
	medY := dys[len(dys)/2]
	// Try the slide in each single axis; keep the first that stays
	// legal and reduces misalignment.
	for _, d := range []geom.Point{{X: 0, Y: medY}, {X: medX, Y: 0}} {
		if d == (geom.Point{}) {
			continue
		}
		slid := Placement{Orient: pl.Orient, At: pl.At.Add(d)}
		if !st.overlapsPlaced(placedBounds(m, slid)) {
			return slid
		}
	}
	return pl
}

// cost scores a candidate placement: outline area, aspect-ratio
// penalty (rectangularity), and connection wirelength.
func (st *state) cost(m *Macro, pl Placement, r geom.Rect, conns [][3]string) float64 {
	nb := st.bbox.Union(r)
	area := float64(nb.Area())
	w, h := float64(nb.W()), float64(nb.H())
	aspect := math.Max(w, h) / math.Max(1, math.Min(w, h))
	wl := 0.0
	for _, c := range conns {
		pr, _, ok := portRect(m, pl, c[0])
		if !ok {
			continue
		}
		om := st.byName[c[1]]
		or, _, ok := portRect(om, st.placed[c[1]], c[2])
		if !ok {
			continue
		}
		a, b := pr.Center(), or.Center()
		wl += math.Abs(float64(a.X-b.X)) + math.Abs(float64(a.Y-b.Y))
	}
	scale := math.Sqrt(area) + 1
	return area*(1+0.5*(aspect-1)) + wl*scale/8
}

// finish assembles the top cell, abutment detection, and M3 routing.
func (st *state) finish(macros []Macro) (*Result, error) {
	top := geom.NewCell("floorplan")
	res := &Result{Top: top, Placements: map[string]Placement{}}
	for i := range macros {
		m := &macros[i]
		pl := st.placed[m.Name]
		res.Placements[m.Name] = pl
		top.Place(m.Name, m.Cell, pl.Orient, pl.At)
		res.SumMacroArea += m.Cell.Area()
	}
	// Connectivity: a 2-pin connection counts as abutted when the port
	// rects touch or overlap; otherwise it gets an over-the-cell M3
	// L-route between port centers.
	m3w := st.p.MinWidth(tech.Metal3)
	for _, n := range st.nets {
		type placedPin struct {
			r geom.Rect
		}
		var pins []placedPin
		for _, pin := range n.Pins {
			m := st.byName[pin.Macro]
			r, _, ok := portRect(m, st.placed[pin.Macro], pin.Port)
			if !ok {
				continue
			}
			pins = append(pins, placedPin{r: r})
		}
		if len(pins) < 2 {
			continue
		}
		// Chain consecutive pins.
		netAbutted := true
		for i := 1; i < len(pins); i++ {
			a, b := pins[i-1].r, pins[i].r
			if a.Expand(1).Overlaps(b) {
				continue // abutted
			}
			netAbutted = false
			// L-route on metal3.
			p0, p1 := a.Center(), b.Center()
			h := geom.R(min(p0.X, p1.X)-m3w/2, p0.Y-m3w/2, max(p0.X, p1.X)+m3w/2, p0.Y+m3w/2)
			v := geom.R(p1.X-m3w/2, min(p0.Y, p1.Y)-m3w/2, p1.X+m3w/2, max(p0.Y, p1.Y)+m3w/2)
			top.AddShape(tech.Metal3, h, n.Name)
			top.AddShape(tech.Metal3, v, n.Name)
			res.Wirelength += int64(abs(p0.X-p1.X) + abs(p0.Y-p1.Y))
		}
		if netAbutted {
			res.AbuttedNets++
		} else {
			res.RoutedNets++
		}
	}
	res.Area = st.bbox.Area()
	if res.SumMacroArea > 0 {
		res.Rectangularity = float64(res.Area) / float64(res.SumMacroArea)
	}
	w, h := float64(st.bbox.W()), float64(st.bbox.H())
	if w > 0 && h > 0 {
		res.AspectRatio = math.Max(w, h) / math.Min(w, h)
	}
	return res, nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
