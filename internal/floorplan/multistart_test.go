package floorplan

import (
	"context"
	"testing"

	"repro/internal/cerr"
	"repro/internal/tech"
)

func multiMacros(t *testing.T, n int) ([]Macro, *Result) {
	t.Helper()
	var macros []Macro
	for i := 0; i < n; i++ {
		macros = append(macros, block(string(rune('a'+i)), 300+i*90, 200+(i%3)*70))
	}
	base, err := Place(tech.CDA07, macros, nil)
	if err != nil {
		t.Fatal(err)
	}
	return macros, base
}

// TestMultiStartSchedulingBlind is the byte-determinism contract: the
// winning floorplan must be identical whether the starts run
// sequentially (par=1) or fully concurrently (par=starts), because the
// seed sequence, per-start budgets, and the (cost, seed) tiebreak are
// all fixed by the inputs alone.
func TestMultiStartSchedulingBlind(t *testing.T) {
	macros, base := multiMacros(t, 7)
	for _, starts := range []int{1, 2, 4, 8} {
		serial, err := RefineMultiCtx(context.Background(), tech.CDA07, macros, nil, base, 4000, 5, starts, 1)
		if err != nil {
			t.Fatal(err)
		}
		par, err := RefineMultiCtx(context.Background(), tech.CDA07, macros, nil, base, 4000, 5, starts, starts)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Area != par.Area || serial.Wirelength != par.Wirelength {
			t.Fatalf("starts=%d: serial %d/%d vs parallel %d/%d",
				starts, serial.Area, serial.Wirelength, par.Area, par.Wirelength)
		}
		for name, pl := range serial.Placements {
			if par.Placements[name] != pl {
				t.Fatalf("starts=%d: placement of %q differs: %+v vs %+v",
					starts, name, pl, par.Placements[name])
			}
		}
	}
}

// TestMultiStartNoWorseThanSingle: with the same total budget, the
// multi-start winner can only match or beat the single start seeded at
// the base seed... is NOT guaranteed in general (each start gets a
// smaller share), but the winner must never be worse than the greedy
// initial by much, and must stay legal.
func TestMultiStartLegalAndBounded(t *testing.T) {
	macros, base := multiMacros(t, 6)
	res, err := RefineMultiCtx(context.Background(), tech.CDA07, macros, nil, base, 6000, 9, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if blended(res) > blended(base)*1.05 {
		t.Fatalf("multi-start regressed: %.0f -> %.0f", blended(base), blended(res))
	}
}

func TestMultiStartClamps(t *testing.T) {
	macros, base := multiMacros(t, 4)
	// More starts than iterations: clamped so every start gets >= 1 move.
	res, err := RefineMultiCtx(context.Background(), tech.CDA07, macros, nil, base, 3, 1, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("nil result")
	}
	// Over-cap starts are rejected with typed params error.
	_, err = RefineMultiCtx(context.Background(), tech.CDA07, macros, nil, base, 1000, 1, maxRefineStarts+1, 1)
	if cerr.CodeOf(err) != cerr.CodeInvalidParams {
		t.Fatalf("want CodeInvalidParams for %d starts, got %v", maxRefineStarts+1, err)
	}
}

// TestMultiStartBudgetExpiry: an already-cancelled context still
// yields a legal floorplan plus the typed budget error.
func TestMultiStartBudgetExpiry(t *testing.T) {
	macros, base := multiMacros(t, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RefineMultiCtx(ctx, tech.CDA07, macros, nil, base, 5000, 2, 4, 4)
	if cerr.CodeOf(err) != cerr.CodeBudgetExceeded {
		t.Fatalf("want CodeBudgetExceeded, got %v", err)
	}
	if res == nil || len(res.Placements) != len(macros) {
		t.Fatalf("expired refine should still return a full floorplan, got %+v", res)
	}
}
