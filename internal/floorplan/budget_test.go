package floorplan

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cerr"
	"repro/internal/tech"
)

// TestRefineCtxDeadline drives the annealer with a huge iteration
// budget under a 1 ms deadline: it must stop promptly, return the
// best-so-far floorplan, and classify the stop as ERR_BUDGET_EXCEEDED.
func TestRefineCtxDeadline(t *testing.T) {
	var macros []Macro
	for i := 0; i < 10; i++ {
		macros = append(macros, block(string(rune('a'+i)), 300+i*90, 200+i*70))
	}
	base, err := Place(tech.CDA07, macros, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := RefineCtx(ctx, tech.CDA07, macros, nil, base, maxRefineIterations, 7)
	elapsed := time.Since(start)
	if !errors.Is(err, cerr.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("refine did not stop promptly: %v", elapsed)
	}
	if res == nil || res.Top == nil {
		t.Fatal("no best-so-far partial result returned")
	}
	if res.Area <= 0 {
		t.Fatalf("partial result has no area: %+v", res)
	}
}

// TestRefineCtxBudgetCap rejects an absurd iteration request before
// doing any work.
func TestRefineCtxBudgetCap(t *testing.T) {
	macros := []Macro{block("a", 100, 100), block("b", 80, 60)}
	base, err := Place(tech.CDA07, macros, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RefineCtx(context.Background(), tech.CDA07, macros, nil, base, maxRefineIterations+1, 1)
	if !errors.Is(err, cerr.ErrInvalidParams) {
		t.Fatalf("want ErrInvalidParams, got %v", err)
	}
}

// TestStackFallback exercises the degraded-mode placer: every macro
// must land without overlap and connectivity must still resolve.
func TestStackFallback(t *testing.T) {
	var macros []Macro
	for i := 0; i < 6; i++ {
		macros = append(macros, block(string(rune('a'+i)), 400+i*50, 150+i*40))
	}
	res, err := Stack(tech.CDA07, macros, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placements) != len(macros) {
		t.Fatalf("placed %d of %d macros", len(res.Placements), len(macros))
	}
	placed := macros
	for i := range placed {
		bi := placedBounds(&placed[i], res.Placements[placed[i].Name])
		for j := i + 1; j < len(placed); j++ {
			bj := placedBounds(&placed[j], res.Placements[placed[j].Name])
			if bi.Overlaps(bj) {
				t.Fatalf("stacked macros %q and %q overlap", placed[i].Name, placed[j].Name)
			}
		}
	}
	if res.Area < res.SumMacroArea {
		t.Fatalf("outline %d smaller than macro sum %d", res.Area, res.SumMacroArea)
	}
}

// TestPlaceErrorsAreTyped asserts the floorplan validation failures
// carry ERR_FLOORPLAN.
func TestPlaceErrorsAreTyped(t *testing.T) {
	cases := []struct {
		name   string
		macros []Macro
		nets   []Net
	}{
		{"no macros", nil, nil},
		{"empty macro", []Macro{{Name: "x", Cell: nil}}, nil},
		{"duplicate", []Macro{block("a", 10, 10), block("a", 20, 20)}, nil},
		{"unknown macro", []Macro{block("a", 10, 10)},
			[]Net{{Name: "n", Pins: []Pin{{Macro: "ghost", Port: "p"}}}}},
		{"unknown port", []Macro{block("a", 10, 10)},
			[]Net{{Name: "n", Pins: []Pin{{Macro: "a", Port: "ghost"}}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Place(tech.CDA07, tc.macros, tc.nets); !errors.Is(err, cerr.ErrFloorplan) {
				t.Fatalf("want ErrFloorplan, got %v", err)
			}
			if _, err := Stack(tech.CDA07, tc.macros, tc.nets); !errors.Is(err, cerr.ErrFloorplan) {
				t.Fatalf("stack: want ErrFloorplan, got %v", err)
			}
		})
	}
}
