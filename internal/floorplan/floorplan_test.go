package floorplan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/tech"
)

func block(name string, w, h int, ports ...geom.Port) Macro {
	c := geom.NewCell(name)
	c.Abut = geom.R(0, 0, w, h)
	c.AddShape(tech.Metal1, geom.R(0, 0, w, h), name)
	for _, p := range ports {
		c.AddPort(p.Name, p.Layer, p.Rect, p.Dir)
	}
	return Macro{Name: name, Cell: c}
}

func TestPlaceRejectsBadInput(t *testing.T) {
	if _, err := Place(tech.CDA07, nil, nil); err == nil {
		t.Fatal("empty macro list accepted")
	}
	a := block("a", 100, 100)
	b := block("a", 50, 50)
	if _, err := Place(tech.CDA07, []Macro{a, b}, nil); err == nil {
		t.Fatal("duplicate names accepted")
	}
	if _, err := Place(tech.CDA07, []Macro{a}, []Net{{Name: "n", Pins: []Pin{{Macro: "zzz", Port: "p"}}}}); err == nil {
		t.Fatal("unknown macro in net accepted")
	}
	if _, err := Place(tech.CDA07, []Macro{a}, []Net{{Name: "n", Pins: []Pin{{Macro: "a", Port: "nope"}}}}); err == nil {
		t.Fatal("unknown port in net accepted")
	}
}

func TestNoOverlaps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var macros []Macro
	for i := 0; i < 12; i++ {
		w := 100 + rng.Intn(900)
		h := 100 + rng.Intn(900)
		macros = append(macros, block(string(rune('a'+i)), w, h))
	}
	res, err := Place(tech.CDA07, macros, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Pairwise no-overlap of placed bounds.
	boxes := map[string]geom.Rect{}
	for _, m := range macros {
		pl := res.Placements[m.Name]
		boxes[m.Name] = geom.TransformRect(m.Cell.Bounds(), pl.Orient).Translate(pl.At)
	}
	for n1, b1 := range boxes {
		for n2, b2 := range boxes {
			if n1 < n2 && b1.Overlaps(b2) {
				t.Fatalf("%s and %s overlap: %v %v", n1, n2, b1, b2)
			}
		}
	}
	if res.Rectangularity < 1 {
		t.Fatalf("rectangularity %f < 1 is impossible", res.Rectangularity)
	}
}

func TestPackingQualityEqualBlocks(t *testing.T) {
	// Sixteen equal squares should pack nearly perfectly: the
	// (1+epsilon) quality claim.
	var macros []Macro
	for i := 0; i < 16; i++ {
		macros = append(macros, block(string(rune('a'+i)), 500, 500))
	}
	res, err := Place(tech.CDA07, macros, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rectangularity > 1.35 {
		t.Fatalf("equal squares packed at %.2fx optimal", res.Rectangularity)
	}
	if res.AspectRatio > 3 {
		t.Fatalf("outline aspect %.2f not 'as rectangular as possible'", res.AspectRatio)
	}
}

func TestLargestPlacedFirstAtOrigin(t *testing.T) {
	small := block("small", 100, 100)
	big := block("big", 1000, 1000)
	res, err := Place(tech.CDA07, []Macro{small, big}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placements["big"].At != (geom.Point{}) || res.Placements["big"].Orient != geom.R0 {
		t.Fatalf("largest macro should anchor the floorplan: %+v", res.Placements["big"])
	}
}

func TestPortAlignmentAbuts(t *testing.T) {
	// Macro a has a port on its east edge, b on its west edge; the
	// net between them should resolve by abutment with zero routed
	// wirelength.
	a := block("a", 1000, 1000, geom.Port{
		Name: "out", Layer: tech.Metal1, Rect: geom.R(990, 400, 1000, 600), Dir: geom.East})
	b := block("b", 1000, 1000, geom.Port{
		Name: "in", Layer: tech.Metal1, Rect: geom.R(0, 400, 10, 600), Dir: geom.West})
	nets := []Net{{Name: "n", Pins: []Pin{{Macro: "a", Port: "out"}, {Macro: "b", Port: "in"}}}}
	res, err := Place(tech.CDA07, []Macro{a, b}, nets)
	if err != nil {
		t.Fatal(err)
	}
	if res.AbuttedNets != 1 || res.RoutedNets != 0 {
		t.Fatalf("expected pure abutment: abutted=%d routed=%d wl=%d",
			res.AbuttedNets, res.RoutedNets, res.Wirelength)
	}
	if res.Wirelength != 0 {
		t.Fatalf("abutted net should add no wirelength, got %d", res.Wirelength)
	}
}

func TestStretchingAlignsOffsetPorts(t *testing.T) {
	// b's port sits at a different height than a's; the stretching
	// slide should line them up so they still abut.
	a := block("a", 1000, 1000, geom.Port{
		Name: "out", Layer: tech.Metal1, Rect: geom.R(990, 800, 1000, 900), Dir: geom.East})
	b := block("b", 600, 600, geom.Port{
		Name: "in", Layer: tech.Metal1, Rect: geom.R(0, 100, 10, 200), Dir: geom.West})
	nets := []Net{{Name: "n", Pins: []Pin{{Macro: "a", Port: "out"}, {Macro: "b", Port: "in"}}}}
	res, err := Place(tech.CDA07, []Macro{a, b}, nets)
	if err != nil {
		t.Fatal(err)
	}
	if res.AbuttedNets != 1 {
		t.Fatalf("stretching failed to abut: %+v wl=%d", res, res.Wirelength)
	}
}

func TestRoutedNetGetsM3Wire(t *testing.T) {
	// Ports on the same (non-facing) edges force an over-the-cell
	// route.
	a := block("a", 1000, 1000, geom.Port{
		Name: "p", Layer: tech.Metal1, Rect: geom.R(0, 0, 10, 10), Dir: geom.South})
	b := block("b", 900, 900, geom.Port{
		Name: "p", Layer: tech.Metal1, Rect: geom.R(880, 880, 900, 900), Dir: geom.North})
	nets := []Net{{Name: "n", Pins: []Pin{{Macro: "a", Port: "p"}, {Macro: "b", Port: "p"}}}}
	res, err := Place(tech.CDA07, []Macro{a, b}, nets)
	if err != nil {
		t.Fatal(err)
	}
	if res.RoutedNets != 1 {
		t.Fatalf("expected one routed net: %+v", res)
	}
	if res.Wirelength <= 0 {
		t.Fatal("routed net must add wirelength")
	}
	m3 := 0
	for _, s := range res.Top.Shapes {
		if s.Layer == tech.Metal3 && s.Net == "n" {
			m3++
		}
	}
	if m3 == 0 {
		t.Fatal("no metal3 wires emitted")
	}
}

// Property: for random block sets, placement never overlaps and the
// outline contains every block.
func TestQuickPlacementLegality(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%6 + 2
		var macros []Macro
		for i := 0; i < n; i++ {
			macros = append(macros, block(string(rune('a'+i)), 50+rng.Intn(400), 50+rng.Intn(400)))
		}
		res, err := Place(tech.CDA07, macros, nil)
		if err != nil {
			return false
		}
		var boxes []geom.Rect
		for _, m := range macros {
			pl := res.Placements[m.Name]
			boxes = append(boxes, geom.TransformRect(m.Cell.Bounds(), pl.Orient).Translate(pl.At))
		}
		for i := range boxes {
			for j := i + 1; j < len(boxes); j++ {
				if boxes[i].Overlaps(boxes[j]) {
					return false
				}
			}
		}
		var bbox geom.Rect
		for _, b := range boxes {
			bbox = bbox.Union(b)
		}
		return bbox.Area() == res.Area
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
