package floorplan

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

// blended mirrors the optimiser's area/aspect cost for result
// comparison (wirelength-free instances).
func blended(r *Result) float64 {
	return float64(r.Area) * (1 + 0.5*(r.AspectRatio-1))
}

func TestRefineImprovesBadInitial(t *testing.T) {
	// Eight equal squares laid out in a strip: aspect 8, ripe for
	// improvement.
	var macros []Macro
	init := &Result{Placements: map[string]Placement{}}
	for i := 0; i < 8; i++ {
		m := block(string(rune('a'+i)), 500, 500)
		macros = append(macros, m)
		init.Placements[m.Name] = Placement{Orient: geom.R0, At: geom.Point{X: i * 500}}
	}
	init.Area = 8 * 500 * 500
	init.AspectRatio = 8
	refined, err := Refine(tech.CDA07, macros, nil, init, 4000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !(blended(refined) < blended(init)*0.8) {
		t.Fatalf("refinement too weak: %.0f -> %.0f (aspect %.2f)",
			blended(init), blended(refined), refined.AspectRatio)
	}
	// Legality: pairwise disjoint.
	var boxes []geom.Rect
	for _, m := range macros {
		pl := refined.Placements[m.Name]
		boxes = append(boxes, geom.TransformRect(m.Cell.Bounds(), pl.Orient).Translate(pl.At))
	}
	for i := range boxes {
		for j := i + 1; j < len(boxes); j++ {
			if boxes[i].Overlaps(boxes[j]) {
				t.Fatalf("refined overlap between %d and %d", i, j)
			}
		}
	}
}

func TestRefineDeterministic(t *testing.T) {
	var macros []Macro
	for i := 0; i < 6; i++ {
		macros = append(macros, block(string(rune('a'+i)), 300+i*90, 200+i*70))
	}
	base, err := Place(tech.CDA07, macros, nil)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Refine(tech.CDA07, macros, nil, base, 1500, 7)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Refine(tech.CDA07, macros, nil, base, 1500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Area != r2.Area || r1.Wirelength != r2.Wirelength {
		t.Fatalf("nondeterministic refinement: %d/%d vs %d/%d",
			r1.Area, r1.Wirelength, r2.Area, r2.Wirelength)
	}
	// Zero iterations is the identity.
	same, err := Refine(tech.CDA07, macros, nil, base, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if same != base {
		t.Fatal("0 iterations should return the input")
	}
}

func TestRefineNeverWorseThanGreedyByMuch(t *testing.T) {
	// On a mixed instance the annealer must not end above the greedy
	// cost (it keeps the best-seen state, which includes the start).
	var macros []Macro
	sizes := [][2]int{{900, 300}, {400, 400}, {700, 200}, {300, 800}, {500, 500}}
	for i, s := range sizes {
		macros = append(macros, block(string(rune('a'+i)), s[0], s[1]))
	}
	base, err := Place(tech.CDA07, macros, nil)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Refine(tech.CDA07, macros, nil, base, 2500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if blended(refined) > blended(base)*1.02+math.Sqrt(float64(base.Area)) {
		t.Fatalf("refinement regressed: %.0f -> %.0f", blended(base), blended(refined))
	}
}
