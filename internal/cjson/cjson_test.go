package cjson

import (
	"math"
	"strings"
	"testing"
)

func TestMapKeysSorted(t *testing.T) {
	v := map[string]any{"zeta": 1, "alpha": 2, "mid": map[string]int{"b": 1, "a": 2}}
	got, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"alpha":2,"mid":{"a":2,"b":1},"zeta":1}`
	if string(got) != want {
		t.Fatalf("got %s want %s", got, want)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	v := map[string]any{
		"pi": 3.141592653589793, "e": math.E, "neg": -0.000125,
		"big": 1e300, "small": 5e-324, "int": 42, "list": []any{1.5, "x"},
	}
	first, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		again, err := Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(first) {
			t.Fatalf("iteration %d differs:\n%s\n%s", i, again, first)
		}
	}
}

func TestFloatFixedForm(t *testing.T) {
	got, err := Canonicalize([]byte(`{"a": 1.50, "b": 1.5e0, "c": 0.15e1, "d": 2.0}`))
	if err != nil {
		t.Fatal(err)
	}
	want := `{"a":1.5,"b":1.5,"c":1.5,"d":2}`
	if string(got) != want {
		t.Fatalf("got %s want %s", got, want)
	}
}

func TestNonFiniteRejected(t *testing.T) {
	if _, err := Marshal(map[string]float64{"x": math.NaN()}); err == nil {
		t.Fatal("NaN must be rejected")
	}
	if _, err := Marshal(math.Inf(1)); err == nil {
		t.Fatal("Inf must be rejected")
	}
}

func TestStructTagsRespected(t *testing.T) {
	type inner struct {
		B int `json:"b"`
		A int `json:"a"`
	}
	type outer struct {
		Z     inner  `json:"z"`
		Omit  string `json:"omit,omitempty"`
		Named int    `json:"renamed"`
	}
	got, err := Marshal(outer{Z: inner{B: 2, A: 1}, Named: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"renamed":7,"z":{"a":1,"b":2}}`
	if string(got) != want {
		t.Fatalf("got %s want %s", got, want)
	}
}

func TestIndentFormAndTrailingNewline(t *testing.T) {
	got, err := MarshalIndent(map[string]any{"b": []int{1, 2}, "a": 1})
	if err != nil {
		t.Fatal(err)
	}
	want := "{\n  \"a\": 1,\n  \"b\": [\n    1,\n    2\n  ]\n}\n"
	if string(got) != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestNoHTMLEscaping(t *testing.T) {
	got, err := Marshal("a<b>&c ⇑(r0,w1)")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(got), `\u00`) {
		t.Fatalf("HTML-escaped output %s", got)
	}
	if string(got) != `"a<b>&c ⇑(r0,w1)"` {
		t.Fatalf("got %s", got)
	}
}

func TestCanonicalizeRejectsTrailingData(t *testing.T) {
	if _, err := Canonicalize([]byte(`{"a":1} {"b":2}`)); err == nil {
		t.Fatal("trailing data must be rejected")
	}
}

func TestControlCharsEscaped(t *testing.T) {
	got, err := Marshal("a\x01b\nc")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `"a\u0001b\nc"` {
		t.Fatalf("got %s", got)
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	in := []byte(`{"z": [3, 2.50, {"k":"v","a":null}], "a": true}`)
	once, err := Canonicalize(in)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := Canonicalize(once)
	if err != nil {
		t.Fatal(err)
	}
	if string(once) != string(twice) {
		t.Fatalf("not idempotent: %s vs %s", once, twice)
	}
}
