// Package cjson renders canonical JSON: a byte-deterministic encoding
// used wherever BISRAMGEN output is hashed, cached or compared —
// content-addressed cache keys (internal/canon), cached artifacts
// (internal/cache), and the datasheet.json the compiler emits.
//
// The canonical form is ordinary JSON with three extra guarantees:
//
//   - Object keys are emitted in ascending byte order, at every level,
//     including keys that originate from Go maps.
//   - Numbers are emitted in a fixed format: integers as-is, floats in
//     Go's shortest round-trip 'g' form (strconv.FormatFloat bitSize 64,
//     precision -1), which is fully determined by the IEEE-754 bits.
//     NaN and ±Inf are rejected, mirroring encoding/json.
//   - No insignificant whitespace in Marshal; MarshalIndent uses "  "
//     (two spaces) and "\n" only, with a trailing newline.
//
// Two byte-equal canonical documents therefore denote equal values,
// and equal values always canonicalise to byte-equal documents — the
// property SHA-256 content addressing needs.
package cjson

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
)

// Marshal renders v as compact canonical JSON.
func Marshal(v any) ([]byte, error) {
	tree, err := toTree(v)
	if err != nil {
		return nil, err
	}
	var b bytes.Buffer
	writeCanonical(&b, tree, "", "")
	return b.Bytes(), nil
}

// MarshalIndent renders v as canonical JSON indented with two spaces
// and terminated by a newline — the human-facing variant used for
// datasheet.json files.
func MarshalIndent(v any) ([]byte, error) {
	tree, err := toTree(v)
	if err != nil {
		return nil, err
	}
	var b bytes.Buffer
	writeCanonical(&b, tree, "", "  ")
	b.WriteByte('\n')
	return b.Bytes(), nil
}

// Canonicalize re-encodes raw JSON text into compact canonical form.
// It is how foreign documents (user-POSTed requests, stored artifacts)
// are normalised before hashing or comparison.
func Canonicalize(raw []byte) ([]byte, error) {
	var v any
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("cjson: %w", err)
	}
	// Reject trailing garbage after the first value.
	if dec.More() {
		return nil, fmt.Errorf("cjson: trailing data after JSON value")
	}
	var b bytes.Buffer
	writeCanonical(&b, v, "", "")
	return b.Bytes(), nil
}

// toTree lowers an arbitrary Go value to the generic JSON tree
// (map[string]any / []any / json.Number / string / bool / nil) by a
// round trip through encoding/json with UseNumber, so struct tags,
// omitempty and MarshalJSON implementations all apply exactly as they
// would in a plain json.Marshal call.
func toTree(v any) (any, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("cjson: %w", err)
	}
	var tree any
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	if err := dec.Decode(&tree); err != nil {
		return nil, fmt.Errorf("cjson: %w", err)
	}
	return tree, nil
}

// writeCanonical emits the tree. indent == "" selects compact form.
func writeCanonical(b *bytes.Buffer, v any, prefix, indent string) {
	switch t := v.(type) {
	case nil:
		b.WriteString("null")
	case bool:
		if t {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case string:
		writeString(b, t)
	case json.Number:
		writeNumber(b, t)
	case float64:
		// Only reachable when a caller hands a pre-decoded tree that
		// skipped UseNumber; format deterministically all the same.
		b.WriteString(strconv.FormatFloat(t, 'g', -1, 64))
	case []any:
		if len(t) == 0 {
			b.WriteString("[]")
			return
		}
		b.WriteByte('[')
		inner := prefix + indent
		for i, e := range t {
			if i > 0 {
				b.WriteByte(',')
			}
			if indent != "" {
				b.WriteByte('\n')
				b.WriteString(inner)
			}
			writeCanonical(b, e, inner, indent)
		}
		if indent != "" {
			b.WriteByte('\n')
			b.WriteString(prefix)
		}
		b.WriteByte(']')
	case map[string]any:
		if len(t) == 0 {
			b.WriteString("{}")
			return
		}
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('{')
		inner := prefix + indent
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			if indent != "" {
				b.WriteByte('\n')
				b.WriteString(inner)
			}
			writeString(b, k)
			b.WriteByte(':')
			if indent != "" {
				b.WriteByte(' ')
			}
			writeCanonical(b, t[k], inner, indent)
		}
		if indent != "" {
			b.WriteByte('\n')
			b.WriteString(prefix)
		}
		b.WriteByte('}')
	default:
		// The tree only contains the types above by construction; a
		// stray type means toTree was bypassed. Fall back to
		// encoding/json (still deterministic for scalar types).
		raw, err := json.Marshal(t)
		if err != nil {
			b.WriteString("null")
			return
		}
		b.Write(raw)
	}
}

// writeNumber normalises a JSON number literal: integers pass through
// unchanged (minus a redundant leading "+" or exponent form is kept
// as parsed when integral round-trips fail), floats are reformatted in
// shortest round-trip 'g' form so 1.50, 1.5e0 and 1.5 all canonicalise
// to "1.5".
func writeNumber(b *bytes.Buffer, n json.Number) {
	s := n.String()
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		b.WriteString(strconv.FormatInt(i, 10))
		return
	}
	if u, err := strconv.ParseUint(s, 10, 64); err == nil {
		b.WriteString(strconv.FormatUint(u, 10))
		return
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		b.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
		return
	}
	// Out-of-range literal (e.g. a 100-digit integer): keep it verbatim
	// — it is still a fixed function of the input bytes.
	b.WriteString(s)
}

// writeString emits a JSON string with the minimal escape set
// (quote, backslash, control characters), leaving all other bytes —
// including multi-byte UTF-8 like the march notation arrows — as-is.
// encoding/json escapes <, > and & for HTML safety; canonical form
// does not, so the encoding is a pure function of the string value.
func writeString(b *bytes.Buffer, s string) {
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
}
