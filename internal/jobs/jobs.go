// Package jobs runs compile requests on a bounded worker pool with
// priorities, per-job deadlines, in-flight deduplication and graceful
// drain — the execution substrate of the bisramgend service.
//
//   - Priorities: interactive submissions outrank batch sweeps; within
//     a priority the queue is FIFO (a sequence number breaks ties, so
//     starvation within a class is impossible).
//   - Deadlines: every job runs under context.WithTimeout wired into
//     the compile pipeline's context-bounded kernels, so a pathological
//     request costs at most the configured deadline, never a worker.
//   - Dedup (singleflight): a submission whose key matches a queued or
//     running job attaches to that job instead of enqueueing a copy —
//     N identical concurrent requests cost one compile.
//   - Drain: Shutdown stops intake, lets queued+running jobs finish
//     (until the drain context expires, at which point the base context
//     is cancelled and the deadline kernels unwind), then joins every
//     worker. No goroutine outlives Shutdown.
package jobs

import (
	"container/heap"
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cerr"
	"repro/internal/chaos"
	"repro/internal/obs"
)

// Priority orders jobs; lower values run first.
type Priority int

// Priority classes.
const (
	// Interactive is for latency-sensitive submissions (the default
	// for HTTP compile requests).
	Interactive Priority = iota
	// Normal is the middle class.
	Normal
	// Batch is for sweeps and campaigns that should yield to
	// interactive traffic.
	Batch
)

// String names the priority class.
func (p Priority) String() string {
	switch p {
	case Interactive:
		return "interactive"
	case Normal:
		return "normal"
	case Batch:
		return "batch"
	}
	return fmt.Sprintf("priority%d", int(p))
}

// ParsePriority maps a wire name to a class; empty means Interactive.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "", "interactive":
		return Interactive, nil
	case "normal":
		return Normal, nil
	case "batch":
		return Batch, nil
	}
	return 0, cerr.New(cerr.CodeInvalidParams, "jobs: unknown priority %q (interactive, normal, batch)", s)
}

// State is a job's lifecycle position.
type State int32

// Job states.
const (
	StateQueued State = iota
	StateRunning
	StateDone
	StateFailed
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	}
	return fmt.Sprintf("state%d", int32(s))
}

// Func is the unit of work: it must honour ctx and return its result.
type Func func(ctx context.Context) (any, error)

// Job is one tracked unit of work. Fields set at submission are
// immutable; mutable state is accessed through the methods.
type Job struct {
	ID       string
	Key      string
	Priority Priority

	fn    Func
	seq   uint64
	done  chan struct{}
	trace *obs.Trace

	state     atomic.Int32
	attached  atomic.Int64 // dedup attach count (first submitter included)
	mu        sync.Mutex   // guards result fields and times
	value     any
	err       error
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Trace returns the job's trace (nil when the submitter attached
// none). Deduped submissions share the first submitter's trace.
func (j *Job) Trace() *obs.Trace { return j.trace }

// State returns the current lifecycle state.
func (j *Job) State() State { return State(j.state.Load()) }

// Attached returns how many submissions share this job (1 = no dedup).
func (j *Job) Attached() int64 { return j.attached.Load() }

// Result returns the outcome. It blocks until the job is terminal or
// ctx expires (in which case the job keeps running and ctx.Err is
// returned — abandoning a wait never cancels work other submitters
// may be attached to).
func (j *Job) Result(ctx context.Context) (any, error) {
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, cerr.Wrap(cerr.CodeBudgetExceeded, ctx.Err(), "jobs: wait for %s abandoned", j.ID)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.value, j.err
}

// Peek returns the outcome without blocking; ok is false while the
// job is still queued or running.
func (j *Job) Peek() (value any, err error, ok bool) {
	select {
	case <-j.done:
	default:
		return nil, nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.value, j.err, true
}

// Times returns the submission, start and finish timestamps (zero
// until reached).
func (j *Job) Times() (submitted, started, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.submitted, j.started, j.finished
}

// Config sizes a queue.
type Config struct {
	// Workers is the pool size; <= 0 selects runtime.GOMAXPROCS(0) —
	// one worker per schedulable CPU — so an unconfigured queue
	// saturates the machine instead of silently serializing behind a
	// single worker. Set Workers: 1 explicitly to force serial
	// execution (tests that need deterministic pickup order do).
	Workers int
	// Capacity bounds the queued (not yet running) job count; <= 0
	// means unbounded. A full queue rejects instead of blocking, so
	// overload back-pressures to the client immediately.
	Capacity int
	// Deadline bounds each job's run; <= 0 means no per-job deadline.
	Deadline time.Duration
	// Registry, when non-nil, receives the queue's telemetry: the
	// jobs_queue_wait_seconds histogram (observed for every job,
	// including jobs cancelled before execution during a hard drain),
	// queue-depth/running gauges, and lifecycle counters.
	Registry *obs.Registry
	// Chaos, when non-nil, injects scripted faults at the queue.stall
	// point (a delay rule stalls a worker's job pickup, simulating a
	// wedged worker).
	Chaos *chaos.Injector
}

// Stats is a point-in-time snapshot of queue counters.
type Stats struct {
	Workers   int    `json:"workers"`
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
	Submitted uint64 `json:"submitted"`
	Deduped   uint64 `json:"deduped"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Rejected  uint64 `json:"rejected"`
	// Cancelled counts jobs failed on the drain path before their
	// function ever ran (hard drain). Their queue-wait time is still
	// accounted in QueueWaitMsTotal and the queue-wait histogram, so
	// abandoned jobs never appear as zero-cost.
	Cancelled uint64 `json:"cancelled"`
	// QueueWaitMsTotal is the cumulative submit→pickup wait across
	// every job, including cancelled ones.
	QueueWaitMsTotal float64       `json:"queue_wait_ms_total"`
	Draining         bool          `json:"draining"`
	Deadline         time.Duration `json:"-"`
}

// Queue is the worker pool. Construct with New.
type Queue struct {
	cfg       Config
	baseCtx   context.Context
	cancel    context.CancelFunc
	mu        sync.Mutex
	cond      *sync.Cond
	heap      jobHeap
	inflight  map[string]*Job // queued or running, by key (dedup)
	running   int
	draining  bool
	hardDrain bool // drain budget expired: fail queued jobs without running them
	seq       uint64
	nextID    uint64
	wg        sync.WaitGroup

	queueWait *obs.Histogram // nil when no registry is configured
	waitNanos atomic.Int64   // cumulative queue wait, all jobs incl. cancelled

	submitted, deduped, completed, failed, rejected, cancelledJobs uint64
}

// New starts a queue with cfg.Workers workers (defaulting to one per
// schedulable CPU; see Config.Workers).
func New(cfg Config) *Queue {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		cfg:      cfg,
		baseCtx:  ctx,
		cancel:   cancel,
		inflight: map[string]*Job{},
	}
	q.cond = sync.NewCond(&q.mu)
	// All Registry methods are nil-receiver safe, so the instruments
	// degrade to no-ops when telemetry is disabled.
	r := cfg.Registry
	q.queueWait = r.Histogram("jobs_queue_wait_seconds",
		"Time jobs spend queued before a worker picks them up (or before drain cancellation).", nil)
	r.GaugeFunc("jobs_queue_depth", "Jobs queued and not yet running.",
		func() float64 { return float64(q.Stats().Queued) })
	r.GaugeFunc("jobs_running", "Jobs currently executing on workers.",
		func() float64 { return float64(q.Stats().Running) })
	r.CounterFunc("jobs_submitted_total", "Jobs accepted into the queue.",
		func() float64 { return float64(q.Stats().Submitted) })
	r.CounterFunc("jobs_deduped_total", "Submissions that attached to an identical in-flight job.",
		func() float64 { return float64(q.Stats().Deduped) })
	r.CounterFunc("jobs_completed_total", "Jobs that finished successfully.",
		func() float64 { return float64(q.Stats().Completed) })
	r.CounterFunc("jobs_failed_total", "Jobs that finished with an error (cancelled jobs included).",
		func() float64 { return float64(q.Stats().Failed) })
	r.CounterFunc("jobs_rejected_total", "Submissions rejected by a full or draining queue.",
		func() float64 { return float64(q.Stats().Rejected) })
	r.CounterFunc("jobs_cancelled_total", "Jobs failed on the drain path before execution.",
		func() float64 { return float64(q.Stats().Cancelled) })
	for i := 0; i < cfg.Workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// Submit enqueues fn under key. If a job with the same key is already
// queued or running, the submission attaches to it (deduped=true) and
// fn is discarded. A draining queue or a full queue rejects with
// ERR_OVERLOADED — a transient, retryable shed, distinct from the
// ERR_BUDGET_EXCEEDED a job earns by exhausting its own deadline.
// Submit is SubmitTraced without a trace.
func (q *Queue) Submit(key string, pri Priority, fn Func) (job *Job, deduped bool, err error) {
	return q.SubmitTraced(key, pri, nil, fn)
}

// SubmitTraced is Submit with a request-scoped trace attached to the
// job: the queue records a "queue.wait" span covering submission →
// worker pickup (or drain cancellation), and fn runs under a context
// carrying the trace so the pipeline's stage spans land in it. A
// deduped submission attaches to the existing job and its trace; tr
// is discarded in that case (the job keeps the first submitter's).
func (q *Queue) SubmitTraced(key string, pri Priority, tr *obs.Trace, fn Func) (job *Job, deduped bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		q.rejected++
		return nil, false, cerr.New(cerr.CodeOverloaded, "jobs: queue is draining")
	}
	if j, ok := q.inflight[key]; ok {
		j.attached.Add(1)
		q.deduped++
		return j, true, nil
	}
	if q.cfg.Capacity > 0 && q.heap.Len() >= q.cfg.Capacity {
		q.rejected++
		return nil, false, cerr.New(cerr.CodeOverloaded,
			"jobs: queue full (%d queued)", q.heap.Len())
	}
	q.seq++
	q.nextID++
	j := &Job{
		ID:       fmt.Sprintf("job-%06d", q.nextID),
		Key:      key,
		Priority: pri,
		fn:       fn,
		seq:      q.seq,
		done:     make(chan struct{}),
		trace:    tr,
	}
	j.attached.Store(1)
	j.mu.Lock()
	j.submitted = time.Now()
	j.mu.Unlock()
	q.inflight[key] = j
	heap.Push(&q.heap, j)
	q.submitted++
	q.cond.Signal()
	return j, false, nil
}

// worker pops and runs jobs until the queue drains and closes.
func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		q.mu.Lock()
		for q.heap.Len() == 0 && !q.draining {
			q.cond.Wait()
		}
		if q.heap.Len() == 0 && q.draining {
			q.mu.Unlock()
			return
		}
		j := heap.Pop(&q.heap).(*Job)
		q.running++
		fastFail := q.hardDrain
		q.mu.Unlock()

		if fastFail {
			// The drain budget expired: the base context is dead, so
			// running fn would only burn time unwinding. Fail the job
			// immediately — but still account its queue wait, so
			// abandoned jobs never appear as zero-cost in the counters.
			q.failFast(j)
		} else {
			q.run(j)
		}

		q.mu.Lock()
		q.running--
		delete(q.inflight, j.Key)
		if j.State() == StateDone {
			q.completed++
		} else {
			q.failed++
		}
		if fastFail {
			q.cancelledJobs++
		}
		// Wake the drain waiter (and idle workers) when the pool
		// empties.
		q.cond.Broadcast()
		q.mu.Unlock()
	}
}

// observeQueueWait accounts the submit→pickup interval for j into the
// histogram, the cumulative counter and (when the job carries a
// trace) a "queue.wait" span. It runs for every job that leaves the
// queue: executed AND drain-cancelled.
func (q *Queue) observeQueueWait(j *Job, submitted, pickup time.Time, cancelled bool) {
	wait := pickup.Sub(submitted)
	if wait < 0 {
		wait = 0
	}
	q.waitNanos.Add(int64(wait))
	q.queueWait.ObserveDuration(wait)
	attrs := []obs.Attr{obs.String("priority", j.Priority.String())}
	if cancelled {
		attrs = append(attrs, obs.Bool("cancelled", true))
	}
	j.trace.Record("queue.wait", submitted, pickup, attrs...)
}

// failFast terminates a queued job on the hard-drain path without
// invoking its function: typed budget error, queue wait recorded,
// started left zero (it never ran).
func (q *Queue) failFast(j *Job) {
	now := time.Now()
	j.mu.Lock()
	submitted := j.submitted
	j.finished = now
	j.value = nil
	j.err = cerr.New(cerr.CodeBudgetExceeded,
		"jobs: %s cancelled before execution (drain budget expired)", j.ID)
	j.mu.Unlock()
	q.observeQueueWait(j, submitted, now, true)
	j.state.Store(int32(StateFailed))
	close(j.done)
}

// run executes one job under the per-job deadline, converting panics
// and deadline expiry into typed errors.
func (q *Queue) run(j *Job) {
	// A scripted queue.stall delay lands between pop and execution:
	// the worker is wedged, queue depth builds, admission control
	// sheds — exactly the overload drill's setup.
	q.cfg.Chaos.Delay(chaos.PointQueueStall)
	j.state.Store(int32(StateRunning))
	now := time.Now()
	j.mu.Lock()
	j.started = now
	submitted := j.submitted
	j.mu.Unlock()
	q.observeQueueWait(j, submitted, now, false)

	ctx := q.baseCtx
	var cancel context.CancelFunc
	if q.cfg.Deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, q.cfg.Deadline)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	if j.trace != nil {
		ctx = obs.WithTrace(ctx, j.trace)
	}

	var value any
	err := func() (err error) {
		defer cerr.Recover("job", &err)
		value, err = j.fn(ctx)
		return err
	}()
	if err == nil && ctx.Err() != nil {
		// The kernel returned a value despite an expired context;
		// surface the budget violation rather than a silently-partial
		// result.
		err = cerr.Wrap(cerr.CodeBudgetExceeded, ctx.Err(), "jobs: %s deadline", j.ID)
	}

	j.mu.Lock()
	j.value, j.err = value, err
	j.finished = time.Now()
	j.mu.Unlock()
	if err != nil {
		j.state.Store(int32(StateFailed))
	} else {
		j.state.Store(int32(StateDone))
	}
	close(j.done)
}

// Shutdown gracefully drains the queue: intake stops immediately,
// queued and running jobs are given until ctx expires to finish, then
// the base context is cancelled (unwinding the deadline kernels) and
// the workers are joined. It returns nil on a clean drain or the drain
// context's error when work had to be cancelled.
func (q *Queue) Shutdown(ctx context.Context) error {
	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		// Already draining: just wait for the workers.
		q.wg.Wait()
		return nil
	}
	q.draining = true
	q.cond.Broadcast()
	q.mu.Unlock()

	done := make(chan struct{})
	go func() {
		q.mu.Lock()
		for q.heap.Len() > 0 || q.running > 0 {
			q.cond.Wait()
		}
		q.mu.Unlock()
		close(done)
	}()

	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		// Hard-cancel in-flight work; still-queued jobs are failed
		// fast (with their queue wait recorded) rather than run
		// against the dead base context. The drain waiter goroutine
		// exits once the workers observe cancellation and finish.
		q.mu.Lock()
		q.hardDrain = true
		q.cond.Broadcast()
		q.mu.Unlock()
		q.cancel()
		<-done
	}
	q.cancel()
	q.wg.Wait()
	return err
}

// Stats snapshots the counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{
		Workers: q.cfg.Workers, Queued: q.heap.Len(), Running: q.running,
		Submitted: q.submitted, Deduped: q.deduped,
		Completed: q.completed, Failed: q.failed, Rejected: q.rejected,
		Cancelled:        q.cancelledJobs,
		QueueWaitMsTotal: float64(q.waitNanos.Load()) / 1e6,
		Draining:         q.draining, Deadline: q.cfg.Deadline,
	}
}

// jobHeap orders by (priority, seq): lower priority value first, FIFO
// within a class.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority < h[j].Priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}
