// Package jobs runs compile requests on a bounded worker pool with
// priorities, per-job deadlines, in-flight deduplication and graceful
// drain — the execution substrate of the bisramgend service.
//
//   - Priorities: interactive submissions outrank batch sweeps; within
//     a priority the queue is FIFO (a sequence number breaks ties, so
//     starvation within a class is impossible).
//   - Deadlines: every job runs under context.WithTimeout wired into
//     the compile pipeline's context-bounded kernels, so a pathological
//     request costs at most the configured deadline, never a worker.
//   - Dedup (singleflight): a submission whose key matches a queued or
//     running job attaches to that job instead of enqueueing a copy —
//     N identical concurrent requests cost one compile.
//   - Drain: Shutdown stops intake, lets queued+running jobs finish
//     (until the drain context expires, at which point the base context
//     is cancelled and the deadline kernels unwind), then joins every
//     worker. No goroutine outlives Shutdown.
package jobs

import (
	"container/heap"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cerr"
)

// Priority orders jobs; lower values run first.
type Priority int

// Priority classes.
const (
	// Interactive is for latency-sensitive submissions (the default
	// for HTTP compile requests).
	Interactive Priority = iota
	// Normal is the middle class.
	Normal
	// Batch is for sweeps and campaigns that should yield to
	// interactive traffic.
	Batch
)

// String names the priority class.
func (p Priority) String() string {
	switch p {
	case Interactive:
		return "interactive"
	case Normal:
		return "normal"
	case Batch:
		return "batch"
	}
	return fmt.Sprintf("priority%d", int(p))
}

// ParsePriority maps a wire name to a class; empty means Interactive.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "", "interactive":
		return Interactive, nil
	case "normal":
		return Normal, nil
	case "batch":
		return Batch, nil
	}
	return 0, cerr.New(cerr.CodeInvalidParams, "jobs: unknown priority %q (interactive, normal, batch)", s)
}

// State is a job's lifecycle position.
type State int32

// Job states.
const (
	StateQueued State = iota
	StateRunning
	StateDone
	StateFailed
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	}
	return fmt.Sprintf("state%d", int32(s))
}

// Func is the unit of work: it must honour ctx and return its result.
type Func func(ctx context.Context) (any, error)

// Job is one tracked unit of work. Fields set at submission are
// immutable; mutable state is accessed through the methods.
type Job struct {
	ID       string
	Key      string
	Priority Priority

	fn   Func
	seq  uint64
	done chan struct{}

	state     atomic.Int32
	attached  atomic.Int64 // dedup attach count (first submitter included)
	mu        sync.Mutex   // guards result fields and times
	value     any
	err       error
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current lifecycle state.
func (j *Job) State() State { return State(j.state.Load()) }

// Attached returns how many submissions share this job (1 = no dedup).
func (j *Job) Attached() int64 { return j.attached.Load() }

// Result returns the outcome. It blocks until the job is terminal or
// ctx expires (in which case the job keeps running and ctx.Err is
// returned — abandoning a wait never cancels work other submitters
// may be attached to).
func (j *Job) Result(ctx context.Context) (any, error) {
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, cerr.Wrap(cerr.CodeBudgetExceeded, ctx.Err(), "jobs: wait for %s abandoned", j.ID)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.value, j.err
}

// Peek returns the outcome without blocking; ok is false while the
// job is still queued or running.
func (j *Job) Peek() (value any, err error, ok bool) {
	select {
	case <-j.done:
	default:
		return nil, nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.value, j.err, true
}

// Times returns the submission, start and finish timestamps (zero
// until reached).
func (j *Job) Times() (submitted, started, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.submitted, j.started, j.finished
}

// Config sizes a queue.
type Config struct {
	// Workers is the pool size; <= 0 means 1.
	Workers int
	// Capacity bounds the queued (not yet running) job count; <= 0
	// means unbounded. A full queue rejects instead of blocking, so
	// overload back-pressures to the client immediately.
	Capacity int
	// Deadline bounds each job's run; <= 0 means no per-job deadline.
	Deadline time.Duration
}

// Stats is a point-in-time snapshot of queue counters.
type Stats struct {
	Workers   int           `json:"workers"`
	Queued    int           `json:"queued"`
	Running   int           `json:"running"`
	Submitted uint64        `json:"submitted"`
	Deduped   uint64        `json:"deduped"`
	Completed uint64        `json:"completed"`
	Failed    uint64        `json:"failed"`
	Rejected  uint64        `json:"rejected"`
	Draining  bool          `json:"draining"`
	Deadline  time.Duration `json:"-"`
}

// Queue is the worker pool. Construct with New.
type Queue struct {
	cfg      Config
	baseCtx  context.Context
	cancel   context.CancelFunc
	mu       sync.Mutex
	cond     *sync.Cond
	heap     jobHeap
	inflight map[string]*Job // queued or running, by key (dedup)
	running  int
	draining bool
	seq      uint64
	nextID   uint64
	wg       sync.WaitGroup

	submitted, deduped, completed, failed, rejected uint64
}

// New starts a queue with cfg.Workers workers.
func New(cfg Config) *Queue {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		cfg:      cfg,
		baseCtx:  ctx,
		cancel:   cancel,
		inflight: map[string]*Job{},
	}
	q.cond = sync.NewCond(&q.mu)
	for i := 0; i < cfg.Workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// Submit enqueues fn under key. If a job with the same key is already
// queued or running, the submission attaches to it (deduped=true) and
// fn is discarded. A draining queue or a full queue rejects with
// ERR_BUDGET_EXCEEDED.
func (q *Queue) Submit(key string, pri Priority, fn Func) (job *Job, deduped bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		q.rejected++
		return nil, false, cerr.New(cerr.CodeBudgetExceeded, "jobs: queue is draining")
	}
	if j, ok := q.inflight[key]; ok {
		j.attached.Add(1)
		q.deduped++
		return j, true, nil
	}
	if q.cfg.Capacity > 0 && q.heap.Len() >= q.cfg.Capacity {
		q.rejected++
		return nil, false, cerr.New(cerr.CodeBudgetExceeded,
			"jobs: queue full (%d queued)", q.heap.Len())
	}
	q.seq++
	q.nextID++
	j := &Job{
		ID:       fmt.Sprintf("job-%06d", q.nextID),
		Key:      key,
		Priority: pri,
		fn:       fn,
		seq:      q.seq,
		done:     make(chan struct{}),
	}
	j.attached.Store(1)
	j.mu.Lock()
	j.submitted = time.Now()
	j.mu.Unlock()
	q.inflight[key] = j
	heap.Push(&q.heap, j)
	q.submitted++
	q.cond.Signal()
	return j, false, nil
}

// worker pops and runs jobs until the queue drains and closes.
func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		q.mu.Lock()
		for q.heap.Len() == 0 && !q.draining {
			q.cond.Wait()
		}
		if q.heap.Len() == 0 && q.draining {
			q.mu.Unlock()
			return
		}
		j := heap.Pop(&q.heap).(*Job)
		q.running++
		q.mu.Unlock()

		q.run(j)

		q.mu.Lock()
		q.running--
		delete(q.inflight, j.Key)
		if j.State() == StateDone {
			q.completed++
		} else {
			q.failed++
		}
		// Wake the drain waiter (and idle workers) when the pool
		// empties.
		q.cond.Broadcast()
		q.mu.Unlock()
	}
}

// run executes one job under the per-job deadline, converting panics
// and deadline expiry into typed errors.
func (q *Queue) run(j *Job) {
	j.state.Store(int32(StateRunning))
	j.mu.Lock()
	j.started = time.Now()
	j.mu.Unlock()

	ctx := q.baseCtx
	var cancel context.CancelFunc
	if q.cfg.Deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, q.cfg.Deadline)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	var value any
	err := func() (err error) {
		defer cerr.Recover("job", &err)
		value, err = j.fn(ctx)
		return err
	}()
	if err == nil && ctx.Err() != nil {
		// The kernel returned a value despite an expired context;
		// surface the budget violation rather than a silently-partial
		// result.
		err = cerr.Wrap(cerr.CodeBudgetExceeded, ctx.Err(), "jobs: %s deadline", j.ID)
	}

	j.mu.Lock()
	j.value, j.err = value, err
	j.finished = time.Now()
	j.mu.Unlock()
	if err != nil {
		j.state.Store(int32(StateFailed))
	} else {
		j.state.Store(int32(StateDone))
	}
	close(j.done)
}

// Shutdown gracefully drains the queue: intake stops immediately,
// queued and running jobs are given until ctx expires to finish, then
// the base context is cancelled (unwinding the deadline kernels) and
// the workers are joined. It returns nil on a clean drain or the drain
// context's error when work had to be cancelled.
func (q *Queue) Shutdown(ctx context.Context) error {
	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		// Already draining: just wait for the workers.
		q.wg.Wait()
		return nil
	}
	q.draining = true
	q.cond.Broadcast()
	q.mu.Unlock()

	done := make(chan struct{})
	go func() {
		q.mu.Lock()
		for q.heap.Len() > 0 || q.running > 0 {
			q.cond.Wait()
		}
		q.mu.Unlock()
		close(done)
	}()

	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		// Hard-cancel in-flight work; the drain waiter goroutine exits
		// once the workers observe cancellation and finish.
		q.cancel()
		<-done
	}
	q.cancel()
	q.wg.Wait()
	return err
}

// Stats snapshots the counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{
		Workers: q.cfg.Workers, Queued: q.heap.Len(), Running: q.running,
		Submitted: q.submitted, Deduped: q.deduped,
		Completed: q.completed, Failed: q.failed, Rejected: q.rejected,
		Draining: q.draining, Deadline: q.cfg.Deadline,
	}
}

// jobHeap orders by (priority, seq): lower priority value first, FIFO
// within a class.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority < h[j].Priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}
