package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"strings"

	"repro/internal/cerr"
	"repro/internal/obs"
)

func TestRunsAndReturnsValue(t *testing.T) {
	q := New(Config{Workers: 2})
	defer q.Shutdown(context.Background())
	j, deduped, err := q.Submit("k1", Interactive, func(ctx context.Context) (any, error) {
		return 42, nil
	})
	if err != nil || deduped {
		t.Fatalf("submit: err=%v deduped=%v", err, deduped)
	}
	v, err := j.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != 42 {
		t.Fatalf("value %v", v)
	}
	if j.State() != StateDone {
		t.Fatalf("state %v", j.State())
	}
}

func TestErrorPropagates(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Shutdown(context.Background())
	boom := errors.New("boom")
	j, _, err := q.Submit("k", Interactive, func(ctx context.Context) (any, error) {
		return nil, boom
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Result(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err %v", err)
	}
	if j.State() != StateFailed {
		t.Fatalf("state %v", j.State())
	}
}

func TestPanicBecomesTypedError(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Shutdown(context.Background())
	j, _, err := q.Submit("k", Interactive, func(ctx context.Context) (any, error) {
		panic("invariant violated")
	})
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := j.Result(context.Background())
	if cerr.CodeOf(rerr) != cerr.CodeInternal {
		t.Fatalf("want ERR_INTERNAL, got %v", rerr)
	}
}

func TestSingleflightDedup(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Shutdown(context.Background())
	var runs atomic.Int32
	release := make(chan struct{})
	// Occupy the single worker so the key stays in-flight.
	blocker, _, err := q.Submit("blocker", Interactive, func(ctx context.Context) (any, error) {
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fn := func(ctx context.Context) (any, error) {
		runs.Add(1)
		return "r", nil
	}
	first, deduped, err := q.Submit("same", Interactive, fn)
	if err != nil || deduped {
		t.Fatalf("first: %v %v", err, deduped)
	}
	var jobs []*Job
	for i := 0; i < 5; i++ {
		j, dup, err := q.Submit("same", Interactive, fn)
		if err != nil {
			t.Fatal(err)
		}
		if !dup {
			t.Fatalf("submission %d was not deduped", i)
		}
		if j != first {
			t.Fatalf("submission %d got a different job", i)
		}
		jobs = append(jobs, j)
	}
	close(release)
	for _, j := range append(jobs, first, blocker) {
		if _, err := j.Result(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	if first.Attached() != 6 {
		t.Fatalf("attached %d, want 6", first.Attached())
	}
	s := q.Stats()
	if s.Deduped != 5 || s.Submitted != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestPriorityOrdering(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Shutdown(context.Background())
	release := make(chan struct{})
	blocker, _, err := q.Submit("blocker", Interactive, func(ctx context.Context) (any, error) {
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []string
	mk := func(name string) Func {
		return func(ctx context.Context) (any, error) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil, nil
		}
	}
	// Enqueue in deliberately mixed order while the worker is blocked.
	var jobs []*Job
	for _, sub := range []struct {
		name string
		pri  Priority
	}{
		{"batch1", Batch}, {"norm1", Normal}, {"int1", Interactive},
		{"batch2", Batch}, {"int2", Interactive}, {"norm2", Normal},
	} {
		j, _, err := q.Submit(sub.name, sub.pri, mk(sub.name))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	close(release)
	blocker.Result(context.Background())
	for _, j := range jobs {
		if _, err := j.Result(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"int1", "int2", "norm1", "norm2", "batch1", "batch2"}
	mu.Lock()
	defer mu.Unlock()
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
}

func TestPerJobDeadline(t *testing.T) {
	q := New(Config{Workers: 1, Deadline: 30 * time.Millisecond})
	defer q.Shutdown(context.Background())
	j, _, err := q.Submit("slow", Interactive, func(ctx context.Context) (any, error) {
		select {
		case <-ctx.Done():
			return nil, cerr.Wrap(cerr.CodeBudgetExceeded, ctx.Err(), "kernel stopped")
		case <-time.After(5 * time.Second):
			return nil, nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, rerr := j.Result(context.Background())
	if cerr.CodeOf(rerr) != cerr.CodeBudgetExceeded {
		t.Fatalf("want ERR_BUDGET_EXCEEDED, got %v", rerr)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("deadline did not bound the job")
	}
}

func TestCapacityRejects(t *testing.T) {
	q := New(Config{Workers: 1, Capacity: 2})
	defer q.Shutdown(context.Background())
	release := make(chan struct{})
	q.Submit("blocker", Interactive, func(ctx context.Context) (any, error) {
		<-release
		return nil, nil
	})
	// Give the worker a moment to pick up the blocker so the queued
	// count is deterministic.
	deadline := time.Now().Add(2 * time.Second)
	for q.Stats().Running == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ok1, _, err1 := q.Submit("a", Interactive, func(ctx context.Context) (any, error) { return nil, nil })
	ok2, _, err2 := q.Submit("b", Interactive, func(ctx context.Context) (any, error) { return nil, nil })
	if err1 != nil || err2 != nil {
		t.Fatalf("fills rejected: %v %v", err1, err2)
	}
	_, _, err3 := q.Submit("c", Interactive, func(ctx context.Context) (any, error) { return nil, nil })
	if cerr.CodeOf(err3) != cerr.CodeOverloaded {
		t.Fatalf("overflow not rejected with ERR_OVERLOADED: %v", err3)
	}
	close(release)
	ok1.Result(context.Background())
	ok2.Result(context.Background())
	if s := q.Stats(); s.Rejected != 1 {
		t.Fatalf("rejected %d", s.Rejected)
	}
}

func TestGracefulDrainFinishesQueuedWork(t *testing.T) {
	q := New(Config{Workers: 2})
	var ran atomic.Int32
	var jobs []*Job
	for i := 0; i < 10; i++ {
		j, _, err := q.Submit(fmt.Sprintf("k%d", i), Batch, func(ctx context.Context) (any, error) {
			time.Sleep(2 * time.Millisecond)
			ran.Add(1)
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if err := q.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := ran.Load(); n != 10 {
		t.Fatalf("drain completed %d/10 jobs", n)
	}
	for _, j := range jobs {
		if j.State() != StateDone {
			t.Fatalf("job %s state %v after drain", j.ID, j.State())
		}
	}
	// Post-drain submissions are rejected.
	if _, _, err := q.Submit("late", Interactive, func(ctx context.Context) (any, error) { return nil, nil }); err == nil {
		t.Fatal("draining queue must reject")
	}
}

func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	q := New(Config{Workers: 1})
	j, _, err := q.Submit("straggler", Interactive, func(ctx context.Context) (any, error) {
		<-ctx.Done() // only exits when the drain hard-cancels
		return nil, cerr.Wrap(cerr.CodeBudgetExceeded, ctx.Err(), "cancelled")
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := q.Shutdown(ctx); err == nil {
		t.Fatal("shutdown should report the forced cancellation")
	}
	if _, rerr, ok := j.Peek(); !ok || rerr == nil {
		t.Fatalf("straggler should have failed: ok=%v err=%v", ok, rerr)
	}
}

func TestAbandonedWaitDoesNotCancelJob(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Shutdown(context.Background())
	release := make(chan struct{})
	j, _, err := q.Submit("k", Interactive, func(ctx context.Context) (any, error) {
		<-release
		return "late value", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, werr := j.Result(ctx); cerr.CodeOf(werr) != cerr.CodeBudgetExceeded {
		t.Fatalf("abandoned wait: %v", werr)
	}
	close(release)
	v, err := j.Result(context.Background())
	if err != nil || v.(string) != "late value" {
		t.Fatalf("job lost after abandoned wait: %v %v", v, err)
	}
}

func TestConcurrentSubmitStress(t *testing.T) {
	q := New(Config{Workers: 4, Deadline: time.Second})
	var wg sync.WaitGroup
	var ran atomic.Int32
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", (g+i)%20)
				j, _, err := q.Submit(key, Priority(i%3), func(ctx context.Context) (any, error) {
					ran.Add(1)
					return key, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := j.Result(context.Background()); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := q.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := q.Stats()
	if s.Submitted+s.Deduped != 400 {
		t.Fatalf("accounting: %+v", s)
	}
	if s.Completed != s.Submitted {
		t.Fatalf("completed %d != submitted %d", s.Completed, s.Submitted)
	}
}

// TestTracePropagation: a traced submission records the queue.wait
// span and hands fn a context carrying the trace, so pipeline spans
// land in the same collection.
func TestTracePropagation(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Shutdown(context.Background())
	tr := obs.NewTrace("job-trace")
	j, deduped, err := q.SubmitTraced("k", Interactive, tr, func(ctx context.Context) (any, error) {
		if obs.FromContext(ctx) != tr {
			t.Error("fn context does not carry the submitted trace")
		}
		_, end := obs.Start(ctx, "work")
		end()
		return nil, nil
	})
	if err != nil || deduped {
		t.Fatal(err, deduped)
	}
	if j.Trace() != tr {
		t.Fatal("job lost its trace")
	}
	if _, err := j.Result(context.Background()); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, s := range tr.Spans() {
		names[s.Name] = true
	}
	if !names["queue.wait"] || !names["work"] {
		t.Fatalf("trace missing spans: %v", names)
	}
}

// TestCancelledJobAccountsQueueWait is the drain-path accounting
// contract: a job failed fast during a hard drain (never executed)
// still contributes its queue wait to the histogram, the cumulative
// counter and its trace — abandoned jobs are never zero-cost.
func TestCancelledJobAccountsQueueWait(t *testing.T) {
	reg := obs.NewRegistry()
	q := New(Config{Workers: 1, Registry: reg})
	block := make(chan struct{})
	// Occupy the single worker so the second job stays queued.
	blocker, _, err := q.Submit("blocker", Interactive, func(ctx context.Context) (any, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace("victim")
	victim, _, err := q.SubmitTraced("victim", Interactive, tr, func(ctx context.Context) (any, error) {
		t.Error("cancelled job's fn must not run")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the victim accrue queue wait

	// Expire the drain budget immediately: the blocker is hard-cancelled
	// and the victim is failed fast off the queue.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := q.Shutdown(ctx); err == nil {
		t.Fatal("shutdown should report the forced cancellation")
	}
	close(block)

	if _, verr, ok := victim.Peek(); !ok || cerr.CodeOf(verr) != cerr.CodeBudgetExceeded {
		t.Fatalf("victim outcome: ok=%v err=%v", ok, verr)
	}
	_ = blocker
	s := q.Stats()
	if s.Cancelled < 1 {
		t.Fatalf("cancelled = %d, want >= 1", s.Cancelled)
	}
	if s.QueueWaitMsTotal < 20 {
		t.Fatalf("queue wait total %.3f ms: cancelled job's wait not accounted", s.QueueWaitMsTotal)
	}
	submitted, started, finished := victim.Times()
	if !started.IsZero() {
		t.Fatal("cancelled job must never have started")
	}
	if finished.Before(submitted) || finished.IsZero() {
		t.Fatalf("cancelled job times: submitted=%v finished=%v", submitted, finished)
	}
	// The trace carries the cancelled queue.wait span.
	var waitSpan bool
	for _, sp := range tr.Spans() {
		if sp.Name == "queue.wait" {
			waitSpan = true
			var cancelledAttr bool
			for _, a := range sp.Attrs {
				if a.Key == "cancelled" && a.Value == "true" {
					cancelledAttr = true
				}
			}
			if !cancelledAttr {
				t.Fatalf("queue.wait span missing cancelled attr: %v", sp.Attrs)
			}
			if sp.Dur < 20*time.Millisecond {
				t.Fatalf("queue.wait span too short: %v", sp.Dur)
			}
		}
	}
	if !waitSpan {
		t.Fatal("cancelled job recorded no queue.wait span")
	}
	// And the registry histogram saw both jobs' waits.
	var expo strings.Builder
	if err := reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expo.String(), "jobs_queue_wait_seconds_count 2") {
		t.Fatalf("queue wait histogram count wrong:\n%s", expo.String())
	}
}

// TestDefaultWorkersUsesAllCPUs pins the Config.Workers default:
// leaving the pool size unset (or negative) sizes it to
// runtime.GOMAXPROCS(0), not to a single worker.
func TestDefaultWorkersUsesAllCPUs(t *testing.T) {
	q := New(Config{})
	defer q.Shutdown(context.Background())
	if got, want := q.Stats().Workers, runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("default workers = %d, want GOMAXPROCS = %d", got, want)
	}
	q2 := New(Config{Workers: -3})
	defer q2.Shutdown(context.Background())
	if got, want := q2.Stats().Workers, runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("negative workers = %d, want GOMAXPROCS = %d", got, want)
	}
}
