// Package chaos is the service's deterministic fault injector: a
// seeded, scenario-scripted source of disk errors, artifact bit-flips,
// stage latency spikes, stage panics and queue stalls, threaded
// through the store, cache, jobs and compiler layers so the drills in
// `make chaos-smoke` can prove the recovery machinery (quarantine,
// sweep journal resume, admission control, retrying clients) end to
// end against a real daemon.
//
// The paper's subject is a RAM that repairs itself after field
// failures; OpenYield and the functional-BIST literature evaluate
// that property by *injecting* variation and faults rather than
// waiting for them. This package applies the same discipline to the
// service itself: every failure mode the recovery paths claim to
// handle has a scripted injection that exercises it.
//
// Design constraints:
//
//   - Disabled is free. Every entry point is a nil-receiver no-op, so
//     production paths (no -chaos-spec) pay exactly one nil check and
//     zero allocations.
//   - Deterministic. A spec carries a seed; probabilistic rules draw
//     from a seeded PRNG and counted rules (skip/max) fire on exact
//     hit ordinals, so a drill replays identically for a fixed
//     request sequence.
//   - Scenario-scripted. A spec is a JSON list of rules, each naming
//     an injection point ("store.read", "queue.stall",
//     "compile.stage.floorplan", ...), a mode (error, delay, corrupt,
//     panic) and firing bounds (skip the first N hits, fire at most M
//     times, fire with probability p).
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cerr"
)

// Injection points threaded through the service. A rule's Point must
// match one of these exactly, or use a trailing "*" to match a family
// (e.g. "compile.stage.*").
const (
	// PointStoreWrite fires in store.Put before the object is
	// committed: an "error" rule simulates a full or failing disk.
	PointStoreWrite = "store.write"
	// PointStoreRead fires in store.Get: an "error" rule simulates an
	// unreadable file (reported as a miss), a "corrupt" rule flips a
	// bit in the read image so verification fails and the quarantine
	// path runs.
	PointStoreRead = "store.read"
	// PointCachePut fires in cache.Put: an "error" rule drops the
	// insert, simulating memory pressure.
	PointCachePut = "cache.put"
	// PointQueueStall fires when a worker picks a job up: a "delay"
	// rule stalls the pickup, simulating a wedged worker.
	PointQueueStall = "queue.stall"
	// PointPeerFetch fires when a store miss consults ring peers: an
	// "error" rule fails the fetch (the shard recompiles), a "corrupt"
	// rule flips a bit in the fetched object image so verification
	// quarantines it exactly like disk rot.
	PointPeerFetch = "store.peerfetch"
	// PointProxyRoute fires in the gateway before each routed peer
	// exchange: an "error" rule fails the attempt (exercising
	// ring-successor failover), a "delay" rule injects routing latency.
	PointProxyRoute = "proxy.route"
	// PointTraceFetch fires in the gateway before each remote span-set
	// fetch for a merged /debug/trace view: an "error" rule degrades
	// the merge to gateway-local spans, a "delay" rule slows it.
	PointTraceFetch = "trace.fetch"
	// PointFleetScrape fires per peer in the gateway's fleet metrics
	// scrape: an "error" rule makes that peer count as stale (skipped,
	// error counted), a "delay" rule exercises the per-peer timeout.
	PointFleetScrape = "fleet.scrape"
	// PointSimBatch fires when a bit-parallel fault-simulation batch
	// (sram.BatchArray) is constructed: "error" fails the batch with a
	// typed error (the coverage experiments must surface it, never
	// panic or return a partial table), "delay" stalls kernel startup.
	PointSimBatch = "sim.batch"
	// PointMCSample fires once per Monte-Carlo yield sample chunk in
	// mcyield.Estimate: an "error" rule aborts the estimate (testing
	// the sweep's failed-point path), a "delay" rule slows sampling so
	// SSE progress and admission control can be observed mid-flight.
	PointMCSample = "mc.sample"
	// PointStagePrefix + stage name fires at each compile stage
	// checkpoint: "delay" injects a latency spike, "panic" exercises
	// the recover guards, "error" fails the stage with a typed error.
	PointStagePrefix = "compile.stage."
)

// Modes a rule can run in.
const (
	ModeError   = "error"
	ModeDelay   = "delay"
	ModeCorrupt = "corrupt"
	ModePanic   = "panic"
)

// Rule scripts one injection: at Point, in Mode, firing on hits
// skip < ordinal <= skip+max (max 0 = unlimited) with probability
// Prob (0 means always).
type Rule struct {
	Point string `json:"point"`
	Mode  string `json:"mode"`
	// Prob is the firing probability per eligible hit; 0 or 1 fires
	// on every eligible hit.
	Prob float64 `json:"prob,omitempty"`
	// Skip suppresses the first N matching hits.
	Skip int `json:"skip,omitempty"`
	// Max caps how many times the rule fires; 0 means unlimited.
	Max int `json:"max,omitempty"`
	// DelayMs is the injected latency for "delay" rules.
	DelayMs int `json:"delay_ms,omitempty"`
}

// Spec is the -chaos-spec wire form: a seed plus the rule list.
type Spec struct {
	Seed  int64  `json:"seed,omitempty"`
	Rules []Rule `json:"rules"`
}

// rule is the runtime form of one scripted injection.
type rule struct {
	Rule
	hits  int // matching invocations seen
	fired int // injections actually performed
}

// matches reports whether r applies to the named point ("*" suffix is
// a family wildcard).
func (r *rule) matches(point string) bool {
	if strings.HasSuffix(r.Point, "*") {
		return strings.HasPrefix(point, strings.TrimSuffix(r.Point, "*"))
	}
	return r.Point == point
}

// Injector evaluates a scripted scenario. A nil *Injector is the
// disabled state: every method returns the zero outcome immediately.
// Construct with Parse or Load; safe for concurrent use.
type Injector struct {
	mu    sync.Mutex
	rules []*rule
	rng   *rand.Rand
}

// Parse compiles a JSON spec into an injector.
func Parse(data []byte) (*Injector, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, cerr.Wrap(cerr.CodeInvalidParams, err, "chaos: bad spec JSON")
	}
	if len(s.Rules) == 0 {
		return nil, cerr.New(cerr.CodeInvalidParams, "chaos: spec has no rules")
	}
	in := &Injector{rng: rand.New(rand.NewSource(s.Seed))}
	for i, r := range s.Rules {
		if r.Point == "" {
			return nil, cerr.New(cerr.CodeInvalidParams, "chaos: rule %d has no point", i)
		}
		switch r.Mode {
		case ModeError, ModeDelay, ModeCorrupt, ModePanic:
		default:
			return nil, cerr.New(cerr.CodeInvalidParams,
				"chaos: rule %d has unknown mode %q (error, delay, corrupt, panic)", i, r.Mode)
		}
		if r.Prob < 0 || r.Prob > 1 {
			return nil, cerr.New(cerr.CodeInvalidParams, "chaos: rule %d probability %v out of [0,1]", i, r.Prob)
		}
		if r.Skip < 0 || r.Max < 0 || r.DelayMs < 0 {
			return nil, cerr.New(cerr.CodeInvalidParams, "chaos: rule %d has negative bounds", i)
		}
		if r.Mode == ModeDelay && r.DelayMs == 0 {
			return nil, cerr.New(cerr.CodeInvalidParams, "chaos: delay rule %d needs delay_ms", i)
		}
		rr := r
		in.rules = append(in.rules, &rule{Rule: rr})
	}
	return in, nil
}

// Load reads and parses a spec file.
func Load(path string) (*Injector, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, cerr.Wrap(cerr.CodeInvalidParams, err, "chaos: reading spec %s", path)
	}
	return Parse(data)
}

// fire decides whether any rule in the given mode fires at point,
// returning the matched rule. Hit and fire counters advance under the
// injector lock, so skip/max ordinals are exact even under concurrent
// callers.
func (in *Injector) fire(point, mode string) *rule {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if r.Mode != mode || !r.matches(point) {
			continue
		}
		r.hits++
		if r.hits <= r.Skip {
			continue
		}
		if r.Max > 0 && r.fired >= r.Max {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && in.rng.Float64() >= r.Prob {
			continue
		}
		r.fired++
		return r
	}
	return nil
}

// Fail returns an injected typed error when an "error" rule fires at
// point, nil otherwise (and always nil on a nil injector).
func (in *Injector) Fail(point string) error {
	if in == nil {
		return nil
	}
	if r := in.fire(point, ModeError); r != nil {
		return cerr.New(cerr.CodeInternal, "chaos: injected %s error (firing %d)", point, r.fired)
	}
	return nil
}

// Delay sleeps for the scripted latency when a "delay" rule fires at
// point.
func (in *Injector) Delay(point string) {
	if in == nil {
		return
	}
	if r := in.fire(point, ModeDelay); r != nil {
		time.Sleep(time.Duration(r.DelayMs) * time.Millisecond)
	}
}

// Corrupt flips one bit in data when a "corrupt" rule fires at point,
// reporting whether it did. The flipped offset is the buffer midpoint,
// so the corruption is deterministic for a given payload.
func (in *Injector) Corrupt(point string, data []byte) bool {
	if in == nil || len(data) == 0 {
		return false
	}
	if r := in.fire(point, ModeCorrupt); r != nil {
		data[len(data)/2] ^= 0x01
		return true
	}
	return false
}

// Point runs the full stage-checkpoint protocol at the named point:
// delay rules sleep, panic rules panic (exercising the recover
// guards), error rules return a typed error. The compiler calls this
// at every stage checkpoint with "compile.stage.<name>".
func (in *Injector) Point(point string) error {
	if in == nil {
		return nil
	}
	in.Delay(point)
	if r := in.fire(point, ModePanic); r != nil {
		panic(fmt.Sprintf("chaos: injected panic at %s (firing %d)", point, r.fired))
	}
	return in.Fail(point)
}

// Fired returns the total injections performed, for the
// chaos_injections_total metric.
func (in *Injector) Fired() uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var n uint64
	for _, r := range in.rules {
		n += uint64(r.fired)
	}
	return n
}

// Snapshot reports per-rule firing counts keyed "point/mode", sorted
// for deterministic rendering in logs and tests.
func (in *Injector) Snapshot() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.rules))
	for _, r := range in.rules {
		out = append(out, fmt.Sprintf("%s/%s: hits=%d fired=%d", r.Point, r.Mode, r.hits, r.fired))
	}
	sort.Strings(out)
	return out
}
