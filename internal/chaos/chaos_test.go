package chaos

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/cerr"
)

func mustParse(t *testing.T, spec string) *Injector {
	t.Helper()
	in, err := Parse([]byte(spec))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return in
}

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if err := in.Fail(PointStoreWrite); err != nil {
		t.Fatalf("nil Fail: %v", err)
	}
	if err := in.Point(PointStagePrefix + "macros"); err != nil {
		t.Fatalf("nil Point: %v", err)
	}
	buf := []byte("payload")
	if in.Corrupt(PointStoreRead, buf) {
		t.Fatal("nil Corrupt fired")
	}
	in.Delay(PointQueueStall) // must not sleep or panic
	if in.Fired() != 0 {
		t.Fatal("nil Fired nonzero")
	}
}

func TestSkipAndMaxBoundFirings(t *testing.T) {
	in := mustParse(t, `{"rules":[{"point":"store.write","mode":"error","skip":1,"max":2}]}`)
	var outcomes []bool
	for i := 0; i < 5; i++ {
		outcomes = append(outcomes, in.Fail(PointStoreWrite) != nil)
	}
	want := []bool{false, true, true, false, false}
	for i := range want {
		if outcomes[i] != want[i] {
			t.Fatalf("hit %d fired=%v want %v (all %v)", i, outcomes[i], want[i], outcomes)
		}
	}
	if in.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", in.Fired())
	}
}

func TestSeededProbabilityIsDeterministic(t *testing.T) {
	spec := `{"seed":7,"rules":[{"point":"store.read","mode":"error","prob":0.5}]}`
	run := func() []bool {
		in := mustParse(t, spec)
		out := make([]bool, 32)
		for i := range out {
			out[i] = in.Fail(PointStoreRead) != nil
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at hit %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.5 fired %d/%d times — seeded draw not applied", fired, len(a))
	}
}

func TestCorruptFlipsOneBit(t *testing.T) {
	in := mustParse(t, `{"rules":[{"point":"store.read","mode":"corrupt","max":1}]}`)
	orig := []byte("deadbeefdeadbeef")
	buf := append([]byte(nil), orig...)
	if !in.Corrupt(PointStoreRead, buf) {
		t.Fatal("corrupt rule did not fire")
	}
	diff := 0
	for i := range buf {
		if buf[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption touched %d bytes, want exactly 1", diff)
	}
	// max=1: the second read image stays clean.
	buf2 := append([]byte(nil), orig...)
	if in.Corrupt(PointStoreRead, buf2) {
		t.Fatal("corrupt rule fired past max")
	}
}

func TestWildcardMatchesStageFamily(t *testing.T) {
	in := mustParse(t, `{"rules":[{"point":"compile.stage.*","mode":"error","max":1}]}`)
	if err := in.Point("compile.stage.floorplan"); err == nil {
		t.Fatal("wildcard stage rule did not fire")
	} else if cerr.CodeOf(err) != cerr.CodeInternal {
		t.Fatalf("injected error code %v", cerr.CodeOf(err))
	}
	if err := in.Fail(PointStoreWrite); err != nil {
		t.Fatalf("wildcard leaked onto %s: %v", PointStoreWrite, err)
	}
}

func TestPanicModePanics(t *testing.T) {
	in := mustParse(t, `{"rules":[{"point":"compile.stage.macros","mode":"panic","max":1}]}`)
	err := func() (err error) {
		defer cerr.Recover("macros", &err)
		return in.Point("compile.stage.macros")
	}()
	if cerr.CodeOf(err) != cerr.CodeInternal || !strings.Contains(err.Error(), "injected panic") {
		t.Fatalf("recovered error: %v", err)
	}
}

func TestDelayModeSleeps(t *testing.T) {
	in := mustParse(t, `{"rules":[{"point":"queue.stall","mode":"delay","delay_ms":30,"max":1}]}`)
	start := time.Now()
	in.Delay(PointQueueStall)
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay rule slept %v, want >= 30ms", d)
	}
	start = time.Now()
	in.Delay(PointQueueStall) // past max: immediate
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("exhausted delay rule slept %v", d)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, bad := range []string{
		``,
		`{}`,
		`{"rules":[]}`,
		`{"rules":[{"mode":"error"}]}`,
		`{"rules":[{"point":"x","mode":"nope"}]}`,
		`{"rules":[{"point":"x","mode":"error","prob":1.5}]}`,
		`{"rules":[{"point":"x","mode":"delay"}]}`,
		`{"rules":[{"point":"x","mode":"error","skip":-1}]}`,
		`{"rules":[{"point":"x","mode":"error"}],"bogus":1}`,
	} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		} else if cerr.CodeOf(err) != cerr.CodeInvalidParams {
			t.Errorf("Parse(%q) code %v", bad, cerr.CodeOf(err))
		}
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context resolved an injector")
	}
	in := mustParse(t, `{"rules":[{"point":"x","mode":"error"}]}`)
	ctx := WithContext(context.Background(), in)
	if FromContext(ctx) != in {
		t.Fatal("injector did not round-trip through context")
	}
	if got := WithContext(context.Background(), nil); FromContext(got) != nil {
		t.Fatal("nil injector installed")
	}
}
