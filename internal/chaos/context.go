// Context plumbing: the serving layer installs its injector on the
// compile context so the compiler's stage checkpoints can consult it
// without the compiler depending on server configuration. An
// uninstrumented context resolves to a nil injector, whose methods are
// all no-ops — the production compile path pays one context lookup.
package chaos

import "context"

type ctxKey struct{}

// WithContext returns ctx carrying the injector. A nil injector
// returns ctx unchanged.
func WithContext(ctx context.Context, in *Injector) context.Context {
	if in == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, in)
}

// FromContext resolves the installed injector, nil when absent.
func FromContext(ctx context.Context) *Injector {
	in, _ := ctx.Value(ctxKey{}).(*Injector)
	return in
}
