// Package gds writes layout hierarchies as GDSII stream files — the
// interchange format every 1990s (and current) physical-design flow
// consumes, so BISRAMGEN's output can be opened in KLayout or fed to
// a foundry DRC. The writer emits one structure per distinct cell
// with BOUNDARY records for shapes and SREF records (with the proper
// STRANS/ANGLE encoding of the eight Manhattan orientations) for
// instances. A minimal reader parses the records back for round-trip
// verification.
package gds

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/geom"
)

// GDSII record types used here.
const (
	recHEADER   = 0x0002
	recBGNLIB   = 0x0102
	recLIBNAME  = 0x0206
	recUNITS    = 0x0305
	recBGNSTR   = 0x0502
	recSTRNAME  = 0x0606
	recENDSTR   = 0x0700
	recBOUNDARY = 0x0800
	recSREF     = 0x0A00
	recLAYER    = 0x0D02
	recDATATYPE = 0x0E02
	recXY       = 0x1003
	recENDLIB   = 0x0400
	recENDEL    = 0x1100
	recSNAME    = 0x1206
	recSTRANS   = 0x1A01
	recANGLE    = 0x1C05
)

type writer struct {
	w   io.Writer
	err error
}

func (w *writer) record(rectype uint16, data []byte) {
	if w.err != nil {
		return
	}
	length := uint16(4 + len(data))
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:2], length)
	binary.BigEndian.PutUint16(hdr[2:4], rectype)
	if _, err := w.w.Write(hdr[:]); err != nil {
		w.err = err
		return
	}
	if len(data) > 0 {
		if _, err := w.w.Write(data); err != nil {
			w.err = err
		}
	}
}

func (w *writer) recordString(rectype uint16, s string) {
	b := []byte(s)
	if len(b)%2 == 1 {
		b = append(b, 0) // GDSII pads strings to even length
	}
	w.record(rectype, b)
}

func (w *writer) recordInt16(rectype uint16, vals ...int16) {
	b := make([]byte, 2*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint16(b[2*i:], uint16(v))
	}
	w.record(rectype, b)
}

func (w *writer) recordInt32(rectype uint16, vals ...int32) {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint32(b[4*i:], uint32(v))
	}
	w.record(rectype, b)
}

// real8 encodes an IEEE float into GDSII's excess-64 base-16 8-byte
// real format.
func real8(f float64) []byte {
	out := make([]byte, 8)
	if f == 0 {
		return out
	}
	sign := byte(0)
	if f < 0 {
		sign = 0x80
		f = -f
	}
	exp := 0
	for f >= 1 {
		f /= 16
		exp++
	}
	for f < 1.0/16 {
		f *= 16
		exp--
	}
	mant := uint64(f * math.Pow(2, 56))
	out[0] = sign | byte(exp+64)
	for i := 1; i < 8; i++ {
		out[i] = byte(mant >> uint(8*(7-i)))
	}
	return out
}

func (w *writer) recordReal8(rectype uint16, vals ...float64) {
	var b []byte
	for _, v := range vals {
		b = append(b, real8(v)...)
	}
	w.record(rectype, b)
}

// nowStamp is the fixed timestamp written into BGNLIB/BGNSTR (GDSII
// wants 12 int16s: modification + access time). A fixed stamp keeps
// output deterministic.
var nowStamp = []int16{1999, 3, 9, 12, 0, 0, 1999, 3, 9, 12, 0, 0}

// Write emits the cell hierarchy rooted at top as a GDSII library.
// Units: 1 dbu = 1 nm (the geometry kernel's convention).
func Write(w io.Writer, top *geom.Cell, libName string) error {
	gw := &writer{w: w}
	gw.recordInt16(recHEADER, 600) // GDSII v6
	gw.recordInt16(recBGNLIB, nowStamp...)
	gw.recordString(recLIBNAME, sanitize(libName))
	// UNITS: user unit = 1e-3 (µm per dbu), database unit = 1e-9 m.
	gw.recordReal8(recUNITS, 1e-3, 1e-9)

	// Collect unique cells bottom-up; names must be unique.
	order, names := collect(top)
	for _, c := range order {
		gw.recordInt16(recBGNSTR, nowStamp...)
		gw.recordString(recSTRNAME, names[c])
		for _, s := range c.Shapes {
			gw.record(recBOUNDARY, nil)
			gw.recordInt16(recLAYER, int16(s.Layer))
			gw.recordInt16(recDATATYPE, 0)
			r := s.Rect
			gw.recordInt32(recXY,
				int32(r.X0), int32(r.Y0),
				int32(r.X1), int32(r.Y0),
				int32(r.X1), int32(r.Y1),
				int32(r.X0), int32(r.Y1),
				int32(r.X0), int32(r.Y0))
			gw.record(recENDEL, nil)
		}
		for i := range c.Instances {
			in := &c.Instances[i]
			gw.record(recSREF, nil)
			gw.recordString(recSNAME, names[in.Cell])
			mirror, angle := strans(in.Orient)
			if mirror || angle != 0 {
				var flags int16
				if mirror {
					flags = int16(-32768) // bit 0 (MSB): reflection about x
				}
				gw.recordInt16(recSTRANS, flags)
				if angle != 0 {
					gw.recordReal8(recANGLE, angle)
				}
			}
			gw.recordInt32(recXY, int32(in.At.X), int32(in.At.Y))
			gw.record(recENDEL, nil)
		}
		gw.record(recENDSTR, nil)
	}
	gw.record(recENDLIB, nil)
	return gw.err
}

// strans converts a geom orientation to the GDSII (mirror-about-x,
// CCW angle) pair. geom's Orient mirrors about the Y axis before
// rotating; GDSII reflects about the X axis before rotating. The
// identities MY = MX·R180 and MXR90 = MX·R90 etc. give the mapping.
func strans(o geom.Orient) (mirror bool, angleDeg float64) {
	switch o {
	case geom.R0:
		return false, 0
	case geom.R90:
		return false, 90
	case geom.R180:
		return false, 180
	case geom.R270:
		return false, 270
	case geom.MX: // y -> -y: reflect about X axis
		return true, 0
	case geom.MY: // x -> -x = reflect-X then rotate 180
		return true, 180
	case geom.MXR90: // mirror-Y then R90 = reflect-X then R270
		return true, 270
	case geom.MYR90: // mirror-Y then R270 = reflect-X then R90
		return true, 90
	}
	return false, 0
}

// collect returns cells in child-first order with unique names.
func collect(top *geom.Cell) ([]*geom.Cell, map[*geom.Cell]string) {
	var order []*geom.Cell
	names := map[*geom.Cell]string{}
	used := map[string]int{}
	var visit func(c *geom.Cell)
	visit = func(c *geom.Cell) {
		if _, done := names[c]; done {
			return
		}
		names[c] = "" // mark in-progress to survive cycles (shouldn't happen)
		for i := range c.Instances {
			visit(c.Instances[i].Cell)
		}
		base := sanitize(c.Name)
		if base == "" {
			base = "CELL"
		}
		name := base
		if n := used[base]; n > 0 {
			name = fmt.Sprintf("%s_%d", base, n)
		}
		used[base]++
		names[c] = name
		order = append(order, c)
	}
	visit(top)
	return order, names
}

// sanitize maps arbitrary cell names into the GDSII structure-name
// alphabet.
func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '$':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() > 32 {
		return b.String()[:32]
	}
	return b.String()
}

// --- minimal reader for round-trip verification ---------------------

// Record is one parsed GDSII record.
type Record struct {
	Type uint16
	Data []byte
}

// Parse splits a GDSII stream into records.
func Parse(data []byte) ([]Record, error) {
	var out []Record
	for off := 0; off < len(data); {
		if off+4 > len(data) {
			return nil, fmt.Errorf("gds: truncated record header at %d", off)
		}
		length := int(binary.BigEndian.Uint16(data[off : off+2]))
		rectype := binary.BigEndian.Uint16(data[off+2 : off+4])
		if length < 4 || off+length > len(data) {
			return nil, fmt.Errorf("gds: bad record length %d at %d", length, off)
		}
		out = append(out, Record{Type: rectype, Data: data[off+4 : off+length]})
		off += length
	}
	return out, nil
}

// Summary condenses a parsed stream for assertions: structure names,
// boundary count per layer, and sref count.
type Summary struct {
	Structures []string
	Boundaries map[int]int
	SRefs      int
}

// Summarize parses and tallies a stream.
func Summarize(data []byte) (*Summary, error) {
	recs, err := Parse(data)
	if err != nil {
		return nil, err
	}
	s := &Summary{Boundaries: map[int]int{}}
	for i, r := range recs {
		switch r.Type {
		case recSTRNAME:
			s.Structures = append(s.Structures, strings.TrimRight(string(r.Data), "\x00"))
		case recLAYER:
			if len(r.Data) >= 2 {
				s.Boundaries[int(int16(binary.BigEndian.Uint16(r.Data)))]++
			}
		case recSREF:
			s.SRefs++
		}
		_ = i
	}
	sort.Strings(s.Structures)
	return s, nil
}
