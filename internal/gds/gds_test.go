package gds

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/leafcell"
	"repro/internal/tech"
)

func TestReal8RoundTripValues(t *testing.T) {
	// Decode helper for the excess-64 format.
	decode := func(b []byte) float64 {
		if b[0]&0x7f == 0 && b[1] == 0 {
			return 0
		}
		sign := 1.0
		if b[0]&0x80 != 0 {
			sign = -1
		}
		exp := int(b[0]&0x7f) - 64
		var mant uint64
		for i := 1; i < 8; i++ {
			mant = mant<<8 | uint64(b[i])
		}
		return sign * float64(mant) / math.Pow(2, 56) * math.Pow(16, float64(exp))
	}
	for _, v := range []float64{0, 1e-9, 1e-3, 1, 2.5, -3.75, 90, 270} {
		got := decode(real8(v))
		if math.Abs(got-v) > math.Abs(v)*1e-12+1e-300 {
			t.Errorf("real8(%g) decodes to %g", v, got)
		}
	}
}

func TestWriteAndSummarize(t *testing.T) {
	leaf := geom.NewCell("bit")
	leaf.AddShape(tech.Metal1, geom.R(0, 0, 100, 50), "a")
	leaf.AddShape(tech.Poly, geom.R(10, 10, 30, 40), "g")
	top := geom.NewCell("top!") // name needs sanitising
	top.Place("i0", leaf, geom.R0, geom.Point{})
	top.Place("i1", leaf, geom.MX, geom.Point{Y: 100})
	top.Place("i2", leaf, geom.R90, geom.Point{X: 200})

	var buf bytes.Buffer
	if err := Write(&buf, top, "bisramgen"); err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Structures) != 2 || s.Structures[0] != "bit" || s.Structures[1] != "top_" {
		t.Fatalf("structures %v", s.Structures)
	}
	if s.SRefs != 3 {
		t.Fatalf("srefs %d", s.SRefs)
	}
	if s.Boundaries[int(tech.Metal1)] != 1 || s.Boundaries[int(tech.Poly)] != 1 {
		t.Fatalf("boundaries %v", s.Boundaries)
	}
	// Stream must start with HEADER and end with ENDLIB.
	recs, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Type != recHEADER || recs[len(recs)-1].Type != recENDLIB {
		t.Fatal("framing records wrong")
	}
}

func TestOrientationEncoding(t *testing.T) {
	cases := map[geom.Orient]struct {
		mirror bool
		angle  float64
	}{
		geom.R0: {false, 0}, geom.R90: {false, 90},
		geom.R180: {false, 180}, geom.R270: {false, 270},
		geom.MX: {true, 0}, geom.MY: {true, 180},
		geom.MXR90: {true, 270}, geom.MYR90: {true, 90},
	}
	for o, want := range cases {
		m, a := strans(o)
		if m != want.mirror || a != want.angle {
			t.Errorf("%v -> (%v,%v), want (%v,%v)", o, m, a, want.mirror, want.angle)
		}
	}
	// Verify the mapping is faithful: GDSII applies reflect-about-X
	// then CCW rotation; that composite must equal geom's transform.
	p := geom.Point{X: 3, Y: 7}
	for o := range cases {
		m, aDeg := strans(o)
		x, y := float64(p.X), float64(p.Y)
		if m {
			y = -y
		}
		rad := aDeg * math.Pi / 180
		rx := x*math.Cos(rad) - y*math.Sin(rad)
		ry := x*math.Sin(rad) + y*math.Cos(rad)
		want := geom.TransformPoint(p, o)
		if math.Abs(rx-float64(want.X)) > 1e-9 || math.Abs(ry-float64(want.Y)) > 1e-9 {
			t.Errorf("%v: GDS transform gives (%.0f,%.0f), geom gives %v", o, rx, ry, want)
		}
	}
}

func TestUniqueNamesForDuplicates(t *testing.T) {
	a := geom.NewCell("cell")
	a.AddShape(tech.Metal1, geom.R(0, 0, 1, 1), "")
	b := geom.NewCell("cell") // same name, different cell
	b.AddShape(tech.Metal2, geom.R(0, 0, 2, 2), "")
	top := geom.NewCell("top")
	top.Place("x", a, geom.R0, geom.Point{})
	top.Place("y", b, geom.R0, geom.Point{X: 10})
	var buf bytes.Buffer
	if err := Write(&buf, top, "lib"); err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, n := range s.Structures {
		if seen[n] {
			t.Fatalf("duplicate structure name %q", n)
		}
		seen[n] = true
	}
}

func TestLeafCellExportsCleanly(t *testing.T) {
	cell := leafcell.SRAM6T(tech.CDA07)
	var buf bytes.Buffer
	if err := Write(&buf, cell.Cell, "leaf"); err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range s.Boundaries {
		total += n
	}
	if total != len(cell.Shapes) {
		t.Fatalf("boundary count %d != shape count %d", total, len(cell.Shapes))
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte{0, 1}); err == nil {
		t.Fatal("truncated header accepted")
	}
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:2], 100) // claims 100 bytes, has 4
	binary.BigEndian.PutUint16(hdr[2:4], recHEADER)
	if _, err := Parse(hdr[:]); err == nil {
		t.Fatal("over-long record accepted")
	}
}
