// Package compiler is BISRAMGEN itself: from user circuit parameters
// and a CMOS process it builds the leaf-cell library, assembles the
// macrocells (the RAM array with spare rows, row and column decoders,
// sense amplifiers and write drivers, DATAGEN, ADDGEN, the TLB, the
// TRPLA and the state register), floorplans them with the
// port-alignment place-and-route, and emits the layout together with
// area/timing reports, the PLA control program, a datasheet, and a
// behavioural simulation model.
package compiler

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/bisr"
	"repro/internal/bist"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/leafcell"
	"repro/internal/march"
	"repro/internal/sram"
	"repro/internal/tech"
)

// Params are the user inputs of Fig. 1: word count, word width,
// column-multiplex ratio, spare rows, critical-gate sizing, strap
// spacing and the process.
type Params struct {
	Words      int
	BPW        int
	BPC        int
	Spares     int // 4, 8 or 16 per the paper (0 disables BISR)
	BufSize    int // critical gate size multiplier (>= 1)
	StrapCells int // cells between straps; 0 disables strapping
	Process    *tech.Process
	// Test is the march algorithm microprogrammed into the TRPLA;
	// zero value selects IFA-9.
	Test march.Test
	// Program, when non-nil, supplies the TRPLA control code directly
	// — e.g. loaded from AND/OR plane files with bist.ReadPlanes — and
	// takes precedence over Test. This is the paper's runtime
	// control-code loading path: editing the plane files swaps the
	// test algorithm without regenerating the tool.
	Program *bist.Program
	// RefineIterations, when positive, runs the simulated-annealing
	// floorplan refiner for that many moves after the constructive
	// place-and-route (seeded deterministically).
	RefineIterations int
}

// Validate checks the parameter envelope.
func (p Params) Validate() error {
	if p.Process == nil {
		return fmt.Errorf("compiler: no process selected")
	}
	if err := p.Process.Validate(); err != nil {
		return err
	}
	if p.Words <= 0 || p.BPW <= 0 || p.BPC <= 0 {
		return fmt.Errorf("compiler: non-positive geometry %+v", p)
	}
	if p.BPC&(p.BPC-1) != 0 {
		return fmt.Errorf("compiler: bpc %d must be a power of 2", p.BPC)
	}
	if p.Words%p.BPC != 0 {
		return fmt.Errorf("compiler: words %d not divisible by bpc %d", p.Words, p.BPC)
	}
	if p.Words&(p.Words-1) != 0 {
		return fmt.Errorf("compiler: words %d must be a power of 2", p.Words)
	}
	switch p.Spares {
	case 0, 4, 8, 16:
	default:
		return fmt.Errorf("compiler: spare rows must be 0, 4, 8 or 16 (got %d)", p.Spares)
	}
	if p.BufSize < 1 || p.BufSize > 4 {
		return fmt.Errorf("compiler: buffer size %d out of range 1..4", p.BufSize)
	}
	if p.StrapCells < 0 {
		return fmt.Errorf("compiler: negative strap spacing")
	}
	if p.Rows() < 2 {
		return fmt.Errorf("compiler: fewer than 2 rows")
	}
	return nil
}

// Rows returns the regular row count words/bpc.
func (p Params) Rows() int { return p.Words / p.BPC }

// RowAddrBits returns the row address width.
func (p Params) RowAddrBits() int { return bits.Len(uint(p.Rows() - 1)) }

// ColAddrBits returns the column-select address width log2(bpc).
func (p Params) ColAddrBits() int { return bits.Len(uint(p.BPC - 1)) }

// Bits returns the regular capacity in bits.
func (p Params) Bits() int { return p.Words * p.BPW }

// AreaReport decomposes the silicon area (µm²).
type AreaReport struct {
	ArrayRegular float64 // regular rows
	ArraySpare   float64 // spare rows
	RowDecoder   float64
	ColPeriphery float64 // precharge, column mux, sense, write, column decoder
	BIST         float64 // TRPLA + ADDGEN + DATAGEN + STREG
	BISR         float64 // TLB + spare drivers + output tristates
	Total        float64 // floorplan bounding box

	// OverheadPct is (BIST+BISR)/(everything else) in percent — the
	// paper's Table I metric (redundant rows excluded from the
	// overhead, as argued in Section IX).
	OverheadPct float64
	// GrowthFactor is Total / (Total - spare - BIST - BISR), the
	// yield model's defect-scaling factor.
	GrowthFactor float64
}

// Design is the compiler output.
type Design struct {
	Params Params
	Lib    *leafcell.Library
	Macros map[string]*geom.Cell
	Plan   *floorplan.Result
	Top    *geom.Cell
	Prog   *bist.Program
	Area   AreaReport
	Timing TimingReport
	Power  PowerReport
}

// Compile runs the full flow.
func Compile(p Params) (*Design, error) {
	if p.Test.Name == "" {
		p.Test = march.IFA9()
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	lib, err := leafcell.NewLibrary(p.Process, p.BufSize)
	if err != nil {
		return nil, err
	}
	prog := p.Program
	if prog == nil {
		prog, err = bist.Assemble(p.Test)
		if err != nil {
			return nil, err
		}
	}
	d := &Design{Params: p, Lib: lib, Prog: prog, Macros: map[string]*geom.Cell{}}

	array := d.buildArray()
	rowdec := d.buildRowDecoder()
	colper := d.buildColPeriphery()
	datagen := d.buildDataGen()
	addgen := d.buildAddGen()
	streg := d.buildStReg()
	trpla := d.buildTRPLA()
	var tlb *geom.Cell
	if p.Spares > 0 {
		tlb = d.buildTLB()
	}

	macros := []floorplan.Macro{
		{Name: "array", Cell: array},
		{Name: "rowdec", Cell: rowdec},
		{Name: "colper", Cell: colper},
		{Name: "datagen", Cell: datagen},
		{Name: "addgen", Cell: addgen},
		{Name: "streg", Cell: streg},
		{Name: "trpla", Cell: trpla},
	}
	nets := []floorplan.Net{
		{Name: "wl_bus", Pins: []floorplan.Pin{{Macro: "rowdec", Port: "wl_edge"}, {Macro: "array", Port: "wl_edge"}}},
		{Name: "bl_bus", Pins: []floorplan.Pin{{Macro: "array", Port: "bl_edge"}, {Macro: "colper", Port: "bl_edge"}}},
		{Name: "dbus", Pins: []floorplan.Pin{{Macro: "colper", Port: "dout"}, {Macro: "datagen", Port: "dcmp"}}},
		{Name: "addr", Pins: []floorplan.Pin{{Macro: "addgen", Port: "abus"}, {Macro: "rowdec", Port: "abus"}}},
		{Name: "ctl", Pins: []floorplan.Pin{{Macro: "trpla", Port: "ctl"}, {Macro: "streg", Port: "ctl"}}},
	}
	if tlb != nil {
		macros = append(macros, floorplan.Macro{Name: "tlb", Cell: tlb})
		nets = append(nets, floorplan.Net{Name: "spare_wl", Pins: []floorplan.Pin{
			{Macro: "tlb", Port: "spare_wl"}, {Macro: "array", Port: "wl_edge"}}})
		nets = append(nets, floorplan.Net{Name: "addr_tlb", Pins: []floorplan.Pin{
			{Macro: "addgen", Port: "abus"}, {Macro: "tlb", Port: "abus"}}})
	}
	plan, err := floorplan.Place(p.Process, macros, nets)
	if err != nil {
		return nil, err
	}
	if p.RefineIterations > 0 {
		plan, err = floorplan.Refine(p.Process, macros, nets, plan, p.RefineIterations, 1)
		if err != nil {
			return nil, err
		}
	}
	d.Plan = plan
	d.Top = plan.Top
	d.Top.Name = fmt.Sprintf("bisram_%dx%d", p.Words, p.BPW)

	d.computeArea()
	if err := d.computeTiming(); err != nil {
		return nil, err
	}
	return d, nil
}

// um2 converts a cell bounding-box to µm².
func um2(c *geom.Cell) float64 { return float64(c.Bounds().Area()) / 1e6 }

func (d *Design) computeArea() {
	p := d.Params
	a := &d.Area
	arr := d.Macros["array"]
	rowFrac := float64(p.Rows()) / float64(p.Rows()+p.Spares)
	a.ArrayRegular = um2(arr) * rowFrac
	a.ArraySpare = um2(arr) - a.ArrayRegular
	a.RowDecoder = um2(d.Macros["rowdec"])
	a.ColPeriphery = um2(d.Macros["colper"])
	a.BIST = um2(d.Macros["trpla"]) + um2(d.Macros["addgen"]) +
		um2(d.Macros["datagen"]) + um2(d.Macros["streg"])
	if t, ok := d.Macros["tlb"]; ok {
		a.BISR = um2(t)
	}
	a.Total = float64(d.Plan.Area) / 1e6
	base := a.ArrayRegular + a.ArraySpare + a.RowDecoder + a.ColPeriphery
	if base > 0 {
		a.OverheadPct = 100 * (a.BIST + a.BISR) / base
	}
	noRepair := a.Total - a.ArraySpare - a.BIST - a.BISR
	if noRepair > 0 {
		a.GrowthFactor = a.Total / noRepair
	} else {
		a.GrowthFactor = 1
	}
}

// NewInstance returns a behavioural built-in self-repairable RAM
// matching the compiled parameters — the simulation model the tool
// ships with the layout. The behavioural model represents words as
// uint64, so it is available for bpw <= 64 (wider layouts still
// compile; simulate a representative slice instead).
func (d *Design) NewInstance() (*bisr.RAM, error) {
	cfg := sram.Config{
		Words: d.Params.Words, BPW: d.Params.BPW,
		BPC: d.Params.BPC, SpareRows: d.Params.Spares,
	}
	arr, err := sram.New(cfg)
	if err != nil {
		return nil, err
	}
	return bisr.NewRAM(arr), nil
}

// Datasheet renders the human-readable summary the original RAMGEN
// lineage shipped with each compiled macro.
func (d *Design) Datasheet() string {
	p := d.Params
	var b strings.Builder
	fmt.Fprintf(&b, "BISRAMGEN datasheet — %s\n", d.Top.Name)
	fmt.Fprintf(&b, "process: %s (%.2f µm, %d metal layers, VDD %.1f V)\n",
		p.Process.Name, float64(p.Process.Feature)/1000, p.Process.Metals, p.Process.VDD)
	fmt.Fprintf(&b, "organisation: %d words x %d bits (bpc %d): %d rows + %d spare rows x %d columns\n",
		p.Words, p.BPW, p.BPC, p.Rows(), p.Spares, p.BPW*p.BPC)
	fmt.Fprintf(&b, "capacity: %d bits (%.1f kbyte)\n", p.Bits(), float64(p.Bits())/8192)
	fmt.Fprintf(&b, "test algorithm: %s, %d backgrounds, %d controller states in %d flip-flops\n",
		d.Prog.Name, p.BPW+1, d.Prog.NumStates, d.Prog.StateBits)
	fmt.Fprintf(&b, "area: total %.0f µm² (array %.0f, spares %.0f, decode %.0f, periphery %.0f, BIST %.0f, BISR %.0f)\n",
		d.Area.Total, d.Area.ArrayRegular, d.Area.ArraySpare, d.Area.RowDecoder,
		d.Area.ColPeriphery, d.Area.BIST, d.Area.BISR)
	fmt.Fprintf(&b, "BIST+BISR overhead: %.2f %%, growth factor %.4f\n", d.Area.OverheadPct, d.Area.GrowthFactor)
	fmt.Fprintf(&b, "timing: access %.3f ns (decode %.3f + wordline %.3f + bitline %.3f + sense %.3f)\n",
		d.Timing.AccessNs, d.Timing.DecodeNs, d.Timing.WordlineNs, d.Timing.BitlineNs, d.Timing.SenseNs)
	fmt.Fprintf(&b, "power: %.2f pJ/read (%.2f mW @ 100 MHz), TRPLA static %.3f mW (test mode only)\n",
		d.Power.ReadEnergyPJ, d.Power.DynamicMwAt100MHz, d.Power.PLAStaticMw)
	if p.Spares > 0 {
		masked := "no"
		if d.Timing.TLBMaskable {
			masked = "yes"
		}
		fmt.Fprintf(&b, "TLB match+map delay: %.3f ns (%.1fx below access; maskable: %s)\n",
			d.Timing.TLBNs, d.Timing.AccessNs/d.Timing.TLBNs, masked)
	}
	fmt.Fprintf(&b, "floorplan: %.0f µm² outline, rectangularity %.3f, aspect %.2f, %d nets abutted, %d routed\n",
		d.Area.Total, d.Plan.Rectangularity, d.Plan.AspectRatio, d.Plan.AbuttedNets, d.Plan.RoutedNets)
	return b.String()
}
