// Package compiler is BISRAMGEN itself: from user circuit parameters
// and a CMOS process it builds the leaf-cell library, assembles the
// macrocells (the RAM array with spare rows, row and column decoders,
// sense amplifiers and write drivers, DATAGEN, ADDGEN, the TLB, the
// TRPLA and the state register), floorplans them with the
// port-alignment place-and-route, and emits the layout together with
// area/timing reports, the PLA control program, a datasheet, and a
// behavioural simulation model.
package compiler

import (
	"context"
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/bisr"
	"repro/internal/bist"
	"repro/internal/cerr"
	"repro/internal/chaos"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/leafcell"
	"repro/internal/march"
	"repro/internal/obs"
	"repro/internal/sram"
	"repro/internal/tech"
)

// Params are the user inputs of Fig. 1: word count, word width,
// column-multiplex ratio, spare rows, critical-gate sizing, strap
// spacing and the process.
type Params struct {
	Words      int
	BPW        int
	BPC        int
	Spares     int // 4, 8 or 16 per the paper (0 disables BISR)
	BufSize    int // critical gate size multiplier (>= 1)
	StrapCells int // cells between straps; 0 disables strapping
	Process    *tech.Process
	// Test is the march algorithm microprogrammed into the TRPLA;
	// zero value selects IFA-9.
	Test march.Test
	// Program, when non-nil, supplies the TRPLA control code directly
	// — e.g. loaded from AND/OR plane files with bist.ReadPlanes — and
	// takes precedence over Test. This is the paper's runtime
	// control-code loading path: editing the plane files swaps the
	// test algorithm without regenerating the tool.
	Program *bist.Program
	// RefineIterations, when positive, runs the simulated-annealing
	// floorplan refiner for that many moves after the constructive
	// place-and-route. The budget is split over refineStarts
	// independent deterministic annealing starts; the winner is picked
	// by (cost, seed), so the result is a pure function of the budget.
	RefineIterations int
	// Parallelism bounds how many goroutines the compile may use for
	// its independent stages: leaf-cell library and microcode assembly
	// run concurrently, the floorplan's annealing starts fan out, and
	// the analysis-stage SPICE transients (decode inverter, TLB match)
	// run side by side. 0 or 1 means fully serial. Parallelism is an
	// execution knob only — the output bytes are identical for every
	// value, which is why the canonical compile key (internal/canon)
	// deliberately excludes it: a parallel compile must hit the cache
	// entry a serial compile wrote, and vice versa.
	Parallelism int
}

// maxParallelism caps the concurrency knob so an adversarial request
// cannot demand an absurd goroutine fan-out.
const maxParallelism = 256

// refineStarts is the fixed multi-start fan-out of the floorplan
// refiner. It is a constant — never derived from Parallelism — so the
// start/seed/budget structure, and therefore the winning floorplan,
// depends only on Params; Parallelism merely bounds how many starts
// run at once.
const refineStarts = 4

// par returns the effective concurrency bound (>= 1).
func (p Params) par() int {
	if p.Parallelism < 1 {
		return 1
	}
	return p.Parallelism
}

// Parameter envelope caps. They bound the resources a single compile
// may demand: well beyond the paper's largest arrays, but small enough
// that an absurd request (found by the fault campaign: 2^62 words
// passed the old divisibility checks) is rejected in Validate instead
// of wedging the macro generators.
const (
	maxWords = 1 << 24 // 16M words
	maxBPW   = 1024
	maxBPC   = 256
)

// Validate checks the parameter envelope. Every rejection is a typed
// cerr.ErrInvalidParams (process-deck problems keep their own
// classification), so callers and the fault campaign can assert on the
// code rather than on message text.
func (p Params) Validate() error {
	if p.Process == nil {
		return cerr.New(cerr.CodeInvalidParams, "compiler: no process selected")
	}
	if err := p.Process.Validate(); err != nil {
		return cerr.Wrap(cerr.CodeInvalidParams, err, "compiler: process %q rejected", p.Process.Name)
	}
	if p.Words <= 0 || p.BPW <= 0 || p.BPC <= 0 {
		return cerr.New(cerr.CodeInvalidParams,
			"compiler: non-positive geometry words=%d bpw=%d bpc=%d", p.Words, p.BPW, p.BPC)
	}
	if p.Words > maxWords || p.BPW > maxBPW || p.BPC > maxBPC {
		return cerr.New(cerr.CodeInvalidParams,
			"compiler: geometry words=%d bpw=%d bpc=%d exceeds envelope (%d, %d, %d)",
			p.Words, p.BPW, p.BPC, maxWords, maxBPW, maxBPC)
	}
	if p.BPC&(p.BPC-1) != 0 {
		return cerr.New(cerr.CodeInvalidParams, "compiler: bpc %d must be a power of 2", p.BPC)
	}
	if p.Words%p.BPC != 0 {
		return cerr.New(cerr.CodeInvalidParams, "compiler: words %d not divisible by bpc %d", p.Words, p.BPC)
	}
	if p.Words&(p.Words-1) != 0 {
		return cerr.New(cerr.CodeInvalidParams, "compiler: words %d must be a power of 2", p.Words)
	}
	switch p.Spares {
	case 0, 4, 8, 16:
	default:
		return cerr.New(cerr.CodeInvalidParams, "compiler: spare rows must be 0, 4, 8 or 16 (got %d)", p.Spares)
	}
	if p.BufSize < 1 || p.BufSize > 4 {
		return cerr.New(cerr.CodeInvalidParams, "compiler: buffer size %d out of range 1..4", p.BufSize)
	}
	if p.StrapCells < 0 {
		return cerr.New(cerr.CodeInvalidParams, "compiler: negative strap spacing %d", p.StrapCells)
	}
	if p.Rows() < 2 {
		return cerr.New(cerr.CodeInvalidParams, "compiler: fewer than 2 rows (words %d / bpc %d)", p.Words, p.BPC)
	}
	if p.Spares > p.Rows() {
		return cerr.New(cerr.CodeInvalidParams,
			"compiler: %d spare rows exceed the %d regular rows they would repair", p.Spares, p.Rows())
	}
	if p.RefineIterations < 0 {
		return cerr.New(cerr.CodeInvalidParams, "compiler: negative refine budget %d", p.RefineIterations)
	}
	if p.Parallelism < 0 || p.Parallelism > maxParallelism {
		return cerr.New(cerr.CodeInvalidParams,
			"compiler: parallelism %d out of range 0..%d", p.Parallelism, maxParallelism)
	}
	return nil
}

// Rows returns the regular row count words/bpc.
func (p Params) Rows() int { return p.Words / p.BPC }

// RowAddrBits returns the row address width.
func (p Params) RowAddrBits() int { return bits.Len(uint(p.Rows() - 1)) }

// ColAddrBits returns the column-select address width log2(bpc).
func (p Params) ColAddrBits() int { return bits.Len(uint(p.BPC - 1)) }

// Bits returns the regular capacity in bits.
func (p Params) Bits() int { return p.Words * p.BPW }

// AreaReport decomposes the silicon area (µm²).
type AreaReport struct {
	ArrayRegular float64 // regular rows
	ArraySpare   float64 // spare rows
	RowDecoder   float64
	ColPeriphery float64 // precharge, column mux, sense, write, column decoder
	BIST         float64 // TRPLA + ADDGEN + DATAGEN + STREG
	BISR         float64 // TLB + spare drivers + output tristates
	Total        float64 // floorplan bounding box

	// OverheadPct is (BIST+BISR)/(everything else) in percent — the
	// paper's Table I metric (redundant rows excluded from the
	// overhead, as argued in Section IX).
	OverheadPct float64
	// GrowthFactor is Total / (Total - spare - BIST - BISR), the
	// yield model's defect-scaling factor.
	GrowthFactor float64
}

// Design is the compiler output.
type Design struct {
	Params Params
	// Name is the macro name ("bisram_<words>x<bpw>"); unlike Top it is
	// always set, even when the degradation ladder bottomed out without
	// a layout.
	Name   string
	Lib    *leafcell.Library
	Macros map[string]*geom.Cell
	// Plan and Top are nil when the compile degraded to an
	// area-estimate-only datasheet (see Degradations).
	Plan   *floorplan.Result
	Top    *geom.Cell
	Prog   *bist.Program
	Area   AreaReport
	Timing TimingReport
	Power  PowerReport
	// Degradations records each rung of the degradation ladder the
	// compile descended to stay alive: the stacked fallback placement,
	// a refine budget that expired, or the area-estimate-only
	// datasheet. Empty means the full flow succeeded.
	Degradations []string
}

// degrade records a degradation-ladder step.
func (d *Design) degrade(format string, args ...any) {
	d.Degradations = append(d.Degradations, fmt.Sprintf(format, args...))
}

// Compile runs the full flow. Every stage executes behind a
// recover-to-typed-error guard (cerr.Recover), so even a generator
// panic at one of the documented invariant sites surfaces to the
// caller as a cerr.ErrInternal with stage attribution rather than
// crashing the process. Floorplanning follows a degradation ladder —
// abutment placer, then the stacked fallback placer, then an
// area-estimate-only datasheet — with every fallback recorded in
// Design.Degradations and in the report. Compile is CompileCtx with a
// background context.
func Compile(p Params) (*Design, error) {
	return CompileCtx(context.Background(), p)
}

// CompileCtx is Compile under a context deadline — the entry point a
// serving process uses to give every job a hard budget. The context is
// checked at each stage boundary and threaded into the context-bounded
// kernels (the floorplan refiner); expiry surfaces as a typed
// cerr.ErrBudgetExceeded with the stage that was about to run, except
// inside the refiner where the degradation ladder keeps the
// best-so-far placement and records the budget stop instead of
// failing the compile.
//
// When the context carries an obs.Trace, every stage — params,
// leafcells, microcode, macros, floorplan, analysis — records a span,
// and the context-bounded kernels underneath (floorplan.RefineMultiCtx,
// the spice transients in timing analysis) nest their own spans under
// the stage that invoked them. An untraced context pays one context
// lookup per stage.
//
// Concurrency: when p.Parallelism > 1, independent stages of the
// pipeline DAG run concurrently — leafcells ∥ microcode (both are
// inputs of buildMacros but not of each other), the floorplan's
// annealing starts, and the analysis transients. Every concurrent
// branch runs behind its own cerr.Recover guard (panics cannot cross
// goroutines), errors are surfaced in fixed pipeline order (leafcells
// before microcode, access path before TLB) regardless of which
// goroutine finished first, and the output is byte-identical to a
// serial compile — see TestCompileParallelDeterminism. The compile
// span records parallelism and parallel_stages attrs so the serving
// layer can count concurrent compiles.
func CompileCtx(ctx context.Context, p Params) (*Design, error) {
	par := p.par()
	parallelStages := 0
	ctx, endCompile := obs.Start(ctx, "compile")
	defer func() {
		endCompile(obs.Int("parallelism", par), obs.Int("parallel_stages", parallelStages))
	}()

	if p.Test.Name == "" {
		p.Test = march.IFA9()
	}
	_, endParams := obs.Start(ctx, "compile.params")
	verr := p.Validate()
	endParams()
	if verr != nil {
		return nil, cerr.WithStage("params", verr)
	}
	inj := chaos.FromContext(ctx)
	checkpoint := func(stage string) error {
		if err := ctx.Err(); err != nil {
			return budgetErr(stage, err)
		}
		if inj != nil {
			// Scripted stage faults: delay rules inject latency spikes,
			// panic rules exercise the recover guards (the jobs layer's
			// Recover converts them to typed ERR_INTERNAL), error rules
			// fail the stage outright.
			if err := inj.Point(chaos.PointStagePrefix + stage); err != nil {
				return cerr.WithStage(stage, err)
			}
		}
		return nil
	}
	if err := checkpoint("leafcells"); err != nil {
		return nil, err
	}

	// Stage DAG, level 1: the leaf-cell library and the TRPLA
	// microcode have no data dependency on each other (both feed
	// buildMacros), so with Parallelism > 1 they run concurrently.
	// Each branch carries its own Recover guard; the error check below
	// is in fixed pipeline order, so a microcode failure never
	// pre-empts a leafcells failure just because its goroutine lost
	// the race.
	var lib *leafcell.Library
	prog := p.Program
	buildLib := func() (err error) {
		defer cerr.Recover("leafcells", &err)
		_, end := obs.Start(ctx, "compile.leafcells")
		defer end()
		lib, err = leafcell.Shared(p.Process, p.BufSize)
		return cerr.WithStage("leafcells", err)
	}
	buildProg := func() (err error) {
		if prog != nil {
			return nil
		}
		defer cerr.Recover("microcode", &err)
		_, end := obs.Start(ctx, "compile.microcode")
		defer end()
		var aerr error
		prog, aerr = bist.Assemble(p.Test)
		return cerr.WithStage("microcode", aerr)
	}
	var libErr, progErr error
	if par > 1 {
		parallelStages++
		done := make(chan struct{})
		go func() {
			defer close(done)
			progErr = buildProg()
		}()
		libErr = buildLib()
		<-done
	} else {
		libErr = buildLib()
		progErr = buildProg()
	}
	if libErr != nil {
		return nil, libErr
	}
	if progErr != nil {
		return nil, progErr
	}
	d := &Design{
		Params: p, Lib: lib, Prog: prog,
		Macros: map[string]*geom.Cell{},
		Name:   fmt.Sprintf("bisram_%dx%d", p.Words, p.BPW),
	}

	if err := checkpoint("macros"); err != nil {
		return nil, err
	}
	var macros []floorplan.Macro
	var nets []floorplan.Net
	err := func() (err error) {
		defer cerr.Recover("macros", &err)
		_, end := obs.Start(ctx, "compile.macros")
		defer end()
		macros, nets = d.buildMacros()
		return nil
	}()
	if err != nil {
		return nil, err
	}

	if err := checkpoint("floorplan"); err != nil {
		return nil, err
	}
	if par > 1 && p.RefineIterations > 1 {
		parallelStages++ // annealing starts fan out inside RefineMultiCtx
	}
	err = func() (err error) {
		defer cerr.Recover("floorplan", &err)
		fpCtx, end := obs.Start(ctx, "compile.floorplan")
		ferr := d.floorplanLadder(fpCtx, macros, nets)
		end(obs.Int("degradations", len(d.Degradations)))
		return ferr
	}()
	if err != nil {
		return nil, err
	}

	if err := checkpoint("analysis"); err != nil {
		return nil, err
	}
	if par > 1 && p.Spares > 0 {
		parallelStages++ // decode transient ∥ TLB match simulation
	}
	err = func() (err error) {
		defer cerr.Recover("analysis", &err)
		anCtx, end := obs.Start(ctx, "compile.analysis")
		defer end()
		d.computeArea()
		return cerr.WithStage("timing", d.computeTiming(anCtx))
	}()
	if err != nil {
		return nil, err
	}
	return d, nil
}

// budgetErr classifies a context expiry as the pipeline's typed
// budget violation, attributed to the stage that was about to run.
func budgetErr(stage string, cause error) error {
	return cerr.WithStage(stage,
		cerr.Wrap(cerr.CodeBudgetExceeded, cause, "compiler: compile budget exhausted before stage %q", stage))
}

// buildMacros elaborates every macrocell and assembles the floorplan
// macro and net lists. It runs behind the "macros" Recover guard in
// Compile because the leaf-cell generators' residual invariant panics
// (geom.MustPort, leafcell sanity) live beneath it.
func (d *Design) buildMacros() ([]floorplan.Macro, []floorplan.Net) {
	p := d.Params
	array := d.buildArray()
	rowdec := d.buildRowDecoder()
	colper := d.buildColPeriphery()
	datagen := d.buildDataGen()
	addgen := d.buildAddGen()
	streg := d.buildStReg()
	trpla := d.buildTRPLA()
	var tlb *geom.Cell
	if p.Spares > 0 {
		tlb = d.buildTLB()
	}

	macros := []floorplan.Macro{
		{Name: "array", Cell: array},
		{Name: "rowdec", Cell: rowdec},
		{Name: "colper", Cell: colper},
		{Name: "datagen", Cell: datagen},
		{Name: "addgen", Cell: addgen},
		{Name: "streg", Cell: streg},
		{Name: "trpla", Cell: trpla},
	}
	nets := []floorplan.Net{
		{Name: "wl_bus", Pins: []floorplan.Pin{{Macro: "rowdec", Port: "wl_edge"}, {Macro: "array", Port: "wl_edge"}}},
		{Name: "bl_bus", Pins: []floorplan.Pin{{Macro: "array", Port: "bl_edge"}, {Macro: "colper", Port: "bl_edge"}}},
		{Name: "dbus", Pins: []floorplan.Pin{{Macro: "colper", Port: "dout"}, {Macro: "datagen", Port: "dcmp"}}},
		{Name: "addr", Pins: []floorplan.Pin{{Macro: "addgen", Port: "abus"}, {Macro: "rowdec", Port: "abus"}}},
		{Name: "ctl", Pins: []floorplan.Pin{{Macro: "trpla", Port: "ctl"}, {Macro: "streg", Port: "ctl"}}},
	}
	if tlb != nil {
		macros = append(macros, floorplan.Macro{Name: "tlb", Cell: tlb})
		nets = append(nets, floorplan.Net{Name: "spare_wl", Pins: []floorplan.Pin{
			{Macro: "tlb", Port: "spare_wl"}, {Macro: "array", Port: "wl_edge"}}})
		nets = append(nets, floorplan.Net{Name: "addr_tlb", Pins: []floorplan.Pin{
			{Macro: "addgen", Port: "abus"}, {Macro: "tlb", Port: "abus"}}})
	}
	return macros, nets
}

// floorplanLadder descends the degradation ladder:
//
//  1. the abutment placer with port alignment and stretching;
//  2. on failure, the stacked fallback placer (legal but loose);
//  3. on failure again, no layout at all — the datasheet is produced
//     from macro bounding-box areas only (Plan and Top stay nil).
//
// A refine budget that expires keeps the best-so-far placement. Each
// fallback taken is recorded in d.Degradations; only rung 3 leaves the
// design without geometry, and even that returns nil error so the
// caller still gets a report. The context bounds the annealing
// refiner (floorplan.RefineMultiCtx); an expiry there is a
// degradation, not a failure.
//
// The refine budget fans out over refineStarts deterministic
// annealing starts (seeds 1..refineStarts, budget split evenly); the
// winner is chosen by (cost, seed), so the placement is a pure
// function of Params — p.Parallelism only bounds how many starts run
// concurrently.
func (d *Design) floorplanLadder(ctx context.Context, macros []floorplan.Macro, nets []floorplan.Net) error {
	p := d.Params
	plan, err := floorplan.Place(p.Process, macros, nets)
	if err != nil {
		var serr error
		plan, serr = floorplan.Stack(p.Process, macros, nets)
		if serr != nil {
			d.degrade("floorplan unavailable (place: %v; stack: %v): datasheet is area-estimate-only", err, serr)
			return nil
		}
		d.degrade("abutment floorplan failed (%v): using stacked fallback placement", err)
	}
	if p.RefineIterations > 0 {
		refined, rerr := floorplan.RefineMultiCtx(ctx, p.Process, macros, nets, plan,
			p.RefineIterations, 1, refineStarts, p.par())
		switch {
		case rerr != nil && refined != nil:
			d.degrade("floorplan refinement stopped early (%v): keeping best-so-far placement", rerr)
			plan = refined
		case rerr != nil:
			d.degrade("floorplan refinement failed (%v): keeping constructive placement", rerr)
		default:
			plan = refined
		}
	}
	d.Plan = plan
	d.Top = plan.Top
	d.Top.Name = d.Name
	return nil
}

// um2 converts a cell bounding-box to µm².
func um2(c *geom.Cell) float64 { return float64(c.Bounds().Area()) / 1e6 }

func (d *Design) computeArea() {
	p := d.Params
	a := &d.Area
	arr := d.Macros["array"]
	rowFrac := float64(p.Rows()) / float64(p.Rows()+p.Spares)
	a.ArrayRegular = um2(arr) * rowFrac
	a.ArraySpare = um2(arr) - a.ArrayRegular
	a.RowDecoder = um2(d.Macros["rowdec"])
	a.ColPeriphery = um2(d.Macros["colper"])
	a.BIST = um2(d.Macros["trpla"]) + um2(d.Macros["addgen"]) +
		um2(d.Macros["datagen"]) + um2(d.Macros["streg"])
	if t, ok := d.Macros["tlb"]; ok {
		a.BISR = um2(t)
	}
	if d.Plan != nil {
		a.Total = float64(d.Plan.Area) / 1e6
	} else {
		// Area-estimate-only mode (degradation-ladder rung 3): the sum
		// of macro bounding boxes is the floorplan's provable lower
		// bound, so report that instead of an outline.
		for _, c := range d.Macros {
			a.Total += um2(c)
		}
	}
	base := a.ArrayRegular + a.ArraySpare + a.RowDecoder + a.ColPeriphery
	if base > 0 {
		a.OverheadPct = 100 * (a.BIST + a.BISR) / base
	}
	noRepair := a.Total - a.ArraySpare - a.BIST - a.BISR
	if noRepair > 0 {
		a.GrowthFactor = a.Total / noRepair
	} else {
		a.GrowthFactor = 1
	}
}

// NewInstance returns a behavioural built-in self-repairable RAM
// matching the compiled parameters — the simulation model the tool
// ships with the layout. The behavioural model represents words as
// uint64, so it is available for bpw <= 64 (wider layouts still
// compile; simulate a representative slice instead).
func (d *Design) NewInstance() (*bisr.RAM, error) {
	cfg := sram.Config{
		Words: d.Params.Words, BPW: d.Params.BPW,
		BPC: d.Params.BPC, SpareRows: d.Params.Spares,
	}
	arr, err := sram.New(cfg)
	if err != nil {
		return nil, err
	}
	return bisr.NewRAM(arr), nil
}

// Datasheet renders the human-readable summary the original RAMGEN
// lineage shipped with each compiled macro.
func (d *Design) Datasheet() string {
	p := d.Params
	var b strings.Builder
	fmt.Fprintf(&b, "BISRAMGEN datasheet — %s\n", d.Name)
	fmt.Fprintf(&b, "process: %s (%.2f µm, %d metal layers, VDD %.1f V)\n",
		p.Process.Name, float64(p.Process.Feature)/1000, p.Process.Metals, p.Process.VDD)
	fmt.Fprintf(&b, "organisation: %d words x %d bits (bpc %d): %d rows + %d spare rows x %d columns\n",
		p.Words, p.BPW, p.BPC, p.Rows(), p.Spares, p.BPW*p.BPC)
	fmt.Fprintf(&b, "capacity: %d bits (%.1f kbyte)\n", p.Bits(), float64(p.Bits())/8192)
	fmt.Fprintf(&b, "test algorithm: %s, %d backgrounds, %d controller states in %d flip-flops\n",
		d.Prog.Name, p.BPW+1, d.Prog.NumStates, d.Prog.StateBits)
	fmt.Fprintf(&b, "area: total %.0f µm² (array %.0f, spares %.0f, decode %.0f, periphery %.0f, BIST %.0f, BISR %.0f)\n",
		d.Area.Total, d.Area.ArrayRegular, d.Area.ArraySpare, d.Area.RowDecoder,
		d.Area.ColPeriphery, d.Area.BIST, d.Area.BISR)
	fmt.Fprintf(&b, "BIST+BISR overhead: %.2f %%, growth factor %.4f\n", d.Area.OverheadPct, d.Area.GrowthFactor)
	fmt.Fprintf(&b, "timing: access %.3f ns (decode %.3f + wordline %.3f + bitline %.3f + sense %.3f)\n",
		d.Timing.AccessNs, d.Timing.DecodeNs, d.Timing.WordlineNs, d.Timing.BitlineNs, d.Timing.SenseNs)
	fmt.Fprintf(&b, "power: %.2f pJ/read (%.2f mW @ 100 MHz), TRPLA static %.3f mW (test mode only)\n",
		d.Power.ReadEnergyPJ, d.Power.DynamicMwAt100MHz, d.Power.PLAStaticMw)
	if p.Spares > 0 {
		masked := "no"
		if d.Timing.TLBMaskable {
			masked = "yes"
		}
		fmt.Fprintf(&b, "TLB match+map delay: %.3f ns (%.1fx below access; maskable: %s)\n",
			d.Timing.TLBNs, d.Timing.AccessNs/d.Timing.TLBNs, masked)
	}
	if d.Plan != nil {
		fmt.Fprintf(&b, "floorplan: %.0f µm² outline, rectangularity %.3f, aspect %.2f, %d nets abutted, %d routed\n",
			d.Area.Total, d.Plan.Rectangularity, d.Plan.AspectRatio, d.Plan.AbuttedNets, d.Plan.RoutedNets)
	} else {
		fmt.Fprintf(&b, "floorplan: unavailable — area is the sum of macro bounding boxes (lower bound)\n")
	}
	for _, g := range d.Degradations {
		fmt.Fprintf(&b, "degraded: %s\n", g)
	}
	return b.String()
}
