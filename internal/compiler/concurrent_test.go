package compiler

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cerr"
	"repro/internal/march"
	"repro/internal/tech"
)

// TestCompileConcurrent drives the full pipeline from many goroutines
// over a table of distinct configurations. The compile service runs
// Compile on a worker pool, so the pipeline must be free of shared
// mutable state; this test exists to fail under -race if any leaks in.
func TestCompileConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent compile table is slow")
	}
	slow, err := tech.CDA07.Corner("slow")
	if err != nil {
		t.Fatal(err)
	}
	cases := []Params{
		{Words: 256, BPW: 8, BPC: 4, Spares: 4, BufSize: 2, StrapCells: 32, Process: tech.CDA07},
		{Words: 512, BPW: 8, BPC: 4, Spares: 4, BufSize: 2, Process: tech.CDA07, Test: march.MarchCMinus()},
		{Words: 1024, BPW: 8, BPC: 8, Spares: 8, BufSize: 3, StrapCells: 16, Process: tech.CDA07},
		{Words: 1024, BPW: 16, BPC: 4, Spares: 0, BufSize: 1, Process: slow},
		{Words: 2048, BPW: 8, BPC: 8, Spares: 4, BufSize: 2, Process: tech.CDA07, Test: march.MATSPlus()},
		{Words: 256, BPW: 8, BPC: 4, Spares: 4, BufSize: 2, Process: tech.CDA07, RefineIterations: 50},
	}
	// Each config compiled twice concurrently: same-input races are
	// exactly what the daemon's singleflight window exposes.
	var wg sync.WaitGroup
	errs := make(chan error, 2*len(cases))
	for rep := 0; rep < 2; rep++ {
		for i, p := range cases {
			wg.Add(1)
			go func(i int, p Params) {
				defer wg.Done()
				d, err := Compile(p)
				if err != nil {
					errs <- fmt.Errorf("case %d: %v", i, err)
					return
				}
				if d.Name == "" || d.Area.Total <= 0 {
					errs <- fmt.Errorf("case %d: implausible design %q area %g", i, d.Name, d.Area.Total)
				}
			}(i, p)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestJSONByteDeterminism compiles the same parameters twice and
// requires byte-identical reports: the serving layer content-addresses
// artifacts, so two compiles of one key must not differ by map order
// or float formatting.
func TestJSONByteDeterminism(t *testing.T) {
	p := smallParams()
	var out [2]string
	for i := range out {
		d, err := Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		js, err := d.JSON()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = js
	}
	if out[0] != out[1] {
		t.Fatalf("report JSON not byte-deterministic:\n--- first ---\n%s\n--- second ---\n%s", out[0], out[1])
	}
	if out[0][len(out[0])-1] != '\n' {
		t.Fatal("report JSON missing trailing newline")
	}
}

// TestCompileCtxCancelled verifies the stage-boundary checkpoints: an
// already-expired context fails fast with the typed budget code and a
// stage annotation, never a partial design.
func TestCompileCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d, err := CompileCtx(ctx, smallParams())
	if d != nil {
		t.Fatal("cancelled compile returned a design")
	}
	if cerr.CodeOf(err) != cerr.CodeBudgetExceeded {
		t.Fatalf("want ERR_BUDGET_EXCEEDED, got %v (%v)", cerr.CodeOf(err), err)
	}
}

// TestCompileCtxDeadline runs a compile under a deadline long enough
// to finish: the context plumbing must not perturb the result.
func TestCompileCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	d, err := CompileCtx(ctx, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Compile(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != want.Name || d.Area.Total != want.Area.Total {
		t.Fatalf("deadline compile diverged: %q/%g vs %q/%g", d.Name, d.Area.Total, want.Name, want.Area.Total)
	}
}
