package compiler

import (
	"strings"
	"testing"

	"repro/internal/bisr"
	"repro/internal/march"
	"repro/internal/sram"
	"repro/internal/tech"
)

func smallParams() Params {
	return Params{
		Words: 1024, BPW: 8, BPC: 4, Spares: 4,
		BufSize: 2, StrapCells: 32, Process: tech.CDA07,
	}
}

func TestValidate(t *testing.T) {
	if err := smallParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Params){
		func(p *Params) { p.Process = nil },
		func(p *Params) { p.Words = 1000 }, // not power of 2
		func(p *Params) { p.Spares = 3 },   // not 0/4/8/16
		func(p *Params) { p.BufSize = 0 },
		func(p *Params) { p.BPC = 3 },
		func(p *Params) { p.StrapCells = -1 },
	}
	for i, mut := range bad {
		p := smallParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestParamArithmetic(t *testing.T) {
	p := smallParams()
	if p.Rows() != 256 || p.RowAddrBits() != 8 || p.ColAddrBits() != 2 || p.Bits() != 8192 {
		t.Fatalf("arithmetic: rows %d bits %d rab %d cab %d",
			p.Rows(), p.Bits(), p.RowAddrBits(), p.ColAddrBits())
	}
}

func TestCompileSmall(t *testing.T) {
	d, err := Compile(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"array", "rowdec", "colper", "datagen", "addgen", "streg", "trpla", "tlb"} {
		c, ok := d.Macros[m]
		if !ok {
			t.Fatalf("missing macro %s", m)
		}
		if c.Bounds().Empty() {
			t.Fatalf("macro %s empty", m)
		}
	}
	a := d.Area
	if a.Total <= 0 || a.ArrayRegular <= 0 || a.BIST <= 0 || a.BISR <= 0 {
		t.Fatalf("area report %+v", a)
	}
	// The paper's headline: BIST+BISR overhead below 7% for realistic
	// sizes (this one is 8 Kb x ... = 1 kbyte, small; allow some slack
	// but it must be modest).
	if a.OverheadPct <= 0 || a.OverheadPct > 25 {
		t.Fatalf("overhead %.2f%% implausible", a.OverheadPct)
	}
	if a.GrowthFactor < 1 || a.GrowthFactor > 1.5 {
		t.Fatalf("growth factor %.3f implausible", a.GrowthFactor)
	}
	// Timing sanity: sub-micron embedded RAM in the few-ns range.
	tm := d.Timing
	if tm.AccessNs <= 0 || tm.AccessNs > 50 {
		t.Fatalf("access %.2f ns implausible", tm.AccessNs)
	}
	if tm.TLBNs <= 0 {
		t.Fatal("TLB delay missing")
	}
	// Paper Section VI: TLB delay at least an order of magnitude below
	// access is the design target with 4 spares; require a healthy
	// margin here.
	if tm.TLBNs > tm.AccessNs/2 {
		t.Fatalf("TLB %.3f ns vs access %.3f ns: not maskable", tm.TLBNs, tm.AccessNs)
	}
	if !tm.TLBMaskable {
		t.Fatal("4-spare TLB should be maskable")
	}
}

func TestOverheadShrinksWithArraySize(t *testing.T) {
	small := smallParams() // 1 kbyte
	big := smallParams()
	big.Words = 16384 // 16 kbyte
	ds, err := Compile(small)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Compile(big)
	if err != nil {
		t.Fatal(err)
	}
	if !(db.Area.OverheadPct < ds.Area.OverheadPct) {
		t.Fatalf("overhead should fall with size: %.2f%% -> %.2f%%",
			ds.Area.OverheadPct, db.Area.OverheadPct)
	}
	// Realistic embedded sizes (paper: 64 Kb and up) stay below 7%.
	if db.Area.OverheadPct > 7 {
		t.Fatalf("16-kbyte overhead %.2f%% exceeds the paper's 7%% bound", db.Area.OverheadPct)
	}
}

func TestNoBISRVariant(t *testing.T) {
	p := smallParams()
	p.Spares = 0
	d, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Macros["tlb"]; ok {
		t.Fatal("0-spare design must not build a TLB")
	}
	if d.Area.BISR != 0 {
		t.Fatal("BISR area should be zero without spares")
	}
	if d.Timing.TLBNs != 0 {
		t.Fatal("no TLB delay without spares")
	}
}

func TestSimulationModelRepairs(t *testing.T) {
	d, err := Compile(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	ram, err := d.NewInstance()
	if err != nil {
		t.Fatal(err)
	}
	if ram.Words() != 1024 {
		t.Fatalf("instance words %d", ram.Words())
	}
	if err := ram.Arr.Inject(sram.CellAddr{Row: 7, Col: 3}, sram.Fault{Kind: sram.SA0}); err != nil {
		t.Fatal(err)
	}
	out, err := bisr.NewController(ram).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Repaired {
		t.Fatal("compiled simulation model failed to self-repair")
	}
	if !march.Run(ram, march.IFA9(), march.JohnsonBackgrounds(8), 8).Pass() {
		t.Fatal("repaired instance fails verification march")
	}
}

func TestDatasheet(t *testing.T) {
	d, err := Compile(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	ds := d.Datasheet()
	for _, want := range []string{"BISRAMGEN datasheet", "cda07u3m1p", "IFA-9",
		"BIST+BISR overhead", "TLB match+map delay", "rectangularity"} {
		if !strings.Contains(ds, want) {
			t.Errorf("datasheet missing %q:\n%s", want, ds)
		}
	}
}

func TestRefinedFloorplan(t *testing.T) {
	base, err := Compile(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	p := smallParams()
	p.RefineIterations = 2000
	ref, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	// The refiner keeps the best-seen state: the blended outline cost
	// must not regress materially.
	costOf := func(d *Design) float64 {
		return d.Area.Total * (1 + 0.5*(d.Plan.AspectRatio-1))
	}
	if costOf(ref) > costOf(base)*1.05 {
		t.Fatalf("refined floorplan regressed: %.0f -> %.0f", costOf(base), costOf(ref))
	}
}

func TestJSONReport(t *testing.T) {
	d, err := Compile(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	js, err := d.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"cda07u3m1p"`, `"algorithm": "IFA-9"`,
		`"spare_rows": 4`, `"rectangularity"`, `"OverheadPct"`} {
		if !strings.Contains(js, want) {
			t.Errorf("JSON missing %s:\n%s", want, js)
		}
	}
	r := d.Report()
	if r.Organisation.Rows != 256 || r.Test.States != d.Prog.NumStates {
		t.Fatalf("report fields wrong: %+v", r)
	}
}

func TestStrapsGrowArray(t *testing.T) {
	p := smallParams()
	p.StrapCells = 0
	noStrap, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	p.StrapCells = 8
	strapped, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	wn := noStrap.Macros["array"].Bounds().W()
	ws := strapped.Macros["array"].Bounds().W()
	if !(ws > wn) {
		t.Fatalf("straps should widen the array: %d vs %d", wn, ws)
	}
}

func TestControllerAreaTiny(t *testing.T) {
	// Paper Section VI: the self-test/repair controller is < 0.1% of
	// a 16-kbyte RAM's array area.
	p := smallParams()
	p.Words = 16384 // 16 kbyte with bpw=8
	d, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := float64(d.Macros["trpla"].Bounds().Area()) / 1e6
	arr := d.Area.ArrayRegular
	pct := 100 * ctrl / arr
	if pct > 1.0 {
		t.Fatalf("controller is %.3f%% of the array; paper says tiny (<0.1%%)", pct)
	}
}

func TestPowerReport(t *testing.T) {
	small, err := Compile(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	pw := small.Power
	if pw.ReadEnergyPJ <= 0 || pw.DynamicMwAt100MHz <= 0 || pw.PLAStaticMw <= 0 {
		t.Fatalf("power report %+v", pw)
	}
	// Era-plausible magnitudes for a 1-kbyte 0.7µm macro: tens of pJ
	// per access, sub-watt at 100 MHz.
	if pw.ReadEnergyPJ > 10000 || pw.DynamicMwAt100MHz > 2000 {
		t.Fatalf("implausible power %+v", pw)
	}
	// A bigger array burns more energy per access (longer lines, more
	// columns).
	big := smallParams()
	big.Words = 16384
	db, err := Compile(big)
	if err != nil {
		t.Fatal(err)
	}
	if !(db.Power.ReadEnergyPJ > pw.ReadEnergyPJ) {
		t.Fatalf("energy should grow with array size: %.2f vs %.2f",
			db.Power.ReadEnergyPJ, pw.ReadEnergyPJ)
	}
	// PLA static power grows with the microprogram size.
	p13 := smallParams()
	p13.Test = march.IFA13()
	d13, err := Compile(p13)
	if err != nil {
		t.Fatal(err)
	}
	if !(d13.Power.PLAStaticMw > small.Power.PLAStaticMw) {
		t.Fatal("IFA-13's larger PLA should draw more static power")
	}
	if !strings.Contains(small.Datasheet(), "pJ/read") {
		t.Fatal("datasheet missing power line")
	}
}

func TestProcessPortability(t *testing.T) {
	// Design-rule independence: same parameters compile on all three
	// decks, and area scales with lambda².
	var areas []float64
	for _, proc := range []*tech.Process{tech.CDA05, tech.MOS06, tech.CDA07} {
		p := smallParams()
		p.Process = proc
		d, err := Compile(p)
		if err != nil {
			t.Fatalf("%s: %v", proc.Name, err)
		}
		areas = append(areas, d.Area.Total)
	}
	if !(areas[0] < areas[1] && areas[1] < areas[2]) {
		t.Fatalf("areas should grow with feature size: %v", areas)
	}
}
