package compiler

import (
	"context"
	"fmt"
	"math"

	"repro/internal/bist"
	"repro/internal/cerr"
	"repro/internal/obs"
	"repro/internal/spice"
	"repro/internal/tech"
)

// PowerReport carries the compiler's power guarantees (the paper's
// flow extrapolates timing, area AND power from extracted leaf
// cells).
type PowerReport struct {
	// ReadEnergyPJ is the switched energy per read access (pJ):
	// decoder + wordline full swing plus the partial bitline swing of
	// the current-mode scheme across the word's columns.
	ReadEnergyPJ float64
	// DynamicMwAt100MHz is the corresponding dynamic power at a
	// 100 MHz access rate.
	DynamicMwAt100MHz float64
	// PLAStaticMw is the pseudo-NMOS TRPLA's static draw while the
	// self-test runs: one weak ratioed pull-up per product-term row
	// and per OR-plane column fights the NOR pull-downs whenever a
	// line is low. Normal-mode accesses never pay it (the PLA idles).
	PLAStaticMw float64
}

// TimingReport carries the compiler's extracted timing guarantees
// (nanoseconds). The read access path is decode -> wordline ->
// bitline -> sense; the TLB path is the parallel CAM match plus the
// spare-address issue, which Section VI argues is maskable inside the
// precharge/address-register phase.
type TimingReport struct {
	DecodeNs   float64
	WordlineNs float64
	BitlineNs  float64
	SenseNs    float64
	AccessNs   float64

	TLBNs       float64
	TLBMaskable bool
}

// computeTiming extracts the critical paths with the built-in SPICE
// utility plus Elmore wire models (wordline and bitline are strapped
// in metal2 per the array template). The context threads the caller's
// trace into the SPICE transients, so a traced compile attributes the
// analysis-stage latency to the individual simulations.
//
// The two transients — the decode inverter of the access path and the
// TLB match-line discharge — are independent, so with Parallelism > 1
// they run on separate goroutines, each under its own "timing.*" span
// (obs.Trace is concurrency-safe, so the spans still nest under the
// caller's analysis stage). The formulas, evaluation order within
// each task, and the fixed error precedence (access path before TLB)
// are identical in both modes, so the report bytes cannot depend on
// the schedule. TLBMaskable compares the TLB delay against the access
// time, so it is derived after both tasks join.
func (d *Design) computeTiming(ctx context.Context) error {
	p := d.Params
	runTLB := p.Spares > 0

	accessPath := func() error {
		actx, end := obs.Start(ctx, "timing.access")
		defer end()
		return d.accessTiming(actx)
	}
	var tlbNs float64
	tlbPath := func() (err error) {
		tctx, end := obs.Start(ctx, "timing.tlb")
		defer end()
		ns, terr := d.tlbMatchDelay(tctx)
		if terr != nil {
			return fmt.Errorf("tlb timing: %w", terr)
		}
		tlbNs = ns
		return nil
	}

	var accessErr, tlbErr error
	if runTLB && p.par() > 1 {
		done := make(chan struct{})
		go func() {
			defer close(done)
			// The analysis stage's Recover guard lives on the caller's
			// goroutine; panics cannot cross goroutines, so this branch
			// carries its own.
			defer cerr.Recover("timing", &tlbErr)
			tlbErr = tlbPath()
		}()
		accessErr = accessPath()
		<-done
	} else {
		accessErr = accessPath()
		if runTLB {
			tlbErr = tlbPath()
		}
	}
	// Fixed pipeline-order precedence: the access path reports first
	// even when the TLB goroutine failed earlier in wall-clock time.
	if accessErr != nil {
		return accessErr
	}
	if tlbErr != nil {
		return tlbErr
	}
	if runTLB {
		d.Timing.TLBNs = tlbNs
		// Maskable when it fits inside the precharge/address phase
		// (roughly half the access), the criterion behind the paper's
		// "1-4 spares keep the TLB fast" guidance.
		d.Timing.TLBMaskable = tlbNs < d.Timing.AccessNs/2
	}
	return nil
}

// accessTiming evaluates the read access path (decode -> wordline ->
// bitline -> sense) and the power report. It touches only the access
// and power fields, never the TLB fields, so it may run concurrently
// with tlbMatchDelay.
func (d *Design) accessTiming(ctx context.Context) error {
	p := d.Params
	proc := p.Process
	lm := float64(proc.Feature) * 1e-9

	// Representative gate capacitance per µm of width.
	nmos := proc.MOS(tech.NMOS)
	cg := func(wLambda int) float64 {
		return nmos.CgsPerW * float64(proc.L(wLambda)) * 1e-9
	}

	// --- Decode: a 2-stage buffer driving the row-decoder NAND bank,
	// measured with a transient on the sized inverter.
	predecode := 1 << uint(p.RowAddrBits()/2)
	decLoad := float64(p.Rows()) * cg(4) / float64(predecode)
	wn := float64(proc.L(3*p.BufSize)) * 1e-9
	wp := wn * proc.BetaRatio()
	rise, fall, err := spice.InverterDelaysCtx(ctx, proc, wn, wp, lm, decLoad+20e-15)
	if err != nil {
		return fmt.Errorf("decode timing: %w", err)
	}
	stageNs := math.Max(rise, fall) * 1e9
	// NAND + two buffer stages.
	d.Timing.DecodeNs = 3 * stageNs

	// --- Wordline: driver resistance into the strapped wire RC plus
	// one pass-gate load per column.
	arrW := float64(d.Macros["array"].Bounds().W()) * 1e-9 // metres
	m2 := proc.Wire[tech.Metal2]
	wlWidth := float64(proc.MinWidth(tech.Metal2)) * 1e-9
	rw, cwire := spice.WireRC(arrW, wlWidth, m2.RSheet, m2.CArea, m2.CEdge)
	cols := float64(p.BPW * p.BPC)
	cload := cwire + cols*cg(3)
	rdrv := driverResistance(proc, proc.L(3*p.BufSize))
	d.Timing.WordlineNs = 0.69 * (rdrv*cload + rw*cwire/2 + rw*cols*cg(3)/2) * 1e9

	// --- Bitline: current-mode sensing; the cell's read current
	// discharges the bitline until the sense differential is reached.
	arrH := float64(d.Macros["array"].Bounds().H()) * 1e-9
	_, cbl := spice.WireRC(arrH, wlWidth, m2.RSheet, m2.CArea, m2.CEdge)
	rowsTotal := float64(p.Rows() + p.Spares)
	cbl += rowsTotal * nmos.CjPerW * float64(proc.L(3)) * 1e-9 // drain junctions
	icell := cellReadCurrent(proc)
	dvSense := 0.08 * proc.VDD // current-mode: small differential suffices
	d.Timing.BitlineNs = cbl * dvSense / icell * 1e9

	// --- Sense amplifier: regeneration of the extracted cross-coupled
	// pair, approximated as 3 gm/C time constants of the sensing pair.
	wcc := float64(proc.L(6)) * 1e-9
	gm := nmos.KP * wcc / lm * (proc.VDD/2 - nmos.VT0)
	csense := 2 * nmos.CgsPerW * wcc
	if gm > 0 {
		d.Timing.SenseNs = 3 * csense / gm * 1e9
	}
	d.Timing.AccessNs = d.Timing.DecodeNs + d.Timing.WordlineNs +
		d.Timing.BitlineNs + d.Timing.SenseNs

	// --- Power: per-access switched energy from the extracted wire
	// and device capacitances, plus the TRPLA's pseudo-NMOS static
	// draw.
	{
		eWL := (cwire + cols*cg(3)) * proc.VDD * proc.VDD
		arrH := float64(d.Macros["array"].Bounds().H()) * 1e-9
		_, cblw := spice.WireRC(arrH, wlWidth, m2.RSheet, m2.CArea, m2.CEdge)
		cblTot := cblw + float64(p.Rows()+p.Spares)*nmos.CjPerW*float64(proc.L(3))*1e-9
		// Current-mode sensing swings the bitline only ~8% of VDD,
		// but every column on the selected row discharges.
		eBL := cols * cblTot * (0.08 * proc.VDD) * proc.VDD
		eDec := float64(p.Rows()) * cg(4) * proc.VDD * proc.VDD / 4
		d.Power.ReadEnergyPJ = (eWL + eBL + eDec) * 1e12
		d.Power.DynamicMwAt100MHz = (eWL + eBL + eDec) * 100e6 * 1e3
		// PLA static: roughly half the term/output lines sit low,
		// each burning the ratioed pull-up current. The pull-ups are
		// weak long-channel devices (4x drawn length), and the PLA is
		// active only while the self-test runs — normal-mode accesses
		// never pay this power.
		wpu := float64(proc.L(4)) * 1e-9
		lpu := 4 * lm
		pmos := proc.MOS(tech.PMOS)
		ipu := 0.5 * pmos.KP * wpu / lpu * (proc.VDD + pmos.VT0) * (proc.VDD + pmos.VT0)
		lines := float64(len(d.Prog.Terms)) + float64(bist.NumSigs+d.Prog.StateBits)
		d.Power.PLAStaticMw = 0.5 * lines * ipu * proc.VDD * 1e3
	}

	return nil
}

// tlbMatchDelay builds the match-line circuit from the CAM leaf cell
// and simulates the worst-case discharge: the line is precharged high
// and a single bit mismatch must pull it low through the series
// compare stack, after which the match inverter switches.
func (d *Design) tlbMatchDelay(ctx context.Context) (float64, error) {
	p := d.Params
	proc := p.Process
	lm := float64(proc.Feature) * 1e-9
	bits := p.RowAddrBits()

	ckt := spice.New()
	ckt.V("vdd", "vdd", spice.DC(proc.VDD))
	// Match line capacitance: per-bit wire segment plus the compare
	// stack drain junction, times the address width.
	camCaps := d.Lib.CAM.WireCaps()
	cml := camCaps["ml"] * float64(bits)
	nmos := proc.MOS(tech.NMOS)
	cml += float64(bits) * nmos.CjPerW * float64(proc.L(4)) * 1e-9
	ckt.C("ml", "0", cml)
	// Precharge device (weak PMOS keeper, off during evaluate).
	// Initial condition via a pulse source: ml starts at VDD through a
	// large resistor, then the stack discharges.
	ckt.R("vdd", "ml", 1e6)
	// The mismatch stack: two series NMOS sized as in the CAM cell.
	wx := float64(proc.L(4)) * 1e-9
	ckt.M("mx1", "ml", "q", "x1", tech.NMOS, wx, lm, proc)
	ckt.M("mx2", "x1", "sl", "0", tech.NMOS, wx, lm, proc)
	ckt.V("vq", "q", spice.DC(proc.VDD))
	ckt.V("vsl", "sl", spice.Step(0, proc.VDD, 1e-9, 50e-12))
	// Match buffer inverter (from the TLB row) driving the shared
	// spare-address issue bus. Every TLB entry hangs a tristate
	// driver on that bus, so its capacitance — and hence the issue
	// delay — grows with the spare count. This is why the paper
	// guarantees maskability only for 1-4 spares.
	wn := float64(proc.L(3*p.BufSize)) * 1e-9
	ckt.M("mbn", "mlb", "ml", "0", tech.NMOS, wn, lm, proc)
	ckt.M("mbp", "mlb", "ml", "vdd", tech.PMOS, wn*proc.BetaRatio(), lm, proc)
	busLoad := 10e-15 + float64(p.Spares)*
		(2*nmos.CjPerW*float64(proc.L(3*p.BufSize))*1e-9+5e-15)
	ckt.C("mlb", "0", busLoad)

	res, err := ckt.TransientCtx(ctx, 8e-9, 5e-12)
	if err != nil {
		return 0, err
	}
	t0 := 1e-9
	tEdge, err := res.CrossTime("mlb", proc.VDD/2, true, t0)
	if err != nil {
		return 0, err
	}
	return (tEdge - t0) * 1e9, nil
}

// driverResistance estimates the on-resistance of an NMOS of drawn
// width w dbu at VDD drive.
func driverResistance(p *tech.Process, wDbu int) float64 {
	n := p.MOS(tech.NMOS)
	w := float64(wDbu) * 1e-9
	l := float64(p.Feature) * 1e-9
	idsat := 0.5 * n.KP * w / l * (p.VDD - n.VT0) * (p.VDD - n.VT0)
	if idsat <= 0 {
		return math.Inf(1)
	}
	return p.VDD / idsat
}

// cellReadCurrent estimates the 6T cell read current through the
// series pass gate and pull-down.
func cellReadCurrent(p *tech.Process) float64 {
	n := p.MOS(tech.NMOS)
	w := float64(p.L(3)) * 1e-9
	l := float64(p.Feature) * 1e-9
	// Degraded by the series stack and body effect: ~0.4x of a single
	// saturated device.
	return 0.4 * 0.5 * n.KP * w / l * (p.VDD - n.VT0) * (p.VDD - n.VT0)
}
