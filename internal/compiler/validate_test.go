package compiler

import (
	"errors"
	"testing"

	"repro/internal/cerr"
	"repro/internal/tech"
)

// TestValidateCodes pins the taxonomy code for every rejection class of
// Params.Validate. The fault campaign asserts rejections are *typed*;
// this table asserts they carry the *right* type, so a refactor cannot
// silently reclassify, say, a process-deck problem as a geometry one.
func TestValidateCodes(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Params)
		want error
	}{
		{"zero words", func(p *Params) { p.Words = 0 }, cerr.ErrInvalidParams},
		{"negative words", func(p *Params) { p.Words = -1024 }, cerr.ErrInvalidParams},
		{"zero bpw", func(p *Params) { p.BPW = 0 }, cerr.ErrInvalidParams},
		{"negative bpc", func(p *Params) { p.BPC = -4 }, cerr.ErrInvalidParams},
		{"words exceed envelope", func(p *Params) { p.Words = maxWords * 2 }, cerr.ErrInvalidParams},
		{"bpw exceeds envelope", func(p *Params) { p.BPW = maxBPW + 1 }, cerr.ErrInvalidParams},
		{"bpc exceeds envelope", func(p *Params) { p.BPC = maxBPC * 2 }, cerr.ErrInvalidParams},
		{"bpc not a power of 2", func(p *Params) { p.BPC = 6 }, cerr.ErrInvalidParams},
		{"words not divisible by bpc", func(p *Params) { p.Words = 1024; p.BPC = 4; p.Words = 1022 }, cerr.ErrInvalidParams},
		{"words not a power of 2", func(p *Params) { p.Words = 768 }, cerr.ErrInvalidParams},
		{"overflow bait", func(p *Params) { p.Words = 1 << 62; p.BPC = 1 << 31 }, cerr.ErrInvalidParams},
		{"spares not 0/4/8/16", func(p *Params) { p.Spares = 5 }, cerr.ErrInvalidParams},
		{"negative spares", func(p *Params) { p.Spares = -4 }, cerr.ErrInvalidParams},
		{"spares exceed rows", func(p *Params) { p.Words = 8; p.BPC = 4; p.Spares = 16 }, cerr.ErrInvalidParams},
		{"zero gate size", func(p *Params) { p.BufSize = 0 }, cerr.ErrInvalidParams},
		{"absurd gate size", func(p *Params) { p.BufSize = 1 << 20 }, cerr.ErrInvalidParams},
		{"negative gate size", func(p *Params) { p.BufSize = -2 }, cerr.ErrInvalidParams},
		{"negative strap spacing", func(p *Params) { p.StrapCells = -1 }, cerr.ErrInvalidParams},
		{"single row", func(p *Params) { p.Words = 4; p.BPC = 4; p.Spares = 0 }, cerr.ErrInvalidParams},
		{"negative refine budget", func(p *Params) { p.RefineIterations = -1 }, cerr.ErrInvalidParams},
		{"no process", func(p *Params) { p.Process = nil }, cerr.ErrInvalidParams},
		// An out-of-envelope process keeps its own deck classification
		// even when caught at the compiler boundary: Wrap preserves the
		// inner typed code.
		{"invalid process", func(p *Params) {
			bad := *tech.CDA07
			bad.Feature = -1
			p.Process = &bad
		}, cerr.ErrDeckParse},
	}
	for _, tc := range cases {
		p := smallParams()
		tc.mut(&p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: accepted %+v", tc.name, p)
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v (code %s), want code %s", tc.name, err, cerr.CodeOf(err), cerr.CodeOf(tc.want))
		}
		if !cerr.IsTyped(err) {
			t.Errorf("%s: rejection is untyped: %v", tc.name, err)
		}
	}
}

// TestValidateEnvelopeAccepts spot-checks that the envelope caps do not
// reject the paper's real configurations.
func TestValidateEnvelopeAccepts(t *testing.T) {
	good := []Params{
		{Words: 64, BPW: 4, BPC: 4, Spares: 4, BufSize: 1, Process: tech.CDA07},
		{Words: 16384, BPW: 16, BPC: 16, Spares: 16, BufSize: 4, StrapCells: 16, Process: tech.CDA07},
		{Words: 1024, BPW: 8, BPC: 4, Spares: 0, BufSize: 2, Process: tech.CDA07}, // BISR disabled
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("config %d rejected: %v", i, err)
		}
	}
}
