package compiler

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/leafcell"
	"repro/internal/logicsim"
	"repro/internal/tech"
)

// This file builds the macrocells. Array-like macros (RAM array,
// decoder column, periphery rows, TLB, TRPLA planes) exploit the
// paper's "structured custom design": instances align by abutment and
// no internal routing is needed. Random logic (ADDGEN, DATAGEN,
// STREG) is assembled from the standard-gate library with cell counts
// taken from the actual structural netlists.

// strapWidthL is the strap gap in lambdas inserted between subarrays
// every StrapCells columns (the user's strap-space parameter enables
// over-the-cell wiring channels).
const strapWidthL = 8

// buildArray assembles the (rows+spares) x (bpw*bpc) bit-cell array
// with strap gaps.
func (d *Design) buildArray() *geom.Cell {
	p := d.Params
	cell := d.Lib.SRAM
	cw, ch := cell.Bounds().W(), cell.Bounds().H()
	cols := p.BPW * p.BPC
	strap := 0
	if p.StrapCells > 0 {
		strap = p.Process.L(strapWidthL)
	}
	// One row strip, reused for every row.
	row := geom.NewCell("array_row")
	x := 0
	for c := 0; c < cols; c++ {
		if strap > 0 && c > 0 && c%p.StrapCells == 0 {
			x += strap
		}
		row.Place(fmt.Sprintf("c%d", c), cell.Cell, geom.R0, geom.Point{X: x})
		x += cw
	}
	row.Abut = geom.R(0, 0, x, ch)

	arr := geom.NewCell("array")
	total := p.Rows() + p.Spares
	for r := 0; r < total; r++ {
		name := fmt.Sprintf("r%d", r)
		if r >= p.Rows() {
			name = fmt.Sprintf("spare%d", r-p.Rows())
		}
		// Alternate rows are mirrored about x so that abutting rows
		// share their vdd/gnd rails, as in any real bit-cell array
		// (and so the flattened array is spacing-clean: touching
		// rails carry the same net).
		if r%2 == 0 {
			arr.Place(name, row, geom.R0, geom.Point{Y: r * ch})
		} else {
			arr.Place(name, row, geom.MX, geom.Point{Y: (r + 1) * ch})
		}
	}
	arr.Abut = geom.R(0, 0, x, total*ch)
	// Edge ports for the floorplanner: wordline edge (west) and
	// bitline edge (south).
	arr.AddPort("wl_edge", tech.Poly, geom.R(0, 0, p.Process.L(2), total*ch), geom.West)
	arr.AddPort("bl_edge", tech.Metal2, geom.R(0, 0, x, p.Process.L(2)), geom.South)
	d.Macros["array"] = arr
	return arr
}

// buildRowDecoder stacks one decoder slice per regular row.
func (d *Design) buildRowDecoder() *geom.Cell {
	p := d.Params
	unit := d.Lib.RowDecoder(p.RowAddrBits())
	uw, uh := unit.Bounds().W(), unit.Bounds().H()
	dec := geom.NewCell("rowdec")
	for r := 0; r < p.Rows(); r++ {
		dec.Place(fmt.Sprintf("u%d", r), unit.Cell, geom.R0, geom.Point{Y: r * uh})
	}
	h := p.Rows() * uh
	dec.Abut = geom.R(0, 0, uw, h)
	dec.AddPort("wl_edge", tech.Poly, geom.R(uw-p.Process.L(2), 0, uw, h), geom.East)
	dec.AddPort("abus", tech.Metal2, geom.R(0, 0, uw, p.Process.L(2)), geom.South)
	d.Macros["rowdec"] = dec
	return dec
}

// buildColPeriphery stacks the precharge row, column-mux row, and the
// sense-amp/write-driver row under the array, plus the column
// decoder.
func (d *Design) buildColPeriphery() *geom.Cell {
	p := d.Params
	cw := d.Lib.SRAM.Bounds().W()
	cols := p.BPW * p.BPC
	strap := 0
	if p.StrapCells > 0 {
		strap = p.Process.L(strapWidthL)
	}
	// colX matches buildArray's column positions, including straps.
	colX := func(c int) int {
		x := c * cw
		if strap > 0 {
			x += (c / p.StrapCells) * strap
		}
		return x
	}
	per := geom.NewCell("colper")
	y := 0
	rowOf := func(name string, cell *leafcell.Cell, pitchCells int) {
		n := cols / pitchCells
		for i := 0; i < n; i++ {
			per.Place(fmt.Sprintf("%s%d", name, i), cell.Cell, geom.R0,
				geom.Point{X: colX(i * pitchCells), Y: y})
		}
		y += cell.Bounds().H()
	}
	rowOf("pre", d.Lib.Precharge, 1)
	rowOf("mux", d.Lib.ColMux, 1)
	rowOf("sa", d.Lib.SenseAmp, p.BPC)
	rowOf("wd", d.Lib.WriteDrv, p.BPC)
	// Column decoder: colAddrBits inverters + bpc AND trees realised
	// as NAND2+INV chains, placed as one extra standard-cell row.
	x := 0
	for i := 0; i < p.ColAddrBits(); i++ {
		per.Place(fmt.Sprintf("cdi%d", i), d.Lib.Inv.Cell, geom.R0, geom.Point{X: x, Y: y})
		x += d.Lib.Inv.Bounds().W()
	}
	for i := 0; i < p.BPC; i++ {
		per.Place(fmt.Sprintf("cdn%d", i), d.Lib.Nand2.Cell, geom.R0, geom.Point{X: x, Y: y})
		x += d.Lib.Nand2.Bounds().W()
		per.Place(fmt.Sprintf("cdv%d", i), d.Lib.Inv.Cell, geom.R0, geom.Point{X: x, Y: y})
		x += d.Lib.Inv.Bounds().W()
	}
	y += d.Lib.Inv.Bounds().H()
	w := d.Macros["array"].Bounds().W()
	per.Abut = geom.R(0, 0, w, y)
	per.AddPort("bl_edge", tech.Metal2, geom.R(0, y-p.Process.L(2), w, y), geom.North)
	per.AddPort("dout", tech.Metal1, geom.R(0, 0, w, p.Process.L(2)), geom.South)
	d.Macros["colper"] = per
	return per
}

// stdBlock packs standard cells for a structural netlist into a
// near-square block with shared rail rows.
func (d *Design) stdBlock(name string, sim *logicsim.Sim, extraCells []*leafcell.Cell, ports []string) *geom.Cell {
	var cells []*leafcell.Cell
	add := func(c *leafcell.Cell, n int) {
		for i := 0; i < n; i++ {
			cells = append(cells, c)
		}
	}
	for _, g := range sim.Gates() {
		two := g.Inputs - 1
		if two < 1 {
			two = 1
		}
		switch g.Kind {
		case logicsim.NOT:
			add(d.Lib.Inv, 1)
		case logicsim.BUF:
			add(d.Lib.Buf, 1)
		case logicsim.NAND:
			add(d.Lib.Nand2, two)
		case logicsim.NOR:
			add(d.Lib.Nor2, two)
		case logicsim.AND:
			add(d.Lib.Nand2, two)
			add(d.Lib.Inv, 1)
		case logicsim.OR:
			add(d.Lib.Nor2, two)
			add(d.Lib.Inv, 1)
		case logicsim.XOR, logicsim.XNOR:
			add(d.Lib.Xor2, two)
		case logicsim.MUX2:
			add(d.Lib.Mux2, 1)
		case logicsim.TRIBUF:
			add(d.Lib.Tribuf, 1)
		}
	}
	add(d.Lib.DFF, sim.NumDFFs())
	cells = append(cells, extraCells...)

	total := 0
	for _, c := range cells {
		total += c.Bounds().W()
	}
	ch := d.Lib.SRAM.Bounds().H()
	rows := int(math.Max(1, math.Round(math.Sqrt(float64(total)/float64(ch)))))
	target := (total + rows - 1) / rows

	blk := geom.NewCell(name)
	x, y, maxW := 0, 0, 0
	for i, c := range cells {
		blk.Place(fmt.Sprintf("g%d", i), c.Cell, geom.R0, geom.Point{X: x, Y: y})
		x += c.Bounds().W()
		if x > maxW {
			maxW = x
		}
		if x >= target && i < len(cells)-1 {
			x = 0
			y += ch
		}
	}
	if x > 0 || y == 0 {
		y += ch
	}
	blk.Abut = geom.R(0, 0, maxW, y)
	for _, port := range ports {
		blk.AddPort(port, tech.Metal2, geom.R(0, 0, maxW, d.Params.Process.L(2)), geom.South)
	}
	d.Macros[name] = blk
	return blk
}

// buildDataGen realises the Johnson-counter background generator and
// the XOR/OR read comparator from their structural netlists.
func (d *Design) buildDataGen() *geom.Cell {
	p := d.Params
	s := logicsim.New()
	rstN := s.Net("rstN")
	s.JohnsonCounter("jc", p.BPW, rstN)
	read := s.Bus("read", p.BPW)
	exp := s.Bus("exp", p.BPW)
	diffs := make([]int, p.BPW)
	for i := range diffs {
		diffs[i] = s.Net(fmt.Sprintf("d%d", i))
		s.Gate(logicsim.XOR, diffs[i], read[i], exp[i])
	}
	s.OrReduce("err", diffs)
	return d.stdBlock("datagen", s, nil, []string{"dcmp"})
}

// buildAddGen realises the binary up/down address counter.
func (d *Design) buildAddGen() *geom.Cell {
	p := d.Params
	s := logicsim.New()
	rstN := s.Net("rstN")
	s.UpDownCounter("ag", p.RowAddrBits()+p.ColAddrBits(), rstN)
	return d.stdBlock("addgen", s, nil, []string{"abus"})
}

// buildStReg realises the state register: the TRPLA state flip-flops
// plus the pass-2 and status flags.
func (d *Design) buildStReg() *geom.Cell {
	s := logicsim.New()
	rstN := s.Net("rstN")
	n := d.Prog.StateBits + 3 // state + pass2 + done + unsucc
	for i := 0; i < n; i++ {
		dn := s.Net(fmt.Sprintf("d%d", i))
		qn := s.Net(fmt.Sprintf("q%d", i))
		s.DFF(dn, qn, rstN)
		// Set/hold gating per flag bit.
		s.Gate(logicsim.OR, dn, qn, s.Net(fmt.Sprintf("set%d", i)))
	}
	return d.stdBlock("streg", s, nil, []string{"ctl"})
}

// buildTRPLA lays out the pseudo-NMOS NOR-NOR PLA from the assembled
// control program: one crosspoint per (term, literal) in the AND
// plane and per (term, output) in the OR plane, with pull-up columns
// and input buffers.
func (d *Design) buildTRPLA() *geom.Cell {
	prog := d.Prog
	on, off, pull := d.Lib.PLAOn, d.Lib.PLAOff, d.Lib.PLAPull
	pitch := on.Bounds().W()
	nIn := prog.StateBits + 4      // state bits + 4 conditions
	nOut := len(prog.Terms)        // rows
	outCols := prog.StateBits + 14 // next-state + control signals (NumSigs)

	blk := geom.NewCell("trpla")
	y := 0
	for t, term := range prog.Terms {
		x := 0
		// AND plane: two columns (true, complement) per input.
		for i := 0; i < nIn; i++ {
			b := uint64(1) << uint(i)
			cellT, cellF := off, off
			if term.Mask&b != 0 {
				if term.Val&b != 0 {
					cellT = on
				} else {
					cellF = on
				}
			}
			blk.Place(fmt.Sprintf("a%d_%dt", t, i), cellT.Cell, geom.R0, geom.Point{X: x, Y: y})
			x += pitch
			blk.Place(fmt.Sprintf("a%d_%df", t, i), cellF.Cell, geom.R0, geom.Point{X: x, Y: y})
			x += pitch
		}
		// OR plane.
		for o := 0; o < outCols; o++ {
			c := off
			if term.Out&(1<<uint(o)) != 0 {
				c = on
			}
			blk.Place(fmt.Sprintf("o%d_%d", t, o), c.Cell, geom.R0, geom.Point{X: x, Y: y})
			x += pitch
		}
		// Row pull-up.
		blk.Place(fmt.Sprintf("pu%d", t), pull.Cell, geom.R0, geom.Point{X: x, Y: y})
		y += on.Bounds().H()
	}
	// Input buffer row: two inverters per input (true/complement
	// rails).
	x := 0
	for i := 0; i < 2*nIn; i++ {
		blk.Place(fmt.Sprintf("ib%d", i), d.Lib.Inv.Cell, geom.R0, geom.Point{X: x, Y: y})
		x += d.Lib.Inv.Bounds().W()
	}
	_ = nOut
	w := (2*nIn+outCols)*pitch + pull.Bounds().W()
	if x > w {
		w = x
	}
	blk.Abut = geom.R(0, 0, w, y+d.Lib.Inv.Bounds().H())
	blk.AddPort("ctl", tech.Metal2, geom.R(0, 0, w, d.Params.Process.L(2)), geom.South)
	d.Macros["trpla"] = blk
	return blk
}

// buildTLB lays out the repair TLB: one CAM row per spare (row-address
// CAM bits + match buffer + spare wordline driver), the address
// tristate drivers, and the store priority logic.
func (d *Design) buildTLB() *geom.Cell {
	p := d.Params
	cam := d.Lib.CAM
	cw, ch := cam.Bounds().W(), cam.Bounds().H()
	bits := p.RowAddrBits()
	blk := geom.NewCell("tlb")
	y := 0
	for s := 0; s < p.Spares; s++ {
		x := 0
		for b := 0; b < bits; b++ {
			blk.Place(fmt.Sprintf("cam%d_%d", s, b), cam.Cell, geom.R0, geom.Point{X: x, Y: y})
			x += cw
		}
		// Match-line sense inverter and the spare wordline driver.
		blk.Place(fmt.Sprintf("mlbuf%d", s), d.Lib.Inv.Cell, geom.R0, geom.Point{X: x, Y: y})
		x += d.Lib.Inv.Bounds().W()
		blk.Place(fmt.Sprintf("wldrv%d", s), d.Lib.Buf.Cell, geom.R0, geom.Point{X: x, Y: y})
		y += ch
	}
	// Address output tristates (TLB vs address register selection per
	// Section VI's synchronous masking scheme).
	x := 0
	for b := 0; b < bits; b++ {
		blk.Place(fmt.Sprintf("tb%d", b), d.Lib.Tribuf.Cell, geom.R0, geom.Point{X: x, Y: y})
		x += d.Lib.Tribuf.Bounds().W()
	}
	y += d.Lib.Tribuf.Bounds().H()
	w := bits*cw + d.Lib.Inv.Bounds().W() + d.Lib.Buf.Bounds().W()
	if x > w {
		w = x
	}
	blk.Abut = geom.R(0, 0, w, y)
	blk.AddPort("spare_wl", tech.Poly, geom.R(w-p.Process.L(2), 0, w, y), geom.East)
	blk.AddPort("abus", tech.Metal2, geom.R(0, 0, w, p.Process.L(2)), geom.South)
	d.Macros["tlb"] = blk
	return blk
}
