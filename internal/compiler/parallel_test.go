package compiler

import (
	"testing"

	"repro/internal/cerr"
	"repro/internal/tech"
)

// TestCompileParallelDeterminism is the tentpole contract: a compile
// with the concurrency knob wide open must produce byte-identical
// output to a fully serial compile of the same Params, because the
// content-addressed cache (internal/canon + internal/store) hashes
// only Params and replays cached bytes regardless of how a compile
// was scheduled. Run under -race this also exercises the concurrent
// stage DAG for data races.
func TestCompileParallelDeterminism(t *testing.T) {
	base := Params{
		Words: 256, BPW: 8, BPC: 4, Spares: 4, BufSize: 1,
		StrapCells: 32, Process: tech.CDA07, RefineIterations: 2000,
	}
	serial := base
	serial.Parallelism = 1
	parallel := base
	parallel.Parallelism = 8

	ds, err := Compile(serial)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := Compile(parallel)
	if err != nil {
		t.Fatal(err)
	}
	js, err := ds.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jp, err := dp.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if js != jp {
		t.Fatalf("parallel compile diverged from serial:\nserial:\n%s\nparallel:\n%s", js, jp)
	}
	// The layouts must agree too, not just the datasheet.
	if ds.Plan == nil || dp.Plan == nil {
		t.Fatal("expected full floorplans")
	}
	if ds.Plan.Area != dp.Plan.Area || ds.Plan.Wirelength != dp.Plan.Wirelength {
		t.Fatalf("floorplan diverged: %d/%d vs %d/%d",
			ds.Plan.Area, ds.Plan.Wirelength, dp.Plan.Area, dp.Plan.Wirelength)
	}
	for name, pl := range ds.Plan.Placements {
		if dp.Plan.Placements[name] != pl {
			t.Fatalf("placement of %q diverged: %+v vs %+v", name, pl, dp.Plan.Placements[name])
		}
	}
}

// TestCompileNoSparesParallel covers the DAG shape without the TLB
// branch (Spares == 0 skips the second transient).
func TestCompileNoSparesParallel(t *testing.T) {
	p := Params{
		Words: 256, BPW: 8, BPC: 4, Spares: 0, BufSize: 1,
		StrapCells: 32, Process: tech.CDA07, Parallelism: 4,
	}
	d, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if d.Timing.TLBNs != 0 || d.Timing.TLBMaskable {
		t.Fatalf("no-spares compile grew TLB timing: %+v", d.Timing)
	}
}

func TestValidateParallelismEnvelope(t *testing.T) {
	p := Params{
		Words: 256, BPW: 8, BPC: 4, Spares: 4, BufSize: 1,
		StrapCells: 32, Process: tech.CDA07,
	}
	p.Parallelism = -1
	if cerr.CodeOf(p.Validate()) != cerr.CodeInvalidParams {
		t.Fatal("negative parallelism must be rejected")
	}
	p.Parallelism = maxParallelism + 1
	if cerr.CodeOf(p.Validate()) != cerr.CodeInvalidParams {
		t.Fatal("over-cap parallelism must be rejected")
	}
	p.Parallelism = maxParallelism
	if err := p.Validate(); err != nil {
		t.Fatalf("cap value should validate: %v", err)
	}
}
