package compiler

import (
	"fmt"

	"repro/internal/cjson"
)

// Report is the machine-readable datasheet — the structured
// counterpart of Datasheet(), for downstream flow integration.
type Report struct {
	Name    string `json:"name"`
	Process struct {
		Name      string  `json:"name"`
		FeatureUm float64 `json:"feature_um"`
		Metals    int     `json:"metals"`
		VDD       float64 `json:"vdd"`
	} `json:"process"`
	Organisation struct {
		Words     int `json:"words"`
		BPW       int `json:"bits_per_word"`
		BPC       int `json:"bits_per_column"`
		Rows      int `json:"rows"`
		SpareRows int `json:"spare_rows"`
		Columns   int `json:"columns"`
		Bits      int `json:"bits"`
	} `json:"organisation"`
	Test struct {
		Algorithm   string `json:"algorithm"`
		Backgrounds int    `json:"backgrounds"`
		States      int    `json:"controller_states"`
		FlipFlops   int    `json:"controller_flipflops"`
		PLATerms    int    `json:"pla_terms"`
	} `json:"test"`
	Area   AreaReport   `json:"area_um2"`
	Timing TimingReport `json:"timing_ns"`
	Power  PowerReport  `json:"power"`
	Plan   struct {
		Rectangularity float64 `json:"rectangularity"`
		AspectRatio    float64 `json:"aspect_ratio"`
		AbuttedNets    int     `json:"abutted_nets"`
		RoutedNets     int     `json:"routed_nets"`
		WirelengthUm   float64 `json:"wirelength_um"`
		// EstimateOnly marks a report produced without a floorplan
		// (degradation-ladder rung 3): the area figures are macro
		// bounding-box sums and the fields above are zero.
		EstimateOnly bool `json:"estimate_only,omitempty"`
	} `json:"floorplan"`
	// Degradations lists the fallbacks the compiler took to keep this
	// compile alive (see Design.Degradations). Empty when the full flow
	// succeeded.
	Degradations []string `json:"degradations,omitempty"`
}

// Report assembles the structured datasheet.
func (d *Design) Report() Report {
	p := d.Params
	var r Report
	r.Name = d.Name
	r.Process.Name = p.Process.Name
	r.Process.FeatureUm = float64(p.Process.Feature) / 1000
	r.Process.Metals = p.Process.Metals
	r.Process.VDD = p.Process.VDD
	r.Organisation.Words = p.Words
	r.Organisation.BPW = p.BPW
	r.Organisation.BPC = p.BPC
	r.Organisation.Rows = p.Rows()
	r.Organisation.SpareRows = p.Spares
	r.Organisation.Columns = p.BPW * p.BPC
	r.Organisation.Bits = p.Bits()
	r.Test.Algorithm = d.Prog.Name
	r.Test.Backgrounds = p.BPW + 1
	r.Test.States = d.Prog.NumStates
	r.Test.FlipFlops = d.Prog.StateBits
	r.Test.PLATerms = len(d.Prog.Terms)
	r.Area = d.Area
	r.Timing = d.Timing
	r.Power = d.Power
	if d.Plan != nil {
		r.Plan.Rectangularity = d.Plan.Rectangularity
		r.Plan.AspectRatio = d.Plan.AspectRatio
		r.Plan.AbuttedNets = d.Plan.AbuttedNets
		r.Plan.RoutedNets = d.Plan.RoutedNets
		r.Plan.WirelengthUm = float64(d.Plan.Wirelength) / 1000
	} else {
		r.Plan.EstimateOnly = true
	}
	r.Degradations = d.Degradations
	return r
}

// JSON renders the structured datasheet as canonical JSON
// (internal/cjson): sorted keys at every level, fixed shortest
// round-trip float formatting, two-space indentation and a trailing
// newline. The output is byte-deterministic — compiling the same
// validated inputs always yields the same bytes — which is what lets
// the serving layer cache and content-compare datasheets, and keeps
// golden tests stable across runs and platforms.
func (d *Design) JSON() (string, error) {
	b, err := cjson.MarshalIndent(d.Report())
	if err != nil {
		return "", fmt.Errorf("compiler: %w", err)
	}
	return string(b), nil
}
