package compiler

import (
	"bytes"
	"testing"

	"repro/internal/bisr"
	"repro/internal/bist"
	"repro/internal/geom"
	"repro/internal/march"
	"repro/internal/sram"
	"repro/internal/tech"
)

// TestArrayDRCClean flattens a small compiled bit-cell array and runs
// the width/spacing DRC over it: row mirroring must share rails
// (same-net abutment), bitline insets must keep the metal2 rule across
// cell boundaries, and wordlines must connect by same-net abutment.
func TestArrayDRCClean(t *testing.T) {
	p := Params{
		Words: 64, BPW: 4, BPC: 4, Spares: 4,
		BufSize: 1, StrapCells: 0, Process: tech.CDA07,
	}
	d, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	arr := d.Macros["array"]
	rules := map[geom.Layer]geom.Rule{
		tech.Poly:   p.Process.Rules[tech.Poly],
		tech.Metal1: p.Process.Rules[tech.Metal1],
		tech.Metal2: p.Process.Rules[tech.Metal2],
		tech.Metal3: p.Process.Rules[tech.Metal3],
	}
	if vs := geom.Check(arr, rules, 5); len(vs) > 0 {
		t.Fatalf("array has %d DRC violations, first: %v", len(vs), vs[0])
	}
}

// TestRowMirroringSharesRails verifies the alternate-row MX mirroring:
// at every row boundary the two abutting rails carry the same power
// net.
func TestRowMirroringSharesRails(t *testing.T) {
	p := Params{
		Words: 64, BPW: 4, BPC: 4, Spares: 0,
		BufSize: 1, StrapCells: 0, Process: tech.CDA07,
	}
	d, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	arr := d.Macros["array"]
	shapes := arr.Flatten()
	// Collect metal1 rail shapes (full-width) by their y extents.
	type rail struct {
		y0, y1 int
		net    string
	}
	var rails []rail
	railH := p.Process.L(3) // rail strips are 3 lambda tall
	for _, s := range shapes {
		if s.Layer == tech.Metal1 && s.Rect.H() == railH &&
			(s.Net == "vdd" || s.Net == "gnd") {
			rails = append(rails, rail{s.Rect.Y0, s.Rect.Y1, s.Net})
		}
	}
	if len(rails) == 0 {
		t.Fatal("no rails found")
	}
	// Any two touching rails must share a net.
	for i := range rails {
		for j := i + 1; j < len(rails); j++ {
			a, b := rails[i], rails[j]
			if a.y1 == b.y0 || b.y1 == a.y0 {
				if a.net != b.net {
					t.Fatalf("touching rails carry %q and %q", a.net, b.net)
				}
			}
		}
	}
}

// TestPlaneFileLoadingPath compiles with a TRPLA program loaded from
// plane files (the paper's runtime control-code path) and checks that
// the resulting design is byte-identical in behaviour to the directly
// assembled one: same states, same datasheet algorithm name, and a
// repair run that behaves identically.
func TestPlaneFileLoadingPath(t *testing.T) {
	direct, err := bist.Assemble(march.IFA13())
	if err != nil {
		t.Fatal(err)
	}
	var andB, orB bytes.Buffer
	if err := direct.WritePlanes(&andB, &orB); err != nil {
		t.Fatal(err)
	}
	loaded, err := bist.ReadPlanes("IFA-13", direct.StateBits, &andB, &orB)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{
		Words: 256, BPW: 4, BPC: 4, Spares: 4,
		BufSize: 1, StrapCells: 0, Process: tech.CDA07,
		Program: loaded,
	}
	d, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if d.Prog.NumStates != direct.NumStates || len(d.Prog.Terms) != len(direct.Terms) {
		t.Fatalf("loaded program differs: %d/%d states, %d/%d terms",
			d.Prog.NumStates, direct.NumStates, len(d.Prog.Terms), len(direct.Terms))
	}
	// The loaded-program design must self-repair like the assembled
	// one.
	ram, err := d.NewInstance()
	if err != nil {
		t.Fatal(err)
	}
	if err := ram.Arr.Inject(sram.CellAddr{Row: 9, Col: 2}, sram.Fault{Kind: sram.SA1}); err != nil {
		t.Fatal(err)
	}
	ctl := bisr.NewController(ram)
	ctl.Test = march.IFA13()
	out, err := ctl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Repaired {
		t.Fatal("plane-loaded design failed to repair")
	}
}

// TestEndToEndFlow is the full-system integration test: compile,
// instantiate, break with a mixed defect pattern (cell, row, address
// fault on a row already mapped), run the iterated flow, verify, and
// use the memory.
func TestEndToEndFlow(t *testing.T) {
	d, err := Compile(Params{
		Words: 512, BPW: 8, BPC: 4, Spares: 8,
		BufSize: 2, StrapCells: 16, Process: tech.MOS06,
	})
	if err != nil {
		t.Fatal(err)
	}
	ram, err := d.NewInstance()
	if err != nil {
		t.Fatal(err)
	}
	arr := ram.Arr
	arr.InjectRow(5)
	mustInject(t, arr, sram.CellAddr{Row: 20, Col: 11}, sram.Fault{Kind: sram.TFD})
	mustInject(t, arr, sram.CellAddr{Row: 77, Col: 0}, sram.Fault{Kind: sram.SA0})
	// A faulty spare too: the iterated flow must route around it.
	mustInject(t, arr, sram.CellAddr{Row: arr.Config().Rows(), Col: 3}, sram.Fault{Kind: sram.SA1})

	ctl := bisr.NewController(ram)
	ctl.MaxIterations = 4
	out, err := ctl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Repaired {
		t.Fatalf("end-to-end repair failed: %+v", out)
	}
	if !march.Run(ram, march.IFA9(), march.JohnsonBackgrounds(8), 8).Pass() {
		t.Fatal("verification march failed")
	}
	// Transparent field re-test preserves live data.
	for i := 0; i < ram.Words(); i++ {
		ram.Write(i, uint64(i*7)&0xFF)
	}
	tres := march.RunTransparent(ram, march.IFA9(), 8)
	if !tres.Pass() || !tres.Restored {
		t.Fatalf("transparent field test: pass=%v restored=%v", tres.Pass(), tres.Restored)
	}
	for i := 0; i < ram.Words(); i++ {
		if ram.Read(i) != uint64(i*7)&0xFF {
			t.Fatalf("data lost at %d", i)
		}
	}
}

func mustInject(t *testing.T, a *sram.Array, c sram.CellAddr, f sram.Fault) {
	t.Helper()
	if err := a.Inject(c, f); err != nil {
		t.Fatal(err)
	}
}
