// Package cache is the serving layer's content-addressed artifact
// store: an LRU bounded by a byte-size budget, keyed by the canonical
// SHA-256 content address computed in internal/canon. Entries hold the
// rendered compile artifacts (canonical datasheet.json, datasheet.txt,
// TRPLA plane files, layout SVG) rather than live *Design graphs, so
// the resident size of every entry is exactly the sum of its byte
// slices and eviction accounting is precise.
//
// Because keys address the fully-validated, canonicalized inputs, a
// hit is always semantically correct to serve: two requests with the
// same key are the same compile. The cache is safe for concurrent use.
package cache

import (
	"container/list"
	"sort"
	"sync"

	"repro/internal/chaos"
)

// Entry is one cached compile result.
type Entry struct {
	// Key is the canonical content address (SHA-256 hex).
	Key string
	// Report is the canonical datasheet.json document.
	Report []byte
	// Artifacts maps artifact name (datasheet.txt, trpla_and.plane,
	// layout.svg, ...) to rendered bytes.
	Artifacts map[string][]byte
	// Degraded records whether the compile descended the degradation
	// ladder (mirrors Report's degradations list, denormalised so the
	// serving layer can annotate responses without re-parsing JSON).
	Degraded bool
}

// Size returns the resident byte size of the entry: report plus all
// artifact bodies plus key and name overhead.
func (e *Entry) Size() int64 {
	n := int64(len(e.Key)) + int64(len(e.Report))
	for name, body := range e.Artifacts {
		n += int64(len(name)) + int64(len(body))
	}
	return n
}

// ArtifactNames lists the entry's artifact names, sorted.
func (e *Entry) ArtifactNames() []string {
	names := make([]string, 0, len(e.Artifacts))
	for n := range e.Artifacts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
	// Rejected counts entries refused because a single entry exceeded
	// the whole budget.
	Rejected    uint64 `json:"rejected"`
	Entries     int    `json:"entries"`
	Bytes       int64  `json:"bytes"`
	BudgetBytes int64  `json:"budget_bytes"`
}

// Cache is the LRU. The zero value is unusable; construct with New.
type Cache struct {
	mu     sync.Mutex
	budget int64
	size   int64
	ll     *list.List // front = most recently used; values are *Entry
	items  map[string]*list.Element
	chaos  *chaos.Injector

	hits, misses, puts, evictions, rejected uint64
}

// SetChaos installs a fault injector (cache.put drops inserts,
// simulating memory pressure). Call before serving; nil disables.
func (c *Cache) SetChaos(in *chaos.Injector) {
	c.mu.Lock()
	c.chaos = in
	c.mu.Unlock()
}

// New builds a cache with the given byte budget. A non-positive
// budget yields a cache that stores nothing (every Put is rejected) —
// useful for disabling caching without branching at call sites.
func New(budgetBytes int64) *Cache {
	return &Cache{
		budget: budgetBytes,
		ll:     list.New(),
		items:  map[string]*list.Element{},
	}
}

// Get returns the entry for key and promotes it to most-recently-used.
func (c *Cache) Get(key string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*Entry), true
}

// Contains reports whether key is resident without promoting it or
// touching the hit/miss counters.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// Put inserts (or replaces) the entry, then evicts least-recently-used
// entries until the byte budget is respected. An entry larger than the
// whole budget is rejected rather than flushing everything else.
func (c *Cache) Put(e *Entry) {
	size := e.Size()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.chaos.Fail(chaos.PointCachePut) != nil {
		// Injected memory pressure: the insert is dropped; the entry
		// stays servable from the disk tier.
		c.rejected++
		return
	}
	if size > c.budget {
		c.rejected++
		return
	}
	if el, ok := c.items[e.Key]; ok {
		old := el.Value.(*Entry)
		c.size -= old.Size()
		el.Value = e
		c.ll.MoveToFront(el)
	} else {
		c.items[e.Key] = c.ll.PushFront(e)
	}
	c.size += size
	c.puts++
	for c.size > c.budget {
		c.evictOldest()
	}
}

// evictOldest drops the LRU entry. Caller holds c.mu.
func (c *Cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*Entry)
	c.ll.Remove(el)
	delete(c.items, e.Key)
	c.size -= e.Size()
	c.evictions++
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Puts: c.puts,
		Evictions: c.evictions, Rejected: c.rejected,
		Entries: c.ll.Len(), Bytes: c.size, BudgetBytes: c.budget,
	}
}

// Len returns the resident entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the resident byte size.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// Keys returns resident keys from most- to least-recently used —
// observability for the /metrics handler and tests.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*Entry).Key)
	}
	return out
}
