package cache

import (
	"fmt"
	"sync"
	"testing"
)

func entry(key string, bodyBytes int) *Entry {
	return &Entry{
		Key:       key,
		Report:    make([]byte, bodyBytes/2),
		Artifacts: map[string][]byte{"a": make([]byte, bodyBytes-bodyBytes/2)},
	}
}

func TestHitMissCounters(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get("k"); ok {
		t.Fatal("unexpected hit")
	}
	c.Put(entry("k", 100))
	if _, ok := c.Get("k"); !ok {
		t.Fatal("expected hit")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// Budget fits ~3 entries of this size.
	e := entry("probe", 1000)
	unit := e.Size()
	c := New(3 * unit)
	c.Put(entry("a", 1000))
	c.Put(entry("b", 1000))
	c.Put(entry("c", 1000))
	// Touch "a" so "b" is now LRU.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put(entry("d", 1000))
	if c.Contains("b") {
		t.Fatal("b should have been evicted as LRU")
	}
	for _, k := range []string{"a", "c", "d"} {
		if !c.Contains(k) {
			t.Fatalf("%s should be resident", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions %d, want 1", s.Evictions)
	}
}

func TestByteBudgetRespected(t *testing.T) {
	c := New(10_000)
	for i := 0; i < 100; i++ {
		c.Put(entry(fmt.Sprintf("k%03d", i), 900))
	}
	if b := c.Bytes(); b > 10_000 {
		t.Fatalf("resident bytes %d exceed budget", b)
	}
	if c.Len() == 0 {
		t.Fatal("cache should retain recent entries")
	}
}

func TestOversizeEntryRejected(t *testing.T) {
	c := New(500)
	c.Put(entry("big", 10_000))
	if c.Len() != 0 {
		t.Fatal("oversize entry must not be admitted")
	}
	if s := c.Stats(); s.Rejected != 1 {
		t.Fatalf("rejected %d, want 1", s.Rejected)
	}
}

func TestReplaceSameKeyAccounting(t *testing.T) {
	c := New(1 << 20)
	c.Put(entry("k", 1000))
	before := c.Bytes()
	c.Put(entry("k", 2000))
	if c.Len() != 1 {
		t.Fatalf("len %d, want 1", c.Len())
	}
	if c.Bytes() <= before {
		t.Fatal("replacement should grow resident size")
	}
	c.Put(entry("k", 100))
	if c.Bytes() >= before {
		t.Fatal("shrinking replacement should shrink resident size")
	}
}

func TestZeroBudgetStoresNothing(t *testing.T) {
	c := New(0)
	c.Put(entry("k", 1))
	if c.Len() != 0 {
		t.Fatal("zero-budget cache must stay empty")
	}
}

func TestKeysMRUOrder(t *testing.T) {
	c := New(1 << 20)
	c.Put(entry("a", 10))
	c.Put(entry("b", 10))
	c.Get("a")
	keys := c.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys %v", keys)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(50_000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*13+i)%40)
				if i%3 == 0 {
					c.Put(entry(k, 500+i%700))
				} else {
					c.Get(k)
				}
				if i%50 == 0 {
					c.Stats()
					c.Keys()
				}
			}
		}(g)
	}
	wg.Wait()
	if b := c.Bytes(); b > 50_000 {
		t.Fatalf("budget violated under concurrency: %d", b)
	}
}
