package sweep

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fastRetry keeps test wall-clock down while exercising the full
// retry path.
var fastRetry = RetryPolicy{
	MaxAttempts:      4,
	BaseDelay:        time.Millisecond,
	MaxDelay:         5 * time.Millisecond,
	BreakerThreshold: 3,
	BreakerCooldown:  50 * time.Millisecond,
}

func TestClientRetriesOverloadThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"code":"ERR_OVERLOADED","message":"queue full"}}`)
			return
		}
		fmt.Fprint(w, `{"job":{"key":"abc","state":"done"}}`)
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retry = fastRetry
	// Cap Retry-After honoring at MaxDelay so the advertised 1 s hint
	// doesn't stall the test.
	job, err := c.Compile([]byte(`{}`))
	if err != nil {
		t.Fatalf("Compile after overload: %v", err)
	}
	if !strings.Contains(string(job), `"abc"`) {
		t.Fatalf("job payload %s", job)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 3", n)
	}
}

func TestClientDoesNotRetryDeterministicFailures(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":{"code":"ERR_INVALID_PARAMS","message":"rows out of range"}}`)
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retry = fastRetry
	_, err := c.Compile([]byte(`{}`))
	var we *WireError
	if !errors.As(err, &we) || we.Code != "ERR_INVALID_PARAMS" {
		t.Fatalf("error %v, want ERR_INVALID_PARAMS wire error", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("deterministic failure retried: %d calls", n)
	}
}

func TestClientRetriesTransportFailures(t *testing.T) {
	// A server that is down for the first attempts: point the client at
	// a closed port, then swap in a live server via a reverse proxy
	// trick — simplest deterministic stand-in is a handler that hijacks
	// and drops the first connections.
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, _ := hj.Hijack()
			conn.Close() // slam the connection: transport-level failure
			return
		}
		fmt.Fprint(w, `{"job":{"key":"k"}}`)
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retry = fastRetry
	if _, err := c.Compile([]byte(`{}`)); err != nil {
		t.Fatalf("Compile after dropped connection: %v", err)
	}
	if n := calls.Load(); n < 2 {
		t.Fatalf("server saw %d calls, want >= 2", n)
	}
}

func TestClientBreakerOpensAndFailsFast(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":{"code":"ERR_OVERLOADED","message":"down"}}`)
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retry = fastRetry
	if _, err := c.Compile([]byte(`{}`)); err == nil {
		t.Fatal("expected failure")
	}
	// fastRetry: 4 attempts, breaker threshold 3 — the breaker opened
	// mid-exchange, so the exchange stopped early.
	after := calls.Load()
	if after > 3 {
		t.Fatalf("breaker did not bound attempts: %d calls", after)
	}
	// While open, no request reaches the wire.
	if _, err := c.Compile([]byte(`{}`)); err == nil {
		t.Fatal("expected fail-fast while breaker open")
	} else if !strings.Contains(err.Error(), "circuit open") {
		t.Fatalf("fail-fast error %v", err)
	}
	if calls.Load() != after {
		t.Fatalf("open breaker leaked a request: %d -> %d", after, calls.Load())
	}
	// After the cooldown the probe goes through again.
	time.Sleep(fastRetry.BreakerCooldown + 10*time.Millisecond)
	c.Compile([]byte(`{}`))
	if calls.Load() == after {
		t.Fatal("breaker never half-opened after cooldown")
	}
}

func TestClientZeroPolicyIsSingleShot(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":{"code":"ERR_OVERLOADED","message":"busy"}}`)
	}))
	defer srv.Close()

	c := &Client{Base: srv.URL} // zero policy: no retries, no breaker
	if _, err := c.Compile([]byte(`{}`)); err == nil {
		t.Fatal("expected overload error")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("zero policy sent %d requests, want 1", n)
	}
}

// TestClientBreakerIsPerEndpoint: tripping the breaker for one host
// must not open it for another — a multi-host fleet client keeps
// routing to healthy shards while one is dead.
func TestClientBreakerIsPerEndpoint(t *testing.T) {
	var healthyCalls atomic.Int64
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		healthyCalls.Add(1)
		fmt.Fprint(w, `{"job":{"key":"ok"}}`)
	}))
	defer healthy.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":{"code":"ERR_OVERLOADED","message":"down"}}`)
	}))
	defer dead.Close()

	c := NewClient(dead.URL)
	c.Retry = fastRetry
	if _, err := c.Compile([]byte(`{}`)); err == nil {
		t.Fatal("dead endpoint should fail")
	}
	// The dead endpoint's circuit is open...
	if err := c.breakerAllows(endpointOf(dead.URL)); err == nil {
		t.Fatal("dead endpoint breaker not open")
	}
	// ...but the same client still reaches the healthy endpoint raw.
	resp, err := c.DoRaw(nil, http.MethodGet, healthy.URL+"/v1/jobs/x", nil)
	if err != nil {
		t.Fatalf("healthy endpoint blocked by dead endpoint's breaker: %v", err)
	}
	if resp.Status != 200 || healthyCalls.Load() != 1 {
		t.Fatalf("healthy exchange status %d, calls %d", resp.Status, healthyCalls.Load())
	}
	// And enveloped exchanges against the healthy base stay open too.
	c.Base = healthy.URL
	if _, err := c.Compile([]byte(`{}`)); err != nil {
		t.Fatalf("healthy base blocked: %v", err)
	}
}

// TestClientDoRawPassesResponsesThrough: DoRaw returns HTTP error
// statuses verbatim (no retry — a proxy must relay them), and retries
// only transport-level failures.
func TestClientDoRawPassesResponsesThrough(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n == 1 {
			hj := w.(http.Hijacker)
			conn, _, _ := hj.Hijack()
			conn.Close() // transport failure: retried
			return
		}
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":{"code":"ERR_OVERLOADED","message":"busy"}}`)
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retry = fastRetry
	resp, err := c.DoRaw(nil, http.MethodPost, srv.URL+"/v1/compile", []byte(`{}`))
	if err != nil {
		t.Fatalf("DoRaw: %v", err)
	}
	if resp.Status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 passed through", resp.Status)
	}
	if resp.Header.Get("Retry-After") != "7" {
		t.Fatalf("Retry-After header lost: %v", resp.Header)
	}
	if !strings.Contains(string(resp.Body), "ERR_OVERLOADED") {
		t.Fatalf("body %s", resp.Body)
	}
	// Exactly one transport retry, no retry of the 429.
	if n := calls.Load(); n != 2 {
		t.Fatalf("server saw %d calls, want 2", n)
	}
}

func TestClientBackoffHonorsRetryAfterAndCaps(t *testing.T) {
	c := NewClient("http://example.invalid")
	c.Retry = RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond}
	if d := c.backoff(0, 20*time.Millisecond); d != 20*time.Millisecond {
		t.Fatalf("Retry-After not honored: %v", d)
	}
	if d := c.backoff(0, time.Hour); d != 40*time.Millisecond {
		t.Fatalf("Retry-After not capped: %v", d)
	}
	for n := 0; n < 10; n++ {
		if d := c.backoff(n, 0); d < 0 || d > 40*time.Millisecond {
			t.Fatalf("backoff(%d) = %v outside [0, cap]", n, d)
		}
	}
}
