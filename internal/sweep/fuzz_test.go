package sweep

import (
	"errors"
	"testing"

	"repro/internal/cerr"
)

// FuzzParseSpec drives the sweep-request decoder with arbitrary
// bytes: ParseSpec must never panic, every rejection must be a typed
// *cerr.Error, and any spec that parses must survive a bounded Expand
// without panicking (rejections again typed). The seed corpus covers
// the wire shapes the handlers actually see: the paper's Fig. 4 sweep,
// single-point specs, version pins, and the classic decoder traps
// (unknown fields, trailing garbage, deep nesting, huge numbers).
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		// Paper evaluation shape: yield vs defects across spare counts.
		`{"base":{"words":4096,"bpw":32,"bpc":8,"spares":4},"axes":{"spares":[0,2,4,8],"defects":[0,5,10,20]}}`,
		// Single point, no axes.
		`{"base":{"words":1024,"bpw":16,"bpc":4,"spares":2},"axes":{}}`,
		// Version pinned + priority class.
		`{"version":2,"base":{"words":2048,"bpw":32,"bpc":8,"spares":4},"axes":{"words":[1024,2048]},"priority":"batch"}`,
		// Process/test axes (string-valued).
		`{"base":{"words":4096,"bpw":32,"bpc":8,"spares":4},"axes":{"process":["p0","p1"],"test":["march-c"]}}`,
		// Decoder traps.
		`{"base":{},"axes":{},"bogus":1}`,
		`{"base":{},"axes":{}} trailing`,
		`{"version":999,"base":{},"axes":{}}`,
		`{"axes":{"defects":[1e308,-1e308,0.0]}}`,
		`[[[[[[[[[[{}]]]]]]]]]]`,
		`{"base":{"words":-1,"bpw":0},"axes":{"spares":[9223372036854775807]}}`,
		``,
		`null`,
		`{}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data)
		if err != nil {
			var ce *cerr.Error
			if !errors.As(err, &ce) {
				t.Fatalf("ParseSpec returned untyped error %T: %v", err, err)
			}
			return
		}
		if _, err := spec.Expand(DefaultMaxPoints); err != nil {
			var ce *cerr.Error
			if !errors.As(err, &ce) {
				t.Fatalf("Expand returned untyped error %T: %v", err, err)
			}
		}
	})
}
