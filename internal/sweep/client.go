// Client-side bindings for the sweep API. cmd/experiments uses them
// to run the paper's evaluation as a service client; the end-to-end
// smoke tests use them to drive a real daemon.
//
// Resilience: every exchange retries transient failures (network
// errors, 429/502/503/504, ERR_OVERLOADED) with capped exponential
// backoff and full jitter, honouring the server's Retry-After hint
// when present. Retrying POST /v1/compile and POST /v1/sweeps is safe
// because both are idempotent by construction — the request body is
// content-addressed, so a retry lands on the cache entry (or dedups
// onto the in-flight job) the lost response already paid for. A
// consecutive-failure circuit breaker stops hammering a down service:
// after BreakerThreshold transport-level failures in a row the client
// fails fast for BreakerCooldown, then probes again. Breaker state is
// kept PER ENDPOINT (URL host), so a client shared across a fleet —
// the cluster peer client routes one Client at many shards via DoRaw
// — cannot let one dead shard open the breaker for healthy ones.
package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cerr"
	"repro/internal/obs"
)

// WireError is the service error envelope member.
type WireError struct {
	Code    string `json:"code"`
	Stage   string `json:"stage,omitempty"`
	Message string `json:"message"`
}

// Error renders the wire error in the CLI convention (code first).
func (e *WireError) Error() string {
	if e.Stage != "" {
		return fmt.Sprintf("%s[%s]: %s", e.Code, e.Stage, e.Message)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// envelope mirrors the service's uniform /v1 response envelope.
type envelope struct {
	Job   json.RawMessage `json:"job"`
	Sweep *Status         `json:"sweep"`
	Data  json.RawMessage `json:"data"`
	Page  *Page           `json:"page"`
	Error *WireError      `json:"error"`
}

// RetryPolicy shapes the client's transient-failure handling. The
// zero value disables retries (single-shot exchanges); DefaultRetry
// is what NewClient installs.
type RetryPolicy struct {
	// MaxAttempts bounds tries per exchange (first attempt included);
	// <= 1 means no retries.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: attempt n (0-based
	// retry ordinal) waits a uniformly-random duration in
	// [0, min(MaxDelay, BaseDelay·2ⁿ)] — "full jitter", which spreads
	// a synchronized burst of retrying clients instead of re-bunching
	// them.
	BaseDelay time.Duration
	// MaxDelay caps one backoff sleep. A server Retry-After hint
	// overrides the computed delay (still capped at MaxDelay).
	MaxDelay time.Duration
	// BreakerThreshold opens the circuit after this many consecutive
	// transient failures across exchanges; <= 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit fails fast before
	// probing the service again.
	BreakerCooldown time.Duration
}

// DefaultRetry is the policy NewClient installs: 6 attempts, 100 ms
// base, 5 s cap, breaker at 5 consecutive failures with a 10 s
// cooldown. Six attempts put the expected cumulative backoff around
// 1.5 s — enough to ride out a daemon restart, not enough to mask a
// real outage.
var DefaultRetry = RetryPolicy{
	MaxAttempts:      6,
	BaseDelay:        100 * time.Millisecond,
	MaxDelay:         5 * time.Second,
	BreakerThreshold: 5,
	BreakerCooldown:  10 * time.Second,
}

// Client talks to a bisramgend instance (the enveloped /v1 methods
// address Base) or, via DoRaw, to any endpoint of a fleet — breaker
// state is tracked per endpoint host either way.
type Client struct {
	// Base is the service root, e.g. "http://127.0.0.1:8047".
	Base string
	// HTTP is the underlying client; nil means a 30 s-timeout default.
	HTTP *http.Client
	// Retry shapes transient-failure handling; the zero value is
	// single-shot. NewClient installs DefaultRetry.
	Retry RetryPolicy
	// PageSize, when positive, makes SweepResults fetch rows in
	// windows of this many via ?offset=&limit= instead of one
	// full-document GET — bounding any single response body while the
	// caller still sees a complete Results. NewClient installs
	// DefaultPageSize; set 0 to force full-document fetches.
	PageSize int

	mu       sync.Mutex
	breakers map[string]*breakerState // per endpoint host
	rng      *rand.Rand
}

// breakerState is one endpoint's circuit: consecutive transient
// failures and the open-until instant.
type breakerState struct {
	consecFail int
	openUntil  time.Time
}

// NewClient builds a client for the given base URL with DefaultRetry.
// DefaultPageSize is the results window NewClient installs: large
// enough that small sweeps finish in one round trip, small enough to
// bound the response body of a many-thousand-point sweep.
const DefaultPageSize = 500

func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), Retry: DefaultRetry, PageSize: DefaultPageSize}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// transientStatus reports whether an HTTP status indicates a condition
// a retry can clear.
func transientStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// endpointOf reduces a URL to its breaker key: the host (authority).
// Unparseable URLs key by the raw string so they still isolate.
func endpointOf(rawURL string) string {
	if u, err := url.Parse(rawURL); err == nil && u.Host != "" {
		return u.Host
	}
	return rawURL
}

// breakerFor returns (creating on first use) the endpoint's circuit
// state. Caller holds c.mu.
func (c *Client) breakerFor(endpoint string) *breakerState {
	if c.breakers == nil {
		c.breakers = map[string]*breakerState{}
	}
	b, ok := c.breakers[endpoint]
	if !ok {
		b = &breakerState{}
		c.breakers[endpoint] = b
	}
	return b
}

// breakerAllows consults the endpoint's circuit breaker: an open
// circuit fails fast until the cooldown elapses, then lets one probe
// through. Each endpoint opens and closes independently, so one dead
// shard never blocks exchanges with the rest of a fleet.
func (c *Client) breakerAllows(endpoint string) error {
	if c.Retry.BreakerThreshold <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakerFor(endpoint)
	if until := b.openUntil; time.Now().Before(until) {
		return cerr.New(cerr.CodeOverloaded,
			"sweep client: circuit open for %s after %d consecutive failures (retrying at %s)",
			endpoint, b.consecFail, until.Format(time.RFC3339))
	}
	return nil
}

// recordOutcome feeds the endpoint's breaker: a transient failure
// increments the consecutive count (opening the circuit at the
// threshold), anything else resets it.
func (c *Client) recordOutcome(endpoint string, transientFail bool) {
	if c.Retry.BreakerThreshold <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakerFor(endpoint)
	if !transientFail {
		b.consecFail = 0
		return
	}
	b.consecFail++
	if b.consecFail >= c.Retry.BreakerThreshold {
		b.openUntil = time.Now().Add(c.Retry.BreakerCooldown)
	}
}

// backoff computes the sleep before retry ordinal n: the server's
// Retry-After hint when given, otherwise full-jitter exponential
// backoff — both capped at MaxDelay.
func (c *Client) backoff(n int, retryAfter time.Duration) time.Duration {
	max := c.Retry.MaxDelay
	if max <= 0 {
		max = 5 * time.Second
	}
	if retryAfter > 0 {
		if retryAfter > max {
			return max
		}
		return retryAfter
	}
	d := c.Retry.BaseDelay << uint(n)
	if d <= 0 || d > max {
		d = max
	}
	c.mu.Lock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	d = time.Duration(c.rng.Int63n(int64(d) + 1))
	c.mu.Unlock()
	return d
}

// do runs one exchange with retries and decodes the envelope,
// converting wire errors into typed errors. Exchanges are idempotent
// (content-addressed bodies), so POSTs retry as safely as GETs.
func (c *Client) do(method, path string, body []byte) (*envelope, error) {
	attempts := c.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	endpoint := endpointOf(c.Base)
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := c.breakerAllows(endpoint); err != nil {
			return nil, err
		}
		env, retryAfter, transient, err := c.doOnce(method, path, body)
		c.recordOutcome(endpoint, err != nil && transient)
		if err == nil {
			return env, nil
		}
		lastErr = err
		if !transient || attempt == attempts-1 {
			return nil, err
		}
		time.Sleep(c.backoff(attempt, retryAfter))
	}
	return nil, lastErr
}

// doOnce runs a single exchange. transient reports whether the
// failure class is retryable; retryAfter carries the server's
// Retry-After hint (0 when absent).
func (c *Client) doOnce(method, path string, body []byte) (env *envelope, retryAfter time.Duration, transient bool, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.Base+path, rd)
	if err != nil {
		return nil, 0, false, cerr.Wrap(cerr.CodeInvalidParams, err, "sweep client: bad request")
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		// Transport failure: connection refused, reset, timeout — all
		// worth a retry (the daemon may be restarting).
		return nil, 0, true, cerr.Wrap(cerr.CodeInternal, err, "sweep client: %s %s", method, path)
	}
	defer resp.Body.Close()
	if secs, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && secs > 0 {
		retryAfter = time.Duration(secs) * time.Second
	}
	transient = transientStatus(resp.StatusCode)
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, retryAfter, true, cerr.Wrap(cerr.CodeInternal, err, "sweep client: reading %s", path)
	}
	var decoded envelope
	if err := json.Unmarshal(raw, &decoded); err != nil {
		return nil, retryAfter, transient, cerr.Wrap(cerr.CodeInternal, err,
			"sweep client: %s %s returned non-envelope JSON (status %d)", method, path, resp.StatusCode)
	}
	if decoded.Error != nil {
		if decoded.Error.Code == cerr.CodeOverloaded.String() {
			transient = true
		}
		return nil, retryAfter, transient, decoded.Error
	}
	if resp.StatusCode >= 400 {
		return nil, retryAfter, transient, cerr.New(cerr.CodeInternal,
			"sweep client: %s %s: status %d with null error", method, path, resp.StatusCode)
	}
	return &decoded, retryAfter, false, nil
}

// RawResponse is one verbatim HTTP exchange result from DoRaw: the
// status, headers and body exactly as the endpoint sent them.
type RawResponse struct {
	Status int
	Header http.Header
	Body   []byte
}

// DoRaw performs one exchange against an ABSOLUTE url (any host — the
// cluster peer client routes one shared Client across a whole fleet)
// and returns the response verbatim, whatever its status. Only
// transport-level failures (refused, reset, timeout) are retried; an
// HTTP response of any status is a terminal answer here, because
// callers proxying for someone else must pass 4xx/5xx envelopes
// through untouched. The per-endpoint breaker still applies, fed by
// transport failures alone.
func (c *Client) DoRaw(ctx context.Context, method, absURL string, body []byte) (*RawResponse, error) {
	attempts := c.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	endpoint := endpointOf(absURL)
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := c.breakerAllows(endpoint); err != nil {
			return nil, err
		}
		resp, err := c.doRawOnce(ctx, method, absURL, body)
		c.recordOutcome(endpoint, err != nil)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx != nil && ctx.Err() != nil {
			return nil, lastErr
		}
		if attempt < attempts-1 {
			time.Sleep(c.backoff(attempt, 0))
		}
	}
	return nil, lastErr
}

// doRawOnce runs a single raw exchange; every returned error is
// transport-level (and therefore retryable).
func (c *Client) doRawOnce(ctx context.Context, method, absURL string, body []byte) (*RawResponse, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := http.NewRequestWithContext(ctx, method, absURL, rd)
	if err != nil {
		return nil, cerr.Wrap(cerr.CodeInvalidParams, err, "sweep client: bad raw request")
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate the caller's trace across the process boundary: the
	// receiving daemon continues the same trace ID with this exchange's
	// open span as remote parent (see obs wire format).
	if hv, ok := obs.Inject(ctx); ok {
		req.Header.Set(obs.TraceHeader, hv)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, cerr.Wrap(cerr.CodeInternal, err, "sweep client: %s %s", method, absURL)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, cerr.Wrap(cerr.CodeInternal, err, "sweep client: reading %s", absURL)
	}
	return &RawResponse{Status: resp.StatusCode, Header: resp.Header, Body: raw}, nil
}

// Compile posts a raw compile request body and returns the envelope's
// job payload. The request is content-addressed server-side, so the
// retry loop's replays are idempotent: a replay of a compile the
// server already finished is a cache hit.
func (c *Client) Compile(body []byte) (json.RawMessage, error) {
	env, err := c.do(http.MethodPost, "/v1/compile", body)
	if err != nil {
		return nil, err
	}
	if env.Job == nil {
		return nil, cerr.New(cerr.CodeInternal, "sweep client: compile response missing job")
	}
	return env.Job, nil
}

// CreateSweep posts the spec and returns the initial status.
func (c *Client) CreateSweep(s Spec) (*Status, error) {
	body, err := json.Marshal(s)
	if err != nil {
		return nil, cerr.Wrap(cerr.CodeInvalidParams, err, "sweep client: encoding spec")
	}
	env, err := c.do(http.MethodPost, "/v1/sweeps", body)
	if err != nil {
		return nil, err
	}
	if env.Sweep == nil {
		return nil, cerr.New(cerr.CodeInternal, "sweep client: create response missing sweep")
	}
	return env.Sweep, nil
}

// SweepStatus fetches the aggregate + per-point status.
func (c *Client) SweepStatus(id string) (*Status, error) {
	env, err := c.do(http.MethodGet, "/v1/sweeps/"+id, nil)
	if err != nil {
		return nil, err
	}
	if env.Sweep == nil {
		return nil, cerr.New(cerr.CodeInternal, "sweep client: status response missing sweep")
	}
	return env.Sweep, nil
}

// SweepResults fetches the evaluation rows. When PageSize is set the
// fetch pages through ?offset=&limit= windows and reassembles the
// full document transparently; otherwise it is one full-document GET.
func (c *Client) SweepResults(id string) (*Results, error) {
	if c.PageSize <= 0 {
		env, err := c.do(http.MethodGet, "/v1/sweeps/"+id+"/results", nil)
		if err != nil {
			return nil, err
		}
		var res Results
		if err := json.Unmarshal(env.Data, &res); err != nil {
			return nil, cerr.Wrap(cerr.CodeInternal, err, "sweep client: results decode")
		}
		return &res, nil
	}
	var out *Results
	for offset := 0; ; {
		path := fmt.Sprintf("/v1/sweeps/%s/results?offset=%d&limit=%d", id, offset, c.PageSize)
		env, err := c.do(http.MethodGet, path, nil)
		if err != nil {
			return nil, err
		}
		var res Results
		if err := json.Unmarshal(env.Data, &res); err != nil {
			return nil, cerr.Wrap(cerr.CodeInternal, err, "sweep client: results decode")
		}
		if out == nil {
			out = &res
		} else {
			// Later pages carry fresher document-level counters; keep
			// them alongside the accumulated rows.
			rows := append(out.Rows, res.Rows...)
			*out = res
			out.Rows = rows
		}
		if env.Page == nil || env.Page.NextOffset == nil {
			return out, nil
		}
		offset = *env.Page.NextOffset
	}
}

// WaitSweep polls until the sweep leaves the running state or ctx
// expires.
func (c *Client) WaitSweep(ctx context.Context, id string, poll time.Duration) (*Status, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		st, err := c.SweepStatus(id)
		if err != nil {
			return nil, err
		}
		if st.State != "running" {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, cerr.Wrap(cerr.CodeBudgetExceeded, ctx.Err(), "sweep client: waiting for %s", id)
		case <-time.After(poll):
		}
	}
}
