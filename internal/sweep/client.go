// Client-side bindings for the sweep API. cmd/experiments uses them
// to run the paper's evaluation as a service client; the end-to-end
// smoke tests use them to drive a real daemon.
package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/cerr"
)

// WireError is the service error envelope member.
type WireError struct {
	Code    string `json:"code"`
	Stage   string `json:"stage,omitempty"`
	Message string `json:"message"`
}

// Error renders the wire error in the CLI convention (code first).
func (e *WireError) Error() string {
	if e.Stage != "" {
		return fmt.Sprintf("%s[%s]: %s", e.Code, e.Stage, e.Message)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// envelope mirrors the service's uniform /v1 response envelope.
type envelope struct {
	Sweep *Status         `json:"sweep"`
	Data  json.RawMessage `json:"data"`
	Error *WireError      `json:"error"`
}

// Client talks to a bisramgend instance.
type Client struct {
	// Base is the service root, e.g. "http://127.0.0.1:8047".
	Base string
	// HTTP is the underlying client; nil means a 30 s-timeout default.
	HTTP *http.Client
}

// NewClient builds a client for the given base URL.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// do runs one exchange and decodes the envelope, converting wire
// errors into typed errors.
func (c *Client) do(method, path string, body []byte) (*envelope, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.Base+path, rd)
	if err != nil {
		return nil, cerr.Wrap(cerr.CodeInvalidParams, err, "sweep client: bad request")
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, cerr.Wrap(cerr.CodeInternal, err, "sweep client: %s %s", method, path)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, cerr.Wrap(cerr.CodeInternal, err, "sweep client: reading %s", path)
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, cerr.Wrap(cerr.CodeInternal, err,
			"sweep client: %s %s returned non-envelope JSON (status %d)", method, path, resp.StatusCode)
	}
	if env.Error != nil {
		return nil, env.Error
	}
	if resp.StatusCode >= 400 {
		return nil, cerr.New(cerr.CodeInternal,
			"sweep client: %s %s: status %d with null error", method, path, resp.StatusCode)
	}
	return &env, nil
}

// CreateSweep posts the spec and returns the initial status.
func (c *Client) CreateSweep(s Spec) (*Status, error) {
	body, err := json.Marshal(s)
	if err != nil {
		return nil, cerr.Wrap(cerr.CodeInvalidParams, err, "sweep client: encoding spec")
	}
	env, err := c.do(http.MethodPost, "/v1/sweeps", body)
	if err != nil {
		return nil, err
	}
	if env.Sweep == nil {
		return nil, cerr.New(cerr.CodeInternal, "sweep client: create response missing sweep")
	}
	return env.Sweep, nil
}

// SweepStatus fetches the aggregate + per-point status.
func (c *Client) SweepStatus(id string) (*Status, error) {
	env, err := c.do(http.MethodGet, "/v1/sweeps/"+id, nil)
	if err != nil {
		return nil, err
	}
	if env.Sweep == nil {
		return nil, cerr.New(cerr.CodeInternal, "sweep client: status response missing sweep")
	}
	return env.Sweep, nil
}

// SweepResults fetches the evaluation rows.
func (c *Client) SweepResults(id string) (*Results, error) {
	env, err := c.do(http.MethodGet, "/v1/sweeps/"+id+"/results", nil)
	if err != nil {
		return nil, err
	}
	var res Results
	if err := json.Unmarshal(env.Data, &res); err != nil {
		return nil, cerr.Wrap(cerr.CodeInternal, err, "sweep client: results decode")
	}
	return &res, nil
}

// WaitSweep polls until the sweep leaves the running state or ctx
// expires.
func (c *Client) WaitSweep(ctx context.Context, id string, poll time.Duration) (*Status, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		st, err := c.SweepStatus(id)
		if err != nil {
			return nil, err
		}
		if st.State != "running" {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, cerr.Wrap(cerr.CodeBudgetExceeded, ctx.Err(), "sweep client: waiting for %s", id)
		case <-time.After(poll):
		}
	}
}
