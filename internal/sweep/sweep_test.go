package sweep

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/canon"
	"repro/internal/cerr"
	"repro/internal/chaos"
	"repro/internal/compiler"
	"repro/internal/jobs"
)

func baseReq() canon.Request {
	return canon.Request{Words: 256, BPW: 8, BPC: 4, Spares: 4}
}

func TestExpandCrossProduct(t *testing.T) {
	spec := Spec{
		Base: baseReq(),
		Axes: Axes{
			Spares:  []int{2, 4, 8},
			Defects: []float64{0, 5, 10},
		},
	}
	pts, err := spec.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 9 {
		t.Fatalf("expanded %d points, want 9", len(pts))
	}
	// Axis order is fixed: spares outer, defects inner.
	if pts[0].Req.Spares != 2 || pts[0].Defects != 0 {
		t.Fatalf("point 0 = %+v", pts[0])
	}
	if pts[4].Req.Spares != 4 || pts[4].Defects != 5 {
		t.Fatalf("point 4 = %+v", pts[4])
	}
	// Unswept fields keep base values.
	for _, p := range pts {
		if p.Req.Words != 256 || p.Req.BPW != 8 {
			t.Fatalf("base fields drifted: %+v", p.Req)
		}
	}
}

func TestExpandCapAndEmptyAxes(t *testing.T) {
	spec := Spec{Base: baseReq(), Axes: Axes{Spares: []int{1, 2, 3, 4}}}
	if _, err := spec.Expand(3); cerr.CodeOf(err) != cerr.CodeBadRequest {
		t.Fatalf("cap not enforced: %v", err)
	}
	// No axes at all: one point, the base itself.
	pts, err := Spec{Base: baseReq()}.Expand(0)
	if err != nil || len(pts) != 1 {
		t.Fatalf("bare base expanded to %d points (%v)", len(pts), err)
	}
	if pts[0].Req != baseReq() || pts[0].Defects != 0 {
		t.Fatalf("bare point %+v", pts[0])
	}
}

func TestParseSpecStrictAndVersioned(t *testing.T) {
	good := `{"base":{"words":256,"bpw":8,"bpc":4,"spares":4},"axes":{"spares":[2,4]}}`
	if _, err := ParseSpec([]byte(good)); err != nil {
		t.Fatal(err)
	}
	versioned := `{"version":1,"base":{"words":256,"bpw":8,"bpc":4,"spares":4},"axes":{}}`
	if _, err := ParseSpec([]byte(versioned)); err != nil {
		t.Fatal(err)
	}
	cases := []string{
		`{"version":9,"base":{"words":256,"bpw":8,"bpc":4,"spares":4}}`, // unknown version
		`{"base":{"words":256},"axen":{}}`,                              // typo'd field
		`not json`,
		`{"base":{"words":256,"bpw":8,"bpc":4,"spares":4}} trailing`,
	}
	for _, body := range cases {
		if _, err := ParseSpec([]byte(body)); cerr.CodeOf(err) != cerr.CodeBadRequest {
			t.Fatalf("%q: want ERR_BAD_REQUEST, got %v", body, err)
		}
	}
}

// fakeEntry builds a cache entry whose report carries the metrics the
// results path reads.
func fakeEntry(key string, rows, cols int, growth float64) *cache.Entry {
	var r compiler.Report
	r.Name = "fake"
	r.Organisation.Rows = rows
	r.Organisation.Columns = cols
	r.Area.GrowthFactor = growth
	r.Area.Total = 1e6
	r.Area.OverheadPct = 5
	r.Timing.AccessNs = 9.5
	b, _ := json.Marshal(r)
	return &cache.Entry{Key: key, Report: b, Artifacts: map[string][]byte{}}
}

// harness builds a manager over a real jobs queue with a fake compile
// and a map-backed store.
type harness struct {
	t     *testing.T
	q     *jobs.Queue
	m     *Manager
	mu    sync.Mutex
	store map[string]*cache.Entry
	runs  atomic.Int64
	fail  atomic.Bool
}

func newHarness(t *testing.T) *harness {
	h := &harness{t: t, store: map[string]*cache.Entry{}}
	h.q = jobs.New(jobs.Config{Workers: 2, Deadline: time.Minute})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		h.q.Shutdown(ctx)
	})
	h.m = NewManager(Config{
		Queue: h.q,
		Lookup: func(key string) (*cache.Entry, bool) {
			h.mu.Lock()
			defer h.mu.Unlock()
			e, ok := h.store[key]
			return e, ok
		},
		Run: func(ctx context.Context, key string, _ canon.Request, p compiler.Params) (*cache.Entry, error) {
			h.runs.Add(1)
			if h.fail.Load() {
				return nil, cerr.New(cerr.CodeFloorplan, "synthetic failure")
			}
			e := fakeEntry(key, p.Rows(), p.BPW*p.BPC, 1.05)
			h.mu.Lock()
			h.store[key] = e
			h.mu.Unlock()
			return e, nil
		},
	})
	return h
}

func wait(t *testing.T, sw *Sweep) {
	t.Helper()
	select {
	case <-sw.Done():
	case <-time.After(20 * time.Second):
		t.Fatalf("sweep %s did not finish", sw.ID)
	}
}

func TestManagerDedupsAnalysisAxis(t *testing.T) {
	h := newHarness(t)
	// 3 spares × 3 defects = 9 points but only 3 unique compiles.
	sw, err := h.m.Create(Spec{
		Base: baseReq(),
		Axes: Axes{Spares: []int{4, 8, 16}, Defects: []float64{0, 5, 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, sw)
	if got := h.runs.Load(); got != 3 {
		t.Fatalf("%d compiles ran, want 3 (defect axis must not trigger compiles)", got)
	}
	st := sw.Status()
	if st.State != "done" || st.Done != 9 || st.Failed != 0 {
		t.Fatalf("status %+v", st)
	}
	if st.UniqueCompiles != 3 {
		t.Fatalf("unique compiles %d", st.UniqueCompiles)
	}
	res := sw.Results()
	if !res.Complete || len(res.Rows) != 9 {
		t.Fatalf("results %+v", res)
	}
}

func TestRepeatedSweepZeroRecompiles(t *testing.T) {
	h := newHarness(t)
	spec := Spec{Base: baseReq(), Axes: Axes{Spares: []int{4, 8}}}
	sw1, err := h.m.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	wait(t, sw1)
	before := h.runs.Load()

	sw2, err := h.m.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	wait(t, sw2)
	if h.runs.Load() != before {
		t.Fatalf("repeated sweep recompiled: %d -> %d runs", before, h.runs.Load())
	}
	st := sw2.Status()
	if st.Cached != st.Total {
		t.Fatalf("repeat sweep not fully cached: %+v", st)
	}
	for _, row := range sw2.Results().Rows {
		if !row.Cached {
			t.Fatalf("row %d not marked cached", row.Index)
		}
	}
}

func TestManagerFailurePropagates(t *testing.T) {
	h := newHarness(t)
	h.fail.Store(true)
	sw, err := h.m.Create(Spec{Base: baseReq(), Axes: Axes{Spares: []int{4, 8}}})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, sw)
	st := sw.Status()
	if st.State != "failed" || st.Failed != 2 {
		t.Fatalf("status %+v", st)
	}
	for _, ps := range st.Points {
		if ps.ErrorCode != "ERR_FLOORPLAN" {
			t.Fatalf("point error code %q", ps.ErrorCode)
		}
	}
	res := sw.Results()
	if !res.Complete || res.Failed != 2 || len(res.Rows) != 0 {
		t.Fatalf("results %+v", res)
	}
}

func TestInvalidPointFailsCreation(t *testing.T) {
	h := newHarness(t)
	// words not divisible by bpc -> invalid point at expansion time.
	_, err := h.m.Create(Spec{
		Base: baseReq(),
		Axes: Axes{Words: []int{255}},
	})
	if err == nil {
		t.Fatal("invalid point accepted")
	}
	if cerr.CodeOf(err) != cerr.CodeInvalidParams {
		t.Fatalf("code %v", cerr.CodeOf(err))
	}
}

func TestResultsYieldColumns(t *testing.T) {
	h := newHarness(t)
	sw, err := h.m.Create(Spec{
		Base: baseReq(),
		Axes: Axes{Spares: []int{0, 4}, Defects: []float64{0, 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, sw)
	res := sw.Results()
	if len(res.Rows) != 4 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Defects == 0 {
			// Zero defects: yield must be ~1 for both columns.
			if row.YieldNoRepair < 0.999 || row.YieldBISR < 0.999 {
				t.Fatalf("zero-defect yields %+v", row)
			}
		} else {
			if row.YieldNoRepair <= 0 || row.YieldNoRepair >= 1 {
				t.Fatalf("no-repair yield out of range: %+v", row)
			}
			if row.Spares > 0 && row.YieldBISR <= row.YieldNoRepair {
				t.Fatalf("BISR yield must dominate no-repair at %v defects: %+v", row.Defects, row)
			}
		}
		if row.GrowthFactor != 1.05 {
			t.Fatalf("growth factor column %v", row.GrowthFactor)
		}
	}
}

func TestExpandMCAxes(t *testing.T) {
	spec := Spec{
		Base: baseReq(),
		Axes: Axes{
			Defects:   []float64{0, 5},
			MCSamples: []int{64},
			MCSigma:   []float64{0.1, 0.2},
		},
	}
	pts, err := spec.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("expanded %d points, want 4", len(pts))
	}
	// MC axes are innermost: sigma varies fastest, then samples, then
	// defects.
	want := []struct {
		defects float64
		sigma   float64
	}{{0, 0.1}, {0, 0.2}, {5, 0.1}, {5, 0.2}}
	for i, w := range want {
		if pts[i].Defects != w.defects || pts[i].Req.MCSigma != w.sigma || pts[i].Req.MCSamples != 64 {
			t.Fatalf("point %d = %+v (defects %v), want %+v", i, pts[i].Req, pts[i].Defects, w)
		}
	}
}

func TestManagerMCSharesCompileAndFillsRows(t *testing.T) {
	h := newHarness(t)
	// 2 sigmas × 1 sample count = 2 points, but the MC axes are
	// analysis-only: exactly one compile may run.
	spec := Spec{
		Base: baseReq(),
		Axes: Axes{MCSamples: []int{48}, MCSigma: []float64{0.2, 0.25}},
	}
	sw, err := h.m.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	wait(t, sw)
	if got := h.runs.Load(); got != 1 {
		t.Fatalf("%d compiles ran, want 1 (MC axes must not trigger compiles)", got)
	}
	res := sw.Results()
	if len(res.Rows) != 2 || res.Failed != 0 {
		t.Fatalf("results %+v", res)
	}
	for i, row := range res.Rows {
		if row.MC == nil {
			t.Fatalf("row %d missing MC block", i)
		}
		if row.MC.Samples != 48 || row.MC.Sigma == 0 {
			t.Fatalf("row %d MC = %+v", i, row.MC)
		}
		if row.MC.YieldCell <= 0 || row.MC.YieldCell > 1 {
			t.Fatalf("row %d cell yield %v", i, row.MC.YieldCell)
		}
		if row.MC.YieldArray > row.MC.YieldCell {
			t.Fatalf("row %d array yield %v exceeds cell yield %v",
				i, row.MC.YieldArray, row.MC.YieldCell)
		}
	}
	if res.Rows[0].MC.Sigma >= res.Rows[1].MC.Sigma {
		t.Fatalf("sigma axis order lost: %v then %v", res.Rows[0].MC.Sigma, res.Rows[1].MC.Sigma)
	}

	// The estimate is seeded: an identical sweep must reproduce the MC
	// blocks bit-identically (and recompile nothing).
	sw2, err := h.m.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	wait(t, sw2)
	if h.runs.Load() != 1 {
		t.Fatalf("repeat MC sweep recompiled (%d runs)", h.runs.Load())
	}
	res2 := sw2.Results()
	for i := range res.Rows {
		if *res.Rows[i].MC != *res2.Rows[i].MC {
			t.Fatalf("row %d MC not deterministic:\n%+v\n%+v", i, res.Rows[i].MC, res2.Rows[i].MC)
		}
	}
}

func TestManagerRowsWithoutMCOmitBlock(t *testing.T) {
	h := newHarness(t)
	sw, err := h.m.Create(Spec{Base: baseReq(), Axes: Axes{Defects: []float64{0, 5}}})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, sw)
	b, err := json.Marshal(sw.Results())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), `"mc"`) {
		t.Fatalf("MC block leaked into non-MC results: %s", b)
	}
}

func TestManagerMCInvalidKnobsFailCreation(t *testing.T) {
	h := newHarness(t)
	// samples without sigma is rejected by canon.ValidateMC at
	// expansion time, like any other invalid point.
	_, err := h.m.Create(Spec{Base: baseReq(), Axes: Axes{MCSamples: []int{64}}})
	if cerr.CodeOf(err) != cerr.CodeInvalidParams {
		t.Fatalf("err = %v, want CodeInvalidParams", err)
	}
}

func TestManagerMCChaosFailsPoint(t *testing.T) {
	h := newHarness(t)
	inj, err := chaos.Parse([]byte(`{"seed":1,"rules":[{"point":"mc.sample","mode":"error"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Config{
		Queue:  h.q,
		Lookup: func(string) (*cache.Entry, bool) { return nil, false },
		Run: func(ctx context.Context, key string, _ canon.Request, p compiler.Params) (*cache.Entry, error) {
			return fakeEntry(key, p.Rows(), p.BPW*p.BPC, 1.0), nil
		},
		Chaos: inj,
	})
	base := baseReq()
	base.MCSamples, base.MCSigma = 32, 0.2
	sw, err := m.Create(Spec{Base: base})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, sw)
	st := sw.Status()
	if st.Failed != 1 || st.State != "failed" {
		t.Fatalf("chaos-injected MC abort not surfaced: %+v", st)
	}
	if st.Points[0].ErrorCode != cerr.CodeInternal.String() {
		t.Fatalf("point error code %q", st.Points[0].ErrorCode)
	}
}

func TestManagerRetention(t *testing.T) {
	h := newHarness(t)
	m := NewManager(Config{
		Queue:  h.q,
		Lookup: func(string) (*cache.Entry, bool) { return nil, false },
		Run: func(ctx context.Context, key string, _ canon.Request, p compiler.Params) (*cache.Entry, error) {
			return fakeEntry(key, p.Rows(), p.BPW*p.BPC, 1.0), nil
		},
		Retain: 2,
	})
	var last *Sweep
	for i := 0; i < 5; i++ {
		sw, err := m.Create(Spec{Base: baseReq()})
		if err != nil {
			t.Fatal(err)
		}
		wait(t, sw)
		last = sw
	}
	if m.Count() > 2 {
		t.Fatalf("retained %d sweeps, cap 2", m.Count())
	}
	if _, ok := m.Get(last.ID); !ok {
		t.Fatal("most recent sweep evicted")
	}
	if _, ok := m.Get("sweep-000001"); ok {
		t.Fatal("oldest sweep still retained")
	}
}

func TestStatusJSONRoundTripsThroughClientTypes(t *testing.T) {
	h := newHarness(t)
	sw, err := h.m.Create(Spec{Base: baseReq(), Axes: Axes{Defects: []float64{0, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, sw)
	b, err := json.Marshal(sw.Status())
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.Total != 2 || st.ID != sw.ID {
		t.Fatalf("round trip %+v", st)
	}
	if !strings.HasPrefix(st.Points[0].Key, "") || len(st.Points[0].Key) != 64 {
		t.Fatalf("point key %q", st.Points[0].Key)
	}
}
