// Package sweep is the batch subsystem of the bisramgend service: it
// expands a base compile request plus per-axis value lists (process,
// words, bits per word, spare rows, defect density, march test) into
// the cross product of concrete sweep points, runs each unique
// compile through the shared jobs queue exactly once (points that
// differ only in analysis parameters — defect density — share one
// compile; points already resident in the two-tier artifact store
// cost zero compiles), and aggregates per-point yield/area/timing
// rows suitable for reproducing the paper's Fig. 4/5 and
// Tables II/III.
//
// The paper's evaluation is exactly this shape — yield vs defect
// density across spare-row counts, cost across processor
// configurations — which is why cmd/experiments runs as a client of
// this API.
package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/canon"
	"repro/internal/cerr"
	"repro/internal/chaos"
	"repro/internal/compiler"
	"repro/internal/jobs"
	"repro/internal/mcyield"
	"repro/internal/obs"
	"repro/internal/tech"
	"repro/internal/yield"
)

// DefaultMaxPoints bounds the expanded cross product of one sweep.
const DefaultMaxPoints = 4096

// DefaultRetain bounds how many sweeps the manager remembers
// (oldest finished sweeps are forgotten first).
const DefaultRetain = 256

// Axes lists the swept dimensions. An empty axis means "the base
// request's value". Defects is an analysis axis: it selects the
// defect counts the yield model is evaluated at and never affects the
// compile (points differing only in defects share one compile).
// MCSamples and MCSigma are analysis axes in the same sense: they
// select seeded Monte-Carlo statistical-yield runs (internal/mcyield)
// over the compiled design, so every MC variant of a point shares the
// one compile too.
type Axes struct {
	Process   []string  `json:"process,omitempty"`
	Words     []int     `json:"words,omitempty"`
	Bits      []int     `json:"bits,omitempty"` // bits per word (bpw)
	Spares    []int     `json:"spares,omitempty"`
	Defects   []float64 `json:"defects,omitempty"`
	Tests     []string  `json:"test,omitempty"`
	MCSamples []int     `json:"mc_samples,omitempty"`
	MCSigma   []float64 `json:"mc_sigma,omitempty"`
}

// Spec is the POST /v1/sweeps wire form.
type Spec struct {
	// Version is the sweep wire-format version; 0 defaults to
	// canon.WireVersion, anything else must equal it.
	Version int `json:"version,omitempty"`
	// Base is the compile request every point starts from.
	Base canon.Request `json:"base"`
	// Axes are the swept dimensions.
	Axes Axes `json:"axes"`
	// Priority is the jobs queue class for the sweep's compiles;
	// empty defaults to "batch" so sweeps yield to interactive
	// traffic.
	Priority string `json:"priority,omitempty"`
}

// ParseSpec decodes the sweep wire form strictly (unknown fields and
// trailing garbage rejected) and validates the version.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, cerr.Wrap(cerr.CodeBadRequest, err, "sweep: bad spec JSON")
	}
	if dec.More() {
		return Spec{}, cerr.New(cerr.CodeBadRequest, "sweep: trailing data after spec JSON")
	}
	if s.Version != 0 && s.Version != canon.WireVersion {
		return Spec{}, cerr.New(cerr.CodeBadRequest,
			"sweep: unsupported spec version %d (this server speaks version %d)",
			s.Version, canon.WireVersion)
	}
	return s, nil
}

// Point is one expanded sweep coordinate: a concrete compile request
// plus the analysis defect count.
type Point struct {
	Req     canon.Request
	Defects float64
}

// Expand returns the cross product of the spec's axes over its base
// request, bounded by maxPoints. Axis order (process, words, bits,
// spares, test, defects, mc_samples, mc_sigma) fixes the point
// indexing, so identical specs always enumerate identically; the MC
// axes are innermost so adding them never reorders a pre-existing
// sweep's points.
func (s Spec) Expand(maxPoints int) ([]Point, error) {
	if maxPoints <= 0 {
		maxPoints = DefaultMaxPoints
	}
	procs := s.Axes.Process
	if len(procs) == 0 {
		procs = []string{s.Base.Process} // "" keeps the base/default deck
	}
	words := s.Axes.Words
	if len(words) == 0 {
		words = []int{s.Base.Words}
	}
	bits := s.Axes.Bits
	if len(bits) == 0 {
		bits = []int{s.Base.BPW}
	}
	spares := s.Axes.Spares
	if len(spares) == 0 {
		spares = []int{s.Base.Spares}
	}
	tests := s.Axes.Tests
	if len(tests) == 0 {
		tests = []string{s.Base.Test} // "" keeps the base march/test
	}
	defects := s.Axes.Defects
	if len(defects) == 0 {
		defects = []float64{0}
	}
	mcSamples := s.Axes.MCSamples
	if len(mcSamples) == 0 {
		mcSamples = []int{s.Base.MCSamples}
	}
	mcSigma := s.Axes.MCSigma
	if len(mcSigma) == 0 {
		mcSigma = []float64{s.Base.MCSigma}
	}

	// Multiply the axis lengths with the cap checked at every step: a
	// single unchecked product could overflow int on adversarial specs
	// and turn the cap test into a negative-capacity panic.
	n := 1
	for _, l := range []int{len(procs), len(words), len(bits), len(spares), len(tests), len(defects), len(mcSamples), len(mcSigma)} {
		n *= l
		if n > maxPoints {
			return nil, cerr.New(cerr.CodeBadRequest,
				"sweep: cross product exceeds the per-sweep cap of %d points", maxPoints)
		}
	}
	if n == 0 {
		return nil, cerr.New(cerr.CodeBadRequest, "sweep: empty cross product")
	}
	out := make([]Point, 0, n)
	for _, pr := range procs {
		for _, w := range words {
			for _, b := range bits {
				for _, sp := range spares {
					for _, ts := range tests {
						for _, df := range defects {
							for _, ms := range mcSamples {
								for _, mg := range mcSigma {
									req := s.Base
									if pr != "" {
										req.Process, req.Deck = pr, ""
									}
									if w != 0 {
										req.Words = w
									}
									if b != 0 {
										req.BPW = b
									}
									req.Spares = sp
									if ts != "" {
										req.Test, req.March = ts, ""
									}
									req.MCSamples = ms
									req.MCSigma = mg
									out = append(out, Point{Req: req, Defects: df})
								}
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// pointState is a point's lifecycle position.
type pointState int32

const (
	pointPending pointState = iota
	pointDone
	pointFailed
)

// Metrics are the per-compile figures a sweep row derives from the
// cached datasheet report.
type Metrics struct {
	Rows         int
	Cols         int
	GrowthFactor float64
	AreaTotalMm2 float64
	OverheadPct  float64
	AccessNs     float64
	Degraded     bool
}

// MetricsFromEntry extracts the sweep metrics from a cached compile
// entry's canonical report.
func MetricsFromEntry(e *cache.Entry) (Metrics, error) {
	var r compiler.Report
	if err := json.Unmarshal(e.Report, &r); err != nil {
		return Metrics{}, cerr.Wrap(cerr.CodeInternal, err, "sweep: report parse")
	}
	return Metrics{
		Rows:         r.Organisation.Rows,
		Cols:         r.Organisation.Columns,
		GrowthFactor: r.Area.GrowthFactor,
		AreaTotalMm2: r.Area.Total / 1e6,
		OverheadPct:  r.Area.OverheadPct,
		AccessNs:     r.Timing.AccessNs,
		Degraded:     len(r.Degradations) > 0,
	}, nil
}

// point is the manager's per-point record.
type point struct {
	index   int
	req     canon.Request // normalized
	defects float64
	key     string
	spares  int

	state   pointState
	cached  bool
	err     error
	metrics Metrics
	mc      *MCRow // statistical-yield verdict, when the point asked for one
}

// group is one unique compile shared by 1..n points.
type group struct {
	key    string
	params compiler.Params
	// req is the normalized wire request producing key — what a
	// federated Run forwards to the owning shard instead of compiling
	// locally.
	req    canon.Request
	points []*point
	job    *jobs.Job // nil when served from the store
}

// Sweep is one tracked batch. Fields set at creation are immutable;
// mutable state is guarded by mu.
type Sweep struct {
	ID      string
	created time.Time
	spec    Spec

	// feed is the bounded live-progress event log (see events.go),
	// sized at creation to hold every point transition.
	feed *feed

	mu      sync.Mutex
	points  []*point
	groups  []*group
	pending int // points not yet terminal
	// transient marks that at least one point failed with a retryable
	// shed/drain error: the journal record is retained for resume.
	transient bool
	done      chan struct{}
}

// Done is closed when every point is terminal.
func (sw *Sweep) Done() <-chan struct{} { return sw.done }

// PointStatus is one point's slot in the status document.
type PointStatus struct {
	Index     int     `json:"index"`
	Key       string  `json:"key"`
	JobID     string  `json:"job_id,omitempty"`
	Status    string  `json:"status"` // pending | queued | running | done | failed
	Cached    bool    `json:"cached,omitempty"`
	Error     string  `json:"error,omitempty"`
	ErrorCode string  `json:"error_code,omitempty"`
	Words     int     `json:"words"`
	BPW       int     `json:"bpw"`
	BPC       int     `json:"bpc"`
	Spares    int     `json:"spares"`
	Process   string  `json:"process"`
	Test      string  `json:"test"`
	Defects   float64 `json:"defects"`
}

// Status is the GET /v1/sweeps/{id} document: aggregate progress plus
// per-point status.
type Status struct {
	ID             string        `json:"id"`
	State          string        `json:"state"` // running | done | failed
	Total          int           `json:"total"`
	Pending        int           `json:"pending"`
	Done           int           `json:"done"`
	Failed         int           `json:"failed"`
	Cached         int           `json:"cached"`
	UniqueCompiles int           `json:"unique_compiles"`
	CreatedAt      string        `json:"created_at"`
	Points         []PointStatus `json:"points"`
}

// Row is one results row — the columns Fig. 4/5 and Tables II/III
// derive from: the compiled array's measured growth factor, area and
// access time, plus the yield model evaluated at the point's defect
// count (no-repair baseline and BISR, as the paper plots them).
type Row struct {
	Index         int     `json:"index"`
	Words         int     `json:"words"`
	BPW           int     `json:"bpw"`
	BPC           int     `json:"bpc"`
	Spares        int     `json:"spares"`
	Process       string  `json:"process"`
	Test          string  `json:"test"`
	Defects       float64 `json:"defects"`
	GrowthFactor  float64 `json:"growth_factor"`
	AreaTotalMm2  float64 `json:"area_total_mm2"`
	OverheadPct   float64 `json:"overhead_pct"`
	AccessNs      float64 `json:"access_ns"`
	YieldNoRepair float64 `json:"yield_no_repair"`
	YieldBISR     float64 `json:"yield_bisr"`
	Improvement   float64 `json:"improvement"`
	Cached        bool    `json:"cached"`
	Degraded      bool    `json:"degraded,omitempty"`
	// MC carries the seeded Monte-Carlo statistical-yield estimate for
	// points that set mc_samples/mc_sigma; absent otherwise.
	MC *MCRow `json:"mc,omitempty"`
}

// MCRow is the statistical-yield block of a results row: the
// parametric (variation-driven) failure view that complements the
// defect-driven closed-form yield columns. YieldArray is the
// probability every cell of this point's array works, so comparing it
// against YieldNoRepair on the same row puts the Monte-Carlo and
// closed-form models side by side.
type MCRow struct {
	Samples    int     `json:"samples"`
	Sigma      float64 `json:"sigma"`
	Seed       int64   `json:"seed"`
	FailProb   float64 `json:"fail_prob"`
	StdErr     float64 `json:"std_err"`
	SigmaLevel float64 `json:"sigma_level"`
	HoldFails  int     `json:"hold_fails"`
	ReadFails  int     `json:"read_fails"`
	WriteFails int     `json:"write_fails"`
	Diverged   int     `json:"diverged"`
	YieldCell  float64 `json:"yield_cell"`
	YieldArray float64 `json:"yield_array"`
}

// Results is the GET /v1/sweeps/{id}/results document. Rows cover
// terminal successful points only; Complete is true once every point
// is terminal.
type Results struct {
	SweepID  string `json:"sweep_id"`
	Complete bool   `json:"complete"`
	Total    int    `json:"total"`
	Failed   int    `json:"failed"`
	Rows     []Row  `json:"rows"`
}

// Page is the pagination metadata a paged results response carries in
// its envelope: the window served, the total row count, and the offset
// of the next page (absent on the last page).
type Page struct {
	Offset     int  `json:"offset"`
	Limit      int  `json:"limit"`
	Total      int  `json:"total"`
	NextOffset *int `json:"next_offset,omitempty"`
}

// Paginate returns a copy of r restricted to rows [offset,
// offset+limit) plus the matching page metadata. limit <= 0 means "to
// the end"; an offset at or past the row count yields an empty page.
// The document-level counters (Total, Failed, Complete) always
// describe the whole sweep, not the window.
func (r Results) Paginate(offset, limit int) (Results, Page) {
	n := len(r.Rows)
	if offset < 0 {
		offset = 0
	}
	if offset > n {
		offset = n
	}
	end := n
	if limit > 0 && offset+limit < n {
		end = offset + limit
	}
	pg := Page{Offset: offset, Limit: end - offset, Total: n}
	if end < n {
		next := end
		pg.NextOffset = &next
	}
	out := r
	out.Rows = r.Rows[offset:end]
	return out, pg
}

// Config wires a Manager. Lookup and Run are the seams to the serving
// layer: Lookup probes the two-tier artifact cache without compiling;
// Run executes one compile under the jobs queue — the daemon's
// pipeline + render + cache fill, or (on the gateway) a proxied
// compile against the key's owning shard, which is why Run also
// receives the normalized wire request alongside the derived params.
type Config struct {
	Queue  *jobs.Queue
	Lookup func(key string) (*cache.Entry, bool)
	Run    func(ctx context.Context, key string, req canon.Request, p compiler.Params) (*cache.Entry, error)
	// OnJob, when non-nil, observes every job the manager submits
	// (the server uses it to make sweep jobs visible on /v1/jobs).
	OnJob func(j *jobs.Job, key string)
	// Registry receives the sweep counters; nil disables telemetry.
	Registry *obs.Registry
	// MaxPoints caps one sweep's cross product; <= 0 means
	// DefaultMaxPoints.
	MaxPoints int
	// Retain caps remembered sweeps; <= 0 means DefaultRetain.
	Retain int
	// Journal, when non-nil, checkpoints sweeps to disk: the spec is
	// written before any group launches, each completed group leaves a
	// done marker, and a cleanly-finished sweep removes its record. A
	// sweep that ends with transiently-failed points (shed or drained
	// compiles) keeps its record so Resume can finish it after a
	// restart.
	Journal *Journal
	// Chaos, when non-nil, is threaded into the Monte-Carlo yield
	// engine so fault-injection configs can abort mc.sample chunks.
	Chaos *chaos.Injector
}

// Manager owns the sweep registry and drives point execution.
type Manager struct {
	cfg Config

	mu     sync.Mutex
	sweeps map[string]*Sweep
	order  []string // creation order, for retention
	nextID uint64

	created      *obs.Counter
	pointsTotal  *obs.Counter
	pointsCached *obs.Counter
	pointsFailed *obs.Counter

	// mcStats instruments the Monte-Carlo yield engine; mcMu/mcMemo
	// memoize estimates across points and sweeps — the estimate is a
	// pure function of (process, samples, sigma, seed), so every array
	// geometry sharing a process reuses one cell-level run. Holding
	// mcMu across the estimate also collapses concurrent identical
	// requests from racing group-finish goroutines into one run.
	mcStats *mcyield.Stats
	mcMu    sync.Mutex
	mcMemo  map[string]mcyield.Result
}

// mcMemoCap bounds the memo map; at the cap the map resets rather
// than evicting (estimates are cheap enough to recompute).
const mcMemoCap = 512

// NewManager builds a manager.
func NewManager(cfg Config) *Manager {
	if cfg.MaxPoints <= 0 {
		cfg.MaxPoints = DefaultMaxPoints
	}
	if cfg.Retain <= 0 {
		cfg.Retain = DefaultRetain
	}
	m := &Manager{cfg: cfg, sweeps: map[string]*Sweep{}, mcMemo: map[string]mcyield.Result{}}
	r := cfg.Registry
	m.mcStats = mcyield.NewStats(r)
	m.created = r.Counter("sweeps_created_total", "Sweeps accepted by POST /v1/sweeps.")
	m.pointsTotal = r.Counter("sweep_points_total", "Sweep points expanded across all sweeps.")
	m.pointsCached = r.Counter("sweep_points_cached_total",
		"Sweep points satisfied from the artifact store without a compile.")
	m.pointsFailed = r.Counter("sweep_points_failed_total", "Sweep points whose compile failed.")
	return m
}

// Create expands, validates and launches a sweep: every point is
// resolved to its content key, points sharing a key form one group,
// groups already resident in the artifact store finish immediately
// (zero compiles), and the rest are submitted to the jobs queue —
// which itself dedups against identical in-flight compiles from any
// other submitter.
func (m *Manager) Create(spec Spec) (*Sweep, error) {
	return m.create(spec, "")
}

// Resume re-launches every journaled sweep that never completed,
// keeping its original ID. Finished groups replay through the
// content-addressed Lookup (their entries are durably in the store —
// the done marker is written only after the store put), so resumed
// sweeps converge to byte-identical results with zero recompiles of
// journaled points. Returns how many sweeps resumed.
func (m *Manager) Resume() (int, error) {
	if m.cfg.Journal == nil {
		return 0, nil
	}
	recs, err := m.cfg.Journal.Pending()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, rec := range recs {
		if _, ok := m.Get(rec.ID); ok {
			continue // already live in this process
		}
		if _, cerr := m.create(rec.Spec, rec.ID); cerr != nil {
			// The journaled spec no longer validates (e.g. a wire-version
			// bump across the restart): it can never resume, so drop the
			// record instead of retrying it forever.
			m.cfg.Journal.Complete(rec.ID)
			continue
		}
		n++
	}
	return n, nil
}

// create is Create with an optional forced ID (the resume path reuses
// journaled IDs; fresh sweeps allocate the next one).
func (m *Manager) create(spec Spec, forcedID string) (*Sweep, error) {
	if spec.Version != 0 && spec.Version != canon.WireVersion {
		return nil, cerr.New(cerr.CodeBadRequest,
			"sweep: unsupported spec version %d", spec.Version)
	}
	pri, err := parsePriority(spec.Priority)
	if err != nil {
		return nil, err
	}
	raw, err := spec.Expand(m.cfg.MaxPoints)
	if err != nil {
		return nil, err
	}

	sw := &Sweep{
		created: time.Now(),
		spec:    spec,
		done:    make(chan struct{}),
	}
	byKey := map[string]*group{}
	for i, rp := range raw {
		params, perr := rp.Req.Params()
		if perr != nil {
			return nil, cerr.Wrap(cerr.CodeOf(perr), perr, "sweep: point %d invalid", i)
		}
		key, kerr := canon.KeyOfParams(params)
		if kerr != nil {
			return nil, kerr
		}
		pt := &point{
			index:   i,
			req:     rp.Req.Normalized(),
			defects: rp.Defects,
			key:     key,
			spares:  rp.Req.Spares,
		}
		sw.points = append(sw.points, pt)
		g, ok := byKey[key]
		if !ok {
			g = &group{key: key, params: params, req: pt.req}
			byKey[key] = g
			sw.groups = append(sw.groups, g)
		}
		g.points = append(g.points, pt)
	}
	sw.pending = len(sw.points)

	m.mu.Lock()
	if forcedID != "" {
		sw.ID = forcedID
		// Keep fresh IDs ahead of every resumed one so they never
		// collide.
		var seq uint64
		if _, serr := fmt.Sscanf(forcedID, "sweep-%d", &seq); serr == nil && seq > m.nextID {
			m.nextID = seq
		}
	} else {
		m.nextID++
		sw.ID = fmt.Sprintf("sweep-%06d", m.nextID)
	}
	// Two numbered events per point (started + terminal) plus the
	// terminal summary: the bound that makes the feed drop-free for
	// the sweep's whole lifetime. Assigned before the sweep becomes
	// visible so a racing events subscriber never sees a nil feed.
	sw.feed = newFeed(sw.ID, 2*len(sw.points)+16)
	m.sweeps[sw.ID] = sw
	m.order = append(m.order, sw.ID)
	m.retainLocked()
	m.mu.Unlock()
	m.created.Inc()
	m.pointsTotal.Add(uint64(len(sw.points)))

	// Write-ahead: the journal record lands before any group launches,
	// so a crash at any later instant can resume the whole sweep.
	// Journal IO failure is logged by omission (the sweep still runs,
	// it just loses its resume guarantee) rather than failing creation.
	m.cfg.Journal.Begin(sw.ID, spec)

	// Launch the groups. Store hits finish synchronously; misses go
	// through the queue with one waiter goroutine per group.
	for _, g := range sw.groups {
		if entry, ok := m.cfg.Lookup(g.key); ok {
			m.finishGroup(sw, g, entry, nil, true)
			continue
		}
		g := g
		params := g.params
		key := g.key
		req := g.req
		job, _, serr := m.cfg.Queue.Submit(key, pri, func(ctx context.Context) (any, error) {
			return m.cfg.Run(ctx, key, req, params)
		})
		if serr != nil {
			// Queue full or draining: the whole group fails (the sweep
			// as a unit stays useful — other groups proceed).
			m.finishGroup(sw, g, nil, serr, false)
			continue
		}
		sw.mu.Lock()
		g.job = job
		sw.mu.Unlock()
		for _, pt := range g.points {
			sw.feed.emit(Event{Type: "point", Point: &PointEvent{
				Index: pt.index, Key: pt.key, Status: "started",
			}})
		}
		if m.cfg.OnJob != nil {
			m.cfg.OnJob(job, key)
		}
		go func() {
			v, jerr := job.Result(context.Background())
			if jerr != nil {
				m.finishGroup(sw, g, nil, jerr, false)
				return
			}
			m.finishGroup(sw, g, v.(*cache.Entry), nil, false)
		}()
	}
	return sw, nil
}

// parsePriority maps the sweep wire priority (default batch) onto the
// jobs classes.
func parsePriority(s string) (jobs.Priority, error) {
	if s == "" {
		return jobs.Batch, nil
	}
	return jobs.ParsePriority(s)
}

// finishGroup marks every point of g terminal with the given outcome,
// checkpoints the completion in the journal, and — once the whole
// sweep is terminal — either completes the journal record (clean
// finish) or retains it for resume (a shed or drained group means the
// sweep was cut short by overload/shutdown, not by its own inputs).
func (m *Manager) finishGroup(sw *Sweep, g *group, entry *cache.Entry, err error, cached bool) {
	var met Metrics
	if err == nil {
		met, err = MetricsFromEntry(entry)
	}
	if err == nil {
		// The entry is durably in the artifact store before the job
		// completes, so the marker's invariant (marker => store hit on
		// resume) holds.
		m.cfg.Journal.MarkDone(sw.ID, g.key)
	}
	// Statistical yield runs after the compile succeeds but before the
	// sweep lock: estimates cost real CPU time, and other groups must
	// stay free to finish concurrently. A per-point MC failure fails
	// just that point; the group's compile result still serves the
	// rest.
	var mcRows map[*point]*MCRow
	var mcErrs map[*point]error
	if err == nil {
		mcRows, mcErrs = m.mcForGroup(g, met)
	}
	sw.mu.Lock()
	for _, pt := range g.points {
		if pt.state != pointPending {
			continue
		}
		perr := err
		if perr == nil {
			perr = mcErrs[pt]
		}
		pe := PointEvent{Index: pt.index, Key: pt.key}
		if perr != nil {
			pt.state = pointFailed
			pt.err = perr
			m.pointsFailed.Inc()
			if transientFailure(perr) {
				sw.transient = true
			}
			pe.Status = "failed"
			pe.Error = perr.Error()
			pe.ErrorCode = cerr.CodeOf(perr).String()
		} else {
			pt.state = pointDone
			pt.cached = cached
			pt.metrics = met
			pt.mc = mcRows[pt]
			if cached {
				m.pointsCached.Inc()
			}
			pe.Status = "completed"
			if cached {
				pe.Status = "cached"
				pe.Cached = true
			}
		}
		sw.pending--
		sw.feed.emit(Event{Type: "point", Point: &pe})
	}
	finished := sw.pending == 0
	transient := sw.transient
	if finished {
		// Emitted under sw.mu so the terminal summary is always the
		// feed's last numbered event, after every point's terminal frame.
		sum := sw.summaryLocked()
		sw.feed.emit(Event{Type: "summary", Summary: &sum})
	}
	sw.mu.Unlock()
	if finished {
		close(sw.done)
		if !transient {
			m.cfg.Journal.Complete(sw.ID)
		}
	}
}

// mcForGroup runs the Monte-Carlo yield engine for every point of g
// that asked for it, returning per-point rows and errors. Runs
// unlocked — estimates take real CPU time — and is idempotent, so
// racing callers at worst recompute a memo hit.
func (m *Manager) mcForGroup(g *group, met Metrics) (map[*point]*MCRow, map[*point]error) {
	var rows map[*point]*MCRow
	var errs map[*point]error
	for _, pt := range g.points {
		if !pt.req.MCEnabled() {
			continue
		}
		res, err := m.mcEstimate(g.params.Process, pt.req)
		if err != nil {
			if errs == nil {
				errs = map[*point]error{}
			}
			errs[pt] = cerr.Wrap(cerr.CodeOf(err), err, "sweep: point %d statistical yield", pt.index)
			continue
		}
		if rows == nil {
			rows = map[*point]*MCRow{}
		}
		rows[pt] = &MCRow{
			Samples: res.Samples, Sigma: res.Sigma, Seed: res.Seed,
			FailProb: res.FailProb, StdErr: res.StdErr, SigmaLevel: res.SigmaLevel,
			HoldFails: res.HoldFails, ReadFails: res.ReadFails,
			WriteFails: res.WriteFails, Diverged: res.Diverged,
			YieldCell:  res.CellYield(),
			YieldArray: mcyield.ArrayYield(res.FailProb, met.Rows*met.Cols),
		}
	}
	return rows, errs
}

// mcEstimate memoizes mcyield.Estimate on (process identity, samples,
// sigma, seed) — the full determinism contract — so every geometry
// sharing a process reuses one cell-level run. Only successes
// memoize: a chaos-injected abort must not poison later estimates.
func (m *Manager) mcEstimate(proc *tech.Process, req canon.Request) (mcyield.Result, error) {
	key := fmt.Sprintf("%s\x00%s\x00%s\x00%d\x00%g\x00%d",
		req.Deck, req.Process, req.Corner, req.MCSamples, req.MCSigma, req.MCSeed)
	m.mcMu.Lock()
	defer m.mcMu.Unlock()
	if res, ok := m.mcMemo[key]; ok {
		return res, nil
	}
	res, err := mcyield.Estimate(context.Background(), mcyield.Config{
		Process: proc,
		Samples: req.MCSamples,
		Sigma:   req.MCSigma,
		Shift:   mcyield.DefaultShift,
		Seed:    req.MCSeed,
		Chaos:   m.cfg.Chaos,
		Stats:   m.mcStats,
	})
	if err != nil {
		return mcyield.Result{}, err
	}
	if len(m.mcMemo) >= mcMemoCap {
		m.mcMemo = map[string]mcyield.Result{}
	}
	m.mcMemo[key] = res
	return res, nil
}

// transientFailure classifies errors that a restart (or a retry)
// would plausibly clear: shed load and drain/deadline cancellations.
// Deterministic input failures (bad params, repair unsuccessful,
// diverged simulation) are final — resuming would just re-fail them.
func transientFailure(err error) bool {
	switch cerr.CodeOf(err) {
	case cerr.CodeOverloaded, cerr.CodeBudgetExceeded:
		return true
	}
	return false
}

// retainLocked forgets the oldest finished sweeps beyond the
// retention cap. Caller holds m.mu.
func (m *Manager) retainLocked() {
	for len(m.order) > m.cfg.Retain {
		evicted := false
		for i, id := range m.order {
			sw := m.sweeps[id]
			sw.mu.Lock()
			fin := sw.pending == 0
			sw.mu.Unlock()
			if fin {
				delete(m.sweeps, id)
				m.order = append(m.order[:i], m.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything retained is still running
		}
	}
}

// Get resolves a sweep by id.
func (m *Manager) Get(id string) (*Sweep, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sw, ok := m.sweeps[id]
	return sw, ok
}

// Count returns how many sweeps the manager currently retains.
func (m *Manager) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sweeps)
}

// Backlog is the /healthz view of sweep resume debt: what a restart
// right now would owe.
type Backlog struct {
	// InFlightSweeps counts sweeps with at least one pending point.
	InFlightSweeps int `json:"in_flight_sweeps"`
	// PendingPoints counts points not yet terminal across all sweeps.
	PendingPoints int `json:"pending_points"`
	// UnjournaledPoints is the pending work a restart would lose
	// outright: equal to PendingPoints when no journal is configured
	// (nothing is durable), 0 otherwise — every journaled sweep has a
	// write-ahead record, so its pending points resume instead of
	// vanishing.
	UnjournaledPoints int `json:"unjournaled_points"`
}

// Backlog snapshots the manager's in-flight sweep debt for health
// reporting.
func (m *Manager) Backlog() Backlog {
	m.mu.Lock()
	sweeps := make([]*Sweep, 0, len(m.sweeps))
	for _, sw := range m.sweeps {
		sweeps = append(sweeps, sw)
	}
	m.mu.Unlock()
	var b Backlog
	for _, sw := range sweeps {
		sw.mu.Lock()
		pending := sw.pending
		sw.mu.Unlock()
		if pending > 0 {
			b.InFlightSweeps++
			b.PendingPoints += pending
		}
	}
	if m.cfg.Journal == nil {
		b.UnjournaledPoints = b.PendingPoints
	}
	return b
}

// Status snapshots the sweep.
func (sw *Sweep) Status() Status {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	st := Status{
		ID:             sw.ID,
		Total:          len(sw.points),
		UniqueCompiles: len(sw.groups),
		CreatedAt:      sw.created.UTC().Format(time.RFC3339Nano),
	}
	jobByKey := map[string]*jobs.Job{}
	for _, g := range sw.groups {
		if g.job != nil {
			jobByKey[g.key] = g.job
		}
	}
	for _, pt := range sw.points {
		ps := PointStatus{
			Index: pt.index, Key: pt.key,
			Words: pt.req.Words, BPW: pt.req.BPW, BPC: pt.req.BPC,
			Spares: pt.spares, Process: describeProcess(pt.req),
			Test: describeTest(pt.req), Defects: pt.defects,
			Cached: pt.cached,
		}
		if j := jobByKey[pt.key]; j != nil {
			ps.JobID = j.ID
		}
		switch pt.state {
		case pointDone:
			ps.Status = "done"
			st.Done++
			if pt.cached {
				st.Cached++
			}
		case pointFailed:
			ps.Status = "failed"
			ps.Error = pt.err.Error()
			ps.ErrorCode = cerr.CodeOf(pt.err).String()
			st.Failed++
		default:
			st.Pending++
			ps.Status = "queued"
			if j := jobByKey[pt.key]; j != nil && j.State() == jobs.StateRunning {
				ps.Status = "running"
			}
		}
		st.Points = append(st.Points, ps)
	}
	switch {
	case st.Pending > 0:
		st.State = "running"
	case st.Failed == st.Total:
		st.State = "failed"
	default:
		st.State = "done"
	}
	return st
}

// describeProcess names the point's process for status/result rows.
func describeProcess(r canon.Request) string {
	if r.Deck != "" {
		return "inline-deck"
	}
	return r.Process
}

// describeTest names the point's march test.
func describeTest(r canon.Request) string {
	if r.March != "" {
		return "custom"
	}
	return r.Test
}

// Results derives the evaluation rows from the terminal points: the
// measured growth factor feeds the yield model at the point's defect
// count, exactly as Fig. 4 builds its curves from compiled layouts.
func (sw *Sweep) Results() Results {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	res := Results{
		SweepID:  sw.ID,
		Complete: sw.pending == 0,
		Total:    len(sw.points),
	}
	for _, pt := range sw.points {
		switch pt.state {
		case pointFailed:
			res.Failed++
			continue
		case pointPending:
			continue
		}
		met := pt.metrics
		row := Row{
			Index: pt.index,
			Words: pt.req.Words, BPW: pt.req.BPW, BPC: pt.req.BPC,
			Spares: pt.spares, Process: describeProcess(pt.req),
			Test: describeTest(pt.req), Defects: pt.defects,
			GrowthFactor: met.GrowthFactor,
			AreaTotalMm2: met.AreaTotalMm2,
			OverheadPct:  met.OverheadPct,
			AccessNs:     met.AccessNs,
			Cached:       pt.cached,
			Degraded:     met.Degraded,
		}
		base := yield.Model{Rows: met.Rows, Cols: met.Cols, GrowthFactor: 1}
		row.YieldNoRepair = base.YieldNoRepair(pt.defects)
		if pt.spares > 0 {
			m := yield.Model{
				Rows: met.Rows, Cols: met.Cols,
				Spares: pt.spares, GrowthFactor: met.GrowthFactor,
			}
			row.YieldBISR = m.YieldBISR(pt.defects)
			row.Improvement = m.ImprovementFactor(pt.defects)
		} else {
			row.YieldBISR = row.YieldNoRepair
			row.Improvement = 1
		}
		row.MC = pt.mc
		res.Rows = append(res.Rows, row)
	}
	return res
}
