// Live sweep progress: a bounded per-sweep event feed, its SSE
// rendering (GET /v1/sweeps/{id}/events on both the shard and the
// gateway), and the client-side watcher.
//
// Every point transition appends one numbered event to the sweep's
// feed: "started" when its compile is submitted, then exactly one
// terminal "completed" / "cached" / "failed". When the last point
// lands, a numbered terminal summary event closes the feed. Numbered
// events are replayable by cursor (`?from=` / Last-Event-ID), so a
// subscriber that connects late — or reconnects after a drop — still
// sees every point exactly once. The feed is bounded, but its cap is
// sized to the sweep (two events per point plus the summary), so in
// practice nothing is evicted before the retention layer drops the
// whole sweep.
package sweep

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cerr"
)

// DefaultEventHeartbeat is the SSE keep-alive cadence when the server
// configuration leaves it zero.
const DefaultEventHeartbeat = 10 * time.Second

// Event is one frame on a sweep's event stream. Numbered events
// (Seq > 0) are the replayable record; live summary frames synthesized
// per heartbeat carry Seq 0 and are advisory.
type Event struct {
	Seq     int           `json:"seq,omitempty"`
	Type    string        `json:"type"` // "point" | "summary"
	SweepID string        `json:"sweep_id"`
	Point   *PointEvent   `json:"point,omitempty"`
	Summary *SummaryEvent `json:"summary,omitempty"`
}

// PointEvent describes one point transition.
type PointEvent struct {
	Index     int    `json:"index"`
	Key       string `json:"key"`
	Status    string `json:"status"` // started | completed | cached | failed
	Cached    bool   `json:"cached,omitempty"`
	Error     string `json:"error,omitempty"`
	ErrorCode string `json:"error_code,omitempty"`
}

// SummaryEvent is an aggregate progress frame. Terminal marks the
// sweep's final summary — the stream ends after it.
type SummaryEvent struct {
	State    string `json:"state"` // running | done | failed
	Total    int    `json:"total"`
	Pending  int    `json:"pending"`
	Done     int    `json:"done"`
	Failed   int    `json:"failed"`
	Cached   int    `json:"cached"`
	Terminal bool   `json:"terminal"`
}

// feed is the per-sweep bounded event log plus subscriber wakeups.
type feed struct {
	mu       sync.Mutex
	sweepID  string
	max      int
	firstSeq int // Seq of events[0]; grows only under eviction
	nextSeq  int
	events   []Event
	subs     map[chan struct{}]struct{}
}

func newFeed(sweepID string, max int) *feed {
	if max < 16 {
		max = 16
	}
	return &feed{sweepID: sweepID, max: max, firstSeq: 1, subs: map[chan struct{}]struct{}{}}
}

// emit numbers and appends ev, evicting the oldest frame past the
// cap, then wakes every subscriber (non-blocking — each subscriber
// channel has capacity 1, a pending wakeup is wakeup enough).
func (f *feed) emit(ev Event) {
	f.mu.Lock()
	f.nextSeq++
	ev.Seq = f.nextSeq
	ev.SweepID = f.sweepID
	f.events = append(f.events, ev)
	if len(f.events) > f.max {
		drop := len(f.events) - f.max
		f.events = append([]Event(nil), f.events[drop:]...)
		f.firstSeq += drop
	}
	for ch := range f.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	f.mu.Unlock()
}

// since returns a copy of the numbered events with Seq > after. A
// cursor older than the retained window restarts at the window edge.
func (f *feed) since(after int) []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	idx := after - f.firstSeq + 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(f.events) {
		return nil
	}
	return append([]Event(nil), f.events[idx:]...)
}

// subscribe registers a wakeup channel; the returned cancel must be
// called exactly once.
func (f *feed) subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	f.mu.Lock()
	f.subs[ch] = struct{}{}
	f.mu.Unlock()
	return ch, func() {
		f.mu.Lock()
		delete(f.subs, ch)
		f.mu.Unlock()
	}
}

// EventsSince returns the sweep's numbered events with Seq > after —
// the cursor-replay primitive behind `?from=` and Last-Event-ID.
func (sw *Sweep) EventsSince(after int) []Event {
	return sw.feed.since(after)
}

// NotifyEvents subscribes to event-arrival wakeups. Call cancel when
// done listening.
func (sw *Sweep) NotifyEvents() (<-chan struct{}, func()) {
	return sw.feed.subscribe()
}

// Summary snapshots the aggregate progress counts.
func (sw *Sweep) Summary() SummaryEvent {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.summaryLocked()
}

// summaryLocked computes the aggregate counts; caller holds sw.mu.
func (sw *Sweep) summaryLocked() SummaryEvent {
	s := SummaryEvent{Total: len(sw.points)}
	for _, pt := range sw.points {
		switch pt.state {
		case pointDone:
			s.Done++
			if pt.cached {
				s.Cached++
			}
		case pointFailed:
			s.Failed++
		default:
			s.Pending++
		}
	}
	switch {
	case s.Pending > 0:
		s.State = "running"
	case s.Failed == s.Total && s.Total > 0:
		s.State = "failed"
	default:
		s.State = "done"
	}
	s.Terminal = s.Pending == 0
	return s
}

// ServeEvents streams the sweep's feed as Server-Sent Events:
// numbered point/summary frames (replayed from the `?from=` or
// Last-Event-ID cursor), a live unnumbered summary plus a comment
// keep-alive every heartbeat, and termination right after the
// numbered terminal summary. Both the shard server and the gateway
// mount this on GET /v1/sweeps/{id}/events.
func ServeEvents(w http.ResponseWriter, r *http.Request, sw *Sweep, heartbeat time.Duration) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported by this connection", http.StatusInternalServerError)
		return
	}
	if heartbeat <= 0 {
		heartbeat = DefaultEventHeartbeat
	}
	cursor := 0
	if v := r.URL.Query().Get("from"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			cursor = n
		}
	} else if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			cursor = n
		}
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	wake, cancel := sw.NotifyEvents()
	defer cancel()
	tick := time.NewTicker(heartbeat)
	defer tick.Stop()

	flush := func() bool {
		for _, ev := range sw.EventsSince(cursor) {
			cursor = ev.Seq
			if err := writeEvent(w, ev); err != nil {
				return false
			}
			if ev.Summary != nil && ev.Summary.Terminal {
				fl.Flush()
				return false
			}
		}
		fl.Flush()
		return true
	}
	if !flush() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-wake:
			if !flush() {
				return
			}
		case <-tick.C:
			// Keep-alive comment plus an advisory live summary (Seq 0:
			// never consumes the cursor, so replays stay exact).
			if _, err := fmt.Fprint(w, ": hb\n\n"); err != nil {
				return
			}
			live := sw.Summary()
			if err := writeEvent(w, Event{Type: "summary", SweepID: sw.ID, Summary: &live}); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// writeEvent renders one SSE frame; numbered events carry an id line
// so browsers and Watch resume from Last-Event-ID.
func writeEvent(w http.ResponseWriter, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if ev.Seq > 0 {
		_, err = fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Type, ev.Seq, data)
	} else {
		_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
	}
	return err
}

// watchClient returns the HTTP client for streaming exchanges. The
// default enveloped-API client carries a whole-request timeout that
// would sever a long-lived stream, so Watch only reuses c.HTTP when
// it has none, and otherwise borrows its transport under a fresh
// timeout-free client.
func (c *Client) watchClient() *http.Client {
	if c.HTTP != nil && c.HTTP.Timeout == 0 {
		return c.HTTP
	}
	cl := &http.Client{}
	if c.HTTP != nil {
		cl.Transport = c.HTTP.Transport
	}
	return cl
}

// Watch consumes GET /v1/sweeps/{id}/events until the terminal
// summary arrives, invoking onEvent (when non-nil) for every frame.
// Dropped connections resume from the last numbered event via
// `?from=`, and numbered frames are deduplicated by Seq, so each
// point transition is delivered exactly once across reconnects.
// Returns the terminal summary event.
func (c *Client) Watch(ctx context.Context, id string, onEvent func(Event)) (Event, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	attempts := c.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	lastSeq := 0
	failures := 0
	for {
		term, progressed, err := c.watchOnce(ctx, id, &lastSeq, onEvent)
		if err == nil {
			return term, nil
		}
		if ctx.Err() != nil {
			return Event{}, cerr.Wrap(cerr.CodeBudgetExceeded, ctx.Err(), "sweep client: watching %s", id)
		}
		if progressed {
			failures = 0 // a live stream that dropped mid-way: keep following
		}
		failures++
		if failures >= attempts {
			return Event{}, err
		}
		select {
		case <-ctx.Done():
			return Event{}, cerr.Wrap(cerr.CodeBudgetExceeded, ctx.Err(), "sweep client: watching %s", id)
		case <-time.After(c.backoff(failures-1, 0)):
		}
	}
}

// watchOnce runs one streaming connection. progressed reports whether
// any frame arrived (resets the reconnect budget); on a clean
// terminal summary it returns that event.
func (c *Client) watchOnce(ctx context.Context, id string, lastSeq *int, onEvent func(Event)) (term Event, progressed bool, err error) {
	url := fmt.Sprintf("%s/v1/sweeps/%s/events?from=%d", c.Base, id, *lastSeq)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return Event{}, false, cerr.Wrap(cerr.CodeInvalidParams, err, "sweep client: bad watch request")
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.watchClient().Do(req)
	if err != nil {
		return Event{}, false, cerr.Wrap(cerr.CodeInternal, err, "sweep client: watch %s", id)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Event{}, false, cerr.New(cerr.CodeInternal,
			"sweep client: watch %s: status %d", id, resp.StatusCode)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	var data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data == "" {
				continue
			}
			var ev Event
			if jerr := json.Unmarshal([]byte(data), &ev); jerr != nil {
				return Event{}, progressed, cerr.Wrap(cerr.CodeInternal, jerr, "sweep client: watch frame")
			}
			data = ""
			progressed = true
			if ev.Seq > 0 {
				if ev.Seq <= *lastSeq {
					continue // replayed duplicate across a reconnect
				}
				*lastSeq = ev.Seq
			}
			if onEvent != nil {
				onEvent(ev)
			}
			if ev.Seq > 0 && ev.Summary != nil && ev.Summary.Terminal {
				return ev, true, nil
			}
		case strings.HasPrefix(line, ":"):
			progressed = true // heartbeat
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		default:
			// event:/id: lines — the JSON payload is authoritative.
		}
	}
	if serr := sc.Err(); serr != nil {
		return Event{}, progressed, cerr.Wrap(cerr.CodeInternal, serr, "sweep client: watch stream")
	}
	return Event{}, progressed, cerr.New(cerr.CodeInternal,
		"sweep client: watch %s: stream ended before the terminal summary", id)
}
