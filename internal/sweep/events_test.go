package sweep

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

// TestFeedReplayExactlyOnce: numbered events replay from any cursor
// without gaps or duplicates, and a cursor inside the retained window
// resumes exactly where it left off.
func TestFeedReplayExactlyOnce(t *testing.T) {
	f := newFeed("sw-1", 100)
	for i := 0; i < 5; i++ {
		f.emit(Event{Type: "point", Point: &PointEvent{Index: i}})
	}
	all := f.since(0)
	if len(all) != 5 {
		t.Fatalf("since(0) returned %d events, want 5", len(all))
	}
	for i, ev := range all {
		if ev.Seq != i+1 || ev.SweepID != "sw-1" {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	// Resuming from a mid-stream cursor yields exactly the tail.
	tail := f.since(3)
	if len(tail) != 2 || tail[0].Seq != 4 || tail[1].Seq != 5 {
		t.Fatalf("since(3) = %+v", tail)
	}
	if got := f.since(5); got != nil {
		t.Fatalf("since(5) = %+v, want nil", got)
	}
}

// TestFeedEviction: past the cap the oldest frames evict and an
// ancient cursor restarts at the window edge instead of failing.
func TestFeedEviction(t *testing.T) {
	f := newFeed("sw-1", 0) // floors at 16
	for i := 0; i < 40; i++ {
		f.emit(Event{Type: "point", Point: &PointEvent{Index: i}})
	}
	got := f.since(0)
	if len(got) != 16 {
		t.Fatalf("retained %d events, want 16", len(got))
	}
	if got[0].Seq != 25 || got[15].Seq != 40 {
		t.Fatalf("window = [%d, %d], want [25, 40]", got[0].Seq, got[15].Seq)
	}
}

// TestFeedSubscribeWakeup: a subscriber is woken on emit, and a
// pending wakeup coalesces instead of blocking the emitter.
func TestFeedSubscribeWakeup(t *testing.T) {
	f := newFeed("sw-1", 100)
	wake, cancel := f.subscribe()
	defer cancel()
	f.emit(Event{Type: "point", Point: &PointEvent{Index: 0}})
	f.emit(Event{Type: "point", Point: &PointEvent{Index: 1}}) // coalesces
	select {
	case <-wake:
	case <-time.After(time.Second):
		t.Fatal("no wakeup after emit")
	}
	if got := f.since(0); len(got) != 2 {
		t.Fatalf("%d events after coalesced wakeup", len(got))
	}
}

// TestSweepEmitsEvents: a finished sweep's feed holds one started and
// one terminal event per submitted point, then a terminal summary
// whose counts agree with Status and Results.
func TestSweepEmitsEvents(t *testing.T) {
	h := newHarness(t)
	sw, err := h.m.Create(Spec{Base: baseReq(), Axes: Axes{Spares: []int{4, 8}}})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, sw)
	events := sw.EventsSince(0)
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	last := events[len(events)-1]
	if last.Summary == nil || !last.Summary.Terminal {
		t.Fatalf("last event is not the terminal summary: %+v", last)
	}
	started := map[int]int{}
	terminal := map[int]int{}
	for _, ev := range events[:len(events)-1] {
		if ev.Point == nil {
			t.Fatalf("non-point event before the terminal summary: %+v", ev)
		}
		switch ev.Point.Status {
		case "started":
			started[ev.Point.Index]++
		case "completed", "cached", "failed":
			terminal[ev.Point.Index]++
		default:
			t.Fatalf("unknown point status %q", ev.Point.Status)
		}
	}
	for i := 0; i < 2; i++ {
		if started[i] != 1 || terminal[i] != 1 {
			t.Fatalf("point %d: started %d times, terminal %d times", i, started[i], terminal[i])
		}
	}
	st := sw.Status()
	if last.Summary.Done != st.Done || last.Summary.Failed != st.Failed || last.Summary.Total != st.Total {
		t.Fatalf("terminal summary %+v disagrees with status %+v", last.Summary, st)
	}
	if res := sw.Results(); res.Complete != (last.Summary.State == "done") {
		t.Fatalf("summary state %q vs results complete %v", last.Summary.State, res.Complete)
	}
}

// TestSweepCachedPointsEvents: store-hit points skip "started" and land
// directly as cached terminals, still followed by the summary.
func TestSweepCachedPointsEvents(t *testing.T) {
	h := newHarness(t)
	spec := Spec{Base: baseReq(), Axes: Axes{Spares: []int{4, 8}}}
	sw1, err := h.m.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	wait(t, sw1)

	sw2, err := h.m.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	wait(t, sw2)
	events := sw2.EventsSince(0)
	for _, ev := range events {
		if ev.Point != nil && ev.Point.Status != "cached" {
			t.Fatalf("warm sweep emitted non-cached point event: %+v", ev.Point)
		}
		if ev.Point != nil && !ev.Point.Cached {
			t.Fatalf("cached point not flagged: %+v", ev.Point)
		}
	}
	last := events[len(events)-1]
	if last.Summary == nil || !last.Summary.Terminal || last.Summary.Cached != 2 {
		t.Fatalf("warm sweep summary: %+v", last.Summary)
	}
}

// eventsServer mounts the SSE handler over a harness manager the way
// the daemon does.
func eventsServer(t *testing.T, m *Manager, heartbeat time.Duration) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/sweeps/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		sw, ok := m.Get(r.PathValue("id"))
		if !ok {
			http.NotFound(w, r)
			return
		}
		ServeEvents(w, r, sw, heartbeat)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestServeEventsWatchRoundTrip: Watch consumes the SSE stream end to
// end — every point frame exactly once, then the terminal summary, for
// both a live subscriber and one that connects after the sweep ended.
func TestServeEventsWatchRoundTrip(t *testing.T) {
	h := newHarness(t)
	srv := eventsServer(t, h.m, time.Hour)

	sw, err := h.m.Create(Spec{Base: baseReq(), Axes: Axes{Spares: []int{4, 8, 16}}})
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(srv.URL)
	run := func(name string) {
		var seen []Event
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		term, err := c.Watch(ctx, sw.ID, func(ev Event) { seen = append(seen, ev) })
		if err != nil {
			t.Fatalf("%s watch: %v", name, err)
		}
		if term.Summary == nil || !term.Summary.Terminal || term.Summary.Done != 3 {
			t.Fatalf("%s terminal: %+v", name, term.Summary)
		}
		counts := map[int]map[string]int{}
		for _, ev := range seen {
			if ev.Point == nil {
				continue
			}
			if counts[ev.Point.Index] == nil {
				counts[ev.Point.Index] = map[string]int{}
			}
			counts[ev.Point.Index][ev.Point.Status]++
		}
		for i := 0; i < 3; i++ {
			term := counts[i]["completed"] + counts[i]["cached"] + counts[i]["failed"]
			if term != 1 {
				t.Fatalf("%s: point %d delivered %d terminal frames (%v)", name, i, term, counts[i])
			}
		}
	}
	run("live")
	wait(t, sw)
	run("late") // replay after completion still delivers everything
}

// TestWatchReconnectDedup: a stream severed mid-way resumes via
// `?from=` and the client's Seq dedup keeps delivery exactly-once even
// when the server replays an already-seen frame.
func TestWatchReconnectDedup(t *testing.T) {
	events := []Event{
		{Seq: 1, Type: "point", SweepID: "sw", Point: &PointEvent{Index: 0, Status: "started"}},
		{Seq: 2, Type: "point", SweepID: "sw", Point: &PointEvent{Index: 0, Status: "completed"}},
		{Seq: 3, Type: "summary", SweepID: "sw", Summary: &SummaryEvent{State: "done", Total: 1, Done: 1, Terminal: true}},
	}
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		from, _ := strconv.Atoi(r.URL.Query().Get("from"))
		n := calls.Add(1)
		w.Header().Set("Content-Type", "text/event-stream")
		if n == 1 {
			// First connection: serve one frame, then die without the
			// terminal summary.
			writeEvent(w, events[0])
			return
		}
		// Reconnect: replay one duplicate (Seq <= from) on purpose, then
		// the rest.
		if from != 1 {
			t.Errorf("reconnect cursor = %d, want 1", from)
		}
		for _, ev := range events {
			writeEvent(w, ev)
		}
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retry.BaseDelay = time.Millisecond
	c.Retry.MaxDelay = 2 * time.Millisecond
	var got []Event
	term, err := c.Watch(context.Background(), "sw", func(ev Event) { got = append(got, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("%d connections, want 2", calls.Load())
	}
	if term.Summary == nil || !term.Summary.Terminal {
		t.Fatalf("terminal = %+v", term)
	}
	if len(got) != 3 {
		t.Fatalf("delivered %d frames, want 3 (dedup failed): %+v", len(got), got)
	}
	for i, ev := range got {
		if ev.Seq != i+1 {
			t.Fatalf("frame %d has Seq %d", i, ev.Seq)
		}
	}
}

// TestWatchUnknownSweep: a 404 fails the watch with an error rather
// than hanging.
func TestWatchUnknownSweep(t *testing.T) {
	h := newHarness(t)
	srv := eventsServer(t, h.m, time.Hour)
	c := NewClient(srv.URL)
	c.Retry.MaxAttempts = 2
	c.Retry.BaseDelay = time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Watch(ctx, "nope", nil); err == nil {
		t.Fatal("watch of unknown sweep succeeded")
	}
}
