// Sweep durability: a write-ahead journal that lets a restarted
// daemon resume in-flight sweeps instead of losing them.
//
// Layout (all writes temp+rename, the same atomicity discipline as
// internal/store):
//
//	<dir>/tmp/                  scratch for atomic writes (swept on open)
//	<dir>/<id>.sweep            JSON record: {id, created_at, spec}
//	<dir>/<id>.done/<key>       empty marker: group <key> completed and
//	                            its entry is durably in the artifact store
//
// The record is written before any group launches (write-ahead), a
// done marker is written only after the group's entry landed in the
// store, and Complete removes everything once the sweep finishes
// cleanly. Resume therefore re-expands the journaled spec and replays
// finished groups through the content-addressed store lookup — zero
// recompiles of journaled points, byte-identical rows (the compiler is
// deterministic for a fixed spec).
package sweep

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cerr"
)

const (
	journalExt     = ".sweep"
	journalDoneExt = ".done"
	journalTmpDir  = "tmp"
)

// Journal persists sweep progress. A nil *Journal disables durability:
// every method is a no-op. Construct with OpenJournal; safe for
// concurrent use.
type Journal struct {
	dir string
	mu  sync.Mutex
}

// JournalRecord is one persisted in-flight sweep.
type JournalRecord struct {
	ID        string `json:"id"`
	CreatedAt string `json:"created_at"`
	Spec      Spec   `json:"spec"`
	// Done holds the content keys of completed groups (loaded from the
	// marker directory, not part of the record file).
	Done map[string]bool `json:"-"`
}

// OpenJournal creates the journal directory layout and clears
// abandoned temp files from a previous crash.
func OpenJournal(dir string) (*Journal, error) {
	if dir == "" {
		return nil, cerr.New(cerr.CodeInvalidParams, "sweep: empty journal directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, journalTmpDir), 0o755); err != nil {
		return nil, cerr.Wrap(cerr.CodeInternal, err, "sweep: creating journal %s", dir)
	}
	if tmps, err := os.ReadDir(filepath.Join(dir, journalTmpDir)); err == nil {
		for _, e := range tmps {
			os.Remove(filepath.Join(dir, journalTmpDir, e.Name()))
		}
	}
	return &Journal{dir: dir}, nil
}

// Dir returns the journal root ("" for a nil journal).
func (j *Journal) Dir() string {
	if j == nil {
		return ""
	}
	return j.dir
}

// Begin writes the sweep record (write-ahead: call before launching
// any group) and creates its marker directory. Idempotent — resuming
// rewrites the same record.
func (j *Journal) Begin(id string, spec Spec) error {
	if j == nil {
		return nil
	}
	if !validSweepID(id) {
		return cerr.New(cerr.CodeInvalidParams, "sweep: journal rejects id %q", id)
	}
	rec := JournalRecord{ID: id, CreatedAt: time.Now().UTC().Format(time.RFC3339Nano), Spec: spec}
	data, err := json.Marshal(rec)
	if err != nil {
		return cerr.Wrap(cerr.CodeInternal, err, "sweep: encoding journal record %s", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := os.MkdirAll(filepath.Join(j.dir, id+journalDoneExt), 0o755); err != nil {
		return cerr.Wrap(cerr.CodeInternal, err, "sweep: journal markers for %s", id)
	}
	return j.atomicWrite(filepath.Join(j.dir, id+journalExt), data)
}

// MarkDone records that the group keyed key completed and its entry is
// durably in the artifact store. Call only after the store put.
func (j *Journal) MarkDone(id, key string) error {
	if j == nil {
		return nil
	}
	if !validSweepID(id) || !validMarkerKey(key) {
		return cerr.New(cerr.CodeInvalidParams, "sweep: journal rejects marker %q/%q", id, key)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	dir := filepath.Join(j.dir, id+journalDoneExt)
	if _, err := os.Stat(filepath.Join(j.dir, id+journalExt)); err != nil {
		// The sweep already completed (or was never journaled): a late
		// marker must not resurrect a directory Complete removed.
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return cerr.Wrap(cerr.CodeInternal, err, "sweep: journal markers for %s", id)
	}
	return j.atomicWrite(filepath.Join(dir, key), nil)
}

// Complete removes the sweep's record and markers: the sweep finished
// and needs no resume.
func (j *Journal) Complete(id string) error {
	if j == nil {
		return nil
	}
	if !validSweepID(id) {
		return cerr.New(cerr.CodeInvalidParams, "sweep: journal rejects id %q", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	// Record first: once it is gone the sweep can never resume, so a
	// crash between the two removals leaves only an orphaned marker
	// directory, which Pending ignores and a later Begin reuses.
	if err := os.Remove(filepath.Join(j.dir, id+journalExt)); err != nil && !os.IsNotExist(err) {
		return cerr.Wrap(cerr.CodeInternal, err, "sweep: completing journal %s", id)
	}
	os.RemoveAll(filepath.Join(j.dir, id+journalDoneExt))
	return nil
}

// Pending returns every journaled sweep that never completed, sorted
// by ID (creation order), each with its done-marker key set.
func (j *Journal) Pending() ([]JournalRecord, error) {
	if j == nil {
		return nil, nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	ents, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, cerr.Wrap(cerr.CodeInternal, err, "sweep: scanning journal")
	}
	var out []JournalRecord
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, journalExt) {
			continue
		}
		data, rerr := os.ReadFile(filepath.Join(j.dir, name))
		if rerr != nil {
			continue
		}
		var rec JournalRecord
		if json.Unmarshal(data, &rec) != nil || rec.ID != strings.TrimSuffix(name, journalExt) {
			// A corrupt or mislabeled record cannot be resumed; leave it
			// on disk for forensics, skip it for resume.
			continue
		}
		rec.Done = map[string]bool{}
		if marks, merr := os.ReadDir(filepath.Join(j.dir, rec.ID+journalDoneExt)); merr == nil {
			for _, mk := range marks {
				if !mk.IsDir() {
					rec.Done[mk.Name()] = true
				}
			}
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out, nil
}

// atomicWrite commits data under path via temp+rename. Caller holds
// j.mu.
func (j *Journal) atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Join(j.dir, journalTmpDir), "wal-*")
	if err != nil {
		return cerr.Wrap(cerr.CodeInternal, err, "sweep: journal temp file")
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	cerr2 := tmp.Close()
	if werr != nil || cerr2 != nil {
		os.Remove(tmpName)
		if werr == nil {
			werr = cerr2
		}
		return cerr.Wrap(cerr.CodeInternal, werr, "sweep: journal write %s", path)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return cerr.Wrap(cerr.CodeInternal, err, "sweep: journal commit %s", path)
	}
	return nil
}

// validSweepID accepts the manager's "sweep-NNNNNN" IDs (and nothing
// path-shaped).
func validSweepID(id string) bool {
	if !strings.HasPrefix(id, "sweep-") || len(id) > 64 {
		return false
	}
	for i := len("sweep-"); i < len(id); i++ {
		if id[i] < '0' || id[i] > '9' {
			return false
		}
	}
	return len(id) > len("sweep-")
}

// validMarkerKey accepts only 64-hex content addresses, keeping marker
// path construction injection-proof (same rule as internal/store).
func validMarkerKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
