package sweep

import (
	"context"
	"os"
	"path/filepath"
	"repro/internal/canon"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/cerr"
	"repro/internal/compiler"
	"repro/internal/jobs"
)

// journalHarness is the sweep harness with durability: a journal over
// a temp dir plus a shared map-backed "store" that survives manager
// "restarts" (the store is the disk tier's stand-in, and disk
// survives a crash).
type journalHarness struct {
	t       *testing.T
	dir     string
	mu      sync.Mutex
	store   map[string]*cache.Entry
	runs    atomic.Int64
	busted  atomic.Bool // when set, Run fails with a transient code
	queues  []*jobs.Queue
	mgr     *Manager
	journal *Journal
}

func newJournalHarness(t *testing.T) *journalHarness {
	h := &journalHarness{t: t, dir: t.TempDir(), store: map[string]*cache.Entry{}}
	h.boot()
	return h
}

// boot builds a fresh queue + manager over the same journal dir and
// store — a process restart in miniature.
func (h *journalHarness) boot() {
	j, err := OpenJournal(h.dir)
	if err != nil {
		h.t.Fatal(err)
	}
	h.journal = j
	q := jobs.New(jobs.Config{Workers: 2, Deadline: time.Minute})
	h.queues = append(h.queues, q)
	h.t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		q.Shutdown(ctx)
	})
	h.mgr = NewManager(Config{
		Queue:   q,
		Journal: j,
		Lookup: func(key string) (*cache.Entry, bool) {
			h.mu.Lock()
			defer h.mu.Unlock()
			e, ok := h.store[key]
			return e, ok
		},
		Run: func(ctx context.Context, key string, _ canon.Request, p compiler.Params) (*cache.Entry, error) {
			if h.busted.Load() {
				return nil, cerr.New(cerr.CodeOverloaded, "synthetic shed")
			}
			h.runs.Add(1)
			e := fakeEntry(key, p.Rows(), p.BPW*p.BPC, 1.05)
			h.mu.Lock()
			h.store[key] = e
			h.mu.Unlock()
			return e, nil
		},
	})
}

func (h *journalHarness) sweepFiles() []string {
	ents, err := os.ReadDir(h.dir)
	if err != nil {
		h.t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if filepath.Ext(e.Name()) == journalExt {
			out = append(out, e.Name())
		}
	}
	return out
}

func TestJournalCompletesCleanSweep(t *testing.T) {
	h := newJournalHarness(t)
	sw, err := h.mgr.Create(Spec{Base: baseReq(), Axes: Axes{Spares: []int{4, 8}}})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, sw)
	if files := h.sweepFiles(); len(files) != 0 {
		t.Fatalf("clean sweep left journal records %v", files)
	}
	if _, err := os.Stat(filepath.Join(h.dir, sw.ID+journalDoneExt)); !os.IsNotExist(err) {
		t.Fatalf("clean sweep left marker directory")
	}
}

func TestJournalRetainsTransientlyFailedSweep(t *testing.T) {
	h := newJournalHarness(t)
	h.busted.Store(true)
	sw, err := h.mgr.Create(Spec{Base: baseReq(), Axes: Axes{Spares: []int{4, 8}}})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, sw)
	if st := sw.Status(); st.Failed != st.Total {
		t.Fatalf("status %+v, want all points shed", st)
	}
	if files := h.sweepFiles(); len(files) != 1 {
		t.Fatalf("shed sweep journal records %v, want 1", files)
	}

	// "Restart": the shed cleared, Resume finishes the sweep.
	h.busted.Store(false)
	h.boot()
	n, err := h.mgr.Resume()
	if err != nil || n != 1 {
		t.Fatalf("Resume = %d, %v", n, err)
	}
	sw2, ok := h.mgr.Get(sw.ID)
	if !ok {
		t.Fatalf("resumed sweep lost its ID %s", sw.ID)
	}
	wait(t, sw2)
	if st := sw2.Status(); st.Done != st.Total {
		t.Fatalf("resumed status %+v", st)
	}
	if files := h.sweepFiles(); len(files) != 0 {
		t.Fatalf("finished resume left journal records %v", files)
	}
}

func TestJournalResumeReplaysDoneGroupsWithoutRecompiles(t *testing.T) {
	h := newJournalHarness(t)
	spec := Spec{Base: baseReq(), Axes: Axes{Spares: []int{4, 8, 16}, Defects: []float64{0, 5}}}
	sw, err := h.mgr.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	wait(t, sw)
	want := sw.Results()
	runsBefore := h.runs.Load()

	// Simulate a crash after completion but before Complete(): rewrite
	// the journal record as an interrupted sweep with every group
	// already marked done.
	if err := h.journal.Begin(sw.ID, spec); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	for key := range h.store {
		h.mu.Unlock()
		if err := h.journal.MarkDone(sw.ID, key); err != nil {
			t.Fatal(err)
		}
		h.mu.Lock()
	}
	h.mu.Unlock()

	h.boot()
	if n, err := h.mgr.Resume(); err != nil || n != 1 {
		t.Fatalf("Resume = %d, %v", n, err)
	}
	sw2, _ := h.mgr.Get(sw.ID)
	wait(t, sw2)
	if h.runs.Load() != runsBefore {
		t.Fatalf("resume recompiled journaled points: %d -> %d runs", runsBefore, h.runs.Load())
	}
	got := sw2.Results()
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("resumed rows %d, want %d", len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		g, w := got.Rows[i], want.Rows[i]
		// Cached differs by construction (resume serves from the store);
		// every measured column must be identical.
		g.Cached, w.Cached = false, false
		if g != w {
			t.Fatalf("row %d drifted across resume:\n got %+v\nwant %+v", i, g, w)
		}
	}
	if n, err := h.mgr.Resume(); err != nil || n != 0 {
		t.Fatalf("second Resume = %d, %v (sweep already live)", n, err)
	}
}

func TestJournalFreshIDsSkipResumedOnes(t *testing.T) {
	h := newJournalHarness(t)
	h.busted.Store(true)
	sw, err := h.mgr.Create(Spec{Base: baseReq()})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, sw)
	h.busted.Store(false)
	h.boot()
	if _, err := h.mgr.Resume(); err != nil {
		t.Fatal(err)
	}
	fresh, err := h.mgr.Create(Spec{Base: baseReq(), Axes: Axes{Spares: []int{8}}})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID == sw.ID {
		t.Fatalf("fresh sweep collided with resumed ID %s", sw.ID)
	}
	wait(t, fresh)
}

func TestJournalValidation(t *testing.T) {
	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "sweep-", "../evil", "sweep-12x", "job-000001"} {
		if err := j.Begin(id, Spec{}); err == nil {
			t.Errorf("Begin(%q) accepted", id)
		}
	}
	if err := j.MarkDone("sweep-000001", "../../etc/passwd"); err == nil {
		t.Error("path-shaped marker key accepted")
	}
	// Marking against an unjournaled sweep is a silent no-op (the
	// Complete race), never a resurrection.
	if err := j.MarkDone("sweep-000099", validTestKey()); err != nil {
		t.Errorf("late marker errored: %v", err)
	}
	if _, serr := os.Stat(filepath.Join(j.Dir(), "sweep-000099"+journalDoneExt)); !os.IsNotExist(serr) {
		t.Error("late marker resurrected a completed sweep's directory")
	}
	var nilJ *Journal
	if err := nilJ.Begin("sweep-000001", Spec{}); err != nil {
		t.Errorf("nil journal Begin: %v", err)
	}
	if recs, err := nilJ.Pending(); err != nil || recs != nil {
		t.Errorf("nil journal Pending: %v %v", recs, err)
	}
}

// TestTransientFailureClassification pins the drain/overload edge: a
// SIGTERM drain fails queued sweep points with ERR_BUDGET_EXCEEDED and
// load shedding with ERR_OVERLOADED — both must keep the journal
// record so a restart resumes the sweep, while deterministic input
// failures must complete it (re-running them cannot help).
func TestTransientFailureClassification(t *testing.T) {
	if !transientFailure(cerr.New(cerr.CodeOverloaded, "queue full")) {
		t.Error("ERR_OVERLOADED not transient")
	}
	if !transientFailure(cerr.New(cerr.CodeBudgetExceeded, "drain killed queued job")) {
		t.Error("ERR_BUDGET_EXCEEDED not transient")
	}
	if transientFailure(cerr.New(cerr.CodeInvalidParams, "rows out of range")) {
		t.Error("deterministic failure classified transient")
	}
	if transientFailure(nil) {
		t.Error("nil error classified transient")
	}
}

func validTestKey() string {
	b := make([]byte, 64)
	for i := range b {
		b[i] = 'a'
	}
	return string(b)
}
