package yield

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cerr"
)

// TestValidateNonFinite exercises the NaN/Inf guards on the model
// fields, asserting the specific taxonomy code for each rejection.
func TestValidateNonFinite(t *testing.T) {
	good := Model{Rows: 64, Cols: 64, Spares: 4, GrowthFactor: 1.1}
	cases := []struct {
		name string
		mut  func(*Model)
		want *cerr.Error
	}{
		{"nan growth", func(m *Model) { m.GrowthFactor = math.NaN() }, cerr.ErrNonFinite},
		{"+inf growth", func(m *Model) { m.GrowthFactor = math.Inf(1) }, cerr.ErrNonFinite},
		{"-inf growth", func(m *Model) { m.GrowthFactor = math.Inf(-1) }, cerr.ErrNonFinite},
		{"small growth", func(m *Model) { m.GrowthFactor = 0.5 }, cerr.ErrInvalidParams},
		{"nan alpha", func(m *Model) { m.Alpha = math.NaN() }, cerr.ErrNonFinite},
		{"zero rows", func(m *Model) { m.Rows = 0 }, cerr.ErrInvalidParams},
		{"negative spares", func(m *Model) { m.Spares = -1 }, cerr.ErrInvalidParams},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("baseline model rejected: %v", err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := good
			tc.mut(&m)
			if err := m.Validate(); !errors.Is(err, tc.want) {
				t.Fatalf("want %v, got %v", tc.want, err)
			}
		})
	}
}

// TestCheckDefects covers the defect-axis guard and the clamp
// behaviour of the plain evaluators.
func TestCheckDefects(t *testing.T) {
	cases := []struct {
		name    string
		defects float64
		want    *cerr.Error // nil means accepted
	}{
		{"zero", 0, nil},
		{"positive", 12.5, nil},
		{"negative", -3, cerr.ErrInvalidParams},
		{"nan", math.NaN(), cerr.ErrNonFinite},
		{"+inf", math.Inf(1), cerr.ErrNonFinite},
		{"-inf", math.Inf(-1), cerr.ErrNonFinite},
	}
	m := Model{Rows: 64, Cols: 64, Spares: 4, GrowthFactor: 1.1}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckDefects(tc.defects)
			if tc.want == nil {
				if err != nil {
					t.Fatalf("unexpected rejection: %v", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("want %v, got %v", tc.want, err)
			}
			if _, err := m.YieldBISRErr(tc.defects); !errors.Is(err, tc.want) {
				t.Fatalf("YieldBISRErr: want %v, got %v", tc.want, err)
			}
			if _, err := m.YieldNoRepairErr(tc.defects); !errors.Is(err, tc.want) {
				t.Fatalf("YieldNoRepairErr: want %v, got %v", tc.want, err)
			}
			if _, err := m.YieldBISRIteratedErr(tc.defects); !errors.Is(err, tc.want) {
				t.Fatalf("YieldBISRIteratedErr: want %v, got %v", tc.want, err)
			}
		})
	}
}

// TestNegativeDefectsClamped: the plain evaluators treat a (finite)
// negative defect count as zero rather than returning >1 yields.
func TestNegativeDefectsClamped(t *testing.T) {
	m := Model{Rows: 64, Cols: 64, Spares: 4, GrowthFactor: 1.1}
	if y := m.YieldNoRepair(-5); y != 1 {
		t.Fatalf("clamped no-repair yield = %g, want 1", y)
	}
	if y := m.YieldBISR(-5); math.Abs(y-1) > 1e-9 {
		t.Fatalf("clamped BISR yield = %g, want ~1", y)
	}
}

// TestCheckedEvaluatorsAgree: on clean input the *Err variants match
// the plain evaluators exactly.
func TestCheckedEvaluatorsAgree(t *testing.T) {
	m := Model{Rows: 128, Cols: 64, Spares: 8, GrowthFactor: 1.08, Alpha: 2}
	for _, d := range []float64{0, 1, 5, 25} {
		got, err := m.YieldBISRErr(d)
		if err != nil {
			t.Fatalf("defects %g: %v", d, err)
		}
		if want := m.YieldBISR(d); got != want {
			t.Fatalf("defects %g: checked %g != plain %g", d, got, want)
		}
	}
}
