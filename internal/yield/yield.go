// Package yield implements the paper's Section VII yield models: the
// Poisson single-cell yield, the Stapper negative-binomial array
// yield with defect clustering, the repairability probability P_R of
// a row-redundant BISR'ed RAM under the paper's strict "goodness"
// criterion (faulty rows ≤ spares and all spares fault-free), and the
// chip-level product model used for the cost analysis.
package yield

import (
	"math"

	"repro/internal/cerr"
)

// Model describes one BISR'ed RAM array for yield evaluation.
type Model struct {
	Rows   int // regular rows
	Cols   int // cells per row (bpw * bpc)
	Spares int // spare rows

	// GrowthFactor is area(redundant array + BIST/BISR) divided by
	// area(nonredundant array); defects injected scale with it. 1.0
	// means no area penalty; the compiler reports the real value.
	GrowthFactor float64

	// Alpha is Stapper's clustering parameter; +Inf (or 0, treated as
	// unclustered) selects the pure Poisson model.
	Alpha float64
}

// Validate checks model sanity. Non-finite numeric fields are
// rejected with cerr.ErrNonFinite, out-of-range finite ones with
// cerr.ErrInvalidParams, so a NaN can never leak into the integration
// kernels below.
func (m Model) Validate() error {
	if m.Rows <= 0 || m.Cols <= 0 || m.Spares < 0 {
		return cerr.New(cerr.CodeInvalidParams,
			"yield: bad geometry rows=%d cols=%d spares=%d", m.Rows, m.Cols, m.Spares)
	}
	if math.IsNaN(m.GrowthFactor) || math.IsInf(m.GrowthFactor, 0) {
		return cerr.New(cerr.CodeNonFinite, "yield: non-finite growth factor")
	}
	if m.GrowthFactor < 1 {
		return cerr.New(cerr.CodeInvalidParams, "yield: growth factor %.3f < 1", m.GrowthFactor)
	}
	if math.IsNaN(m.Alpha) {
		return cerr.New(cerr.CodeNonFinite, "yield: NaN clustering alpha")
	}
	return nil
}

// CheckDefects validates a defect-count axis value: non-finite inputs
// are rejected with cerr.ErrNonFinite, negative ones with
// cerr.ErrInvalidParams. The plain evaluation methods clamp negative
// inputs to zero; callers wanting a hard failure use this (or the
// *Err variants) first.
func CheckDefects(defects float64) error {
	if math.IsNaN(defects) || math.IsInf(defects, 0) {
		return cerr.New(cerr.CodeNonFinite, "yield: non-finite defect count %v", defects)
	}
	if defects < 0 {
		return cerr.New(cerr.CodeInvalidParams, "yield: negative defect count %g", defects)
	}
	return nil
}

// clampDefects clamps negative finite defect counts to zero (the
// documented clamp for slightly-below-zero numeric noise). Non-finite
// values pass through and surface as NaN results; CheckDefects exists
// to reject them with a typed error.
func clampDefects(defects float64) float64 {
	if defects < 0 {
		return 0
	}
	return defects
}

// CellYield returns the Poisson single-cell yield e^-lambda for an
// average of lambda faults per cell.
func CellYield(lambda float64) float64 { return math.Exp(-lambda) }

// Stapper returns the negative-binomial yield (1 + n/alpha)^-alpha
// for n expected defects with clustering alpha. As alpha -> inf it
// approaches the Poisson e^-n.
func Stapper(n, alpha float64) float64 {
	if alpha <= 0 || math.IsInf(alpha, 1) {
		return math.Exp(-n)
	}
	return math.Pow(1+n/alpha, -alpha)
}

// binomCDF returns P[X <= k] for X ~ Binomial(n, p), computed with an
// incremental stable recurrence (n up to a few thousand, k small).
func binomCDF(n, k int, p float64) float64 {
	if k >= n {
		return 1
	}
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		if k >= n {
			return 1
		}
		return 0
	}
	q := 1 - p
	// term_0 = q^n computed in log space to survive large n.
	logTerm := float64(n) * math.Log(q)
	term := math.Exp(logTerm)
	sum := term
	for i := 0; i < k && i < n; i++ {
		term *= float64(n-i) / float64(i+1) * (p / q)
		sum += term
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// lambdaCell converts "defects injected into the nonredundant array"
// (the paper's x axis) into the per-cell fault rate.
func (m Model) lambdaCell(defects float64) float64 {
	return defects / (float64(m.Rows) * float64(m.Cols))
}

// YieldNoRepair returns the yield of the nonredundant array with n
// expected defects: the probability of zero faults (Poisson) or the
// Stapper equivalent under clustering.
func (m Model) YieldNoRepair(defects float64) float64 {
	return Stapper(clampDefects(defects), m.Alpha)
}

// YieldNoRepairErr is YieldNoRepair with full input checking: the
// model and the defect count must validate, otherwise the typed error
// (ErrInvalidParams or ErrNonFinite) is returned instead of a NaN.
func (m Model) YieldNoRepairErr(defects float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if err := CheckDefects(defects); err != nil {
		return 0, err
	}
	return m.YieldNoRepair(defects), nil
}

// repairProbPoisson returns P_R for a fixed per-cell rate lambda:
// the probability that at most Spares regular rows are faulty and all
// spare rows are fault-free.
func (m Model) repairProbPoisson(lambda float64) float64 {
	pRowGood := math.Exp(-lambda * float64(m.Cols))
	pRowBad := 1 - pRowGood
	return binomCDF(m.Rows, m.Spares, pRowBad) * math.Pow(pRowGood, float64(m.Spares))
}

// repairProbIterated is the relaxed 2k-pass criterion: the number of
// fault-free spares must cover the faulty regular rows.
func (m Model) repairProbIterated(lambda float64) float64 {
	pRowGood := math.Exp(-lambda * float64(m.Cols))
	pRowBad := 1 - pRowGood
	total := 0.0
	// Sum over g = number of good spares.
	for g := 0; g <= m.Spares; g++ {
		pg := binomPMF(m.Spares, g, pRowGood) // g good spares
		total += pg * binomCDF(m.Rows, g, pRowBad)
	}
	return total
}

func binomPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	// log C(n,k) + k log p + (n-k) log(1-p)
	lg := lgamma(float64(n+1)) - lgamma(float64(k+1)) - lgamma(float64(n-k+1))
	var lp, lq float64
	if p > 0 {
		lp = float64(k) * math.Log(p)
	} else if k > 0 {
		return 0
	}
	if p < 1 {
		lq = float64(n-k) * math.Log(1-p)
	} else if n-k > 0 {
		return 0
	}
	return math.Exp(lg + lp + lq)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// logicCells returns the BIST/BISR logic area expressed in cell
// equivalents: the growth beyond the regular plus spare rows.
func (m Model) logicCells() float64 {
	arrayCells := float64((m.Rows + m.Spares) * m.Cols)
	totalCells := m.GrowthFactor * float64(m.Rows*m.Cols)
	extra := totalCells - arrayCells
	if extra < 0 {
		return 0
	}
	return extra
}

// YieldBISR returns the yield of the BISR'ed RAM when n defects would
// land in the *nonredundant* array (the paper's axis convention: the
// redundant array actually absorbs n times the growth factor). A
// defect in the BIST/BISR logic itself is fatal. Under clustering the
// Poisson result is integrated over a gamma-distributed defect rate.
func (m Model) YieldBISR(defects float64) float64 {
	return m.yieldBISR(defects, m.repairProbPoisson)
}

// YieldBISRIterated is YieldBISR under the relaxed 2k-pass
// repairability criterion (faulty spares themselves replaced).
func (m Model) YieldBISRIterated(defects float64) float64 {
	return m.yieldBISR(defects, m.repairProbIterated)
}

// YieldBISRErr is YieldBISR with full input checking (see
// YieldNoRepairErr).
func (m Model) YieldBISRErr(defects float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if err := CheckDefects(defects); err != nil {
		return 0, err
	}
	return m.YieldBISR(defects), nil
}

// YieldBISRIteratedErr is YieldBISRIterated with full input checking.
func (m Model) YieldBISRIteratedErr(defects float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if err := CheckDefects(defects); err != nil {
		return 0, err
	}
	return m.YieldBISRIterated(defects), nil
}

func (m Model) yieldBISR(defects float64, pr func(float64) float64) float64 {
	defects = clampDefects(defects)
	fixed := func(lambda float64) float64 {
		logicOK := math.Exp(-lambda * m.logicCells())
		return logicOK * pr(lambda)
	}
	lambda := m.lambdaCell(defects)
	if m.Alpha <= 0 || math.IsInf(m.Alpha, 1) {
		return fixed(lambda)
	}
	// Clustered: lambda' ~ Gamma(alpha, lambda/alpha); integrate.
	return gammaMixture(fixed, lambda, m.Alpha)
}

// gammaMixture computes E[f(L)] for L ~ Gamma(shape=alpha, mean=mean)
// by adaptive Simpson integration over a generous support.
func gammaMixture(f func(float64) float64, mean, alpha float64) float64 {
	if mean == 0 {
		return f(0)
	}
	scale := mean / alpha
	// Integrand: f(x) * gammaPDF(x).
	pdf := func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		lg := (alpha-1)*math.Log(x) - x/scale - lgamma(alpha) - alpha*math.Log(scale)
		return math.Exp(lg)
	}
	g := func(x float64) float64 { return f(x) * pdf(x) }
	// Support: up to mean + 12 std devs.
	hi := mean + 12*math.Sqrt(alpha)*scale
	return simpson(g, 0, hi, 2000)
}

func simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// ImprovementFactor returns YieldBISR / YieldNoRepair at the given
// defect count — the factor the cost model multiplies into the chip
// yield.
func (m Model) ImprovementFactor(defects float64) float64 {
	base := m.YieldNoRepair(defects)
	if base == 0 {
		return math.Inf(1)
	}
	return m.YieldBISR(defects) / base
}

// ChipYield composes macrocell yields multiplicatively, the paper's
// simplest whole-chip model.
func ChipYield(macroYields ...float64) float64 {
	y := 1.0
	for _, v := range macroYields {
		y *= v
	}
	return y
}

// EmbeddedRAMYield extracts the RAM macro yield from a die yield given
// the RAM's area fraction, via the paper's Y_RAM = Y_die^frac
// approximation.
func EmbeddedRAMYield(dieYield, ramAreaFrac float64) float64 {
	return math.Pow(dieYield, ramAreaFrac)
}
