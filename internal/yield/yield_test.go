package yield

import (
	"math"
	"testing"
	"testing/quick"
)

func model(spares int) Model {
	return Model{Rows: 1024, Cols: 16, Spares: spares, GrowthFactor: 1.05}
}

func TestCellYield(t *testing.T) {
	if CellYield(0) != 1 {
		t.Fatal("zero-defect cell yield must be 1")
	}
	if math.Abs(CellYield(1)-math.Exp(-1)) > 1e-15 {
		t.Fatal("Poisson cell yield wrong")
	}
}

func TestStapperLimits(t *testing.T) {
	// As alpha grows, Stapper approaches Poisson.
	n := 2.0
	if math.Abs(Stapper(n, 1e9)-math.Exp(-n)) > 1e-6 {
		t.Fatal("Stapper should approach Poisson for large alpha")
	}
	if Stapper(n, math.Inf(1)) != math.Exp(-n) {
		t.Fatal("infinite alpha should be Poisson exactly")
	}
	// Clustering raises yield at the same defect count.
	if !(Stapper(n, 2) > math.Exp(-n)) {
		t.Fatal("clustered yield should exceed Poisson")
	}
	if Stapper(0, 2) != 1 {
		t.Fatal("zero defects must give yield 1")
	}
}

func TestBinomCDF(t *testing.T) {
	// Binomial(4, 0.5): P[X<=2] = (1+4+6)/16 = 0.6875.
	if got := binomCDF(4, 2, 0.5); math.Abs(got-0.6875) > 1e-12 {
		t.Fatalf("binomCDF = %g", got)
	}
	if binomCDF(10, 10, 0.7) != 1 {
		t.Fatal("full-range CDF must be 1")
	}
	if binomCDF(10, 3, 0) != 1 {
		t.Fatal("p=0 CDF must be 1")
	}
	if binomCDF(10, 3, 1) != 0 {
		t.Fatal("p=1, k<n CDF must be 0")
	}
	// Large n stability.
	if v := binomCDF(4096, 16, 1e-4); v <= 0 || v > 1 || math.IsNaN(v) {
		t.Fatalf("large-n CDF unstable: %g", v)
	}
}

func TestYieldNoRepairPoisson(t *testing.T) {
	m := model(0)
	if math.Abs(m.YieldNoRepair(3)-math.Exp(-3)) > 1e-12 {
		t.Fatal("no-repair yield should be e^-n")
	}
}

func TestBISRBeatsNoRepairAtHighDefects(t *testing.T) {
	m4 := model(4)
	m8 := model(8)
	m16 := model(16)
	m16.GrowthFactor = 1.07
	// At moderate-to-high defect counts more spares win strictly (the
	// paper's Fig. 4 shape); at very low counts the fault-free-spares
	// requirement can invert the order, which is expected.
	for _, n := range []float64{8, 12, 20} {
		base := m4.YieldNoRepair(n)
		y4 := m4.YieldBISR(n)
		y8 := m8.YieldBISR(n)
		y16 := m16.YieldBISR(n)
		if !(y4 > base) {
			t.Fatalf("n=%g: 4-spare BISR %g should beat base %g", n, y4, base)
		}
		if !(y8 > y4) || !(y16 > y8) {
			t.Fatalf("n=%g: spare ordering violated: %g %g %g", n, y4, y8, y16)
		}
	}
}

func TestImprovementFactorGrowsWithDefects(t *testing.T) {
	m := model(4)
	f2 := m.ImprovementFactor(2)
	f8 := m.ImprovementFactor(8)
	if !(f8 > f2 && f2 > 1) {
		t.Fatalf("improvement factors %g %g", f2, f8)
	}
}

func TestIteratedBeatsStrict(t *testing.T) {
	m := model(8)
	for _, n := range []float64{3, 8, 15} {
		strict := m.YieldBISR(n)
		iter := m.YieldBISRIterated(n)
		if !(iter >= strict) {
			t.Fatalf("n=%g: iterated %g < strict %g", n, iter, strict)
		}
	}
	// With many defects the gap is material.
	if m.YieldBISRIterated(20) <= m.YieldBISR(20)*1.001 {
		t.Log("note: iterated gain small at n=20")
	}
}

func TestClusteredBISR(t *testing.T) {
	m := model(4)
	m.Alpha = 2
	y := m.YieldBISR(5)
	if y <= 0 || y >= 1 || math.IsNaN(y) {
		t.Fatalf("clustered BISR yield %g", y)
	}
	// Clustering concentrates defects into fewer chips: at high defect
	// counts the clustered yield exceeds the Poisson one.
	mp := model(4)
	if !(y > mp.YieldBISR(5)*0.5) {
		t.Fatalf("clustered yield implausibly low: %g vs %g", y, mp.YieldBISR(5))
	}
}

func TestGrowthFactorPenalty(t *testing.T) {
	a := model(4)
	b := model(4)
	b.GrowthFactor = 1.5 // absurd BIST/BISR area
	if !(a.YieldBISR(5) > b.YieldBISR(5)) {
		t.Fatal("larger growth factor must lower yield")
	}
}

func TestChipYieldAndEmbedded(t *testing.T) {
	if math.Abs(ChipYield(0.9, 0.8, 0.5)-0.36) > 1e-12 {
		t.Fatal("chip yield product wrong")
	}
	if ChipYield() != 1 {
		t.Fatal("empty product must be 1")
	}
	y := EmbeddedRAMYield(0.64, 0.5)
	if math.Abs(y-0.8) > 1e-12 {
		t.Fatalf("embedded RAM yield %g", y)
	}
}

func TestValidate(t *testing.T) {
	if err := model(4).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := model(4)
	bad.GrowthFactor = 0.5
	if err := bad.Validate(); err == nil {
		t.Fatal("growth < 1 accepted")
	}
	bad2 := Model{Rows: 0, Cols: 1, GrowthFactor: 1}
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero rows accepted")
	}
}

// Property: yields are probabilities and monotone nonincreasing in
// the defect count.
func TestQuickYieldMonotone(t *testing.T) {
	m := model(4)
	f := func(a, b uint8) bool {
		n1, n2 := float64(a)/4, float64(b)/4
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		y1, y2 := m.YieldBISR(n1), m.YieldBISR(n2)
		return y1 >= y2-1e-12 && y1 >= 0 && y1 <= 1 && y2 >= 0 && y2 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: P_R(iterated) >= P_R(strict) for any lambda.
func TestQuickIteratedDominates(t *testing.T) {
	m := model(6)
	f := func(l uint16) bool {
		lambda := float64(l) / (1 << 20)
		return m.repairProbIterated(lambda) >= m.repairProbPoisson(lambda)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
