// Package cerr defines the compile pipeline's typed error taxonomy.
//
// BISRAMGEN's original pitch is dependable silicon generation: the tool
// validates user parameters, degrades gracefully (abutment -> channel
// routing), and reports "Repair Unsuccessful" rather than silently
// failing. This package is the reproduction's contract for the same
// property: every failure that can be provoked by user-controllable
// input (process decks, PLA plane files, march strings, circuit
// parameters) surfaces as an *Error carrying a stable Code and the
// pipeline stage that produced it, suitable for errors.Is/errors.As
// dispatch and for machine-readable reporting by a serving layer.
//
// Panic policy. After this package's introduction, panics in internal/
// are reserved for true invariant violations — conditions that cannot
// be reached from user-controllable inputs because the boundary
// validation in front of them rejects the offending values first.
// The documented residual panic sites are:
//
//   - geom.Compose / geom.Invert: the eight Manhattan orientations form
//     a closed group; composition and inversion are mathematically total.
//   - geom.Cell.MustPort: used by generators only for ports they
//     themselves created moments earlier.
//   - leafcell sanity(): a generator produced an empty cell — a
//     programming error in the generator itself.
//   - sram.MustNew: the Must-idiom constructor, documented tests-only;
//     production paths use sram.New.
//
// Every such site sits behind a compile-stage Recover guard, so even a
// programming error reaches callers of compiler.Compile as a typed
// ErrInternal, never a process crash.
package cerr

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
)

// Code identifies one failure class of the compile pipeline.
type Code int

// Failure classes.
const (
	// CodeUnknown marks an error that did not originate from this
	// taxonomy (e.g. a raw os error). CodeOf returns it for untyped
	// errors.
	CodeUnknown Code = iota
	// CodeInvalidParams: user circuit parameters outside the validated
	// envelope (word count, bpw/bpc mismatch, spare count, gate size).
	CodeInvalidParams
	// CodeDeckParse: a user-supplied process technology deck failed to
	// parse or validate (missing keys, non-finite values, bad rules).
	CodeDeckParse
	// CodeMarchParse: a march test string in the standard notation
	// failed to parse.
	CodeMarchParse
	// CodePlaneParse: TRPLA AND/OR control plane files are corrupt or
	// geometrically inconsistent.
	CodePlaneParse
	// CodeGeometry: layout generation produced or was asked for
	// impossible geometry (missing port, empty cell, bad transform).
	CodeGeometry
	// CodeNetlist: a circuit or gate-level netlist was assembled with
	// invalid elements (non-positive resistance, empty reduction, bus
	// width mismatch).
	CodeNetlist
	// CodeSimDiverged: the SPICE utility failed to converge (singular
	// matrix, Newton divergence) or a logic simulation did not settle.
	CodeSimDiverged
	// CodeFloorplan: macro placement failed (no legal position,
	// unknown macro/port in a net).
	CodeFloorplan
	// CodeRepairFailed: the self-test-and-repair flow ended in the
	// paper's "Repair Unsuccessful" state (fault count beyond the spare
	// budget, column defect, TLB overflow).
	CodeRepairFailed
	// CodeBudgetExceeded: an iteration cap or context deadline/cancel
	// bounded an unbounded kernel (SPICE transient, annealing refiner,
	// iterated repair) before completion.
	CodeBudgetExceeded
	// CodeNonFinite: a numeric model received or produced NaN/Inf where
	// a finite value is required (yield integration, reliability).
	CodeNonFinite
	// CodeInternal: a recovered panic — an invariant violation that the
	// stage guard converted into an error instead of crashing the
	// process.
	CodeInternal
	// CodeBadRequest: a service wire-format violation that is not a
	// parameter problem — an unknown request schema version, a
	// malformed sweep specification, or an HTTP method the route does
	// not accept. Maps to 400 at the HTTP boundary.
	CodeBadRequest
	// CodeOverloaded: the service shed the request because its bounded
	// queue is full or draining — a transient, retryable condition, not
	// a problem with the request. Maps to 429 + Retry-After at the HTTP
	// boundary; well-behaved clients back off and retry.
	CodeOverloaded
	// CodeSimSingular: the MNA linear solve hit a singular (or
	// numerically rank-deficient) system — structurally no unique
	// solution, e.g. a floating node. Distinct from CodeSimDiverged
	// (Newton ran out of iterations on a solvable system) so Monte
	// Carlo failure classification can tell "this sample's circuit is
	// broken" apart from "this sample did not converge": the former
	// aborts the whole estimate, the latter counts as a failing sample.
	CodeSimSingular
)

var codeNames = [...]string{
	CodeUnknown:        "ERR_UNKNOWN",
	CodeInvalidParams:  "ERR_INVALID_PARAMS",
	CodeDeckParse:      "ERR_DECK_PARSE",
	CodeMarchParse:     "ERR_MARCH_PARSE",
	CodePlaneParse:     "ERR_PLANE_PARSE",
	CodeGeometry:       "ERR_GEOMETRY",
	CodeNetlist:        "ERR_NETLIST",
	CodeSimDiverged:    "ERR_SIM_DIVERGED",
	CodeFloorplan:      "ERR_FLOORPLAN",
	CodeRepairFailed:   "ERR_REPAIR_FAILED",
	CodeBudgetExceeded: "ERR_BUDGET_EXCEEDED",
	CodeNonFinite:      "ERR_NON_FINITE",
	CodeInternal:       "ERR_INTERNAL",
	CodeBadRequest:     "ERR_BAD_REQUEST",
	CodeOverloaded:     "ERR_OVERLOADED",
	CodeSimSingular:    "ERR_SIM_SINGULAR",
}

// String returns the stable machine-readable name (ERR_*).
func (c Code) String() string {
	if c < 0 || int(c) >= len(codeNames) {
		return fmt.Sprintf("ERR_CODE_%d", int(c))
	}
	return codeNames[c]
}

// Codes returns every defined code, for documentation and CLI help.
func Codes() []Code {
	out := make([]Code, 0, len(codeNames)-1)
	for c := CodeInvalidParams; int(c) < len(codeNames); c++ {
		out = append(out, c)
	}
	return out
}

// Error is the typed, code-carrying pipeline error. Stage attributes
// the failure to a compile stage ("validate", "floorplan", "timing",
// ...); Msg is the human-readable detail; Err is the wrapped cause.
type Error struct {
	Code  Code
	Stage string
	Msg   string
	Err   error
}

// Error implements the error interface. The rendering always leads
// with the stable code name so CLI users and log scrapers can key on
// it: "ERR_FLOORPLAN[floorplan]: no legal position for "tlb"".
func (e *Error) Error() string { return e.render(true) }

// render builds the message. withCode=false suppresses the leading
// code name — used when a wrapping error already printed the same
// code, so a chain reads "ERR_X[stage]: outer: inner" rather than
// repeating ERR_X at every layer.
func (e *Error) render(withCode bool) string {
	var b strings.Builder
	if withCode {
		b.WriteString(e.Code.String())
	}
	if e.Stage != "" {
		b.WriteString("[" + e.Stage + "]")
	}
	sep := func() {
		if b.Len() > 0 {
			b.WriteString(": ")
		}
	}
	if e.Msg != "" {
		sep()
		b.WriteString(e.Msg)
	}
	if e.Err != nil {
		sep()
		if inner, ok := e.Err.(*Error); ok && inner.Code == e.Code {
			b.WriteString(inner.render(false))
		} else {
			b.WriteString(e.Err.Error())
		}
	}
	return b.String()
}

// Unwrap exposes the cause for errors.Is/As traversal.
func (e *Error) Unwrap() error { return e.Err }

// Is matches bare sentinel errors of the same Code, so
// errors.Is(err, cerr.ErrFloorplan) holds for any floorplan failure
// regardless of stage or message.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.Code == e.Code && t.Stage == "" && t.Msg == "" && t.Err == nil
}

// Sentinel errors, one per code, for errors.Is dispatch.
var (
	ErrInvalidParams  = &Error{Code: CodeInvalidParams}
	ErrDeckParse      = &Error{Code: CodeDeckParse}
	ErrMarchParse     = &Error{Code: CodeMarchParse}
	ErrPlaneParse     = &Error{Code: CodePlaneParse}
	ErrGeometry       = &Error{Code: CodeGeometry}
	ErrNetlist        = &Error{Code: CodeNetlist}
	ErrSimDiverged    = &Error{Code: CodeSimDiverged}
	ErrFloorplan      = &Error{Code: CodeFloorplan}
	ErrRepairFailed   = &Error{Code: CodeRepairFailed}
	ErrBudgetExceeded = &Error{Code: CodeBudgetExceeded}
	ErrNonFinite      = &Error{Code: CodeNonFinite}
	ErrInternal       = &Error{Code: CodeInternal}
	ErrOverloaded     = &Error{Code: CodeOverloaded}
	ErrSimSingular    = &Error{Code: CodeSimSingular}
)

// New builds a typed error with a formatted message.
func New(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// Wrap attaches a code (and optional context message) to a cause.
// A nil cause yields nil, so call sites can wrap unconditionally.
// If the cause is already a typed *Error, its code wins unless it is
// CodeUnknown — wrapping never launders a specific classification into
// a generic one.
func Wrap(code Code, err error, format string, args ...any) error {
	if err == nil {
		return nil
	}
	if inner := (*Error)(nil); errors.As(err, &inner) && inner.Code != CodeUnknown {
		code = inner.Code
	}
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...), Err: err}
}

// WithStage attributes err to a pipeline stage, preserving its code.
// Untyped errors are classified CodeUnknown. A nil err yields nil.
func WithStage(stage string, err error) error {
	if err == nil {
		return nil
	}
	return &Error{Code: CodeOf(err), Stage: stage, Err: err}
}

// CodeOf extracts the taxonomy code of err, or CodeUnknown for
// untyped errors (including nil).
func CodeOf(err error) Code {
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	return CodeUnknown
}

// StageOf returns the outermost stage attribution of err, or "".
func StageOf(err error) string {
	var e *Error
	for errors.As(err, &e) {
		if e.Stage != "" {
			return e.Stage
		}
		if e.Err == nil {
			break
		}
		err = e.Err
		e = nil
	}
	return ""
}

// IsTyped reports whether err carries a taxonomy code.
func IsTyped(err error) bool {
	var e *Error
	return errors.As(err, &e)
}

// Recover converts an in-flight panic into a typed CodeInternal error
// assigned to *errp, for use as a stage guard:
//
//	func stage(name string) (err error) {
//	    defer cerr.Recover(name, &err)
//	    ...
//	}
//
// The first lines of the stack are preserved in the wrapped cause so
// the invariant violation remains diagnosable.
func Recover(stage string, errp *error) {
	r := recover()
	if r == nil {
		return
	}
	stack := string(debug.Stack())
	if lines := strings.SplitN(stack, "\n", 16); len(lines) == 16 {
		stack = strings.Join(lines[:15], "\n") + "\n..."
	}
	*errp = &Error{
		Code:  CodeInternal,
		Stage: stage,
		Msg:   fmt.Sprintf("recovered panic: %v", r),
		Err:   errors.New(stack),
	}
}
