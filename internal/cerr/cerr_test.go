package cerr

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestSentinelMatching(t *testing.T) {
	err := New(CodeFloorplan, "no legal position for %q", "tlb")
	if !errors.Is(err, ErrFloorplan) {
		t.Fatal("expected errors.Is(err, ErrFloorplan)")
	}
	if errors.Is(err, ErrDeckParse) {
		t.Fatal("floorplan error must not match deck-parse sentinel")
	}
	wrapped := fmt.Errorf("outer: %w", err)
	if !errors.Is(wrapped, ErrFloorplan) {
		t.Fatal("sentinel must match through fmt wrapping")
	}
}

func TestWrapPreservesInnerCode(t *testing.T) {
	inner := New(CodeDeckParse, "bad key")
	outer := Wrap(CodeInvalidParams, inner, "loading process")
	if CodeOf(outer) != CodeDeckParse {
		t.Fatalf("wrap must preserve the specific inner code, got %v", CodeOf(outer))
	}
	if Wrap(CodeGeometry, nil, "x") != nil {
		t.Fatal("wrapping nil must yield nil")
	}
	untyped := errors.New("plain")
	if CodeOf(Wrap(CodeGeometry, untyped, "ctx")) != CodeGeometry {
		t.Fatal("wrapping an untyped error must apply the given code")
	}
}

func TestWithStageAndStageOf(t *testing.T) {
	err := WithStage("timing", New(CodeSimDiverged, "newton diverged"))
	if got := StageOf(err); got != "timing" {
		t.Fatalf("StageOf = %q, want timing", got)
	}
	if CodeOf(err) != CodeSimDiverged {
		t.Fatalf("stage attribution must preserve code, got %v", CodeOf(err))
	}
	if !errors.Is(err, ErrSimDiverged) {
		t.Fatal("staged error must still match its sentinel")
	}
	if WithStage("x", nil) != nil {
		t.Fatal("WithStage(nil) must be nil")
	}
}

func TestErrorRendering(t *testing.T) {
	err := WithStage("floorplan", New(CodeFloorplan, "no legal position"))
	s := err.Error()
	if !strings.Contains(s, "ERR_FLOORPLAN") || !strings.Contains(s, "[floorplan]") {
		t.Fatalf("rendering %q must lead with code name and stage", s)
	}
}

func TestCodeNamesStable(t *testing.T) {
	want := map[Code]string{
		CodeInvalidParams:  "ERR_INVALID_PARAMS",
		CodeDeckParse:      "ERR_DECK_PARSE",
		CodeMarchParse:     "ERR_MARCH_PARSE",
		CodePlaneParse:     "ERR_PLANE_PARSE",
		CodeGeometry:       "ERR_GEOMETRY",
		CodeNetlist:        "ERR_NETLIST",
		CodeSimDiverged:    "ERR_SIM_DIVERGED",
		CodeFloorplan:      "ERR_FLOORPLAN",
		CodeRepairFailed:   "ERR_REPAIR_FAILED",
		CodeBudgetExceeded: "ERR_BUDGET_EXCEEDED",
		CodeNonFinite:      "ERR_NON_FINITE",
		CodeInternal:       "ERR_INTERNAL",
		CodeBadRequest:     "ERR_BAD_REQUEST",
		CodeOverloaded:     "ERR_OVERLOADED",
		CodeSimSingular:    "ERR_SIM_SINGULAR",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), name)
		}
	}
	if len(Codes()) != len(want) {
		t.Errorf("Codes() returned %d codes, want %d", len(Codes()), len(want))
	}
}

func TestRecoverConvertsPanic(t *testing.T) {
	run := func() (err error) {
		defer Recover("macros", &err)
		panic("geom: cell \"x\" has no port \"y\"")
	}
	err := run()
	if err == nil {
		t.Fatal("expected recovered error")
	}
	if CodeOf(err) != CodeInternal {
		t.Fatalf("recovered panic must be CodeInternal, got %v", CodeOf(err))
	}
	if StageOf(err) != "macros" {
		t.Fatalf("stage = %q, want macros", StageOf(err))
	}
	if !strings.Contains(err.Error(), "recovered panic") {
		t.Fatalf("unexpected rendering %q", err.Error())
	}
	// No panic: errp untouched.
	clean := func() (err error) {
		defer Recover("x", &err)
		return nil
	}
	if clean() != nil {
		t.Fatal("Recover must not fabricate an error without a panic")
	}
}

func TestCodeOfUntyped(t *testing.T) {
	if CodeOf(errors.New("plain")) != CodeUnknown {
		t.Fatal("untyped errors must map to CodeUnknown")
	}
	if CodeOf(nil) != CodeUnknown {
		t.Fatal("nil must map to CodeUnknown")
	}
	if IsTyped(errors.New("plain")) {
		t.Fatal("plain error must not be typed")
	}
	if !IsTyped(New(CodeGeometry, "x")) {
		t.Fatal("taxonomy error must be typed")
	}
}
