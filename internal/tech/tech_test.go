package tech

import (
	"testing"

	"repro/internal/geom"
)

func TestBuiltinsValidate(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("tsmc7"); err == nil {
		t.Fatal("expected error for unknown process")
	}
}

func TestLambdaScaling(t *testing.T) {
	if CDA05.Lambda != 250 || CDA07.Lambda != 350 || MOS06.Lambda != 300 {
		t.Fatalf("lambda values wrong: %d %d %d", CDA05.Lambda, CDA07.Lambda, MOS06.Lambda)
	}
	if CDA05.L(4) != 1000 {
		t.Fatalf("L(4) = %d", CDA05.L(4))
	}
	// Same lambda-rule ratios across processes: poly width is 2λ everywhere.
	for _, p := range []*Process{CDA05, MOS06, CDA07} {
		if p.MinWidth(Poly) != p.L(2) {
			t.Errorf("%s: poly width %d != 2λ", p.Name, p.MinWidth(Poly))
		}
		if p.Pitch(Metal1) != p.MinWidth(Metal1)+p.MinSpacing(Metal1) {
			t.Errorf("%s: pitch arithmetic broken", p.Name)
		}
	}
}

func TestBetaRatio(t *testing.T) {
	for _, p := range []*Process{CDA05, MOS06, CDA07} {
		br := p.BetaRatio()
		if br < 2.0 || br > 4.0 {
			t.Errorf("%s: implausible beta ratio %.2f", p.Name, br)
		}
	}
}

func TestMOSAccessor(t *testing.T) {
	if CDA07.MOS(NMOS).VT0 <= 0 {
		t.Fatal("NMOS VT0 should be positive")
	}
	if CDA07.MOS(PMOS).VT0 >= 0 {
		t.Fatal("PMOS VT0 should be negative")
	}
	if NMOS.String() != "nmos" || PMOS.String() != "pmos" {
		t.Fatal("MOSType strings wrong")
	}
}

func TestValidateRejectsBadDecks(t *testing.T) {
	bad := *CDA07
	bad.Metals = 2
	if err := bad.Validate(); err == nil {
		t.Fatal("2-metal deck must be rejected (paper: BISR RAMs need 3 metals)")
	}
	bad2 := *CDA07
	bad2.Feature = 999
	if err := bad2.Validate(); err == nil {
		t.Fatal("feature/lambda mismatch must be rejected")
	}
	bad3 := *CDA07
	bad3.NMOS.KP = bad3.PMOS.KP / 2
	if err := bad3.Validate(); err == nil {
		t.Fatal("inverted mobility must be rejected")
	}
}

func TestLayerNames(t *testing.T) {
	if LayerName(Metal3) != "metal3" || LayerName(Poly) != "poly" {
		t.Fatal("layer names wrong")
	}
	if LayerName(geom.Layer(99)) != "layer99" {
		t.Fatal("fallback name wrong")
	}
	if len(RoutingLayers) != 3 {
		t.Fatal("expected 3 routing layers")
	}
}

func TestCorners(t *testing.T) {
	slow, err := CDA07.Corner("slow")
	if err != nil {
		t.Fatal(err)
	}
	fast, err := CDA07.Corner("fast")
	if err != nil {
		t.Fatal(err)
	}
	typ, err := CDA07.Corner("typ")
	if err != nil || typ != CDA07 {
		t.Fatal("typ corner should be the deck itself")
	}
	if !(slow.NMOS.KP < CDA07.NMOS.KP && fast.NMOS.KP > CDA07.NMOS.KP) {
		t.Fatal("corner mobilities wrong")
	}
	if !(slow.NMOS.VT0 > CDA07.NMOS.VT0) {
		t.Fatal("slow corner should raise VT")
	}
	// PMOS VT is negative: the magnitude must grow at slow.
	if !(slow.PMOS.VT0 < CDA07.PMOS.VT0) {
		t.Fatal("slow corner PMOS VT magnitude should grow")
	}
	if slow.Name != "cda07u3m1p.slow" {
		t.Fatalf("corner name %q", slow.Name)
	}
	// The base deck is untouched.
	if CDA07.NMOS.KP != 90e-6 {
		t.Fatal("corner mutated the base deck")
	}
	if _, err := CDA07.Corner("bogus"); err == nil {
		t.Fatal("unknown corner accepted")
	}
	if err := slow.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWireParasiticsPresent(t *testing.T) {
	for _, p := range []*Process{CDA05, MOS06, CDA07} {
		for _, l := range RoutingLayers {
			w, ok := p.Wire[l]
			if !ok || w.RSheet <= 0 || w.CArea <= 0 {
				t.Errorf("%s: missing parasitics on %s", p.Name, LayerName(l))
			}
		}
		// Upper metals should be lower resistance.
		if !(p.Wire[Metal3].RSheet <= p.Wire[Metal1].RSheet) {
			t.Errorf("%s: M3 should not be more resistive than M1", p.Name)
		}
	}
}
