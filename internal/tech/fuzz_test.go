package tech

import (
	"strings"
	"testing"

	"repro/internal/cerr"
)

// FuzzParseDeck feeds arbitrary bytes through the process-deck parser.
// The hardening contract: Parse never panics, and every rejection
// carries a taxonomy code. Accepted decks must additionally satisfy
// Validate (parsing must not launder an out-of-envelope process).
func FuzzParseDeck(f *testing.F) {
	f.Add("name x\nfeature_nm 500\nmetals 3\nvdd 3.3\nkp_n 110e-6\nkp_p 38e-6\nvt_n 0.7\nvt_p -0.8\n")
	f.Add("")
	f.Add("name only\n")
	f.Add("feature_nm NaN\nvdd +Inf\n")
	f.Add("rule metal1 width 3 spacing 3\n")
	f.Add("rule bogus width -1 spacing 0\n")
	f.Add("# comment only\n\n\n")
	f.Add("name a\nfeature_nm 1e309\n")
	f.Add("\x00\xff\x00\xff")
	f.Add(strings.Repeat("k v\n", 300))
	f.Fuzz(func(t *testing.T, deck string) {
		p, err := Parse(strings.NewReader(deck))
		if err != nil {
			if !cerr.IsTyped(err) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		if p == nil {
			t.Fatal("nil process with nil error")
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid process: %v", err)
		}
	})
}
