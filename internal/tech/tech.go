// Package tech is BISRAMGEN's process technology database. It carries
// the layer set, lambda-based design rules, interconnect parasitics and
// level-1 MOS device parameters that make the layout generators
// design-rule independent: all geometry is computed from the numbers
// here, never hard-coded.
//
// Three synthetic 3-metal single-poly processes are built in, mirroring
// the processes named in the paper (Cascade Design Automation 0.5 µm
// and 0.7 µm, and the MOSIS 0.6 µm HP process). The numeric values are
// period-plausible reconstructions; the real decks are proprietary, and
// every downstream result depends only on the parameterisation, not on
// the exact values (see DESIGN.md, substitutions).
package tech

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/cerr"
	"repro/internal/geom"
)

// Layer identifiers. These intentionally match geom.Layer values used
// by generators.
const (
	NWell geom.Layer = iota
	Active
	Poly
	NPlus
	PPlus
	Contact
	Metal1
	Via1
	Metal2
	Via2
	Metal3
	NumLayers
)

// LayerName returns the canonical name of a layer.
func LayerName(l geom.Layer) string {
	names := [...]string{"nwell", "active", "poly", "nplus", "pplus",
		"contact", "metal1", "via1", "metal2", "via2", "metal3"}
	if int(l) < 0 || int(l) >= len(names) {
		return fmt.Sprintf("layer%d", int(l))
	}
	return names[l]
}

// RoutingLayers lists the layers the routers may use, lowest first.
var RoutingLayers = []geom.Layer{Metal1, Metal2, Metal3}

// MOSType distinguishes device polarity.
type MOSType int

// Device polarities.
const (
	NMOS MOSType = iota
	PMOS
)

func (t MOSType) String() string {
	if t == NMOS {
		return "nmos"
	}
	return "pmos"
}

// MOSParams holds simplified level-1 (Shichman–Hodges) parameters plus
// the capacitances the timing model needs. Units: SI (V, A, F, m).
type MOSParams struct {
	VT0     float64 // zero-bias threshold voltage (V); negative for PMOS
	KP      float64 // transconductance µCox (A/V²)
	Lambda  float64 // channel-length modulation (1/V)
	CgsPerW float64 // gate capacitance per metre of width at drawn L (F/m)
	CjPerW  float64 // junction (drain/source) capacitance per metre of width (F/m)
}

// Interconnect carries per-layer parasitics.
type Interconnect struct {
	RSheet float64 // ohm/square
	CArea  float64 // F/m² to substrate
	CEdge  float64 // F/m fringing per edge
}

// Process is one technology deck.
type Process struct {
	Name    string
	Lambda  int     // half of drawn feature size, in dbu (nm)
	Feature int     // drawn minimum gate length, in dbu (nm)
	Metals  int     // number of metal layers
	VDD     float64 // supply voltage

	Rules map[geom.Layer]geom.Rule // min width/spacing per layer
	// ContactSize is the drawn contact/via edge; ContactEnclosure the
	// required metal/active enclosure of a contact.
	ContactSize      int
	ContactEnclosure int
	// PolyExtension is the gate poly endcap past active.
	PolyExtension int

	Wire map[geom.Layer]Interconnect
	NMOS MOSParams
	PMOS MOSParams
}

// L returns n lambdas in dbu.
func (p *Process) L(n int) int { return n * p.Lambda }

// MinWidth returns the minimum drawn width for a layer.
func (p *Process) MinWidth(l geom.Layer) int { return p.Rules[l].MinWidth }

// MinSpacing returns the minimum same-layer spacing for a layer.
func (p *Process) MinSpacing(l geom.Layer) int { return p.Rules[l].MinSpacing }

// Pitch returns width+spacing for a routing layer: the track pitch.
func (p *Process) Pitch(l geom.Layer) int {
	r := p.Rules[l]
	return r.MinWidth + r.MinSpacing
}

// MOS returns the device parameters for a polarity.
func (p *Process) MOS(t MOSType) MOSParams {
	if t == NMOS {
		return p.NMOS
	}
	return p.PMOS
}

// BetaRatio returns KPn/KPp — the width ratio a PMOS needs over an
// NMOS for equal drive, used by the rise/fall balancing utility.
func (p *Process) BetaRatio() float64 { return p.NMOS.KP / p.PMOS.KP }

// newProcess builds a deck from a feature size in nm using scalable
// lambda rules (MOSIS SCMOS-like ratios).
func newProcess(name string, featureNm int, vdd float64, kpN, kpP float64) *Process {
	lambda := featureNm / 2
	p := &Process{
		Name:    name,
		Lambda:  lambda,
		Feature: featureNm,
		Metals:  3,
		VDD:     vdd,
		Rules:   map[geom.Layer]geom.Rule{},
	}
	l := p.L
	p.Rules[NWell] = geom.Rule{MinWidth: l(10), MinSpacing: l(6)}
	p.Rules[Active] = geom.Rule{MinWidth: l(3), MinSpacing: l(3)}
	p.Rules[Poly] = geom.Rule{MinWidth: l(2), MinSpacing: l(2)}
	p.Rules[NPlus] = geom.Rule{MinWidth: l(4), MinSpacing: l(4)}
	p.Rules[PPlus] = geom.Rule{MinWidth: l(4), MinSpacing: l(4)}
	p.Rules[Contact] = geom.Rule{MinWidth: l(2), MinSpacing: l(2)}
	p.Rules[Metal1] = geom.Rule{MinWidth: l(3), MinSpacing: l(3)}
	p.Rules[Via1] = geom.Rule{MinWidth: l(2), MinSpacing: l(3)}
	p.Rules[Metal2] = geom.Rule{MinWidth: l(3), MinSpacing: l(4)}
	p.Rules[Via2] = geom.Rule{MinWidth: l(2), MinSpacing: l(3)}
	p.Rules[Metal3] = geom.Rule{MinWidth: l(5), MinSpacing: l(5)}
	p.ContactSize = l(2)
	p.ContactEnclosure = l(1)
	p.PolyExtension = l(2)

	p.Wire = map[geom.Layer]Interconnect{
		Poly:   {RSheet: 25, CArea: 6.0e-5, CEdge: 3.0e-11},
		Metal1: {RSheet: 0.08, CArea: 3.0e-5, CEdge: 4.0e-11},
		Metal2: {RSheet: 0.07, CArea: 2.0e-5, CEdge: 3.5e-11},
		Metal3: {RSheet: 0.05, CArea: 1.5e-5, CEdge: 3.0e-11},
	}
	// Gate capacitance ~ Cox*L per unit width; Cox ≈ 2.5 fF/µm² scaled
	// by feature. Junction cap per width dominated by contacted
	// diffusion of ~5λ extent.
	lm := float64(featureNm) * 1e-9 // gate length in metres
	cox := 2.5e-3                   // F/m² nominal oxide cap for ~0.5 µm era
	p.NMOS = MOSParams{
		VT0: 0.7, KP: kpN, Lambda: 0.05,
		CgsPerW: cox * lm, CjPerW: 0.6 * cox * lm * 2.5,
	}
	p.PMOS = MOSParams{
		VT0: -0.8, KP: kpP, Lambda: 0.06,
		CgsPerW: cox * lm, CjPerW: 0.6 * cox * lm * 2.5,
	}
	return p
}

// processes is the ByName registry. procMu makes lookup and
// registration safe from concurrent server goroutines; the built-in
// decks register during package init, before any concurrency exists.
var (
	procMu    sync.RWMutex
	processes = map[string]*Process{}
)

func register(p *Process) *Process {
	procMu.Lock()
	defer procMu.Unlock()
	processes[p.Name] = p
	return p
}

// The three built-in decks. Names follow the paper's conventions
// (vendor, feature, metals, poly count).
var (
	// CDA05 models the Cascade Design Automation 0.5 µm 3-metal
	// 1-poly process ("CDA.53m1p").
	CDA05 = register(newProcess("cda05u3m1p", 500, 3.3, 110e-6, 38e-6))
	// MOS06 models the MOSIS HP 0.6 µm process ("mos.63m1pHP").
	MOS06 = register(newProcess("mos06u3m1pHP", 600, 3.3, 100e-6, 35e-6))
	// CDA07 models the Cascade Design Automation 0.7 µm process
	// ("CDA.73m1p"), the deck used for the paper's Table I.
	CDA07 = register(newProcess("cda07u3m1p", 700, 5.0, 90e-6, 30e-6))
)

// Corner derives a process-corner variant of a deck: "slow" degrades
// both carrier mobilities by 20% and raises threshold magnitudes by
// 10%; "fast" does the opposite; "typ" returns the deck unchanged.
// Timing guarantees are extrapolated at the slow corner, as any
// 1990s sign-off flow would.
func (p *Process) Corner(name string) (*Process, error) {
	var kp, vt float64
	switch name {
	case "typ":
		return p, nil
	case "slow":
		kp, vt = 0.8, 1.1
	case "fast":
		kp, vt = 1.2, 0.9
	default:
		return nil, cerr.New(cerr.CodeInvalidParams, "tech: unknown corner %q (typ, slow, fast)", name)
	}
	q := *p
	q.Name = p.Name + "." + name
	q.NMOS.KP *= kp
	q.PMOS.KP *= kp
	q.NMOS.VT0 *= vt
	q.PMOS.VT0 *= vt
	return &q, nil
}

// ByName looks up a built-in process deck. Safe for concurrent use.
func ByName(name string) (*Process, error) {
	procMu.RLock()
	p, ok := processes[name]
	procMu.RUnlock()
	if !ok {
		return nil, cerr.New(cerr.CodeInvalidParams, "tech: unknown process %q (have %v)", name, Names())
	}
	return p, nil
}

// Names lists the registered process names, sorted. Safe for
// concurrent use.
func Names() []string {
	procMu.RLock()
	out := make([]string, 0, len(processes))
	for n := range processes {
		out = append(out, n)
	}
	procMu.RUnlock()
	sort.Strings(out)
	return out
}

// Validate performs internal consistency checks on a deck; generators
// call it once before building a library. Failures are typed
// cerr.ErrDeckParse, since an invalid deck is a deck problem whether it
// arrived from a file or was constructed in code.
func (p *Process) Validate() error {
	deckErr := func(format string, args ...any) error {
		return cerr.New(cerr.CodeDeckParse, format, args...)
	}
	if p.Lambda <= 0 || p.Feature != 2*p.Lambda {
		return deckErr("tech %s: feature %d must be 2×lambda %d", p.Name, p.Feature, p.Lambda)
	}
	if p.Feature > maxFeatureNm {
		return deckErr("tech %s: feature %d nm beyond supported %d nm", p.Name, p.Feature, maxFeatureNm)
	}
	if p.Metals < 3 || p.Metals > maxMetals {
		return deckErr("tech %s: BISRAMGEN requires 3..%d metal layers, have %d", p.Name, maxMetals, p.Metals)
	}
	// Non-finite or absurd electrical parameters poison every downstream
	// timing/power integral; reject them at the boundary.
	finite := func(name string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return deckErr("tech %s: %s is not finite (%v)", p.Name, name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"vdd", p.VDD},
		{"kp_n", p.NMOS.KP}, {"kp_p", p.PMOS.KP},
		{"vt_n", p.NMOS.VT0}, {"vt_p", p.PMOS.VT0},
		{"cgs_n", p.NMOS.CgsPerW}, {"cgs_p", p.PMOS.CgsPerW},
		{"cj_n", p.NMOS.CjPerW}, {"cj_p", p.PMOS.CjPerW},
	} {
		if err := finite(f.name, f.v); err != nil {
			return err
		}
	}
	if p.VDD <= 0 || p.VDD > maxVDD {
		return deckErr("tech %s: VDD %g outside (0, %g]", p.Name, p.VDD, maxVDD)
	}
	if p.NMOS.KP <= 0 || p.PMOS.KP <= 0 {
		return deckErr("tech %s: non-positive transconductance", p.Name)
	}
	for _, l := range []geom.Layer{Active, Poly, Contact, Metal1, Metal2, Metal3} {
		r, ok := p.Rules[l]
		if !ok || r.MinWidth <= 0 || r.MinSpacing <= 0 {
			return deckErr("tech %s: missing rule for %s", p.Name, LayerName(l))
		}
	}
	if p.NMOS.KP <= p.PMOS.KP {
		return deckErr("tech %s: expected NMOS KP > PMOS KP", p.Name)
	}
	if p.VDD <= p.NMOS.VT0-p.PMOS.VT0 {
		return deckErr("tech %s: VDD %.2f too small for thresholds", p.Name, p.VDD)
	}
	return nil
}

// Envelope limits for user-supplied deck values. The paper's lineage
// targets 0.5-0.7 µm CMOS; anything past these bounds is a corrupt
// deck, not a plausible technology.
const (
	maxFeatureNm = 20000 // 20 µm
	maxMetals    = 16
	maxVDD       = 100.0
)
