package tech

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/cerr"
	"repro/internal/geom"
)

// Parse limits. User decks are small key/value files; anything past
// these bounds is garbage input, and bounding them keeps adversarial
// decks from exhausting memory.
const (
	maxDeckLines   = 1 << 16 // 65536 lines
	maxDeckLineLen = 4096    // bytes per line
)

// Parse reads a user-supplied process deck — the "any input process
// technology and set of design rules" capability the paper inherits
// from the CDA and ARC compilers. The format is line-oriented
// key/value text; '#' starts a comment:
//
//	name       my05u3m1p
//	feature_nm 500
//	metals     3
//	vdd        3.3
//	kp_n       110e-6
//	kp_p       38e-6
//	vt_n       0.7
//	vt_p       -0.8
//	# optional per-layer overrides, values in lambda:
//	rule metal1 width 3 spacing 3
//
// Anything not specified inherits the scalable λ-rule defaults used
// by the built-in decks.
//
// All failures — syntax, missing keys, non-finite or out-of-envelope
// values, oversized input — are typed cerr.ErrDeckParse; Parse never
// panics on adversarial input (see FuzzParseDeck and the
// faultcampaign suite).
func Parse(r io.Reader) (*Process, error) {
	perr := func(format string, args ...any) error {
		return cerr.New(cerr.CodeDeckParse, format, args...)
	}
	vals := map[string]string{}
	type ruleOverride struct {
		layer          geom.Layer
		width, spacing int
	}
	var overrides []ruleOverride

	layerByName := map[string]geom.Layer{}
	for l := geom.Layer(0); l < NumLayers; l++ {
		layerByName[LayerName(l)] = l
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024), maxDeckLineLen)
	line := 0
	for sc.Scan() {
		line++
		if line > maxDeckLines {
			return nil, perr("tech: deck exceeds %d lines", maxDeckLines)
		}
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "rule":
			if len(fields) != 6 || fields[2] != "width" || fields[4] != "spacing" {
				return nil, perr("tech: line %d: want 'rule <layer> width <n> spacing <n>'", line)
			}
			l, ok := layerByName[fields[1]]
			if !ok {
				return nil, perr("tech: line %d: unknown layer %q", line, fields[1])
			}
			w, err1 := strconv.Atoi(fields[3])
			s, err2 := strconv.Atoi(fields[5])
			if err1 != nil || err2 != nil || w <= 0 || s <= 0 || w > 1<<20 || s > 1<<20 {
				return nil, perr("tech: line %d: bad rule numbers", line)
			}
			overrides = append(overrides, ruleOverride{l, w, s})
		default:
			if len(fields) != 2 {
				return nil, perr("tech: line %d: want 'key value'", line)
			}
			if len(vals) >= 256 {
				return nil, perr("tech: line %d: too many keys", line)
			}
			vals[fields[0]] = fields[1]
		}
	}
	if err := sc.Err(); err != nil {
		return nil, cerr.Wrap(cerr.CodeDeckParse, err, "tech: reading deck")
	}

	get := func(key string) (string, error) {
		v, ok := vals[key]
		if !ok {
			return "", perr("tech: missing required key %q", key)
		}
		return v, nil
	}
	// getF parses a float and rejects NaN/Inf: a non-finite deck value
	// would otherwise propagate through every downstream timing, power
	// and yield computation.
	getF := func(key string) (float64, error) {
		s, err := get(key)
		if err != nil {
			return 0, err
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, perr("tech: key %q: %v", key, err)
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return 0, perr("tech: key %q: non-finite value %q", key, s)
		}
		return f, nil
	}

	name, err := get("name")
	if err != nil {
		return nil, err
	}
	featF, err := getF("feature_nm")
	if err != nil {
		return nil, err
	}
	if featF < 2 || featF > maxFeatureNm {
		return nil, perr("tech: feature_nm %g outside [2, %d]", featF, maxFeatureNm)
	}
	feature := int(featF)
	if feature < 2 || feature%2 != 0 {
		return nil, perr("tech: feature_nm %d must be a positive even number", feature)
	}
	vdd, err := getF("vdd")
	if err != nil {
		return nil, err
	}
	kpN, err := getF("kp_n")
	if err != nil {
		return nil, err
	}
	kpP, err := getF("kp_p")
	if err != nil {
		return nil, err
	}

	p := newProcess(name, feature, vdd, kpN, kpP)
	if v, ok := vals["metals"]; ok {
		m, err := strconv.Atoi(v)
		if err != nil {
			return nil, perr("tech: metals: %v", err)
		}
		p.Metals = m
	}
	if v, ok := vals["vt_n"]; ok {
		f, err := getF("vt_n")
		if err != nil {
			return nil, perr("tech: vt_n: bad value %q", v)
		}
		p.NMOS.VT0 = f
	}
	if v, ok := vals["vt_p"]; ok {
		f, err := getF("vt_p")
		if err != nil {
			return nil, perr("tech: vt_p: bad value %q", v)
		}
		p.PMOS.VT0 = f
	}
	for _, ov := range overrides {
		p.Rules[ov.layer] = geom.Rule{MinWidth: p.L(ov.width), MinSpacing: p.L(ov.spacing)}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Register adds a parsed process to the ByName registry, replacing
// any same-named deck. Safe for concurrent use.
func Register(p *Process) { register(p) }
