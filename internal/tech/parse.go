package tech

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// Parse reads a user-supplied process deck — the "any input process
// technology and set of design rules" capability the paper inherits
// from the CDA and ARC compilers. The format is line-oriented
// key/value text; '#' starts a comment:
//
//	name       my05u3m1p
//	feature_nm 500
//	metals     3
//	vdd        3.3
//	kp_n       110e-6
//	kp_p       38e-6
//	vt_n       0.7
//	vt_p       -0.8
//	# optional per-layer overrides, values in lambda:
//	rule metal1 width 3 spacing 3
//
// Anything not specified inherits the scalable λ-rule defaults used
// by the built-in decks.
func Parse(r io.Reader) (*Process, error) {
	vals := map[string]string{}
	type ruleOverride struct {
		layer          geom.Layer
		width, spacing int
	}
	var overrides []ruleOverride

	layerByName := map[string]geom.Layer{}
	for l := geom.Layer(0); l < NumLayers; l++ {
		layerByName[LayerName(l)] = l
	}

	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "rule":
			if len(fields) != 6 || fields[2] != "width" || fields[4] != "spacing" {
				return nil, fmt.Errorf("tech: line %d: want 'rule <layer> width <n> spacing <n>'", line)
			}
			l, ok := layerByName[fields[1]]
			if !ok {
				return nil, fmt.Errorf("tech: line %d: unknown layer %q", line, fields[1])
			}
			w, err1 := strconv.Atoi(fields[3])
			s, err2 := strconv.Atoi(fields[5])
			if err1 != nil || err2 != nil || w <= 0 || s <= 0 {
				return nil, fmt.Errorf("tech: line %d: bad rule numbers", line)
			}
			overrides = append(overrides, ruleOverride{l, w, s})
		default:
			if len(fields) != 2 {
				return nil, fmt.Errorf("tech: line %d: want 'key value'", line)
			}
			vals[fields[0]] = fields[1]
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	get := func(key string) (string, error) {
		v, ok := vals[key]
		if !ok {
			return "", fmt.Errorf("tech: missing required key %q", key)
		}
		return v, nil
	}
	getF := func(key string) (float64, error) {
		s, err := get(key)
		if err != nil {
			return 0, err
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("tech: key %q: %v", key, err)
		}
		return f, nil
	}

	name, err := get("name")
	if err != nil {
		return nil, err
	}
	featF, err := getF("feature_nm")
	if err != nil {
		return nil, err
	}
	feature := int(featF)
	if feature < 2 || feature%2 != 0 {
		return nil, fmt.Errorf("tech: feature_nm %d must be a positive even number", feature)
	}
	vdd, err := getF("vdd")
	if err != nil {
		return nil, err
	}
	kpN, err := getF("kp_n")
	if err != nil {
		return nil, err
	}
	kpP, err := getF("kp_p")
	if err != nil {
		return nil, err
	}

	p := newProcess(name, feature, vdd, kpN, kpP)
	if v, ok := vals["metals"]; ok {
		m, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("tech: metals: %v", err)
		}
		p.Metals = m
	}
	if v, ok := vals["vt_n"]; ok {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("tech: vt_n: %v", err)
		}
		p.NMOS.VT0 = f
	}
	if v, ok := vals["vt_p"]; ok {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("tech: vt_p: %v", err)
		}
		p.PMOS.VT0 = f
	}
	for _, ov := range overrides {
		p.Rules[ov.layer] = geom.Rule{MinWidth: p.L(ov.width), MinSpacing: p.L(ov.spacing)}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Register adds a parsed process to the ByName registry, replacing
// any same-named deck.
func Register(p *Process) { processes[p.Name] = p }
