package tech

import (
	"strings"
	"testing"

	"repro/internal/geom"
)

const sampleDeck = `
# a user 0.35um deck
name       user035u4m1p
feature_nm 350
metals     4
vdd        3.3
kp_n       150e-6
kp_p       55e-6
vt_n       0.6
vt_p       -0.65
rule metal1 width 4 spacing 4
`

func TestParseDeck(t *testing.T) {
	p, err := Parse(strings.NewReader(sampleDeck))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "user035u4m1p" || p.Feature != 350 || p.Lambda != 175 || p.Metals != 4 {
		t.Fatalf("parsed deck wrong: %+v", p)
	}
	if p.NMOS.VT0 != 0.6 || p.PMOS.VT0 != -0.65 {
		t.Fatal("threshold overrides lost")
	}
	// Rule override: metal1 4λ/4λ instead of the default 3λ/3λ.
	if p.MinWidth(Metal1) != p.L(4) || p.MinSpacing(Metal1) != p.L(4) {
		t.Fatalf("rule override lost: %v", p.Rules[Metal1])
	}
	// Non-overridden layers keep scalable defaults.
	if p.MinWidth(Poly) != p.L(2) {
		t.Fatal("default rules lost")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseRegisterLookup(t *testing.T) {
	p, err := Parse(strings.NewReader(sampleDeck))
	if err != nil {
		t.Fatal(err)
	}
	Register(p)
	got, err := ByName("user035u4m1p")
	if err != nil || got != p {
		t.Fatal("registered deck not found")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"feature_nm 500\nvdd 3.3\nkp_n 1e-4\nkp_p 4e-5\n",                                        // missing name
		"name x\nfeature_nm 501\nvdd 3.3\nkp_n 1e-4\nkp_p 4e-5\n",                                // odd feature
		"name x\nfeature_nm 500\nvdd 3.3\nkp_n bogus\nkp_p 4e-5\n",                               // bad float
		"name x\nfeature_nm 500\nvdd 3.3\nkp_n 1e-4\nkp_p 4e-5\nmetals 2\n",                      // too few metals
		"name x\nfeature_nm 500\nvdd 3.3\nkp_n 1e-4\nkp_p 4e-5\nrule bogus width 3 spacing 3\n",  // unknown layer
		"name x\nfeature_nm 500\nvdd 3.3\nkp_n 1e-4\nkp_p 4e-5\nrule metal1 width 0 spacing 3\n", // zero width
		"just one field\nname x\n", // malformed line
	}
	for i, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted:\n%s", i, c)
		}
	}
}

func TestParsedDeckUsableByDRC(t *testing.T) {
	p, err := Parse(strings.NewReader(sampleDeck))
	if err != nil {
		t.Fatal(err)
	}
	// A wire at the overridden width passes; the old default width
	// fails.
	c := geom.NewCell("w")
	c.AddShape(Metal1, geom.R(0, 0, p.L(3), p.L(20)), "a")
	rules := map[geom.Layer]geom.Rule{Metal1: p.Rules[Metal1]}
	if vs := geom.Check(c, rules, 1); len(vs) != 1 {
		t.Fatal("3λ wire should violate the 4λ override")
	}
}
