package march

import (
	"strings"
	"testing"

	"repro/internal/cerr"
)

// FuzzMarchNotation feeds arbitrary strings through the march-test
// parser. Contract: never panics, rejections are typed, and accepted
// tests stay within the element/op caps so downstream cycle budgets
// remain bounded.
func FuzzMarchNotation(f *testing.F) {
	f.Add("{b(w0); u(r0,w1); Del; d(r1,w0)}")
	f.Add("{⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}")
	f.Add("")
	f.Add("{}")
	f.Add("{u(q9)}")
	f.Add("{u(w0); Del}")
	f.Add("{{u(w0)}}")
	f.Add(strings.Repeat("u(w0);", 5000))
	f.Add("{u(" + strings.Repeat("r0,", 2000) + "w0)}")
	f.Add("\x00\x01\x02")
	f.Fuzz(func(t *testing.T, s string) {
		test, err := Parse("fuzz", s)
		if err != nil {
			if !cerr.IsTyped(err) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		if len(test.Elements) == 0 || len(test.Elements) > 4096 {
			t.Fatalf("accepted test with %d elements", len(test.Elements))
		}
		for _, e := range test.Elements {
			if len(e.Ops) == 0 || len(e.Ops) > 1024 {
				t.Fatalf("accepted element with %d ops", len(e.Ops))
			}
		}
		if test.OpCount() <= 0 {
			t.Fatalf("accepted test with op count %d", test.OpCount())
		}
	})
}
