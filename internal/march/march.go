// Package march implements word-oriented memory march tests in the
// standard notation — ⇑(r0,w1) etc. — together with the IFA-9 and
// IFA-13 algorithms the paper's BIST controller microprograms, the
// MATS+ and March C- references, data backgrounds, and failure
// logging used by the self-repair flow.
package march

import (
	"fmt"
	"strings"

	"repro/internal/cerr"
)

// DUT is the device under test: a word-addressable memory. The
// behavioural sram.Array and the BISR-wrapped RAM both implement it.
type DUT interface {
	Words() int
	Read(addr int) uint64
	Write(addr int, data uint64)
	// Wait models the data-retention delay phase (the embedded
	// processor tristating the RAM interface for ~100 ms).
	Wait()
}

// OpKind is a read or a write.
type OpKind int

// Operation kinds.
const (
	Read OpKind = iota
	Write
)

// Op is one operation within a march element. Inverted selects the
// complemented background pattern.
type Op struct {
	Kind     OpKind
	Inverted bool
}

// Order is an element's addressing order.
type Order int

// Address orders. Either means the order is irrelevant to the
// element's fault coverage; the engine runs it ascending.
const (
	Ascending Order = iota
	Descending
	Either
)

// Element is one march element: an address order and an op sequence
// applied at every address before moving on.
type Element struct {
	Order Order
	Ops   []Op
	// Delay, when set, inserts the data-retention wait *before* this
	// element runs.
	Delay bool
}

// Test is a complete march test.
type Test struct {
	Name     string
	Elements []Element
}

// String renders the test in march notation.
func (t Test) String() string {
	var b strings.Builder
	b.WriteString(t.Name + ": {")
	for i, e := range t.Elements {
		if i > 0 {
			b.WriteString("; ")
		}
		if e.Delay {
			b.WriteString("Del; ")
		}
		switch e.Order {
		case Ascending:
			b.WriteString("⇑(")
		case Descending:
			b.WriteString("⇓(")
		default:
			b.WriteString("⇕(")
		}
		for j, op := range e.Ops {
			if j > 0 {
				b.WriteByte(',')
			}
			if op.Kind == Read {
				b.WriteByte('r')
			} else {
				b.WriteByte('w')
			}
			if op.Inverted {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		b.WriteByte(')')
	}
	b.WriteByte('}')
	return b.String()
}

// Ops returns the total operation count per address per background.
func (t Test) OpCount() int {
	n := 0
	for _, e := range t.Elements {
		n += len(e.Ops)
	}
	return n
}

func el(order Order, delay bool, ops ...Op) Element {
	return Element{Order: order, Ops: ops, Delay: delay}
}

func r(inv bool) Op { return Op{Kind: Read, Inverted: inv} }
func w(inv bool) Op { return Op{Kind: Write, Inverted: inv} }

// IFA9 is the test BISRAMGEN microprograms into the TRPLA:
// {⇑(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); Del; ⇑(r0,w1);
// Del; ⇑(r1)}. The two delays implement data-retention testing.
func IFA9() Test {
	return Test{Name: "IFA-9", Elements: []Element{
		el(Either, false, w(false)),
		el(Ascending, false, r(false), w(true)),
		el(Ascending, false, r(true), w(false)),
		el(Descending, false, r(false), w(true)),
		el(Descending, false, r(true), w(false)),
		el(Ascending, true, r(false), w(true)),
		el(Ascending, true, r(true)),
	}}
}

// IFA13 extends IFA-9 with a read-after-write in each march element,
// adding stuck-open fault coverage:
// {⇑(w0); ⇑(r0,w1,r1); ⇑(r1,w0,r0); ⇓(r0,w1,r1); ⇓(r1,w0,r0);
// Del; ⇑(r0,w1); Del; ⇑(r1)}.
func IFA13() Test {
	return Test{Name: "IFA-13", Elements: []Element{
		el(Either, false, w(false)),
		el(Ascending, false, r(false), w(true), r(true)),
		el(Ascending, false, r(true), w(false), r(false)),
		el(Descending, false, r(false), w(true), r(true)),
		el(Descending, false, r(true), w(false), r(false)),
		el(Ascending, true, r(false), w(true)),
		el(Ascending, true, r(true)),
	}}
}

// MATSPlus is the short MATS+ test {⇕(w0); ⇑(r0,w1); ⇓(r1,w0)},
// a low-coverage baseline.
func MATSPlus() Test {
	return Test{Name: "MATS+", Elements: []Element{
		el(Either, false, w(false)),
		el(Ascending, false, r(false), w(true)),
		el(Descending, false, r(true), w(false)),
	}}
}

// MarchCMinus is March C- {⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1);
// ⇓(r1,w0); ⇕(r0)}, the classic coupling-fault test without
// retention delays.
func MarchCMinus() Test {
	return Test{Name: "March C-", Elements: []Element{
		el(Either, false, w(false)),
		el(Ascending, false, r(false), w(true)),
		el(Ascending, false, r(true), w(false)),
		el(Descending, false, r(false), w(true)),
		el(Descending, false, r(true), w(false)),
		el(Either, false, r(false)),
	}}
}

// MarchX is March X {⇕(w0); ⇑(r0,w1); ⇓(r1,w0); ⇕(r0)}: adds
// address-fault coverage over MATS+ via the closing read.
func MarchX() Test {
	return Test{Name: "March X", Elements: []Element{
		el(Either, false, w(false)),
		el(Ascending, false, r(false), w(true)),
		el(Descending, false, r(true), w(false)),
		el(Either, false, r(false)),
	}}
}

// MarchY is March Y {⇕(w0); ⇑(r0,w1,r1); ⇓(r1,w0,r0); ⇕(r0)}: March X
// with read-after-write for linked transition faults.
func MarchY() Test {
	return Test{Name: "March Y", Elements: []Element{
		el(Either, false, w(false)),
		el(Ascending, false, r(false), w(true), r(true)),
		el(Descending, false, r(true), w(false), r(false)),
		el(Either, false, r(false)),
	}}
}

// MarchB is March B {⇕(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1);
// ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)}: covers linked idempotent coupling
// faults at 17N cost.
func MarchB() Test {
	return Test{Name: "March B", Elements: []Element{
		el(Either, false, w(false)),
		el(Ascending, false, r(false), w(true), r(true), w(false), r(false), w(true)),
		el(Ascending, false, r(true), w(false), w(true)),
		el(Descending, false, r(true), w(false), w(true), w(false)),
		el(Descending, false, r(false), w(true), w(false)),
	}}
}

// AllTests returns every implemented march algorithm, for sweeps.
func AllTests() []Test {
	return []Test{MATSPlus(), MarchX(), MarchY(), MarchCMinus(), MarchB(), IFA9(), IFA13()}
}

// Failure records one miscompare.
type Failure struct {
	Addr     int
	Expected uint64
	Got      uint64
	Element  int // index of the march element
	BG       uint64
}

func (f Failure) String() string {
	return fmt.Sprintf("addr %d: expected %x got %x (element %d, bg %x)", f.Addr, f.Expected, f.Got, f.Element, f.BG)
}

// Result is the outcome of a run.
type Result struct {
	Test       string
	Failures   []Failure
	Operations int64
}

// Pass reports whether the run saw no miscompares.
func (r *Result) Pass() bool { return len(r.Failures) == 0 }

// FailedAddrs returns the distinct failing word addresses in first-seen
// order.
func (r *Result) FailedAddrs() []int {
	seen := map[int]bool{}
	var out []int
	for _, f := range r.Failures {
		if !seen[f.Addr] {
			seen[f.Addr] = true
			out = append(out, f.Addr)
		}
	}
	return out
}

// JohnsonBackgrounds returns the bpw+1 distinct backgrounds the
// paper's DATAGEN Johnson counter supplies for a bpw-bit word:
// all-0, 10…0-style running fills, …, all-1. The Johnson counter's
// 2·bpw states produce bpw+1 distinct unordered background pairs
// (each pattern's complement appears in the other half-cycle).
//
// The function is total: out-of-range widths are clamped into the
// representable [1, 64] (the behavioural model packs words in uint64).
// Boundaries that must reject rather than clamp use
// JohnsonBackgroundsChecked.
func JohnsonBackgrounds(bpw int) []uint64 {
	if bpw < 1 {
		bpw = 1
	}
	if bpw > 64 {
		bpw = 64
	}
	out := make([]uint64, 0, bpw+1)
	v := uint64(0)
	out = append(out, v)
	for i := 0; i < bpw; i++ {
		v |= 1 << uint(i)
		out = append(out, v)
	}
	return out
}

// JohnsonBackgroundsChecked is JohnsonBackgrounds with boundary
// validation: word widths outside [1, 64] return a typed
// cerr.ErrInvalidParams instead of being clamped.
func JohnsonBackgroundsChecked(bpw int) ([]uint64, error) {
	if bpw < 1 || bpw > 64 {
		return nil, cerr.New(cerr.CodeInvalidParams, "march: bpw %d outside model range [1, 64]", bpw)
	}
	return JohnsonBackgrounds(bpw), nil
}

// SingleBackground is the degenerate background set (all-0 only) used
// by data generators like Chen–Sunada's that apply one pattern and its
// complement.
func SingleBackground() []uint64 { return []uint64{0} }

// Run applies the test to the DUT for every background pattern,
// comparing each read against its expectation, and keeps going after
// failures (the BIST logs them for repair).
func Run(d DUT, t Test, backgrounds []uint64, bpw int) *Result {
	res := &Result{Test: t.Name}
	mask := ^uint64(0)
	if bpw < 64 {
		mask = 1<<uint(bpw) - 1
	}
	n := d.Words()
	for _, bg := range backgrounds {
		bg &= mask
		for ei, e := range t.Elements {
			if e.Delay {
				d.Wait()
			}
			for k := 0; k < n; k++ {
				addr := k
				if e.Order == Descending {
					addr = n - 1 - k
				}
				for _, op := range e.Ops {
					data := bg
					if op.Inverted {
						data = ^bg & mask
					}
					if op.Kind == Write {
						d.Write(addr, data)
					} else {
						got := d.Read(addr) & mask
						if got != data {
							res.Failures = append(res.Failures, Failure{
								Addr: addr, Expected: data, Got: got, Element: ei, BG: bg,
							})
						}
					}
					res.Operations++
				}
			}
		}
	}
	return res
}
