package march

import (
	"strings"

	"repro/internal/cerr"
)

// Parse limits. March strings come from the command line; the caps
// keep a hostile string from ballooning the in-memory test (and the
// cycle counts derived from it) without excluding any realistic
// algorithm — the longest published march tests are tens of
// operations, not thousands.
const (
	maxElements      = 4096
	maxOpsPerElement = 1024
)

// Parse reads a march test from its notation, enabling custom test
// algorithms from the command line ("changing the control code is a
// simple and straightforward matter"). Both the unicode arrows and an
// ASCII form are accepted:
//
//	{⇕(w0); ⇑(r0,w1); Del; ⇓(r1,w0)}
//	{b(w0); u(r0,w1); Del; d(r1,w0)}
//
// u/⇑ ascending, d/⇓ descending, b/⇕ either; Del inserts the
// data-retention delay before the next element; braces optional.
//
// All failures are typed cerr.ErrMarchParse.
func Parse(name, s string) (Test, error) {
	t := Test{Name: name}
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "{")
	s = strings.TrimSuffix(s, "}")
	pendingDelay := false
	for _, raw := range strings.Split(s, ";") {
		e := strings.TrimSpace(raw)
		if e == "" {
			continue
		}
		if strings.EqualFold(e, "del") || strings.EqualFold(e, "delay") {
			pendingDelay = true
			continue
		}
		if len(t.Elements) >= maxElements {
			return Test{}, cerr.New(cerr.CodeMarchParse, "march: more than %d elements", maxElements)
		}
		elem, err := parseElement(e)
		if err != nil {
			return Test{}, err
		}
		elem.Delay = pendingDelay
		pendingDelay = false
		t.Elements = append(t.Elements, elem)
	}
	if pendingDelay {
		return Test{}, cerr.New(cerr.CodeMarchParse, "march: trailing Del with no element")
	}
	if len(t.Elements) == 0 {
		return Test{}, cerr.New(cerr.CodeMarchParse, "march: empty test")
	}
	return t, nil
}

func parseElement(e string) (Element, error) {
	var el Element
	switch {
	case strings.HasPrefix(e, "⇑"), strings.HasPrefix(e, "u"), strings.HasPrefix(e, "U"):
		el.Order = Ascending
	case strings.HasPrefix(e, "⇓"), strings.HasPrefix(e, "d"), strings.HasPrefix(e, "D"):
		el.Order = Descending
	case strings.HasPrefix(e, "⇕"), strings.HasPrefix(e, "b"), strings.HasPrefix(e, "B"):
		el.Order = Either
	default:
		return el, cerr.New(cerr.CodeMarchParse, "march: element %q: unknown order prefix", e)
	}
	open := strings.IndexByte(e, '(')
	close := strings.LastIndexByte(e, ')')
	if open < 0 || close < open {
		return el, cerr.New(cerr.CodeMarchParse, "march: element %q: missing parentheses", e)
	}
	for _, opStr := range strings.Split(e[open+1:close], ",") {
		opStr = strings.TrimSpace(strings.ToLower(opStr))
		if len(opStr) != 2 {
			return el, cerr.New(cerr.CodeMarchParse, "march: element %q: bad op %q", e, opStr)
		}
		if len(el.Ops) >= maxOpsPerElement {
			return el, cerr.New(cerr.CodeMarchParse, "march: element %q: more than %d ops", e, maxOpsPerElement)
		}
		var op Op
		switch opStr[0] {
		case 'r':
			op.Kind = Read
		case 'w':
			op.Kind = Write
		default:
			return el, cerr.New(cerr.CodeMarchParse, "march: element %q: bad op kind %q", e, opStr)
		}
		switch opStr[1] {
		case '0':
		case '1':
			op.Inverted = true
		default:
			return el, cerr.New(cerr.CodeMarchParse, "march: element %q: bad op datum %q", e, opStr)
		}
		el.Ops = append(el.Ops, op)
	}
	if len(el.Ops) == 0 {
		return el, cerr.New(cerr.CodeMarchParse, "march: element %q has no ops", e)
	}
	return el, nil
}
