// Bit-parallel march execution: RunBatch drives a BatchDUT — a memory
// model evaluating up to 64 independent fault machines per access, one
// per bit of a uint64 lane mask — through a march test once and
// reports which lanes miscompared. One pass over the address space
// answers 64 single-fault detection questions, which is what makes
// the coverage experiments' fault campaigns cheap.
package march

// BatchDUT is a device under test evaluating many independent fault
// machines at once. Writes are lane-invariant (every lane executes the
// same march sequence); reads return per-bit lane masks so each lane's
// sensed word can be compared independently. sram.BatchArray is the
// canonical implementation.
type BatchDUT interface {
	Words() int
	// Lanes returns the number of packed machines (<= 64).
	Lanes() int
	// ReadBits senses the word at addr, storing bit b's lane mask into
	// out[b]. out must have at least bpw elements.
	ReadBits(addr int, out []uint64)
	Write(addr int, data uint64)
	// Wait models the data-retention delay phase, as DUT.Wait.
	Wait()
}

// RunBatch applies the test to every lane of the DUT at once for each
// background pattern and returns the mask of lanes that miscompared at
// least once — lane L of the result is set iff a scalar Run over lane
// L's machine would have logged a failure. Like Run, it keeps going
// after failures so late march elements still contribute detections.
func RunBatch(d BatchDUT, t Test, backgrounds []uint64, bpw int) uint64 {
	mask := ^uint64(0)
	if bpw < 64 {
		mask = 1<<uint(bpw) - 1
	}
	out := make([]uint64, bpw)
	var detected uint64
	n := d.Words()
	for _, bg := range backgrounds {
		bg &= mask
		for _, e := range t.Elements {
			if e.Delay {
				d.Wait()
			}
			for k := 0; k < n; k++ {
				addr := k
				if e.Order == Descending {
					addr = n - 1 - k
				}
				for _, op := range e.Ops {
					data := bg
					if op.Inverted {
						data = ^bg & mask
					}
					if op.Kind == Write {
						d.Write(addr, data)
						continue
					}
					d.ReadBits(addr, out)
					for b := 0; b < bpw; b++ {
						var exp uint64
						if data>>uint(b)&1 == 1 {
							exp = ^uint64(0)
						}
						detected |= out[b] ^ exp
					}
				}
			}
		}
	}
	return detected
}
