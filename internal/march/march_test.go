package march

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sram"
)

func newArr(t *testing.T) *sram.Array {
	t.Helper()
	return sram.MustNew(sram.Config{Words: 64, BPW: 4, BPC: 4, SpareRows: 2})
}

func TestNotationString(t *testing.T) {
	s := IFA9().String()
	for _, want := range []string{"IFA-9", "⇑(r0,w1)", "⇓(r1,w0)", "Del;"} {
		if !strings.Contains(s, want) {
			t.Errorf("notation missing %q: %s", want, s)
		}
	}
	if !strings.Contains(MATSPlus().String(), "⇕(") {
		t.Error("MATS+ should start with ⇕")
	}
}

func TestOpCounts(t *testing.T) {
	// IFA-9: 1 + 2+2+2+2 + 2 + 1 = 12 ops/address/background.
	if got := IFA9().OpCount(); got != 12 {
		t.Fatalf("IFA-9 op count %d, want 12", got)
	}
	// IFA-13: 1 + 3+3+3+3 + 2 + 1 = 16.
	if got := IFA13().OpCount(); got != 16 {
		t.Fatalf("IFA-13 op count %d, want 16", got)
	}
	if got := MATSPlus().OpCount(); got != 5 {
		t.Fatalf("MATS+ op count %d, want 5", got)
	}
	if got := MarchCMinus().OpCount(); got != 10 {
		t.Fatalf("March C- op count %d, want 10", got)
	}
}

func TestFaultFreePasses(t *testing.T) {
	a := newArr(t)
	for _, test := range []Test{IFA9(), IFA13(), MATSPlus(), MarchCMinus()} {
		res := Run(a, test, JohnsonBackgrounds(4), 4)
		if !res.Pass() {
			t.Errorf("%s failed on fault-free array: %v", test.Name, res.Failures[0])
		}
		if res.Operations == 0 {
			t.Errorf("%s ran no operations", test.Name)
		}
	}
}

func TestDetectsStuckAt(t *testing.T) {
	for _, k := range []sram.FaultKind{sram.SA0, sram.SA1} {
		a := newArr(t)
		if err := a.Inject(sram.CellAddr{Row: 2, Col: 5}, sram.Fault{Kind: k}); err != nil {
			t.Fatal(err)
		}
		res := Run(a, IFA9(), JohnsonBackgrounds(4), 4)
		if res.Pass() {
			t.Errorf("IFA-9 missed %v", k)
		}
		// The failing address must be the word owning (row2, col5):
		// col 5 = bit 1 * bpc + colsel 1 -> addr = 2*4+1 = 9.
		addrs := res.FailedAddrs()
		found := false
		for _, ad := range addrs {
			if ad == 9 {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: failing addrs %v missing 9", k, addrs)
		}
	}
}

func TestDetectsTransition(t *testing.T) {
	for _, k := range []sram.FaultKind{sram.TFU, sram.TFD} {
		a := newArr(t)
		if err := a.Inject(sram.CellAddr{Row: 0, Col: 0}, sram.Fault{Kind: k}); err != nil {
			t.Fatal(err)
		}
		if res := Run(a, IFA9(), JohnsonBackgrounds(4), 4); res.Pass() {
			t.Errorf("IFA-9 missed %v", k)
		}
	}
}

func TestDetectsRetentionOnlyWithDelayTests(t *testing.T) {
	a := newArr(t)
	if err := a.Inject(sram.CellAddr{Row: 1, Col: 1}, sram.Fault{Kind: sram.DRF0}); err != nil {
		t.Fatal(err)
	}
	if res := Run(a, MarchCMinus(), JohnsonBackgrounds(4), 4); !res.Pass() {
		t.Error("March C- (no delay) should miss pure retention faults")
	}
	if res := Run(a, IFA9(), JohnsonBackgrounds(4), 4); res.Pass() {
		t.Error("IFA-9 should catch DRF0 via its delay elements")
	}
	b := newArr(t)
	if err := b.Inject(sram.CellAddr{Row: 1, Col: 1}, sram.Fault{Kind: sram.DRF1}); err != nil {
		t.Fatal(err)
	}
	if res := Run(b, IFA9(), JohnsonBackgrounds(4), 4); res.Pass() {
		t.Error("IFA-9 should catch DRF1")
	}
}

func TestIFA13CatchesStuckOpen(t *testing.T) {
	a := newArr(t)
	if err := a.Inject(sram.CellAddr{Row: 3, Col: 2}, sram.Fault{Kind: sram.SOF}); err != nil {
		t.Fatal(err)
	}
	if res := Run(a, IFA13(), JohnsonBackgrounds(4), 4); res.Pass() {
		t.Error("IFA-13 read-after-write should catch SOF")
	}
}

func TestDetectsInterWordCoupling(t *testing.T) {
	// Coupling between cells in different words (same column, adjacent
	// rows) is caught by the march order of IFA-9.
	a := newArr(t)
	err := a.Inject(sram.CellAddr{Row: 0, Col: 0},
		sram.Fault{Kind: sram.CFID, Aggressor: sram.CellAddr{Row: 1, Col: 0}, AggrRise: true, Forced: true})
	if err != nil {
		t.Fatal(err)
	}
	if res := Run(a, IFA9(), JohnsonBackgrounds(4), 4); res.Pass() {
		t.Error("IFA-9 missed inter-word CFID")
	}
	b := newArr(t)
	err = b.Inject(sram.CellAddr{Row: 0, Col: 0},
		sram.Fault{Kind: sram.CFIN, Aggressor: sram.CellAddr{Row: 1, Col: 0}, AggrRise: false})
	if err != nil {
		t.Fatal(err)
	}
	if res := Run(b, IFA9(), JohnsonBackgrounds(4), 4); res.Pass() {
		t.Error("IFA-9 missed inter-word CFIN")
	}
	c := newArr(t)
	err = c.Inject(sram.CellAddr{Row: 0, Col: 0},
		sram.Fault{Kind: sram.CFST, Aggressor: sram.CellAddr{Row: 1, Col: 0}, AggrRise: true, Forced: false})
	if err != nil {
		t.Fatal(err)
	}
	if res := Run(c, IFA9(), JohnsonBackgrounds(4), 4); res.Pass() {
		t.Error("IFA-9 missed inter-word CFST")
	}
}

func TestIntraWordCouplingNeedsBackgrounds(t *testing.T) {
	// Coupling between two bits of the SAME word: with a single all-0
	// background, both cells always carry the same value and idempotent
	// coupling <rise; force-1> can stay hidden; the Johnson backgrounds
	// separate them. This is the paper's argument for DATAGEN.
	build := func() *sram.Array {
		a := sram.MustNew(sram.Config{Words: 64, BPW: 8, BPC: 4, SpareRows: 0})
		// Victim bit 2, aggressor bit 5 of the same word 0:
		// cols 2*4+0=8 and 5*4+0=20, row 0.
		err := a.Inject(sram.CellAddr{Row: 0, Col: 8},
			sram.Fault{Kind: sram.CFID, Aggressor: sram.CellAddr{Row: 0, Col: 20}, AggrRise: true, Forced: true})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	single := Run(build(), IFA9(), SingleBackground(), 8)
	johnson := Run(build(), IFA9(), JohnsonBackgrounds(8), 8)
	if !johnson.Pass() == false && single.Pass() == false {
		// Both caught it: acceptable but surprising; require at least
		// that Johnson catches it.
		t.Log("single background caught intra-word CFID too")
	}
	if johnson.Pass() {
		t.Error("Johnson backgrounds must catch intra-word CFID")
	}
	if !single.Pass() {
		t.Log("note: single background also caught this fault instance")
	}
}

func TestAdditionalMarches(t *testing.T) {
	if got := MarchX().OpCount(); got != 6 {
		t.Fatalf("March X op count %d, want 6", got)
	}
	if got := MarchY().OpCount(); got != 8 {
		t.Fatalf("March Y op count %d, want 8", got)
	}
	if got := MarchB().OpCount(); got != 17 {
		t.Fatalf("March B op count %d, want 17", got)
	}
	if len(AllTests()) != 7 {
		t.Fatalf("AllTests count %d", len(AllTests()))
	}
	// All pass on a fault-free array and detect a stuck-at fault.
	for _, test := range AllTests() {
		clean := newArr(t)
		if !Run(clean, test, JohnsonBackgrounds(4), 4).Pass() {
			t.Errorf("%s failed on fault-free array", test.Name)
		}
		dirty := newArr(t)
		if err := dirty.Inject(sram.CellAddr{Row: 3, Col: 3}, sram.Fault{Kind: sram.SA0}); err != nil {
			t.Fatal(err)
		}
		if Run(dirty, test, JohnsonBackgrounds(4), 4).Pass() {
			t.Errorf("%s missed a stuck-at fault", test.Name)
		}
	}
	// March X/Y detect address decoder faults via the closing read.
	for _, test := range []Test{MarchX(), MarchY()} {
		af := newArr(t)
		if err := af.InjectAddressFault(10, 40); err != nil {
			t.Fatal(err)
		}
		if Run(af, test, JohnsonBackgrounds(4), 4).Pass() {
			t.Errorf("%s missed an address fault", test.Name)
		}
	}
}

func TestFailedAddrsDedup(t *testing.T) {
	r := &Result{Failures: []Failure{{Addr: 3}, {Addr: 3}, {Addr: 1}}}
	got := r.FailedAddrs()
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Fatalf("FailedAddrs = %v", got)
	}
	if !strings.Contains(r.Failures[0].String(), "addr 3") {
		t.Fatal("failure string wrong")
	}
}

func TestJohnsonBackgrounds(t *testing.T) {
	bg := JohnsonBackgrounds(4)
	want := []uint64{0b0000, 0b0001, 0b0011, 0b0111, 0b1111}
	if len(bg) != len(want) {
		t.Fatalf("got %d backgrounds, want %d", len(bg), len(want))
	}
	for i := range want {
		if bg[i] != want[i] {
			t.Fatalf("bg[%d] = %04b, want %04b", i, bg[i], want[i])
		}
	}
	// Every adjacent bit pair sees all four value combinations across
	// backgrounds and their complements (the pairwise coupling
	// argument from the paper).
	for b := 0; b < 3; b++ {
		seen := map[[2]bool]bool{}
		for _, g := range bg {
			for _, pat := range []uint64{g, ^g} {
				seen[[2]bool{pat>>uint(b)&1 == 1, pat>>uint(b+1)&1 == 1}] = true
			}
		}
		if len(seen) != 4 {
			t.Fatalf("bit pair (%d,%d) sees only %d combinations", b, b+1, len(seen))
		}
	}
}

// Property: every march test leaves a fault-free memory passing, for
// random geometries.
func TestQuickFaultFreeAnyGeometry(t *testing.T) {
	f := func(wsel, bsel, csel uint8) bool {
		words := []int{16, 32, 64}[int(wsel)%3]
		bpw := []int{2, 4, 8}[int(bsel)%3]
		bpc := []int{2, 4}[int(csel)%2]
		a := sram.MustNew(sram.Config{Words: words, BPW: bpw, BPC: bpc})
		return Run(a, IFA9(), JohnsonBackgrounds(bpw), bpw).Pass()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: injecting a stuck-at fault is always detected by IFA-9
// regardless of position.
func TestQuickStuckAtAlwaysDetected(t *testing.T) {
	f := func(rowSel, colSel uint8, one bool) bool {
		a := sram.MustNew(sram.Config{Words: 64, BPW: 4, BPC: 4})
		row := int(rowSel) % a.Config().Rows()
		col := int(colSel) % a.Config().Cols()
		k := sram.SA0
		if one {
			k = sram.SA1
		}
		if err := a.Inject(sram.CellAddr{Row: row, Col: col}, sram.Fault{Kind: k}); err != nil {
			return false
		}
		return !Run(a, IFA9(), JohnsonBackgrounds(4), 4).Pass()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
