package march

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sram"
)

func randomize(a *sram.Array, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	init := make([]uint64, a.Words())
	for i := range init {
		init[i] = rng.Uint64() & 0xF
		a.Write(i, init[i])
	}
	return init
}

func TestTransparentFaultFreeRestores(t *testing.T) {
	for _, test := range []Test{IFA9(), IFA13(), MATSPlus(), MarchCMinus()} {
		a := sram.MustNew(sram.Config{Words: 64, BPW: 4, BPC: 4})
		init := randomize(a, 11)
		res := RunTransparent(a, test, 4)
		if !res.Pass() {
			t.Errorf("%s: transparent run failed on fault-free array: %v", test.Name, res.Failures[0])
		}
		if !res.Restored {
			t.Errorf("%s: contents not restored", test.Name)
		}
		for addr, want := range init {
			if got := a.Read(addr); got != want {
				t.Fatalf("%s: addr %d: %x != %x", test.Name, addr, got, want)
			}
		}
	}
}

func TestTransparentDetectsFaults(t *testing.T) {
	cases := []sram.Fault{
		{Kind: sram.SA0}, {Kind: sram.SA1}, {Kind: sram.TFU}, {Kind: sram.TFD},
	}
	for _, f := range cases {
		a := sram.MustNew(sram.Config{Words: 64, BPW: 4, BPC: 4})
		randomize(a, 13)
		if err := a.Inject(sram.CellAddr{Row: 4, Col: 6}, f); err != nil {
			t.Fatal(err)
		}
		res := RunTransparent(a, IFA9(), 4)
		if res.Pass() {
			t.Errorf("transparent IFA-9 missed %v", f.Kind)
		}
	}
	// Retention fault through the delay elements.
	a := sram.MustNew(sram.Config{Words: 64, BPW: 4, BPC: 4})
	randomize(a, 17)
	if err := a.Inject(sram.CellAddr{Row: 2, Col: 2}, sram.Fault{Kind: sram.DRF0}); err != nil {
		t.Fatal(err)
	}
	if res := RunTransparent(a, IFA9(), 4); res.Pass() {
		t.Error("transparent IFA-9 missed DRF0")
	}
}

func TestTransparentName(t *testing.T) {
	a := sram.MustNew(sram.Config{Words: 16, BPW: 4, BPC: 4})
	res := RunTransparent(a, IFA9(), 4)
	if res.Test != "IFA-9 (transparent)" {
		t.Fatalf("name %q", res.Test)
	}
	if res.Operations <= 0 {
		t.Fatal("no operations counted")
	}
}

// Property: transparent IFA-9 restores arbitrary random contents on a
// fault-free memory.
func TestQuickTransparentRestoration(t *testing.T) {
	f := func(seed int64) bool {
		a := sram.MustNew(sram.Config{Words: 32, BPW: 8, BPC: 4})
		rng := rand.New(rand.NewSource(seed))
		init := make([]uint64, a.Words())
		for i := range init {
			init[i] = rng.Uint64() & 0xFF
			a.Write(i, init[i])
		}
		res := RunTransparent(a, IFA9(), 8)
		if !res.Pass() || !res.Restored {
			return false
		}
		for addr, want := range init {
			if a.Read(addr) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAddressDecoderFault(t *testing.T) {
	a := sram.MustNew(sram.Config{Words: 64, BPW: 4, BPC: 4})
	if err := a.InjectAddressFault(10, 20); err != nil {
		t.Fatal(err)
	}
	// Writing 10 lands on 20.
	a.Write(10, 0x5)
	if a.Read(20) != 0x5 {
		t.Fatal("aliased write missed target")
	}
	// March detects the AF (writes to 20 clobber what 10 expects).
	if res := Run(a, IFA9(), JohnsonBackgrounds(4), 4); res.Pass() {
		t.Error("IFA-9 missed the address decoder fault")
	}
	// Bad injections rejected.
	if err := a.InjectAddressFault(5, 5); err == nil {
		t.Error("self-alias accepted")
	}
	if err := a.InjectAddressFault(99, 0); err == nil {
		t.Error("out-of-range accepted")
	}
}
