package march

// Transparent BIST (Kebichi–Nicolaidis, the §III related work
// BISRAMGEN's non-transparent scheme is contrasted with): the march
// test runs against the memory's *existing* contents instead of fixed
// backgrounds, so a passing self-test leaves the normal-mode data
// intact — the property needed for periodic field testing.
//
// The transformation is the standard one: the initialising write
// element is dropped (the current contents are the background), every
// "0" datum becomes the word's initial value s, every "1" becomes its
// complement ~s, and if the surviving elements leave an odd number of
// inversions a restoring inversion pass is appended.

// TransparentResult extends Result with the restoration outcome.
type TransparentResult struct {
	Result
	// Restored reports whether the memory contents after the test
	// equal the contents before it (checked word by word).
	Restored bool
}

// RunTransparent applies the transparent transformation of t to the
// DUT. The snapshot of initial contents stands in for the hardware's
// signature predictor: expected read values are derived from it
// exactly as the output-data compactor's reference signature would
// be.
func RunTransparent(d DUT, t Test, bpw int) *TransparentResult {
	mask := ^uint64(0)
	if bpw < 64 {
		mask = 1<<uint(bpw) - 1
	}
	n := d.Words()
	// Snapshot: the per-word reference the signature hardware
	// accumulates implicitly.
	initial := make([]uint64, n)
	for i := 0; i < n; i++ {
		initial[i] = d.Read(i) & mask
	}
	res := &TransparentResult{Result: Result{Test: t.Name + " (transparent)"}}
	res.Operations = int64(n) // snapshot reads

	// Drop the initialising element (a leading pure-write element):
	// the current contents take the background's role, and every
	// op.Inverted flag then refers to s / ~s directly — march tests
	// keep their read flags consistent with the stored polarity, so no
	// further bookkeeping is needed.
	elems := t.Elements
	if len(elems) > 0 && len(elems[0].Ops) == 1 && elems[0].Ops[0].Kind == Write {
		elems = elems[1:]
	}
	finalInverted := false // polarity of the last write in the stream
	for ei, e := range elems {
		if e.Delay {
			d.Wait()
		}
		for k := 0; k < n; k++ {
			addr := k
			if e.Order == Descending {
				addr = n - 1 - k
			}
			for _, op := range e.Ops {
				want := initial[addr]
				if op.Inverted {
					want = ^initial[addr] & mask
				}
				if op.Kind == Write {
					d.Write(addr, want)
				} else {
					got := d.Read(addr) & mask
					if got != want {
						res.Failures = append(res.Failures, Failure{
							Addr: addr, Expected: want, Got: got, Element: ei,
						})
					}
				}
				res.Operations++
			}
		}
		for i := len(e.Ops) - 1; i >= 0; i-- {
			if e.Ops[i].Kind == Write {
				finalInverted = e.Ops[i].Inverted
				break
			}
		}
	}
	// Restore pass when the test leaves the complemented polarity.
	if finalInverted {
		for addr := 0; addr < n; addr++ {
			d.Write(addr, initial[addr])
			res.Operations++
		}
	}
	// Verify restoration.
	res.Restored = true
	for addr := 0; addr < n; addr++ {
		if d.Read(addr)&mask != initial[addr] {
			res.Restored = false
			break
		}
	}
	return res
}
