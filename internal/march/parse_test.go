package march

import (
	"testing"

	"repro/internal/sram"
)

func TestParseRoundTripsBuiltins(t *testing.T) {
	for _, orig := range AllTests() {
		// Render to notation and parse back.
		s := orig.String()
		// Strip the "NAME: " prefix.
		idx := 0
		for i := range s {
			if s[i] == '{' {
				idx = i
				break
			}
		}
		got, err := Parse(orig.Name, s[idx:])
		if err != nil {
			t.Fatalf("%s: %v", orig.Name, err)
		}
		if len(got.Elements) != len(orig.Elements) {
			t.Fatalf("%s: element count %d -> %d", orig.Name, len(orig.Elements), len(got.Elements))
		}
		for i := range got.Elements {
			a, b := orig.Elements[i], got.Elements[i]
			if a.Order != b.Order || a.Delay != b.Delay || len(a.Ops) != len(b.Ops) {
				t.Fatalf("%s element %d: %+v vs %+v", orig.Name, i, a, b)
			}
			for j := range a.Ops {
				if a.Ops[j] != b.Ops[j] {
					t.Fatalf("%s element %d op %d differs", orig.Name, i, j)
				}
			}
		}
	}
}

func TestParseASCIIForm(t *testing.T) {
	tst, err := Parse("custom", "b(w0); u(r0,w1); Del; d(r1,w0); b(r0)")
	if err != nil {
		t.Fatal(err)
	}
	if len(tst.Elements) != 4 {
		t.Fatalf("elements %d", len(tst.Elements))
	}
	if tst.Elements[0].Order != Either || tst.Elements[1].Order != Ascending ||
		tst.Elements[2].Order != Descending {
		t.Fatal("orders wrong")
	}
	if !tst.Elements[2].Delay {
		t.Fatal("Del lost")
	}
	// The parsed test runs correctly.
	a := sram.MustNew(sram.Config{Words: 32, BPW: 4, BPC: 4})
	if !Run(a, tst, JohnsonBackgrounds(4), 4).Pass() {
		t.Fatal("parsed test failed on fault-free array")
	}
	if err := a.Inject(sram.CellAddr{Row: 2, Col: 2}, sram.Fault{Kind: sram.SA1}); err != nil {
		t.Fatal(err)
	}
	if Run(a, tst, JohnsonBackgrounds(4), 4).Pass() {
		t.Fatal("parsed test missed a stuck-at fault")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"x(r0)",      // unknown order
		"u r0",       // no parens
		"u(q0)",      // bad kind
		"u(r2)",      // bad datum
		"u(rr0)",     // bad token
		"u()",        // empty ops
		"u(r0); Del", // trailing delay
	}
	for _, s := range bad {
		if _, err := Parse("bad", s); err == nil {
			t.Errorf("accepted %q", s)
		}
	}
}
