package cost

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestDiesPerWafer(t *testing.T) {
	// 200mm wafer, 100mm² die: pi*10000/100 - pi*200/sqrt(200) ≈
	// 314 - 44 ≈ 269.
	n := DiesPerWafer(200, 100)
	if n < 250 || n > 280 {
		t.Fatalf("dies per wafer %d", n)
	}
	// Bigger wafers more than proportionally increase dies (the
	// paper's 6in -> 8in argument).
	n6 := DiesPerWafer(150, 100)
	ratio := float64(n) / float64(n6)
	areaRatio := (200.0 * 200.0) / (150.0 * 150.0) // 1.78
	if !(ratio > areaRatio) {
		t.Fatalf("8in/6in dies ratio %.2f should exceed area ratio %.2f", ratio, areaRatio)
	}
	if DiesPerWafer(200, 0) != 0 {
		t.Fatal("zero-area die must be 0")
	}
	if DiesPerWafer(10, 10000) != 0 {
		t.Fatal("die bigger than wafer must be 0")
	}
}

func TestDieYield(t *testing.T) {
	d := DefaultDefects()
	small := d.DieYield(50)
	big := d.DieYield(250)
	if !(small > big && small < 1 && big > 0) {
		t.Fatalf("die yields %g %g", small, big)
	}
	// Poisson variant.
	dp := DefectModel{D0: 1.0, Alpha: math.Inf(1)}
	if math.Abs(dp.DieYield(100)-math.Exp(-1)) > 1e-12 {
		t.Fatal("Poisson die yield wrong")
	}
}

func TestAnalyzeBreakdown(t *testing.T) {
	c := Chips()[1] // Intel486DX2
	p := DefaultParams()
	b := Analyze(c, p, 0.6)
	if b.DieCost <= 0 || b.TestAssembly <= 0 || b.PackageFinal <= 0 {
		t.Fatalf("breakdown %+v", b)
	}
	if math.Abs(b.Total-(b.DieCost+b.TestAssembly+b.PackageFinal)) > 1e-9 {
		t.Fatal("total mismatch")
	}
	// Halving yield roughly doubles die cost.
	b2 := Analyze(c, p, 0.3)
	if !(b2.DieCost > 1.9*b.DieCost) {
		t.Fatalf("die cost did not scale with yield: %g vs %g", b2.DieCost, b.DieCost)
	}
	// Degenerate yield.
	b3 := Analyze(c, p, 0)
	if !math.IsInf(b3.Total, 1) {
		t.Fatal("zero yield must blow up")
	}
}

func TestPackagingYieldAdjustment(t *testing.T) {
	p := DefaultParams()
	pga := Chip{Pins: 100, Package: "PGA", DieMm2: 100, WaferCost: 1000, WaferDiamMm: 200, TestMinutes: 1}
	pqfp := pga
	pqfp.Package = "PQFP"
	bp := Analyze(pga, p, 0.5)
	bq := Analyze(pqfp, p, 0.5)
	if !(bq.PackageFinal > bp.PackageFinal) {
		t.Fatal("PQFP final-test fallout should cost more per good chip")
	}
}

func TestAnalyzeBISRTwoMetalBlank(t *testing.T) {
	p := DefaultParams()
	d := DefaultDefects()
	c := Chips()[0] // Intel386DX, 2 metals
	r := AnalyzeBISR(c, p, d, 1.5, 0.07)
	if r.Feasible {
		t.Fatal("2-metal chip must be infeasible (blank table entry)")
	}
	if r.With.Total != r.Without.Total {
		t.Fatal("blank entry should carry unchanged cost")
	}
}

func TestAnalyzeBISRImproves(t *testing.T) {
	p := DefaultParams()
	d := DefaultDefects()
	for _, c := range Chips() {
		if c.Metals < 3 {
			continue
		}
		// A representative improvement factor; the experiments compute
		// the real one from the yield model.
		imp := 1.0 + c.CacheFrac // bigger caches gain more
		r := AnalyzeBISR(c, p, d, imp, 0.07)
		if !r.Feasible {
			t.Fatalf("%s should be feasible", c.Name)
		}
		if !(r.With.Total < r.Without.Total) {
			t.Errorf("%s: BISR did not reduce total cost (%.2f -> %.2f)", c.Name, r.Without.Total, r.With.Total)
		}
		if !(r.DieCostRatio > 1) {
			t.Errorf("%s: die cost ratio %.3f", c.Name, r.DieCostRatio)
		}
		if r.RAMYieldBISR < r.RAMYield {
			t.Errorf("%s: RAM yield got worse", c.Name)
		}
	}
}

func TestAnalyzeBISRUnityImprovementCosts(t *testing.T) {
	// With no yield improvement, the area overhead makes BISR a net
	// loss — the model must show the penalty, not hide it.
	p := DefaultParams()
	d := DefaultDefects()
	c := Chips()[4] // SuperSPARC
	r := AnalyzeBISR(c, p, d, 1.0, 0.07)
	if !(r.With.Total >= r.Without.Total) {
		t.Fatalf("free lunch: %+v", r)
	}
}

func TestChipsDatabase(t *testing.T) {
	cs := Chips()
	if len(cs) < 8 {
		t.Fatalf("database too small: %d", len(cs))
	}
	names := map[string]bool{}
	twoMetal := 0
	for _, c := range cs {
		if names[c.Name] {
			t.Fatalf("duplicate chip %s", c.Name)
		}
		names[c.Name] = true
		if c.DieMm2 <= 0 || c.Pins <= 0 || c.WaferCost <= 0 || c.WaferDiamMm <= 0 {
			t.Fatalf("bad entry %+v", c)
		}
		if c.Metals < 3 {
			twoMetal++
		}
		if c.Package != "PGA" && c.Package != "PQFP" {
			t.Fatalf("%s: unknown package %s", c.Name, c.Package)
		}
	}
	if twoMetal == 0 {
		t.Fatal("database should include 2-metal chips (blank BISR entries)")
	}
	// The headline pair from the paper's Table III must be present.
	if !names["Intel486DX2"] || !names["TI SuperSPARC"] {
		t.Fatal("missing headline chips")
	}
	if !strings.Contains(cs[1].String(), "486") {
		t.Fatal("String() broken")
	}
}

func TestSuperSPARCGainsMoreThan486(t *testing.T) {
	// Table III's shape: the big-cache SuperSPARC gains far more than
	// the small-cache 486DX2.
	p := DefaultParams()
	d := DefaultDefects()
	var r486, rSS BISRResult
	for _, c := range Chips() {
		imp := 1.0 + c.CacheFrac
		switch c.Name {
		case "Intel486DX2":
			r486 = AnalyzeBISR(c, p, d, imp, 0.07)
		case "TI SuperSPARC":
			rSS = AnalyzeBISR(c, p, d, imp, 0.07)
		}
	}
	if !(rSS.TotalReductionPct > r486.TotalReductionPct) {
		t.Fatalf("SuperSPARC %.2f%% should beat 486DX2 %.2f%%",
			rSS.TotalReductionPct, r486.TotalReductionPct)
	}
}

// Property: die cost decreases monotonically with yield.
func TestQuickDieCostMonotone(t *testing.T) {
	c := Chips()[3]
	p := DefaultParams()
	f := func(a, b uint8) bool {
		y1 := 0.05 + float64(a)/300.0
		y2 := 0.05 + float64(b)/300.0
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		return Analyze(c, p, y1).DieCost >= Analyze(c, p, y2).DieCost-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
