package cost

import (
	"math"
	"strings"
)

// WaferMap lays rectangular dies on a circular wafer — the geometric
// underpinning of the dies-per-wafer term in the MPR cost model — and
// evaluates per-die yield under a radial defect gradient (defect
// density rises toward the wafer edge, the classic process signature),
// with and without embedded-RAM BISR.
type WaferMap struct {
	DiamMm     float64
	DieW, DieH float64
	Dies       []DieSite
}

// DieSite is one die position; CX/CY are the centre coordinates in mm
// from the wafer centre, R the normalised radial position (0 centre,
// 1 edge).
type DieSite struct {
	Col, Row int
	CX, CY   float64
	R        float64
}

// NewWaferMap places every die whose four corners fit on the wafer.
func NewWaferMap(diamMm, dieW, dieH float64) *WaferMap {
	w := &WaferMap{DiamMm: diamMm, DieW: dieW, DieH: dieH}
	radius := diamMm / 2
	nx := int(diamMm/dieW) + 2
	ny := int(diamMm/dieH) + 2
	for row := -ny; row <= ny; row++ {
		for col := -nx; col <= nx; col++ {
			x0 := float64(col) * dieW
			y0 := float64(row) * dieH
			ok := true
			for _, c := range [4][2]float64{{x0, y0}, {x0 + dieW, y0}, {x0, y0 + dieH}, {x0 + dieW, y0 + dieH}} {
				if math.Hypot(c[0], c[1]) > radius {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			cx, cy := x0+dieW/2, y0+dieH/2
			w.Dies = append(w.Dies, DieSite{
				Col: col, Row: row, CX: cx, CY: cy,
				R: math.Hypot(cx, cy) / radius,
			})
		}
	}
	return w
}

// Count returns the number of placed dies.
func (w *WaferMap) Count() int { return len(w.Dies) }

// RadialDensity returns the local defect density at normalised radius
// r for a base density d0 and an edge degradation factor: D(r) =
// d0 * (1 + edgeFactor * r²). edgeFactor 0 recovers the uniform model.
func RadialDensity(d0, edgeFactor, r float64) float64 {
	return d0 * (1 + edgeFactor*r*r)
}

// YieldAt returns the die yield at a site under the radial model.
func (w *WaferMap) YieldAt(site DieSite, d DefectModel, edgeFactor float64) float64 {
	local := DefectModel{D0: RadialDensity(d.D0, edgeFactor, site.R), Alpha: d.Alpha}
	return local.DieYield(w.DieW * w.DieH)
}

// ZoneYields integrates expected yield over three radial zones
// (centre r<1/3, mid, edge r>2/3), with and without a BISR yield
// improvement on the embedded RAM (cacheFrac of the die).
func (w *WaferMap) ZoneYields(d DefectModel, edgeFactor, cacheFrac, ramImprovement float64) (zones [3][2]float64, counts [3]int) {
	for _, s := range w.Dies {
		z := 0
		switch {
		case s.R > 2.0/3:
			z = 2
		case s.R > 1.0/3:
			z = 1
		}
		y := w.YieldAt(s, d, edgeFactor)
		yRAM := math.Pow(y, cacheFrac)
		yBISR := y / yRAM * math.Min(1, yRAM*ramImprovement)
		zones[z][0] += y
		zones[z][1] += yBISR
		counts[z]++
	}
	for z := range zones {
		if counts[z] > 0 {
			zones[z][0] /= float64(counts[z])
			zones[z][1] /= float64(counts[z])
		}
	}
	return zones, counts
}

// ExpectedGood returns the expected good-die counts without and with
// BISR over the whole wafer.
func (w *WaferMap) ExpectedGood(d DefectModel, edgeFactor, cacheFrac, ramImprovement float64) (base, bisr float64) {
	for _, s := range w.Dies {
		y := w.YieldAt(s, d, edgeFactor)
		yRAM := math.Pow(y, cacheFrac)
		base += y
		bisr += y / yRAM * math.Min(1, yRAM*ramImprovement)
	}
	return base, bisr
}

// ASCII renders the wafer as a character map of per-die yield
// deciles: '9' = >90%, '0' = <10%.
func (w *WaferMap) ASCII(d DefectModel, edgeFactor float64) string {
	if len(w.Dies) == 0 {
		return "(no dies fit)\n"
	}
	minC, maxC, minR, maxR := 1<<30, -(1 << 30), 1<<30, -(1 << 30)
	for _, s := range w.Dies {
		if s.Col < minC {
			minC = s.Col
		}
		if s.Col > maxC {
			maxC = s.Col
		}
		if s.Row < minR {
			minR = s.Row
		}
		if s.Row > maxR {
			maxR = s.Row
		}
	}
	grid := make([][]byte, maxR-minR+1)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", maxC-minC+1))
	}
	for _, s := range w.Dies {
		y := w.YieldAt(s, d, edgeFactor)
		decile := int(y * 10)
		if decile > 9 {
			decile = 9
		}
		grid[maxR-s.Row][s.Col-minC] = byte('0' + decile)
	}
	var sb strings.Builder
	for _, row := range grid {
		sb.Write(row)
		sb.WriteByte('\n')
	}
	return sb.String()
}
