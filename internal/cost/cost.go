// Package cost implements the paper's Section X manufacturing cost
// model (the Microprocessor Report "MPR" model): die cost from wafer
// cost, dies-per-wafer and yield; wafer test and assembly cost;
// packaging and final test cost — evaluated with and without built-in
// self-repair of the embedded RAM for a database of period commercial
// microprocessors.
package cost

import (
	"fmt"
	"math"
)

// DefectModel carries the process defect parameters used for die
// yield.
type DefectModel struct {
	// D0 is the defect density in defects per cm².
	D0 float64
	// Alpha is the Stapper clustering parameter.
	Alpha float64
}

// DieYield returns the Stapper yield of a die of the given area (mm²).
func (d DefectModel) DieYield(dieMm2 float64) float64 {
	n := d.D0 * dieMm2 / 100.0 // defects/cm² * cm²
	if d.Alpha <= 0 || math.IsInf(d.Alpha, 1) {
		return math.Exp(-n)
	}
	return math.Pow(1+n/d.Alpha, -d.Alpha)
}

// DiesPerWafer returns the usable die count on a circular wafer of
// the given diameter (mm) for a die of the given area (mm²), using
// the standard edge-corrected formula.
func DiesPerWafer(waferDiamMm, dieMm2 float64) int {
	if dieMm2 <= 0 {
		return 0
	}
	r := waferDiamMm / 2
	n := math.Pi*r*r/dieMm2 - math.Pi*waferDiamMm/math.Sqrt(2*dieMm2)
	if n < 0 {
		return 0
	}
	return int(n)
}

// CostParams carries the industry-wide cost constants from the MPR
// model.
type CostParams struct {
	// WaferTestPerMinute is the amortised wafer test cost ($/min).
	WaferTestPerMinute float64
	// BadDieTestSeconds is the truncated test time spent on a bad die.
	BadDieTestSeconds float64
	// PackagePerPin is the packaging + final test cost per pin ($).
	PackagePerPin float64
	// FinalTestYieldPGA and FinalTestYieldPQFP adjust packaging cost
	// for final-test fallout (the paper quotes 97% and 93%).
	FinalTestYieldPGA  float64
	FinalTestYieldPQFP float64
}

// DefaultParams returns the constants quoted in the paper.
func DefaultParams() CostParams {
	return CostParams{
		WaferTestPerMinute: 5.00,
		BadDieTestSeconds:  3.0,
		PackagePerPin:      0.01,
		FinalTestYieldPGA:  0.97,
		FinalTestYieldPQFP: 0.93,
	}
}

// Chip describes one commercial microprocessor from the database.
type Chip struct {
	Name        string
	Year        int
	FeatureUm   float64
	Metals      int     // metal layers; BISR requires >= 3
	DieMm2      float64 // die area
	Pins        int
	Package     string  // "PGA" or "PQFP"
	CacheFrac   float64 // fraction of die area occupied by embedded RAM
	WaferCost   float64 // $ per wafer
	WaferDiamMm float64
	TestMinutes float64 // full test time for a good die
}

// Breakdown is the per-chip cost decomposition.
type Breakdown struct {
	DieYield     float64
	DiesPerWafer int
	DieCost      float64
	TestAssembly float64
	PackageFinal float64
	Total        float64
}

// Analyze computes the cost breakdown for a chip at the given die
// yield.
func Analyze(c Chip, p CostParams, dieYield float64) Breakdown {
	dpw := DiesPerWafer(c.WaferDiamMm, c.DieMm2)
	b := Breakdown{DieYield: dieYield, DiesPerWafer: dpw}
	if dpw == 0 || dieYield <= 0 {
		b.DieCost = math.Inf(1)
		b.Total = math.Inf(1)
		return b
	}
	b.DieCost = c.WaferCost / (float64(dpw) * dieYield)
	// Wafer test: each good die gets the full test; the bad dies'
	// truncated test time is amortised over the good ones.
	goodTest := c.TestMinutes * p.WaferTestPerMinute
	badPerGood := (1 - dieYield) / dieYield
	badTest := badPerGood * p.BadDieTestSeconds / 60.0 * p.WaferTestPerMinute
	b.TestAssembly = goodTest + badTest
	fty := p.FinalTestYieldPGA
	if c.Package == "PQFP" {
		fty = p.FinalTestYieldPQFP
	}
	b.PackageFinal = float64(c.Pins) * p.PackagePerPin / fty
	b.Total = b.DieCost + b.TestAssembly + b.PackageFinal
	return b
}

// BISRResult compares a chip without and with embedded-RAM BISR.
type BISRResult struct {
	Chip     Chip
	Without  Breakdown
	With     Breakdown
	Feasible bool // false when the process has < 3 metal layers
	// RAMYield / RAMYieldBISR are the embedded RAM macro yields.
	RAMYield     float64
	RAMYieldBISR float64
	// DieCostRatio = without.DieCost / with.DieCost (>1 is a win).
	DieCostRatio float64
	// TotalReductionPct = 100*(1 - with.Total/without.Total).
	TotalReductionPct float64
}

// AnalyzeBISR evaluates a chip with and without BISR. ramImprovement
// is the embedded-RAM yield improvement factor delivered by BISR
// (computed by the yield model for the chip's cache geometry), and
// areaOverheadFrac is the BISR area overhead as a fraction of the
// *cache* area (Table I's < 7%).
func AnalyzeBISR(c Chip, p CostParams, d DefectModel, ramImprovement, areaOverheadFrac float64) BISRResult {
	res := BISRResult{Chip: c}
	yBase := d.DieYield(c.DieMm2)
	res.Without = Analyze(c, p, yBase)
	if c.Metals < 3 {
		// BISRAMGEN needs three metal layers: blank entry in the
		// paper's tables.
		res.With = res.Without
		res.DieCostRatio = 1
		return res
	}
	res.Feasible = true
	// RAM yield via the paper's Y_RAM = Y_die^frac approximation.
	res.RAMYield = math.Pow(yBase, c.CacheFrac)
	res.RAMYieldBISR = math.Min(1, res.RAMYield*ramImprovement)
	// BISR grows the die by the cache overhead; the extra area also
	// collects defects in the non-repairable logic.
	grown := c.Chip()
	grown.DieMm2 = c.DieMm2 * (1 + c.CacheFrac*areaOverheadFrac)
	yGrownDie := d.DieYield(grown.DieMm2)
	// Non-RAM part of the grown die keeps its (slightly lower) yield;
	// the RAM part is replaced by the improved yield.
	nonRAM := yGrownDie / math.Pow(yGrownDie, c.CacheFrac)
	yWith := nonRAM * math.Min(1, math.Pow(yGrownDie, c.CacheFrac)*ramImprovement)
	res.With = Analyze(grown, p, yWith)
	if res.With.DieCost > 0 {
		res.DieCostRatio = res.Without.DieCost / res.With.DieCost
	}
	if res.Without.Total > 0 {
		res.TotalReductionPct = 100 * (1 - res.With.Total/res.Without.Total)
	}
	return res
}

// Chip returns a copy (helper for grown-die analysis).
func (c Chip) Chip() Chip { return c }

// String renders a compact description.
func (c Chip) String() string {
	return fmt.Sprintf("%s (%d, %.2fµm %dM, %.0fmm², %d pins %s)",
		c.Name, c.Year, c.FeatureUm, c.Metals, c.DieMm2, c.Pins, c.Package)
}
