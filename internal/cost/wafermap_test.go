package cost

import (
	"math"
	"strings"
	"testing"
)

func TestWaferMapCountMatchesFormula(t *testing.T) {
	// 200mm wafer, 10x10mm dies: the corner-fit map should land near
	// the edge-corrected dies-per-wafer estimate.
	w := NewWaferMap(200, 10, 10)
	formula := DiesPerWafer(200, 100)
	if w.Count() < formula*85/100 || w.Count() > formula*115/100 {
		t.Fatalf("map %d dies vs formula %d", w.Count(), formula)
	}
	// Every die is inside the circle.
	for _, s := range w.Dies {
		cornerR := math.Hypot(math.Abs(s.CX)+5, math.Abs(s.CY)+5)
		if cornerR > 100.0001 {
			t.Fatalf("die at (%f,%f) pokes out", s.CX, s.CY)
		}
		if s.R < 0 || s.R > 1 {
			t.Fatalf("normalised radius %f", s.R)
		}
	}
}

func TestRadialDensity(t *testing.T) {
	if RadialDensity(1, 0, 0.9) != 1 {
		t.Fatal("edgeFactor 0 should be uniform")
	}
	if !(RadialDensity(1, 2, 1) > RadialDensity(1, 2, 0.5)) {
		t.Fatal("density should rise with radius")
	}
}

func TestZoneYieldsEdgeWorse(t *testing.T) {
	w := NewWaferMap(200, 12, 12)
	d := DefaultDefects()
	zones, counts := w.ZoneYields(d, 2.0, 0.3, 1.4)
	for z := 0; z < 3; z++ {
		if counts[z] == 0 {
			t.Fatalf("zone %d empty", z)
		}
	}
	// Centre yields best; edge worst.
	if !(zones[0][0] > zones[1][0] && zones[1][0] > zones[2][0]) {
		t.Fatalf("zone base yields not radial: %v", zones)
	}
	// BISR improves every zone, and the *relative* gain is largest at
	// the edge where defects are dense.
	for z := 0; z < 3; z++ {
		if !(zones[z][1] > zones[z][0]) {
			t.Fatalf("zone %d: BISR no gain: %v", z, zones[z])
		}
	}
	gainC := zones[0][1] / zones[0][0]
	gainE := zones[2][1] / zones[2][0]
	if !(gainE > gainC) {
		t.Fatalf("edge BISR gain %.3f should beat centre %.3f", gainE, gainC)
	}
}

func TestExpectedGood(t *testing.T) {
	w := NewWaferMap(200, 12, 12)
	d := DefaultDefects()
	base, bisr := w.ExpectedGood(d, 1.5, 0.3, 1.4)
	if !(bisr > base && base > 0) {
		t.Fatalf("expected-good %f / %f", base, bisr)
	}
	if base > float64(w.Count()) {
		t.Fatal("yield above unity")
	}
}

func TestWaferASCII(t *testing.T) {
	w := NewWaferMap(150, 15, 15)
	art := w.ASCII(DefaultDefects(), 2.0)
	if !strings.ContainsAny(art, "0123456789") {
		t.Fatalf("no yield digits:\n%s", art)
	}
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("map too small:\n%s", art)
	}
	// Degenerate map.
	tiny := NewWaferMap(10, 50, 50)
	if tiny.ASCII(DefaultDefects(), 0) != "(no dies fit)\n" {
		t.Fatal("empty-map rendering wrong")
	}
}
