package cost

// The microprocessor database behind the paper's Tables II and III.
//
// SUBSTITUTION NOTE (see DESIGN.md): the paper takes die sizes, wafer
// costs and dies-per-wafer from the proprietary 1993–1994
// Microprocessor Report data [13], whose numeric columns are not
// reproduced in the available text. The entries below are
// period-plausible public figures for the same named parts (die area,
// process, pin count, package) with wafer costs in the $1300–$2300
// range MPR quoted for the era. The experiment reproduces the *shape*
// of Tables II–III: which chips benefit most, the ~2x die-cost ratio
// for big-cache dies, and the 2–47% total-cost reduction band.

// Chips returns the database, in the paper's table order. Chips with
// fewer than three metal layers get blank BISR entries, exactly as in
// the paper.
func Chips() []Chip {
	return []Chip{
		{
			Name: "Intel386DX", Year: 1991, FeatureUm: 1.0, Metals: 2,
			DieMm2: 43, Pins: 132, Package: "PQFP", CacheFrac: 0.0,
			WaferCost: 900, WaferDiamMm: 150, TestMinutes: 0.5,
		},
		{
			Name: "Intel486DX2", Year: 1992, FeatureUm: 0.8, Metals: 3,
			DieMm2: 81, Pins: 168, Package: "PGA", CacheFrac: 0.10,
			WaferCost: 1300, WaferDiamMm: 200, TestMinutes: 1.0,
		},
		{
			Name: "AMD486DX2", Year: 1993, FeatureUm: 0.8, Metals: 3,
			DieMm2: 81, Pins: 168, Package: "PGA", CacheFrac: 0.10,
			WaferCost: 1250, WaferDiamMm: 200, TestMinutes: 1.0,
		},
		{
			Name: "Pentium", Year: 1994, FeatureUm: 0.6, Metals: 4,
			DieMm2: 148, Pins: 296, Package: "PGA", CacheFrac: 0.12,
			WaferCost: 1900, WaferDiamMm: 200, TestMinutes: 5.0,
		},
		{
			Name: "TI SuperSPARC", Year: 1992, FeatureUm: 0.8, Metals: 3,
			DieMm2: 256, Pins: 293, Package: "PGA", CacheFrac: 0.40,
			WaferCost: 1700, WaferDiamMm: 200, TestMinutes: 5.0,
		},
		{
			Name: "MIPS R4600", Year: 1994, FeatureUm: 0.64, Metals: 3,
			DieMm2: 77, Pins: 179, Package: "PGA", CacheFrac: 0.35,
			WaferCost: 1500, WaferDiamMm: 200, TestMinutes: 2.0,
		},
		{
			Name: "MIPS R4200", Year: 1994, FeatureUm: 0.64, Metals: 2,
			DieMm2: 76, Pins: 179, Package: "PQFP", CacheFrac: 0.30,
			WaferCost: 1400, WaferDiamMm: 200, TestMinutes: 1.5,
		},
		{
			Name: "PowerPC 604", Year: 1994, FeatureUm: 0.5, Metals: 4,
			DieMm2: 196, Pins: 304, Package: "PGA", CacheFrac: 0.30,
			WaferCost: 2200, WaferDiamMm: 200, TestMinutes: 4.0,
		},
		{
			Name: "Alpha 21064A", Year: 1994, FeatureUm: 0.5, Metals: 4,
			DieMm2: 164, Pins: 431, Package: "PGA", CacheFrac: 0.35,
			WaferCost: 2300, WaferDiamMm: 200, TestMinutes: 4.0,
		},
	}
}

// DefaultDefects returns the era defect model: ~0.8 defects/cm² with
// moderate clustering.
func DefaultDefects() DefectModel {
	return DefectModel{D0: 0.8, Alpha: 2.0}
}
