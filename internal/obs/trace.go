// Package obs is the pipeline's dependency-free telemetry kernel:
// request-scoped traces (spans carried via context, exportable as
// Chrome trace-event JSON), lock-cheap fixed-bucket latency
// histograms, gauges and counters with dual expvar-JSON/Prometheus
// exposition. It is stdlib-only and imports nothing else from this
// repository, so every layer — the compiler stages, the bounded
// kernels (floorplan refine, spice transient, bisr repair), the job
// queue, the HTTP server and the CLIs — can instrument itself without
// dependency cycles.
//
// The tracing contract is deliberately cheap when disabled: Start
// returns immediately with a no-op end function when the context
// carries no *Trace, so instrumented hot paths cost one context
// lookup. With a trace attached, each span costs two time reads, one
// atomic increment and one short critical section at end.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"context"
)

// Attr is one key/value annotation on a span (iteration counts,
// degradation notes, cache states, ...).
type Attr struct {
	Key   string
	Value string
}

// String builds a string-valued attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer-valued attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: fmt.Sprintf("%d", v)} }

// Bool builds a boolean-valued attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: fmt.Sprintf("%t", v)} }

// Span is one completed timed operation inside a trace. Parent is the
// span ID of the enclosing operation (0 = root).
type Span struct {
	ID     uint64
	Parent uint64
	Name   string
	Start  time.Time
	Dur    time.Duration
	Attrs  []Attr
}

// Trace is a request-scoped span collection, safe for concurrent
// recording. It accumulates completed spans only — in-flight spans
// live on the stack of the code holding the end function — so a
// snapshot is always consistent.
type Trace struct {
	// ID is the trace identity (the service uses the job ID, the CLIs
	// mint a random one).
	ID string

	start  time.Time
	nextID atomic.Uint64

	// remoteParent is the span ID (in the originating process's trace)
	// this trace's root spans logically parent under — non-zero only
	// for traces extracted from an incoming traceparent header. Local
	// spans keep Parent 0; the link is applied when span sets from
	// several processes merge.
	remoteParent uint64

	mu    sync.Mutex
	spans []Span
}

// NewTrace builds a trace; an empty id mints a random one.
func NewTrace(id string) *Trace {
	if id == "" {
		id = NewID()
	}
	return &Trace{ID: id, start: time.Now()}
}

// NewTraceRemote builds a trace that continues a wire identity from
// another process: it shares the originator's trace ID and remembers
// the remote parent span its root spans belong under (see
// ParseTraceparent / SpanSet).
func NewTraceRemote(id string, remoteParent uint64) *Trace {
	tr := NewTrace(id)
	tr.remoteParent = remoteParent
	return tr
}

// RemoteParent returns the originating process's parent span ID, 0
// for locally-rooted traces.
func (t *Trace) RemoteParent() uint64 {
	if t == nil {
		return 0
	}
	return t.remoteParent
}

// NewID mints a 64-bit random hex trace ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Degraded but unique-enough fallback: the clock.
		return fmt.Sprintf("t%016x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Epoch returns the trace's zero time (construction instant); Chrome
// export timestamps are relative to it.
func (t *Trace) Epoch() time.Time { return t.start }

// add appends a completed span.
func (t *Trace) add(s Span) {
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Record appends a synthesized span covering [start, end] — used for
// intervals measured outside the Start/end discipline, like the queue
// wait between job submission and worker pickup.
func (t *Trace) Record(name string, start, end time.Time, attrs ...Attr) {
	if t == nil {
		return
	}
	if end.Before(start) {
		end = start
	}
	t.add(Span{
		ID:    t.nextID.Add(1),
		Name:  name,
		Start: start,
		Dur:   end.Sub(start),
		Attrs: attrs,
	})
}

// Spans returns a copy of the completed spans sorted by start time
// (ties broken by span ID, so the order is deterministic).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len returns the completed span count.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// context plumbing ---------------------------------------------------

type ctxKey int

const (
	traceKey ctxKey = iota
	spanKey
)

// WithTrace returns a context carrying tr; spans started under it are
// recorded there.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey, tr)
}

// FromContext returns the context's trace, or nil when untraced.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey).(*Trace)
	return tr
}

// Start opens a span named name under ctx's trace and returns a
// derived context (carrying the new span as parent for nested Starts)
// plus the end function that completes the span. On an untraced
// context both returns are no-ops, so instrumentation sites never
// need to branch. The end function is idempotent: only the first call
// records.
func Start(ctx context.Context, name string) (context.Context, func(attrs ...Attr)) {
	tr := FromContext(ctx)
	if tr == nil {
		return ctx, noopEnd
	}
	parent, _ := ctx.Value(spanKey).(uint64)
	id := tr.nextID.Add(1)
	start := time.Now()
	ctx = context.WithValue(ctx, spanKey, id)
	var done atomic.Bool
	return ctx, func(attrs ...Attr) {
		if !done.CompareAndSwap(false, true) {
			return
		}
		tr.add(Span{
			ID: id, Parent: parent, Name: name,
			Start: start, Dur: time.Since(start), Attrs: attrs,
		})
	}
}

func noopEnd(...Attr) {}

// SpanIDFromContext returns the ID of the span currently open on ctx
// (the parent the next Start would record), 0 when none.
func SpanIDFromContext(ctx context.Context) uint64 {
	id, _ := ctx.Value(spanKey).(uint64)
	return id
}

// Tree renders the span hierarchy as indented text with durations —
// the slow-compile forensics format. Roots (and spans whose parent
// was never completed) are ordered by start time.
func (t *Trace) Tree() string {
	if t == nil {
		return ""
	}
	spans := t.Spans()
	byParent := map[uint64][]Span{}
	ids := map[uint64]bool{}
	for _, s := range spans {
		ids[s.ID] = true
	}
	var total time.Duration
	for _, s := range spans {
		parent := s.Parent
		if parent != 0 && !ids[parent] {
			parent = 0 // orphan: promote to root
		}
		byParent[parent] = append(byParent[parent], s)
		if s.Parent == 0 || !ids[s.Parent] {
			total += s.Dur
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s: %d spans, %s root time\n", t.ID, len(spans), total.Round(time.Microsecond))
	var walk func(parent uint64, depth int)
	walk = func(parent uint64, depth int) {
		for _, s := range byParent[parent] {
			fmt.Fprintf(&b, "%s%-*s %12s", strings.Repeat("  ", depth+1), 28-2*depth, s.Name,
				s.Dur.Round(time.Microsecond))
			for _, a := range s.Attrs {
				fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
			}
			b.WriteByte('\n')
			walk(s.ID, depth+1)
		}
	}
	walk(0, 0)
	return b.String()
}
