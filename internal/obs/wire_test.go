package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestTraceparentRoundTrip: Format → Parse recovers the trace ID and
// span ID exactly.
func TestTraceparentRoundTrip(t *testing.T) {
	hv := FormatTraceparent("cafe0123deadbeef", 0x2a)
	if want := "00-cafe0123deadbeef-000000000000002a-01"; hv != want {
		t.Fatalf("header = %q, want %q", hv, want)
	}
	id, span, ok := ParseTraceparent(hv)
	if !ok || id != "cafe0123deadbeef" || span != 0x2a {
		t.Fatalf("parse = (%q, %d, %v)", id, span, ok)
	}
}

// TestTraceparentReject: malformed values are refused rather than
// guessed at.
func TestTraceparentReject(t *testing.T) {
	bad := []string{
		"",
		"00-abc",                            // too few parts
		"01-cafe-0000000000000001-01",       // unknown version
		"00--0000000000000001-01",           // empty trace ID
		"00-cafe-001-01",                    // span not 16 hex chars
		"00-cafe-00000000000000zz-01",       // span not hex
		"00-cafe-0000000000000001-01-extra", // too many parts
	}
	for _, v := range bad {
		if _, _, ok := ParseTraceparent(v); ok {
			t.Errorf("ParseTraceparent(%q) accepted", v)
		}
	}
}

// TestInject: a traced context injects the open span as the wire
// parent; an untraced context injects nothing.
func TestInject(t *testing.T) {
	if _, ok := Inject(context.Background()); ok {
		t.Fatal("untraced context produced a header")
	}
	tr := NewTrace("feed")
	ctx := WithTrace(context.Background(), tr)
	sctx, end := Start(ctx, "proxy.route")
	defer end()
	hv, ok := Inject(sctx)
	if !ok {
		t.Fatal("traced context produced no header")
	}
	id, span, ok := ParseTraceparent(hv)
	if !ok || id != "feed" {
		t.Fatalf("injected header %q parsed to (%q, %v)", hv, id, ok)
	}
	if span != SpanIDFromContext(sctx) || span == 0 {
		t.Fatalf("injected span %d, open span %d", span, SpanIDFromContext(sctx))
	}
}

// TestSpanSetRoundTrip: SpanSet → JSON → ParseSpanSet preserves spans,
// attributes, node identity and the remote-parent link.
func TestSpanSetRoundTrip(t *testing.T) {
	tr := NewTraceRemote("abcd", 7)
	base := time.Now()
	tr.Record("compile", base, base.Add(2*time.Millisecond), String("cache", "miss"))
	tr.Record("floorplan", base.Add(time.Millisecond), base.Add(2*time.Millisecond))

	ss := tr.SpanSet("http://shard-1")
	if ss.TraceID != "abcd" || ss.Node != "http://shard-1" || ss.RemoteParent != 7 {
		t.Fatalf("span set header: %+v", ss)
	}
	b, err := ss.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSpanSet(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != ss.TraceID || got.Node != ss.Node || got.RemoteParent != ss.RemoteParent {
		t.Fatalf("parsed header mismatch: %+v", got)
	}
	if len(got.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(got.Spans))
	}
	if got.Spans[0].Name != "compile" || got.Spans[0].Attrs["cache"] != "miss" {
		t.Fatalf("span 0: %+v", got.Spans[0])
	}
	if got.Spans[0].StartUnixNs != base.UnixNano() || got.Spans[0].DurNs != int64(2*time.Millisecond) {
		t.Fatalf("span 0 timing: %+v", got.Spans[0])
	}

	// A nil trace exports an inert set; garbage bytes are an error.
	var nilTr *Trace
	if ss := nilTr.SpanSet("x"); ss.TraceID != "" || len(ss.Spans) != 0 {
		t.Fatalf("nil trace span set: %+v", ss)
	}
	if _, err := ParseSpanSet([]byte("{")); err == nil {
		t.Fatal("malformed span set accepted")
	}
}

// mergeFixture builds a two-process trace: a gateway whose proxy.route
// span injected the wire identity, and a shard whose compile span tree
// must splice under it after the merge.
func mergeFixture(t *testing.T) (gw, shard SpanSet, routeID uint64) {
	t.Helper()
	epoch := time.Unix(0, 1_000_000_000)

	gwTr := NewTrace("trace-1")
	gwTr.Record("http.POST /v1/compile", epoch, epoch.Add(10*time.Millisecond))
	gwTr.Record("proxy.route", epoch.Add(time.Millisecond), epoch.Add(9*time.Millisecond), String("peer", "http://shard-1"))
	gwSet := gwTr.SpanSet("gateway")
	for _, ws := range gwSet.Spans {
		if ws.Name == "proxy.route" {
			routeID = ws.ID
		}
	}
	if routeID == 0 {
		t.Fatal("fixture: proxy.route span missing")
	}

	shardTr := NewTraceRemote("trace-1", routeID)
	ctx := WithTrace(context.Background(), shardTr)
	c1, end1 := Start(ctx, "compile")
	_, end2 := Start(c1, "floorplan")
	end2()
	end1()
	return gwSet, shardTr.SpanSet("http://shard-1"), routeID
}

// TestMergeSpanSets: merging re-parents the shard's root span under
// the gateway's proxy.route span, keeps intra-shard parent links, and
// remaps IDs so the two processes' ranges cannot collide.
func TestMergeSpanSets(t *testing.T) {
	gwSet, shardSet, _ := mergeFixture(t)
	m := MergeSpanSets([]SpanSet{gwSet, shardSet})
	if m.TraceID != "trace-1" {
		t.Fatalf("trace ID %q", m.TraceID)
	}
	if len(m.Nodes) != 2 || m.Nodes[0] != "gateway" || m.Nodes[1] != "http://shard-1" {
		t.Fatalf("nodes = %v", m.Nodes)
	}
	spans := m.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d merged spans, want 4", len(spans))
	}
	byName := map[string]Span{}
	seen := map[uint64]bool{}
	for _, s := range spans {
		byName[s.Name] = s
		if seen[s.ID] {
			t.Fatalf("duplicate remapped ID %d", s.ID)
		}
		seen[s.ID] = true
	}
	route, compile, fp := byName["proxy.route"], byName["compile"], byName["floorplan"]
	if compile.Parent != route.ID {
		t.Errorf("compile.Parent = %d, want proxy.route %d", compile.Parent, route.ID)
	}
	if fp.Parent != compile.ID {
		t.Errorf("floorplan.Parent = %d, want compile %d", fp.Parent, compile.ID)
	}
	if m.NodeOf(route.ID) != "gateway" || m.NodeOf(compile.ID) != "http://shard-1" {
		t.Errorf("node attribution: route=%q compile=%q", m.NodeOf(route.ID), m.NodeOf(compile.ID))
	}
}

// TestMergeSkipsForeignTrace: a span set whose trace ID disagrees with
// the base must not splice into the merged trace.
func TestMergeSkipsForeignTrace(t *testing.T) {
	gwSet, shardSet, _ := mergeFixture(t)
	foreign := shardSet
	foreign.TraceID = "other-trace"
	m := MergeSpanSets([]SpanSet{gwSet, foreign})
	if len(m.Nodes) != 1 || len(m.Spans()) != 2 {
		t.Fatalf("foreign set merged: nodes=%v spans=%d", m.Nodes, len(m.Spans()))
	}
}

// TestMergeUnknownRemoteParent: when the remote parent span is absent
// from the base set the shard roots stay roots (orphan promotion)
// instead of pointing at a dangling ID.
func TestMergeUnknownRemoteParent(t *testing.T) {
	gwSet, shardSet, _ := mergeFixture(t)
	shardSet.RemoteParent = 999
	m := MergeSpanSets([]SpanSet{gwSet, shardSet})
	for _, s := range m.Spans() {
		if s.Name == "compile" && s.Parent != 0 {
			t.Fatalf("compile parented under dangling ID %d", s.Parent)
		}
	}
}

// TestMergedChromeJSON: the Chrome export carries one pid per node
// with process_name metadata, and each slice's args expose the
// remapped span/parent IDs so the cross-process link is inspectable.
func TestMergedChromeJSON(t *testing.T) {
	gwSet, shardSet, _ := mergeFixture(t)
	m := MergeSpanSets([]SpanSet{gwSet, shardSet})
	b, err := m.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b)
	}
	procs := map[int]string{}
	pids := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procs[ev.Pid] = ev.Args["name"]
		} else if ev.Ph == "X" {
			pids[ev.Name] = ev.Pid
		}
	}
	if procs[1] != "gateway" || procs[2] != "http://shard-1" {
		t.Fatalf("process names: %v", procs)
	}
	if pids["proxy.route"] != 1 || pids["compile"] != 2 || pids["floorplan"] != 2 {
		t.Fatalf("slice pids: %v", pids)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "compile" {
			if ev.Args["parent_id"] == "0" || ev.Args["span_id"] == "" {
				t.Fatalf("compile args missing parent link: %v", ev.Args)
			}
		}
	}
}

// TestMergedTree: the text rendering nests the shard's compile under
// the gateway's proxy.route and annotates the process transition.
func TestMergedTree(t *testing.T) {
	gwSet, shardSet, _ := mergeFixture(t)
	m := MergeSpanSets([]SpanSet{gwSet, shardSet})
	out := m.Tree()
	if !strings.Contains(out, "node=http://shard-1") {
		t.Fatalf("tree missing process-transition annotation:\n%s", out)
	}
	indent := func(name string) int {
		for _, line := range strings.Split(out, "\n") {
			trimmed := strings.TrimLeft(line, " ")
			if strings.HasPrefix(trimmed, name+" ") {
				return len(line) - len(trimmed)
			}
		}
		t.Fatalf("span %q missing from tree:\n%s", name, out)
		return 0
	}
	if !(indent("proxy.route") < indent("compile") && indent("compile") < indent("floorplan")) {
		t.Fatalf("cross-process nesting broken:\n%s", out)
	}
}
