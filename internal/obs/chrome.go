package obs

import (
	"encoding/json"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format
// ("Trace Event Format", ph="X" complete events): timestamps and
// durations are microseconds, pid/tid pick the row. chrome://tracing
// and Perfetto load the document directly.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeJSON renders the trace as a Chrome trace-event JSON document.
// Span timestamps are relative to the trace epoch; every span lands
// on pid 1 / tid 1, which is correct for the strictly nested span
// trees the pipeline produces (the viewer stacks nested slices).
func (t *Trace) ChromeJSON() ([]byte, error) {
	if t == nil {
		return json.Marshal(chromeDoc{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"})
	}
	spans := t.Spans()
	doc := chromeDoc{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(spans)+1)}
	// Metadata event: names the process row after the trace ID.
	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 1,
		Args: map[string]string{"name": "trace " + t.ID},
	})
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  "compile",
			Ph:   "X",
			Ts:   usSince(t.start, s.Start),
			Dur:  float64(s.Dur.Microseconds()),
			Pid:  1,
			Tid:  1,
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	return json.MarshalIndent(doc, "", " ")
}

// usSince returns the microseconds from epoch to ts, clamped at 0 so
// synthesized spans recorded slightly before the trace epoch (e.g. a
// queue wait that began before NewTrace returned) stay renderable.
func usSince(epoch, ts time.Time) float64 {
	us := float64(ts.Sub(epoch).Microseconds())
	if us < 0 {
		return 0
	}
	return us
}
