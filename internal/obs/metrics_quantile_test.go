package obs

import (
	"math"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	h := NewRegistry().Histogram("q_test_seconds", "", []float64{0.1, 0.5, 1, 5})
	// 10 observations in (0.1, 0.5], 10 in (0.5, 1].
	for i := 0; i < 10; i++ {
		h.Observe(0.3)
		h.Observe(0.8)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.5)
	if p50 < 0.1 || p50 > 0.5 {
		t.Fatalf("p50 = %v, want within (0.1, 0.5]", p50)
	}
	p95 := s.Quantile(0.95)
	if p95 < 0.5 || p95 > 1 {
		t.Fatalf("p95 = %v, want within (0.5, 1]", p95)
	}
	if got := s.Quantile(1); math.Abs(got-1) > 1e-9 {
		t.Fatalf("p100 = %v, want 1 (top of highest occupied bucket)", got)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty snapshot quantile %v", got)
	}
	h := NewRegistry().Histogram("q_inf_seconds", "", []float64{1})
	h.Observe(100) // lands in +Inf
	if got := h.Snapshot().Quantile(0.5); got != 1 {
		t.Fatalf("+Inf bucket quantile %v, want highest finite bound 1", got)
	}
	if got := h.Snapshot().Quantile(0); got != 0 {
		t.Fatalf("q=0 quantile %v", got)
	}
}

func TestHistogramQuantileSingleBucket(t *testing.T) {
	// One finite bound: every in-range observation interpolates inside
	// (0, 1]; every quantile of an all-overflow histogram floors at the
	// single finite bound.
	h := NewRegistry().Histogram("q_single_seconds", "", []float64{1})
	for i := 0; i < 4; i++ {
		h.Observe(0.5)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 <= 0 || p50 > 1 {
		t.Fatalf("single-bucket p50 = %v, want within (0, 1]", p50)
	}
	if p100 := s.Quantile(1); p100 != 1 {
		t.Fatalf("single-bucket p100 = %v, want bound 1", p100)
	}
	// A snapshot with no finite bounds at all (only the +Inf slot
	// occupied) has nothing to interpolate toward and reports 0.
	noBounds := HistogramSnapshot{Cumulative: []uint64{3}, Count: 3, Sum: 30}
	if got := noBounds.Quantile(0.9); got != 0 {
		t.Fatalf("boundless snapshot quantile %v, want 0", got)
	}
}
