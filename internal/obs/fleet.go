package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Fleet metrics aggregation: parse each node's Prometheus text
// exposition (the authoritative format — it carries TYPE metadata the
// expvar JSON lacks), merge the per-node families, and re-emit one
// fleet-wide document in both expositions. Merge rules:
//
//   - counters: summed across nodes per label set — the fleet total.
//   - histograms: bucket counts, counts and sums summed per label set
//     (bounds must agree, which they do — the registry's buckets are
//     compile-time constants).
//   - gauges: kept per node, distinguished by an added `node` label —
//     summing uptimes or queue depths would be meaningless.
//
// The output is deterministic (families and label sets sorted), so a
// fleet scrape of settled shards is golden-testable.

// PromSample is one exposition sample line: an optional family-relative
// suffix ("", "_bucket", "_sum", "_count"), its labels and the value.
type PromSample struct {
	Suffix string
	Labels map[string]string
	Value  float64
}

// PromFamily is one parsed metric family.
type PromFamily struct {
	Name    string
	Help    string
	Type    string // "counter" | "gauge" | "histogram" | "untyped"
	Samples []PromSample
}

// ParsePrometheus decodes a text exposition (format 0.0.4) into
// families. Histogram component samples (name_bucket/_sum/_count)
// fold into their family. Unknown constructs fail loudly — a fleet
// scrape must not silently mis-merge.
func ParsePrometheus(r io.Reader) ([]PromFamily, error) {
	byName := map[string]*PromFamily{}
	var order []*PromFamily
	family := func(name string) *PromFamily {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &PromFamily{Name: name, Type: "untyped"}
		byName[name] = f
		order = append(order, f)
		return f
	}
	// familyOf resolves a sample name to (family, suffix): histogram
	// components attach to their declared family.
	familyOf := func(sample string) (*PromFamily, string) {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(sample, suf)
			if base != sample {
				if f, ok := byName[base]; ok && f.Type == "histogram" {
					return f, suf
				}
			}
		}
		return family(sample), ""
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 {
				switch fields[1] {
				case "HELP":
					f := family(fields[2])
					if len(fields) == 4 {
						f.Help = fields[3]
					}
				case "TYPE":
					if len(fields) == 4 {
						family(fields[2]).Type = fields[3]
					}
				}
			}
			continue
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return nil, err
		}
		f, suffix := familyOf(name)
		f.Samples = append(f.Samples, PromSample{Suffix: suffix, Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: exposition read: %w", err)
	}
	out := make([]PromFamily, 0, len(order))
	for _, f := range order {
		out = append(out, *f)
	}
	return out, nil
}

// parseSampleLine splits `name{k="v",...} value` (labels optional).
func parseSampleLine(line string) (string, map[string]string, float64, error) {
	name := line
	var labels map[string]string
	rest := ""
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", nil, 0, fmt.Errorf("obs: exposition: unbalanced braces in %q", line)
		}
		var err error
		labels, err = parseLabels(line[i+1 : j])
		if err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return "", nil, 0, fmt.Errorf("obs: exposition: bad sample line %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("obs: exposition: bad value in %q: %w", line, err)
	}
	return name, labels, v, nil
}

// parseLabels decodes `k="v",k2="v2"` with exposition escapes.
func parseLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, fmt.Errorf("obs: exposition: bad label block %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		rest := s[eq+2:]
		var b strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
		}
		if i >= len(rest) {
			return nil, fmt.Errorf("obs: exposition: unterminated label value in %q", s)
		}
		out[key] = b.String()
		s = strings.TrimPrefix(strings.TrimSpace(rest[i+1:]), ",")
		s = strings.TrimSpace(s)
	}
	return out, nil
}

// MergeHistograms sums histogram snapshots bucket-by-bucket. Inputs
// with differing bounds are rejected — silently aligning mismatched
// buckets would fabricate quantiles. Empty snapshots are ignored, so
// a cold shard doesn't block the merge.
func MergeHistograms(snaps ...HistogramSnapshot) (HistogramSnapshot, error) {
	var out HistogramSnapshot
	for _, s := range snaps {
		if len(s.Cumulative) == 0 && s.Count == 0 {
			continue
		}
		if out.Cumulative == nil {
			out.Bounds = append([]float64(nil), s.Bounds...)
			out.Cumulative = make([]uint64, len(s.Cumulative))
		} else if !equalBounds(out.Bounds, s.Bounds) || len(out.Cumulative) != len(s.Cumulative) {
			return HistogramSnapshot{}, fmt.Errorf("obs: merging histograms with different buckets")
		}
		for i, c := range s.Cumulative {
			out.Cumulative[i] += c
		}
		out.Count += s.Count
		out.Sum += s.Sum
	}
	return out, nil
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FleetScrape is one node's parsed exposition.
type FleetScrape struct {
	Node     string
	Families []PromFamily
}

// fleetSeries is one merged output series.
type fleetSeries struct {
	labels map[string]string
	value  float64            // counters/gauges
	hist   *HistogramSnapshot // histograms
}

// fleetFamily is one merged output family.
type fleetFamily struct {
	name, help, typ string
	series          []fleetSeries
}

// FleetMerged is the fleet-wide metric document MergeFleet builds.
type FleetMerged struct {
	families []fleetFamily
}

// MergeFleet merges per-node expositions under the documented rules
// (sum counters, sum histogram buckets, label gauges per node).
// Histogram series whose buckets disagree across nodes are dropped
// from the output with an error note gauge rather than failing the
// whole scrape.
func MergeFleet(scrapes []FleetScrape) *FleetMerged {
	type key struct{ name, labels string }
	help := map[string]string{}
	typ := map[string]string{}
	var names []string
	seenName := map[string]bool{}
	counters := map[key]*fleetSeries{}
	gauges := map[key]*fleetSeries{}
	hists := map[key][]HistogramSnapshot{}
	labelsByKey := map[key]map[string]string{}
	var orderedKeys []key

	note := func(k key, lb map[string]string) {
		if _, ok := labelsByKey[k]; !ok {
			labelsByKey[k] = lb
			orderedKeys = append(orderedKeys, k)
		}
	}
	for _, sc := range scrapes {
		for _, f := range sc.Families {
			if !seenName[f.Name] {
				seenName[f.Name] = true
				names = append(names, f.Name)
			}
			if f.Help != "" {
				help[f.Name] = f.Help
			}
			if t, ok := typ[f.Name]; !ok || t == "untyped" {
				typ[f.Name] = f.Type
			}
			switch f.Type {
			case "counter":
				for _, s := range f.Samples {
					k := key{f.Name, canonLabels(s.Labels)}
					note(k, s.Labels)
					if counters[k] == nil {
						counters[k] = &fleetSeries{labels: s.Labels}
					}
					counters[k].value += s.Value
				}
			case "histogram":
				for _, he := range histogramsOf(f) {
					kk := key{f.Name, he.labels}
					note(kk, he.labelMap)
					hists[kk] = append(hists[kk], he.snap)
				}
			default: // gauge, untyped: one series per node
				for _, s := range f.Samples {
					lb := map[string]string{"node": sc.Node}
					for lk, lv := range s.Labels {
						lb[lk] = lv
					}
					k := key{f.Name, canonLabels(lb)}
					note(k, lb)
					gauges[k] = &fleetSeries{labels: lb, value: s.Value}
				}
			}
		}
	}

	sort.Strings(names)
	sort.Slice(orderedKeys, func(i, j int) bool {
		if orderedKeys[i].name != orderedKeys[j].name {
			return orderedKeys[i].name < orderedKeys[j].name
		}
		return orderedKeys[i].labels < orderedKeys[j].labels
	})
	m := &FleetMerged{}
	for _, name := range names {
		ff := fleetFamily{name: name, help: help[name], typ: typ[name]}
		if ff.typ == "untyped" {
			ff.typ = "gauge"
		}
		for _, k := range orderedKeys {
			if k.name != name {
				continue
			}
			switch {
			case counters[k] != nil:
				ff.series = append(ff.series, *counters[k])
			case gauges[k] != nil:
				ff.series = append(ff.series, *gauges[k])
			case hists[k] != nil:
				merged, err := MergeHistograms(hists[k]...)
				if err != nil {
					continue // mismatched buckets: drop the series
				}
				ff.series = append(ff.series, fleetSeries{labels: labelsByKey[k], hist: &merged})
			}
		}
		if len(ff.series) > 0 {
			m.families = append(m.families, ff)
		}
	}
	return m
}

// histEntry pairs a reassembled histogram snapshot with its non-le
// label set (canonical string plus the map itself).
type histEntry struct {
	labels   string
	labelMap map[string]string
	snap     HistogramSnapshot
}

// histogramsOf reassembles one node's histogram family samples into
// snapshots keyed by their non-le label set.
func histogramsOf(f PromFamily) []histEntry {
	type acc struct {
		bounds map[float64]uint64
		count  uint64
		sum    float64
		labels map[string]string
	}
	accs := map[string]*acc{}
	get := func(labels map[string]string) *acc {
		rest := map[string]string{}
		for k, v := range labels {
			if k != "le" {
				rest[k] = v
			}
		}
		ck := canonLabels(rest)
		a, ok := accs[ck]
		if !ok {
			a = &acc{bounds: map[float64]uint64{}, labels: rest}
			accs[ck] = a
		}
		return a
	}
	for _, s := range f.Samples {
		switch s.Suffix {
		case "_bucket":
			a := get(s.Labels)
			le := s.Labels["le"]
			if le == "+Inf" {
				a.bounds[math.Inf(1)] = uint64(s.Value)
				continue
			}
			if b, err := strconv.ParseFloat(le, 64); err == nil {
				a.bounds[b] = uint64(s.Value)
			}
		case "_sum":
			get(s.Labels).sum = s.Value
		case "_count":
			get(s.Labels).count = uint64(s.Value)
		}
	}
	var out []histEntry
	for ck, a := range accs {
		var snap HistogramSnapshot
		bounds := make([]float64, 0, len(a.bounds))
		for b := range a.bounds {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		for _, b := range bounds {
			if math.IsInf(b, 1) {
				snap.Cumulative = append(snap.Cumulative, a.bounds[b])
				continue
			}
			snap.Bounds = append(snap.Bounds, b)
			snap.Cumulative = append(snap.Cumulative, a.bounds[b])
		}
		snap.Count = a.count
		snap.Sum = a.sum
		out = append(out, histEntry{labels: ck, labelMap: a.labels, snap: snap})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}

// canonLabels renders labels in sorted `k=v` form for map keys.
func canonLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}

// WritePrometheus renders the merged fleet document as text
// exposition 0.0.4, deterministically ordered.
func (m *FleetMerged) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, f := range m.families {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, sanitizeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			if s.hist != nil {
				writeFleetHistogram(&b, f.name, s.labels, *s.hist)
				continue
			}
			if f.typ == "counter" {
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(s.labels), uint64(s.value))
			} else {
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(s.labels), formatFloat(s.value))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeFleetHistogram renders one merged histogram series, its le
// labels composed with any existing labels.
func writeFleetHistogram(b *strings.Builder, name string, labels map[string]string, s HistogramSnapshot) {
	withLe := func(le string) string {
		lb := map[string]string{"le": le}
		for k, v := range labels {
			lb[k] = v
		}
		return renderLabels(lb)
	}
	for i, bound := range s.Bounds {
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLe(formatFloat(bound)), s.Cumulative[i])
	}
	inf := uint64(0)
	if n := len(s.Cumulative); n > 0 {
		inf = s.Cumulative[n-1]
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLe("+Inf"), inf)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, renderLabels(labels), formatFloat(s.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, renderLabels(labels), s.Count)
}

// Snapshot renders the merged fleet document as a JSON-able map — the
// expvar half of the dual exposition, mirroring Registry.Snapshot:
// counters become fleet-summed numbers, gauges nest per node, and
// histograms take the {count, sum, buckets} shape.
func (m *FleetMerged) Snapshot() map[string]any {
	out := map[string]any{}
	for _, f := range m.families {
		switch f.typ {
		case "gauge":
			family := map[string]any{}
			for _, s := range f.series {
				family[canonLabels(s.labels)] = s.value
			}
			out[f.name] = family
		default:
			for _, s := range f.series {
				name := f.name + renderLabels(s.labels)
				if s.hist != nil {
					out[name] = histJSON(*s.hist)
				} else {
					out[name] = s.value
				}
			}
		}
	}
	return out
}
