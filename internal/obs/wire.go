package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Wire identity: how a trace crosses a process boundary. The sender
// serializes its trace ID plus the currently-open span ID as a
// traceparent-style HTTP header; the receiver continues the same
// trace ID and remembers the remote span as the logical parent of its
// root spans. Each process keeps allocating its own span IDs — the
// cross-process parent link is applied only when the per-node span
// sets (SpanSet) are merged (MergeSpanSets), which also remaps IDs so
// independently-allocated ranges cannot collide.

// TraceHeader is the HTTP header carrying the wire identity.
const TraceHeader = "Traceparent"

// traceparentVersion mirrors the W3C version-prefix convention; only
// "00" is produced or accepted.
const traceparentVersion = "00"

// FormatTraceparent renders the header value:
// "00-<trace id>-<16-hex span id>-01".
func FormatTraceparent(traceID string, span uint64) string {
	return fmt.Sprintf("%s-%s-%016x-01", traceparentVersion, traceID, span)
}

// ParseTraceparent decodes a header value produced by
// FormatTraceparent. ok is false for empty, malformed or
// unknown-version values.
func ParseTraceparent(v string) (traceID string, span uint64, ok bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) != 4 || parts[0] != traceparentVersion || parts[1] == "" || len(parts[2]) != 16 {
		return "", 0, false
	}
	id, err := strconv.ParseUint(parts[2], 16, 64)
	if err != nil {
		return "", 0, false
	}
	return parts[1], id, true
}

// Inject returns the traceparent header value for ctx's trace and
// currently-open span. ok is false on an untraced context — callers
// simply skip the header.
func Inject(ctx context.Context) (string, bool) {
	tr := FromContext(ctx)
	if tr == nil {
		return "", false
	}
	return FormatTraceparent(tr.ID, SpanIDFromContext(ctx)), true
}

// WireSpan is the JSON form of one completed span in a span set.
type WireSpan struct {
	ID          uint64            `json:"id"`
	Parent      uint64            `json:"parent,omitempty"`
	Name        string            `json:"name"`
	StartUnixNs int64             `json:"start_unix_ns"`
	DurNs       int64             `json:"dur_ns"`
	Attrs       map[string]string `json:"attrs,omitempty"`
}

// SpanSet is one node's exported slice of a distributed trace — the
// GET /debug/trace/{id}?format=spans document. RemoteParent, when
// non-zero, names the span (in the requesting process's ID space)
// this set's root spans belong under.
type SpanSet struct {
	TraceID      string     `json:"trace_id"`
	Node         string     `json:"node,omitempty"`
	RemoteParent uint64     `json:"remote_parent,omitempty"`
	Spans        []WireSpan `json:"spans"`
}

// SpanSet exports the trace's completed spans in wire form, stamped
// with the node identity (the shard's base URL, or a role name).
func (t *Trace) SpanSet(node string) SpanSet {
	ss := SpanSet{Node: node}
	if t == nil {
		return ss
	}
	ss.TraceID = t.ID
	ss.RemoteParent = t.remoteParent
	spans := t.Spans()
	ss.Spans = make([]WireSpan, 0, len(spans))
	for _, s := range spans {
		ws := WireSpan{
			ID:          s.ID,
			Parent:      s.Parent,
			Name:        s.Name,
			StartUnixNs: s.Start.UnixNano(),
			DurNs:       int64(s.Dur),
		}
		if len(s.Attrs) > 0 {
			ws.Attrs = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				ws.Attrs[a.Key] = a.Value
			}
		}
		ss.Spans = append(ss.Spans, ws)
	}
	return ss
}

// JSON renders the span set.
func (s SpanSet) JSON() ([]byte, error) { return json.MarshalIndent(s, "", " ") }

// ParseSpanSet decodes a span-set document.
func ParseSpanSet(data []byte) (SpanSet, error) {
	var ss SpanSet
	if err := json.Unmarshal(data, &ss); err != nil {
		return SpanSet{}, fmt.Errorf("obs: span set: %w", err)
	}
	return ss, nil
}

// Merged is a multi-process trace assembled from per-node span sets:
// span IDs remapped into disjoint ranges, remote-parent links
// resolved, ready for Chrome export (one pid per node) or a single
// text tree.
type Merged struct {
	TraceID string
	Nodes   []string // process names, index = pid-1

	spans []Span
	node  map[uint64]int // remapped span ID -> Nodes index
	epoch time.Time
}

// MergeSpanSets builds one end-to-end trace from per-node span sets.
// sets[0] is the base process (typically the gateway); later sets'
// root spans are re-parented under their RemoteParent span when it
// exists in the base set, so e.g. shard compile stages nest under the
// gateway's proxy.route span. Sets whose TraceID disagrees with the
// base are skipped — a stale retention entry must not splice into the
// wrong request.
func MergeSpanSets(sets []SpanSet) *Merged {
	m := &Merged{node: map[uint64]int{}}
	var offset uint64
	baseIDs := map[uint64]uint64{} // base-set original ID -> remapped ID
	for i, set := range sets {
		if i == 0 {
			m.TraceID = set.TraceID
		} else if set.TraceID != m.TraceID {
			continue
		}
		name := set.Node
		if name == "" {
			name = fmt.Sprintf("node-%d", i)
		}
		nodeIdx := len(m.Nodes)
		m.Nodes = append(m.Nodes, name)
		ids := map[uint64]bool{}
		var maxID uint64
		for _, ws := range set.Spans {
			ids[ws.ID] = true
			if ws.ID > maxID {
				maxID = ws.ID
			}
		}
		for _, ws := range set.Spans {
			s := Span{
				ID:    ws.ID + offset,
				Name:  ws.Name,
				Start: time.Unix(0, ws.StartUnixNs),
				Dur:   time.Duration(ws.DurNs),
			}
			switch {
			case ws.Parent != 0 && ids[ws.Parent]:
				s.Parent = ws.Parent + offset
			case i > 0 && set.RemoteParent != 0:
				// Root of a remote set: splice under the base process's
				// injecting span when it exists there.
				if remapped, ok := baseIDs[set.RemoteParent]; ok {
					s.Parent = remapped
				}
			}
			if len(ws.Attrs) > 0 {
				keys := make([]string, 0, len(ws.Attrs))
				for k := range ws.Attrs {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					s.Attrs = append(s.Attrs, Attr{Key: k, Value: ws.Attrs[k]})
				}
			}
			if i == 0 {
				baseIDs[ws.ID] = s.ID
			}
			m.node[s.ID] = nodeIdx
			m.spans = append(m.spans, s)
			if m.epoch.IsZero() || s.Start.Before(m.epoch) {
				m.epoch = s.Start
			}
		}
		offset += maxID
	}
	sort.Slice(m.spans, func(i, j int) bool {
		if !m.spans[i].Start.Equal(m.spans[j].Start) {
			return m.spans[i].Start.Before(m.spans[j].Start)
		}
		return m.spans[i].ID < m.spans[j].ID
	})
	return m
}

// Spans returns the merged, remapped spans sorted by start time.
func (m *Merged) Spans() []Span { return m.spans }

// SpanSet flattens the merged trace back into one wire span set —
// the document GET /v1/debug/traces/{id}?format=spans serves from a
// gateway. Per-node attribution survives as a "node" attribute on
// each span, since the single-node Node field cannot carry it.
func (m *Merged) SpanSet() SpanSet {
	ss := SpanSet{TraceID: m.TraceID, Node: "merged", Spans: make([]WireSpan, 0, len(m.spans))}
	for _, s := range m.spans {
		ws := WireSpan{
			ID:          s.ID,
			Parent:      s.Parent,
			Name:        s.Name,
			StartUnixNs: s.Start.UnixNano(),
			DurNs:       int64(s.Dur),
		}
		ws.Attrs = make(map[string]string, len(s.Attrs)+1)
		for _, a := range s.Attrs {
			ws.Attrs[a.Key] = a.Value
		}
		if n := m.NodeOf(s.ID); n != "" {
			ws.Attrs["node"] = n
		}
		ss.Spans = append(ss.Spans, ws)
	}
	return ss
}

// NodeOf returns the process name a remapped span belongs to.
func (m *Merged) NodeOf(spanID uint64) string {
	if i, ok := m.node[spanID]; ok && i < len(m.Nodes) {
		return m.Nodes[i]
	}
	return ""
}

// ChromeJSON renders the merged trace as one Chrome trace-event
// document with one pid per node (named by a process_name metadata
// event) so chrome://tracing shows each process on its own track.
// Every slice carries its remapped span/parent IDs in args, making
// the cross-process parent links explicit in the JSON itself.
func (m *Merged) ChromeJSON() ([]byte, error) {
	doc := chromeDoc{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(m.spans)+len(m.Nodes))}
	for i, name := range m.Nodes {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: i + 1, Tid: 1,
			Args: map[string]string{"name": name},
		})
	}
	for _, s := range m.spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  "compile",
			Ph:   "X",
			Ts:   usSince(m.epoch, s.Start),
			Dur:  float64(s.Dur.Microseconds()),
			Pid:  m.node[s.ID] + 1,
			Tid:  1,
		}
		ev.Args = map[string]string{
			"span_id":   strconv.FormatUint(s.ID, 10),
			"parent_id": strconv.FormatUint(s.Parent, 10),
		}
		for _, a := range s.Attrs {
			ev.Args[a.Key] = a.Value
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	return json.MarshalIndent(doc, "", " ")
}

// Tree renders the merged trace as one indented text tree: remote
// roots nest under the span that injected the wire identity, so a
// gateway-routed compile reads top-to-bottom across processes.
func (m *Merged) Tree() string {
	tr := &Trace{ID: m.TraceID, start: m.epoch}
	for _, s := range m.spans {
		sc := s
		if node := m.NodeOf(s.ID); node != "" {
			// Annotate process transitions only: a span on the same node
			// as its parent inherits the context visually.
			if pn := m.NodeOf(s.Parent); s.Parent == 0 || pn != node {
				sc.Attrs = append(append([]Attr(nil), s.Attrs...), Attr{Key: "node", Value: node})
			}
		}
		tr.spans = append(tr.spans, sc)
	}
	return tr.Tree()
}
