package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestStartNesting: Start under a traced context records parent links,
// and the untraced path is a pure no-op.
func TestStartNesting(t *testing.T) {
	tr := NewTrace("test")
	ctx := WithTrace(context.Background(), tr)
	c1, end1 := Start(ctx, "outer")
	c2, end2 := Start(c1, "inner")
	_ = c2
	end2(Int("n", 3))
	end1()
	end1() // idempotent: second call must not double-record

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	var outer, inner Span
	for _, s := range spans {
		switch s.Name {
		case "outer":
			outer = s
		case "inner":
			inner = s
		}
	}
	if outer.ID == 0 || inner.ID == 0 {
		t.Fatalf("missing spans: %+v", spans)
	}
	if inner.Parent != outer.ID {
		t.Errorf("inner.Parent = %d, want %d", inner.Parent, outer.ID)
	}
	if outer.Parent != 0 {
		t.Errorf("outer.Parent = %d, want 0 (root)", outer.Parent)
	}
	if len(inner.Attrs) != 1 || inner.Attrs[0].Key != "n" || inner.Attrs[0].Value != "3" {
		t.Errorf("inner attrs = %v", inner.Attrs)
	}
}

// TestStartUntraced: without a trace in the context both returns are
// no-ops and nothing is recorded anywhere.
func TestStartUntraced(t *testing.T) {
	ctx, end := Start(context.Background(), "ghost")
	end()
	if FromContext(ctx) != nil {
		t.Fatal("untraced Start attached a trace")
	}
	var tr *Trace
	tr.Record("x", time.Now(), time.Now()) // nil-safe
	if tr.Len() != 0 || tr.Spans() != nil || tr.Tree() != "" {
		t.Fatal("nil trace not inert")
	}
}

// TestConcurrentSpans records spans from many goroutines into one
// trace; under -race this proves the recording path, and every span
// must survive with a unique ID.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTrace("conc")
	ctx := WithTrace(context.Background(), tr)
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c, end := Start(ctx, "op")
				_, end2 := Start(c, "nested")
				end2()
				end()
			}
		}()
	}
	wg.Wait()
	spans := tr.Spans()
	if got, want := len(spans), workers*perWorker*2; got != want {
		t.Fatalf("got %d spans, want %d", got, want)
	}
	seen := map[uint64]bool{}
	for _, s := range spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		seen[s.ID] = true
	}
}

// TestRecordClamps: a synthesized span with end < start clamps to zero
// duration instead of going negative.
func TestRecordClamps(t *testing.T) {
	tr := NewTrace("clamp")
	now := time.Now()
	tr.Record("backwards", now, now.Add(-time.Second))
	if d := tr.Spans()[0].Dur; d != 0 {
		t.Fatalf("duration = %v, want 0", d)
	}
}

// TestChromeJSON: the export is a valid trace-event document — a
// metadata event plus one complete ("X") event per span with µs
// timestamps relative to the epoch.
func TestChromeJSON(t *testing.T) {
	tr := NewTrace("chrome")
	base := tr.Epoch()
	tr.Record("alpha", base.Add(1*time.Millisecond), base.Add(3*time.Millisecond), String("k", "v"))
	tr.Record("beta", base.Add(4*time.Millisecond), base.Add(5*time.Millisecond))
	b, err := tr.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, b)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 3 { // metadata + 2 spans
		t.Fatalf("got %d events, want 3", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != "M" {
		t.Errorf("first event ph = %q, want metadata", doc.TraceEvents[0].Ph)
	}
	alpha := doc.TraceEvents[1]
	if alpha.Name != "alpha" || alpha.Ph != "X" {
		t.Fatalf("unexpected event order: %+v", doc.TraceEvents)
	}
	if alpha.Ts < 999 || alpha.Ts > 1001 {
		t.Errorf("alpha ts = %v µs, want ~1000", alpha.Ts)
	}
	if alpha.Dur < 1999 || alpha.Dur > 2001 {
		t.Errorf("alpha dur = %v µs, want ~2000", alpha.Dur)
	}
	if alpha.Args["k"] != "v" {
		t.Errorf("alpha args = %v", alpha.Args)
	}
	// Nil trace exports an empty, still-valid document.
	var nilTr *Trace
	if b, err := nilTr.ChromeJSON(); err != nil || !json.Valid(b) {
		t.Fatalf("nil export: %v %s", err, b)
	}
}

// TestTree renders the nested span hierarchy with indentation and
// attributes — the slow-compile forensics format.
func TestTree(t *testing.T) {
	tr := NewTrace("tree")
	ctx := WithTrace(context.Background(), tr)
	c1, end1 := Start(ctx, "compile")
	_, end2 := Start(c1, "floorplan")
	end2(Int("moves", 12))
	end1()
	out := tr.Tree()
	if !strings.Contains(out, "compile") || !strings.Contains(out, "floorplan") {
		t.Fatalf("tree missing spans:\n%s", out)
	}
	if !strings.Contains(out, "moves=12") {
		t.Fatalf("tree missing attrs:\n%s", out)
	}
	// The child must be indented deeper than the parent.
	var compileIndent, fpIndent int
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimLeft(line, " ")
		if strings.HasPrefix(trimmed, "compile ") {
			compileIndent = len(line) - len(trimmed)
		}
		if strings.HasPrefix(trimmed, "floorplan ") {
			fpIndent = len(line) - len(trimmed)
		}
	}
	if fpIndent <= compileIndent {
		t.Fatalf("child not indented (%d <= %d):\n%s", fpIndent, compileIndent, out)
	}
}

// TestNewIDUnique: trace IDs are 16 hex chars and collision-free in a
// small sample.
func TestNewIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewID()
		if len(id) != 16 {
			t.Fatalf("id %q has length %d", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}
