package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultBuckets are the fixed latency buckets (seconds) used by the
// pipeline's duration histograms: 100 µs to 60 s, roughly log-spaced.
// Fixed buckets keep Observe lock-free (one binary search + two
// atomic adds) and make the Prometheus exposition byte-deterministic.
var DefaultBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60,
}

// Counter is a monotonically increasing uint64. The nil Counter is a
// no-op, so callers can hold instruments from a nil Registry.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64. The nil Gauge is a no-op.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments by delta (CAS loop; gauges are low-frequency).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket latency histogram: per-bucket atomic
// counters (non-cumulative internally, cumulative at exposition),
// an atomic observation count and an atomic float64-bits sum. Observe
// never takes a lock. The nil Histogram is a no-op.
type Histogram struct {
	bounds  []float64 // upper bounds, strictly increasing; +Inf implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// NewHistogram builds a standalone histogram (outside a registry) —
// mostly for tests; production code obtains histograms from a
// Registry. Nil or empty buckets select DefaultBuckets.
func NewHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefaultBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value. Bucket upper bounds are inclusive
// (Prometheus `le` semantics): a value equal to a bound lands in that
// bound's bucket.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound >= v: with inclusive-le semantics that is v's bucket;
	// values above every bound land in the +Inf overflow slot.
	idx := sort.SearchFloat64s(h.bounds, v)
	h.buckets[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a consistent-enough point-in-time view
// (buckets are read individually; under concurrent writes the view
// may straddle an Observe, which is the standard Prometheus trade).
type HistogramSnapshot struct {
	Bounds     []float64 // upper bounds (excluding +Inf)
	Cumulative []uint64  // cumulative counts per bound, then +Inf last
	Count      uint64
	Sum        float64
}

// Snapshot captures the histogram state with cumulative bucket
// counts, +Inf last.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds:     h.bounds,
		Cumulative: make([]uint64, len(h.buckets)),
		Count:      h.count.Load(),
		Sum:        math.Float64frombits(h.sumBits.Load()),
	}
	var run uint64
	for i := range h.buckets {
		run += h.buckets[i].Load()
		s.Cumulative[i] = run
	}
	return s
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the bucket
// counts by linear interpolation within the holding bucket — the
// standard Prometheus histogram_quantile estimate. An empty snapshot
// returns 0. When the rank lands in the +Inf bucket the highest
// finite bound is returned (the estimate is a floor, which is the
// conservative direction for retry hints).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Cumulative) == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	idx := len(s.Cumulative) - 1
	for i, c := range s.Cumulative {
		if float64(c) >= rank {
			idx = i
			break
		}
	}
	if idx >= len(s.Bounds) {
		// +Inf bucket: no upper bound to interpolate toward.
		if len(s.Bounds) == 0 {
			return 0
		}
		return s.Bounds[len(s.Bounds)-1]
	}
	lo, loCount := 0.0, uint64(0)
	if idx > 0 {
		lo, loCount = s.Bounds[idx-1], s.Cumulative[idx-1]
	}
	hi := s.Bounds[idx]
	inBucket := s.Cumulative[idx] - loCount
	if inBucket == 0 {
		return hi
	}
	return lo + (hi-lo)*(rank-float64(loCount))/float64(inBucket)
}

// CounterVec is a counter family split by one label (e.g.
// proxy_requests_total by peer). Children are created on first use;
// the read path is a shared-lock map hit.
type CounterVec struct {
	mu sync.RWMutex
	m  map[string]*Counter
}

// With returns the child counter for the label value. The nil
// CounterVec hands out nil (no-op) counters.
func (v *CounterVec) With(label string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c, ok := v.m[label]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.m[label]; ok {
		return c
	}
	c = &Counter{}
	v.m[label] = c
	return c
}

// labels returns the known label values, sorted.
func (v *CounterVec) labels() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, 0, len(v.m))
	for k := range v.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// HistogramVec is a histogram family split by one label (e.g.
// compile_stage_duration_seconds by stage). Children are created on
// first use; the read path is a shared-lock map hit.
type HistogramVec struct {
	buckets []float64
	mu      sync.RWMutex
	m       map[string]*Histogram
}

// With returns the child histogram for the label value.
func (v *HistogramVec) With(label string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	h, ok := v.m[label]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.m[label]; ok {
		return h
	}
	h = NewHistogram(v.buckets)
	v.m[label] = h
	return h
}

// labels returns the known label values, sorted.
func (v *HistogramVec) labels() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, 0, len(v.m))
	for k := range v.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// registry -----------------------------------------------------------

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered instrument (or callback).
type metric struct {
	name, help  string
	kind        metricKind
	constLabels string // pre-rendered `{k="v",...}` or ""
	labelKey    string // vec label name

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
	vec     *HistogramVec
	cvec    *CounterVec
}

// Registry holds named instruments and renders them as Prometheus
// text exposition or a JSON-able snapshot. Registration is idempotent
// by (name, constLabels): re-registering returns the existing
// instrument, so packages can lazily grab their metrics without
// coordinating construction order. All methods are nil-receiver safe
// — a nil *Registry hands out nil (no-op) instruments, which is how
// telemetry is disabled wholesale.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*metric
	order []*metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*metric{}}
}

// register inserts or returns the existing metric under name+labels.
func (r *Registry) register(m *metric) *metric {
	key := m.name + m.constLabels
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byKey[key]; ok {
		return prev
	}
	r.byKey[key] = m
	r.order = append(r.order, m)
	return m
}

// Counter registers (or fetches) a monotonic counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	m := r.register(&metric{name: name, help: help, kind: kindCounter, counter: &Counter{}})
	return m.counter
}

// Gauge registers (or fetches) a settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.register(&metric{name: name, help: help, kind: kindGauge, gauge: &Gauge{}})
	return m.gauge
}

// GaugeFunc registers a gauge whose value is computed at exposition
// time — queue depth, cache bytes, goroutine count.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, help: help, kind: kindGauge, fn: fn})
}

// CounterFunc registers a counter whose value lives elsewhere (e.g. a
// stats struct maintained by another package) and is read at
// exposition time.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, help: help, kind: kindCounter, fn: fn})
}

// CounterFuncLabeled registers a constant-labelled counter callback.
// Several registrations may share a name with distinct labels (e.g.
// store_peer_fetch_total{outcome="hit"|"miss"|"corrupt"}); the
// exposition emits one HELP/TYPE header for the family.
func (r *Registry) CounterFuncLabeled(name, help string, labels map[string]string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&metric{
		name: name, help: help, kind: kindCounter,
		constLabels: renderLabels(labels),
		fn:          fn,
	})
}

// CounterVec registers (or fetches) a one-label counter family.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	if r == nil {
		return nil
	}
	m := r.register(&metric{
		name: name, help: help, kind: kindCounter, labelKey: labelKey,
		cvec: &CounterVec{m: map[string]*Counter{}},
	})
	return m.cvec
}

// Info registers a constant-1 gauge carrying its payload in labels —
// the Prometheus build-info idiom.
func (r *Registry) Info(name, help string, labels map[string]string) {
	if r == nil {
		return
	}
	r.register(&metric{
		name: name, help: help, kind: kindGauge,
		constLabels: renderLabels(labels),
		fn:          func() float64 { return 1 },
	})
}

// Histogram registers (or fetches) a fixed-bucket histogram. Nil
// buckets select DefaultBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	m := r.register(&metric{name: name, help: help, kind: kindHistogram, hist: NewHistogram(buckets)})
	return m.hist
}

// HistogramVec registers (or fetches) a one-label histogram family.
func (r *Registry) HistogramVec(name, help, labelKey string, buckets []float64) *HistogramVec {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefaultBuckets
	}
	m := r.register(&metric{
		name: name, help: help, kind: kindHistogram, labelKey: labelKey,
		vec: &HistogramVec{buckets: buckets, m: map[string]*Histogram{}},
	})
	return m.vec
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4), metrics sorted by name for deterministic
// output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := make([]*metric, len(r.order))
	copy(ms, r.order)
	r.mu.Unlock()
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].constLabels < ms[j].constLabels
	})
	var b strings.Builder
	lastHeader := ""
	for _, m := range ms {
		if m.name != lastHeader {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, sanitizeHelp(m.help))
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
			lastHeader = m.name
		}
		switch {
		case m.cvec != nil:
			for _, label := range m.cvec.labels() {
				fmt.Fprintf(&b, "%s{%s=\"%s\"} %d\n", m.name, m.labelKey, escapeLabel(label), m.cvec.With(label).Value())
			}
		case m.vec != nil:
			for _, label := range m.vec.labels() {
				writeHistogram(&b, m.name, m.labelKey, label, m.vec.With(label).Snapshot())
			}
		case m.hist != nil:
			writeHistogram(&b, m.name, "", "", m.hist.Snapshot())
		case m.fn != nil:
			fmt.Fprintf(&b, "%s%s %s\n", m.name, m.constLabels, formatFloat(m.fn()))
		case m.counter != nil:
			fmt.Fprintf(&b, "%s%s %d\n", m.name, m.constLabels, m.counter.Value())
		case m.gauge != nil:
			fmt.Fprintf(&b, "%s%s %s\n", m.name, m.constLabels, formatFloat(m.gauge.Value()))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram child in exposition format.
func writeHistogram(b *strings.Builder, name, labelKey, labelVal string, s HistogramSnapshot) {
	pair := ""
	sep := ""
	if labelKey != "" {
		pair = labelKey + `="` + escapeLabel(labelVal) + `"`
		sep = ","
	}
	for i, bound := range s.Bounds {
		fmt.Fprintf(b, "%s_bucket{%s%sle=\"%s\"} %d\n", name, pair, sep, formatFloat(bound), s.Cumulative[i])
	}
	inf := uint64(0)
	if n := len(s.Cumulative); n > 0 {
		inf = s.Cumulative[n-1]
	}
	fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, pair, sep, inf)
	suffix := ""
	if pair != "" {
		suffix = "{" + pair + "}"
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, suffix, formatFloat(s.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, suffix, s.Count)
}

// Snapshot renders every instrument as a JSON-able map — the expvar
// half of the dual exposition. Histograms become
// {count, sum, buckets:{"le" -> cumulative}}; vecs nest by label.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	ms := make([]*metric, len(r.order))
	copy(ms, r.order)
	r.mu.Unlock()
	for _, m := range ms {
		name := m.name + m.constLabels
		switch {
		case m.cvec != nil:
			family := map[string]any{}
			for _, label := range m.cvec.labels() {
				family[label] = m.cvec.With(label).Value()
			}
			out[name] = family
		case m.vec != nil:
			family := map[string]any{}
			for _, label := range m.vec.labels() {
				family[label] = histJSON(m.vec.With(label).Snapshot())
			}
			out[name] = family
		case m.hist != nil:
			out[name] = histJSON(m.hist.Snapshot())
		case m.fn != nil:
			out[name] = m.fn()
		case m.counter != nil:
			out[name] = m.counter.Value()
		case m.gauge != nil:
			out[name] = m.gauge.Value()
		}
	}
	return out
}

func histJSON(s HistogramSnapshot) map[string]any {
	buckets := map[string]uint64{}
	for i, bound := range s.Bounds {
		buckets[formatFloat(bound)] = s.Cumulative[i]
	}
	if n := len(s.Cumulative); n > 0 {
		buckets["+Inf"] = s.Cumulative[n-1]
	}
	return map[string]any{"count": s.Count, "sum": s.Sum, "buckets": buckets}
}

// formatFloat renders v in the shortest round-trip form.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// renderLabels renders a sorted, escaped `{k="v",...}` block.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the exposition-format label escapes.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// sanitizeHelp keeps HELP lines single-line.
func sanitizeHelp(h string) string { return strings.ReplaceAll(h, "\n", " ") }
