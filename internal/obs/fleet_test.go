package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// shardRegistry builds a synthetic shard exposition: one counter, one
// gauge, one labeled counter and one latency histogram, all populated
// deterministically from a small seed.
func shardRegistry(t *testing.T, jobs uint64, queueDepth float64, latencies []time.Duration) *Registry {
	t.Helper()
	r := NewRegistry()
	c := r.Counter("jobs_completed_total", "compile jobs finished")
	c.Add(jobs)
	r.Gauge("queue_depth", "queued jobs right now").Set(queueDepth)
	cv := r.CounterVec("http_requests_total", "requests by code", "code")
	cv.With("200").Add(jobs)
	cv.With("429").Add(jobs / 2)
	h := r.Histogram("compile_seconds", "compile latency", []float64{0.1, 1, 10})
	for _, d := range latencies {
		h.ObserveDuration(d)
	}
	return r
}

// scrapeOf renders a registry's Prometheus text and parses it back —
// the same round trip the gateway's fleet scrape performs.
func scrapeOf(t *testing.T, node string, r *Registry) FleetScrape {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatalf("parsing %s exposition: %v", node, err)
	}
	return FleetScrape{Node: node, Families: fams}
}

// TestParsePrometheusRoundTrip: the parser recovers every family the
// registry wrote, with types, labels and histogram components folded.
func TestParsePrometheusRoundTrip(t *testing.T) {
	r := shardRegistry(t, 10, 3, []time.Duration{50 * time.Millisecond, 2 * time.Second})
	sc := scrapeOf(t, "n1", r)
	byName := map[string]PromFamily{}
	for _, f := range sc.Families {
		byName[f.Name] = f
	}
	if f := byName["jobs_completed_total"]; f.Type != "counter" || len(f.Samples) != 1 || f.Samples[0].Value != 10 {
		t.Fatalf("counter family: %+v", f)
	}
	if f := byName["queue_depth"]; f.Type != "gauge" || f.Samples[0].Value != 3 {
		t.Fatalf("gauge family: %+v", f)
	}
	reqs := byName["http_requests_total"]
	codes := map[string]float64{}
	for _, s := range reqs.Samples {
		codes[s.Labels["code"]] = s.Value
	}
	if codes["200"] != 10 || codes["429"] != 5 {
		t.Fatalf("labeled counter samples: %v", codes)
	}
	hist := byName["compile_seconds"]
	if hist.Type != "histogram" {
		t.Fatalf("histogram family type %q", hist.Type)
	}
	hes := histogramsOf(hist)
	if len(hes) != 1 || hes[0].snap.Count != 2 {
		t.Fatalf("reassembled histogram: %+v", hes)
	}
	// 50ms lands in le=0.1; 2s lands in le=10.
	if hes[0].snap.Cumulative[0] != 1 || hes[0].snap.Cumulative[2] != 2 {
		t.Fatalf("bucket counts: %+v", hes[0].snap)
	}
}

// TestParsePrometheusRejectsGarbage: malformed sample lines fail the
// parse instead of silently mis-merging.
func TestParsePrometheusRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"jobs_total not-a-number\n",
		"jobs_total{code=\"200\" 5\n", // unterminated label block
		"jobs{bad} 1\n",
	} {
		if _, err := ParsePrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("ParsePrometheus(%q) accepted", in)
		}
	}
}

// TestMergeFleetCounterSums: the fleet counter is exactly the sum of
// the individual shard scrapes, per label set.
func TestMergeFleetCounterSums(t *testing.T) {
	s1 := scrapeOf(t, "http://a", shardRegistry(t, 10, 1, nil))
	s2 := scrapeOf(t, "http://b", shardRegistry(t, 32, 2, nil))
	m := MergeFleet([]FleetScrape{s1, s2})
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"jobs_completed_total 42\n",
		`http_requests_total{code="200"} 42` + "\n",
		`http_requests_total{code="429"} 21` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged exposition missing %q:\n%s", want, out)
		}
	}
}

// TestMergeFleetGaugeNodes: gauges are not summed — each node keeps
// its own series distinguished by the added node label.
func TestMergeFleetGaugeNodes(t *testing.T) {
	s1 := scrapeOf(t, "http://a", shardRegistry(t, 1, 3, nil))
	s2 := scrapeOf(t, "http://b", shardRegistry(t, 1, 7, nil))
	m := MergeFleet([]FleetScrape{s1, s2})
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `queue_depth{node="http://a"} 3`) ||
		!strings.Contains(out, `queue_depth{node="http://b"} 7`) {
		t.Fatalf("gauge node labeling missing:\n%s", out)
	}
	if strings.Contains(out, "queue_depth 10") {
		t.Fatalf("gauges were summed:\n%s", out)
	}
}

// TestMergeFleetGolden: merged output of two settled synthetic shards
// is deterministic down to the byte, so the fleet exposition is
// golden-testable — and a repeat merge is byte-identical.
func TestMergeFleetGolden(t *testing.T) {
	mk := func() []FleetScrape {
		return []FleetScrape{
			scrapeOf(t, "http://a", shardRegistry(t, 3, 1, []time.Duration{50 * time.Millisecond})),
			scrapeOf(t, "http://b", shardRegistry(t, 4, 2, []time.Duration{5 * time.Second})),
		}
	}
	var b1, b2 bytes.Buffer
	if err := MergeFleet(mk()).WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := MergeFleet(mk()).WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("merge not deterministic:\n--- first\n%s\n--- second\n%s", b1.String(), b2.String())
	}
	want := strings.Join([]string{
		"# HELP compile_seconds compile latency",
		"# TYPE compile_seconds histogram",
		`compile_seconds_bucket{le="0.1"} 1`,
		`compile_seconds_bucket{le="1"} 1`,
		`compile_seconds_bucket{le="10"} 2`,
		`compile_seconds_bucket{le="+Inf"} 2`,
		"compile_seconds_sum 5.05",
		"compile_seconds_count 2",
		"# HELP http_requests_total requests by code",
		"# TYPE http_requests_total counter",
		`http_requests_total{code="200"} 7`,
		`http_requests_total{code="429"} 3`,
		"# HELP jobs_completed_total compile jobs finished",
		"# TYPE jobs_completed_total counter",
		"jobs_completed_total 7",
		"# HELP queue_depth queued jobs right now",
		"# TYPE queue_depth gauge",
		`queue_depth{node="http://a"} 1`,
		`queue_depth{node="http://b"} 2`,
		"",
	}, "\n")
	if b1.String() != want {
		t.Fatalf("golden mismatch:\n--- got\n%s\n--- want\n%s", b1.String(), want)
	}
}

// TestMergeFleetSnapshot: the expvar half mirrors the text exposition
// — counters fleet-summed, gauges nested per node, histograms in the
// {count, sum, buckets} shape.
func TestMergeFleetSnapshot(t *testing.T) {
	s1 := scrapeOf(t, "http://a", shardRegistry(t, 10, 1, []time.Duration{time.Second}))
	s2 := scrapeOf(t, "http://b", shardRegistry(t, 5, 2, nil))
	snap := MergeFleet([]FleetScrape{s1, s2}).Snapshot()
	if got := snap["jobs_completed_total"]; got != float64(15) {
		t.Fatalf("counter sum = %v", got)
	}
	g, ok := snap["queue_depth"].(map[string]any)
	if !ok || g["node=http://a"] != float64(1) || g["node=http://b"] != float64(2) {
		t.Fatalf("gauge nesting: %v", snap["queue_depth"])
	}
	h, ok := snap["compile_seconds"].(map[string]any)
	if !ok || h["count"] != uint64(1) {
		t.Fatalf("histogram snapshot: %v", snap["compile_seconds"])
	}
}

// TestMergedHistogramQuantiles: quantiles of the fleet-merged
// histogram reflect the combined distribution — the gateway's
// ?scope=fleet summary math.
func TestMergedHistogramQuantiles(t *testing.T) {
	// Shard a: 10 fast compiles (le=0.1). Shard b: 10 slow (le=10).
	fast := make([]time.Duration, 10)
	slow := make([]time.Duration, 10)
	for i := range fast {
		fast[i] = 50 * time.Millisecond
		slow[i] = 5 * time.Second
	}
	ha := shardRegistry(t, 1, 0, fast)
	hb := shardRegistry(t, 1, 0, slow)
	var sa, sb HistogramSnapshot
	for _, f := range scrapeOf(t, "a", ha).Families {
		if f.Name == "compile_seconds" {
			sa = histogramsOf(f)[0].snap
		}
	}
	for _, f := range scrapeOf(t, "b", hb).Families {
		if f.Name == "compile_seconds" {
			sb = histogramsOf(f)[0].snap
		}
	}
	merged, err := MergeHistograms(sa, sb)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Count != 20 {
		t.Fatalf("merged count %d", merged.Count)
	}
	// Half the mass is fast, half slow: p25 sits in the fast bucket,
	// p75 in the slow one.
	if p25 := merged.Quantile(0.25); p25 > 0.1 {
		t.Fatalf("p25 = %v, want within fast bucket (0, 0.1]", p25)
	}
	if p75 := merged.Quantile(0.75); p75 <= 1 || p75 > 10 {
		t.Fatalf("p75 = %v, want within slow bucket (1, 10]", p75)
	}
}

// TestMergeHistogramsMismatch: differing bucket bounds are rejected;
// empty snapshots are skipped rather than blocking the merge.
func TestMergeHistogramsMismatch(t *testing.T) {
	b := NewRegistry().Histogram("h", "", []float64{1, 5})
	b.Observe(1.5)
	a2 := NewRegistry().Histogram("h", "", []float64{1, 2})
	a2.Observe(0.5)
	if _, err := MergeHistograms(a2.Snapshot(), b.Snapshot()); err == nil {
		t.Fatal("mismatched bounds merged")
	}
	var empty HistogramSnapshot // a node without the family: skipped
	merged, err := MergeHistograms(empty, b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if merged.Count != 1 {
		t.Fatalf("merged count %d, want 1", merged.Count)
	}
}
