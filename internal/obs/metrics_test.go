package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketEdges pins the inclusive-le contract: a value
// exactly on a bucket bound lands in that bound's bucket (Prometheus
// `le` semantics), values above every bound land in +Inf.
func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	h.Observe(0.1) // == first bound -> bucket 0
	h.Observe(0.05)
	h.Observe(1)    // == second bound -> bucket 1
	h.Observe(10)   // == last bound -> bucket 2
	h.Observe(10.1) // above every bound -> +Inf
	h.Observe(1e9)

	s := h.Snapshot()
	if got, want := s.Count, uint64(6); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	// Cumulative: le=0.1 -> 2, le=1 -> 3, le=10 -> 4, +Inf -> 6.
	wantCum := []uint64{2, 3, 4, 6}
	for i, want := range wantCum {
		if s.Cumulative[i] != want {
			t.Errorf("cumulative[%d] = %d, want %d (%v)", i, s.Cumulative[i], want, s.Cumulative)
		}
	}
	wantSum := 0.1 + 0.05 + 1 + 10 + 10.1 + 1e9
	if math.Abs(s.Sum-wantSum) > 1e-6 {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
}

// TestHistogramConcurrent hammers Observe from many goroutines; run
// under -race this proves the lock-free path is clean, and the final
// count/sum must be exact.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if got, want := s.Count, uint64(workers*perWorker); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	if want := float64(workers*perWorker) * 0.001; math.Abs(s.Sum-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
}

// TestWritePrometheusGolden pins the text exposition byte-for-byte: a
// scrape-format regression (spacing, ordering, label escaping, bucket
// cumulation) breaks dashboards silently, so the rendering is frozen.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("widgets_total", "Widgets made.")
	c.Add(3)
	g := r.Gauge("temperature_celsius", "Current temperature.")
	g.Set(21.5)
	r.Info("build_info", "Build metadata.", map[string]string{"version": `v1.0"beta`})
	h := r.Histogram("latency_seconds", "Operation latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	v := r.HistogramVec("stage_seconds", "Per-stage latency.", "stage", []float64{1})
	v.With("compile").Observe(0.5)
	v.With("analysis").Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP build_info Build metadata.
# TYPE build_info gauge
build_info{version="v1.0\"beta"} 1
# HELP latency_seconds Operation latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 5.55
latency_seconds_count 3
# HELP stage_seconds Per-stage latency.
# TYPE stage_seconds histogram
stage_seconds_bucket{stage="analysis",le="1"} 0
stage_seconds_bucket{stage="analysis",le="+Inf"} 1
stage_seconds_sum{stage="analysis"} 2
stage_seconds_count{stage="analysis"} 1
stage_seconds_bucket{stage="compile",le="1"} 1
stage_seconds_bucket{stage="compile",le="+Inf"} 1
stage_seconds_sum{stage="compile"} 0.5
stage_seconds_count{stage="compile"} 1
# HELP temperature_celsius Current temperature.
# TYPE temperature_celsius gauge
temperature_celsius 21.5
# HELP widgets_total Widgets made.
# TYPE widgets_total counter
widgets_total 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRegistryIdempotent: re-registering a name returns the same
// instrument, so packages can lazily grab metrics in any order.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "first")
	b := r.Counter("x_total", "second")
	if a != b {
		t.Fatal("re-registration minted a second counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("instruments not shared")
	}
	if h1, h2 := r.Histogram("h", "", nil), r.Histogram("h", "", nil); h1 != h2 {
		t.Fatal("re-registration minted a second histogram")
	}
}

// TestNilRegistryIsNoop: a nil *Registry hands out nil instruments
// whose every method is a no-op — the telemetry off-switch.
func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("a", "")
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Fatal("nil counter counted")
	}
	g := r.Gauge("b", "")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge gauged")
	}
	h := r.Histogram("c", "", nil)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Snapshot().Count != 0 {
		t.Fatal("nil histogram observed")
	}
	v := r.HistogramVec("d", "", "k", nil)
	v.With("x").Observe(1)
	r.GaugeFunc("e", "", func() float64 { return 1 })
	r.CounterFunc("f", "", func() float64 { return 1 })
	r.Info("g", "", nil)
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry snapshot non-empty")
	}
}

// TestSnapshotJSONShape: the expvar half of the dual exposition nests
// histograms as {count, sum, buckets} and vecs by label.
func TestSnapshotJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("n_total", "").Add(2)
	r.Histogram("lat", "", []float64{1}).Observe(0.5)
	r.HistogramVec("st", "", "stage", []float64{1}).With("compile").Observe(0.25)
	snap := r.Snapshot()
	if got := snap["n_total"].(uint64); got != 2 {
		t.Fatalf("counter snapshot = %v", got)
	}
	hist := snap["lat"].(map[string]any)
	if hist["count"].(uint64) != 1 {
		t.Fatalf("hist count = %v", hist["count"])
	}
	buckets := hist["buckets"].(map[string]uint64)
	if buckets["1"] != 1 || buckets["+Inf"] != 1 {
		t.Fatalf("hist buckets = %v", buckets)
	}
	fam := snap["st"].(map[string]any)
	if _, ok := fam["compile"]; !ok {
		t.Fatalf("vec snapshot missing label: %v", fam)
	}
}
