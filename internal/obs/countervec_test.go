package obs

import (
	"strings"
	"testing"
)

// TestCounterVecExpositions: a one-label counter family renders per
// child in the Prometheus text format (one HELP/TYPE header, sorted
// labels) and nests by label in the JSON snapshot.
func TestCounterVecExpositions(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("proxy_requests_total", "Proxied requests by peer.", "peer")
	v.With("http://b:1").Add(2)
	v.With("http://a:1").Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	expo := b.String()
	for _, want := range []string{
		"# TYPE proxy_requests_total counter",
		`proxy_requests_total{peer="http://a:1"} 1`,
		`proxy_requests_total{peer="http://b:1"} 2`,
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q:\n%s", want, expo)
		}
	}
	if strings.Count(expo, "# HELP proxy_requests_total") != 1 {
		t.Errorf("family header repeated:\n%s", expo)
	}
	// Sorted label order.
	if strings.Index(expo, `peer="http://a:1"`) > strings.Index(expo, `peer="http://b:1"`) {
		t.Errorf("labels not sorted:\n%s", expo)
	}

	snap := r.Snapshot()
	fam, ok := snap["proxy_requests_total"].(map[string]any)
	if !ok {
		t.Fatalf("snapshot missing family: %v", snap)
	}
	if fam["http://a:1"] != uint64(1) || fam["http://b:1"] != uint64(2) {
		t.Fatalf("snapshot children %v", fam)
	}

	// Registration is idempotent; nil registry and vec are no-ops.
	if r.CounterVec("proxy_requests_total", "", "peer") != v {
		t.Fatal("re-registration minted a new vec")
	}
	var nilReg *Registry
	nilReg.CounterVec("x", "", "l").With("a").Inc()
	var nilVec *CounterVec
	nilVec.With("a").Inc()
}

// TestCounterFuncLabeled: same-name registrations with distinct const
// labels coexist under one family header.
func TestCounterFuncLabeled(t *testing.T) {
	r := NewRegistry()
	r.CounterFuncLabeled("store_peer_fetch_total", "Peer fetches.", map[string]string{"outcome": "hit"}, func() float64 { return 3 })
	r.CounterFuncLabeled("store_peer_fetch_total", "Peer fetches.", map[string]string{"outcome": "miss"}, func() float64 { return 1 })
	var b strings.Builder
	r.WritePrometheus(&b)
	expo := b.String()
	for _, want := range []string{
		`store_peer_fetch_total{outcome="hit"} 3`,
		`store_peer_fetch_total{outcome="miss"} 1`,
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q:\n%s", want, expo)
		}
	}
	if strings.Count(expo, "# TYPE store_peer_fetch_total counter") != 1 {
		t.Errorf("family header repeated:\n%s", expo)
	}
	snap := r.Snapshot()
	if snap[`store_peer_fetch_total{outcome="hit"}`] != float64(3) {
		t.Fatalf("snapshot %v", snap)
	}
}
