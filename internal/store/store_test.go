package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
)

func testKey(seed string) string {
	sum := sha256.Sum256([]byte(seed))
	return hex.EncodeToString(sum[:])
}

func testEntry(seed string, payloadBytes int) *cache.Entry {
	return &cache.Entry{
		Key:    testKey(seed),
		Report: []byte(`{"name":"` + seed + `"}`),
		Artifacts: map[string][]byte{
			"datasheet.txt": []byte(strings.Repeat(seed[:1], payloadBytes)),
		},
	}
}

func open(t *testing.T, dir string, budget int64) *Store {
	t.Helper()
	s, err := Open(Config{Dir: dir, BudgetBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	e := testEntry("alpha", 100)
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(e.Key)
	if !ok {
		t.Fatal("put then get missed")
	}
	if string(got.Report) != string(e.Report) {
		t.Fatalf("report %q != %q", got.Report, e.Report)
	}
	if string(got.Artifacts["datasheet.txt"]) != string(e.Artifacts["datasheet.txt"]) {
		t.Fatal("artifact bytes drifted through the disk round trip")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMissAndInvalidKey(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	if _, ok := s.Get(testKey("nothing")); ok {
		t.Fatal("hit on empty store")
	}
	if _, ok := s.Get("../../etc/passwd"); ok {
		t.Fatal("path-shaped key must miss")
	}
	if err := s.Put(&cache.Entry{Key: "short"}); err == nil {
		t.Fatal("invalid key accepted by Put")
	}
	if s.Stats().Misses < 2 {
		t.Fatalf("misses %d", s.Stats().Misses)
	}
}

func TestRestartWarmIndexScan(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	for _, seed := range []string{"a", "b", "c"} {
		if err := s.Put(testEntry(seed, 50)); err != nil {
			t.Fatal(err)
		}
	}
	// "Restart": a brand-new store over the same directory.
	s2 := open(t, dir, 0)
	if got := s2.Stats().ScannedAtStartup; got != 3 {
		t.Fatalf("startup scan found %d objects, want 3", got)
	}
	for _, seed := range []string{"a", "b", "c"} {
		e, ok := s2.Get(testKey(seed))
		if !ok {
			t.Fatalf("object %s lost across restart", seed)
		}
		if !strings.Contains(string(e.Report), seed) {
			t.Fatalf("object %s content wrong: %s", seed, e.Report)
		}
	}
	if s2.Stats().Hits != 3 {
		t.Fatalf("hits %d", s2.Stats().Hits)
	}
}

func TestCorruptionQuarantinedNotServed(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	e := testEntry("victim", 200)
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	// Truncate the committed object mid-payload.
	path := filepath.Join(dir, "objects", e.Key+".entry")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(e.Key); ok {
		t.Fatal("corrupt object served")
	}
	st := s.Stats()
	if st.Corrupt != 1 {
		t.Fatalf("corrupt counter %d, want 1", st.Corrupt)
	}
	if st.Entries != 0 {
		t.Fatalf("corrupt object still indexed: %+v", st)
	}
	if s.QuarantinedCount() != 1 {
		t.Fatalf("quarantine dir holds %d files, want 1", s.QuarantinedCount())
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt object still under its serving name")
	}
	// The key is re-puttable after quarantine (recompile path).
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(e.Key); !ok {
		t.Fatal("recompiled object not served")
	}
}

func TestCorruptionVariants(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(raw []byte) []byte
	}{
		{"flipped-byte", func(raw []byte) []byte {
			out := append([]byte(nil), raw...)
			out[len(out)-3] ^= 0xff
			return out
		}},
		{"bad-magic", func(raw []byte) []byte {
			return append([]byte("wrongmagic deadbeef\n"), raw...)
		}},
		{"empty", func([]byte) []byte { return nil }},
		{"no-newline", func([]byte) []byte { return []byte("bisramstore1 abc") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, dir, 0)
			e := testEntry("x", 64)
			if err := s.Put(e); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, "objects", e.Key+".entry")
			raw, _ := os.ReadFile(path)
			if err := os.WriteFile(path, tc.mutate(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(e.Key); ok {
				t.Fatal("corrupt variant served")
			}
			if s.Stats().Corrupt != 1 {
				t.Fatalf("corrupt counter %d", s.Stats().Corrupt)
			}
		})
	}
}

func TestWrongKeyObjectQuarantined(t *testing.T) {
	// An object whose payload claims a different key than its filename
	// (e.g. a manually renamed file) must not be served.
	dir := t.TempDir()
	s := open(t, dir, 0)
	e := testEntry("real", 32)
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(dir, "objects", e.Key+".entry")
	dst := filepath.Join(dir, "objects", testKey("imposter")+".entry")
	raw, _ := os.ReadFile(src)
	if err := os.WriteFile(dst, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, 0)
	if _, ok := s2.Get(testKey("imposter")); ok {
		t.Fatal("renamed object served under the wrong key")
	}
	if s2.Stats().Corrupt != 1 {
		t.Fatalf("corrupt %d", s2.Stats().Corrupt)
	}
}

func TestByteBudgetGCEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	// Budget sized for roughly two of the three objects.
	e1, e2, e3 := testEntry("1", 400), testEntry("2", 400), testEntry("3", 400)
	s := open(t, dir, 1600)
	if err := s.Put(e1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if err := s.Put(e2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	// Touch e1 so e2 becomes the LRU.
	if _, ok := s.Get(e1.Key); !ok {
		t.Fatal("e1 missing")
	}
	time.Sleep(5 * time.Millisecond)
	if err := s.Put(e3); err != nil {
		t.Fatal(err)
	}
	if s.Contains(e2.Key) {
		t.Fatal("LRU object e2 survived GC")
	}
	if !s.Contains(e1.Key) || !s.Contains(e3.Key) {
		t.Fatalf("recently-used objects evicted: e1=%v e3=%v", s.Contains(e1.Key), s.Contains(e3.Key))
	}
	st := s.Stats()
	if st.Evictions < 1 {
		t.Fatalf("evictions %d", st.Evictions)
	}
	if st.Bytes > st.BudgetBytes {
		t.Fatalf("resident %d exceeds budget %d", st.Bytes, st.BudgetBytes)
	}
	// The evicted file is really gone from disk.
	if _, err := os.Stat(filepath.Join(dir, "objects", e2.Key+".entry")); !os.IsNotExist(err) {
		t.Fatal("evicted object still on disk")
	}
}

func TestOversizedObjectRejected(t *testing.T) {
	s := open(t, t.TempDir(), 128)
	if err := s.Put(testEntry("big", 4096)); err == nil {
		t.Fatal("object larger than the whole budget accepted")
	}
	if s.Stats().Rejected != 1 {
		t.Fatalf("rejected %d", s.Stats().Rejected)
	}
}

func TestOpenHonoursShrunkBudget(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	for i := 0; i < 5; i++ {
		if err := s.Put(testEntry(fmt.Sprintf("obj%d", i), 500)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	total := s.Stats().Bytes
	s2 := open(t, dir, total/2)
	st := s2.Stats()
	if st.Bytes > total/2 {
		t.Fatalf("reopened store over budget: %d > %d", st.Bytes, total/2)
	}
	if st.Entries >= 5 {
		t.Fatalf("no objects evicted on shrunk reopen: %+v", st)
	}
}

func TestTempFilesSweptOnOpen(t *testing.T) {
	dir := t.TempDir()
	open(t, dir, 0) // create layout
	junk := filepath.Join(dir, "tmp", "put-crashed")
	if err := os.WriteFile(junk, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	open(t, dir, 0)
	if _, err := os.Stat(junk); !os.IsNotExist(err) {
		t.Fatal("abandoned temp file survived reopen")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := open(t, t.TempDir(), 1<<20)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				seed := fmt.Sprintf("w%d-%d", i, j%5)
				if err := s.Put(testEntry(seed, 64)); err != nil {
					t.Error(err)
					return
				}
				if e, ok := s.Get(testKey(seed)); ok && e.Key != testKey(seed) {
					t.Errorf("wrong entry under %s", seed)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if s.Stats().Bytes < 0 {
		t.Fatalf("negative resident size: %+v", s.Stats())
	}
}

func TestQuarantineCapEvictsOldest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, QuarantineObjects: 2, QuarantineBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	corruptAndGet := func(seed string) {
		t.Helper()
		e := testEntry(seed, 100)
		if err := s.Put(e); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "objects", e.Key+".entry")
		if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(e.Key); ok {
			t.Fatal("corrupt object served")
		}
		// Quarantine names and eviction order use mtime at nanosecond
		// granularity; keep orderings distinct on coarse filesystems.
		time.Sleep(5 * time.Millisecond)
	}
	for _, seed := range []string{"q1", "q2", "q3", "q4"} {
		corruptAndGet(seed)
	}
	st := s.Stats()
	if st.QuarantineObjects != 2 {
		t.Fatalf("quarantine holds %d objects, want 2 (stats %+v)", st.QuarantineObjects, st)
	}
	if st.QuarantineEvictions != 2 {
		t.Fatalf("quarantine evictions %d, want 2", st.QuarantineEvictions)
	}
	if got := s.QuarantinedCount(); got != 2 {
		t.Fatalf("quarantine dir holds %d files, want 2", got)
	}
	// The survivors are the two newest quarantined files.
	ents, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, testKey("q1")) || strings.HasPrefix(name, testKey("q2")) {
			t.Fatalf("oldest quarantined file %s survived eviction", name)
		}
	}
}

func TestQuarantineByteCapAndRestartScan(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, QuarantineObjects: -1, QuarantineBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	var oneSize int64
	for i, seed := range []string{"b1", "b2", "b3"} {
		e := testEntry(seed, 300)
		if err := s.Put(e); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "objects", e.Key+".entry")
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			oneSize = info.Size()
		}
		raw, _ := os.ReadFile(path)
		raw[len(raw)-1] ^= 0xff
		os.WriteFile(path, raw, 0o644)
		if _, ok := s.Get(e.Key); ok {
			t.Fatal("corrupt object served")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.Stats().QuarantineObjects; got != 3 {
		t.Fatalf("unbounded quarantine holds %d, want 3", got)
	}
	// Restart with a byte cap that fits roughly one file: the opening
	// scan must seed the totals from disk and enforce immediately.
	s2, err := Open(Config{Dir: dir, QuarantineObjects: -1, QuarantineBytes: oneSize + oneSize/2})
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.QuarantineObjects != 1 {
		t.Fatalf("after restart with byte cap, quarantine holds %d objects, want 1 (stats %+v)", st.QuarantineObjects, st)
	}
	if st.QuarantineBytes > oneSize+oneSize/2 {
		t.Fatalf("quarantine bytes %d over cap %d", st.QuarantineBytes, oneSize+oneSize/2)
	}
}
