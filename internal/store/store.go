// Package store is the disk tier of the service's two-tier artifact
// cache: a content-addressed object store with one file per content
// key, layered under the in-memory internal/cache LRU so a daemon
// restart keeps the working set warm.
//
// Guarantees:
//
//   - Atomic writes: every object is written to a temp file in the
//     store directory and renamed into place, so a crash mid-write can
//     never leave a half-object under a valid name.
//   - Verified reads: each object file carries a SHA-256 of its
//     payload; a mismatch (truncation, bit rot, manual edit) is
//     detected on read, the file is moved into quarantine/ — never
//     deleted, an operator may want the evidence — and the read
//     reports a miss so the caller recompiles.
//   - Byte-budget GC: when the resident size exceeds the configured
//     budget the least-recently-accessed objects are removed first.
//     Access times survive restarts (Get touches the file mtime), so
//     LRU ordering is continuous across process bounces.
//   - Startup index scan: Open walks the directory once, recording
//     sizes and access times without reading object payloads;
//     verification is deferred to first read.
//   - Peer fetch: with SetPeerFetch installed (cluster deployments), a
//     local miss consults ring peers for the raw object image before
//     giving up. Fetched bytes run through the same verified-read path
//     as disk reads — a corrupt peer image quarantines exactly like
//     disk rot — and good images are promoted to a local object file,
//     so each artifact transfers between shards at most once.
//
// The key is internal/canon's content address of the fully-validated
// compile inputs, so — exactly like the memory tier — a hit is always
// semantically correct to serve.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/cerr"
	"repro/internal/chaos"
)

const (
	// objectExt is the suffix of committed object files.
	objectExt = ".entry"
	// objectsDir, quarantineDir and tmpDir are the store's
	// subdirectories.
	objectsDir    = "objects"
	quarantineDir = "quarantine"
	tmpDir        = "tmp"
	// headerMagic leads every object file; the version digit is bumped
	// when the on-disk format changes (old files then quarantine on
	// read and are recompiled, never misread). Version 2 frames the
	// report and artifacts as raw byte sections behind a one-line JSON
	// manifest, so a verified read costs one SHA-256 pass plus slicing
	// — no base64, no multi-megabyte JSON decode. That keeps the
	// disk-hit latency an order of magnitude under compile cost even
	// for layout-bearing entries.
	headerMagic = "bisramstore2"
)

// Config sizes a store.
type Config struct {
	// Dir is the store root; created if absent.
	Dir string
	// BudgetBytes bounds the resident object bytes; <= 0 means
	// unbounded (no GC).
	BudgetBytes int64
	// QuarantineObjects bounds how many quarantined files are kept
	// (0 = default 32, < 0 = unbounded). Quarantine is forensic
	// evidence, not a cache: beyond the cap the oldest files go.
	QuarantineObjects int
	// QuarantineBytes bounds total quarantined bytes (0 = default
	// 64 MiB, < 0 = unbounded).
	QuarantineBytes int64
	// Chaos, when non-nil, injects scripted disk faults at the
	// store.write and store.read points.
	Chaos *chaos.Injector
}

// Default quarantine caps applied when Config leaves them zero.
const (
	defaultQuarantineObjects = 32
	defaultQuarantineBytes   = 64 << 20
)

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Puts   uint64 `json:"puts"`
	// Evictions counts objects removed by the byte-budget GC.
	Evictions uint64 `json:"evictions"`
	// Corrupt counts objects that failed SHA-256 (or envelope)
	// verification on read and were quarantined.
	Corrupt uint64 `json:"corrupt"`
	// Rejected counts puts refused because a single object exceeded
	// the whole budget.
	Rejected uint64 `json:"rejected"`
	// PeerHits / PeerMisses / PeerCorrupt count ring-peer fetches on
	// local miss: served and promoted, not found anywhere (or fetch
	// failed), and failed verification (quarantined) respectively.
	PeerHits    uint64 `json:"peer_hits"`
	PeerMisses  uint64 `json:"peer_misses"`
	PeerCorrupt uint64 `json:"peer_corrupt"`
	Entries     int    `json:"entries"`
	Bytes       int64  `json:"bytes"`
	BudgetBytes int64  `json:"budget_bytes"`
	// ScannedAtStartup is how many committed objects the opening index
	// scan found — the restart-warmness headline number.
	ScannedAtStartup int `json:"scanned_at_startup"`
	// QuarantineObjects / QuarantineBytes describe the current
	// quarantine directory; QuarantineEvictions counts files dropped
	// by the quarantine cap (oldest first).
	QuarantineObjects   int    `json:"quarantine_objects"`
	QuarantineBytes     int64  `json:"quarantine_bytes"`
	QuarantineEvictions uint64 `json:"quarantine_evictions"`
}

// meta is the in-memory index record for one committed object.
type meta struct {
	size  int64
	atime time.Time
}

// Store is the disk tier. Construct with Open; safe for concurrent
// use.
type Store struct {
	dir     string
	budget  int64
	qMaxObj int
	qMaxB   int64
	chaos   *chaos.Injector

	mu      sync.Mutex
	index   map[string]*meta
	bytes   int64
	scanned int

	peerFetch PeerFetchFunc

	qObjects   int
	qBytes     int64
	qEvictions uint64

	hits, misses, puts, evictions, corrupt, rejected uint64
	peerHits, peerMisses, peerCorrupt                uint64
}

// PeerFetchFunc resolves a local miss against cluster peers: it
// returns the raw object-file image (header + payload, exactly as
// ReadRaw serves it) and whether any peer had it. The store verifies
// the image before trusting it, so implementations need not.
type PeerFetchFunc func(key string) (raw []byte, ok bool)

// SetPeerFetch installs (or, with nil, removes) the cluster peer
// resolver consulted on local miss.
func (s *Store) SetPeerFetch(fn PeerFetchFunc) {
	s.mu.Lock()
	s.peerFetch = fn
	s.mu.Unlock()
}

// manifest is the first payload line of an object file: entry
// metadata plus the byte layout of the raw sections that follow.
// Section order matches the manifest order; sizes partition the
// remaining payload exactly.
type manifest struct {
	Key      string `json:"key"`
	Degraded bool   `json:"degraded,omitempty"`
	// SavedAt is informational (forensics on quarantined files).
	SavedAt  string    `json:"saved_at"`
	Sections []section `json:"sections"`
}

// section names one raw byte range: "report" for the entry's report
// document, "artifact:<name>" for each artifact.
type section struct {
	Name string `json:"name"`
	Size int    `json:"size"`
}

// Open creates the directory layout, scans committed objects into the
// index (sizes and mtimes only — payloads are verified lazily on
// read) and clears any abandoned temp files from a previous crash.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, cerr.New(cerr.CodeInvalidParams, "store: empty directory")
	}
	s := &Store{
		dir:     cfg.Dir,
		budget:  cfg.BudgetBytes,
		qMaxObj: cfg.QuarantineObjects,
		qMaxB:   cfg.QuarantineBytes,
		chaos:   cfg.Chaos,
		index:   map[string]*meta{},
	}
	if s.qMaxObj == 0 {
		s.qMaxObj = defaultQuarantineObjects
	}
	if s.qMaxB == 0 {
		s.qMaxB = defaultQuarantineBytes
	}
	for _, sub := range []string{objectsDir, quarantineDir, tmpDir} {
		if err := os.MkdirAll(filepath.Join(cfg.Dir, sub), 0o755); err != nil {
			return nil, cerr.Wrap(cerr.CodeInternal, err, "store: creating %s", sub)
		}
	}
	// Abandoned temp files are garbage by construction (the rename
	// never happened); sweep them so they cannot accumulate.
	if tmps, err := os.ReadDir(filepath.Join(cfg.Dir, tmpDir)); err == nil {
		for _, e := range tmps {
			os.Remove(filepath.Join(cfg.Dir, tmpDir, e.Name()))
		}
	}
	ents, err := os.ReadDir(filepath.Join(cfg.Dir, objectsDir))
	if err != nil {
		return nil, cerr.Wrap(cerr.CodeInternal, err, "store: scanning objects")
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, objectExt) {
			continue
		}
		key := strings.TrimSuffix(name, objectExt)
		if !validKey(key) {
			continue
		}
		info, ierr := e.Info()
		if ierr != nil {
			continue
		}
		s.index[key] = &meta{size: info.Size(), atime: info.ModTime()}
		s.bytes += info.Size()
	}
	s.scanned = len(s.index)
	// Quarantined files from previous runs count against the cap too:
	// seed the totals from disk, then enforce immediately so a lowered
	// cap takes effect at startup.
	if qents, err := os.ReadDir(filepath.Join(cfg.Dir, quarantineDir)); err == nil {
		for _, e := range qents {
			if e.IsDir() {
				continue
			}
			s.qObjects++
			if info, ierr := e.Info(); ierr == nil {
				s.qBytes += info.Size()
			}
		}
	}
	// A budget smaller than what survived on disk is honoured
	// immediately, oldest first.
	s.mu.Lock()
	s.gcLocked()
	s.gcQuarantineLocked()
	s.mu.Unlock()
	return s, nil
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

// validKey accepts only 64-hex-digit content addresses, keeping path
// construction injection-proof.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) objectPath(key string) string {
	return filepath.Join(s.dir, objectsDir, key+objectExt)
}

// Put persists the entry under its content key: a one-line JSON
// manifest plus raw byte sections behind a header line carrying the
// payload's SHA-256, written to a temp file and renamed into place.
// Oversized entries (larger than the whole budget) are rejected;
// after a successful put the byte-budget GC runs.
func (s *Store) Put(e *cache.Entry) error {
	if !validKey(e.Key) {
		return cerr.New(cerr.CodeInvalidParams, "store: invalid content key %q", e.Key)
	}
	if err := s.chaos.Fail(chaos.PointStoreWrite); err != nil {
		return cerr.Wrap(cerr.CodeInternal, err, "store: writing %s", e.Key)
	}
	payload, err := encodePayload(e)
	if err != nil {
		return cerr.Wrap(cerr.CodeInternal, err, "store: encoding %s", e.Key)
	}
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s\n", headerMagic, hex.EncodeToString(sum[:]))
	size := int64(len(header) + len(payload))

	s.mu.Lock()
	if s.budget > 0 && size > s.budget {
		s.rejected++
		s.mu.Unlock()
		return cerr.New(cerr.CodeInvalidParams,
			"store: object %s (%d bytes) exceeds the whole budget (%d)", e.Key, size, s.budget)
	}
	s.mu.Unlock()

	tmp, err := os.CreateTemp(filepath.Join(s.dir, tmpDir), "put-*")
	if err != nil {
		return cerr.Wrap(cerr.CodeInternal, err, "store: temp file")
	}
	tmpName := tmp.Name()
	_, werr := tmp.WriteString(header)
	if werr == nil {
		_, werr = tmp.Write(payload)
	}
	cerr2 := tmp.Close()
	if werr != nil || cerr2 != nil {
		os.Remove(tmpName)
		if werr == nil {
			werr = cerr2
		}
		return cerr.Wrap(cerr.CodeInternal, werr, "store: writing %s", e.Key)
	}
	if err := os.Rename(tmpName, s.objectPath(e.Key)); err != nil {
		os.Remove(tmpName)
		return cerr.Wrap(cerr.CodeInternal, err, "store: committing %s", e.Key)
	}

	now := time.Now()
	s.mu.Lock()
	if old, ok := s.index[e.Key]; ok {
		s.bytes -= old.size
	}
	s.index[e.Key] = &meta{size: size, atime: now}
	s.bytes += size
	s.puts++
	s.gcLocked()
	s.mu.Unlock()
	return nil
}

// Get reads and verifies the object for key. A verification failure
// quarantines the file and reports a miss. On a hit the object's
// access time is refreshed in the index and on disk (os.Chtimes), so
// LRU ordering survives restarts.
func (s *Store) Get(key string) (*cache.Entry, bool) {
	if !validKey(key) {
		s.mu.Lock()
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	_, known := s.index[key]
	s.mu.Unlock()
	if !known {
		// Last tier before recompiling: ask ring peers for the object.
		if entry, ok := s.fetchFromPeers(key); ok {
			return entry, true
		}
		s.mu.Lock()
		s.misses++
		s.mu.Unlock()
		return nil, false
	}

	if err := s.chaos.Fail(chaos.PointStoreRead); err != nil {
		// Injected unreadable file: report a miss (the caller
		// recompiles) without dropping the index — the object on disk
		// is intact and serves normally on the next read.
		s.mu.Lock()
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	path := s.objectPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		// Index said present but the file is gone (external deletion):
		// treat as a miss and drop the index record.
		s.dropIndex(key)
		s.mu.Lock()
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	// An injected bit-flip lands on the read image, exactly like disk
	// bit rot: verification below must catch it and quarantine the
	// (now genuinely corrupted) file.
	if s.chaos.Corrupt(chaos.PointStoreRead, raw) {
		os.WriteFile(path, raw, 0o644)
	}
	entry, verr := decodeObject(key, raw)
	if verr != nil {
		s.quarantine(key, path)
		return nil, false
	}

	now := time.Now()
	os.Chtimes(path, now, now) // best-effort: LRU continuity across restarts
	s.mu.Lock()
	if m, ok := s.index[key]; ok {
		m.atime = now
	}
	s.hits++
	s.mu.Unlock()
	return entry, true
}

// fetchFromPeers runs the peer tier of a Get: resolve the raw image
// via the installed PeerFetchFunc, verify it with the same decode path
// a disk read uses (quarantining corrupt bytes for forensics), and
// promote a good image to a local object file so the next read is a
// plain disk hit. Reports (nil, false) when no resolver is installed,
// no peer has the object, or verification fails.
func (s *Store) fetchFromPeers(key string) (*cache.Entry, bool) {
	s.mu.Lock()
	fn := s.peerFetch
	s.mu.Unlock()
	if fn == nil {
		return nil, false
	}
	if err := s.chaos.Fail(chaos.PointPeerFetch); err != nil {
		// Injected fetch failure: the shard recompiles, exactly as if no
		// peer had the object.
		s.mu.Lock()
		s.peerMisses++
		s.mu.Unlock()
		return nil, false
	}
	raw, ok := fn(key)
	if !ok {
		s.mu.Lock()
		s.peerMisses++
		s.mu.Unlock()
		return nil, false
	}
	// An injected bit-flip lands on the fetched image, standing in for
	// a peer with rotten disk or a mangling transport: verification
	// below must catch it.
	s.chaos.Corrupt(chaos.PointPeerFetch, raw)
	entry, verr := decodeObject(key, raw)
	if verr != nil {
		// The Get fall-through accounts the overall miss.
		s.quarantineBytes(key, raw)
		s.mu.Lock()
		s.peerCorrupt++
		s.mu.Unlock()
		return nil, false
	}
	s.promote(key, raw)
	s.mu.Lock()
	s.peerHits++
	s.hits++
	s.mu.Unlock()
	return entry, true
}

// promote commits an already-verified raw object image under key via
// the usual tmp+rename path, indexes it and runs GC. Promotion is
// best-effort: a failure only costs a future re-fetch, so errors are
// swallowed.
func (s *Store) promote(key string, raw []byte) {
	size := int64(len(raw))
	s.mu.Lock()
	if s.budget > 0 && size > s.budget {
		s.rejected++
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	tmp, err := os.CreateTemp(filepath.Join(s.dir, tmpDir), "peer-*")
	if err != nil {
		return
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(raw)
	if cerr2 := tmp.Close(); werr == nil {
		werr = cerr2
	}
	if werr != nil || os.Rename(tmpName, s.objectPath(key)) != nil {
		os.Remove(tmpName)
		return
	}
	s.mu.Lock()
	if old, ok := s.index[key]; ok {
		s.bytes -= old.size
	}
	s.index[key] = &meta{size: size, atime: time.Now()}
	s.bytes += size
	s.gcLocked()
	s.mu.Unlock()
}

// ReadRaw returns the verbatim object-file image for key, for serving
// to cluster peers. The bytes are NOT verified here: the fetching side
// runs them through decodeObject before promoting, so a corrupt image
// quarantines on the fetcher exactly like local disk rot. Hit/miss
// counters don't move — peer traffic must not distort this shard's
// cache stats.
func (s *Store) ReadRaw(key string) ([]byte, bool) {
	if !validKey(key) {
		return nil, false
	}
	s.mu.Lock()
	_, known := s.index[key]
	s.mu.Unlock()
	if !known {
		return nil, false
	}
	raw, err := os.ReadFile(s.objectPath(key))
	if err != nil {
		// Index said present but the file is gone: self-heal the index.
		s.dropIndex(key)
		return nil, false
	}
	return raw, true
}

// encodePayload renders the object payload: the JSON manifest line
// followed by the raw sections in manifest order (report first, then
// artifacts sorted by name for deterministic bytes).
func encodePayload(e *cache.Entry) ([]byte, error) {
	names := make([]string, 0, len(e.Artifacts))
	for name := range e.Artifacts {
		names = append(names, name)
	}
	sort.Strings(names)
	m := manifest{
		Key:      e.Key,
		Degraded: e.Degraded,
		SavedAt:  time.Now().UTC().Format(time.RFC3339),
		Sections: []section{{Name: "report", Size: len(e.Report)}},
	}
	total := len(e.Report)
	for _, name := range names {
		if strings.ContainsAny(name, "\n") {
			return nil, fmt.Errorf("artifact name %q contains a newline", name)
		}
		m.Sections = append(m.Sections, section{Name: "artifact:" + name, Size: len(e.Artifacts[name])})
		total += len(e.Artifacts[name])
	}
	line, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, 0, len(line)+1+total)
	payload = append(payload, line...)
	payload = append(payload, '\n')
	payload = append(payload, e.Report...)
	for _, name := range names {
		payload = append(payload, e.Artifacts[name]...)
	}
	return payload, nil
}

// decodeObject verifies the header SHA-256 against the payload and
// unpacks the entry by slicing the raw sections out of the verified
// buffer — no per-byte decoding, so a disk hit costs one hash pass.
// Every failure mode returns a distinct error for the quarantine log.
func decodeObject(key string, raw []byte) (*cache.Entry, error) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("no header line")
	}
	header := string(raw[:nl])
	payload := raw[nl+1:]
	var magic, wantSum string
	if _, err := fmt.Sscanf(header, "%s %s", &magic, &wantSum); err != nil || magic != headerMagic {
		return nil, fmt.Errorf("bad header %q", header)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != wantSum {
		return nil, fmt.Errorf("payload SHA-256 mismatch")
	}
	mnl := bytes.IndexByte(payload, '\n')
	if mnl < 0 {
		return nil, fmt.Errorf("no manifest line")
	}
	var m manifest
	if err := json.Unmarshal(payload[:mnl], &m); err != nil {
		return nil, fmt.Errorf("manifest JSON: %w", err)
	}
	if m.Key != key {
		return nil, fmt.Errorf("object claims key %s", m.Key)
	}
	body := payload[mnl+1:]
	entry := &cache.Entry{Key: m.Key, Degraded: m.Degraded}
	off := 0
	for _, sec := range m.Sections {
		if sec.Size < 0 || off+sec.Size > len(body) {
			return nil, fmt.Errorf("section %q overruns payload (%d+%d > %d)", sec.Name, off, sec.Size, len(body))
		}
		data := body[off : off+sec.Size : off+sec.Size]
		off += sec.Size
		switch {
		case sec.Name == "report":
			entry.Report = data
		case strings.HasPrefix(sec.Name, "artifact:"):
			if entry.Artifacts == nil {
				entry.Artifacts = map[string][]byte{}
			}
			entry.Artifacts[strings.TrimPrefix(sec.Name, "artifact:")] = data
		default:
			// Unknown sections are skipped: a future same-version writer
			// may add informational sections without breaking readers.
		}
	}
	if off != len(body) {
		return nil, fmt.Errorf("trailing %d bytes after sections", len(body)-off)
	}
	if entry.Report == nil {
		return nil, fmt.Errorf("no report section")
	}
	return entry, nil
}

// quarantine moves a corrupt object out of the serving path (into
// quarantine/, timestamped so repeated corruption of the same key
// never collides) and removes it from the index. The quarantine
// directory is bounded (count and bytes, oldest first): it is
// forensic evidence, and a flaky disk must not fill the volume with
// it.
func (s *Store) quarantine(key, path string) {
	dest := filepath.Join(s.dir, quarantineDir,
		fmt.Sprintf("%s.%d%s", key, time.Now().UnixNano(), objectExt))
	var kept int64
	if err := os.Rename(path, dest); err != nil {
		// Rename failed (e.g. the file vanished): remove so the corrupt
		// bytes can never be served.
		os.Remove(path)
	} else if info, ierr := os.Stat(dest); ierr == nil {
		kept = info.Size()
	}
	s.dropIndex(key)
	s.mu.Lock()
	s.corrupt++
	s.misses++
	if kept > 0 {
		s.qObjects++
		s.qBytes += kept
		s.gcQuarantineLocked()
	}
	s.mu.Unlock()
}

// quarantineBytes preserves a corrupt byte image that never had a
// committed file of its own (a peer-fetched object) as forensic
// evidence, under the same caps as quarantine. The caller accounts the
// miss.
func (s *Store) quarantineBytes(key string, raw []byte) {
	dest := filepath.Join(s.dir, quarantineDir,
		fmt.Sprintf("%s.%d%s", key, time.Now().UnixNano(), objectExt))
	var kept int64
	if os.WriteFile(dest, raw, 0o644) == nil {
		kept = int64(len(raw))
	}
	s.mu.Lock()
	s.corrupt++
	if kept > 0 {
		s.qObjects++
		s.qBytes += kept
		s.gcQuarantineLocked()
	}
	s.mu.Unlock()
}

// gcQuarantineLocked removes the oldest quarantined files (by mtime)
// until both the count and byte caps hold. Caller holds s.mu. A
// negative cap disables that bound.
func (s *Store) gcQuarantineLocked() {
	over := func() bool {
		return (s.qMaxObj > 0 && s.qObjects > s.qMaxObj) ||
			(s.qMaxB > 0 && s.qBytes > s.qMaxB)
	}
	if !over() {
		return
	}
	dir := filepath.Join(s.dir, quarantineDir)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	type qf struct {
		name  string
		size  int64
		mtime time.Time
	}
	files := make([]qf, 0, len(ents))
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		info, ierr := e.Info()
		if ierr != nil {
			continue
		}
		files = append(files, qf{e.Name(), info.Size(), info.ModTime()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	// Recompute from the scan: external deletions must not leave the
	// in-memory totals drifting upward forever.
	s.qObjects, s.qBytes = len(files), 0
	for _, f := range files {
		s.qBytes += f.size
	}
	for _, f := range files {
		if !over() {
			break
		}
		if os.Remove(filepath.Join(dir, f.name)) == nil {
			s.qObjects--
			s.qBytes -= f.size
			s.qEvictions++
		}
	}
}

// dropIndex removes key from the index, adjusting the byte total.
func (s *Store) dropIndex(key string) {
	s.mu.Lock()
	if m, ok := s.index[key]; ok {
		s.bytes -= m.size
		delete(s.index, key)
	}
	s.mu.Unlock()
}

// Contains reports residency without touching counters, access times
// or the payload.
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// gcLocked evicts least-recently-accessed objects until the byte
// budget is respected. Caller holds s.mu.
func (s *Store) gcLocked() {
	if s.budget <= 0 {
		return
	}
	for s.bytes > s.budget && len(s.index) > 0 {
		oldestKey := ""
		var oldest time.Time
		for k, m := range s.index {
			if oldestKey == "" || m.atime.Before(oldest) {
				oldestKey, oldest = k, m.atime
			}
		}
		m := s.index[oldestKey]
		delete(s.index, oldestKey)
		s.bytes -= m.size
		s.evictions++
		os.Remove(s.objectPath(oldestKey))
	}
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits: s.hits, Misses: s.misses, Puts: s.puts,
		Evictions: s.evictions, Corrupt: s.corrupt, Rejected: s.rejected,
		PeerHits: s.peerHits, PeerMisses: s.peerMisses, PeerCorrupt: s.peerCorrupt,
		Entries: len(s.index), Bytes: s.bytes, BudgetBytes: s.budget,
		ScannedAtStartup:  s.scanned,
		QuarantineObjects: s.qObjects, QuarantineBytes: s.qBytes,
		QuarantineEvictions: s.qEvictions,
	}
}

// Keys returns resident keys sorted by access time, most recent
// first — observability and test support.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	type ka struct {
		k string
		t time.Time
	}
	out := make([]ka, 0, len(s.index))
	for k, m := range s.index {
		out = append(out, ka{k, m.atime})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].t.After(out[j].t) })
	keys := make([]string, len(out))
	for i, e := range out {
		keys[i] = e.k
	}
	return keys
}

// QuarantinedCount reports how many files sit in quarantine/ on disk
// (not just this process's corrupt counter) — restart-spanning
// observability.
func (s *Store) QuarantinedCount() int {
	ents, err := os.ReadDir(filepath.Join(s.dir, quarantineDir))
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() {
			n++
		}
	}
	return n
}
