package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chaos"
)

// peerPair builds two stores sharing nothing on disk, with dst's peer
// resolver wired to src.ReadRaw — the minimal two-shard cluster.
func peerPair(t *testing.T) (src, dst *Store) {
	t.Helper()
	src = open(t, t.TempDir(), 0)
	dst = open(t, t.TempDir(), 0)
	dst.SetPeerFetch(func(key string) ([]byte, bool) { return src.ReadRaw(key) })
	return src, dst
}

func TestPeerFetchPromotesOnLocalMiss(t *testing.T) {
	src, dst := peerPair(t)
	e := testEntry("shared", 200)
	if err := src.Put(e); err != nil {
		t.Fatal(err)
	}

	got, ok := dst.Get(e.Key)
	if !ok {
		t.Fatal("peer-backed get missed")
	}
	if string(got.Report) != string(e.Report) ||
		string(got.Artifacts["datasheet.txt"]) != string(e.Artifacts["datasheet.txt"]) {
		t.Fatal("entry bytes drifted through the peer fetch")
	}
	st := dst.Stats()
	if st.PeerHits != 1 || st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats after peer hit: %+v", st)
	}
	// Promotion: the object is now local, so the next read never
	// touches the peer.
	dst.SetPeerFetch(func(string) ([]byte, bool) {
		t.Fatal("promoted object re-fetched from peer")
		return nil, false
	})
	if _, ok := dst.Get(e.Key); !ok {
		t.Fatal("promoted object not served locally")
	}
	if !dst.Contains(e.Key) {
		t.Fatal("promotion did not index the object")
	}
}

func TestPeerFetchMissAndNoResolver(t *testing.T) {
	src, dst := peerPair(t)
	if _, ok := dst.Get(testKey("absent")); ok {
		t.Fatal("hit for a key no peer has")
	}
	st := dst.Stats()
	if st.PeerMisses != 1 || st.Misses != 1 {
		t.Fatalf("stats after peer miss: %+v", st)
	}
	// Without a resolver the miss path is unchanged.
	dst.SetPeerFetch(nil)
	if _, ok := dst.Get(testKey("absent")); ok {
		t.Fatal("hit with no resolver")
	}
	if got := dst.Stats().PeerMisses; got != 1 {
		t.Fatalf("nil resolver consulted: peer misses %d", got)
	}
	_ = src
}

// TestPeerFetchCorruptQuarantines: a mangled peer image must fail
// verification, land in quarantine/ as evidence, and report a miss —
// the same contract as local disk rot.
func TestPeerFetchCorruptQuarantines(t *testing.T) {
	src, dst := peerPair(t)
	e := testEntry("rotten", 200)
	if err := src.Put(e); err != nil {
		t.Fatal(err)
	}
	dst.SetPeerFetch(func(key string) ([]byte, bool) {
		raw, ok := src.ReadRaw(key)
		if ok {
			raw[len(raw)/2] ^= 0x01
		}
		return raw, ok
	})
	if _, ok := dst.Get(e.Key); ok {
		t.Fatal("corrupt peer image served")
	}
	st := dst.Stats()
	if st.PeerCorrupt != 1 || st.Corrupt != 1 || st.Misses != 1 {
		t.Fatalf("stats after corrupt fetch: %+v", st)
	}
	if dst.Contains(e.Key) {
		t.Fatal("corrupt image promoted")
	}
	if dst.QuarantinedCount() != 1 {
		t.Fatal("corrupt image not quarantined")
	}
	qents, _ := os.ReadDir(filepath.Join(dst.Dir(), quarantineDir))
	if len(qents) != 1 || !strings.HasPrefix(qents[0].Name(), e.Key+".") {
		t.Fatalf("quarantine contents %v", qents)
	}
}

// TestPeerFetchChaosInjection: the store.peerfetch point fails a fetch
// (error mode) or corrupts the image (corrupt mode) on the fetching
// side, without the peer serving anything wrong.
func TestPeerFetchChaosInjection(t *testing.T) {
	src := open(t, t.TempDir(), 0)
	e := testEntry("chaotic", 200)
	if err := src.Put(e); err != nil {
		t.Fatal(err)
	}

	inj, err := chaos.Parse([]byte(`{"rules":[
		{"point":"store.peerfetch","mode":"error","max":1},
		{"point":"store.peerfetch","mode":"corrupt","max":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := Open(Config{Dir: t.TempDir(), Chaos: inj})
	if err != nil {
		t.Fatal(err)
	}
	dst.SetPeerFetch(func(key string) ([]byte, bool) { return src.ReadRaw(key) })

	// First get: injected fetch error — counted as a peer miss.
	if _, ok := dst.Get(e.Key); ok {
		t.Fatal("injected fetch error still hit")
	}
	if st := dst.Stats(); st.PeerMisses != 1 {
		t.Fatalf("stats after injected error: %+v", st)
	}
	// Second get: injected bit-flip — verification quarantines it.
	if _, ok := dst.Get(e.Key); ok {
		t.Fatal("injected corruption served")
	}
	if st := dst.Stats(); st.PeerCorrupt != 1 || dst.QuarantinedCount() != 1 {
		t.Fatalf("stats after injected corruption: %+v", st)
	}
	// Third get: rules exhausted — clean fetch, promoted.
	if _, ok := dst.Get(e.Key); !ok {
		t.Fatal("clean fetch after chaos rules exhausted missed")
	}
	if st := dst.Stats(); st.PeerHits != 1 {
		t.Fatalf("stats after clean fetch: %+v", st)
	}
}

func TestReadRawServesVerbatimImage(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	e := testEntry("raw", 50)
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	raw, ok := s.ReadRaw(e.Key)
	if !ok {
		t.Fatal("ReadRaw missed a resident object")
	}
	disk, err := os.ReadFile(s.objectPath(e.Key))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(disk) {
		t.Fatal("ReadRaw bytes differ from the on-disk image")
	}
	if _, ok := s.ReadRaw(testKey("absent")); ok {
		t.Fatal("ReadRaw hit for absent key")
	}
	if _, ok := s.ReadRaw("../../etc/passwd"); ok {
		t.Fatal("ReadRaw accepted a path-shaped key")
	}
	// ReadRaw must not move cache counters.
	if st := s.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("ReadRaw moved counters: %+v", st)
	}
}
