// Package sram models the word-oriented, column-multiplexed static RAM
// array that BISRAMGEN generates, including the spare rows, and
// provides the functional fault injector used to evaluate BIST fault
// coverage and BISR repairability.
//
// Geometry follows the paper's column-multiplexed organisation: each
// physical row holds bpc (bits per column) words of bpw (bits per
// word) cells, so a RAM with W words has W/bpc regular rows plus the
// spare rows. Bit i of the word at column-select c sits at physical
// column i*bpc + c (bit interleaving), exactly as a column-muxed array
// wires its I/O subarrays.
package sram

import (
	"math/rand"

	"repro/internal/cerr"
)

// Config describes one RAM instance.
type Config struct {
	Words     int // number of addressable words (power of 2)
	BPW       int // bits per word
	BPC       int // bits per column (column mux ratio, power of 2)
	SpareRows int // number of spare rows (paper supports 4, 8, 16)
}

// Validate checks the configuration invariants.
func (c Config) Validate() error {
	if c.Words <= 0 || c.BPW <= 0 || c.BPC <= 0 {
		return cerr.New(cerr.CodeInvalidParams, "sram: non-positive geometry %+v", c)
	}
	if c.BPC&(c.BPC-1) != 0 {
		return cerr.New(cerr.CodeInvalidParams, "sram: bpc %d must be a power of 2", c.BPC)
	}
	if c.Words%c.BPC != 0 {
		return cerr.New(cerr.CodeInvalidParams, "sram: words %d not divisible by bpc %d", c.Words, c.BPC)
	}
	if c.BPW > 64 {
		return cerr.New(cerr.CodeInvalidParams, "sram: bpw %d exceeds model word limit 64", c.BPW)
	}
	if c.SpareRows < 0 {
		return cerr.New(cerr.CodeInvalidParams, "sram: negative spare rows")
	}
	return nil
}

// Rows returns the number of regular rows.
func (c Config) Rows() int { return c.Words / c.BPC }

// Cols returns the number of physical columns (bitline pairs).
func (c Config) Cols() int { return c.BPW * c.BPC }

// TotalRows returns regular plus spare rows.
func (c Config) TotalRows() int { return c.Rows() + c.SpareRows }

// Bits returns the number of regular (non-spare) cells.
func (c Config) Bits() int { return c.Words * c.BPW }

// CellAddr locates one physical cell.
type CellAddr struct {
	Row, Col int
}

// FaultKind enumerates the functional fault models, following the IFA
// taxonomy the paper's tests target.
type FaultKind int

// Functional fault models.
const (
	SA0  FaultKind = iota // stuck-at-0
	SA1                   // stuck-at-1
	TFU                   // up-transition fault: cell cannot go 0->1
	TFD                   // down-transition fault: cell cannot go 1->0
	SOF                   // stuck-open: access transistor open; read returns the column's previous sensed value
	DRF0                  // data retention: cell leaks to 0 after the retention time
	DRF1                  // data retention: cell leaks to 1 after the retention time
	CFID                  // idempotent coupling: aggressor transition forces victim to a value
	CFIN                  // inversion coupling: aggressor transition inverts victim
	CFST                  // state coupling: victim forced to a value while aggressor holds a state
)

func (k FaultKind) String() string {
	return [...]string{"SA0", "SA1", "TFU", "TFD", "SOF", "DRF0", "DRF1", "CFID", "CFIN", "CFST"}[k]
}

// Fault is one injected defect on a victim cell.
type Fault struct {
	Kind FaultKind
	// Aggressor is the coupled cell for CFID/CFIN/CFST.
	Aggressor CellAddr
	// AggrRise selects the sensitising aggressor transition for
	// CFID/CFIN (true: 0->1) or the sensitising aggressor state for
	// CFST (true: aggressor=1).
	AggrRise bool
	// Forced is the value the victim is forced to (CFID/CFST).
	Forced bool
}

// RetentionTicks is the number of Wait ticks after which a DRF cell
// loses its value. One Wait models the paper's ~100 ms tristated
// retention delay, which is long enough for a leaky cell to decay.
const RetentionTicks = 1

// Array is the behavioural RAM with injected faults. It implements
// the march.DUT interface.
type Array struct {
	cfg   Config
	cells []bool // (row, col) -> value, row-major over TotalRows
	// faults maps victim cell index to its faults (a cell can have
	// several, e.g. from clustered defects).
	faults map[int][]Fault
	// aggr maps aggressor cell index to victims carrying coupling
	// faults that reference it.
	aggr map[int][]int
	// colSense is the last value sensed per physical column (SOF model).
	colSense []bool
	// lastTouch is the Wait-tick at which each faulty DRF cell was last
	// written or read; only tracked for cells with DRF faults.
	lastTouch map[int]int64
	tick      int64

	// afMap models address decoder faults (AFs): a word address whose
	// decoder selects another address's row/column instead.
	afMap map[int]int

	reads, writes int64

	// wcScratch / oldScratch / newScratch are per-word working buffers
	// reused across accesses so the read/write hot path never
	// allocates. Safe because word accesses never nest: coupling
	// cascades walk cell indices directly, not words.
	wcScratch  []int
	oldScratch []bool
	newScratch []bool
}

// New builds a fault-free array. All cells power up to 0 for model
// determinism.
func New(cfg Config) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Array{
		cfg:        cfg,
		cells:      make([]bool, cfg.TotalRows()*cfg.Cols()),
		faults:     map[int][]Fault{},
		aggr:       map[int][]int{},
		colSense:   make([]bool, cfg.Cols()),
		lastTouch:  map[int]int64{},
		wcScratch:  make([]int, cfg.BPW),
		oldScratch: make([]bool, cfg.BPW),
		newScratch: make([]bool, cfg.BPW),
	}, nil
}

// MustNew is New for literal known-good configs in tests ONLY. It is
// one of the documented residual panic sites of the cerr panic policy
// (see package cerr): production paths — the compiler, the CLIs, the
// experiment drivers — must use New and propagate the typed error.
func MustNew(cfg Config) *Array {
	a, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Config returns the array geometry.
func (a *Array) Config() Config { return a.cfg }

// Words returns the number of addressable regular words.
func (a *Array) Words() int { return a.cfg.Words }

func (a *Array) cellIndex(c CellAddr) int { return c.Row*a.cfg.Cols() + c.Col }

// wordCells returns the physical cells of a word address in a given
// row space. Row = addr/bpc (regular) and col-select = addr%bpc. The
// returned slice is the array's reusable scratch buffer, valid until
// the next word access.
func (a *Array) wordCells(row, colSel int) []int {
	cells := a.wcScratch
	for b := 0; b < a.cfg.BPW; b++ {
		col := b*a.cfg.BPC + colSel
		cells[b] = a.cellIndex(CellAddr{row, col})
	}
	return cells
}

// Inject adds a fault at the victim cell. Coupling faults must name an
// aggressor distinct from the victim.
func (a *Array) Inject(victim CellAddr, f Fault) error {
	if victim.Row < 0 || victim.Row >= a.cfg.TotalRows() || victim.Col < 0 || victim.Col >= a.cfg.Cols() {
		return cerr.New(cerr.CodeInvalidParams, "sram: victim %v out of range", victim)
	}
	vi := a.cellIndex(victim)
	switch f.Kind {
	case CFID, CFIN, CFST:
		ai := a.cellIndex(f.Aggressor)
		if ai == vi {
			return cerr.New(cerr.CodeInvalidParams, "sram: coupling fault aggressor == victim %v", victim)
		}
		if f.Aggressor.Row < 0 || f.Aggressor.Row >= a.cfg.TotalRows() ||
			f.Aggressor.Col < 0 || f.Aggressor.Col >= a.cfg.Cols() {
			return cerr.New(cerr.CodeInvalidParams, "sram: aggressor %v out of range", f.Aggressor)
		}
		a.aggr[ai] = append(a.aggr[ai], vi)
	case DRF0, DRF1:
		a.lastTouch[vi] = a.tick
	}
	a.faults[vi] = append(a.faults[vi], f)
	return nil
}

// InjectRow marks every cell of a physical row stuck (alternating
// SA0/SA1), modelling a row defect such as a broken word line.
func (a *Array) InjectRow(row int) {
	for col := 0; col < a.cfg.Cols(); col++ {
		k := SA0
		if col%2 == 1 {
			k = SA1
		}
		_ = a.Inject(CellAddr{row, col}, Fault{Kind: k})
	}
}

// InjectColumn marks every cell of a physical column stuck at v,
// modelling a bitline defect. The paper notes such defects swamp row
// redundancy and are flagged "Repair Unsuccessful".
func (a *Array) InjectColumn(col int, v bool) {
	k := SA0
	if v {
		k = SA1
	}
	for row := 0; row < a.cfg.TotalRows(); row++ {
		_ = a.Inject(CellAddr{row, col}, Fault{Kind: k})
	}
}

// InjectRandom places n random single-cell faults (uniform cells,
// uniform kinds, adjacent-cell aggressors for coupling faults) using
// the supplied source. It returns the victims.
func (a *Array) InjectRandom(n int, rng *rand.Rand) []CellAddr {
	victims := make([]CellAddr, 0, n)
	kinds := []FaultKind{SA0, SA1, TFU, TFD, SOF, DRF0, DRF1, CFID, CFIN, CFST}
	for i := 0; i < n; i++ {
		v := CellAddr{rng.Intn(a.cfg.TotalRows()), rng.Intn(a.cfg.Cols())}
		k := kinds[rng.Intn(len(kinds))]
		f := Fault{Kind: k}
		if k == CFID || k == CFIN || k == CFST {
			// Neighbouring cell in the same column (physically adjacent).
			ar := v.Row + 1
			if ar >= a.cfg.TotalRows() {
				ar = v.Row - 1
			}
			f.Aggressor = CellAddr{ar, v.Col}
			f.AggrRise = rng.Intn(2) == 0
			f.Forced = rng.Intn(2) == 0
		}
		if err := a.Inject(v, f); err == nil {
			victims = append(victims, v)
		}
	}
	return victims
}

// InjectClustered places approximately n stuck-at defects with
// spatial clustering, the defect morphology behind Stapper's
// negative-binomial yield statistics: defects arrive in clusters
// whose centres are uniform but whose members scatter within a small
// neighbourhood. Clustering concentrates damage into fewer rows,
// which is why clustered wafers yield better under row repair than
// uniform ones at the same defect count. clusterSize is the mean
// defects per cluster (1 = uniform), radius the neighbourhood extent
// in cells.
func (a *Array) InjectClustered(n, clusterSize, radius int, rng *rand.Rand) []CellAddr {
	if clusterSize < 1 {
		clusterSize = 1
	}
	if radius < 1 {
		radius = 1
	}
	victims := make([]CellAddr, 0, n)
	placed := 0
	for placed < n {
		cr := rng.Intn(a.cfg.TotalRows())
		cc := rng.Intn(a.cfg.Cols())
		// Cluster membership ~ 1 + Poisson-ish(clusterSize-1) via a
		// simple geometric draw for determinism and simplicity.
		members := 1
		for members < clusterSize*3 && rng.Float64() < float64(clusterSize-1)/float64(clusterSize) {
			members++
		}
		for m := 0; m < members && placed < n; m++ {
			row := cr + rng.Intn(2*radius+1) - radius
			col := cc + rng.Intn(2*radius+1) - radius
			if row < 0 || row >= a.cfg.TotalRows() || col < 0 || col >= a.cfg.Cols() {
				continue
			}
			k := SA0
			if rng.Intn(2) == 1 {
				k = SA1
			}
			if err := a.Inject(CellAddr{row, col}, Fault{Kind: k}); err == nil {
				victims = append(victims, CellAddr{row, col})
				placed++
			}
		}
	}
	return victims
}

// FaultCount returns the number of injected fault records.
func (a *Array) FaultCount() int {
	n := 0
	for _, fs := range a.faults {
		n += len(fs)
	}
	return n
}

// FaultyRows returns the sorted set of physical rows containing at
// least one fault record (victim side).
func (a *Array) FaultyRows() []int {
	seen := map[int]bool{}
	for vi := range a.faults {
		seen[vi/a.cfg.Cols()] = true
	}
	out := make([]int, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sortInts(out)
	return out
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// writeCell stores v honouring stuck-at, transition and stuck-open
// semantics, returning the previous value. Coupling effects are fired
// by the caller after the whole word has been written: all bits of a
// word switch simultaneously in the real array, so an intra-word
// aggressor transition corrupts its victim regardless of bit order.
func (a *Array) writeCell(ci int, v bool) (old bool) {
	old = a.cells[ci]
	eff := v
	for _, f := range a.faults[ci] {
		switch f.Kind {
		case SA0:
			eff = false
		case SA1:
			eff = true
		case TFU:
			if !old && v {
				eff = old // cannot rise
			}
		case TFD:
			if old && !v {
				eff = old // cannot fall
			}
		case SOF:
			eff = old // cell not connected: write lost
		}
	}
	a.cells[ci] = eff
	if drf := a.lastTouch; drf != nil {
		if _, ok := drf[ci]; ok {
			drf[ci] = a.tick
		}
	}
	return old
}

// fireCoupling applies coupling effects of a transition on aggressor
// cell ai.
func (a *Array) fireCoupling(ai int, old, new bool) {
	rose := !old && new
	for _, vi := range a.aggr[ai] {
		for _, f := range a.faults[vi] {
			switch f.Kind {
			case CFID:
				if a.cellIndex(f.Aggressor) == ai && f.AggrRise == rose {
					prev := a.cells[vi]
					a.cells[vi] = f.Forced
					if prev != f.Forced {
						// Victim change can cascade (victim may itself
						// be an aggressor).
						a.fireCoupling(vi, prev, f.Forced)
					}
				}
			case CFIN:
				if a.cellIndex(f.Aggressor) == ai && f.AggrRise == rose {
					prev := a.cells[vi]
					a.cells[vi] = !prev
					a.fireCoupling(vi, prev, !prev)
				}
			}
		}
	}
}

// readCell senses a cell honouring stuck-at, stuck-open, retention and
// state-coupling semantics. col is the physical column for the SOF
// sense-latch model.
func (a *Array) readCell(ci, col int) bool {
	v := a.cells[ci]
	for _, f := range a.faults[ci] {
		switch f.Kind {
		case SA0:
			v = false
		case SA1:
			v = true
		case SOF:
			v = a.colSense[col] // sense amp keeps previous value
		case DRF0:
			if a.tick-a.lastTouch[ci] >= RetentionTicks {
				a.cells[ci] = false
				v = false
			}
		case DRF1:
			if a.tick-a.lastTouch[ci] >= RetentionTicks {
				a.cells[ci] = true
				v = true
			}
		case CFST:
			ai := a.cellIndex(f.Aggressor)
			if a.cells[ai] == f.AggrRise {
				v = f.Forced
			}
		}
	}
	a.colSense[col] = v
	if _, ok := a.lastTouch[ci]; ok {
		a.lastTouch[ci] = a.tick
	}
	return v
}

// InjectAddressFault makes accesses to addr decode to alias instead —
// the classic AF where the decoder activates a wrong word line. Both
// addresses must be regular word addresses.
func (a *Array) InjectAddressFault(addr, alias int) error {
	if addr < 0 || addr >= a.cfg.Words || alias < 0 || alias >= a.cfg.Words {
		return cerr.New(cerr.CodeInvalidParams, "sram: address fault %d->%d out of range", addr, alias)
	}
	if addr == alias {
		return cerr.New(cerr.CodeInvalidParams, "sram: address fault must alias a different address")
	}
	if a.afMap == nil {
		a.afMap = map[int]int{}
	}
	a.afMap[addr] = alias
	return nil
}

// addrRowCol splits a word address into (row, column-select),
// honouring injected address decoder faults.
func (a *Array) addrRowCol(addr int) (int, int) {
	if a.afMap != nil {
		if alias, ok := a.afMap[addr]; ok {
			addr = alias
		}
	}
	return addr / a.cfg.BPC, addr % a.cfg.BPC
}

// Read returns the word at a regular address.
func (a *Array) Read(addr int) uint64 {
	row, cs := a.addrRowCol(addr)
	return a.readRowWord(row, cs)
}

// Write stores a word at a regular address.
func (a *Array) Write(addr int, data uint64) {
	row, cs := a.addrRowCol(addr)
	a.writeRowWord(row, cs, data)
}

// ReadSpare reads the word at column-select cs of spare row s
// (0-based).
func (a *Array) ReadSpare(s, cs int) uint64 {
	return a.readRowWord(a.cfg.Rows()+s, cs)
}

// WriteSpare writes the word at column-select cs of spare row s.
func (a *Array) WriteSpare(s, cs int, data uint64) {
	a.writeRowWord(a.cfg.Rows()+s, cs, data)
}

func (a *Array) readRowWord(row, cs int) uint64 {
	a.reads++
	var w uint64
	for b, ci := range a.wordCells(row, cs) {
		if a.readCell(ci, b*a.cfg.BPC+cs) {
			w |= 1 << uint(b)
		}
	}
	return w
}

func (a *Array) writeRowWord(row, cs int, data uint64) {
	a.writes++
	cells := a.wordCells(row, cs)
	// Phase 1: all bits switch together.
	olds := a.oldScratch
	news := a.newScratch
	for b, ci := range cells {
		olds[b] = a.writeCell(ci, data>>uint(b)&1 == 1)
		news[b] = a.cells[ci]
	}
	// Phase 2: aggressor transitions couple into their victims —
	// including victims inside the same word, whose freshly written
	// values they corrupt. The transition set is fixed by the write
	// itself (phase 1), not by cascaded coupling effects.
	for b, ci := range cells {
		if news[b] != olds[b] {
			a.fireCoupling(ci, olds[b], news[b])
		}
	}
}

// Wait advances the retention clock by one tick (the BIST "Delay"
// phase during which the embedded processor tristates the interface).
func (a *Array) Wait() { a.tick++ }

// Stats returns cumulative word read and write counts.
func (a *Array) Stats() (reads, writes int64) { return a.reads, a.writes }
