package sram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func cfg4() Config {
	return Config{Words: 64, BPW: 4, BPC: 4, SpareRows: 2}
}

func TestConfigValidate(t *testing.T) {
	good := cfg4()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Words: 0, BPW: 4, BPC: 4},
		{Words: 64, BPW: 0, BPC: 4},
		{Words: 64, BPW: 4, BPC: 3},  // bpc not power of 2
		{Words: 66, BPW: 4, BPC: 4},  // words % bpc != 0
		{Words: 64, BPW: 65, BPC: 4}, // > 64-bit words
		{Words: 64, BPW: 4, BPC: 4, SpareRows: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error for %+v", i, c)
		}
	}
	if good.Rows() != 16 || good.Cols() != 16 || good.TotalRows() != 18 || good.Bits() != 256 {
		t.Fatalf("geometry arithmetic wrong: %d %d %d %d", good.Rows(), good.Cols(), good.TotalRows(), good.Bits())
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	a := MustNew(cfg4())
	for addr := 0; addr < a.Words(); addr++ {
		a.Write(addr, uint64(addr)&0xF)
	}
	for addr := 0; addr < a.Words(); addr++ {
		if got := a.Read(addr); got != uint64(addr)&0xF {
			t.Fatalf("addr %d: got %x", addr, got)
		}
	}
	r, w := a.Stats()
	if r != 64 || w != 64 {
		t.Fatalf("stats %d %d", r, w)
	}
}

func TestSpareRowAccess(t *testing.T) {
	a := MustNew(cfg4())
	a.WriteSpare(1, 2, 0xA)
	if got := a.ReadSpare(1, 2); got != 0xA {
		t.Fatalf("spare readback %x", got)
	}
	// Spare and regular space are disjoint.
	for addr := 0; addr < a.Words(); addr++ {
		if got := a.Read(addr); got != 0 {
			t.Fatalf("regular addr %d contaminated: %x", addr, got)
		}
	}
}

func TestStuckAtFaults(t *testing.T) {
	a := MustNew(cfg4())
	// Word addr 5 -> row 1, colsel 1; bit 2 -> col 2*4+1 = 9.
	if err := a.Inject(CellAddr{1, 9}, Fault{Kind: SA1}); err != nil {
		t.Fatal(err)
	}
	a.Write(5, 0)
	if got := a.Read(5); got != 0b0100 {
		t.Fatalf("SA1 read %04b, want 0100", got)
	}
	if err := a.Inject(CellAddr{1, 5}, Fault{Kind: SA0}); err != nil { // bit 1
		t.Fatal(err)
	}
	a.Write(5, 0xF)
	if got := a.Read(5); got != 0b1101 {
		t.Fatalf("SA0+SA1 read %04b, want 1101", got)
	}
}

func TestTransitionFaults(t *testing.T) {
	a := MustNew(cfg4())
	// TFU on bit 0 of addr 0 (row 0, col 0): cannot 0->1.
	if err := a.Inject(CellAddr{0, 0}, Fault{Kind: TFU}); err != nil {
		t.Fatal(err)
	}
	a.Write(0, 0x1)
	if got := a.Read(0); got&1 != 0 {
		t.Fatalf("TFU cell rose: %x", got)
	}
	// But 1->... can't even get to 1. Now TFD on another cell.
	if err := a.Inject(CellAddr{0, 4}, Fault{Kind: TFD}); err != nil { // bit 1 of addr 0
		t.Fatal(err)
	}
	a.Write(0, 0x2) // set bit 1 (0->1 allowed for TFD)
	if got := a.Read(0); got&2 == 0 {
		t.Fatal("TFD cell failed to rise")
	}
	a.Write(0, 0x0) // 1->0 blocked
	if got := a.Read(0); got&2 == 0 {
		t.Fatal("TFD cell fell")
	}
}

func TestStuckOpenSenseModel(t *testing.T) {
	a := MustNew(cfg4())
	// SOF on bit 0 of addr 0 (col 0). Reads return previous sensed
	// value on that column.
	if err := a.Inject(CellAddr{0, 0}, Fault{Kind: SOF}); err != nil {
		t.Fatal(err)
	}
	// Prime column 0's sense latch to 1 by reading addr 4 (row 1, cs 0)
	// whose bit 0 is also column 0.
	a.Write(4, 0x1)
	if a.Read(4)&1 != 1 {
		t.Fatal("prime read failed")
	}
	a.Write(0, 0x0)
	if got := a.Read(0); got&1 != 1 {
		t.Fatalf("SOF cell should echo sense latch 1, got %x", got)
	}
	// Now sense a 0 on the column, then the SOF cell reads 0.
	a.Write(4, 0x0)
	a.Read(4)
	if got := a.Read(0); got&1 != 0 {
		t.Fatalf("SOF cell should echo sense latch 0, got %x", got)
	}
	// Writes to a SOF cell are lost.
	a.Write(0, 0x1)
	a.Write(4, 0x0)
	a.Read(4)
	if got := a.Read(0); got&1 != 0 {
		t.Fatal("write to SOF cell should be lost")
	}
}

func TestDataRetentionFault(t *testing.T) {
	a := MustNew(cfg4())
	if err := a.Inject(CellAddr{0, 0}, Fault{Kind: DRF0}); err != nil {
		t.Fatal(err)
	}
	a.Write(0, 0x1)
	if got := a.Read(0); got&1 != 1 {
		t.Fatal("DRF cell should hold before delay")
	}
	// Touching the cell (read) resets the retention clock, so repeated
	// accesses without a delay keep the value alive.
	if got := a.Read(0); got&1 != 1 {
		t.Fatal("DRF cell should hold across back-to-back reads")
	}
	a.Wait()
	if got := a.Read(0); got&1 != 0 {
		t.Fatal("DRF0 cell should decay to 0 after the retention delay")
	}
	// DRF1 decays upward.
	if err := a.Inject(CellAddr{0, 4}, Fault{Kind: DRF1}); err != nil {
		t.Fatal(err)
	}
	a.Write(0, 0x0)
	a.Wait()
	if got := a.Read(0); got&2 == 0 {
		t.Fatal("DRF1 cell should decay to 1")
	}
}

func TestCouplingIdempotent(t *testing.T) {
	a := MustNew(cfg4())
	victim := CellAddr{0, 0}    // bit 0 of addr 0
	aggressor := CellAddr{1, 0} // bit 0 of addr 4
	if err := a.Inject(victim, Fault{Kind: CFID, Aggressor: aggressor, AggrRise: true, Forced: true}); err != nil {
		t.Fatal(err)
	}
	a.Write(0, 0x0)
	a.Write(4, 0x0)
	a.Write(4, 0x1) // aggressor rises -> victim forced to 1
	if got := a.Read(0); got&1 != 1 {
		t.Fatalf("CFID should force victim to 1, got %x", got)
	}
	// Falling aggressor does nothing.
	a.Write(0, 0x0)
	a.Write(4, 0x0)
	if got := a.Read(0); got&1 != 0 {
		t.Fatal("CFID should only fire on rise")
	}
}

func TestCouplingInversionAndState(t *testing.T) {
	a := MustNew(cfg4())
	victim := CellAddr{0, 0}
	aggr := CellAddr{1, 0}
	if err := a.Inject(victim, Fault{Kind: CFIN, Aggressor: aggr, AggrRise: false}); err != nil {
		t.Fatal(err)
	}
	a.Write(0, 0x1)
	a.Write(4, 0x1)
	a.Write(4, 0x0) // falling edge inverts victim
	if got := a.Read(0); got&1 != 0 {
		t.Fatal("CFIN should invert victim on aggressor fall")
	}

	b := MustNew(cfg4())
	if err := b.Inject(victim, Fault{Kind: CFST, Aggressor: aggr, AggrRise: true, Forced: false}); err != nil {
		t.Fatal(err)
	}
	b.Write(0, 0x1)
	b.Write(4, 0x1) // aggressor state 1 forces victim read as 0
	if got := b.Read(0); got&1 != 0 {
		t.Fatal("CFST should force victim while aggressor=1")
	}
	b.Write(4, 0x0)
	if got := b.Read(0); got&1 != 1 {
		t.Fatal("CFST should release when aggressor=0")
	}
}

func TestInjectValidation(t *testing.T) {
	a := MustNew(cfg4())
	if err := a.Inject(CellAddr{99, 0}, Fault{Kind: SA0}); err == nil {
		t.Fatal("row out of range accepted")
	}
	if err := a.Inject(CellAddr{0, 99}, Fault{Kind: SA0}); err == nil {
		t.Fatal("col out of range accepted")
	}
	if err := a.Inject(CellAddr{0, 0}, Fault{Kind: CFID, Aggressor: CellAddr{0, 0}}); err == nil {
		t.Fatal("self-coupling accepted")
	}
	if err := a.Inject(CellAddr{0, 0}, Fault{Kind: CFID, Aggressor: CellAddr{50, 0}}); err == nil {
		t.Fatal("aggressor out of range accepted")
	}
}

func TestInjectRowColumnHelpers(t *testing.T) {
	a := MustNew(cfg4())
	a.InjectRow(3)
	rows := a.FaultyRows()
	if len(rows) != 1 || rows[0] != 3 {
		t.Fatalf("faulty rows %v", rows)
	}
	if a.FaultCount() != a.Config().Cols() {
		t.Fatalf("row fault count %d", a.FaultCount())
	}
	b := MustNew(cfg4())
	b.InjectColumn(0, true)
	if got := len(b.FaultyRows()); got != b.Config().TotalRows() {
		t.Fatalf("column fault should hit every row, got %d", got)
	}
	// Column stuck at 1: every word on column-select 0 reads bit0=1.
	b.Write(0, 0)
	if b.Read(0)&1 != 1 {
		t.Fatal("column SA1 not visible")
	}
}

func TestInjectRandomReproducible(t *testing.T) {
	a := MustNew(cfg4())
	v1 := a.InjectRandom(20, rand.New(rand.NewSource(7)))
	b := MustNew(cfg4())
	v2 := b.InjectRandom(20, rand.New(rand.NewSource(7)))
	if len(v1) != len(v2) {
		t.Fatalf("lengths differ: %d %d", len(v1), len(v2))
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("victim %d differs: %v %v", i, v1[i], v2[i])
		}
	}
	if a.FaultCount() == 0 {
		t.Fatal("no faults injected")
	}
}

func TestInjectClustered(t *testing.T) {
	cfg := Config{Words: 256, BPW: 8, BPC: 8, SpareRows: 4}
	a := MustNew(cfg)
	victims := a.InjectClustered(20, 4, 1, rand.New(rand.NewSource(9)))
	if len(victims) != 20 {
		t.Fatalf("placed %d victims", len(victims))
	}
	// Clustering concentrates: the distinct-row count must be well
	// below 20 (uniform placement would almost surely spread wider).
	rows := map[int]bool{}
	for _, v := range victims {
		rows[v.Row] = true
	}
	if len(rows) >= 18 {
		t.Fatalf("clustered injection spread over %d rows", len(rows))
	}
	// Degenerate parameters clamp.
	b := MustNew(cfg)
	if got := b.InjectClustered(5, 0, 0, rand.New(rand.NewSource(1))); len(got) != 5 {
		t.Fatalf("clamped injection placed %d", len(got))
	}
}

// Property: a fault-free array is a perfect memory under random
// write/read sequences.
func TestQuickFaultFreeMemory(t *testing.T) {
	a := MustNew(Config{Words: 256, BPW: 8, BPC: 8, SpareRows: 4})
	ref := make(map[int]uint64)
	f := func(addr uint16, data uint8, write bool) bool {
		ad := int(addr) % a.Words()
		if write {
			a.Write(ad, uint64(data))
			ref[ad] = uint64(data)
			return true
		}
		want := ref[ad]
		return a.Read(ad) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: bit interleaving — two distinct word addresses never share
// a physical cell.
func TestQuickAddressDisjointness(t *testing.T) {
	a := MustNew(Config{Words: 128, BPW: 8, BPC: 4, SpareRows: 0})
	f := func(x, y uint16) bool {
		ax, ay := int(x)%128, int(y)%128
		if ax == ay {
			return true
		}
		rx, cx := ax/4, ax%4
		ry, cy := ay/4, ay%4
		sx := map[int]bool{}
		for _, c := range a.wordCells(rx, cx) {
			sx[c] = true
		}
		for _, c := range a.wordCells(ry, cy) {
			if sx[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFaultKindStrings(t *testing.T) {
	if SA0.String() != "SA0" || CFST.String() != "CFST" {
		t.Fatal("fault kind strings wrong")
	}
}
