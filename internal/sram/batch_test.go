package sram_test

import (
	"math/rand"
	"testing"

	"repro/internal/march"
	"repro/internal/sram"
)

// siteFor builds the fault record for one (kind, victim) position,
// giving coupling kinds a same-column neighbour aggressor.
func siteFor(cfg sram.Config, kind sram.FaultKind, row, col int) (sram.CellAddr, sram.Fault) {
	f := sram.Fault{Kind: kind}
	switch kind {
	case sram.CFID, sram.CFIN, sram.CFST:
		ar := row + 1
		if ar >= cfg.TotalRows() {
			ar = row - 1
		}
		f.Aggressor = sram.CellAddr{Row: ar, Col: col}
		f.AggrRise = (row+col)%2 == 0
		f.Forced = col%2 == 0
	}
	return sram.CellAddr{Row: row, Col: col}, f
}

var allKinds = []sram.FaultKind{
	sram.SA0, sram.SA1, sram.TFU, sram.TFD, sram.SOF,
	sram.DRF0, sram.DRF1, sram.CFID, sram.CFIN, sram.CFST,
}

// TestBatchDifferential pins the bit-parallel engine to the scalar
// one: over every FaultKind x march test x background set, a fault
// evaluated in a packed lane must reach exactly the verdict of the
// same fault injected into its own scalar Array.
func TestBatchDifferential(t *testing.T) {
	cfg := sram.Config{Words: 64, BPW: 8, BPC: 4, SpareRows: 0}
	bgSets := map[string][]uint64{
		"johnson": march.JohnsonBackgrounds(cfg.BPW),
		"single":  march.SingleBackground(),
	}
	for _, test := range march.AllTests() {
		for bgName, bgs := range bgSets {
			for _, kind := range allKinds {
				// Every 2nd row / 3rd column: the coverage experiments'
				// site sampling, dense enough to hit every victim bit
				// position and column-select.
				type site struct {
					victim sram.CellAddr
					fault  sram.Fault
				}
				var sites []site
				for row := 0; row < cfg.Rows(); row += 2 {
					for col := 0; col < cfg.Cols(); col += 3 {
						v, f := siteFor(cfg, kind, row, col)
						sites = append(sites, site{v, f})
					}
				}
				for start := 0; start < len(sites); start += sram.BatchLanes {
					end := start + sram.BatchLanes
					if end > len(sites) {
						end = len(sites)
					}
					b, err := sram.NewBatch(cfg)
					if err != nil {
						t.Fatal(err)
					}
					for lane, s := range sites[start:end] {
						if err := b.Inject(lane, s.victim, s.fault); err != nil {
							t.Fatalf("batch inject %v: %v", s.victim, err)
						}
					}
					det := march.RunBatch(b, test, bgs, cfg.BPW)
					for lane, s := range sites[start:end] {
						a := sram.MustNew(cfg)
						if err := a.Inject(s.victim, s.fault); err != nil {
							t.Fatalf("scalar inject %v: %v", s.victim, err)
						}
						scalar := !march.Run(a, test, bgs, cfg.BPW).Pass()
						batch := det&(1<<uint(lane)) != 0
						if scalar != batch {
							t.Errorf("%s/%s/%s victim %v: scalar detected=%v batch detected=%v",
								test.Name, bgName, kind, s.victim, scalar, batch)
						}
					}
				}
			}
		}
	}
}

// TestBatchFaultFreeLanes verifies unused lanes behave as fault-free
// machines: no miscompares, and the active-lane mask reports exactly
// the injected lanes.
func TestBatchFaultFreeLanes(t *testing.T) {
	cfg := sram.Config{Words: 32, BPW: 4, BPC: 4, SpareRows: 1}
	b, err := sram.NewBatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Inject(3, sram.CellAddr{Row: 1, Col: 2}, sram.Fault{Kind: sram.SA1}); err != nil {
		t.Fatal(err)
	}
	if b.UsedLanes() != 1<<3 {
		t.Fatalf("UsedLanes = %x, want %x", b.UsedLanes(), 1<<3)
	}
	det := march.RunBatch(b, march.IFA9(), march.JohnsonBackgrounds(cfg.BPW), cfg.BPW)
	if det != 1<<3 {
		t.Fatalf("detected mask = %x, want only lane 3 (%x)", det, 1<<3)
	}
}

// TestBatchInjectValidation pins the packed injector's edge cases:
// duplicate lane, out-of-range lane, out-of-range victim (including a
// row past the spare space), and a self-coupled aggressor.
func TestBatchInjectValidation(t *testing.T) {
	cfg := sram.Config{Words: 64, BPW: 4, BPC: 4, SpareRows: 2}
	b, err := sram.NewBatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ok := sram.CellAddr{Row: 0, Col: 0}
	if err := b.Inject(0, ok, sram.Fault{Kind: sram.SA0}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		lane   int
		victim sram.CellAddr
		fault  sram.Fault
	}{
		{"duplicate lane", 0, sram.CellAddr{Row: 1, Col: 1}, sram.Fault{Kind: sram.SA1}},
		{"negative lane", -1, ok, sram.Fault{Kind: sram.SA0}},
		{"lane too high", sram.BatchLanes, ok, sram.Fault{Kind: sram.SA0}},
		{"victim row past spares", 1, sram.CellAddr{Row: cfg.TotalRows(), Col: 0}, sram.Fault{Kind: sram.SA0}},
		{"victim col out of range", 1, sram.CellAddr{Row: 0, Col: cfg.Cols()}, sram.Fault{Kind: sram.SA0}},
		{"aggressor == victim", 1, sram.CellAddr{Row: 2, Col: 2},
			sram.Fault{Kind: sram.CFID, Aggressor: sram.CellAddr{Row: 2, Col: 2}}},
		{"aggressor out of range", 1, sram.CellAddr{Row: 2, Col: 2},
			sram.Fault{Kind: sram.CFIN, Aggressor: sram.CellAddr{Row: -1, Col: 2}}},
	}
	for _, tc := range cases {
		if err := b.Inject(tc.lane, tc.victim, tc.fault); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	// The failed injections must not have claimed lanes.
	if b.UsedLanes() != 1 {
		t.Fatalf("UsedLanes = %x after rejected injections, want 1", b.UsedLanes())
	}
}

// TestScalarInjectEdgeCases pins Array.Inject behaviours the batch
// engine's validation mirrors: a duplicate victim stacks fault records
// (both apply, insertion order), and spare-space rows are valid victims
// while rows past the spare space are not.
func TestScalarInjectEdgeCases(t *testing.T) {
	cfg := sram.Config{Words: 64, BPW: 4, BPC: 4, SpareRows: 2}
	a := sram.MustNew(cfg)
	v := sram.CellAddr{Row: 0, Col: 0}
	// Duplicate victim: SA1 injected after SA0 wins (insertion order).
	if err := a.Inject(v, sram.Fault{Kind: sram.SA0}); err != nil {
		t.Fatal(err)
	}
	if err := a.Inject(v, sram.Fault{Kind: sram.SA1}); err != nil {
		t.Fatal(err)
	}
	if a.FaultCount() != 2 {
		t.Fatalf("FaultCount = %d, want 2 (duplicate victim stacks)", a.FaultCount())
	}
	a.Write(0, 0)
	if got := a.Read(0) & 1; got != 1 {
		t.Fatalf("duplicate victim: last-injected SA1 must win, read bit = %d", got)
	}
	// Spare rows are valid victims; past the spare space is not.
	spare := sram.CellAddr{Row: cfg.Rows() + cfg.SpareRows - 1, Col: 0}
	if err := a.Inject(spare, sram.Fault{Kind: sram.SA0}); err != nil {
		t.Fatalf("last spare row must be injectable: %v", err)
	}
	beyond := sram.CellAddr{Row: cfg.TotalRows(), Col: 0}
	if err := a.Inject(beyond, sram.Fault{Kind: sram.SA0}); err == nil {
		t.Fatal("row past the spare space must be rejected")
	}
}

// TestBatchRandomPatterns drives scalar and batch machines through an
// identical random access sequence (not a march test) and requires
// identical observable reads, catching semantics drift march patterns
// might not sensitise.
func TestBatchRandomPatterns(t *testing.T) {
	cfg := sram.Config{Words: 32, BPW: 8, BPC: 4, SpareRows: 0}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		kind := allKinds[rng.Intn(len(allKinds))]
		v, f := siteFor(cfg, kind, rng.Intn(cfg.Rows()), rng.Intn(cfg.Cols()))
		a := sram.MustNew(cfg)
		if err := a.Inject(v, f); err != nil {
			t.Fatal(err)
		}
		b, err := sram.NewBatch(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Inject(7, v, f); err != nil {
			t.Fatal(err)
		}
		out := make([]uint64, cfg.BPW)
		for op := 0; op < 400; op++ {
			addr := rng.Intn(cfg.Words)
			switch rng.Intn(4) {
			case 0: // write random data
				data := rng.Uint64() & (1<<uint(cfg.BPW) - 1)
				a.Write(addr, data)
				b.Write(addr, data)
			case 1, 2: // read and compare
				want := a.Read(addr)
				b.ReadBits(addr, out)
				var got uint64
				for bit := 0; bit < cfg.BPW; bit++ {
					if out[bit]&(1<<7) != 0 {
						got |= 1 << uint(bit)
					}
				}
				if got != want {
					t.Fatalf("trial %d (%s at %v) op %d addr %d: scalar %x batch %x",
						trial, kind, v, op, addr, want, got)
				}
			case 3: // retention wait
				a.Wait()
				b.Wait()
			}
		}
	}
}

// FuzzBatchEvaluator cross-checks the packed single-fault evaluator
// against the scalar model on fuzzer-chosen fault records and march
// tests: any verdict divergence is a bug in one of the engines.
func FuzzBatchEvaluator(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(uint8(4), uint8(3), uint8(11), uint8(5), uint8(2), uint8(3), uint8(1))
	f.Add(uint8(7), uint8(15), uint8(31), uint8(14), uint8(30), uint8(6), uint8(0))
	f.Add(uint8(9), uint8(2), uint8(9), uint8(3), uint8(9), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, kindB, rowB, colB, aRowB, aColB, testB, flags uint8) {
		cfg := sram.Config{Words: 64, BPW: 8, BPC: 4, SpareRows: 0}
		kind := allKinds[int(kindB)%len(allKinds)]
		fault := sram.Fault{
			Kind:     kind,
			AggrRise: flags&1 != 0,
			Forced:   flags&2 != 0,
		}
		victim := sram.CellAddr{Row: int(rowB) % cfg.Rows(), Col: int(colB) % cfg.Cols()}
		switch kind {
		case sram.CFID, sram.CFIN, sram.CFST:
			fault.Aggressor = sram.CellAddr{Row: int(aRowB) % cfg.Rows(), Col: int(aColB) % cfg.Cols()}
		}
		tests := march.AllTests()
		test := tests[int(testB)%len(tests)]
		bgs := march.JohnsonBackgrounds(cfg.BPW)
		if flags&4 != 0 {
			bgs = march.SingleBackground()
		}

		a := sram.MustNew(cfg)
		errScalar := a.Inject(victim, fault)
		b, err := sram.NewBatch(cfg)
		if err != nil {
			t.Fatal(err)
		}
		lane := int(flags>>3) % sram.BatchLanes
		errBatch := b.Inject(lane, victim, fault)
		if (errScalar == nil) != (errBatch == nil) {
			t.Fatalf("inject disagreement: scalar %v, batch %v", errScalar, errBatch)
		}
		if errScalar != nil {
			return
		}
		scalar := !march.Run(a, test, bgs, cfg.BPW).Pass()
		batch := march.RunBatch(b, test, bgs, cfg.BPW)&(1<<uint(lane)) != 0
		if scalar != batch {
			t.Fatalf("%s/%s victim %v fault %+v: scalar detected=%v batch detected=%v",
				test.Name, kind, victim, fault, scalar, batch)
		}
	})
}
