// Bit-parallel fault simulation: BatchArray packs up to 64 independent
// single-fault machines into the bits of a uint64, so one march pass
// evaluates 64 injected faults at once — the classic parallel-fault
// technique from the functional-BIST literature. Lane L of every
// packed word is an independent copy of the RAM carrying at most one
// injected fault; lanes without a fault behave as a fault-free
// reference and never miscompare.
//
// The engine reproduces Array's fault semantics exactly (the
// differential test in batch_test.go pins scalar and batch to
// identical verdicts over every FaultKind × test × background set),
// with one documented restriction: a lane holds at most one fault, so
// coupling cascades — a victim that is itself another fault's
// aggressor — cannot arise, and address decoder faults (which remap
// whole accesses rather than cell values) are out of scope.
package sram

import (
	"repro/internal/cerr"
	"repro/internal/chaos"
)

// BatchLanes is the number of independent fault machines one
// BatchArray evaluates per march pass: the width of the packing word.
const BatchLanes = 64

// batchChaos is the injector consulted at the sim.batch checkpoint.
// Nil (the default) is a zero-cost no-op; the chaos drills install a
// scripted injector via SetBatchChaos.
var batchChaos *chaos.Injector

// SetBatchChaos installs the fault injector the batch engine consults
// when a run starts. Not safe for concurrent use with running batches;
// call during setup.
func SetBatchChaos(in *chaos.Injector) { batchChaos = in }

// batchFault is one lane's injected defect in packed form.
type batchFault struct {
	lane int       // bit position of this fault's machine
	vi   int       // victim cell index
	kind FaultKind // fault model
	ai   int       // aggressor cell index (coupling kinds)
	rise bool      // sensitising transition/state (coupling kinds)
	forc bool      // forced victim value (CFID/CFST)
	// lastTouch is the Wait-tick at which the victim was last accessed
	// (DRF kinds). The march sequence is lane-invariant, so one tick per
	// fault matches the scalar model's per-cell tracking exactly.
	lastTouch int64
}

// BatchArray is the bit-parallel counterpart of Array: cells[ci] holds
// lane L's value of cell ci in bit L. It implements march.BatchDUT.
type BatchArray struct {
	cfg   Config
	cells []uint64 // (row, col) -> 64 lane values, row-major
	// colSense is the last sensed value per physical column, per lane
	// (SOF sense-latch model).
	colSense []uint64
	faults   []batchFault
	// faultsAt / aggrAt index faults by victim / aggressor cell, in
	// injection order (the scalar model applies a cell's faults in
	// insertion order; with one fault per lane the order only matters
	// for determinism, which slice append preserves).
	faultsAt [][]int32
	aggrAt   [][]int32
	used     uint64 // lanes carrying a fault
	tick     int64

	// scratch / oldScratch are per-bit transition and old-value masks
	// reused across writes so the hot path never allocates.
	scratch    []uint64
	oldScratch []uint64
}

// NewBatch builds a fault-free 64-lane batch array. The sim.batch
// chaos checkpoint fires here so scripted drills can fail or delay
// batch-kernel construction deterministically.
func NewBatch(cfg Config) (*BatchArray, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := batchChaos.Point(chaos.PointSimBatch); err != nil {
		return nil, err
	}
	n := cfg.TotalRows() * cfg.Cols()
	return &BatchArray{
		cfg:        cfg,
		cells:      make([]uint64, n),
		colSense:   make([]uint64, cfg.Cols()),
		faultsAt:   make([][]int32, n),
		aggrAt:     make([][]int32, n),
		scratch:    make([]uint64, cfg.BPW),
		oldScratch: make([]uint64, cfg.BPW),
	}, nil
}

// Config returns the array geometry.
func (b *BatchArray) Config() Config { return b.cfg }

// Words returns the number of addressable regular words.
func (b *BatchArray) Words() int { return b.cfg.Words }

// Lanes returns the packing width (64).
func (b *BatchArray) Lanes() int { return BatchLanes }

// UsedLanes returns the mask of lanes carrying an injected fault.
func (b *BatchArray) UsedLanes() uint64 { return b.used }

func (b *BatchArray) cellIndex(c CellAddr) int { return c.Row*b.cfg.Cols() + c.Col }

// Inject places lane's single fault at the victim cell, with the same
// validation as Array.Inject plus the one-fault-per-lane restriction
// that keeps the packed semantics cascade-free.
func (b *BatchArray) Inject(lane int, victim CellAddr, f Fault) error {
	if lane < 0 || lane >= BatchLanes {
		return cerr.New(cerr.CodeInvalidParams, "sram: batch lane %d out of range [0,%d)", lane, BatchLanes)
	}
	if b.used&(1<<uint(lane)) != 0 {
		return cerr.New(cerr.CodeInvalidParams, "sram: batch lane %d already carries a fault", lane)
	}
	if victim.Row < 0 || victim.Row >= b.cfg.TotalRows() || victim.Col < 0 || victim.Col >= b.cfg.Cols() {
		return cerr.New(cerr.CodeInvalidParams, "sram: victim %v out of range", victim)
	}
	vi := b.cellIndex(victim)
	bf := batchFault{lane: lane, vi: vi, kind: f.Kind, lastTouch: b.tick}
	switch f.Kind {
	case CFID, CFIN, CFST:
		ai := b.cellIndex(f.Aggressor)
		if ai == vi {
			return cerr.New(cerr.CodeInvalidParams, "sram: coupling fault aggressor == victim %v", victim)
		}
		if f.Aggressor.Row < 0 || f.Aggressor.Row >= b.cfg.TotalRows() ||
			f.Aggressor.Col < 0 || f.Aggressor.Col >= b.cfg.Cols() {
			return cerr.New(cerr.CodeInvalidParams, "sram: aggressor %v out of range", f.Aggressor)
		}
		bf.ai = ai
		bf.rise = f.AggrRise
		bf.forc = f.Forced
		b.aggrAt[ai] = append(b.aggrAt[ai], int32(len(b.faults)))
	}
	b.faultsAt[vi] = append(b.faultsAt[vi], int32(len(b.faults)))
	b.faults = append(b.faults, bf)
	b.used |= 1 << uint(lane)
	return nil
}

// Write stores one word in every lane at once. All lanes execute the
// same march sequence, so the written data is lane-invariant; faults
// then perturb their own lane bit. Mirrors Array.writeRowWord's
// two-phase semantics: all bits of the word switch together, then the
// transitions fixed by the write couple into their victims.
func (b *BatchArray) Write(addr int, data uint64) {
	row, cs := addr/b.cfg.BPC, addr%b.cfg.BPC
	bpw, bpc := b.cfg.BPW, b.cfg.BPC
	base := row * b.cfg.Cols()
	// Phase 1: write every bit, recording per-lane transitions.
	for bit := 0; bit < bpw; bit++ {
		ci := base + bit*bpc + cs
		old := b.cells[ci]
		var eff uint64
		if data>>uint(bit)&1 == 1 {
			eff = ^uint64(0)
		}
		v := eff != 0
		for _, fi := range b.faultsAt[ci] {
			f := &b.faults[fi]
			m := uint64(1) << uint(f.lane)
			switch f.kind {
			case SA0:
				eff &^= m
			case SA1:
				eff |= m
			case TFU:
				// Cannot rise: writing 1 leaves the lane at its old value.
				if v {
					eff = eff&^m | old&m
				}
			case TFD:
				// Cannot fall: writing 0 leaves the lane at its old value.
				if !v {
					eff = eff&^m | old&m
				}
			case SOF:
				// Cell not connected: the write is lost in this lane.
				eff = eff&^m | old&m
			case DRF0, DRF1:
				f.lastTouch = b.tick
			}
		}
		b.cells[ci] = eff
		b.scratch[bit] = old ^ eff // per-lane transition mask
		b.oldScratch[bit] = old
	}
	// Phase 2: aggressor transitions couple into victims. The
	// transition set is phase 1's, so a victim's own change (which the
	// single-fault-per-lane restriction keeps from being an aggressor)
	// never re-triggers coupling.
	for bit := 0; bit < bpw; bit++ {
		changed := b.scratch[bit]
		if changed == 0 {
			continue
		}
		ci := base + bit*bpc + cs
		if len(b.aggrAt[ci]) == 0 {
			continue
		}
		old := b.oldScratch[bit]
		newv := old ^ changed
		roseMask := ^old & newv
		fellMask := old & ^newv
		for _, fi := range b.aggrAt[ci] {
			f := &b.faults[fi]
			m := uint64(1) << uint(f.lane)
			sens := fellMask
			if f.rise {
				sens = roseMask
			}
			if sens&m == 0 {
				continue
			}
			switch f.kind {
			case CFID:
				if f.forc {
					b.cells[f.vi] |= m
				} else {
					b.cells[f.vi] &^= m
				}
			case CFIN:
				b.cells[f.vi] ^= m
			}
		}
	}
}

// ReadBits senses one word in every lane, writing bit b's 64 lane
// values into out[b]. Mirrors Array.readCell per bit: stuck-at,
// stuck-open (column sense latch), retention decay and state coupling,
// then the sensed value latches into the column sense amp.
func (b *BatchArray) ReadBits(addr int, out []uint64) {
	row, cs := addr/b.cfg.BPC, addr%b.cfg.BPC
	bpw, bpc := b.cfg.BPW, b.cfg.BPC
	base := row * b.cfg.Cols()
	for bit := 0; bit < bpw; bit++ {
		col := bit*bpc + cs
		ci := base + col
		v := b.cells[ci]
		for _, fi := range b.faultsAt[ci] {
			f := &b.faults[fi]
			m := uint64(1) << uint(f.lane)
			switch f.kind {
			case SA0:
				v &^= m
			case SA1:
				v |= m
			case SOF:
				// Sense amp keeps the column's previous value.
				v = v&^m | b.colSense[col]&m
			case DRF0:
				if b.tick-f.lastTouch >= RetentionTicks {
					b.cells[ci] &^= m
					v &^= m
				}
				f.lastTouch = b.tick
			case DRF1:
				if b.tick-f.lastTouch >= RetentionTicks {
					b.cells[ci] |= m
					v |= m
				}
				f.lastTouch = b.tick
			case CFST:
				sens := ^b.cells[f.ai]
				if f.rise {
					sens = b.cells[f.ai]
				}
				if sens&m != 0 {
					if f.forc {
						v |= m
					} else {
						v &^= m
					}
				}
			}
		}
		b.colSense[col] = v
		out[bit] = v
	}
}

// Wait advances the retention clock by one tick, as Array.Wait does.
func (b *BatchArray) Wait() { b.tick++ }
