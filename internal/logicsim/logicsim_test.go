package logicsim

import (
	"testing"
	"testing/quick"
)

func mustSettle(t *testing.T, s *Sim) {
	t.Helper()
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
}

func TestFourValueOps(t *testing.T) {
	if Not(L0) != L1 || Not(L1) != L0 || Not(X) != X || Not(Z) != X {
		t.Fatal("Not table wrong")
	}
	if and2(L0, X) != L0 {
		t.Fatal("0 AND X must be 0")
	}
	if and2(L1, X) != X {
		t.Fatal("1 AND X must be X")
	}
	if or2(L1, X) != L1 {
		t.Fatal("1 OR X must be 1")
	}
	if or2(L0, X) != X {
		t.Fatal("0 OR X must be X")
	}
	if xor2(L1, X) != X {
		t.Fatal("XOR with X must be X")
	}
	if Bool(true) != L1 || Bool(false) != L0 {
		t.Fatal("Bool conversion wrong")
	}
	if L0.String() != "0" || Z.String() != "Z" {
		t.Fatal("String wrong")
	}
}

func TestBasicGates(t *testing.T) {
	type tc struct {
		k    Kind
		a, b Value
		want Value
	}
	cases := []tc{
		{AND, L1, L1, L1}, {AND, L1, L0, L0},
		{OR, L0, L0, L0}, {OR, L0, L1, L1},
		{NAND, L1, L1, L0}, {NOR, L0, L0, L1},
		{XOR, L1, L0, L1}, {XOR, L1, L1, L0},
		{XNOR, L1, L1, L1}, {XNOR, L1, L0, L0},
	}
	for _, c := range cases {
		s := New()
		a, b, o := s.Net("a"), s.Net("b"), s.Net("o")
		s.Gate(c.k, o, a, b)
		s.Set(a, c.a)
		s.Set(b, c.b)
		mustSettle(t, s)
		if got := s.Value(o); got != c.want {
			t.Errorf("%v(%v,%v) = %v, want %v", c.k, c.a, c.b, got, c.want)
		}
	}
}

func TestWideGates(t *testing.T) {
	s := New()
	in := s.Bus("in", 5)
	o := s.Net("o")
	s.Gate(AND, o, in...)
	s.SetBus(in, 0b11111)
	mustSettle(t, s)
	if s.Value(o) != L1 {
		t.Fatal("wide AND of all ones should be 1")
	}
	s.SetBus(in, 0b11011)
	mustSettle(t, s)
	if s.Value(o) != L0 {
		t.Fatal("wide AND with a zero should be 0")
	}
}

func TestMuxAndTribuf(t *testing.T) {
	s := New()
	sel, a, b, o := s.Net("sel"), s.Net("a"), s.Net("b"), s.Net("o")
	s.Gate(MUX2, o, sel, a, b)
	s.Set(a, L0)
	s.Set(b, L1)
	s.Set(sel, L0)
	mustSettle(t, s)
	if s.Value(o) != L0 {
		t.Fatal("mux sel=0 should pick a")
	}
	s.Set(sel, L1)
	mustSettle(t, s)
	if s.Value(o) != L1 {
		t.Fatal("mux sel=1 should pick b")
	}
	// X select with equal inputs is defined.
	s.Set(a, L1)
	s.Set(sel, X)
	mustSettle(t, s)
	if s.Value(o) != L1 {
		t.Fatal("mux X-sel with equal inputs should propagate the value")
	}

	s2 := New()
	en, d, q := s2.Net("en"), s2.Net("d"), s2.Net("q")
	s2.Gate(TRIBUF, q, en, d)
	s2.Set(d, L1)
	s2.Set(en, L0)
	mustSettle(t, s2)
	if s2.Value(q) != Z {
		t.Fatal("disabled tristate should be Z")
	}
	s2.Set(en, L1)
	mustSettle(t, s2)
	if s2.Value(q) != L1 {
		t.Fatal("enabled tristate should pass data")
	}
}

func TestDFFAndReset(t *testing.T) {
	s := New()
	d, q, rstN := s.Net("d"), s.Net("q"), s.Net("rstN")
	s.DFF(d, q, rstN)
	s.Set(rstN, L0)
	s.Set(d, L1)
	mustSettle(t, s)
	if err := s.ApplyResets(); err != nil {
		t.Fatal(err)
	}
	if s.Value(q) != L0 {
		t.Fatal("reset should force q=0")
	}
	// Reset held: clocking keeps 0.
	if err := s.ClockEdge(); err != nil {
		t.Fatal(err)
	}
	if s.Value(q) != L0 {
		t.Fatal("clock under reset should keep q=0")
	}
	s.Set(rstN, L1)
	mustSettle(t, s)
	if err := s.ClockEdge(); err != nil {
		t.Fatal(err)
	}
	if s.Value(q) != L1 {
		t.Fatal("q should capture d=1")
	}
}

func TestShiftRegisterRaceFree(t *testing.T) {
	// q0 -> q1 -> q2 chain must shift exactly one stage per edge.
	s := New()
	rstN := s.Net("rstN")
	in := s.Net("in")
	q0, q1, q2 := s.Net("q0"), s.Net("q1"), s.Net("q2")
	s.DFF(in, q0, rstN)
	s.DFF(q0, q1, rstN)
	s.DFF(q1, q2, rstN)
	s.Set(rstN, L0)
	mustSettle(t, s)
	if err := s.ApplyResets(); err != nil {
		t.Fatal(err)
	}
	s.Set(rstN, L1)
	s.Set(in, L1)
	mustSettle(t, s)
	if err := s.ClockEdge(); err != nil {
		t.Fatal(err)
	}
	if s.Value(q0) != L1 || s.Value(q1) != L0 || s.Value(q2) != L0 {
		t.Fatalf("after 1 edge: %v %v %v", s.Value(q0), s.Value(q1), s.Value(q2))
	}
	s.Set(in, L0)
	mustSettle(t, s)
	if err := s.ClockEdge(); err != nil {
		t.Fatal(err)
	}
	if s.Value(q0) != L0 || s.Value(q1) != L1 || s.Value(q2) != L0 {
		t.Fatalf("after 2 edges: %v %v %v", s.Value(q0), s.Value(q1), s.Value(q2))
	}
}

func TestOscillationDetected(t *testing.T) {
	s := New()
	a := s.Net("a")
	s.Gate(NOT, a, a) // combinational loop
	s.Set(a, L0)
	if err := s.Settle(); err == nil {
		t.Fatal("ring oscillator should not settle")
	}
}

func TestBusHelpers(t *testing.T) {
	s := New()
	b := s.Bus("data", 8)
	s.SetBus(b, 0xA5)
	mustSettle(t, s)
	v, ok := s.ReadBus(b)
	if !ok || v != 0xA5 {
		t.Fatalf("bus roundtrip: %x ok=%v", v, ok)
	}
	// Unknown bit poisons the read.
	s.Set(b[3], X)
	mustSettle(t, s)
	if _, ok := s.ReadBus(b); ok {
		t.Fatal("X bit should make ReadBus not-ok")
	}
	if s.ValueOf("data[0]") != L1 {
		t.Fatal("ValueOf failed")
	}
	if s.ValueOf("bogus") != X {
		t.Fatal("ValueOf of unknown net should be X")
	}
}

func TestReduceTrees(t *testing.T) {
	s := New()
	in := s.Bus("in", 7)
	xo := s.XorReduce("x", in)
	oo := s.OrReduce("o", in)
	ao := s.AndReduce("a", in)
	s.SetBus(in, 0b1011001) // 4 ones
	mustSettle(t, s)
	if s.Value(xo) != L0 {
		t.Fatal("xor of even parity should be 0")
	}
	if s.Value(oo) != L1 || s.Value(ao) != L0 {
		t.Fatal("or/and reduce wrong")
	}
	s.SetBus(in, 0b1111111)
	mustSettle(t, s)
	if s.Value(ao) != L1 {
		t.Fatal("and of all ones should be 1")
	}
	s.SetBus(in, 0)
	mustSettle(t, s)
	if s.Value(oo) != L0 {
		t.Fatal("or of zeros should be 0")
	}
}

func TestDecoder(t *testing.T) {
	s := New()
	addr := s.Bus("a", 3)
	en := s.Net("en")
	outs := s.Decoder("dec", addr, en)
	s.Set(en, L1)
	for v := 0; v < 8; v++ {
		s.SetBus(addr, uint64(v))
		mustSettle(t, s)
		for i, o := range outs {
			want := L0
			if i == v {
				want = L1
			}
			if s.Value(o) != want {
				t.Fatalf("decoder addr=%d out[%d]=%v", v, i, s.Value(o))
			}
		}
	}
	s.Set(en, L0)
	mustSettle(t, s)
	for i, o := range outs {
		if s.Value(o) != L0 {
			t.Fatalf("disabled decoder out[%d]=%v", i, s.Value(o))
		}
	}
}

func TestEqComparator(t *testing.T) {
	s := New()
	a := s.Bus("a", 6)
	b := s.Bus("b", 6)
	eq := s.EqComparator("cmp", a, b)
	s.SetBus(a, 33)
	s.SetBus(b, 33)
	mustSettle(t, s)
	if s.Value(eq) != L1 {
		t.Fatal("equal buses should compare equal")
	}
	s.SetBus(b, 32)
	mustSettle(t, s)
	if s.Value(eq) != L0 {
		t.Fatal("unequal buses should compare unequal")
	}
}

func TestUpDownCounter(t *testing.T) {
	s := New()
	rstN := s.Net("rstN")
	c := s.UpDownCounter("cnt", 4, rstN)
	s.Set(rstN, L0)
	mustSettle(t, s)
	if err := s.ApplyResets(); err != nil {
		t.Fatal(err)
	}
	s.Set(rstN, L1)
	s.Set(c.En, L1)
	s.Set(c.Up, L1)
	mustSettle(t, s)
	for want := uint64(1); want <= 17; want++ {
		if err := s.ClockEdge(); err != nil {
			t.Fatal(err)
		}
		v, ok := s.ReadBus(c.Q)
		if !ok || v != want%16 {
			t.Fatalf("up count step %d: got %d ok=%v", want, v, ok)
		}
	}
	// Now count down from 1 -> 0 -> 15.
	s.Set(c.Up, L0)
	mustSettle(t, s)
	if err := s.ClockEdge(); err != nil {
		t.Fatal(err)
	}
	v, _ := s.ReadBus(c.Q)
	if v != 0 {
		t.Fatalf("down from 1: got %d", v)
	}
	if s.Value(c.Carry) != L1 {
		t.Fatal("terminal count (all zeros, down) should assert")
	}
	if err := s.ClockEdge(); err != nil {
		t.Fatal(err)
	}
	v, _ = s.ReadBus(c.Q)
	if v != 15 {
		t.Fatalf("down wrap: got %d", v)
	}
	// Disable freezes.
	s.Set(c.En, L0)
	mustSettle(t, s)
	if err := s.ClockEdge(); err != nil {
		t.Fatal(err)
	}
	v, _ = s.ReadBus(c.Q)
	if v != 15 {
		t.Fatalf("disabled counter moved: %d", v)
	}
}

func TestCounterSynchronousLoad(t *testing.T) {
	s := New()
	rstN := s.Net("rstN")
	c := s.UpDownCounter("cnt", 4, rstN)
	s.Set(rstN, L1)
	s.Set(c.En, L1)
	s.Set(c.Up, L1)
	s.SetBus(c.Q, 9)
	mustSettle(t, s)
	// Load while counting up -> 0.
	s.Set(c.Load, L1)
	mustSettle(t, s)
	if err := s.ClockEdge(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.ReadBus(c.Q); v != 0 {
		t.Fatalf("up load -> %d, want 0", v)
	}
	// Load while counting down -> max.
	s.Set(c.Up, L0)
	mustSettle(t, s)
	if err := s.ClockEdge(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.ReadBus(c.Q); v != 15 {
		t.Fatalf("down load -> %d, want 15", v)
	}
	// Release load: counts normally again.
	s.Set(c.Load, L0)
	mustSettle(t, s)
	if err := s.ClockEdge(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.ReadBus(c.Q); v != 14 {
		t.Fatalf("after load, down count -> %d, want 14", v)
	}
}

func TestJohnsonSynchronousLoad(t *testing.T) {
	s := New()
	rstN := s.Net("rstN")
	j := s.JohnsonCounter("jc", 4, rstN)
	s.Set(rstN, L1)
	s.Set(j.En, L1)
	s.SetBus(j.Q, 0b0111)
	mustSettle(t, s)
	s.Set(j.Load, L1)
	mustSettle(t, s)
	if err := s.ClockEdge(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.ReadBus(j.Q); v != 0 {
		t.Fatalf("johnson load -> %04b, want 0", v)
	}
	s.Set(j.Load, L0)
	mustSettle(t, s)
	if err := s.ClockEdge(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.ReadBus(j.Q); v != 0b0001 {
		t.Fatalf("after load -> %04b, want 0001", v)
	}
}

func TestJohnsonCounterSequence(t *testing.T) {
	const n = 4
	s := New()
	rstN := s.Net("rstN")
	j := s.JohnsonCounter("jc", n, rstN)
	s.Set(rstN, L0)
	mustSettle(t, s)
	if err := s.ApplyResets(); err != nil {
		t.Fatal(err)
	}
	s.Set(rstN, L1)
	s.Set(j.En, L1)
	mustSettle(t, s)
	want := []uint64{0b0001, 0b0011, 0b0111, 0b1111, 0b1110, 0b1100, 0b1000, 0b0000}
	for i, w := range want {
		if err := s.ClockEdge(); err != nil {
			t.Fatal(err)
		}
		v, ok := s.ReadBus(j.Q)
		if !ok || v != w {
			t.Fatalf("johnson step %d: got %04b want %04b", i, v, w)
		}
	}
	// Period is exactly 2n and all 2n states are distinct.
	seen := map[uint64]bool{}
	for i := 0; i < 2*n; i++ {
		v, _ := s.ReadBus(j.Q)
		if seen[v] {
			t.Fatalf("repeated johnson state %04b", v)
		}
		seen[v] = true
		if err := s.ClockEdge(); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 2*n {
		t.Fatalf("johnson visited %d states, want %d", len(seen), 2*n)
	}
}

// Property: the up/down counter implements +1/-1 mod 2^n from any
// starting state.
func TestQuickCounterStep(t *testing.T) {
	s := New()
	rstN := s.Net("rstN")
	c := s.UpDownCounter("cnt", 6, rstN)
	s.Set(rstN, L1)
	s.Set(c.En, L1)
	mustSettle(t, s)
	f := func(start uint8, up bool) bool {
		v0 := uint64(start) % 64
		// Force state by loading flops directly via reset-then-count is
		// slow; instead drive Q nets externally then clock.
		s.SetBus(c.Q, v0)
		if err := s.Settle(); err != nil {
			return false
		}
		s.Set(c.Up, Bool(up))
		if err := s.Settle(); err != nil {
			return false
		}
		if err := s.ClockEdge(); err != nil {
			return false
		}
		got, ok := s.ReadBus(c.Q)
		if !ok {
			return false
		}
		want := (v0 + 1) % 64
		if !up {
			want = (v0 + 63) % 64
		}
		return got == want
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 40}
}

func TestStatsAndCounts(t *testing.T) {
	s := New()
	a, b, o := s.Net("a"), s.Net("b"), s.Net("o")
	s.Gate(AND, o, a, b)
	s.DFF(o, s.Net("q"), -1)
	if s.NumGates() != 1 || s.NumDFFs() != 1 {
		t.Fatal("counts wrong")
	}
	s.Set(a, L1)
	s.Set(b, L1)
	mustSettle(t, s)
	if s.Stats() == 0 {
		t.Fatal("expected gate evaluations")
	}
}

func TestRegisterMux2BusHalfAdd(t *testing.T) {
	s := New()
	rstN := s.Net("rstN")
	d := s.Bus("d", 4)
	q := s.Register("q", d, rstN)
	if len(q) != 4 || s.NumDFFs() != 4 {
		t.Fatal("register build wrong")
	}
	s.Set(rstN, L1)
	s.SetBus(d, 0b1010)
	mustSettle(t, s)
	if err := s.ClockEdge(); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.ReadBus(q); !ok || v != 0b1010 {
		t.Fatalf("register captured %04b", v)
	}

	sel := s.Net("sel")
	a := s.Bus("a", 4)
	bb := s.Bus("bb", 4)
	out := s.Mux2Bus("m", sel, a, bb)
	s.SetBus(a, 0x3)
	s.SetBus(bb, 0xC)
	s.Set(sel, L0)
	mustSettle(t, s)
	if v, _ := s.ReadBus(out); v != 0x3 {
		t.Fatalf("mux bus sel=0 -> %x", v)
	}
	s.Set(sel, L1)
	mustSettle(t, s)
	if v, _ := s.ReadBus(out); v != 0xC {
		t.Fatalf("mux bus sel=1 -> %x", v)
	}

	x, y := s.Net("x"), s.Net("y")
	sum, carry := s.HalfAdd("ha", x, y)
	s.Set(x, L1)
	s.Set(y, L1)
	mustSettle(t, s)
	if s.Value(sum) != L0 || s.Value(carry) != L1 {
		t.Fatal("half adder 1+1 wrong")
	}
}

func TestGateIntrospection(t *testing.T) {
	s := New()
	nets := s.Nets("a", "b", "c")
	s.Gate(AND, nets[2], nets[0], nets[1])
	s.Gate(NOT, s.Net("d"), nets[2])
	s.Gate(OR, s.Net("e"), nets[0], nets[1], nets[2])
	counts := s.GateCounts()
	if counts[AND] != 1 || counts[NOT] != 1 || counts[OR] != 1 {
		t.Fatalf("counts %v", counts)
	}
	gs := s.Gates()
	if len(gs) != 3 || gs[2].Inputs != 3 || gs[2].Kind != OR {
		t.Fatalf("gates %v", gs)
	}
	for _, k := range []Kind{AND, OR, NAND, NOR, XOR, XNOR, NOT, BUF, MUX2, TRIBUF} {
		if k.String() == "" {
			t.Fatal("kind string empty")
		}
	}
	if X.String() != "X" {
		t.Fatal("X string")
	}
	if s.NumNets() != 5 || s.NetName(0) != "a" {
		t.Fatalf("net introspection: %d %q", s.NumNets(), s.NetName(0))
	}
}

func TestMuxWithZInput(t *testing.T) {
	// A floating (Z) input reads as X through a gate.
	s := New()
	en, d, q := s.Net("en"), s.Net("d"), s.Net("q")
	s.Gate(TRIBUF, q, en, d)
	o := s.Net("o")
	s.Gate(BUF, o, q)
	s.Set(en, L0)
	s.Set(d, L1)
	mustSettle(t, s)
	if s.Value(q) != Z || s.Value(o) != X {
		t.Fatalf("Z propagation: q=%v o=%v", s.Value(q), s.Value(o))
	}
}

func TestOnChange(t *testing.T) {
	s := New()
	a, o := s.Net("a"), s.Net("o")
	s.Gate(NOT, o, a)
	var fires int
	s.OnChange(o, func(Value) { fires++ })
	s.Set(a, L0)
	mustSettle(t, s)
	s.Set(a, L1)
	mustSettle(t, s)
	if fires < 2 {
		t.Fatalf("watch fired %d times", fires)
	}
}
