package logicsim

import "fmt"

// This file provides structural building blocks used by the BIST/BISR
// netlist generators: reduction trees, decoders, and registered buses.

// XorReduce builds a balanced XOR tree over in and returns the output
// net. A single input is buffered.
func (s *Sim) XorReduce(name string, in []int) int {
	return s.reduce(name, XOR, in)
}

// OrReduce builds a balanced OR tree over in and returns the output
// net.
func (s *Sim) OrReduce(name string, in []int) int {
	return s.reduce(name, OR, in)
}

// AndReduce builds a balanced AND tree over in and returns the output
// net.
func (s *Sim) AndReduce(name string, in []int) int {
	return s.reduce(name, AND, in)
}

func (s *Sim) reduce(name string, k Kind, in []int) int {
	if len(in) == 0 {
		// Construction error: record it and return a placeholder X net
		// so callers can keep wiring; the sim refuses to run (see Err).
		s.Failf("logicsim: %v reduce %q over empty bus", k, name)
		return s.Net(name + ".r")
	}
	level := 0
	cur := in
	for len(cur) > 1 {
		var next []int
		for i := 0; i < len(cur); i += 2 {
			if i+1 == len(cur) {
				next = append(next, cur[i])
				continue
			}
			out := s.Net(fmt.Sprintf("%s.r%d_%d", name, level, i/2))
			s.Gate(k, out, cur[i], cur[i+1])
			next = append(next, out)
		}
		cur = next
		level++
	}
	if len(in) == 1 {
		out := s.Net(name + ".r")
		s.Gate(BUF, out, in[0])
		return out
	}
	return cur[0]
}

// Decoder builds an n-to-2^n one-hot decoder with an enable input and
// returns the 2^n output nets (index 0 = all-zero address).
func (s *Sim) Decoder(name string, addr []int, en int) []int {
	n := len(addr)
	size := 1 << uint(n)
	// Complement rails.
	nb := make([]int, n)
	for i, a := range addr {
		nb[i] = s.Net(fmt.Sprintf("%s.nb%d", name, i))
		s.Gate(NOT, nb[i], a)
	}
	out := make([]int, size)
	for v := 0; v < size; v++ {
		ins := make([]int, 0, n+1)
		ins = append(ins, en)
		for i := 0; i < n; i++ {
			if v>>uint(i)&1 == 1 {
				ins = append(ins, addr[i])
			} else {
				ins = append(ins, nb[i])
			}
		}
		out[v] = s.Net(fmt.Sprintf("%s.o%d", name, v))
		s.Gate(AND, out[v], ins...)
	}
	return out
}

// EqComparator builds a bit-wise equality comparator between buses a
// and b (same width) and returns a net that is 1 when equal.
func (s *Sim) EqComparator(name string, a, b []int) int {
	if len(a) != len(b) {
		s.Failf("logicsim: comparator %q width mismatch (%d vs %d)", name, len(a), len(b))
		return s.Net(name + ".eq")
	}
	if len(a) == 0 {
		s.Failf("logicsim: comparator %q over empty buses", name)
		return s.Net(name + ".eq")
	}
	diffs := make([]int, len(a))
	for i := range a {
		diffs[i] = s.Net(fmt.Sprintf("%s.x%d", name, i))
		s.Gate(XOR, diffs[i], a[i], b[i])
	}
	ne := s.OrReduce(name+".ne", diffs)
	eq := s.Net(name + ".eq")
	s.Gate(NOT, eq, ne)
	return eq
}

// Register builds an n-bit register: DFFs from d[i] to a new bus named
// name[i], sharing one active-low reset net. It returns the Q bus.
func (s *Sim) Register(name string, d []int, rstN int) []int {
	q := s.Bus(name, len(d))
	for i := range d {
		s.DFF(d[i], q[i], rstN)
	}
	return q
}

// Mux2Bus builds a per-bit 2:1 mux: out = a when sel=0, b when sel=1.
func (s *Sim) Mux2Bus(name string, sel int, a, b []int) []int {
	if len(a) != len(b) {
		s.Failf("logicsim: mux %q width mismatch (%d vs %d)", name, len(a), len(b))
		return s.Bus(name, len(a))
	}
	out := s.Bus(name, len(a))
	for i := range a {
		s.Gate(MUX2, out[i], sel, a[i], b[i])
	}
	return out
}

// HalfAdd builds sum and carry nets for inputs a, b.
func (s *Sim) HalfAdd(name string, a, b int) (sum, carry int) {
	sum = s.Net(name + ".s")
	carry = s.Net(name + ".c")
	s.Gate(XOR, sum, a, b)
	s.Gate(AND, carry, a, b)
	return sum, carry
}

// UpDownCounterNets holds the interface nets of a structural binary
// up/down counter built by UpDownCounter.
type UpDownCounterNets struct {
	Q     []int // count output bus
	Up    int   // 1 = count up, 0 = count down
	En    int   // count enable
	Load  int   // synchronous load to the direction's start (0 if up, max if down); wins over En
	RstN  int   // active-low async reset
	Carry int   // terminal count indicator (all ones when up, all zeros when down)
}

// UpDownCounter builds an n-bit binary up/down counter. On each
// ClockEdge with En=1 the count increments (Up=1) or decrements
// (Up=0); it wraps modulo 2^n. This is the structural form of the
// paper's ADDGEN address generator.
func (s *Sim) UpDownCounter(name string, n int, rstN int) *UpDownCounterNets {
	c := &UpDownCounterNets{
		Up:   s.Net(name + ".up"),
		En:   s.Net(name + ".en"),
		Load: s.Net(name + ".load"),
		RstN: rstN,
	}
	// Default the load input low so counters built before the load
	// feature keep working; callers wire or Set it to use it.
	s.SetDefault(c.Load, L0)
	q := s.Bus(name+".q", n)
	c.Q = q
	// For up counting, bit i toggles when all lower bits are 1; for
	// down, when all lower bits are 0. Build "all lower ones" and
	// "all lower zeros" chains.
	// Chains seeded by En so that toggle[i] = En AND (all-lower-ones or
	// all-lower-zeros): a disabled counter holds its value.
	ones := make([]int, n)  // ones[i] = En AND q[0..i-1]
	zeros := make([]int, n) // zeros[i] = En AND ~q[0..i-1]
	for i := 0; i < n; i++ {
		if i == 0 {
			ones[i] = c.En
			zeros[i] = c.En
		} else {
			ones[i] = s.Net(fmt.Sprintf("%s.ones%d", name, i))
			s.Gate(AND, ones[i], ones[i-1], q[i-1])
			nz := s.Net(fmt.Sprintf("%s.nq%d", name, i-1))
			s.Gate(NOT, nz, q[i-1])
			zeros[i] = s.Net(fmt.Sprintf("%s.zeros%d", name, i))
			s.Gate(AND, zeros[i], zeros[i-1], nz)
		}
	}
	// Load value: 0 when counting up, all-ones when counting down.
	loadVal := s.Net(name + ".loadval")
	s.Gate(NOT, loadVal, c.Up)
	for i := 0; i < n; i++ {
		tog := s.Net(fmt.Sprintf("%s.tog%d", name, i))
		s.Gate(MUX2, tog, c.Up, zeros[i], ones[i])
		d := s.Net(fmt.Sprintf("%s.d%d", name, i))
		s.Gate(XOR, d, q[i], tog)
		dl := s.Net(fmt.Sprintf("%s.dl%d", name, i))
		s.Gate(MUX2, dl, c.Load, d, loadVal)
		s.DFF(dl, q[i], rstN)
	}
	// Terminal count: all ones (up) / all zeros (down).
	allOnes := s.AndReduce(name+".allones", q)
	nqs := make([]int, n)
	for i := 0; i < n; i++ {
		nqs[i] = s.Net(fmt.Sprintf("%s.tnq%d", name, i))
		s.Gate(NOT, nqs[i], q[i])
	}
	allZeros := s.AndReduce(name+".allzeros", nqs)
	c.Carry = s.Net(name + ".tc")
	s.Gate(MUX2, c.Carry, c.Up, allZeros, allOnes)
	return c
}

// JohnsonCounterNets holds the interface of a structural Johnson
// (twisted-ring) counter, the paper's DATAGEN background generator.
type JohnsonCounterNets struct {
	Q    []int
	En   int
	Load int // synchronous clear to the all-zero background; wins over En
	RstN int
}

// JohnsonCounter builds an n-bit Johnson counter: a shift register
// whose serial input is the complement of the last stage. Starting
// from all zeros it cycles through the 2n data backgrounds
// 00..0, 10..0, 110..0, …, 11..1, 011..1, …, 00..1 — exactly the
// background sequence the paper proves sufficient.
func (s *Sim) JohnsonCounter(name string, n int, rstN int) *JohnsonCounterNets {
	j := &JohnsonCounterNets{En: s.Net(name + ".en"), Load: s.Net(name + ".load"), RstN: rstN}
	s.SetDefault(j.Load, L0)
	q := s.Bus(name+".q", n)
	j.Q = q
	nlast := s.Net(name + ".nlast")
	s.Gate(NOT, nlast, q[n-1])
	nload := s.Net(name + ".nload")
	s.Gate(NOT, nload, j.Load)
	for i := 0; i < n; i++ {
		src := nlast
		if i > 0 {
			src = q[i-1]
		}
		d := s.Net(fmt.Sprintf("%s.d%d", name, i))
		s.Gate(MUX2, d, j.En, q[i], src)
		// Synchronous clear: load forces the next state to zero.
		dl := s.Net(fmt.Sprintf("%s.dl%d", name, i))
		s.Gate(AND, dl, d, nload)
		s.DFF(dl, q[i], rstN)
	}
	return j
}
