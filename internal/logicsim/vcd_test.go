package logicsim

import (
	"bytes"
	"strings"
	"testing"
)

func TestVCDRecordsCounter(t *testing.T) {
	s := New()
	rstN := s.Net("rstN")
	c := s.UpDownCounter("cnt", 3, rstN)
	rec := NewVCDRecorder(s, c.Q)
	s.Set(rstN, L0)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyResets(); err != nil {
		t.Fatal(err)
	}
	s.Set(rstN, L1)
	s.Set(c.En, L1)
	s.Set(c.Up, L1)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.ClockEdge(); err != nil {
			t.Fatal(err)
		}
	}
	if rec.Events() == 0 {
		t.Fatal("no events recorded")
	}
	var buf bytes.Buffer
	if err := rec.Write(&buf, "1ns"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"$timescale 1ns $end", "$var wire 1", "cnt.q__0",
		"$dumpvars", "$enddefinitions $end", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out[:min(400, len(out))])
		}
	}
	// Value-change lines for both levels must appear.
	if !strings.Contains(out, "1!") && !strings.Contains(out, "1\"") {
		t.Error("no rising changes recorded")
	}
}

func TestVCDIDGeneration(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 5000; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		seen[id] = true
	}
}

func TestVCDValueChars(t *testing.T) {
	if vcdValue(L0) != '0' || vcdValue(L1) != '1' || vcdValue(X) != 'x' || vcdValue(Z) != 'z' {
		t.Fatal("value chars wrong")
	}
}
