package logicsim

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// VCDRecorder captures value changes on selected nets and writes a
// standard Value Change Dump, viewable in GTKWave & co. — the
// simulation-model deliverable for the structural BIST blocks.
type VCDRecorder struct {
	sim   *Sim
	nets  []int
	ids   map[int]string
	batch map[int]Value
	// events[t] holds the changes committed at time t.
	times  []uint64
	values []map[int]Value
}

// NewVCDRecorder watches the given nets (by index). Call before
// driving stimulus; changes are captured via OnChange callbacks.
func NewVCDRecorder(s *Sim, nets []int) *VCDRecorder {
	r := &VCDRecorder{sim: s, nets: append([]int(nil), nets...), ids: map[int]string{}, batch: map[int]Value{}}
	for i, n := range r.nets {
		r.ids[n] = vcdID(i)
		net := n
		s.OnChange(net, func(v Value) {
			r.record(net, v)
		})
	}
	return r
}

func (r *VCDRecorder) record(net int, v Value) {
	t := r.sim.Now()
	if len(r.times) == 0 || r.times[len(r.times)-1] != t {
		r.times = append(r.times, t)
		r.values = append(r.values, map[int]Value{})
	}
	r.values[len(r.values)-1][net] = v
}

// vcdID generates the short identifier code for signal i.
func vcdID(i int) string {
	const chars = "!\"#$%&'()*+,-./:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	var b strings.Builder
	for {
		b.WriteByte(chars[i%len(chars)])
		i /= len(chars)
		if i == 0 {
			break
		}
	}
	return b.String()
}

func vcdValue(v Value) byte {
	switch v {
	case L0:
		return '0'
	case L1:
		return '1'
	case Z:
		return 'z'
	default:
		return 'x'
	}
}

// Write emits the VCD document. Net names become scoped identifiers;
// characters VCD dislikes are replaced.
func (r *VCDRecorder) Write(w io.Writer, timescale string) error {
	if timescale == "" {
		timescale = "1ns"
	}
	if _, err := fmt.Fprintf(w, "$timescale %s $end\n$scope module top $end\n", timescale); err != nil {
		return err
	}
	names := make([]int, len(r.nets))
	copy(names, r.nets)
	sort.Ints(names)
	for _, n := range names {
		name := strings.NewReplacer(" ", "_", "[", "__", "]", "").Replace(r.sim.names[n])
		if _, err := fmt.Fprintf(w, "$var wire 1 %s %s $end\n", r.ids[n], name); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "$upscope $end\n$enddefinitions $end\n"); err != nil {
		return err
	}
	// Initial values: X for everything.
	if _, err := fmt.Fprintln(w, "$dumpvars"); err != nil {
		return err
	}
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "x%s\n", r.ids[n]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "$end"); err != nil {
		return err
	}
	for i, t := range r.times {
		if _, err := fmt.Fprintf(w, "#%d\n", t); err != nil {
			return err
		}
		// Deterministic ordering within a timestep.
		var ns []int
		for n := range r.values[i] {
			ns = append(ns, n)
		}
		sort.Ints(ns)
		for _, n := range ns {
			if _, err := fmt.Fprintf(w, "%c%s\n", vcdValue(r.values[i][n]), r.ids[n]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Events returns the number of recorded timesteps (for tests).
func (r *VCDRecorder) Events() int { return len(r.times) }
