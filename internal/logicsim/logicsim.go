// Package logicsim is an event-driven four-value (0/1/X/Z) gate-level
// logic simulator. BISRAMGEN uses it to simulate the structural
// netlists of the BIST/BISR blocks (ADDGEN, DATAGEN, TRPLA, STREG,
// TLB) cycle by cycle and to check them against the behavioural
// models.
package logicsim

import (
	"fmt"

	"repro/internal/cerr"
)

// Value is a four-state logic level.
type Value uint8

// Logic levels.
const (
	L0 Value = iota
	L1
	X // unknown
	Z // high impedance
)

func (v Value) String() string {
	switch v {
	case L0:
		return "0"
	case L1:
		return "1"
	case X:
		return "X"
	default:
		return "Z"
	}
}

// Bool converts a Go bool to a Value.
func Bool(b bool) Value {
	if b {
		return L1
	}
	return L0
}

// IsKnown reports whether v is a driven binary level.
func (v Value) IsKnown() bool { return v == L0 || v == L1 }

// Not returns the 4-value complement.
func Not(v Value) Value {
	switch v {
	case L0:
		return L1
	case L1:
		return L0
	default:
		return X
	}
}

func and2(a, b Value) Value {
	if a == L0 || b == L0 {
		return L0
	}
	if a == L1 && b == L1 {
		return L1
	}
	return X
}

func or2(a, b Value) Value {
	if a == L1 || b == L1 {
		return L1
	}
	if a == L0 && b == L0 {
		return L0
	}
	return X
}

func xor2(a, b Value) Value {
	if !a.IsKnown() || !b.IsKnown() {
		return X
	}
	if a == b {
		return L0
	}
	return L1
}

// Kind enumerates gate types.
type Kind int

// Gate kinds. AND/OR/NAND/NOR/XOR/XNOR accept any number of inputs
// >= 1; NOT and BUF take one; MUX2 takes (sel, a, b) and outputs a
// when sel=0, b when sel=1; TRIBUF takes (en, a) and outputs a when
// en=1, Z otherwise.
const (
	AND Kind = iota
	OR
	NAND
	NOR
	XOR
	XNOR
	NOT
	BUF
	MUX2
	TRIBUF
)

func (k Kind) String() string {
	return [...]string{"AND", "OR", "NAND", "NOR", "XOR", "XNOR", "NOT", "BUF", "MUX2", "TRIBUF"}[k]
}

type gate struct {
	kind  Kind
	out   int
	in    []int
	delay uint64
}

func (g *gate) eval(v []Value) Value {
	switch g.kind {
	case NOT:
		return Not(res(v[g.in[0]]))
	case BUF:
		return buf(res(v[g.in[0]]))
	case MUX2:
		sel := res(v[g.in[0]])
		a, b := res(v[g.in[1]]), res(v[g.in[2]])
		switch sel {
		case L0:
			return buf(a)
		case L1:
			return buf(b)
		default:
			if a == b && a.IsKnown() {
				return a
			}
			return X
		}
	case TRIBUF:
		en := res(v[g.in[0]])
		switch en {
		case L1:
			return buf(res(v[g.in[1]]))
		case L0:
			return Z
		default:
			return X
		}
	}
	acc := res(v[g.in[0]])
	acc = buf(acc)
	for _, i := range g.in[1:] {
		b := buf(res(v[i]))
		switch g.kind {
		case AND, NAND:
			acc = and2(acc, b)
		case OR, NOR:
			acc = or2(acc, b)
		case XOR, XNOR:
			acc = xor2(acc, b)
		}
	}
	switch g.kind {
	case NAND, NOR, XNOR:
		acc = Not(acc)
	}
	return acc
}

// res resolves a wire value as seen by a gate input: Z reads as X
// (floating input).
func res(v Value) Value {
	if v == Z {
		return X
	}
	return v
}

// buf normalises a value driven onto a wire.
func buf(v Value) Value {
	if v == Z {
		return X
	}
	return v
}

// dff is an edge-triggered flip-flop updated by Sim.ClockEdge.
type dff struct {
	d, q  int
	rstN  int // async active-low reset net, -1 if none
	state Value
}

type event struct {
	t   uint64
	seq uint64
	net int
	val Value
}

// eventQueue is a binary min-heap ordered by (t, seq). It is
// hand-rolled rather than built on container/heap: the interface{}
// boxing in heap.Push/Pop costs one allocation per scheduled event,
// and a gate-level BIST run schedules millions. The backing array is
// retained across Settle calls, so a warmed-up simulator posts events
// allocation-free.
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(e event) {
	*q = append(*q, e)
	h := *q
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (q *eventQueue) pop() event {
	h := *q
	n := len(h) - 1
	e := h[0]
	h[0] = h[n]
	h = h[:n]
	*q = h
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && h.less(r, c) {
			c = r
		}
		if !h.less(c, i) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	return e
}

// Sim is a gate-level simulator instance.
type Sim struct {
	netIdx map[string]int
	names  []string
	values []Value
	gates  []gate
	fanout [][]int // net -> gate indices
	dffs   []dff

	now   uint64
	seq   uint64
	queue eventQueue

	// inSlab is the arena the per-gate input slices are carved from,
	// and dffNext the ClockEdge sampling scratch: both keep steady-state
	// simulation off the allocator.
	inSlab  []int
	dffNext []Value

	// defaults are construction-time levels recorded by SetDefault.
	// They belong to the netlist, not to a particular run, so Reset
	// re-arms them.
	defaults []event

	// Watch callbacks fire on committed value changes.
	watch map[int][]func(Value)

	evals uint64 // statistics: gate evaluations

	// err is the sticky first construction error. Netlist builders are
	// fluent (no per-call error returns); a malformed construction —
	// empty reduction, bus width mismatch, gate with no inputs —
	// records a typed cerr.ErrNetlist here instead of panicking, and
	// every subsequent Settle/ClockEdge refuses to run until the
	// netlist is rebuilt. Check Err after building.
	err error
}

// New returns an empty simulator.
func New() *Sim {
	return &Sim{netIdx: map[string]int{}, watch: map[int][]func(Value){}}
}

// Net interns a net name, returning its index. New nets start at X.
func (s *Sim) Net(name string) int {
	if i, ok := s.netIdx[name]; ok {
		return i
	}
	i := len(s.values)
	s.netIdx[name] = i
	s.names = append(s.names, name)
	s.values = append(s.values, X)
	s.fanout = append(s.fanout, nil)
	return i
}

// Nets interns a slice of names.
func (s *Sim) Nets(names ...string) []int {
	out := make([]int, len(names))
	for i, n := range names {
		out[i] = s.Net(n)
	}
	return out
}

// Bus interns prefix[0..n) and returns indices, bit 0 first.
func (s *Sim) Bus(prefix string, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = s.Net(fmt.Sprintf("%s[%d]", prefix, i))
	}
	return out
}

// Gate adds a gate with unit delay. Inputs and output are net indices.
func (s *Sim) Gate(k Kind, out int, in ...int) {
	s.GateD(k, 1, out, in...)
}

// Failf records a netlist construction error (first one wins) as a
// typed cerr.ErrNetlist. Block generators call it instead of panicking
// on impossible geometry; the simulator then refuses to run.
func (s *Sim) Failf(format string, args ...any) {
	if s.err == nil {
		s.err = cerr.New(cerr.CodeNetlist, format, args...)
	}
}

// Err returns the first netlist construction error, or nil.
func (s *Sim) Err() error { return s.err }

// GateD adds a gate with an explicit delay in ticks (>= 1). A gate
// with no inputs is recorded as a construction error (see Failf) and
// not added.
func (s *Sim) GateD(k Kind, delay uint64, out int, in ...int) {
	if len(in) == 0 {
		s.Failf("logicsim: %v gate driving %q has no inputs", k, s.names[out])
		return
	}
	if delay == 0 {
		delay = 1
	}
	gi := len(s.gates)
	s.gates = append(s.gates, gate{kind: k, out: out, in: s.internIn(in), delay: delay})
	for _, i := range in {
		s.fanout[i] = append(s.fanout[i], gi)
	}
}

// internIn copies a gate's input list into the shared slab so netlist
// construction costs one amortised allocation per ~thousand gates
// instead of one per gate. Slices carved from a retired slab block stay
// valid — the block is simply no longer appended to.
func (s *Sim) internIn(in []int) []int {
	if cap(s.inSlab)-len(s.inSlab) < len(in) {
		n := 1024
		if len(in) > n {
			n = 2 * len(in)
		}
		s.inSlab = make([]int, 0, n)
	}
	start := len(s.inSlab)
	s.inSlab = append(s.inSlab, in...)
	return s.inSlab[start:len(s.inSlab):len(s.inSlab)]
}

// DFF adds an edge-triggered flip-flop from net d to net q with an
// optional active-low async reset net (pass -1 for none). The flop
// updates on Sim.ClockEdge.
func (s *Sim) DFF(d, q, rstN int) {
	s.dffs = append(s.dffs, dff{d: d, q: q, rstN: rstN, state: X})
}

// Value returns the current value of a net index.
func (s *Sim) Value(net int) Value { return s.values[net] }

// ValueOf returns the value of a named net.
func (s *Sim) ValueOf(name string) Value {
	i, ok := s.netIdx[name]
	if !ok {
		return X
	}
	return s.values[i]
}

// OnChange registers a callback invoked whenever the net commits a new
// value.
func (s *Sim) OnChange(net int, fn func(Value)) {
	s.watch[net] = append(s.watch[net], fn)
}

// Set schedules an external drive of a net at the current time.
func (s *Sim) Set(net int, v Value) {
	s.post(s.now, net, v)
}

// SetDefault drives a net like Set and additionally records the level
// as part of the netlist: block builders use it for default/constant
// drives (an unconnected load input held low, say) so that Reset
// restores them. A later SetDefault on the same net supersedes the
// earlier one.
func (s *Sim) SetDefault(net int, v Value) {
	for i := range s.defaults {
		if s.defaults[i].net == net {
			s.defaults[i].val = v
			s.Set(net, v)
			return
		}
	}
	s.defaults = append(s.defaults, event{net: net, val: v})
	s.Set(net, v)
}

// SetBus drives a bus (bit 0 = LSB) from an unsigned integer.
func (s *Sim) SetBus(nets []int, val uint64) {
	for i, n := range nets {
		s.Set(n, Bool(val>>(uint(i))&1 == 1))
	}
}

// ReadBus assembles an unsigned integer from a bus; the second return
// is false when any bit is not a known binary value.
func (s *Sim) ReadBus(nets []int) (uint64, bool) {
	var v uint64
	ok := true
	for i, n := range nets {
		switch s.values[n] {
		case L1:
			v |= 1 << uint(i)
		case L0:
		default:
			ok = false
		}
	}
	return v, ok
}

func (s *Sim) post(t uint64, net int, v Value) {
	s.seq++
	s.queue.push(event{t: t, seq: s.seq, net: net, val: v})
}

// Reset returns a built netlist to its power-on state — every net X,
// every flip-flop X, the event queue empty, time zero — without
// discarding the elaborated gates, nets, slabs, or watch callbacks.
// Monte-Carlo harnesses reset and re-run one netlist instead of
// re-elaborating an identical one per trial; cumulative Stats survive.
func (s *Sim) Reset() {
	for i := range s.values {
		s.values[i] = X
	}
	for i := range s.dffs {
		s.dffs[i].state = X
	}
	s.queue = s.queue[:0]
	s.now, s.seq = 0, 0
	// Re-arm the construction-time default drives; without them a
	// reset netlist would leave default-held nets (e.g. an unused
	// counter load input) at X forever.
	for _, d := range s.defaults {
		s.post(0, d.net, d.val)
	}
}

// Settle runs the event queue until quiescent or until the budget of
// events is exhausted, returning a typed cerr.ErrSimDiverged in the
// latter case (indicating oscillation, e.g. an unstable combinational
// loop). A netlist with a recorded construction error refuses to run.
func (s *Sim) Settle() error {
	if s.err != nil {
		return s.err
	}
	const budget = 4_000_000
	n := 0
	for len(s.queue) > 0 {
		ev := s.queue.pop()
		if ev.t > s.now {
			s.now = ev.t
		}
		if s.values[ev.net] == ev.val {
			continue
		}
		s.values[ev.net] = ev.val
		for _, fn := range s.watch[ev.net] {
			fn(ev.val)
		}
		for _, gi := range s.fanout[ev.net] {
			g := &s.gates[gi]
			s.evals++
			nv := g.eval(s.values)
			s.post(s.now+g.delay, g.out, nv)
		}
		n++
		if n > budget {
			return cerr.New(cerr.CodeSimDiverged,
				"logicsim: did not settle after %d events (oscillation?)", budget)
		}
	}
	return nil
}

// ClockEdge samples every flip-flop's D (and async reset), then
// updates all Q outputs simultaneously and settles the combinational
// fan-out. This gives race-free synchronous semantics.
func (s *Sim) ClockEdge() error {
	if cap(s.dffNext) < len(s.dffs) {
		s.dffNext = make([]Value, len(s.dffs))
	}
	next := s.dffNext[:len(s.dffs)]
	for i, f := range s.dffs {
		if f.rstN >= 0 && s.values[f.rstN] == L0 {
			next[i] = L0
			continue
		}
		next[i] = buf(res(s.values[f.d]))
	}
	for i := range s.dffs {
		s.dffs[i].state = next[i]
		s.post(s.now, s.dffs[i].q, next[i])
	}
	return s.Settle()
}

// ApplyResets forces every flip-flop with an asserted (L0) async reset
// to 0 immediately; call after driving reset nets and settling.
func (s *Sim) ApplyResets() error {
	for i := range s.dffs {
		f := &s.dffs[i]
		if f.rstN >= 0 && s.values[f.rstN] == L0 {
			f.state = L0
			s.post(s.now, f.q, L0)
		}
	}
	return s.Settle()
}

// Now returns the current simulation time in ticks.
func (s *Sim) Now() uint64 { return s.now }

// Stats returns cumulative gate-evaluation count.
func (s *Sim) Stats() uint64 { return s.evals }

// NumGates returns the number of gates in the netlist.
func (s *Sim) NumGates() int { return len(s.gates) }

// GateCounts returns the number of gates of each kind — the compiler
// uses the structural netlists' composition to compute the silicon
// area of the BIST blocks.
func (s *Sim) GateCounts() map[Kind]int {
	out := map[Kind]int{}
	for i := range s.gates {
		out[s.gates[i].kind]++
	}
	return out
}

// GateInfo describes one gate for area accounting.
type GateInfo struct {
	Kind   Kind
	Inputs int
}

// Gates lists every gate with its arity, so wide gates can be costed
// as trees of two-input cells.
func (s *Sim) Gates() []GateInfo {
	out := make([]GateInfo, len(s.gates))
	for i := range s.gates {
		out[i] = GateInfo{Kind: s.gates[i].kind, Inputs: len(s.gates[i].in)}
	}
	return out
}

// NumDFFs returns the number of flip-flops.
func (s *Sim) NumDFFs() int { return len(s.dffs) }

// NumNets returns the number of interned nets (diagnostics).
func (s *Sim) NumNets() int { return len(s.values) }

// NetName returns the name of a net index (diagnostics).
func (s *Sim) NetName(i int) string { return s.names[i] }
