// Package mcyield is the statistical yield engine: a seeded,
// deterministic Monte-Carlo estimator of SRAM cell failure
// probability under per-device threshold-voltage and
// transconductance (β) variation, classified through the internal
// SPICE solver's batch-reuse Session API.
//
// The paper sizes its BISR arrays against a closed-form defect model
// (internal/yield); this package supplies the complementary
// *parametric* failure view the memory-yield literature (and tools
// like OpenYield) use: sample a cell's device parameters, classify
// hold/read/write failures with DC analyses, and estimate the
// failure probability. Because interesting cells fail at 4–6σ, plain
// Monte-Carlo needs ~10⁷ samples per point; the engine therefore
// importance-samples the tail — threshold draws are mean-shifted into
// the tails via a defensive two-sided mixture and reweighted by the
// exact likelihood ratio — so sigma-level estimates converge in ~10³
// samples.
//
// Determinism contract: an estimate is a pure function of
// (process, samples, sigma, shift, seed). Each sample index derives
// its own RNG stream, workers write verdicts into per-index slots,
// and the reduction runs serially in index order, so the result is
// bit-identical at any worker count.
package mcyield

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cerr"
	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/tech"
)

// Validation bounds. MaxSamples keeps a single sweep point's CPU time
// bounded (≈10⁶ DC solves); MaxSigma keeps the perturbed devices
// physical (σ is relative to |VT0|, and beyond 50% the level-1 model
// is meaningless); MaxShift caps the importance-sampling mean shift
// where likelihood-ratio weights degenerate.
const (
	MaxSamples = 1 << 20
	MaxSigma   = 0.5
	MaxShift   = 6.0
	// DefaultShift is the mean shift the sweep axis uses: ~3σ into
	// the tail, a good variance/robustness trade for 4–6σ cells.
	DefaultShift = 3.0
)

// chunk is how many consecutive sample indices a worker claims per
// cursor bump; one chaos checkpoint fires per chunk.
const chunk = 32

// Config parameterizes Estimate.
type Config struct {
	Process *tech.Process
	Samples int
	// Sigma is the relative per-device parameter spread; see Params.
	Sigma float64
	// Shift is the importance-sampling mean shift; 0 means plain
	// Monte-Carlo. Use DefaultShift for tail estimation.
	Shift float64
	Seed  int64
	// Workers bounds the solver pool; 0 means GOMAXPROCS. Each worker
	// owns a private CellSim (circuit + factorization scratch).
	Workers int
	Chaos   *chaos.Injector
	Stats   *Stats
}

func (c Config) validate() error {
	switch {
	case c.Process == nil:
		return cerr.New(cerr.CodeInvalidParams, "mcyield: nil process")
	case c.Samples < 1 || c.Samples > MaxSamples:
		return cerr.New(cerr.CodeInvalidParams, "mcyield: samples %d out of range [1, %d]", c.Samples, MaxSamples)
	case !(c.Sigma > 0) || c.Sigma > MaxSigma:
		return cerr.New(cerr.CodeInvalidParams, "mcyield: sigma %g out of range (0, %g]", c.Sigma, MaxSigma)
	case math.IsNaN(c.Shift) || c.Shift < 0 || c.Shift > MaxShift:
		return cerr.New(cerr.CodeInvalidParams, "mcyield: shift %g out of range [0, %g]", c.Shift, MaxShift)
	}
	return nil
}

// Result is a finished estimate. FailProb is the (weighted) cell
// failure probability; StdErr its Monte-Carlo standard error;
// SigmaLevel the equivalent normal quantile Φ⁻¹(1−FailProb), floored
// via a 1/(2(N+1)) probability bound when no failures were observed.
// The mode counts are raw (unweighted) sample tallies.
type Result struct {
	Samples    int     `json:"samples"`
	Sigma      float64 `json:"sigma"`
	Shift      float64 `json:"shift"`
	Seed       int64   `json:"seed"`
	FailProb   float64 `json:"fail_prob"`
	StdErr     float64 `json:"std_err"`
	SigmaLevel float64 `json:"sigma_level"`
	Fails      int     `json:"fails"`
	HoldFails  int     `json:"hold_fails"`
	ReadFails  int     `json:"read_fails"`
	WriteFails int     `json:"write_fails"`
	Diverged   int     `json:"diverged"`
	Trip       float64 `json:"trip_v"`
}

// CellYield is 1 − FailProb, clamped to [0, 1].
func (r Result) CellYield() float64 {
	return math.Min(1, math.Max(0, 1-r.FailProb))
}

// ArrayYield is the probability that all cells of an array work:
// (1 − p)^cells, computed in log space so megabit arrays at small p
// stay accurate.
func ArrayYield(failProb float64, cells int) float64 {
	if failProb <= 0 {
		return 1
	}
	if failProb >= 1 {
		return 0
	}
	return math.Exp(float64(cells) * math.Log1p(-failProb))
}

// sigmaLevel converts a failure probability into the equivalent
// one-sided normal quantile. Zero observed failures report the
// resolution bound of the run rather than +Inf, keeping the field
// JSON-encodable and honest about what N samples can claim.
func sigmaLevel(p float64, n int) float64 {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		p = 1 / (2 * float64(n+1))
	}
	return math.Sqrt2 * math.Erfinv(1-2*p)
}

// Estimate runs the Monte-Carlo yield estimate. Worker goroutines
// claim chunks of the index space from an atomic cursor, classify
// each sample with a per-worker CellSim, and record verdicts into
// per-index slots; the weighted reduction then runs serially, so the
// result is identical for identical configs at any worker count.
func Estimate(ctx context.Context, cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	n := cfg.Samples
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	params := Params{Sigma: cfg.Sigma, Shift: cfg.Shift, Seed: cfg.Seed}
	modes := make([]uint8, n)
	weights := make([]float64, n)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		cursor   atomic.Int64
		errOnce  sync.Once
		firstErr error
		tripOnce sync.Once
		trip     float64 // workers agree: pure function of the process
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err; cancel() })
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cs, err := NewCellSim(cfg.Process)
			if err != nil {
				fail(err)
				return
			}
			tripOnce.Do(func() { trip = cs.Trip() })
			for {
				base := int(cursor.Add(chunk)) - chunk
				if base >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(cerr.New(cerr.CodeBudgetExceeded, "mcyield: estimate canceled: %v", err))
					return
				}
				if err := cfg.Chaos.Point(chaos.PointMCSample); err != nil {
					fail(cerr.Wrap(cerr.CodeInternal, err, "mcyield: chaos injection"))
					return
				}
				end := base + chunk
				if end > n {
					end = n
				}
				for i := base; i < end; i++ {
					smp, err := cs.Sample(uint64(i), params)
					if err != nil {
						fail(err)
						return
					}
					modes[i] = uint8(smp.Mode)
					weights[i] = smp.Weight
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return Result{}, firstErr
	}

	res := Result{Samples: n, Sigma: cfg.Sigma, Shift: cfg.Shift, Seed: cfg.Seed, Trip: trip}
	var sumW, sumW2 float64
	for i := 0; i < n; i++ {
		m := Mode(modes[i])
		if m == ModeNone {
			continue
		}
		res.Fails++
		w := weights[i]
		sumW += w
		sumW2 += w * w
		switch m {
		case ModeHold:
			res.HoldFails++
		case ModeRead:
			res.ReadFails++
		case ModeWrite:
			res.WriteFails++
		case ModeDiverged:
			res.Diverged++
		}
	}
	fn := float64(n)
	res.FailProb = sumW / fn
	res.StdErr = math.Sqrt(math.Max(0, sumW2/fn-res.FailProb*res.FailProb) / fn)
	res.SigmaLevel = sigmaLevel(res.FailProb, n)
	cfg.Stats.record(res, time.Since(start))
	return res, nil
}

// Stats holds the engine's observability instruments; register once
// per process with NewStats and share across estimates. A nil *Stats
// (or one built from a nil registry) records nothing.
type Stats struct {
	Estimates *obs.Counter
	Samples   *obs.Counter
	Failures  *obs.Counter
	Duration  *obs.Histogram
	SigmaLvl  *obs.Histogram
}

// NewStats registers the mcyield metric family on r (nil r is fine:
// every instrument degrades to a no-op).
func NewStats(r *obs.Registry) *Stats {
	return &Stats{
		Estimates: r.Counter("mcyield_estimates_total",
			"Completed Monte-Carlo yield estimates."),
		Samples: r.Counter("mcyield_samples_total",
			"Monte-Carlo cell samples classified."),
		Failures: r.Counter("mcyield_sample_failures_total",
			"Samples that failed a hold/read/write test (unweighted)."),
		Duration: r.Histogram("mcyield_estimate_duration_seconds",
			"Wall time of one yield estimate.", nil),
		SigmaLvl: r.Histogram("mcyield_sigma_level",
			"Estimated cell sigma level per estimate.",
			[]float64{1, 2, 3, 4, 5, 6, 7}),
	}
}

func (s *Stats) record(res Result, dur time.Duration) {
	if s == nil {
		return
	}
	s.Estimates.Inc()
	s.Samples.Add(uint64(res.Samples))
	s.Failures.Add(uint64(res.Fails))
	s.Duration.Observe(dur.Seconds())
	s.SigmaLvl.Observe(res.SigmaLevel)
}
