package mcyield

import "math"

// rng is a counter-seeded splitmix64 stream with Box–Muller normals.
// Every Monte-Carlo sample owns its own stream, derived purely from
// (seed, sample index), so the draw sequence for sample i is
// independent of which worker runs it, how many workers exist, and in
// what order samples complete — the foundation of the "identical
// yield estimates for identical seeds at any worker count" contract.
type rng struct {
	s     uint64
	spare float64
	have  bool
}

func newRNG(seed int64, idx uint64) rng {
	s := mix64(uint64(seed) ^ 0x9E3779B97F4A7C15)
	return rng{s: mix64(s ^ (idx + 0x94D049BB133111EB))}
}

// mix64 is the splitmix64 finalizer: a bijective avalanche so nearby
// (seed, idx) pairs land in unrelated stream states.
func mix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// uniform returns a double in the open interval (0, 1); the +0.5
// offset keeps it away from 0 so Log in Box–Muller never sees it.
func (r *rng) uniform() float64 {
	return (float64(r.next()>>11) + 0.5) * (1.0 / (1 << 53))
}

// norm returns a standard normal draw (Box–Muller, pair-cached).
func (r *rng) norm() float64 {
	if r.have {
		r.have = false
		return r.spare
	}
	rad := math.Sqrt(-2 * math.Log(r.uniform()))
	theta := 2 * math.Pi * r.uniform()
	r.spare = rad * math.Sin(theta)
	r.have = true
	return rad * math.Cos(theta)
}
