package mcyield

import (
	"context"
	"testing"

	"repro/internal/tech"
)

var benchParams = Params{Sigma: 0.08, Shift: DefaultShift, Seed: 1}

// BenchmarkMCYield is the batched path: one CellSim elaboration
// amortized over all samples; each iteration is one classified draw
// (three warm-started DC solves, zero steady-state allocations).
func BenchmarkMCYield(b *testing.B) {
	cs, err := NewCellSim(tech.CDA07)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cs.Sample(uint64(i), benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCYieldNaive is the fresh-circuit-per-sample baseline the
// ≥10× throughput claim is measured against: every draw re-elaborates
// both circuits, re-runs the trip-point bisection and the nominal
// warm-start solves, then classifies. Verdicts are bit-identical to
// BenchmarkMCYield's.
func BenchmarkMCYieldNaive(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NaiveSample(tech.CDA07, uint64(i), benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCYieldParallel measures end-to-end Estimate throughput
// with the worker pool; run with -cpu to see scaling.
func BenchmarkMCYieldParallel(b *testing.B) {
	cfg := Config{Process: tech.CDA07, Samples: 512, Sigma: 0.08, Shift: DefaultShift, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBatchedSpeedupOverNaive enforces the acceptance floor in a
// plain test so `go test` catches a regression without running
// benchmarks: the reused path must classify samples ≥10× faster than
// fresh-elaboration-per-sample, and a steady-state sample must not
// allocate more than 8 objects.
func TestBatchedSpeedupOverNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	cs, err := NewCellSim(tech.CDA07)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	fast := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cs.Sample(uint64(i%n), benchParams); err != nil {
				b.Fatal(err)
			}
		}
	})
	naive := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := NaiveSample(tech.CDA07, uint64(i%n), benchParams); err != nil {
				b.Fatal(err)
			}
		}
	})
	fastNs := float64(fast.NsPerOp())
	naiveNs := float64(naive.NsPerOp())
	t.Logf("batched %.0f ns/sample, naive %.0f ns/sample, speedup %.1fx",
		fastNs, naiveNs, naiveNs/fastNs)
	if naiveNs < 10*fastNs {
		t.Fatalf("batched path only %.1fx faster than naive, want >= 10x", naiveNs/fastNs)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := cs.Sample(3, benchParams); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Fatalf("steady-state sample allocates %.1f objects, want <= 8", allocs)
	}
}
