package mcyield

import (
	"context"
	"math"
	"testing"

	"repro/internal/cerr"
	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/tech"
)

func TestNominalCellPasses(t *testing.T) {
	cs, err := NewCellSim(tech.CDA07)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Trip() <= 0 || cs.Trip() >= tech.CDA07.VDD {
		t.Fatalf("trip voltage %g outside the rails", cs.Trip())
	}
	smp, err := cs.Sample(0, Params{Sigma: 1e-9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if smp.Fail() {
		t.Fatalf("near-nominal sample fails %s", smp.Mode)
	}
	if smp.Weight != 1 {
		t.Fatalf("plain-MC weight = %g, want 1", smp.Weight)
	}
}

// TestSampleMatchesNaive pins the batch-reuse differential: a reused
// CellSim classifies every index bit-identically to a freshly
// elaborated one (NaiveSample), including the likelihood weight.
func TestSampleMatchesNaive(t *testing.T) {
	cs, err := NewCellSim(tech.CDA07)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Sigma: 0.12, Shift: 2.5, Seed: 42}
	for idx := uint64(0); idx < 24; idx++ {
		fast, err := cs.Sample(idx, p)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := NaiveSample(tech.CDA07, idx, p)
		if err != nil {
			t.Fatal(err)
		}
		if fast.Mode != naive.Mode {
			t.Fatalf("idx %d: mode %s vs naive %s", idx, fast.Mode, naive.Mode)
		}
		if math.Float64bits(fast.Weight) != math.Float64bits(naive.Weight) {
			t.Fatalf("idx %d: weight %v vs naive %v", idx, fast.Weight, naive.Weight)
		}
	}
}

// TestEstimateDeterministicAcrossWorkers is the seed contract: the
// same config yields a bit-identical Result at any worker count.
func TestEstimateDeterministicAcrossWorkers(t *testing.T) {
	base := Config{Process: tech.CDA07, Samples: 300, Sigma: 0.15, Shift: DefaultShift, Seed: 7}
	var want Result
	for i, workers := range []int{1, 2, 7} {
		cfg := base
		cfg.Workers = workers
		got, err := Estimate(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d: %+v != workers=1 result %+v", workers, got, want)
		}
	}
	if want.Fails == 0 {
		t.Fatal("expected the shifted estimate to observe failures at sigma=0.15")
	}
	if want.FailProb <= 0 || want.StdErr <= 0 || want.SigmaLevel <= 0 {
		t.Fatalf("degenerate estimate: %+v", want)
	}
}

// TestImportanceSamplingAgreesWithPlainMC checks unbiasedness where
// both estimators can see the event: at a large sigma the failure
// probability is high enough for plain MC, and the shifted estimate
// must agree within combined standard errors.
func TestImportanceSamplingAgreesWithPlainMC(t *testing.T) {
	plain, err := Estimate(context.Background(), Config{
		Process: tech.CDA07, Samples: 4000, Sigma: 0.25, Shift: 0, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := Estimate(context.Background(), Config{
		Process: tech.CDA07, Samples: 4000, Sigma: 0.25, Shift: 1.5, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Fails == 0 {
		t.Fatal("sigma=0.25 should fail visibly in plain MC")
	}
	diff := math.Abs(plain.FailProb - shifted.FailProb)
	tol := 4 * (plain.StdErr + shifted.StdErr)
	if diff > tol {
		t.Fatalf("IS estimate %.4g vs plain %.4g differ by %.3g > %.3g",
			shifted.FailProb, plain.FailProb, diff, tol)
	}
}

// TestTailSigmaLevels: at a tight sigma the cell is a multi-sigma
// design; importance sampling must resolve a sigma level plain MC at
// the same budget can barely see (a handful of failures at best).
func TestTailSigmaLevels(t *testing.T) {
	const samples = 2000
	plain, err := Estimate(context.Background(), Config{
		Process: tech.CDA07, Samples: samples, Sigma: 0.10, Shift: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := Estimate(context.Background(), Config{
		Process: tech.CDA07, Samples: samples, Sigma: 0.10, Shift: DefaultShift, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("plain: %d fails p=%.3g; shifted: %d fails p=%.3g sigma=%.2f",
		plain.Fails, plain.FailProb, shifted.Fails, shifted.FailProb, shifted.SigmaLevel)
	if shifted.Fails < 10 {
		t.Fatalf("importance sampling found only %d tail failures at sigma=0.10", shifted.Fails)
	}
	if shifted.Fails <= plain.Fails {
		t.Fatalf("shift did not boost tail hit rate: %d vs plain %d", shifted.Fails, plain.Fails)
	}
	if shifted.FailProb <= 0 || shifted.FailProb > 5e-2 {
		t.Fatalf("tail failure probability %.3g not in the rare-event regime", shifted.FailProb)
	}
	if shifted.SigmaLevel < 2 {
		t.Fatalf("sigma level %.2f implausibly low for sigma=0.10", shifted.SigmaLevel)
	}
}

func TestEstimateValidation(t *testing.T) {
	cases := []Config{
		{Process: nil, Samples: 10, Sigma: 0.1},
		{Process: tech.CDA07, Samples: 0, Sigma: 0.1},
		{Process: tech.CDA07, Samples: MaxSamples + 1, Sigma: 0.1},
		{Process: tech.CDA07, Samples: 10, Sigma: 0},
		{Process: tech.CDA07, Samples: 10, Sigma: math.NaN()},
		{Process: tech.CDA07, Samples: 10, Sigma: 0.6},
		{Process: tech.CDA07, Samples: 10, Sigma: 0.1, Shift: -1},
		{Process: tech.CDA07, Samples: 10, Sigma: 0.1, Shift: MaxShift + 1},
	}
	for i, cfg := range cases {
		if _, err := Estimate(context.Background(), cfg); cerr.CodeOf(err) != cerr.CodeInvalidParams {
			t.Errorf("case %d: err = %v, want CodeInvalidParams", i, err)
		}
	}
}

func TestEstimateCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Estimate(ctx, Config{Process: tech.CDA07, Samples: 500, Sigma: 0.1, Workers: 2})
	if cerr.CodeOf(err) != cerr.CodeBudgetExceeded {
		t.Fatalf("err = %v, want CodeBudgetExceeded", err)
	}
}

func TestEstimateChaosAborts(t *testing.T) {
	inj, err := chaos.Parse([]byte(`{"seed":1,"rules":[{"point":"mc.sample","mode":"error"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Estimate(context.Background(), Config{
		Process: tech.CDA07, Samples: 64, Sigma: 0.1, Workers: 1, Chaos: inj})
	if err == nil {
		t.Fatal("chaos error rule should abort the estimate")
	}
}

func TestStatsRecorded(t *testing.T) {
	reg := obs.NewRegistry()
	st := NewStats(reg)
	res, err := Estimate(context.Background(), Config{
		Process: tech.CDA07, Samples: 128, Sigma: 0.2, Shift: 1, Seed: 5, Stats: st})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Samples.Value(); got != 128 {
		t.Fatalf("samples counter = %d, want 128", got)
	}
	if st.Estimates.Value() != 1 {
		t.Fatal("estimates counter not incremented")
	}
	if uint64(res.Fails) != st.Failures.Value() {
		t.Fatalf("failures counter %d != result fails %d", st.Failures.Value(), res.Fails)
	}
	// Nil stats and nil registry must both be safe.
	var nilStats *Stats
	nilStats.record(res, 0)
	NewStats(nil).record(res, 0)
}

func TestArrayYield(t *testing.T) {
	if y := ArrayYield(0, 1<<20); y != 1 {
		t.Fatalf("zero fail prob: %g", y)
	}
	if y := ArrayYield(1, 8); y != 0 {
		t.Fatalf("certain failure: %g", y)
	}
	// 1 Mb at p=1e-7: ~0.9006.
	y := ArrayYield(1e-7, 1<<20)
	if math.Abs(y-math.Exp(-1e-7*float64(1<<20))) > 1e-6 {
		t.Fatalf("array yield %g", y)
	}
}

func TestSigmaLevelBounds(t *testing.T) {
	if sl := sigmaLevel(0.5, 100); math.Abs(sl) > 1e-12 {
		t.Fatalf("sigma(0.5) = %g, want 0", sl)
	}
	if sl := sigmaLevel(1, 100); sl != 0 {
		t.Fatalf("sigma(1) = %g", sl)
	}
	zero := sigmaLevel(0, 1000)
	if math.IsInf(zero, 0) || zero < 3 {
		t.Fatalf("sigma(0 fails, 1000 samples) = %g, want finite bound > 3", zero)
	}
	if a, b := sigmaLevel(1e-3, 100), sigmaLevel(1e-4, 100); b <= a {
		t.Fatalf("sigma level not monotone: %g !> %g", b, a)
	}
}

// TestRNGStreamsIndependent spot-checks that per-index streams do not
// correlate trivially and that norms have sane moments.
func TestRNGStreamsIndependent(t *testing.T) {
	var sum, sum2 float64
	const n = 20000
	for i := 0; i < n; i++ {
		r := newRNG(99, uint64(i))
		v := r.norm()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	vari := sum2/n - mean*mean
	if math.Abs(mean) > 0.03 || math.Abs(vari-1) > 0.05 {
		t.Fatalf("first-draw moments off: mean=%g var=%g", mean, vari)
	}
	a, b := newRNG(1, 5), newRNG(2, 5)
	if a.next() == b.next() {
		t.Fatal("different seeds produced identical streams")
	}
}
