package mcyield

import (
	"errors"
	"math"

	"repro/internal/cerr"
	"repro/internal/spice"
	"repro/internal/tech"
)

// Mode classifies what a sampled cell instance failed first, in the
// fixed test order hold → read → write (a sample stops at its first
// failing test, which keeps the tail cheap and the verdict
// deterministic).
type Mode uint8

const (
	// ModeNone: the sampled cell passed all three tests.
	ModeNone Mode = iota
	// ModeHold: with the word line off, the perturbed latch no longer
	// holds both storage nodes on the correct sides of the inverter
	// trip point (static-noise-margin collapse).
	ModeHold
	// ModeRead: the read disturbance through the access transistor
	// lifts the low storage node past the trip point — the cell would
	// flip during a read.
	ModeRead
	// ModeWrite: with the word line on and the bit line driven low,
	// the access transistor cannot pull the high storage node below
	// the opposing inverter's trip point — a write would not latch.
	ModeWrite
	// ModeDiverged: the DC solve failed to converge for this
	// perturbation; counted as a failing sample (a cell we cannot
	// prove works is not yield).
	ModeDiverged
)

func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeHold:
		return "hold"
	case ModeRead:
		return "read"
	case ModeWrite:
		return "write"
	case ModeDiverged:
		return "diverged"
	default:
		return "unknown"
	}
}

// cellDevices is how many MOSFETs carry per-sample variation: the six
// transistors of the 6T cell. The half-cell's three clones mirror the
// right-hand devices' draws rather than drawing independently.
const cellDevices = 6

// Device indices, in Circuit.M call order, for the full cell.
const (
	devPDL = iota // mn1: left pulldown
	devPUL        // mp1: left pullup
	devPDR        // mn2: right pulldown
	devPUR        // mp2: right pullup
	devACL        // ma1: left access
	devACR        // ma2: right access
)

// halfClone maps a full-cell device index to its clone's index in the
// half-cell session, or -1 when the half cell has no copy of it.
var halfClone = [cellDevices]int{devPDR: 0, devPUR: 1, devACR: 2, devPDL: -1, devPUL: -1, devACL: -1}

// defensiveAlpha is the probability mass the importance-sampling
// proposal keeps on the nominal (unshifted) distribution. Mixing at
// the sample level bounds every likelihood-ratio weight by
// 1/defensiveAlpha globally — without it the per-device ratios
// multiply across the six transistors and a center-region failure
// hit could carry an astronomically large weight, wrecking the
// estimator's variance.
const defensiveAlpha = 0.25

// Params are the per-sample variation knobs. Sigma is the relative
// threshold/transconductance spread: each device draws
// VT0 = nominal·(1 + Sigma·x) and KP = nominal·max(1 + Sigma·z, 0.05)
// with x, z standard normal. Shift is the importance-sampling mean
// shift applied to the threshold draws only, as a defensive two-sided
// mixture: with probability defensiveAlpha the whole sample draws
// plain, otherwise each device's x is drawn from
// ½N(−Shift,1) + ½N(+Shift,1), so every sign combination of device
// deviations gets boosted mass — SRAM failure regions are mixed-sign
// (a read disturb wants a strong access device AND a weak pulldown),
// which a one-sided shift would miss entirely. Sample reports the
// exact mixture likelihood ratio, bounded by 1/defensiveAlpha, that
// makes the estimator unbiased. Shift 0 is plain Monte-Carlo with
// weight 1.
type Params struct {
	Sigma float64
	Shift float64
	Seed  int64
}

// Sample is one classified Monte-Carlo draw.
type Sample struct {
	Mode   Mode    // ModeNone for a passing cell
	Weight float64 // likelihood ratio; exactly 1 when Shift == 0
}

// Fail reports whether the draw counts toward the failure
// probability.
func (s Sample) Fail() bool { return s.Mode != ModeNone }

// CellSim is the reusable per-worker simulation state for one 6T SRAM
// cell in one process: two circuits (the full cell for hold/read, a
// loop-broken half cell for the write and trip-point analyses)
// elaborated exactly once into spice Sessions, the nominal inverter
// trip voltage from a construction-time bisection, and nominal warm-
// start solutions for each test configuration. Sample then costs
// three warm-started DC re-solves and zero allocations. A CellSim is
// not safe for concurrent use: Estimate gives each worker its own.
type CellSim struct {
	vdd  float64
	trip float64 // nominal cross-inverter trip voltage (bisection)

	full        *spice.Session
	wl, bl, blb *spice.VarDC
	iq, iqb     int
	initHold    []float64
	initRead    []float64

	half           *spice.Session
	hvin, hwl, hbl *spice.VarDC
	iout           int
	initWrite      []float64

	// Cold rail-biased guesses: a strongly perturbed sample can make
	// Newton cycle from the nominal warm start even though the cell
	// has a perfectly good equilibrium; each test retries once from
	// its cold guess before the sample classifies as diverged.
	coldHold  []float64
	coldRead  []float64
	coldWrite []float64

	nomVT [cellDevices]float64
}

// Cell geometry in multiples of the drawn channel length: a classic
// read-stable, writable ratioing (pulldown 2× the access device,
// weak pullup).
const (
	wPD  = 4.0
	wPU  = 2.0
	wACC = 2.0
)

// tripTol is the bisection convergence window on the trip voltage.
const tripTol = 1e-6

// NewCellSim elaborates the cell for process p and precomputes the
// nominal trip point and warm-start states. This is the expensive,
// once-per-worker half of the split; Sample is the cheap half.
func NewCellSim(p *tech.Process) (*CellSim, error) {
	l := float64(p.Feature) * 1e-9
	vdd := p.VDD
	cs := &CellSim{vdd: vdd}

	// Full 6T cell. Device order must match the dev* constants.
	fc := spice.New()
	fc.V("vdd", "vdd", spice.DC(vdd))
	cs.wl = &spice.VarDC{}
	fc.V("wl", "wl", cs.wl)
	cs.bl = &spice.VarDC{Val: vdd}
	fc.V("bl", "bl", cs.bl)
	cs.blb = &spice.VarDC{Val: vdd}
	fc.V("blb", "blb", cs.blb)
	fc.M("mn1", "q", "qb", "0", tech.NMOS, wPD*l, l, p)
	fc.M("mp1", "q", "qb", "vdd", tech.PMOS, wPU*l, l, p)
	fc.M("mn2", "qb", "q", "0", tech.NMOS, wPD*l, l, p)
	fc.M("mp2", "qb", "q", "vdd", tech.PMOS, wPU*l, l, p)
	fc.M("ma1", "bl", "wl", "q", tech.NMOS, wACC*l, l, p)
	fc.M("ma2", "blb", "wl", "qb", tech.NMOS, wACC*l, l, p)
	full, err := spice.NewSession(fc)
	if err != nil {
		return nil, err
	}
	cs.full = full
	cs.iq, cs.iqb = full.NodeIndex("q"), full.NodeIndex("qb")
	for i := 0; i < cellDevices; i++ {
		cs.nomVT[i], _ = full.Nominal(i)
	}

	// Half cell: the right-hand inverter with its feedback input
	// exposed as a source, plus the right access transistor. Serves
	// the trip-point bisection (access off) and the write test
	// (input pinned at the would-be-written q=0).
	hc := spice.New()
	hc.V("vdd", "vdd", spice.DC(vdd))
	cs.hvin = &spice.VarDC{}
	hc.V("vin", "in", cs.hvin)
	cs.hwl = &spice.VarDC{}
	hc.V("wl", "wl", cs.hwl)
	cs.hbl = &spice.VarDC{Val: vdd}
	hc.V("bl", "bl", cs.hbl)
	hc.M("mn2", "out", "in", "0", tech.NMOS, wPD*l, l, p)
	hc.M("mp2", "out", "in", "vdd", tech.PMOS, wPU*l, l, p)
	hc.M("ma2", "bl", "wl", "out", tech.NMOS, wACC*l, l, p)
	half, err := spice.NewSession(hc)
	if err != nil {
		return nil, err
	}
	cs.half = half
	cs.iout = half.NodeIndex("out")

	if err := cs.calibrate(); err != nil {
		return nil, err
	}
	return cs, nil
}

// railInit seeds a session's initial guess with named node voltages.
func railInit(s *spice.Session, nodes map[string]float64) []float64 {
	init := make([]float64, s.Dim())
	for name, v := range nodes {
		if i := s.NodeIndex(name); i >= 0 {
			init[i] = v
		}
	}
	return init
}

// calibrate computes the nominal trip voltage by bisection on the
// half cell and the nominal warm-start solutions for each test.
func (cs *CellSim) calibrate() error {
	vdd := cs.vdd

	// Trip point: access off, sweep the inverter input until the
	// output crosses VDD/2. The warm start rides the previous
	// bisection solution, so each step is a short Newton run.
	cs.hwl.Val, cs.hbl.Val = 0, vdd
	guess := railInit(cs.half, map[string]float64{"vdd": vdd, "bl": vdd, "out": vdd})
	lo, hi := 0.0, vdd
	for hi-lo > tripTol {
		mid := 0.5 * (lo + hi)
		cs.hvin.Val = mid
		if err := cs.half.SolveFrom(guess); err != nil {
			return cerr.Wrap(cerr.CodeSimDiverged, err, "mcyield: trip bisection at vin=%g", mid)
		}
		copy(guess, cs.half.Solution())
		if cs.half.Solution()[cs.iout] > vdd/2 {
			lo = mid
		} else {
			hi = mid
		}
	}
	cs.trip = 0.5 * (lo + hi)

	// Nominal write state: input pinned low, word line on, bit line
	// low; the solution warm-starts every sample's write test.
	cs.coldWrite = railInit(cs.half, map[string]float64{"vdd": vdd, "out": vdd})
	cs.hvin.Val, cs.hwl.Val, cs.hbl.Val = 0, vdd, 0
	if err := cs.half.SolveFrom(cs.coldWrite); err != nil {
		return cerr.Wrap(cerr.CodeSimDiverged, err, "mcyield: nominal write solve")
	}
	cs.initWrite = append([]float64(nil), cs.half.Solution()...)

	// Nominal hold state: storing q=0 with the word line off. The
	// explicit qb=VDD bias in the guess picks the equilibrium.
	cs.coldHold = railInit(cs.full, map[string]float64{"vdd": vdd, "bl": vdd, "blb": vdd, "qb": vdd})
	cs.wl.Val, cs.bl.Val, cs.blb.Val = 0, vdd, vdd
	if err := cs.full.SolveFrom(cs.coldHold); err != nil {
		return cerr.Wrap(cerr.CodeSimDiverged, err, "mcyield: nominal hold solve")
	}
	cs.initHold = append([]float64(nil), cs.full.Solution()...)

	// Nominal read state: word line on, both bit lines precharged.
	cs.coldRead = railInit(cs.full, map[string]float64{"vdd": vdd, "bl": vdd, "blb": vdd, "qb": vdd, "wl": vdd})
	cs.wl.Val = vdd
	if err := cs.full.SolveFrom(cs.initHold); err != nil {
		return cerr.Wrap(cerr.CodeSimDiverged, err, "mcyield: nominal read solve")
	}
	cs.initRead = append([]float64(nil), cs.full.Solution()...)

	// Sanity: the nominal cell must pass its own tests, or every
	// sample verdict is noise.
	smp, err := cs.Sample(0, Params{Sigma: 0})
	if err != nil {
		return err
	}
	if smp.Fail() {
		return cerr.New(cerr.CodeInternal, "mcyield: nominal cell fails %s test (trip=%.3f)", smp.Mode, cs.trip)
	}
	return nil
}

// Trip returns the nominal inverter trip voltage the classifications
// compare against.
func (cs *CellSim) Trip() float64 { return cs.trip }

// Sample classifies one Monte-Carlo draw. The draw sequence is a pure
// function of (p.Seed, idx); the verdict is bit-identical to running
// the same index on a freshly constructed CellSim (see NaiveSample,
// which the differential tests and the benchmark baseline use).
// Divergent solves classify as ModeDiverged; a singular system aborts
// with cerr.CodeSimSingular — that is a solver failure, not a yield
// verdict.
func (cs *CellSim) Sample(idx uint64, p Params) (Sample, error) {
	r := newRNG(p.Seed, idx)
	w := 1.0
	shifted := p.Shift != 0 && r.uniform() >= defensiveAlpha
	mixRatio := 1.0 // Π q_d(x_d)/φ(x_d) over the threshold draws
	for d := 0; d < cellDevices; d++ {
		x := r.norm()
		z := r.norm()
		if shifted {
			// Two-sided mixture draw: x ~ ½N(−s,1) + ½N(+s,1).
			if r.next()&1 == 0 {
				x -= p.Shift
			} else {
				x += p.Shift
			}
		}
		if p.Shift != 0 {
			// q_d(x)/φ(x) = cosh(s·x)·exp(−s²/2) at the realized x —
			// the same density whichever branch generated the sample.
			mixRatio *= math.Cosh(p.Shift*x) * math.Exp(-0.5*p.Shift*p.Shift)
		}
		dVT0 := cs.nomVT[d] * p.Sigma * x // sign-aware: |VT| grows for x > 0
		kps := 1 + p.Sigma*z
		if kps < 0.05 {
			kps = 0.05
		}
		cs.full.Perturb(d, dVT0, kps)
		if h := halfClone[d]; h >= 0 {
			cs.half.Perturb(h, dVT0, kps)
		}
	}
	if p.Shift != 0 {
		// Likelihood ratio of the sample-level defensive mixture:
		// w = φ⃗/q⃗ = 1/(α + (1−α)·Π q_d/φ_d) ≤ 1/α.
		w = 1 / (defensiveAlpha + (1-defensiveAlpha)*mixRatio)
	}

	// Hold: word line off, bit lines precharged.
	cs.wl.Val, cs.bl.Val, cs.blb.Val = 0, cs.vdd, cs.vdd
	if err := solveRetry(cs.full, cs.initHold, cs.coldHold); err != nil {
		return cs.diverged(w, err)
	}
	sol := cs.full.Solution()
	if sol[cs.iq] > cs.trip || sol[cs.iqb] < cs.trip {
		return Sample{Mode: ModeHold, Weight: w}, nil
	}

	// Read: word line on; the low node must stay below trip.
	cs.wl.Val = cs.vdd
	if err := solveRetry(cs.full, cs.initRead, cs.coldRead); err != nil {
		return cs.diverged(w, err)
	}
	sol = cs.full.Solution()
	if sol[cs.iq] > cs.trip || sol[cs.iqb] < cs.trip {
		return Sample{Mode: ModeRead, Weight: w}, nil
	}

	// Write: loop broken at q=0, word line on, bit line low; the
	// access device must drag the high node below the opposing trip.
	cs.hvin.Val, cs.hwl.Val, cs.hbl.Val = 0, cs.vdd, 0
	if err := solveRetry(cs.half, cs.initWrite, cs.coldWrite); err != nil {
		return cs.diverged(w, err)
	}
	if cs.half.Solution()[cs.iout] > cs.trip {
		return Sample{Mode: ModeWrite, Weight: w}, nil
	}
	return Sample{Mode: ModeNone, Weight: w}, nil
}

// solveRetry runs a warm-started solve and, on divergence, retries
// once from the cold rail-biased guess: far-from-nominal samples can
// defeat the nominal warm start's basin without being broken cells.
// Singular systems are never retried — they indicate a solver
// failure, not a hard sample.
func solveRetry(s *spice.Session, warm, cold []float64) error {
	err := s.SolveFrom(warm)
	if err == nil || errors.Is(err, cerr.ErrSimSingular) {
		return err
	}
	return s.SolveFrom(cold)
}

func (cs *CellSim) diverged(w float64, err error) (Sample, error) {
	if errors.Is(err, cerr.ErrSimSingular) {
		return Sample{}, err
	}
	return Sample{Mode: ModeDiverged, Weight: w}, nil
}

// NaiveSample is the fresh-circuit-per-sample baseline: it elaborates
// a brand-new CellSim (circuits, sessions, trip bisection, nominal
// solves) and classifies one draw with it — exactly what a client
// would write against the one-shot OP API, and exactly what the
// batched path's ≥10× throughput claim in BenchmarkMCYield is
// measured against. Verdicts are bit-identical to the reused path.
func NaiveSample(p *tech.Process, idx uint64, sp Params) (Sample, error) {
	cs, err := NewCellSim(p)
	if err != nil {
		return Sample{}, err
	}
	return cs.Sample(idx, sp)
}
