package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/canon"
	"repro/internal/cerr"
	"repro/internal/chaos"
	"repro/internal/cjson"
	"repro/internal/compiler"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/sweep"
)

// RouteRetry is the gateway's per-peer exchange policy: two quick
// attempts, then move to the ring successor. Failover is the retry
// mechanism at this layer, so per-peer persistence must be short.
var RouteRetry = sweep.RetryPolicy{
	MaxAttempts:      2,
	BaseDelay:        50 * time.Millisecond,
	MaxDelay:         500 * time.Millisecond,
	BreakerThreshold: 3,
	BreakerCooldown:  3 * time.Second,
}

// GatewayConfig wires a Gateway.
type GatewayConfig struct {
	// Table is the fleet view (ring + health); required.
	Table *Table
	// Queue drives the sweep fan-out: each unique point becomes one
	// router job whose Run proxies the compile to the owning shard.
	// Required.
	Queue *jobs.Queue
	// Client performs peer exchanges; nil installs one with RouteRetry.
	Client *sweep.Client
	// Registry receives the gateway metrics; nil allocates a private
	// one.
	Registry *obs.Registry
	// Chaos, when non-nil, injects scripted faults at the proxy.route
	// point.
	Chaos *chaos.Injector
	// SweepMaxPoints caps one sweep's cross product; <= 0 takes the
	// sweep default.
	SweepMaxPoints int
	// JobRouteMemory bounds the job-id -> shard map (FIFO); <= 0 means
	// 4096.
	JobRouteMemory int
}

// Gateway is the federation front door: one HTTP surface that speaks
// the daemon's /v1 contract while fanning the work across a shard
// fleet. Compile submissions and key-addressed reads route to the
// key's ring owner (failing over to successors while a shard is
// down); job reads follow the shard that accepted the job; sweeps run
// on a local manager whose per-point compiles are proxied — so the
// sweep envelope a cluster serves is byte-identical to a single
// daemon's, because rows are computed by the same code from the same
// reports.
type Gateway struct {
	cfg    GatewayConfig
	client *sweep.Client
	sweeps *sweep.Manager
	mux    *http.ServeMux
	start  time.Time

	requests *obs.CounterVec // proxy_requests_total{peer}
	failures *obs.CounterVec // proxy_failures_total{peer}
	fallback *obs.Counter    // proxy_failovers_total

	jobMu    sync.Mutex
	jobPeer  map[string]string
	jobOrder []string

	codeByName map[string]cerr.Code
}

// NewGateway builds the gateway and its HTTP surface.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if cfg.Table == nil {
		return nil, cerr.New(cerr.CodeInvalidParams, "cluster: gateway needs a member table")
	}
	if cfg.Queue == nil {
		return nil, cerr.New(cerr.CodeInvalidParams, "cluster: gateway needs a router queue")
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.JobRouteMemory <= 0 {
		cfg.JobRouteMemory = 4096
	}
	g := &Gateway{
		cfg:        cfg,
		client:     cfg.Client,
		mux:        http.NewServeMux(),
		start:      time.Now(),
		jobPeer:    map[string]string{},
		codeByName: map[string]cerr.Code{},
	}
	if g.client == nil {
		g.client = sweep.NewClient("")
		g.client.Retry = RouteRetry
	}
	for _, c := range cerr.Codes() {
		g.codeByName[c.String()] = c
	}
	g.sweeps = sweep.NewManager(sweep.Config{
		Queue: cfg.Queue,
		// The gateway holds no artifacts; its cache is the fleet's. A
		// Lookup asks the key's owning shard for an already-cached
		// report, so cluster sweep rows carry the same cached flags a
		// warm single daemon would, and repeats cost zero recompiles.
		Lookup:    g.lookupFleet,
		Run:       g.runProxiedCompile,
		Registry:  cfg.Registry,
		MaxPoints: cfg.SweepMaxPoints,
	})
	g.registerMetrics()
	g.routes()
	return g, nil
}

// Handler returns the gateway's HTTP surface.
func (g *Gateway) Handler() http.Handler { return g.mux }

func (g *Gateway) registerMetrics() {
	r := g.cfg.Registry
	t := g.cfg.Table
	r.GaugeFunc("cluster_ring_version", "Monotonic ring-state version; bumps on every member up/down transition.",
		func() float64 { return float64(t.Version()) })
	r.GaugeFunc("cluster_peers_up", "Ring members currently passing health probes.",
		func() float64 { return float64(t.PeersUp()) })
	r.GaugeFunc("cluster_peers_total", "Ring member count.",
		func() float64 { return float64(t.PeersTotal()) })
	g.requests = r.CounterVec("proxy_requests_total", "Exchanges routed to each peer.", "peer")
	g.failures = r.CounterVec("proxy_failures_total", "Failed exchanges per peer (transport errors, open breakers, injected faults).", "peer")
	g.fallback = r.Counter("proxy_failovers_total", "Requests that fell over to a ring successor after the preferred shard failed.")
	// Pre-seed the per-peer children so the exposition is complete and
	// deterministic from the first scrape.
	for _, m := range t.Ring().Members() {
		g.requests.With(m)
		g.failures.With(m)
	}
}

// routes mounts the /v1 surface. Every /v1 pattern gets an enveloped
// 405 fallback carrying the Allow list.
func (g *Gateway) routes() {
	g.route("POST", "/v1/compile", g.handleCompile)
	g.route("GET", "/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) { g.proxyJob(w, r, "") })
	g.route("GET", "/v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) { g.proxyJob(w, r, "/result") })
	// GET patterns also serve HEAD (Go 1.22 mux), hence the wider
	// Allow lists.
	g.route("GET, HEAD", "/v1/jobs/{id}/artifact/{name}", func(w http.ResponseWriter, r *http.Request) {
		g.proxyJob(w, r, "/artifact/"+r.PathValue("name"))
	})
	g.route("GET, HEAD", "/v1/objects/{key}", g.handleObject)
	g.route("GET", "/v1/objects/{key}/report", g.handleObjectReport)
	g.route("POST", "/v1/sweeps", g.handleSweepCreate)
	g.route("GET", "/v1/sweeps/{id}", g.handleSweepStatus)
	g.route("GET", "/v1/sweeps/{id}/results", g.handleSweepResults)
	g.route("GET", "/v1/processes", func(w http.ResponseWriter, r *http.Request) { g.proxyAny(w, r, "/v1/processes") })
	g.route("GET", "/v1/tests", func(w http.ResponseWriter, r *http.Request) { g.proxyAny(w, r, "/v1/tests") })
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
}

// route registers handler for the allowed methods plus a bare-pattern
// fallback answering every other method with an enveloped 405 and the
// Allow list. allow is comma-separated ("GET, HEAD"); the first token
// is the pattern's mux method.
func (g *Gateway) route(allow, pattern string, h http.HandlerFunc) {
	first, _, _ := strings.Cut(allow, ",")
	g.mux.HandleFunc(first+" "+pattern, h)
	g.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		g.writeError(w, cerr.New(cerr.CodeBadRequest,
			"cluster: method %s not allowed on %s", r.Method, pattern),
			http.StatusMethodNotAllowed)
	})
}

// envelope mirrors the daemon's uniform /v1 response document, so
// gateway-authored responses are shape-identical to shard-authored
// ones.
type gwEnvelope struct {
	Job   any          `json:"job,omitempty"`
	Sweep any          `json:"sweep,omitempty"`
	Data  any          `json:"data,omitempty"`
	Error *gwWireError `json:"error"`
}

type gwWireError struct {
	Code    string `json:"code"`
	Stage   string `json:"stage,omitempty"`
	Message string `json:"message"`
}

func (g *Gateway) writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := cjson.MarshalIndent(v)
	if err != nil {
		http.Error(w, `{"error":{"code":"ERR_INTERNAL","message":"response encoding failed"}}`,
			http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	w.Write(b)
}

func (g *Gateway) writeError(w http.ResponseWriter, err error, statusOverride int) {
	status := statusOverride
	if status == 0 {
		status = server.HTTPStatus(err)
	}
	g.writeJSON(w, status, gwEnvelope{Error: &gwWireError{
		Code:    cerr.CodeOf(err).String(),
		Stage:   cerr.StageOf(err),
		Message: err.Error(),
	}})
}

// relay writes a shard's verbatim response to the client, preserving
// the contract-bearing headers.
func relay(w http.ResponseWriter, resp *sweep.RawResponse) {
	for _, h := range []string{"Content-Type", "Retry-After", "Content-Disposition"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	// HEAD responses carry their length in the header, not the body.
	if cl := resp.Header.Get("Content-Length"); cl != "" && len(resp.Body) == 0 {
		w.Header().Set("Content-Length", cl)
	} else {
		w.Header().Set("Content-Length", strconv.Itoa(len(resp.Body)))
	}
	w.WriteHeader(resp.Status)
	w.Write(resp.Body)
}

// exchange routes method+path(+body) to the key's owning shard,
// failing over through ring successors: a transport-level failure (or
// injected route fault) marks the peer down and moves on; any HTTP
// response is a terminal answer. accept, when non-nil, can veto a
// response (e.g. a 404 during key-addressed reads) to keep searching.
func (g *Gateway) exchange(ctx context.Context, key, method, path string, body []byte,
	accept func(status int) bool) (*sweep.RawResponse, string, error) {
	candidates := g.cfg.Table.Route(key)
	if len(candidates) == 0 {
		// Whole fleet marked down: the table may be stale (mass restart),
		// so try everyone in ring order rather than failing outright.
		candidates = g.cfg.Table.Ring().Successors(key, 0)
	}
	var lastErr error
	var lastResp *sweep.RawResponse
	failed := false
	for _, peer := range candidates {
		if failed {
			// Only count re-routes forced by a failed peer — a healthy
			// shard answering "not resident" (accept veto) is a miss,
			// not a failover.
			g.fallback.Inc()
			failed = false
		}
		_, end := obs.Start(ctx, "proxy.route")
		g.cfg.Chaos.Delay(chaos.PointProxyRoute)
		if err := g.cfg.Chaos.Fail(chaos.PointProxyRoute); err != nil {
			g.failures.With(peer).Inc()
			end(obs.String("peer", peer), obs.String("outcome", "chaos"))
			lastErr = err
			failed = true
			continue
		}
		g.requests.With(peer).Inc()
		resp, err := g.client.DoRaw(ctx, method, peer+path, body)
		if err != nil {
			g.failures.With(peer).Inc()
			g.cfg.Table.MarkDown(peer)
			end(obs.String("peer", peer), obs.String("outcome", "error"))
			lastErr = err
			failed = true
			if ctx.Err() != nil {
				break
			}
			continue
		}
		end(obs.String("peer", peer), obs.String("outcome", fmt.Sprintf("%d", resp.Status)))
		if accept != nil && !accept(resp.Status) {
			lastResp = resp
			continue
		}
		return resp, peer, nil
	}
	if lastResp != nil {
		// Every shard answered but none acceptably (e.g. nobody has the
		// object): the last real answer beats a synthetic error.
		return lastResp, "", nil
	}
	if lastErr == nil {
		lastErr = cerr.New(cerr.CodeOverloaded, "cluster: no shard reachable for key %s", key)
	}
	return nil, "", lastErr
}

// rememberJob binds a shard-issued job id to its shard (bounded FIFO)
// so job status/result/artifact reads route straight there.
func (g *Gateway) rememberJob(id, peer string) {
	if id == "" || peer == "" {
		return
	}
	g.jobMu.Lock()
	defer g.jobMu.Unlock()
	if _, seen := g.jobPeer[id]; !seen {
		g.jobOrder = append(g.jobOrder, id)
		for len(g.jobOrder) > g.cfg.JobRouteMemory {
			delete(g.jobPeer, g.jobOrder[0])
			g.jobOrder = g.jobOrder[1:]
		}
	}
	g.jobPeer[id] = peer
}

func (g *Gateway) peerForJob(id string) (string, bool) {
	g.jobMu.Lock()
	defer g.jobMu.Unlock()
	p, ok := g.jobPeer[id]
	return p, ok
}

// upMembers lists the routable fleet: up members in ring-member order,
// or everyone when the table says nobody is (stale-table fallback).
func (g *Gateway) upMembers() []string {
	all := g.cfg.Table.Ring().Members()
	up := make([]string, 0, len(all))
	for _, m := range all {
		if g.cfg.Table.Up(m) {
			up = append(up, m)
		}
	}
	if len(up) == 0 {
		return all
	}
	return up
}

// handleCompile is POST /v1/compile: canonicalize exactly as a shard
// would (same strict parse, same key), then forward the body verbatim
// to the key's owner.
func (g *Gateway) handleCompile(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, server.MaxRequestBody))
	if err != nil {
		g.writeError(w, cerr.Wrap(cerr.CodeInvalidParams, err, "cluster: request body"), http.StatusRequestEntityTooLarge)
		return
	}
	req, err := canon.ParseRequest(body)
	if err != nil {
		g.writeError(w, err, 0)
		return
	}
	params, err := req.Params()
	if err != nil {
		g.writeError(w, err, 0)
		return
	}
	key, err := canon.KeyOfParams(params)
	if err != nil {
		g.writeError(w, err, 0)
		return
	}
	path := "/v1/compile"
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	resp, peer, err := g.exchange(r.Context(), key, http.MethodPost, path, body, nil)
	if err != nil {
		g.writeError(w, err, 0)
		return
	}
	if id := jobIDOf(resp.Body); id != "" {
		g.rememberJob(id, peer)
	}
	relay(w, resp)
}

// jobIDOf extracts job.job_id from a compile response envelope, "" if
// absent.
func jobIDOf(body []byte) string {
	var env struct {
		Job struct {
			JobID string `json:"job_id"`
		} `json:"job"`
	}
	if json.Unmarshal(body, &env) != nil {
		return ""
	}
	return env.Job.JobID
}

// proxyJob is GET /v1/jobs/{id}[suffix]: follow the shard that issued
// the job when known, otherwise sweep the up fleet — the first answer
// that isn't "unknown job" wins.
func (g *Gateway) proxyJob(w http.ResponseWriter, r *http.Request, suffix string) {
	id := r.PathValue("id")
	path := "/v1/jobs/" + id + suffix
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	if peer, ok := g.peerForJob(id); ok {
		g.requests.With(peer).Inc()
		if resp, err := g.client.DoRaw(r.Context(), r.Method, peer+path, nil); err == nil {
			relay(w, resp)
			return
		}
		g.failures.With(peer).Inc()
		g.cfg.Table.MarkDown(peer)
	}
	var notFound *sweep.RawResponse
	for _, peer := range g.upMembers() {
		g.requests.With(peer).Inc()
		resp, err := g.client.DoRaw(r.Context(), r.Method, peer+path, nil)
		if err != nil {
			g.failures.With(peer).Inc()
			g.cfg.Table.MarkDown(peer)
			continue
		}
		if resp.Status != http.StatusNotFound {
			g.rememberJob(id, peer)
			relay(w, resp)
			return
		}
		notFound = resp
	}
	if notFound != nil {
		relay(w, notFound)
		return
	}
	g.writeError(w, cerr.New(cerr.CodeInvalidParams, "cluster: unknown job %q", id), http.StatusNotFound)
}

// handleObject is GET/HEAD /v1/objects/{key}: a key-addressed read
// routed by the ring. A shard that doesn't hold the object (404) is
// not final — after failover a key's artifact may live on a
// successor, so the search continues through the candidates.
func (g *Gateway) handleObject(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	resp, _, err := g.exchange(r.Context(), key, r.Method, "/v1/objects/"+key, nil,
		func(status int) bool { return status != http.StatusNotFound })
	if err != nil {
		g.writeError(w, err, 0)
		return
	}
	relay(w, resp)
}

// handleObjectReport is GET /v1/objects/{key}/report: the cached
// compile report for a content key, never triggering a compile. Like
// handleObject, a 404 keeps searching ring successors — after
// failover the report may be resident on a non-owner.
func (g *Gateway) handleObjectReport(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	resp, _, err := g.exchange(r.Context(), key, http.MethodGet, "/v1/objects/"+key+"/report", nil,
		func(status int) bool { return status != http.StatusNotFound })
	if err != nil {
		g.writeError(w, err, 0)
		return
	}
	relay(w, resp)
}

// proxyAny serves fleet-invariant catalogs (/v1/processes, /v1/tests)
// from the first up shard that answers.
func (g *Gateway) proxyAny(w http.ResponseWriter, r *http.Request, path string) {
	var lastErr error
	for _, peer := range g.upMembers() {
		g.requests.With(peer).Inc()
		resp, err := g.client.DoRaw(r.Context(), http.MethodGet, peer+path, nil)
		if err != nil {
			g.failures.With(peer).Inc()
			g.cfg.Table.MarkDown(peer)
			lastErr = err
			continue
		}
		relay(w, resp)
		return
	}
	if lastErr == nil {
		lastErr = cerr.New(cerr.CodeOverloaded, "cluster: no shard reachable")
	}
	g.writeError(w, lastErr, 0)
}

// handleSweepCreate is POST /v1/sweeps: the sweep runs on the
// gateway's own manager; each unique point's compile is proxied to
// its owning shard by runProxiedCompile. Row computation is
// deterministic from the report metrics, so the merged results
// envelope is byte-identical to a single daemon's.
func (g *Gateway) handleSweepCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, server.MaxRequestBody))
	if err != nil {
		g.writeError(w, cerr.Wrap(cerr.CodeBadRequest, err, "cluster: sweep body"), http.StatusRequestEntityTooLarge)
		return
	}
	spec, err := sweep.ParseSpec(body)
	if err != nil {
		g.writeError(w, err, 0)
		return
	}
	sw, err := g.sweeps.Create(spec)
	if err != nil {
		g.writeError(w, err, 0)
		return
	}
	g.writeJSON(w, http.StatusAccepted, gwEnvelope{Sweep: sw.Status()})
}

func (g *Gateway) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	sw, ok := g.sweeps.Get(r.PathValue("id"))
	if !ok {
		g.writeError(w, cerr.New(cerr.CodeInvalidParams, "cluster: unknown sweep %q", r.PathValue("id")), http.StatusNotFound)
		return
	}
	g.writeJSON(w, http.StatusOK, gwEnvelope{Sweep: sw.Status()})
}

func (g *Gateway) handleSweepResults(w http.ResponseWriter, r *http.Request) {
	sw, ok := g.sweeps.Get(r.PathValue("id"))
	if !ok {
		g.writeError(w, cerr.New(cerr.CodeInvalidParams, "cluster: unknown sweep %q", r.PathValue("id")), http.StatusNotFound)
		return
	}
	g.writeJSON(w, http.StatusOK, gwEnvelope{Data: sw.Results()})
}

// lookupFleet is the gateway sweep manager's Lookup seam: ask the
// key's owning shard (then ring successors) for an already-cached
// report. A hit makes the point a cached row, exactly as a warm
// single daemon's Lookup would; any miss or failure just means the
// point routes a compile.
func (g *Gateway) lookupFleet(key string) (*cache.Entry, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, _, err := g.exchange(ctx, key, http.MethodGet, "/v1/objects/"+key+"/report", nil,
		func(status int) bool { return status == http.StatusOK })
	if err != nil || resp.Status != http.StatusOK {
		return nil, false
	}
	var env struct {
		Data struct {
			Key      string          `json:"key"`
			Degraded bool            `json:"degraded"`
			Report   json.RawMessage `json:"report"`
		} `json:"data"`
	}
	if json.Unmarshal(resp.Body, &env) != nil || env.Data.Key != key || len(env.Data.Report) == 0 {
		return nil, false
	}
	return &cache.Entry{Key: key, Report: env.Data.Report, Degraded: env.Data.Degraded}, true
}

// errPeerLost marks a proxied compile that was accepted by a shard
// which then became unreachable — the one error class worth a full
// re-route (the work is idempotent; a successor recompiles or serves
// its cache).
var errPeerLost = cerr.New(cerr.CodeInternal, "cluster: shard lost after accepting the job")

// runProxiedCompile is the gateway sweep manager's Run seam: POST the
// point's normalized wire request to the owning shard and build the
// entry from the response. One full re-route is allowed when a shard
// dies between accepting and finishing a compile.
func (g *Gateway) runProxiedCompile(ctx context.Context, key string, req canon.Request, _ compiler.Params) (*cache.Entry, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, cerr.Wrap(cerr.CodeInternal, err, "cluster: encoding request for %s", key)
	}
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		resp, peer, xerr := g.exchange(ctx, key, http.MethodPost, "/v1/compile", body, nil)
		if xerr != nil {
			return nil, xerr
		}
		entry, eerr := g.entryFromCompileResponse(ctx, peer, key, resp)
		if eerr == errPeerLost && ctx.Err() == nil {
			lastErr = eerr
			continue // the dead peer is marked down; re-route to a successor
		}
		return entry, eerr
	}
	return nil, lastErr
}

// shardJob is the slice of a shard's compile/job envelope the gateway
// consumes.
type shardJob struct {
	Key      string          `json:"key"`
	JobID    string          `json:"job_id"`
	State    string          `json:"state"`
	Degraded bool            `json:"degraded"`
	Report   json.RawMessage `json:"report"`
}

// entryFromCompileResponse turns a shard's compile response into a
// cache entry: a synchronous 200 carries the report inline; a 202 job
// handle (the shard's sync-wait expired) is polled to completion.
func (g *Gateway) entryFromCompileResponse(ctx context.Context, peer, key string, resp *sweep.RawResponse) (*cache.Entry, error) {
	var env struct {
		Job   shardJob     `json:"job"`
		Error *gwWireError `json:"error"`
	}
	if err := json.Unmarshal(resp.Body, &env); err != nil {
		return nil, cerr.Wrap(cerr.CodeInternal, err, "cluster: shard %s returned non-envelope JSON (status %d)", peer, resp.Status)
	}
	if env.Error != nil {
		return nil, g.wireToErr(env.Error)
	}
	if resp.Status == http.StatusAccepted || len(env.Job.Report) == 0 {
		return g.pollJobResult(ctx, peer, env.Job.JobID, key)
	}
	if env.Job.Key != key {
		return nil, cerr.New(cerr.CodeInternal, "cluster: shard %s answered key %s for %s", peer, env.Job.Key, key)
	}
	return &cache.Entry{Key: key, Report: env.Job.Report, Degraded: env.Job.Degraded}, nil
}

// wireToErr rebuilds a shard's typed error locally, preserving the
// code (so sweep point error codes match a single daemon's) and the
// stage.
func (g *Gateway) wireToErr(we *gwWireError) error {
	code, ok := g.codeByName[we.Code]
	if !ok {
		code = cerr.CodeInternal
	}
	err := error(cerr.New(code, "%s", we.Message))
	if we.Stage != "" {
		err = cerr.WithStage(we.Stage, err)
	}
	return err
}

// pollJobResult follows a 202 job handle on the issuing shard until
// the job finishes. A transport failure here reports errPeerLost so
// the caller can re-route the whole compile.
func (g *Gateway) pollJobResult(ctx context.Context, peer, jobID, key string) (*cache.Entry, error) {
	if jobID == "" {
		return nil, cerr.New(cerr.CodeInternal, "cluster: shard %s answered without report or job id", peer)
	}
	path := peer + "/v1/jobs/" + jobID + "/result"
	for {
		resp, err := g.client.DoRaw(ctx, http.MethodGet, path, nil)
		if err != nil {
			g.cfg.Table.MarkDown(peer)
			if ctx.Err() != nil {
				return nil, cerr.Wrap(cerr.CodeBudgetExceeded, ctx.Err(), "cluster: waiting on %s", jobID)
			}
			return nil, errPeerLost
		}
		if resp.Status == http.StatusAccepted {
			select {
			case <-ctx.Done():
				return nil, cerr.Wrap(cerr.CodeBudgetExceeded, ctx.Err(), "cluster: waiting on %s", jobID)
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		var env struct {
			Data  json.RawMessage `json:"data"`
			Error *gwWireError    `json:"error"`
		}
		if err := json.Unmarshal(resp.Body, &env); err != nil {
			return nil, cerr.Wrap(cerr.CodeInternal, err, "cluster: job result from %s", peer)
		}
		if env.Error != nil {
			return nil, g.wireToErr(env.Error)
		}
		if len(env.Data) == 0 {
			return nil, cerr.New(cerr.CodeInternal, "cluster: empty job result from %s", peer)
		}
		return &cache.Entry{Key: key, Report: env.Data}, nil
	}
}

// handleHealthz reports the gateway's own state plus the fleet view:
// per-peer up/down, the ring version, and role identification for
// operators telling gateways from shards.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	t := g.cfg.Table
	peers := map[string]string{}
	for _, m := range t.Ring().Members() {
		state := "up"
		if !t.Up(m) {
			state = "down"
		}
		peers[m] = state
	}
	status := http.StatusOK
	state := "ok"
	if t.PeersUp() == 0 {
		// A gateway with no reachable shard cannot serve compiles.
		status = http.StatusServiceUnavailable
		state = "degraded"
	}
	g.writeJSON(w, status, map[string]any{
		"status":       state,
		"role":         "gateway",
		"uptime_s":     time.Since(g.start).Seconds(),
		"ring_version": t.Version(),
		"peers_up":     t.PeersUp(),
		"peers_total":  t.PeersTotal(),
		"peers":        peers,
	})
}

// handleMetrics mirrors the daemon's dual exposition: JSON snapshot by
// default, Prometheus text 0.0.4 with ?format=prometheus.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		g.cfg.Registry.WritePrometheus(w)
		return
	}
	g.writeJSON(w, http.StatusOK, map[string]any{
		"obs":      g.cfg.Registry.Snapshot(),
		"queue":    g.cfg.Queue.Stats(),
		"uptime_s": time.Since(g.start).Seconds(),
	})
}
