package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/canon"
	"repro/internal/cerr"
	"repro/internal/chaos"
	"repro/internal/cjson"
	"repro/internal/compiler"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/sweep"
)

// RouteRetry is the gateway's per-peer exchange policy: two quick
// attempts, then move to the ring successor. Failover is the retry
// mechanism at this layer, so per-peer persistence must be short.
var RouteRetry = sweep.RetryPolicy{
	MaxAttempts:      2,
	BaseDelay:        50 * time.Millisecond,
	MaxDelay:         500 * time.Millisecond,
	BreakerThreshold: 3,
	BreakerCooldown:  3 * time.Second,
}

// GatewayConfig wires a Gateway.
type GatewayConfig struct {
	// Table is the fleet view (ring + health); required.
	Table *Table
	// Queue drives the sweep fan-out: each unique point becomes one
	// router job whose Run proxies the compile to the owning shard.
	// Required.
	Queue *jobs.Queue
	// Client performs peer exchanges; nil installs one with RouteRetry.
	Client *sweep.Client
	// Registry receives the gateway metrics; nil allocates a private
	// one.
	Registry *obs.Registry
	// Chaos, when non-nil, injects scripted faults at the proxy.route
	// point and into the sweep manager's mc.sample statistical-yield
	// estimates.
	Chaos *chaos.Injector
	// SweepMaxPoints caps one sweep's cross product; <= 0 takes the
	// sweep default.
	SweepMaxPoints int
	// JobRouteMemory bounds the job-id -> shard map (FIFO); <= 0 means
	// 4096.
	JobRouteMemory int
	// TraceBudget bounds retained per-job gateway traces for the merged
	// GET /debug/trace/{id} view (FIFO); <= 0 means 512.
	TraceBudget int
	// FleetScrapeTimeout bounds each per-peer exchange of a
	// GET /metrics?scope=fleet scrape; <= 0 means 2s.
	FleetScrapeTimeout time.Duration
	// SSEHeartbeat is the keep-alive cadence of the sweep event stream;
	// <= 0 means sweep.DefaultEventHeartbeat.
	SSEHeartbeat time.Duration
}

// fleetScrapeFanout bounds how many peers one fleet scrape queries
// concurrently.
const fleetScrapeFanout = 8

// Gateway is the federation front door: one HTTP surface that speaks
// the daemon's /v1 contract while fanning the work across a shard
// fleet. Compile submissions and key-addressed reads route to the
// key's ring owner (failing over to successors while a shard is
// down); job reads follow the shard that accepted the job; sweeps run
// on a local manager whose per-point compiles are proxied — so the
// sweep envelope a cluster serves is byte-identical to a single
// daemon's, because rows are computed by the same code from the same
// reports.
type Gateway struct {
	cfg    GatewayConfig
	client *sweep.Client
	sweeps *sweep.Manager
	mux    *http.ServeMux
	start  time.Time

	requests     *obs.CounterVec // proxy_requests_total{peer}
	failures     *obs.CounterVec // proxy_failures_total{peer}
	fallback     *obs.Counter    // proxy_failovers_total
	scrapeErrors *obs.Counter    // fleet_scrape_errors_total
	scrapeDur    *obs.Histogram  // fleet_scrape_duration_seconds

	jobMu    sync.Mutex
	jobPeer  map[string]string
	jobOrder []string
	// jobTrace retains the gateway-side trace of each routed compile
	// (FIFO, TraceBudget) — the base span set of the merged
	// /debug/trace/{id} view.
	jobTrace   map[string]*obs.Trace
	traceOrder []string

	codeByName map[string]cerr.Code
}

// NewGateway builds the gateway and its HTTP surface.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if cfg.Table == nil {
		return nil, cerr.New(cerr.CodeInvalidParams, "cluster: gateway needs a member table")
	}
	if cfg.Queue == nil {
		return nil, cerr.New(cerr.CodeInvalidParams, "cluster: gateway needs a router queue")
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.JobRouteMemory <= 0 {
		cfg.JobRouteMemory = 4096
	}
	if cfg.TraceBudget <= 0 {
		cfg.TraceBudget = 512
	}
	if cfg.FleetScrapeTimeout <= 0 {
		cfg.FleetScrapeTimeout = 2 * time.Second
	}
	g := &Gateway{
		cfg:        cfg,
		client:     cfg.Client,
		mux:        http.NewServeMux(),
		start:      time.Now(),
		jobPeer:    map[string]string{},
		jobTrace:   map[string]*obs.Trace{},
		codeByName: map[string]cerr.Code{},
	}
	if g.client == nil {
		g.client = sweep.NewClient("")
		g.client.Retry = RouteRetry
	}
	for _, c := range cerr.Codes() {
		g.codeByName[c.String()] = c
	}
	g.sweeps = sweep.NewManager(sweep.Config{
		Queue: cfg.Queue,
		// The gateway holds no artifacts; its cache is the fleet's. A
		// Lookup asks the key's owning shard for an already-cached
		// report, so cluster sweep rows carry the same cached flags a
		// warm single daemon would, and repeats cost zero recompiles.
		Lookup:    g.lookupFleet,
		Run:       g.runProxiedCompile,
		Registry:  cfg.Registry,
		Chaos:     cfg.Chaos,
		MaxPoints: cfg.SweepMaxPoints,
	})
	g.registerMetrics()
	g.routes()
	return g, nil
}

// Handler returns the gateway's HTTP surface.
func (g *Gateway) Handler() http.Handler { return g.mux }

func (g *Gateway) registerMetrics() {
	r := g.cfg.Registry
	t := g.cfg.Table
	r.GaugeFunc("cluster_ring_version", "Monotonic ring-state version; bumps on every member up/down transition.",
		func() float64 { return float64(t.Version()) })
	r.GaugeFunc("cluster_peers_up", "Ring members currently passing health probes.",
		func() float64 { return float64(t.PeersUp()) })
	r.GaugeFunc("cluster_peers_total", "Ring member count.",
		func() float64 { return float64(t.PeersTotal()) })
	g.requests = r.CounterVec("proxy_requests_total", "Exchanges routed to each peer.", "peer")
	g.failures = r.CounterVec("proxy_failures_total", "Failed exchanges per peer (transport errors, open breakers, injected faults).", "peer")
	g.fallback = r.Counter("proxy_failovers_total", "Requests that fell over to a ring successor after the preferred shard failed.")
	g.scrapeErrors = r.Counter("fleet_scrape_errors_total",
		"Per-peer failures (transport, bad status, unparseable exposition, injected faults) during fleet metric scrapes.")
	g.scrapeDur = r.Histogram("fleet_scrape_duration_seconds",
		"Wall-clock time of one whole GET /metrics?scope=fleet scrape across the fleet.", nil)
	// Pre-seed the per-peer children so the exposition is complete and
	// deterministic from the first scrape.
	for _, m := range t.Ring().Members() {
		g.requests.With(m)
		g.failures.With(m)
	}
}

// routes mounts the /v1 surface. Every /v1 pattern gets an enveloped
// 405 fallback carrying the Allow list.
func (g *Gateway) routes() {
	g.route("POST", "/v1/compile", g.handleCompile)
	g.route("GET", "/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) { g.proxyJob(w, r, "") })
	g.route("GET", "/v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) { g.proxyJob(w, r, "/result") })
	// GET patterns also serve HEAD (Go 1.22 mux), hence the wider
	// Allow lists.
	g.route("GET, HEAD", "/v1/jobs/{id}/artifact/{name}", func(w http.ResponseWriter, r *http.Request) {
		g.proxyJob(w, r, "/artifact/"+r.PathValue("name"))
	})
	g.route("GET, HEAD", "/v1/objects/{key}", g.handleObject)
	g.route("GET", "/v1/objects/{key}/report", g.handleObjectReport)
	g.route("POST", "/v1/sweeps", g.handleSweepCreate)
	g.route("GET", "/v1/sweeps/{id}", g.handleSweepStatus)
	g.route("GET", "/v1/sweeps/{id}/results", g.handleSweepResults)
	g.route("GET", "/v1/sweeps/{id}/events", g.handleSweepEvents)
	g.route("GET", "/v1/processes", func(w http.ResponseWriter, r *http.Request) { g.proxyAny(w, r, "/v1/processes") })
	g.route("GET", "/v1/tests", func(w http.ResponseWriter, r *http.Request) { g.proxyAny(w, r, "/v1/tests") })
	g.route("GET", "/v1/debug/traces/{id}", g.handleTraceV1)
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	// Deprecated alias of /v1/debug/traces/{id}.
	g.mux.HandleFunc("GET /debug/trace/{id}", g.handleTrace)
}

// route registers handler for the allowed methods plus a bare-pattern
// fallback answering every other method with an enveloped 405 and the
// Allow list. allow is comma-separated ("GET, HEAD"); the first token
// is the pattern's mux method.
func (g *Gateway) route(allow, pattern string, h http.HandlerFunc) {
	first, _, _ := strings.Cut(allow, ",")
	g.mux.HandleFunc(first+" "+pattern, h)
	g.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		g.writeError(w, cerr.New(cerr.CodeBadRequest,
			"cluster: method %s not allowed on %s", r.Method, pattern),
			http.StatusMethodNotAllowed)
	})
}

// envelope mirrors the daemon's uniform /v1 response document, so
// gateway-authored responses are shape-identical to shard-authored
// ones.
type gwEnvelope struct {
	Job   any          `json:"job,omitempty"`
	Sweep any          `json:"sweep,omitempty"`
	Data  any          `json:"data,omitempty"`
	Page  *sweep.Page  `json:"page,omitempty"`
	Error *gwWireError `json:"error"`
}

type gwWireError struct {
	Code    string `json:"code"`
	Stage   string `json:"stage,omitempty"`
	Message string `json:"message"`
}

func (g *Gateway) writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := cjson.MarshalIndent(v)
	if err != nil {
		http.Error(w, `{"error":{"code":"ERR_INTERNAL","message":"response encoding failed"}}`,
			http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	w.Write(b)
}

func (g *Gateway) writeError(w http.ResponseWriter, err error, statusOverride int) {
	status := statusOverride
	if status == 0 {
		status = server.HTTPStatus(err)
	}
	g.writeJSON(w, status, gwEnvelope{Error: &gwWireError{
		Code:    cerr.CodeOf(err).String(),
		Stage:   cerr.StageOf(err),
		Message: err.Error(),
	}})
}

// relay writes a shard's verbatim response to the client, preserving
// the contract-bearing headers — including Retry-After on shed load
// and every X-* diagnostic header, so a 429/5xx proxied through the
// gateway keeps the shard's backoff hint and forensics intact.
func relay(w http.ResponseWriter, resp *sweep.RawResponse) {
	for _, h := range []string{"Content-Type", "Retry-After", "Content-Disposition"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	for k, vs := range resp.Header {
		if !strings.HasPrefix(http.CanonicalHeaderKey(k), "X-") {
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	// HEAD responses carry their length in the header, not the body.
	if cl := resp.Header.Get("Content-Length"); cl != "" && len(resp.Body) == 0 {
		w.Header().Set("Content-Length", cl)
	} else {
		w.Header().Set("Content-Length", strconv.Itoa(len(resp.Body)))
	}
	w.WriteHeader(resp.Status)
	w.Write(resp.Body)
}

// exchange routes method+path(+body) to the key's owning shard,
// failing over through ring successors: a transport-level failure (or
// injected route fault) marks the peer down and moves on; any HTTP
// response is a terminal answer. accept, when non-nil, can veto a
// response (e.g. a 404 during key-addressed reads) to keep searching.
func (g *Gateway) exchange(ctx context.Context, key, method, path string, body []byte,
	accept func(status int) bool) (*sweep.RawResponse, string, error) {
	candidates := g.cfg.Table.Route(key)
	if len(candidates) == 0 {
		// Whole fleet marked down: the table may be stale (mass restart),
		// so try everyone in ring order rather than failing outright.
		candidates = g.cfg.Table.Ring().Successors(key, 0)
	}
	var lastErr error
	var lastResp *sweep.RawResponse
	failed := false
	for _, peer := range candidates {
		if failed {
			// Only count re-routes forced by a failed peer — a healthy
			// shard answering "not resident" (accept veto) is a miss,
			// not a failover.
			g.fallback.Inc()
			failed = false
		}
		// The span-derived context flows into DoRaw so the injected
		// traceparent names proxy.route as the remote parent — the span
		// shard-side compile stages nest under after the trace merge.
		rctx, end := obs.Start(ctx, "proxy.route")
		g.cfg.Chaos.Delay(chaos.PointProxyRoute)
		if err := g.cfg.Chaos.Fail(chaos.PointProxyRoute); err != nil {
			g.failures.With(peer).Inc()
			end(obs.String("peer", peer), obs.String("outcome", "chaos"))
			lastErr = err
			failed = true
			continue
		}
		g.requests.With(peer).Inc()
		resp, err := g.client.DoRaw(rctx, method, peer+path, body)
		if err != nil {
			g.failures.With(peer).Inc()
			g.cfg.Table.MarkDown(peer)
			end(obs.String("peer", peer), obs.String("outcome", "error"))
			lastErr = err
			failed = true
			if ctx.Err() != nil {
				break
			}
			continue
		}
		end(obs.String("peer", peer), obs.String("outcome", fmt.Sprintf("%d", resp.Status)))
		if accept != nil && !accept(resp.Status) {
			lastResp = resp
			continue
		}
		return resp, peer, nil
	}
	if lastResp != nil {
		// Every shard answered but none acceptably (e.g. nobody has the
		// object): the last real answer beats a synthetic error.
		return lastResp, "", nil
	}
	if lastErr == nil {
		lastErr = cerr.New(cerr.CodeOverloaded, "cluster: no shard reachable for key %s", key)
	}
	return nil, "", lastErr
}

// rememberJob binds a shard-issued job id to its shard (bounded FIFO)
// so job status/result/artifact reads route straight there.
func (g *Gateway) rememberJob(id, peer string) {
	if id == "" || peer == "" {
		return
	}
	g.jobMu.Lock()
	defer g.jobMu.Unlock()
	if _, seen := g.jobPeer[id]; !seen {
		g.jobOrder = append(g.jobOrder, id)
		for len(g.jobOrder) > g.cfg.JobRouteMemory {
			delete(g.jobPeer, g.jobOrder[0])
			g.jobOrder = g.jobOrder[1:]
		}
	}
	g.jobPeer[id] = peer
}

func (g *Gateway) peerForJob(id string) (string, bool) {
	g.jobMu.Lock()
	defer g.jobMu.Unlock()
	p, ok := g.jobPeer[id]
	return p, ok
}

// rememberTrace retains the gateway-side trace of a routed compile
// (bounded FIFO, like the daemon's trace budget).
func (g *Gateway) rememberTrace(id string, tr *obs.Trace) {
	if id == "" || tr == nil {
		return
	}
	g.jobMu.Lock()
	defer g.jobMu.Unlock()
	if _, seen := g.jobTrace[id]; !seen {
		g.traceOrder = append(g.traceOrder, id)
		for len(g.traceOrder) > g.cfg.TraceBudget {
			delete(g.jobTrace, g.traceOrder[0])
			g.traceOrder = g.traceOrder[1:]
		}
	}
	g.jobTrace[id] = tr
}

// traceForJob resolves a retained gateway trace by job id.
func (g *Gateway) traceForJob(id string) (*obs.Trace, bool) {
	g.jobMu.Lock()
	defer g.jobMu.Unlock()
	tr, ok := g.jobTrace[id]
	return tr, ok
}

// upMembers lists the routable fleet: up members in ring-member order,
// or everyone when the table says nobody is (stale-table fallback).
func (g *Gateway) upMembers() []string {
	all := g.cfg.Table.Ring().Members()
	up := make([]string, 0, len(all))
	for _, m := range all {
		if g.cfg.Table.Up(m) {
			up = append(up, m)
		}
	}
	if len(up) == 0 {
		return all
	}
	return up
}

// handleCompile is POST /v1/compile: canonicalize exactly as a shard
// would (same strict parse, same key), then forward the body verbatim
// to the key's owner.
func (g *Gateway) handleCompile(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, server.MaxRequestBody))
	if err != nil {
		g.writeError(w, cerr.Wrap(cerr.CodeInvalidParams, err, "cluster: request body"), http.StatusRequestEntityTooLarge)
		return
	}
	req, err := canon.ParseRequest(body)
	if err != nil {
		g.writeError(w, err, 0)
		return
	}
	params, err := req.Params()
	if err != nil {
		g.writeError(w, err, 0)
		return
	}
	key, err := canon.KeyOfParams(params)
	if err != nil {
		g.writeError(w, err, 0)
		return
	}
	path := "/v1/compile"
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	// Every routed compile records a gateway trace: the proxy.route
	// spans land here, the wire identity travels to the shard, and
	// GET /debug/trace/{job_id} merges both sides back together.
	tr := obs.NewTrace("")
	ctx := obs.WithTrace(r.Context(), tr)
	resp, peer, err := g.exchange(ctx, key, http.MethodPost, path, body, nil)
	if err != nil {
		g.writeError(w, err, 0)
		return
	}
	if id := jobIDOf(resp.Body); id != "" {
		g.rememberJob(id, peer)
		g.rememberTrace(id, tr)
	}
	relay(w, resp)
}

// jobIDOf extracts job.job_id from a compile response envelope, "" if
// absent.
func jobIDOf(body []byte) string {
	var env struct {
		Job struct {
			JobID string `json:"job_id"`
		} `json:"job"`
	}
	if json.Unmarshal(body, &env) != nil {
		return ""
	}
	return env.Job.JobID
}

// proxyJob is GET /v1/jobs/{id}[suffix]: follow the shard that issued
// the job when known, otherwise sweep the up fleet — the first answer
// that isn't "unknown job" wins.
func (g *Gateway) proxyJob(w http.ResponseWriter, r *http.Request, suffix string) {
	id := r.PathValue("id")
	path := "/v1/jobs/" + id + suffix
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	if peer, ok := g.peerForJob(id); ok {
		g.requests.With(peer).Inc()
		if resp, err := g.client.DoRaw(r.Context(), r.Method, peer+path, nil); err == nil {
			relay(w, resp)
			return
		}
		g.failures.With(peer).Inc()
		g.cfg.Table.MarkDown(peer)
	}
	var notFound *sweep.RawResponse
	for _, peer := range g.upMembers() {
		g.requests.With(peer).Inc()
		resp, err := g.client.DoRaw(r.Context(), r.Method, peer+path, nil)
		if err != nil {
			g.failures.With(peer).Inc()
			g.cfg.Table.MarkDown(peer)
			continue
		}
		if resp.Status != http.StatusNotFound {
			g.rememberJob(id, peer)
			relay(w, resp)
			return
		}
		notFound = resp
	}
	if notFound != nil {
		relay(w, notFound)
		return
	}
	g.writeError(w, cerr.New(cerr.CodeInvalidParams, "cluster: unknown job %q", id), http.StatusNotFound)
}

// handleObject is GET/HEAD /v1/objects/{key}: a key-addressed read
// routed by the ring. A shard that doesn't hold the object (404) is
// not final — after failover a key's artifact may live on a
// successor, so the search continues through the candidates.
func (g *Gateway) handleObject(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	resp, _, err := g.exchange(r.Context(), key, r.Method, "/v1/objects/"+key, nil,
		func(status int) bool { return status != http.StatusNotFound })
	if err != nil {
		g.writeError(w, err, 0)
		return
	}
	relay(w, resp)
}

// handleObjectReport is GET /v1/objects/{key}/report: the cached
// compile report for a content key, never triggering a compile. Like
// handleObject, a 404 keeps searching ring successors — after
// failover the report may be resident on a non-owner.
func (g *Gateway) handleObjectReport(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	resp, _, err := g.exchange(r.Context(), key, http.MethodGet, "/v1/objects/"+key+"/report", nil,
		func(status int) bool { return status != http.StatusNotFound })
	if err != nil {
		g.writeError(w, err, 0)
		return
	}
	relay(w, resp)
}

// proxyAny serves fleet-invariant catalogs (/v1/processes, /v1/tests)
// from the first up shard that answers.
func (g *Gateway) proxyAny(w http.ResponseWriter, r *http.Request, path string) {
	var lastErr error
	for _, peer := range g.upMembers() {
		g.requests.With(peer).Inc()
		resp, err := g.client.DoRaw(r.Context(), http.MethodGet, peer+path, nil)
		if err != nil {
			g.failures.With(peer).Inc()
			g.cfg.Table.MarkDown(peer)
			lastErr = err
			continue
		}
		relay(w, resp)
		return
	}
	if lastErr == nil {
		lastErr = cerr.New(cerr.CodeOverloaded, "cluster: no shard reachable")
	}
	g.writeError(w, lastErr, 0)
}

// handleSweepCreate is POST /v1/sweeps: the sweep runs on the
// gateway's own manager; each unique point's compile is proxied to
// its owning shard by runProxiedCompile. Row computation is
// deterministic from the report metrics, so the merged results
// envelope is byte-identical to a single daemon's.
func (g *Gateway) handleSweepCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, server.MaxRequestBody))
	if err != nil {
		g.writeError(w, cerr.Wrap(cerr.CodeBadRequest, err, "cluster: sweep body"), http.StatusRequestEntityTooLarge)
		return
	}
	spec, err := sweep.ParseSpec(body)
	if err != nil {
		g.writeError(w, err, 0)
		return
	}
	sw, err := g.sweeps.Create(spec)
	if err != nil {
		g.writeError(w, err, 0)
		return
	}
	g.writeJSON(w, http.StatusAccepted, gwEnvelope{Sweep: sw.Status()})
}

func (g *Gateway) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	sw, ok := g.sweeps.Get(r.PathValue("id"))
	if !ok {
		g.writeError(w, cerr.New(cerr.CodeInvalidParams, "cluster: unknown sweep %q", r.PathValue("id")), http.StatusNotFound)
		return
	}
	g.writeJSON(w, http.StatusOK, gwEnvelope{Sweep: sw.Status()})
}

// handleSweepResults is GET /v1/sweeps/{id}/results, with the same
// ?offset=&limit= window semantics as a shard: no parameters means
// the full document, a window adds the page metadata to the envelope.
func (g *Gateway) handleSweepResults(w http.ResponseWriter, r *http.Request) {
	sw, ok := g.sweeps.Get(r.PathValue("id"))
	if !ok {
		g.writeError(w, cerr.New(cerr.CodeInvalidParams, "cluster: unknown sweep %q", r.PathValue("id")), http.StatusNotFound)
		return
	}
	res := sw.Results()
	offset, limit, paged, err := server.PageParams(r)
	if err != nil {
		g.writeError(w, err, 0)
		return
	}
	if !paged {
		g.writeJSON(w, http.StatusOK, gwEnvelope{Data: res})
		return
	}
	win, pg := res.Paginate(offset, limit)
	g.writeJSON(w, http.StatusOK, gwEnvelope{Data: win, Page: &pg})
}

// handleSweepEvents is GET /v1/sweeps/{id}/events: the cluster
// sweep's live SSE progress stream — same wire format as a shard's,
// because both serve the shared sweep feed.
func (g *Gateway) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	sw, ok := g.sweeps.Get(r.PathValue("id"))
	if !ok {
		g.writeError(w, cerr.New(cerr.CodeInvalidParams, "cluster: unknown sweep %q", r.PathValue("id")), http.StatusNotFound)
		return
	}
	sweep.ServeEvents(w, r, sw, g.cfg.SSEHeartbeat)
}

// lookupFleet is the gateway sweep manager's Lookup seam: ask the
// key's owning shard (then ring successors) for an already-cached
// report. A hit makes the point a cached row, exactly as a warm
// single daemon's Lookup would; any miss or failure just means the
// point routes a compile.
func (g *Gateway) lookupFleet(key string) (*cache.Entry, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, _, err := g.exchange(ctx, key, http.MethodGet, "/v1/objects/"+key+"/report", nil,
		func(status int) bool { return status == http.StatusOK })
	if err != nil || resp.Status != http.StatusOK {
		return nil, false
	}
	var env struct {
		Data struct {
			Key      string          `json:"key"`
			Degraded bool            `json:"degraded"`
			Report   json.RawMessage `json:"report"`
		} `json:"data"`
	}
	if json.Unmarshal(resp.Body, &env) != nil || env.Data.Key != key || len(env.Data.Report) == 0 {
		return nil, false
	}
	return &cache.Entry{Key: key, Report: env.Data.Report, Degraded: env.Data.Degraded}, true
}

// errPeerLost marks a proxied compile that was accepted by a shard
// which then became unreachable — the one error class worth a full
// re-route (the work is idempotent; a successor recompiles or serves
// its cache).
var errPeerLost = cerr.New(cerr.CodeInternal, "cluster: shard lost after accepting the job")

// runProxiedCompile is the gateway sweep manager's Run seam: POST the
// point's normalized wire request to the owning shard and build the
// entry from the response. One full re-route is allowed when a shard
// dies between accepting and finishing a compile.
func (g *Gateway) runProxiedCompile(ctx context.Context, key string, req canon.Request, _ compiler.Params) (*cache.Entry, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, cerr.Wrap(cerr.CodeInternal, err, "cluster: encoding request for %s", key)
	}
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		resp, peer, xerr := g.exchange(ctx, key, http.MethodPost, "/v1/compile", body, nil)
		if xerr != nil {
			return nil, xerr
		}
		entry, eerr := g.entryFromCompileResponse(ctx, peer, key, resp)
		if eerr == errPeerLost && ctx.Err() == nil {
			lastErr = eerr
			continue // the dead peer is marked down; re-route to a successor
		}
		return entry, eerr
	}
	return nil, lastErr
}

// shardJob is the slice of a shard's compile/job envelope the gateway
// consumes.
type shardJob struct {
	Key      string          `json:"key"`
	JobID    string          `json:"job_id"`
	State    string          `json:"state"`
	Degraded bool            `json:"degraded"`
	Report   json.RawMessage `json:"report"`
}

// entryFromCompileResponse turns a shard's compile response into a
// cache entry: a synchronous 200 carries the report inline; a 202 job
// handle (the shard's sync-wait expired) is polled to completion.
func (g *Gateway) entryFromCompileResponse(ctx context.Context, peer, key string, resp *sweep.RawResponse) (*cache.Entry, error) {
	var env struct {
		Job   shardJob     `json:"job"`
		Error *gwWireError `json:"error"`
	}
	if err := json.Unmarshal(resp.Body, &env); err != nil {
		return nil, cerr.Wrap(cerr.CodeInternal, err, "cluster: shard %s returned non-envelope JSON (status %d)", peer, resp.Status)
	}
	if env.Error != nil {
		return nil, g.wireToErr(env.Error)
	}
	if resp.Status == http.StatusAccepted || len(env.Job.Report) == 0 {
		return g.pollJobResult(ctx, peer, env.Job.JobID, key)
	}
	if env.Job.Key != key {
		return nil, cerr.New(cerr.CodeInternal, "cluster: shard %s answered key %s for %s", peer, env.Job.Key, key)
	}
	return &cache.Entry{Key: key, Report: env.Job.Report, Degraded: env.Job.Degraded}, nil
}

// wireToErr rebuilds a shard's typed error locally, preserving the
// code (so sweep point error codes match a single daemon's) and the
// stage.
func (g *Gateway) wireToErr(we *gwWireError) error {
	code, ok := g.codeByName[we.Code]
	if !ok {
		code = cerr.CodeInternal
	}
	err := error(cerr.New(code, "%s", we.Message))
	if we.Stage != "" {
		err = cerr.WithStage(we.Stage, err)
	}
	return err
}

// pollJobResult follows a 202 job handle on the issuing shard until
// the job finishes. A transport failure here reports errPeerLost so
// the caller can re-route the whole compile.
func (g *Gateway) pollJobResult(ctx context.Context, peer, jobID, key string) (*cache.Entry, error) {
	if jobID == "" {
		return nil, cerr.New(cerr.CodeInternal, "cluster: shard %s answered without report or job id", peer)
	}
	path := peer + "/v1/jobs/" + jobID + "/result"
	for {
		resp, err := g.client.DoRaw(ctx, http.MethodGet, path, nil)
		if err != nil {
			g.cfg.Table.MarkDown(peer)
			if ctx.Err() != nil {
				return nil, cerr.Wrap(cerr.CodeBudgetExceeded, ctx.Err(), "cluster: waiting on %s", jobID)
			}
			return nil, errPeerLost
		}
		if resp.Status == http.StatusAccepted {
			select {
			case <-ctx.Done():
				return nil, cerr.Wrap(cerr.CodeBudgetExceeded, ctx.Err(), "cluster: waiting on %s", jobID)
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		var env struct {
			Data  json.RawMessage `json:"data"`
			Error *gwWireError    `json:"error"`
		}
		if err := json.Unmarshal(resp.Body, &env); err != nil {
			return nil, cerr.Wrap(cerr.CodeInternal, err, "cluster: job result from %s", peer)
		}
		if env.Error != nil {
			return nil, g.wireToErr(env.Error)
		}
		if len(env.Data) == 0 {
			return nil, cerr.New(cerr.CodeInternal, "cluster: empty job result from %s", peer)
		}
		return &cache.Entry{Key: key, Report: env.Data}, nil
	}
}

// handleHealthz reports the gateway's own state plus the fleet view:
// per-peer up/down, the ring version, and role identification for
// operators telling gateways from shards.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	t := g.cfg.Table
	peers := map[string]string{}
	for _, m := range t.Ring().Members() {
		state := "up"
		if !t.Up(m) {
			state = "down"
		}
		peers[m] = state
	}
	status := http.StatusOK
	state := "ok"
	if t.PeersUp() == 0 {
		// A gateway with no reachable shard cannot serve compiles.
		status = http.StatusServiceUnavailable
		state = "degraded"
	}
	g.writeJSON(w, status, map[string]any{
		"status":       state,
		"role":         "gateway",
		"uptime_s":     time.Since(g.start).Seconds(),
		"ring_version": t.Version(),
		"peers_up":     t.PeersUp(),
		"peers_total":  t.PeersTotal(),
		"peers":        peers,
		// Resume debt of the gateway's own sweep manager (cluster sweeps
		// run here, not on the shards).
		"sweeps": g.sweeps.Backlog(),
	})
}

// handleMetrics mirrors the daemon's dual exposition: JSON snapshot by
// default, Prometheus text 0.0.4 with ?format=prometheus. With
// ?scope=fleet the gateway scrapes every ring member concurrently and
// re-emits one merged document instead (see handleFleetMetrics).
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("scope") == "fleet" {
		g.handleFleetMetrics(w, r)
		return
	}
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		g.cfg.Registry.WritePrometheus(w)
		return
	}
	g.writeJSON(w, http.StatusOK, map[string]any{
		"obs":      g.cfg.Registry.Snapshot(),
		"queue":    g.cfg.Queue.Stats(),
		"uptime_s": time.Since(g.start).Seconds(),
	})
}

// scrapeFleet fetches every ring member's Prometheus exposition with
// bounded fan-out and a per-peer timeout. A peer that fails —
// transport error, bad status, unparseable text, injected fault — is
// skipped (stale-peer tolerance) and counted in
// fleet_scrape_errors_total; the merge proceeds with the rest.
func (g *Gateway) scrapeFleet(ctx context.Context) (scrapes []obs.FleetScrape, errs int) {
	members := g.cfg.Table.Ring().Members()
	results := make([]*obs.FleetScrape, len(members))
	sem := make(chan struct{}, fleetScrapeFanout)
	var wg sync.WaitGroup
	var errCount atomic.Int64
	for i, m := range members {
		wg.Add(1)
		go func(i int, m string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			g.cfg.Chaos.Delay(chaos.PointFleetScrape)
			if err := g.cfg.Chaos.Fail(chaos.PointFleetScrape); err != nil {
				errCount.Add(1)
				return
			}
			pctx, cancel := context.WithTimeout(ctx, g.cfg.FleetScrapeTimeout)
			defer cancel()
			resp, err := g.client.DoRaw(pctx, http.MethodGet, m+"/metrics?format=prometheus", nil)
			if err != nil || resp.Status != http.StatusOK {
				errCount.Add(1)
				return
			}
			fams, perr := obs.ParsePrometheus(bytes.NewReader(resp.Body))
			if perr != nil {
				errCount.Add(1)
				return
			}
			results[i] = &obs.FleetScrape{Node: m, Families: fams}
		}(i, m)
	}
	wg.Wait()
	for _, res := range results {
		if res != nil {
			scrapes = append(scrapes, *res)
		}
	}
	n := int(errCount.Load())
	g.scrapeErrors.Add(uint64(n))
	return scrapes, n
}

// handleFleetMetrics is GET /metrics?scope=fleet: one merged metric
// document for the whole fleet — counters summed, histogram buckets
// summed, gauges labelled per node — as expvar-style JSON by default
// or Prometheus text with ?format=prometheus.
func (g *Gateway) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	scrapes, errs := g.scrapeFleet(r.Context())
	merged := obs.MergeFleet(scrapes)
	g.scrapeDur.ObserveDuration(time.Since(t0))
	nodes := make([]string, 0, len(scrapes))
	for _, sc := range scrapes {
		nodes = append(nodes, sc.Node)
	}
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		merged.WritePrometheus(w)
		return
	}
	g.writeJSON(w, http.StatusOK, map[string]any{
		"scope":         "fleet",
		"nodes":         nodes,
		"scrape_errors": errs,
		"obs":           merged.Snapshot(),
		"uptime_s":      time.Since(g.start).Seconds(),
	})
}

// handleTrace is GET /debug/trace/{id}, the deprecated pre-/v1 alias
// of /v1/debug/traces/{id}: the end-to-end view of a routed compile.
// The gateway's own span set is the base; the issuing shard's set is
// fetched and spliced under the proxy.route span that injected the
// wire identity. A failed remote fetch (or an injected trace.fetch
// fault) degrades to the gateway-local spans rather than erroring: a
// partial trace still answers "where did the time go" questions.
func (g *Gateway) handleTrace(w http.ResponseWriter, r *http.Request) {
	g.renderTrace(w, r, r.URL.Query().Get("format"))
}

// handleTraceV1 is GET /v1/debug/traces/{id}, negotiated like the
// shard route: ?format=tree|spans|chrome wins, otherwise Accept:
// text/plain selects the tree and anything else the Chrome JSON.
func (g *Gateway) handleTraceV1(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	if format == "" && strings.HasPrefix(r.Header.Get("Accept"), "text/plain") {
		format = "tree"
	}
	g.renderTrace(w, r, format)
}

func (g *Gateway) renderTrace(w http.ResponseWriter, r *http.Request, format string) {
	id := r.PathValue("id")
	tr, ok := g.traceForJob(id)
	if !ok {
		g.writeError(w, cerr.New(cerr.CodeInvalidParams, "cluster: no trace for job %q", id), http.StatusNotFound)
		return
	}
	sets := []obs.SpanSet{tr.SpanSet("gateway")}
	if remote, ok := g.fetchRemoteSpans(r.Context(), id); ok {
		sets = append(sets, remote)
	}
	merged := obs.MergeSpanSets(sets)
	switch format {
	case "tree":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, merged.Tree())
		return
	case "spans":
		b, err := merged.SpanSet().JSON()
		if err != nil {
			g.writeError(w, cerr.Wrap(cerr.CodeInternal, err, "cluster: span set rendering"), 0)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		w.Write(b)
		return
	}
	b, err := merged.ChromeJSON()
	if err != nil {
		g.writeError(w, cerr.Wrap(cerr.CodeInternal, err, "cluster: trace rendering"), 0)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

// fetchRemoteSpans retrieves the shard-side span set of a routed job:
// the issuing shard when remembered, otherwise the first up member
// that recognises the job id.
func (g *Gateway) fetchRemoteSpans(ctx context.Context, id string) (obs.SpanSet, bool) {
	g.cfg.Chaos.Delay(chaos.PointTraceFetch)
	if err := g.cfg.Chaos.Fail(chaos.PointTraceFetch); err != nil {
		return obs.SpanSet{}, false
	}
	peers := g.upMembers()
	if peer, ok := g.peerForJob(id); ok {
		peers = append([]string{peer}, peers...)
	}
	seen := map[string]bool{}
	for _, peer := range peers {
		if seen[peer] {
			continue
		}
		seen[peer] = true
		// Prefer the /v1 route; shards predating it answer 404 there,
		// so fall back to the deprecated alias for mixed-version fleets.
		resp, err := g.client.DoRaw(ctx, http.MethodGet, peer+"/v1/debug/traces/"+id+"?format=spans", nil)
		if err == nil && resp.Status == http.StatusNotFound {
			resp, err = g.client.DoRaw(ctx, http.MethodGet, peer+"/debug/trace/"+id+"?format=spans", nil)
		}
		if err != nil || resp.Status != http.StatusOK {
			continue
		}
		ss, perr := obs.ParseSpanSet(resp.Body)
		if perr != nil {
			continue
		}
		if ss.Node == "" {
			ss.Node = peer
		}
		return ss, true
	}
	return obs.SpanSet{}, false
}
