package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/chaos"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/sweep"
)

const (
	gwReq   = `{"words":256,"bpw":8,"bpc":4,"spares":4}`
	gwSweep = `{"base":{"words":256,"bpw":8,"bpc":4,"spares":4},"axes":{"spares":[0,4],"defects":[0,5]}}`
)

// testShard is one real daemon (server + queue + cache + store) on a
// test listener.
type testShard struct {
	ts *httptest.Server
	st *store.Store
	q  *jobs.Queue
}

func startShard(t *testing.T) *testShard {
	t.Helper()
	st, err := store.Open(store.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	q := jobs.New(jobs.Config{Workers: 2, Deadline: time.Minute})
	s := server.New(server.Config{Queue: q, Cache: cache.New(64 << 20), Store: st})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		q.Shutdown(ctx)
	})
	return &testShard{ts: ts, st: st, q: q}
}

// startFleet brings up n shards plus a gateway over them.
func startFleet(t *testing.T, n int) ([]*testShard, *Gateway, *Table, *httptest.Server) {
	t.Helper()
	shards := make([]*testShard, n)
	urls := make([]string, n)
	for i := range shards {
		shards[i] = startShard(t)
		urls[i] = shards[i].ts.URL
	}
	r, err := NewRing(urls, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable(r)
	q := jobs.New(jobs.Config{Workers: 4, Deadline: time.Minute})
	g, err := NewGateway(GatewayConfig{Table: tab, Queue: q})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		q.Shutdown(ctx)
	})
	return shards, g, tab, ts
}

// httpDo is a bare exchange returning status, header and body.
func httpDo(t *testing.T, method, url, body string) (int, http.Header, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw
}

// compileVia POSTs gwReq to base and returns the decoded job member.
func compileVia(t *testing.T, base string) map[string]any {
	t.Helper()
	status, _, raw := httpDo(t, http.MethodPost, base+"/v1/compile", gwReq)
	if status != http.StatusOK {
		t.Fatalf("compile %d: %s", status, raw)
	}
	var env struct {
		Job map[string]any `json:"job"`
	}
	if err := json.Unmarshal(raw, &env); err != nil || env.Job == nil {
		t.Fatalf("compile envelope: %v\n%s", err, raw)
	}
	return env.Job
}

// runSweepVia creates a sweep at base, waits for the terminal state
// and returns the verbatim results document bytes.
func runSweepVia(t *testing.T, base string) (string, []byte) {
	t.Helper()
	status, _, raw := httpDo(t, http.MethodPost, base+"/v1/sweeps", gwSweep)
	if status != http.StatusAccepted {
		t.Fatalf("sweep create %d: %s", status, raw)
	}
	var env struct {
		Sweep struct {
			ID string `json:"id"`
		} `json:"sweep"`
	}
	if err := json.Unmarshal(raw, &env); err != nil || env.Sweep.ID == "" {
		t.Fatalf("sweep envelope: %v\n%s", err, raw)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, _, body := httpDo(t, http.MethodGet, base+"/v1/sweeps/"+env.Sweep.ID, "")
		if st != http.StatusOK {
			t.Fatalf("sweep status %d: %s", st, body)
		}
		var sEnv struct {
			Sweep struct {
				State string `json:"state"`
			} `json:"sweep"`
		}
		if err := json.Unmarshal(body, &sEnv); err != nil {
			t.Fatal(err)
		}
		if sEnv.Sweep.State == "done" {
			break
		}
		if sEnv.Sweep.State == "failed" {
			t.Fatalf("sweep failed: %s", body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s never finished: %s", env.Sweep.ID, body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	st, _, results := httpDo(t, http.MethodGet, base+"/v1/sweeps/"+env.Sweep.ID+"/results", "")
	if st != http.StatusOK {
		t.Fatalf("sweep results %d: %s", st, results)
	}
	return env.Sweep.ID, results
}

// TestGatewayCompileAndReadsMatchSingleDaemon: a compile routed
// through the gateway lands on the key's owner, produces the same key
// and byte-identical artifact as a standalone daemon, and the
// job/artifact/object read paths all resolve through the gateway
// (HEAD included).
func TestGatewayCompileAndReadsMatchSingleDaemon(t *testing.T) {
	single := startShard(t)
	refJob := compileVia(t, single.ts.URL)
	refKey, _ := refJob["key"].(string)
	refID, _ := refJob["job_id"].(string)
	st, _, refArtifact := httpDo(t, http.MethodGet, single.ts.URL+"/v1/jobs/"+refID+"/artifact/datasheet.txt", "")
	if st != http.StatusOK || refKey == "" {
		t.Fatalf("reference artifact %d (key %q)", st, refKey)
	}

	shards, _, tab, gw := startFleet(t, 3)
	job := compileVia(t, gw.URL)
	if job["key"] != refKey {
		t.Fatalf("cluster key %v, single-daemon key %s", job["key"], refKey)
	}
	// The compile must have landed on the ring owner, nowhere else.
	owner := tab.Ring().Owner(refKey)
	for _, sh := range shards {
		holds := sh.st.Contains(refKey)
		if (sh.ts.URL == owner) != holds {
			t.Fatalf("object placement: shard %s holds=%v, owner=%s", sh.ts.URL, holds, owner)
		}
	}

	jobID, _ := job["job_id"].(string)
	st, _, art := httpDo(t, http.MethodGet, gw.URL+"/v1/jobs/"+jobID+"/artifact/datasheet.txt", "")
	if st != http.StatusOK || !bytes.Equal(art, refArtifact) {
		t.Fatalf("gateway artifact %d, %d bytes (ref %d)", st, len(art), len(refArtifact))
	}

	// Key-addressed object read, GET and HEAD, through the gateway.
	st, hdr, obj := httpDo(t, http.MethodGet, gw.URL+"/v1/objects/"+refKey, "")
	if st != http.StatusOK || len(obj) == 0 {
		t.Fatalf("gateway object GET %d (%d bytes)", st, len(obj))
	}
	stH, hdrH, objH := httpDo(t, http.MethodHead, gw.URL+"/v1/objects/"+refKey, "")
	if stH != http.StatusOK || len(objH) != 0 {
		t.Fatalf("gateway object HEAD %d (%d bytes)", stH, len(objH))
	}
	if hdrH.Get("Content-Length") != hdr.Get("Content-Length") {
		t.Fatalf("HEAD length %q, GET length %q", hdrH.Get("Content-Length"), hdr.Get("Content-Length"))
	}

	// The cached-report probe proxies to whichever shard holds the key.
	st, _, rep := httpDo(t, http.MethodGet, gw.URL+"/v1/objects/"+refKey+"/report", "")
	if st != http.StatusOK {
		t.Fatalf("gateway object report %d: %s", st, rep)
	}
	var repEnv struct {
		Data struct {
			Key    string          `json:"key"`
			Report json.RawMessage `json:"report"`
		} `json:"data"`
	}
	if err := json.Unmarshal(rep, &repEnv); err != nil || repEnv.Data.Key != refKey || len(repEnv.Data.Report) == 0 {
		t.Fatalf("gateway object report malformed: %s", rep)
	}

	// Job status reads follow the issuing shard.
	st, _, raw := httpDo(t, http.MethodGet, gw.URL+"/v1/jobs/"+jobID, "")
	if st != http.StatusOK {
		t.Fatalf("gateway job read %d: %s", st, raw)
	}
}

// TestGatewaySweepByteIdenticalAndZeroRecompiles: the acceptance
// criterion — a fresh sweep served by a 3-shard cluster returns a
// results document byte-identical to a standalone daemon's, and
// repeating the sweep against the warm cluster runs zero compiles on
// any shard.
func TestGatewaySweepByteIdenticalAndZeroRecompiles(t *testing.T) {
	single := startShard(t)
	_, refResults := runSweepVia(t, single.ts.URL)

	shards, _, _, gw := startFleet(t, 3)
	_, gwResults := runSweepVia(t, gw.URL)
	if !bytes.Equal(gwResults, refResults) {
		t.Fatalf("cluster sweep diverged from single daemon:\n--- single ---\n%s\n--- cluster ---\n%s", refResults, gwResults)
	}

	completed := func() (n uint64) {
		for _, sh := range shards {
			n += sh.q.Stats().Completed
		}
		return n
	}
	before := completed()
	if before == 0 {
		t.Fatal("fresh sweep ran no shard compiles")
	}
	// The repeat is served entirely from the fleet's caches — zero
	// recompiles, and the rows now carry cached=true exactly as a warm
	// single daemon's repeat does.
	_, refRepeat := runSweepVia(t, single.ts.URL)
	_, gwRepeat := runSweepVia(t, gw.URL)
	if !bytes.Equal(gwRepeat, refRepeat) {
		t.Fatalf("repeat sweep diverged from warm single daemon:\n--- single ---\n%s\n--- cluster ---\n%s", refRepeat, gwRepeat)
	}
	if !bytes.Contains(gwRepeat, []byte(`"cached": true`)) {
		t.Fatalf("repeat cluster sweep rows not marked cached:\n%s", gwRepeat)
	}
	if after := completed(); after != before {
		t.Fatalf("repeat sweep recompiled: shard completions %d -> %d", before, after)
	}
}

// TestGatewayFailoverToSuccessor: killing the key's owning shard
// reroutes the next compile to the ring successor, which produces the
// same key; the dead peer is marked down and the failover counter
// moves.
func TestGatewayFailoverToSuccessor(t *testing.T) {
	shards, g, tab, gw := startFleet(t, 3)
	job := compileVia(t, gw.URL)
	key, _ := job["key"].(string)
	owner := tab.Ring().Owner(key)
	for _, sh := range shards {
		if sh.ts.URL == owner {
			sh.ts.Close() // hard kill: connections refused from here on
		}
	}
	job2 := compileVia(t, gw.URL)
	if job2["key"] != key {
		t.Fatalf("failover compile key %v, want %s", job2["key"], key)
	}
	if tab.Up(owner) {
		t.Fatal("dead owner still marked up")
	}
	snap := g.cfg.Registry.Snapshot()
	if v, _ := snap["proxy_failovers_total"].(uint64); v < 1 {
		t.Fatalf("proxy_failovers_total = %v, want >= 1", snap["proxy_failovers_total"])
	}
	// The successor now holds the object; a key-addressed read still
	// resolves.
	st, _, _ := httpDo(t, http.MethodGet, gw.URL+"/v1/objects/"+key, "")
	if st != http.StatusOK {
		t.Fatalf("object read after failover: %d", st)
	}
}

// TestGatewayChaosRouteInjection: a scripted proxy.route fault on the
// first exchange forces a failover; the request still succeeds on the
// successor and the injection is visible in the metrics.
func TestGatewayChaosRouteInjection(t *testing.T) {
	shards, _, tab, _ := startFleet(t, 2)
	_ = shards
	inj, err := chaos.Parse([]byte(`{"rules":[{"point":"proxy.route","mode":"error","max":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	q := jobs.New(jobs.Config{Workers: 2, Deadline: time.Minute})
	defer q.Shutdown(context.Background())
	g, err := NewGateway(GatewayConfig{Table: tab, Queue: q, Chaos: inj})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	job := compileVia(t, ts.URL)
	if job["key"] == "" {
		t.Fatalf("chaos-path compile: %v", job)
	}
	if inj.Fired() != 1 {
		t.Fatalf("chaos fired %d, want 1", inj.Fired())
	}
	snap := g.cfg.Registry.Snapshot()
	if v, _ := snap["proxy_failovers_total"].(uint64); v < 1 {
		t.Fatalf("proxy_failovers_total = %v, want >= 1", snap["proxy_failovers_total"])
	}
}

// TestPeerFetchThroughRealShards: the full peer-fetch loop — a key
// compiled on shard A is served by shard B as a cache hit (no
// compile) after B's store pulls the object image off A through the
// /v1/objects endpoint and promotes it through the verified-read
// path.
func TestPeerFetchThroughRealShards(t *testing.T) {
	a := startShard(t)
	job := compileVia(t, a.ts.URL)
	key, _ := job["key"].(string)
	if key == "" || !a.st.Contains(key) {
		t.Fatalf("shard A did not persist %q", key)
	}

	b := startShard(t)
	r, err := NewRing([]string{a.ts.URL, b.ts.URL}, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	peers := NewPeers(NewTable(r), b.ts.URL)
	b.st.SetPeerFetch(peers.FetchObject)

	job2 := compileVia(t, b.ts.URL)
	if job2["key"] != key {
		t.Fatalf("shard B key %v, want %s", job2["key"], key)
	}
	if cached, _ := job2["cached"].(bool); !cached {
		t.Fatalf("shard B recompiled instead of peer-fetching: %v", job2)
	}
	if got := b.q.Stats().Completed; got != 0 {
		t.Fatalf("shard B ran %d compiles, want 0", got)
	}
	if st := b.st.Stats(); st.PeerHits != 1 {
		t.Fatalf("shard B peer-fetch stats: %+v", st)
	}
}

// TestGatewayMethodTable: wrong methods get the enveloped 405 with
// the full Allow list, matching the daemon's contract.
func TestGatewayMethodTable(t *testing.T) {
	_, _, _, gw := startFleet(t, 1)
	for _, tc := range []struct {
		method, path, allow string
	}{
		{http.MethodPut, "/v1/compile", "POST"},
		{http.MethodDelete, "/v1/objects/" + strings.Repeat("0", 64), "GET, HEAD"},
		{http.MethodPost, "/v1/objects/" + strings.Repeat("0", 64) + "/report", "GET"},
		{http.MethodDelete, "/v1/jobs/job-000001/artifact/datasheet.txt", "GET, HEAD"},
		{http.MethodDelete, "/v1/sweeps", "POST"},
	} {
		st, hdr, raw := httpDo(t, tc.method, gw.URL+tc.path, "")
		if st != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: %d", tc.method, tc.path, st)
		}
		if got := hdr.Get("Allow"); got != tc.allow {
			t.Fatalf("%s %s Allow %q, want %q", tc.method, tc.path, got, tc.allow)
		}
		var env map[string]any
		if err := json.Unmarshal(raw, &env); err != nil || env["error"] == nil {
			t.Fatalf("405 not enveloped: %s", raw)
		}
	}
}

// TestGatewayRelayPreservesDiagnosticHeaders: a 429 (and a 5xx)
// proxied through the gateway keeps the shard's Retry-After backoff
// hint and every X-* diagnostic header — failover must not strip the
// upstream forensics.
func TestGatewayRelayPreservesDiagnosticHeaders(t *testing.T) {
	shard := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h := w.Header()
		switch r.URL.Path {
		case "/v1/compile":
			h.Set("Retry-After", "7")
			h.Set("X-Queue-Depth", "256")
			h.Add("X-Shed-Reason", "queue full")
			h.Add("X-Shed-Reason", "admission")
			h.Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"code":"ERR_OVERLOADED","message":"queue full"}}`)
		default:
			h.Set("X-Failure-Stage", "floorplan")
			h.Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprint(w, `{"error":{"code":"ERR_INTERNAL","message":"synthetic"}}`)
		}
	}))
	defer shard.Close()

	r, err := NewRing([]string{shard.URL}, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	q := jobs.New(jobs.Config{Workers: 1, Deadline: time.Minute})
	defer q.Shutdown(context.Background())
	g, err := NewGateway(GatewayConfig{Table: NewTable(r), Queue: q})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	st, hdr, raw := httpDo(t, http.MethodPost, ts.URL+"/v1/compile", gwReq)
	if st != http.StatusTooManyRequests {
		t.Fatalf("proxied 429 became %d: %s", st, raw)
	}
	if got := hdr.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After %q, want 7", got)
	}
	if got := hdr.Get("X-Queue-Depth"); got != "256" {
		t.Fatalf("X-Queue-Depth %q, want 256", got)
	}
	if got := hdr.Values("X-Shed-Reason"); len(got) != 2 || got[0] != "queue full" || got[1] != "admission" {
		t.Fatalf("X-Shed-Reason %v, want both values", got)
	}
	if !strings.Contains(string(raw), "ERR_OVERLOADED") {
		t.Fatalf("429 body not relayed verbatim: %s", raw)
	}

	st, hdr, raw = httpDo(t, http.MethodGet, ts.URL+"/v1/jobs/job-000001", "")
	if st != http.StatusInternalServerError {
		t.Fatalf("proxied 5xx became %d: %s", st, raw)
	}
	if got := hdr.Get("X-Failure-Stage"); got != "floorplan" {
		t.Fatalf("X-Failure-Stage %q, want floorplan", got)
	}
}

// TestGatewayHealthz: the health document identifies the gateway role
// and fleet view, and degrades to 503 when no shard is reachable.
func TestGatewayHealthz(t *testing.T) {
	_, _, tab, gw := startFleet(t, 2)
	st, _, raw := httpDo(t, http.MethodGet, gw.URL+"/healthz", "")
	if st != http.StatusOK {
		t.Fatalf("healthz %d", st)
	}
	var hz map[string]any
	if err := json.Unmarshal(raw, &hz); err != nil {
		t.Fatal(err)
	}
	if hz["role"] != "gateway" || hz["peers_up"].(float64) != 2 {
		t.Fatalf("healthz: %s", raw)
	}
	for _, m := range tab.Ring().Members() {
		tab.MarkDown(m)
	}
	st, _, raw = httpDo(t, http.MethodGet, gw.URL+"/healthz", "")
	if st != http.StatusServiceUnavailable || !strings.Contains(string(raw), "degraded") {
		t.Fatalf("fleet-down healthz %d: %s", st, raw)
	}
}

// TestGatewayV1DebugTraceAndPagedResults: the gateway mirrors the
// shard's redesigned /v1 surface — /v1/debug/traces/{id} serves the
// merged trace in every negotiated representation with enveloped 405
// parity, the deprecated /debug/trace/{id} alias keeps working, and
// /v1/sweeps/{id}/results windows rows with page metadata in the
// envelope while the parameterless fetch stays the full document.
func TestGatewayV1DebugTraceAndPagedResults(t *testing.T) {
	_, _, _, gw := startFleet(t, 2)
	job := compileVia(t, gw.URL)
	jobID, _ := job["job_id"].(string)
	if jobID == "" {
		t.Fatalf("no job_id: %v", job)
	}

	// Merged trace via the /v1 route, chrome default.
	st, hdr, chrome := httpDo(t, http.MethodGet, gw.URL+"/v1/debug/traces/"+jobID, "")
	if st != http.StatusOK || !strings.HasPrefix(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("v1 trace: %d %q: %.300s", st, hdr.Get("Content-Type"), chrome)
	}
	// Both processes of the distributed trace are present.
	if !bytes.Contains(chrome, []byte("gateway")) || !bytes.Contains(chrome, []byte("proxy.route")) {
		t.Fatalf("merged trace missing gateway spans: %.500s", chrome)
	}
	st, _, legacy := httpDo(t, http.MethodGet, gw.URL+"/debug/trace/"+jobID, "")
	if st != http.StatusOK || !bytes.Equal(chrome, legacy) {
		t.Fatalf("deprecated alias diverged (status %d)", st)
	}
	// Tree and spans representations.
	st, _, tree := httpDo(t, http.MethodGet, gw.URL+"/v1/debug/traces/"+jobID+"?format=tree", "")
	if st != http.StatusOK || !bytes.Contains(tree, []byte("proxy.route")) {
		t.Fatalf("tree: %d: %s", st, tree)
	}
	st, _, spans := httpDo(t, http.MethodGet, gw.URL+"/v1/debug/traces/"+jobID+"?format=spans", "")
	if st != http.StatusOK {
		t.Fatalf("spans: %d: %s", st, spans)
	}
	ss, err := obs.ParseSpanSet(spans)
	if err != nil || len(ss.Spans) == 0 {
		t.Fatalf("span set did not parse (%v): %.300s", err, spans)
	}
	// Enveloped 405 with Allow on the /v1 route.
	st, hdr, body := httpDo(t, http.MethodPost, gw.URL+"/v1/debug/traces/"+jobID, "{}")
	var errEnv struct {
		Error *struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if st != http.StatusMethodNotAllowed || hdr.Get("Allow") != "GET" ||
		json.Unmarshal(body, &errEnv) != nil || errEnv.Error == nil {
		t.Fatalf("POST trace: %d Allow=%q: %s", st, hdr.Get("Allow"), body)
	}

	// Paged sweep results through the gateway.
	sweepID, full := runSweepVia(t, gw.URL)
	if bytes.Contains(full, []byte(`"page"`)) {
		t.Fatalf("full document grew a page member: %s", full)
	}
	st, _, body = httpDo(t, http.MethodGet, gw.URL+"/v1/sweeps/"+sweepID+"/results?offset=1&limit=2", "")
	var pe struct {
		Data *sweep.Results `json:"data"`
		Page *sweep.Page    `json:"page"`
	}
	if st != http.StatusOK || json.Unmarshal(body, &pe) != nil || pe.Page == nil {
		t.Fatalf("paged results: %d: %s", st, body)
	}
	if len(pe.Data.Rows) != 2 || pe.Page.Total != 4 || pe.Page.NextOffset == nil || *pe.Page.NextOffset != 3 {
		t.Fatalf("window shape: %+v %+v", pe.Data, pe.Page)
	}
	st, _, body = httpDo(t, http.MethodGet, gw.URL+"/v1/sweeps/"+sweepID+"/results?limit=-2", "")
	if st != http.StatusBadRequest {
		t.Fatalf("bad limit: %d: %s", st, body)
	}
	// A paging client reassembles the same rows via the gateway.
	cl := sweep.NewClient(gw.URL)
	cl.PageSize = 1
	res, err := cl.SweepResults(sweepID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("paged client rows: %+v", res)
	}
}
