package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

var goldenMembers = []string{"http://shard-a:8047", "http://shard-b:8047", "http://shard-c:8047"}

func goldenKey(seed string) string {
	sum := sha256.Sum256([]byte(seed))
	return hex.EncodeToString(sum[:])
}

// TestRingGoldenPinning: the key→shard mapping is part of the wire
// contract — every node derives routing locally, so a silent change to
// the hash geometry would scatter every cluster's cache. These pins
// were computed from the shipped implementation and must never drift.
func TestRingGoldenPinning(t *testing.T) {
	r, err := NewRing(goldenMembers, 0)
	if err != nil {
		t.Fatal(err)
	}
	golden := []struct{ key, owner string }{
		{"77abc86d5c37fe261ce84966b29ddcc90a2ced0dc4ff460df01f852a98327ff8", "http://shard-a:8047"},
		{"2442ffeede6ab0781f47fb14845f2683237ccb5e6cd26af1d2be97f972d24b9e", "http://shard-b:8047"},
		{"7fc3c2c1eb9394af89bee45c15f85978439e1a17e71a3562f1706b10ea641b04", "http://shard-b:8047"},
		{"336e4be6f30cfa46f61ef5b3323991e17906cfee427513c00fef059ed4a9addd", "http://shard-a:8047"},
		{"899495bbab1c65f7145b3cd960010db25dda42adcb41885e3a375d011b8e2e90", "http://shard-a:8047"},
		{"d7837a735e63d4506ca548bc37308f3702329c20cdba0312a75ea7e971faccb4", "http://shard-a:8047"},
		{"9b531443d9d646ce4b32263a74ea384c0d1f871f1b8db9fb8849380e75d233ae", "http://shard-a:8047"},
		{"d1e73bb4cd6444b01d2827587bf640ed6f93046659afe3a58b4381536dbfe1af", "http://shard-a:8047"},
	}
	for i, g := range golden {
		if got := r.Owner(g.key); got != g.owner {
			t.Errorf("golden %d: key %s owned by %s, pinned to %s", i, g.key[:12], got, g.owner)
		}
	}
}

// TestRingIsOrderAndDuplicateInvariant: the ring is a pure function of
// the member SET — shuffled, duplicated member lists build identical
// rings.
func TestRingIsOrderAndDuplicateInvariant(t *testing.T) {
	a, _ := NewRing(goldenMembers, 16)
	shuffled := []string{goldenMembers[2], goldenMembers[0], goldenMembers[1], goldenMembers[0]}
	b, _ := NewRing(shuffled, 16)
	for i := 0; i < 200; i++ {
		key := goldenKey(fmt.Sprintf("inv-%d", i))
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("member order changed ownership of %s", key[:12])
		}
	}
}

// TestRingRebalance: removing one of N members remaps ONLY the keys it
// owned (~1/N of the keyspace); every other key keeps its owner. This
// is the property that makes shard loss cheap — a modulo-N scheme
// would remap nearly everything.
func TestRingRebalance(t *testing.T) {
	const keys = 3000
	full, _ := NewRing(goldenMembers, 0)
	reduced, _ := NewRing(goldenMembers[:2], 0) // shard-c removed

	moved := 0
	for i := 0; i < keys; i++ {
		key := goldenKey(fmt.Sprintf("rebalance-%d", i))
		before, after := full.Owner(key), reduced.Owner(key)
		if before == goldenMembers[2] {
			moved++
			continue // orphaned keys must land somewhere else, any owner is fine
		}
		if before != after {
			t.Fatalf("key %s moved %s -> %s though its owner survived", key[:12], before, after)
		}
	}
	// The removed member owned ~1/3 of the keyspace; allow generous
	// slack for hash variance.
	lo, hi := keys/3-keys/10, keys/3+keys/10
	if moved < lo || moved > hi {
		t.Fatalf("%d/%d keys moved, want ~1/3 in [%d, %d]", moved, keys, lo, hi)
	}
}

// TestRingSuccessors: owner first, all members distinct, full fleet
// coverage when n exceeds the member count.
func TestRingSuccessors(t *testing.T) {
	r, _ := NewRing(goldenMembers, 0)
	key := goldenKey("succ")
	succ := r.Successors(key, 0)
	if len(succ) != len(goldenMembers) {
		t.Fatalf("successors %v, want all %d members", succ, len(goldenMembers))
	}
	if succ[0] != r.Owner(key) {
		t.Fatalf("successors %v do not start at owner %s", succ, r.Owner(key))
	}
	seen := map[string]bool{}
	for _, m := range succ {
		if seen[m] {
			t.Fatalf("duplicate member in successors %v", succ)
		}
		seen[m] = true
	}
	if got := r.Successors(key, 2); len(got) != 2 || got[0] != succ[0] || got[1] != succ[1] {
		t.Fatalf("Successors(2) = %v, want prefix of %v", got, succ)
	}
}

func TestRingRejectsBadMemberSets(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty member set accepted")
	}
	if _, err := NewRing([]string{"http://a", ""}, 0); err == nil {
		t.Fatal("empty member name accepted")
	}
}
