// Package cluster is the service's federation layer: a deterministic
// consistent-hash ring over canon content keys that lets N bisramgend
// shards serve one keyspace, a health-probed member table that routes
// around down shards, and a peer client (built on sweep.Client's
// retrying machinery) that the bisramgate gateway and the store's
// peer-fetch tier share.
//
// Sharding by content key works because the whole service is
// content-addressed: a compile request's canon key names its result
// bytes, so ANY shard produces the identical artifact for a key and
// re-routing (failover, rebalance) can never serve wrong data — at
// worst a different shard recompiles what another shard had cached.
// The ring exists purely to make the cache effective: pinning a key to
// one owner concentrates its hits on one disk instead of N.
//
// Determinism: both the ring geometry (member+vnode point hashes) and
// the key mapping are pure SHA-256 functions of the member names and
// key text — no RNG, no time, no per-process state — so every node in
// a fleet, and every test, derives the identical ring from the same
// member list.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/cerr"
)

// DefaultVNodes is the virtual-node count per member: 64 points per
// member keeps the expected load imbalance under a few percent for
// small fleets while the ring stays tiny (N·64 points).
const DefaultVNodes = 64

// ringPoint is one virtual node: a position on the 64-bit hash circle
// owned by a member.
type ringPoint struct {
	hash   uint64
	member string
}

// Ring is an immutable consistent-hash ring over a member set.
// Construct with NewRing; methods are safe for concurrent use.
type Ring struct {
	points  []ringPoint // sorted by hash
	members []string    // sorted, deduplicated
	vnodes  int
}

// pointHash positions one virtual node: the first 8 bytes of
// SHA-256("<member>#<index>"), big-endian.
func pointHash(member string, vnode int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", member, vnode)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash positions a content key: the first 8 bytes of SHA-256 of the
// key text. Canon keys are themselves SHA-256 hex, but hashing again
// keeps the mapping well-defined for any key shape and decouples ring
// placement from the canon format.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds the ring for the given member names (shard base URLs
// by convention). Duplicates collapse; order is irrelevant — the ring
// is a pure function of the member SET. vnodes <= 0 takes
// DefaultVNodes.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := map[string]bool{}
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" {
			return nil, cerr.New(cerr.CodeInvalidParams, "cluster: empty member name")
		}
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	if len(uniq) == 0 {
		return nil, cerr.New(cerr.CodeInvalidParams, "cluster: ring needs at least one member")
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq, vnodes: vnodes}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for _, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(m, v), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between members is astronomically unlikely
		// but must still order deterministically.
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// Members returns the sorted member set.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// successorIndex locates the first ring point at or after h (wrapping).
func (r *Ring) successorIndex(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Owner returns the member owning key: the first virtual node
// clockwise from the key's hash.
func (r *Ring) Owner(key string) string {
	return r.points[r.successorIndex(keyHash(key))].member
}

// Successors returns up to n DISTINCT members in ring order starting
// at the key's owner — the owner first, then the failover candidates
// in the order routing should try them.
func (r *Ring) Successors(key string, n int) []string {
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := map[string]bool{}
	start := r.successorIndex(keyHash(key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		m := r.points[(start+i)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}
