package cluster

// View adapts a member table to the server's ClusterInfo window: the
// read-only slice of federation state a shard reports in /healthz and
// /metrics. It carries the shard's own identity (SelfURL) and the
// advertised gateway, neither of which the table knows.
type View struct {
	SelfURL    string
	GatewayURL string
	Table      *Table
}

func (v View) Self() string        { return v.SelfURL }
func (v View) Gateway() string     { return v.GatewayURL }
func (v View) RingVersion() uint64 { return v.Table.Version() }
func (v View) PeersUp() int        { return v.Table.PeersUp() }
func (v View) PeersTotal() int     { return v.Table.PeersTotal() }
