package cluster

import (
	"context"
	"net/http"
	"time"

	"repro/internal/sweep"
)

// FetchRetry is the peer-fetch client policy: two quick attempts per
// peer. A peer fetch is an optimization (the fallback is recompiling
// locally), so it must fail fast rather than ride out a peer restart.
var FetchRetry = sweep.RetryPolicy{
	MaxAttempts:      2,
	BaseDelay:        50 * time.Millisecond,
	MaxDelay:         250 * time.Millisecond,
	BreakerThreshold: 3,
	BreakerCooldown:  5 * time.Second,
}

// Peers is the shard-to-shard client: it resolves local store misses
// against the key's ring neighbours. One sweep.Client carries all peer
// traffic, so breaker state is per peer host (a dead peer fails fast
// without blocking fetches from the rest).
type Peers struct {
	Table *Table
	// Self is this shard's own base URL; it is skipped during fetch so
	// a shard never asks itself.
	Self string
	// Client performs the exchanges; NewPeers installs one with
	// FetchRetry.
	Client *sweep.Client
	// Timeout bounds one whole FetchObject call; 0 means 10 s.
	Timeout time.Duration
}

// NewPeers builds the peer client for a table.
func NewPeers(table *Table, self string) *Peers {
	c := sweep.NewClient("")
	c.Retry = FetchRetry
	return &Peers{Table: table, Self: self, Client: c}
}

// FetchObject asks the key's ring neighbours (owner first, up members
// only, self excluded) for the raw object image via GET
// /v1/objects/{key}. The first 200 wins; transport failures mark the
// peer down and move on. The returned bytes are unverified — the
// store's verified-read path decides whether to trust them. The
// signature matches store.PeerFetchFunc.
func (p *Peers) FetchObject(key string) ([]byte, bool) {
	timeout := p.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	for _, peer := range p.Table.Route(key) {
		if peer == p.Self {
			continue
		}
		resp, err := p.Client.DoRaw(ctx, http.MethodGet, peer+"/v1/objects/"+key, nil)
		if err != nil {
			// Transport-level failure (or open breaker): route around the
			// peer at request speed; the prober brings it back.
			p.Table.MarkDown(peer)
			if ctx.Err() != nil {
				return nil, false
			}
			continue
		}
		if resp.Status == http.StatusOK {
			return resp.Body, true
		}
		// 404 (peer doesn't have it) or anything else: try the next
		// neighbour.
	}
	return nil, false
}
