package cluster

import (
	"net/http"
	"sync"
	"time"
)

// Table is the live view of a ring: which members are currently up,
// maintained by health probes and by MarkDown reports from routing
// failures. Every up/down transition bumps a monotonic version, so
// observers (the cluster_ring_version gauge, tests) can detect
// convergence without comparing member lists. Safe for concurrent use.
type Table struct {
	ring *Ring
	// HTTP probes members' /healthz; nil means a 2 s-timeout default.
	HTTP *http.Client

	mu      sync.Mutex
	down    map[string]bool
	version uint64
}

// NewTable wraps a ring with an all-up member table at version 1.
func NewTable(ring *Ring) *Table {
	return &Table{ring: ring, down: map[string]bool{}, version: 1}
}

// Ring returns the underlying immutable ring.
func (t *Table) Ring() *Ring { return t.ring }

// Version returns the current ring-state version; it bumps on every
// up/down transition.
func (t *Table) Version() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.version
}

// Up reports whether member is currently considered up.
func (t *Table) Up(member string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return !t.down[member]
}

// PeersUp returns how many members are currently up.
func (t *Table) PeersUp() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring.members) - len(t.down)
}

// PeersTotal returns the ring's member count.
func (t *Table) PeersTotal() int { return len(t.ring.members) }

// setState records an up/down observation, bumping the version only on
// a transition. Reports whether the state changed.
func (t *Table) setState(member string, up bool) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.down[member] != up {
		return false // already in the observed state
	}
	if up {
		delete(t.down, member)
	} else {
		t.down[member] = true
	}
	t.version++
	return true
}

// MarkDown records a routing-observed failure (transport error, opened
// breaker) without waiting for the next probe tick, so failover
// converges at request speed. The prober brings the member back.
func (t *Table) MarkDown(member string) bool { return t.setState(member, false) }

// MarkUp records a member as healthy.
func (t *Table) MarkUp(member string) bool { return t.setState(member, true) }

// Route returns the members to try for key, owner first, down members
// filtered out. An empty slice means the whole fleet is down — callers
// should then fall back to trying everyone (the table may be stale).
func (t *Table) Route(key string) []string {
	all := t.ring.Successors(key, 0)
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(all))
	for _, m := range all {
		if !t.down[m] {
			out = append(out, m)
		}
	}
	return out
}

func (t *Table) http() *http.Client {
	if t.HTTP != nil {
		return t.HTTP
	}
	return &http.Client{Timeout: 2 * time.Second}
}

// ProbeOnce health-checks every member synchronously (GET /healthz;
// only a 200 counts as up — a draining daemon answers 503 and must
// stop receiving new work). Returns how many members changed state.
func (t *Table) ProbeOnce() int {
	changed := 0
	for _, m := range t.ring.members {
		up := false
		if resp, err := t.http().Get(m + "/healthz"); err == nil {
			up = resp.StatusCode == http.StatusOK
			resp.Body.Close()
		}
		if t.setState(m, up) {
			changed++
		}
	}
	return changed
}

// StartProbing launches the background probe loop at the given
// interval (min-clamped to 10 ms) and returns a stop function. The
// first probe round runs synchronously before returning, so a freshly
// started gateway routes with real health data from its first request.
func (t *Table) StartProbing(interval time.Duration) (stop func()) {
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t.ProbeOnce()
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				t.ProbeOnce()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
