package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// TestTableTransitionsAndVersion: up/down transitions bump the
// version exactly once each; repeated observations of the same state
// are free.
func TestTableTransitionsAndVersion(t *testing.T) {
	r, _ := NewRing(goldenMembers, 8)
	tab := NewTable(r)
	if tab.Version() != 1 || tab.PeersUp() != 3 {
		t.Fatalf("fresh table: version %d, up %d", tab.Version(), tab.PeersUp())
	}
	if !tab.MarkDown(goldenMembers[0]) {
		t.Fatal("first MarkDown not a transition")
	}
	if tab.MarkDown(goldenMembers[0]) {
		t.Fatal("repeated MarkDown counted as a transition")
	}
	if tab.Version() != 2 || tab.PeersUp() != 2 || tab.Up(goldenMembers[0]) {
		t.Fatalf("after down: version %d, up %d", tab.Version(), tab.PeersUp())
	}
	if !tab.MarkUp(goldenMembers[0]) || tab.Version() != 3 || tab.PeersUp() != 3 {
		t.Fatalf("after recovery: version %d, up %d", tab.Version(), tab.PeersUp())
	}
}

// TestTableRouteFiltersDownMembers: Route returns the successor order
// with down members removed; with the whole fleet down it is empty.
func TestTableRouteFiltersDownMembers(t *testing.T) {
	r, _ := NewRing(goldenMembers, 8)
	tab := NewTable(r)
	key := goldenKey("route")
	all := r.Successors(key, 0)
	if got := tab.Route(key); fmt.Sprint(got) != fmt.Sprint(all) {
		t.Fatalf("all-up route %v, want %v", got, all)
	}
	tab.MarkDown(all[0])
	got := tab.Route(key)
	if len(got) != 2 || got[0] != all[1] || got[1] != all[2] {
		t.Fatalf("route with owner down %v, want %v", got, all[1:])
	}
	tab.MarkDown(all[1])
	tab.MarkDown(all[2])
	if got := tab.Route(key); len(got) != 0 {
		t.Fatalf("route with fleet down %v, want empty", got)
	}
}

// TestTableProbing: ProbeOnce marks 200-responders up and everyone
// else (503 drainers, dead sockets) down.
func TestTableProbing(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			t.Errorf("probe hit %s", r.URL.Path)
		}
		if healthy.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // a member with nobody listening

	r, _ := NewRing([]string{srv.URL, dead.URL}, 8)
	tab := NewTable(r)
	tab.ProbeOnce()
	if !tab.Up(srv.URL) || tab.Up(dead.URL) || tab.PeersUp() != 1 {
		t.Fatalf("after probe: up(%s)=%v up(%s)=%v", srv.URL, tab.Up(srv.URL), dead.URL, tab.Up(dead.URL))
	}
	// A draining member (503) counts as down even though it answers.
	healthy.Store(false)
	tab.ProbeOnce()
	if tab.Up(srv.URL) {
		t.Fatal("503 responder still considered up")
	}
	healthy.Store(true)
	tab.ProbeOnce()
	if !tab.Up(srv.URL) {
		t.Fatal("recovered member not marked up")
	}
}
