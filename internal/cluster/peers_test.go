package cluster

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// objectServer serves one raw object image under /v1/objects/{key},
// 404 otherwise.
func objectServer(t *testing.T, key, image string, calls *atomic.Int64) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls != nil {
			calls.Add(1)
		}
		if r.URL.Path == "/v1/objects/"+key {
			w.Write([]byte(image))
			return
		}
		w.WriteHeader(http.StatusNotFound)
	}))
}

// TestPeersFetchObject: the first up neighbour with the object wins;
// self is never consulted; a dead neighbour is marked down and routed
// around.
func TestPeersFetchObject(t *testing.T) {
	key := goldenKey("peer-object")
	var haveCalls atomic.Int64
	have := objectServer(t, key, "raw-image-bytes", &haveCalls)
	defer have.Close()
	miss := objectServer(t, "other", "", nil)
	defer miss.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()

	self := "http://self.invalid:1"
	r, _ := NewRing([]string{have.URL, miss.URL, dead.URL, self}, 8)
	tab := NewTable(r)
	p := NewPeers(tab, self)

	raw, ok := p.FetchObject(key)
	if !ok || string(raw) != "raw-image-bytes" {
		t.Fatalf("fetch = %q, %v", raw, ok)
	}
	if !tab.Up(have.URL) || !tab.Up(miss.URL) {
		t.Fatal("healthy peers marked down")
	}
	// The dead peer is marked down if (and only if) routing reached it
	// before the serving peer; either way a second fetch must not touch
	// self and must still succeed.
	if _, ok := p.FetchObject(key); !ok {
		t.Fatal("second fetch failed")
	}
	if haveCalls.Load() < 1 {
		t.Fatal("serving peer never consulted")
	}
}

// TestPeersFetchObjectAllMiss: no peer has the object — fetch reports
// a miss without error.
func TestPeersFetchObjectAllMiss(t *testing.T) {
	a := objectServer(t, "none", "", nil)
	defer a.Close()
	b := objectServer(t, "none", "", nil)
	defer b.Close()
	r, _ := NewRing([]string{a.URL, b.URL}, 8)
	p := NewPeers(NewTable(r), "")
	if _, ok := p.FetchObject(goldenKey("absent")); ok {
		t.Fatal("fetch hit with no peer holding the object")
	}
}

// TestPeersFetchObjectSkipsDownPeers: a peer already marked down is
// not consulted at all.
func TestPeersFetchObjectSkipsDownPeers(t *testing.T) {
	key := goldenKey("skip-down")
	var downCalls atomic.Int64
	downSrv := objectServer(t, key, "from-down-peer", &downCalls)
	defer downSrv.Close()
	upSrv := objectServer(t, key, "from-up-peer", nil)
	defer upSrv.Close()

	r, _ := NewRing([]string{downSrv.URL, upSrv.URL}, 8)
	tab := NewTable(r)
	tab.MarkDown(downSrv.URL)
	p := NewPeers(tab, "")
	raw, ok := p.FetchObject(key)
	if !ok || !strings.Contains(string(raw), "from-up-peer") {
		t.Fatalf("fetch = %q, %v", raw, ok)
	}
	if downCalls.Load() != 0 {
		t.Fatal("down peer was consulted")
	}
}
