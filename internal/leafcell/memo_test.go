package leafcell

import (
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

// TestSharedMemoizesByContent: two calls with the same deck return
// the same *Library, and a distinct pointer with identical content
// aliases to the same memo entry (the daemon re-derives corner decks
// per request, so pointer keying would miss every time).
func TestSharedMemoizesByContent(t *testing.T) {
	before := memoSize()
	a, err := Shared(tech.CDA07, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Shared(tech.CDA07, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same deck, same bufSize: want one shared library")
	}
	clone := *tech.CDA07 // distinct pointer, identical content
	c, err := Shared(&clone, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatal("content-identical deck under a new pointer must alias the memo entry")
	}
	if got := memoSize(); got > before+1 {
		t.Fatalf("memo grew by %d entries for one deck", got-before)
	}
	// A different bufSize is a different library.
	d, err := Shared(tech.CDA07, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Fatal("bufSize must be part of the memo key")
	}
}

// TestSharedConcurrent hammers Shared from many goroutines; under
// -race this proves one build is published safely to all callers.
func TestSharedConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	libs := make([]*Library, 16)
	for i := range libs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l, err := Shared(tech.CDA07, 1)
			if err != nil {
				t.Error(err)
				return
			}
			// Concurrent port lookups on the frozen cells must be pure
			// reads.
			if _, ok := l.Inv.Cell.Port("a"); !ok {
				t.Error("inverter lost its input port")
			}
			libs[i] = l
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(libs); i++ {
		if libs[i] != libs[0] {
			t.Fatal("concurrent callers got different libraries")
		}
	}
}

// TestSharedCellsAreFrozen: mutating a shared cell must panic at the
// mutation site (the documented invariant of the cerr panic policy)
// instead of corrupting a concurrent compile.
func TestSharedCellsAreFrozen(t *testing.T) {
	lib, err := Shared(tech.CDA07, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !lib.SRAM.Frozen() {
		t.Fatal("shared SRAM cell not frozen")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddShape on a frozen shared cell must panic")
		}
	}()
	lib.SRAM.AddShape(tech.Metal1, geom.R(0, 0, 10, 10), "oops")
}

// TestRowDecoderStaysMutable: derived cells built from a frozen
// library are fresh per call and must remain mutable.
func TestRowDecoderStaysMutable(t *testing.T) {
	lib, err := Shared(tech.CDA07, 1)
	if err != nil {
		t.Fatal(err)
	}
	dec := lib.RowDecoder(4)
	if dec.Frozen() {
		t.Fatal("derived row decoder should be mutable")
	}
	dec.AddShape(tech.Metal2, geom.R(0, 0, 10, 10), "strap") // must not panic
}

// TestNewLibraryStaysPrivate: the unshared constructor still hands
// out mutable cells (generators that post-process their library rely
// on it).
func TestNewLibraryStaysPrivate(t *testing.T) {
	lib, err := NewLibrary(tech.CDA07, 1)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := Shared(tech.CDA07, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lib == shared {
		t.Fatal("NewLibrary must not return the shared instance")
	}
	if lib.Inv.Cell.Frozen() {
		t.Fatal("private library cells must stay mutable")
	}
	lib.Inv.Cell.AddShape(tech.Metal1, geom.R(0, 0, 5, 5), "x") // must not panic
}
