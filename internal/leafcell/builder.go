// Package leafcell contains BISRAMGEN's parametric leaf-cell
// generators. Every generator consumes only the process design rules
// (design-rule independence) plus its sizing parameters, and emits
// both the cell geometry (internal/geom) and a transistor-level
// netlist that the extractor turns into a SPICE circuit with
// wire-derived parasitics — the "generate simple leaf cells ahead of
// time and extract and simulate them" flow of the paper.
package leafcell

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/spice"
	"repro/internal/tech"
)

// MOS is one transistor of a cell's extracted netlist. Net names are
// cell-local; W and L are in dbu (nm).
type MOS struct {
	Name    string
	D, G, S string
	Type    tech.MOSType
	W, L    int
}

// Cell couples geometry with its transistor netlist.
type Cell struct {
	*geom.Cell
	Transistors []MOS
	P           *tech.Process
}

// B is the drawing helper shared by all generators: a thin layer over
// geom.Cell that works in lambda units and records transistors.
type B struct {
	P *tech.Process
	C *Cell
}

// newB starts a cell.
func newB(p *tech.Process, name string) *B {
	return &B{P: p, C: &Cell{Cell: geom.NewCell(name), P: p}}
}

// L converts lambdas to dbu.
func (b *B) L(n int) int { return b.P.L(n) }

// Rect adds a rectangle given in lambda coordinates.
func (b *B) Rect(l geom.Layer, x0, y0, x1, y1 int, net string) {
	b.C.AddShape(l, geom.R(b.L(x0), b.L(y0), b.L(x1), b.L(y1)), net)
}

// RectDBU adds a rectangle in raw dbu coordinates.
func (b *B) RectDBU(l geom.Layer, r geom.Rect, net string) {
	b.C.AddShape(l, r, net)
}

// Port adds a port with lambda coordinates.
func (b *B) Port(name string, l geom.Layer, x0, y0, x1, y1 int, dir geom.PortDir) {
	b.C.AddPort(name, l, geom.R(b.L(x0), b.L(y0), b.L(x1), b.L(y1)), dir)
}

// Abut sets the abutment box in lambda coordinates.
func (b *B) Abut(x0, y0, x1, y1 int) {
	b.C.Abut = geom.R(b.L(x0), b.L(y0), b.L(x1), b.L(y1))
}

// Contact draws a contact cut with its metal1 enclosure at the lambda
// position (x, y) = lower-left of the cut.
func (b *B) Contact(x, y int, net string) {
	cs := b.P.ContactSize
	en := b.P.ContactEnclosure
	x0, y0 := b.L(x), b.L(y)
	b.RectDBU(tech.Contact, geom.R(x0, y0, x0+cs, y0+cs), net)
	b.RectDBU(tech.Metal1, geom.R(x0-en, y0-en, x0+cs+en, y0+cs+en), net)
}

// Device draws a transistor in a standard vertical-gate template at
// lambda position (x, y) = lower-left of its active area, with channel
// width w lambdas (vertical extent) and minimum length. It records the
// netlist entry and returns the lambda-space bounding box of the
// device (active plus endcaps).
//
// Template (in lambdas, active 11λ wide):
//
//	x+0..x+4   source contact column (M1 tab x..x+4)
//	x+5..x+7   poly gate (vertical, extends 2λ past active)
//	x+7..x+11  drain contact column (M1 tab x+7..x+11)
//
// The 3λ gap between the source and drain M1 tabs meets the metal1
// spacing rule, and a 14λ device pitch keeps 3λ between the tabs of
// adjacent devices.
func (b *B) Device(name string, x, y, w int, typ tech.MOSType, d, g, s string) geom.Rect {
	// Active region: 11λ wide, w tall.
	b.Rect(tech.Active, x, y, x+11, y+w, "")
	// Select layer.
	sel := tech.NPlus
	if typ == tech.PMOS {
		sel = tech.PPlus
		// N-well around PMOS active with 2λ margin (well rules are
		// checked per-cell region, not per device pair).
		b.Rect(tech.NWell, x-2, y-2, x+13, y+w+2, "")
	}
	b.Rect(sel, x-1, y-1, x+12, y+w+1, "")
	// Gate poly with 2λ endcaps.
	b.Rect(tech.Poly, x+5, y-2, x+7, y+w+2, g)
	// Source/drain contacts + M1 tabs, centred vertically.
	cy := y + w/2 - 1
	b.Contact(x+1, cy, s)
	b.Contact(x+8, cy, d)
	b.C.Transistors = append(b.C.Transistors, MOS{
		Name: name, D: d, G: g, S: s, Type: typ,
		W: b.L(w), L: b.P.Feature,
	})
	return geom.R(x-1, y-2, x+12, y+w+2)
}

// Wire draws a metal wire of the layer's minimum width between two
// lambda points (Manhattan: horizontal then vertical).
func (b *B) Wire(l geom.Layer, x0, y0, x1, y1 int, net string) {
	wHalf := b.P.MinWidth(l) / 2
	p0 := geom.Point{X: b.L(x0), Y: b.L(y0)}
	p1 := geom.Point{X: b.L(x1), Y: b.L(y1)}
	if p0.X != p1.X {
		b.RectDBU(l, geom.R(p0.X-wHalf, p0.Y-wHalf, p1.X+wHalf, p0.Y+wHalf), net)
	}
	if p0.Y != p1.Y {
		b.RectDBU(l, geom.R(p1.X-wHalf, p0.Y-wHalf, p1.X+wHalf, p1.Y+wHalf), net)
	}
}

// Done finalises and returns the cell.
func (b *B) Done() *Cell { return b.C }

// Extract converts the cell's transistor netlist into a SPICE circuit
// with wire parasitics: every labelled net receives the capacitance of
// its shapes (area and fringe) as a grounded capacitor, which is how
// BISRAMGEN extrapolates timing from leaf cells. Net names are
// prefixed to keep multiple extracted cells separable in one circuit.
func (c *Cell) Extract(ckt *spice.Circuit, prefix string) {
	pin := func(n string) string {
		if n == "0" || n == "gnd" || n == "GND" {
			return "0"
		}
		return prefix + n
	}
	for _, m := range c.Transistors {
		ckt.M(prefix+m.Name, pin(m.D), pin(m.G), pin(m.S), m.Type,
			float64(m.W)*1e-9, float64(m.L)*1e-9, c.P)
	}
	for n, cap := range c.WireCaps() {
		if n == "0" {
			continue
		}
		ckt.C(pin(n), "0", cap)
	}
}

// WireCaps returns per-net wiring capacitance (farads) summed over the
// cell's labelled shapes.
func (c *Cell) WireCaps() map[string]float64 {
	caps := map[string]float64{}
	for _, s := range c.Shapes {
		if s.Net == "" {
			continue
		}
		w, ok := c.P.Wire[s.Layer]
		if !ok {
			continue
		}
		wm := float64(s.Rect.W()) * 1e-9
		hm := float64(s.Rect.H()) * 1e-9
		caps[s.Net] += w.CArea*wm*hm + w.CEdge*2*(wm+hm)
	}
	return caps
}

// CheckDRC runs the simplified design-rule check on the cell with the
// process rules for the drawn layers.
func (c *Cell) CheckDRC(max int) []geom.Violation {
	rules := map[geom.Layer]geom.Rule{
		tech.Poly:   c.P.Rules[tech.Poly],
		tech.Metal1: c.P.Rules[tech.Metal1],
		tech.Metal2: c.P.Rules[tech.Metal2],
		tech.Metal3: c.P.Rules[tech.Metal3],
	}
	return geom.Check(c.Cell, rules, max)
}

// sanity panics with context if a generator produced an empty cell —
// generators are internal, so this is a programming error, and the
// panic is a documented invariant site of the cerr panic policy (see
// package cerr). Generators run behind compile-stage Recover guards,
// so the panic reaches compiler callers as a typed ErrInternal.
func sanity(c *Cell) *Cell {
	if c.Bounds().Empty() {
		panic(fmt.Sprintf("leafcell: %s has empty bounds", c.Name))
	}
	return c
}
