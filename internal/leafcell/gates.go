package leafcell

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/tech"
)

// The standard-gate library: the BIST/BISR control blocks (ADDGEN,
// DATAGEN, STREG, the TLB's priority/driver logic) are assembled from
// these cells, so their macro areas follow directly from the
// structural netlists' gate counts.

// Inv generates an inverter with drive strength scaling.
func Inv(p *tech.Process, size int) *Cell {
	if size < 1 {
		size = 1
	}
	b := newB(p, fmt.Sprintf("inv_x%d", size))
	w := widthFor(1)
	frame(b, w)
	nmos(b, "mn", 0, 3*size, "y", "a", "gnd")
	pmos(b, "mp", 0, 3*size, "y", "a", "vdd")
	gatePort(b, "a", 0, geom.West)
	drainPort(b, "y", 0, 3*size, true, geom.East)
	return sanity(b.Done())
}

// Buf generates a two-stage buffer.
func Buf(p *tech.Process, size int) *Cell {
	if size < 1 {
		size = 1
	}
	b := newB(p, fmt.Sprintf("buf_x%d", size))
	w := widthFor(2)
	frame(b, w)
	nmos(b, "mn1", 0, 3, "ab", "a", "gnd")
	pmos(b, "mp1", 0, 3, "ab", "a", "vdd")
	nmos(b, "mn2", 1, 3*size, "y", "ab", "gnd")
	pmos(b, "mp2", 1, 3*size, "y", "ab", "vdd")
	gatePort(b, "a", 0, geom.West)
	drainPort(b, "y", 1, 3*size, true, geom.East)
	return sanity(b.Done())
}

// Nand2 generates a 2-input NAND.
func Nand2(p *tech.Process) *Cell {
	b := newB(p, "nand2")
	w := widthFor(2)
	frame(b, w)
	nmos(b, "mn1", 0, 4, "y", "a", "n1")
	nmos(b, "mn2", 1, 4, "n1", "b", "gnd")
	pmos(b, "mp1", 0, 4, "y", "a", "vdd")
	pmos(b, "mp2", 1, 4, "y", "b", "vdd")
	gatePort(b, "a", 0, geom.West)
	gatePort(b, "b", 1, geom.West)
	drainPort(b, "y", 0, 4, true, geom.East)
	return sanity(b.Done())
}

// Nor2 generates a 2-input NOR.
func Nor2(p *tech.Process) *Cell {
	b := newB(p, "nor2")
	w := widthFor(2)
	frame(b, w)
	nmos(b, "mn1", 0, 3, "y", "a", "gnd")
	nmos(b, "mn2", 1, 3, "y", "b", "gnd")
	pmos(b, "mp1", 0, 6, "y", "a", "p1")
	pmos(b, "mp2", 1, 6, "p1", "b", "vdd")
	gatePort(b, "a", 0, geom.West)
	gatePort(b, "b", 1, geom.West)
	drainPort(b, "y", 0, 3, true, geom.East)
	return sanity(b.Done())
}

// Xor2 generates a 2-input XOR (complementary static realisation, six
// devices) — the comparator bit of DATAGEN and the TLB compare.
func Xor2(p *tech.Process) *Cell {
	b := newB(p, "xor2")
	w := widthFor(3)
	frame(b, w)
	nmos(b, "mn1", 0, 3, "ab", "a", "gnd")
	pmos(b, "mp1", 0, 3, "ab", "a", "vdd")
	nmos(b, "mn2", 1, 4, "y", "a", "bx")
	nmos(b, "mn3", 2, 4, "bx", "ab", "gnd")
	pmos(b, "mp2", 1, 4, "y", "ab", "px")
	pmos(b, "mp3", 2, 4, "px", "a", "vdd")
	gatePort(b, "a", 0, geom.West)
	gatePort(b, "b", 1, geom.West)
	drainPort(b, "y", 1, 4, true, geom.East)
	return sanity(b.Done())
}

// Mux2 generates a 2:1 multiplexer (transmission gates plus output
// buffer).
func Mux2(p *tech.Process) *Cell {
	b := newB(p, "mux2")
	w := widthFor(3)
	frame(b, w)
	nmos(b, "mns", 0, 3, "sb", "s", "gnd")
	pmos(b, "mps", 0, 3, "sb", "s", "vdd")
	nmos(b, "mta", 1, 4, "y", "sb", "a")
	pmos(b, "mtap", 1, 4, "y", "s", "a")
	nmos(b, "mtb", 2, 4, "y", "s", "b")
	pmos(b, "mtbp", 2, 4, "y", "sb", "b")
	gatePort(b, "s", 0, geom.West)
	gatePort(b, "a", 1, geom.South)
	gatePort(b, "b", 2, geom.South)
	drainPort(b, "y", 1, 4, true, geom.East)
	return sanity(b.Done())
}

// DFF generates an edge-triggered D flip-flop with active-low reset
// (master/slave transmission-gate style, 14 devices).
func DFF(p *tech.Process) *Cell {
	b := newB(p, "dff")
	w := widthFor(7)
	frame(b, w)
	// Clock inverter.
	nmos(b, "mnc", 0, 3, "ckb", "ck", "gnd")
	pmos(b, "mpc", 0, 3, "ckb", "ck", "vdd")
	// Master latch.
	nmos(b, "mtm", 1, 3, "m", "ckb", "d")
	pmos(b, "mtmp", 1, 3, "m", "ck", "d")
	nmos(b, "mim1", 2, 3, "mb", "m", "gnd")
	pmos(b, "mim2", 2, 3, "mb", "m", "vdd")
	// Reset gate on the master (NAND with rstN).
	nmos(b, "mrn", 3, 3, "m", "rstb", "gnd")
	pmos(b, "mrp", 3, 3, "m", "rstn", "vdd")
	// Slave latch.
	nmos(b, "mts", 4, 3, "s", "ck", "mb")
	pmos(b, "mtsp", 4, 3, "s", "ckb", "mb")
	nmos(b, "mis1", 5, 3, "q", "s", "gnd")
	pmos(b, "mis2", 5, 3, "q", "s", "vdd")
	nmos(b, "mqb1", 6, 3, "qb", "q", "gnd")
	pmos(b, "mqb2", 6, 3, "qb", "q", "vdd")
	gatePort(b, "d", 1, geom.West)
	gatePort(b, "ck", 0, geom.South)
	gatePort(b, "rstn", 3, geom.South)
	drainPort(b, "q", 5, 3, true, geom.East)
	return sanity(b.Done())
}

// Tribuf generates a tristate buffer — the output selector of the
// synchronous TLB-masking scheme (the TLB and the address register
// drive the decoders through suitably sized tristate buffers).
func Tribuf(p *tech.Process, size int) *Cell {
	if size < 1 {
		size = 1
	}
	b := newB(p, fmt.Sprintf("tribuf_x%d", size))
	w := widthFor(2)
	frame(b, w)
	nmos(b, "mn1", 0, 3*size, "yn", "a", "gnd")
	nmos(b, "mn2", 1, 3*size, "y", "en", "yn")
	pmos(b, "mp1", 0, 3*size, "yp", "a", "vdd")
	pmos(b, "mp2", 1, 3*size, "y", "enb", "yp")
	gatePort(b, "a", 0, geom.West)
	gatePort(b, "en", 1, geom.South)
	drainPort(b, "y", 1, 3*size, true, geom.East)
	return sanity(b.Done())
}

// GateCost maps logicsim gate kinds onto library cells for area
// accounting: cell name and device-slot count.
type GateCost struct {
	CellName string
	Slots    int
}

// Library is the complete leaf-cell set built for one process and
// buffer size, the first stage of BISRAMGEN's bottom-up flow.
type Library struct {
	P       *tech.Process
	BufSize int

	SRAM      *Cell
	Precharge *Cell
	SenseAmp  *Cell
	WriteDrv  *Cell
	ColMux    *Cell
	CAM       *Cell
	PLAOn     *Cell
	PLAOff    *Cell
	PLAPull   *Cell
	Inv       *Cell
	Buf       *Cell
	Nand2     *Cell
	Nor2      *Cell
	Xor2      *Cell
	Mux2      *Cell
	DFF       *Cell
	Tribuf    *Cell
}

// NewLibrary builds every leaf cell for the process.
func NewLibrary(p *tech.Process, bufSize int) (*Library, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if bufSize < 1 || bufSize > 4 {
		return nil, fmt.Errorf("leafcell: buffer size %d out of range 1..4", bufSize)
	}
	return &Library{
		P: p, BufSize: bufSize,
		SRAM:      SRAM6T(p),
		Precharge: Precharge(p, bufSize),
		SenseAmp:  SenseAmp(p),
		WriteDrv:  WriteDriver(p),
		ColMux:    ColMux(p),
		CAM:       CAMCell(p),
		PLAOn:     PLACrosspoint(p, true),
		PLAOff:    PLACrosspoint(p, false),
		PLAPull:   PLAPullup(p),
		Inv:       Inv(p, bufSize),
		Buf:       Buf(p, bufSize),
		Nand2:     Nand2(p),
		Nor2:      Nor2(p),
		Xor2:      Xor2(p),
		Mux2:      Mux2(p),
		DFF:       DFF(p),
		Tribuf:    Tribuf(p, bufSize),
	}, nil
}

// All returns every cell for iteration in tests.
func (l *Library) All() []*Cell {
	return []*Cell{l.SRAM, l.Precharge, l.SenseAmp, l.WriteDrv, l.ColMux,
		l.CAM, l.PLAOn, l.PLAOff, l.PLAPull, l.Inv, l.Buf, l.Nand2,
		l.Nor2, l.Xor2, l.Mux2, l.DFF, l.Tribuf}
}

// RowDecoder builds (and caches nothing: cheap) a decoder slice for
// the given address width.
func (l *Library) RowDecoder(addrBits int) *Cell {
	return RowDecoderUnit(l.P, addrBits, l.BufSize)
}
