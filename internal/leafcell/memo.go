package leafcell

import (
	"crypto/sha256"
	"fmt"
	"sync"

	"repro/internal/cjson"
	"repro/internal/tech"
)

// The shared-library memo. A leaf-cell library is a pure function of
// the technology deck and the buffer-size knob, yet the compiler used
// to regenerate it from scratch on every compile — for small arrays
// the rebuild dominated the whole run. Shared caches one immutable
// library per (deck fingerprint, bufSize) for the life of the
// process.
//
// Keying is by deck *content* (the canonical cjson serialization of
// the Process, hashed), not by pointer: the daemon re-derives corner
// decks per request, so pointer identity would miss on every call and
// leak one entry per request. Content keying means the three built-in
// decks, their corners, and any inline deck each memoize exactly once.
//
// Each cached library is frozen (geom.Cell.Freeze) before
// publication: every port index is pre-built, and any attempt to
// mutate a shared cell panics at the mutation site instead of
// corrupting a concurrent compile. memoCap bounds the table against
// an adversarial stream of distinct inline decks; overflow falls back
// to an unshared build, which is correct, merely slower.
const memoCap = 128

type memoEntry struct {
	once sync.Once
	lib  *Library
	err  error
}

var (
	memoMu sync.Mutex
	memo   = map[string]*memoEntry{}
)

// fingerprint returns the content key of (process, bufSize). The
// canonical JSON form is the same serialization the content-addressed
// compile cache hashes (internal/cjson), so two decks that alias to
// one compile key also alias to one shared library.
func fingerprint(p *tech.Process, bufSize int) (string, error) {
	doc, err := cjson.Marshal(p)
	if err != nil {
		return "", fmt.Errorf("leafcell: deck fingerprint: %w", err)
	}
	sum := sha256.Sum256(doc)
	return fmt.Sprintf("%x:%d", sum[:8], bufSize), nil
}

// Shared returns the process-wide memoized, frozen leaf-cell library
// for (p, bufSize), building it at most once per process per deck
// content. Concurrent callers for the same deck share one build (the
// losers block on the winner's sync.Once). The returned library and
// every cell in it are immutable; callers needing a private mutable
// library must use NewLibrary.
func Shared(p *tech.Process, bufSize int) (*Library, error) {
	key, err := fingerprint(p, bufSize)
	if err != nil {
		return nil, err
	}

	memoMu.Lock()
	e, ok := memo[key]
	if !ok {
		if len(memo) >= memoCap {
			// Table full (adversarial stream of distinct inline decks):
			// degrade to an unshared build rather than grow unboundedly.
			memoMu.Unlock()
			return newFrozenLibrary(p, bufSize)
		}
		e = &memoEntry{}
		memo[key] = e
	}
	memoMu.Unlock()

	e.once.Do(func() {
		e.lib, e.err = newFrozenLibrary(p, bufSize)
	})
	return e.lib, e.err
}

// newFrozenLibrary builds a library and freezes every cell, making it
// safe to share across goroutines.
func newFrozenLibrary(p *tech.Process, bufSize int) (*Library, error) {
	lib, err := NewLibrary(p, bufSize)
	if err != nil {
		return nil, err
	}
	lib.Freeze()
	return lib, nil
}

// Freeze marks every cell of the library immutable (see
// geom.Cell.Freeze). Derived cells built later by Library.RowDecoder
// are fresh per call and stay mutable.
func (l *Library) Freeze() {
	for _, c := range l.All() {
		c.Cell.Freeze()
	}
}

// memoSize reports the number of memoized libraries (tests).
func memoSize() int {
	memoMu.Lock()
	defer memoMu.Unlock()
	return len(memo)
}
