package leafcell

import (
	"strings"
	"testing"

	"repro/internal/spice"
	"repro/internal/tech"
)

func lib(t *testing.T) *Library {
	t.Helper()
	l, err := NewLibrary(tech.CDA07, 2)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLibraryBuilds(t *testing.T) {
	for _, p := range []*tech.Process{tech.CDA05, tech.MOS06, tech.CDA07} {
		l, err := NewLibrary(p, 1)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for _, c := range l.All() {
			if c.Bounds().Empty() {
				t.Errorf("%s/%s: empty bounds", p.Name, c.Name)
			}
		}
	}
	if _, err := NewLibrary(tech.CDA07, 9); err == nil {
		t.Fatal("oversized buffer accepted")
	}
}

func TestCellsAreDRCClean(t *testing.T) {
	l := lib(t)
	cells := l.All()
	cells = append(cells, l.RowDecoder(5), l.RowDecoder(10))
	for _, c := range cells {
		if vs := c.CheckDRC(5); len(vs) > 0 {
			t.Errorf("%s: %d DRC violations, first: %v", c.Name, len(vs), vs[0])
		}
	}
}

func TestAreasScaleWithLambdaSquared(t *testing.T) {
	a5 := SRAM6T(tech.CDA05).AreaUm2()
	a7 := SRAM6T(tech.CDA07).AreaUm2()
	ratio := a7 / a5
	want := (0.7 / 0.5) * (0.7 / 0.5)
	if ratio < want*0.95 || ratio > want*1.05 {
		t.Fatalf("area ratio %.3f, want ~%.3f (lambda² scaling)", ratio, want)
	}
}

func TestSRAMCellProperties(t *testing.T) {
	c := SRAM6T(tech.CDA07)
	if len(c.Transistors) != 6 {
		t.Fatalf("6T cell has %d transistors", len(c.Transistors))
	}
	for _, port := range []string{"bl", "blb", "wl", "vdd", "gnd"} {
		if _, ok := c.Port(port); !ok {
			t.Errorf("missing port %s", port)
		}
	}
	// Era-plausible area: a 0.7µm 6T cell should be tens of µm².
	a := c.AreaUm2()
	if a < 30 || a > 400 {
		t.Fatalf("implausible 6T area %.1f µm²", a)
	}
	// Exactly two electrical NMOS pass gates on wl.
	passes := 0
	for _, m := range c.Transistors {
		if m.G == "wl" && m.Type == tech.NMOS {
			passes++
		}
	}
	if passes != 2 {
		t.Fatalf("pass gate count %d", passes)
	}
}

func TestBufferSizingGrowsDevices(t *testing.T) {
	p1 := Precharge(tech.CDA07, 1)
	p2 := Precharge(tech.CDA07, 2)
	if !(p2.Transistors[0].W > p1.Transistors[0].W) {
		t.Fatal("bufSize should widen precharge devices")
	}
	i1 := Inv(tech.CDA07, 1)
	i3 := Inv(tech.CDA07, 2)
	if !(i3.Transistors[0].W > i1.Transistors[0].W) {
		t.Fatal("inverter sizing broken")
	}
}

func TestRowDecoderSlices(t *testing.T) {
	c := RowDecoderUnit(tech.CDA07, 7, 2)
	// 7 NAND slots (2 devices each) + inverter pair.
	if len(c.Transistors) != 16 {
		t.Fatalf("decoder transistors %d, want 16", len(c.Transistors))
	}
	// Height equal to the bit-cell height for row abutment.
	if c.Bounds().H() != SRAM6T(tech.CDA07).Bounds().H() {
		t.Fatal("decoder height must match the bit-cell height")
	}
	for i := 0; i < 7; i++ {
		if _, ok := c.Port("a" + string(rune('0'+i))); !ok {
			t.Errorf("missing address port a%d", i)
		}
	}
	if _, ok := c.Port("wl"); !ok {
		t.Fatal("missing wl port")
	}
}

func TestCAMCell(t *testing.T) {
	c := CAMCell(tech.CDA07)
	if len(c.Transistors) != 7 {
		t.Fatalf("CAM transistors %d, want 7", len(c.Transistors))
	}
	if _, ok := c.Port("ml"); !ok {
		t.Fatal("missing match-line port")
	}
	// CAM bit is bigger than a plain 6T bit (compare stack).
	if !(c.Area() > SRAM6T(tech.CDA07).Area()) {
		t.Fatal("CAM cell should exceed the 6T cell area")
	}
}

func TestPLACells(t *testing.T) {
	on := PLACrosspoint(tech.CDA07, true)
	off := PLACrosspoint(tech.CDA07, false)
	if len(on.Transistors) != 1 || len(off.Transistors) != 0 {
		t.Fatal("crosspoint programming wrong")
	}
	if on.Bounds() != off.Bounds() {
		t.Fatal("crosspoint variants must share a pitch")
	}
	pu := PLAPullup(tech.CDA07)
	if len(pu.Transistors) != 1 || pu.Transistors[0].Type != tech.PMOS {
		t.Fatal("pullup should be a single PMOS")
	}
}

func TestExtractIntoSpice(t *testing.T) {
	c := Inv(tech.CDA07, 1)
	ckt := spice.New()
	ckt.V("vdd", "xvdd", spice.DC(tech.CDA07.VDD))
	ckt.V("vin", "xa", spice.DC(0))
	c.Extract(ckt, "x")
	op, err := ckt.OP()
	if err != nil {
		t.Fatal(err)
	}
	// Extracted inverter with input low must drive output high.
	if op["xy"] < tech.CDA07.VDD*0.9 {
		t.Fatalf("extracted inverter output %.2f", op["xy"])
	}
	// Wire caps present for labelled nets.
	caps := c.WireCaps()
	if caps["vdd"] <= 0 || caps["gnd"] <= 0 {
		t.Fatal("rail wire caps missing")
	}
	deck := ckt.Deck("inv")
	if !strings.Contains(deck, "Mxmn") || !strings.Contains(deck, "Mxmp") {
		t.Fatalf("deck missing extracted devices:\n%s", deck)
	}
}

func TestExtractedInverterSwitches(t *testing.T) {
	c := Inv(tech.CDA07, 2)
	ckt := spice.New()
	ckt.V("vdd", "xvdd", spice.DC(tech.CDA07.VDD))
	ckt.V("vin", "xa", spice.Step(0, tech.CDA07.VDD, 1e-9, 0.1e-9))
	c.Extract(ckt, "x")
	ckt.C("xy", "0", 20e-15)
	res, err := ckt.Transient(5e-9, 5e-12)
	if err != nil {
		t.Fatal(err)
	}
	d, err := res.PropDelay("xa", "xy", tech.CDA07.VDD, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > 2e-9 {
		t.Fatalf("extracted inverter delay %g", d)
	}
}

func TestGateLibraryTransistorCounts(t *testing.T) {
	l := lib(t)
	counts := map[string]int{
		l.Inv.Name: 2, l.Buf.Name: 4, l.Nand2.Name: 4, l.Nor2.Name: 4,
		l.Xor2.Name: 6, l.Mux2.Name: 6, l.DFF.Name: 14, l.Tribuf.Name: 4,
	}
	for _, c := range []*Cell{l.Inv, l.Buf, l.Nand2, l.Nor2, l.Xor2, l.Mux2, l.DFF, l.Tribuf} {
		if got := len(c.Transistors); got != counts[c.Name] {
			t.Errorf("%s: %d transistors, want %d", c.Name, got, counts[c.Name])
		}
	}
}

func TestSharedCellHeight(t *testing.T) {
	l := lib(t)
	h := l.SRAM.Bounds().H()
	for _, c := range []*Cell{l.Precharge, l.SenseAmp, l.WriteDrv, l.ColMux,
		l.CAM, l.Inv, l.Nand2, l.Nor2, l.Xor2, l.Mux2, l.DFF, l.Tribuf} {
		if c.Bounds().H() != h {
			t.Errorf("%s height %d != bit-cell height %d", c.Name, c.Bounds().H(), h)
		}
	}
}
