package leafcell

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/tech"
)

// Shared template dimensions (lambdas). All leaf cells share the same
// height and horizontal device pitch so rails and rows abut cleanly.
// With the clearances below, every generated cell passes the
// simplified DRC for poly and the metal layers:
//
//   - max device width 6λ keeps NMOS gate poly below y=18 and PMOS
//     gate poly above y=24, leaving the shared horizontal poly track
//     at y=20..22 with 2λ (= min poly spacing) on both sides;
//   - device M1 tabs sit >= 6λ from the supply rails (double the
//     metal1 spacing rule), and the vdd and gnd rails live at
//     opposite cell edges, so the critical area for fatal vdd-gnd
//     bridges is zero for all realistic spot-defect radii (the §VII
//     template argument; see the CAA experiment).
const (
	devPitch   = 14 // horizontal device pitch
	cellHeight = 40 // standard cell/bit-cell height
	railW      = 3  // power rail width (metal1 minimum)
	nmosRowY   = 10 // NMOS active bottom
	pmosRowY   = 26 // PMOS active bottom
	wlY        = 20 // horizontal poly track (wordline / gate strap)
	maxDevW    = 6  // channel width clamp for the template
)

// frame draws the power rails and abutment box for a cell of the
// given width (lambdas) and registers the rail ports.
func frame(b *B, widthL int) {
	b.Rect(tech.Metal1, 0, 0, widthL, railW, "gnd")
	b.Rect(tech.Metal1, 0, cellHeight-railW, widthL, cellHeight, "vdd")
	b.Abut(0, 0, widthL, cellHeight)
	b.Port("gnd", tech.Metal1, 0, 0, widthL, railW, geom.West)
	b.Port("vdd", tech.Metal1, 0, cellHeight-railW, widthL, cellHeight, geom.East)
}

// devX returns the active-left x of device slot i (0-based).
func devX(i int) int { return 2 + i*devPitch }

// widthFor returns the standard cell width for n device slots.
func widthFor(slots int) int { return devX(slots) + 1 }

func clampW(w int) int {
	if w < 3 {
		return 3
	}
	if w > maxDevW {
		return maxDevW
	}
	return w
}

// nmos places an NMOS in slot i with channel width w (clamped to the
// template).
func nmos(b *B, name string, slot, w int, d, g, s string) {
	b.Device(name, devX(slot), nmosRowY, clampW(w), tech.NMOS, d, g, s)
}

// pmos places a PMOS in slot i with channel width w (clamped).
func pmos(b *B, name string, slot, w int, d, g, s string) {
	b.Device(name, devX(slot), pmosRowY, clampW(w), tech.PMOS, d, g, s)
}

// drainPort puts a port on the existing drain M1 tab of the device in
// the given slot/row (so no extra metal is needed).
func drainPort(b *B, name string, slot, w int, onNMOS bool, dir geom.PortDir) {
	w = clampW(w)
	rowY := nmosRowY
	if !onNMOS {
		rowY = pmosRowY
	}
	cy := rowY + w/2 - 1
	x := devX(slot)
	b.Port(name, tech.Metal1, x+7, cy-1, x+11, cy+3, dir)
}

// gatePort puts a port on the bottom of the gate poly of the device in
// the given slot (NMOS row).
func gatePort(b *B, name string, slot int, dir geom.PortDir) {
	x := devX(slot)
	b.Port(name, tech.Poly, x+5, nmosRowY-2, x+7, nmosRowY, dir)
}

// SRAM6T generates the six-transistor bit cell. Its layout template is
// the one the paper credits with near-zero critical area for fatal
// (global-net) defects. Ports: bl/blb (metal2, vertical), wl (poly,
// horizontal), vdd/gnd rails.
func SRAM6T(p *tech.Process) *Cell {
	b := newB(p, "sram6t")
	w := widthFor(3)
	frame(b, w)
	// Bitlines on metal2; inset 2λ so abutted neighbours keep the M2
	// spacing rule.
	b.Rect(tech.Metal2, 2, 0, 5, cellHeight, "bl")
	b.Rect(tech.Metal2, w-5, 0, w-2, cellHeight, "blb")
	// Wordline on poly across the cell; 2λ clear of every gate endcap.
	b.Rect(tech.Poly, 0, wlY, w, wlY+2, "wl")
	// Pass gates and pull-downs (NMOS row), pull-ups (PMOS row).
	nmos(b, "pg1", 0, 3, "bl", "wl", "q")
	nmos(b, "pd1", 1, 6, "q", "qb", "gnd")
	nmos(b, "pd2", 2, 6, "qb", "q", "gnd")
	pmos(b, "pg2d", 0, 3, "blb", "wl", "qb") // drawn in the PMOS row for density
	pmos(b, "pu1", 1, 4, "q", "qb", "vdd")
	pmos(b, "pu2", 2, 4, "qb", "q", "vdd")
	// The second pass device is electrically NMOS; fix the netlist
	// entry (the geometry slot is reused for density).
	tr := &b.C.Transistors[3]
	tr.Name, tr.Type = "pg2", tech.NMOS
	b.Port("bl", tech.Metal2, 2, 0, 5, cellHeight, geom.North)
	b.Port("blb", tech.Metal2, w-5, 0, w-2, cellHeight, geom.North)
	b.Port("wl", tech.Poly, 0, wlY, w, wlY+2, geom.West)
	return sanity(b.Done())
}

// Precharge generates the bitline precharge/equalise cell: two PMOS
// pull-ups plus an equaliser, with widths scaled by bufSize (the
// user's critical-gate size parameter; widths clamp to the template).
func Precharge(p *tech.Process, bufSize int) *Cell {
	if bufSize < 1 {
		bufSize = 1
	}
	b := newB(p, fmt.Sprintf("precharge_x%d", bufSize))
	w := widthFor(3)
	frame(b, w)
	b.Rect(tech.Metal2, 2, 0, 5, cellHeight, "bl")
	b.Rect(tech.Metal2, w-5, 0, w-2, cellHeight, "blb")
	b.Rect(tech.Poly, 0, wlY, w, wlY+2, "pre")
	dw := 3 * bufSize
	pmos(b, "pp1", 0, dw, "bl", "pre", "vdd")
	pmos(b, "pp2", 1, dw, "blb", "pre", "vdd")
	pmos(b, "peq", 2, dw, "bl", "pre", "blb")
	b.Port("bl", tech.Metal2, 2, 0, 5, cellHeight, geom.South)
	b.Port("blb", tech.Metal2, w-5, 0, w-2, cellHeight, geom.South)
	b.Port("pre", tech.Poly, 0, wlY, w, wlY+2, geom.West)
	return sanity(b.Done())
}

// SenseAmp generates the current-mode sense amplifier of Fig. 3: a
// cross-coupled sensing pair, tail bias device and output buffer. A
// small current differential on bl/blb latches the amplifier.
func SenseAmp(p *tech.Process) *Cell {
	b := newB(p, "senseamp")
	w := widthFor(4)
	frame(b, w)
	b.Rect(tech.Metal2, 2, 0, 5, cellHeight, "bl")
	b.Rect(tech.Metal2, w-5, 0, w-2, cellHeight, "blb")
	b.Rect(tech.Poly, 0, wlY, w, wlY+2, "saen")
	nmos(b, "mcc1", 0, 6, "out", "outb", "tail")
	nmos(b, "mcc2", 1, 6, "outb", "out", "tail")
	nmos(b, "mtail", 2, 6, "tail", "saen", "gnd")
	nmos(b, "mobuf", 3, 4, "dout", "outb", "gnd")
	pmos(b, "mld1", 0, 4, "out", "bl", "vdd")
	pmos(b, "mld2", 1, 4, "outb", "blb", "vdd")
	pmos(b, "mpbuf", 3, 6, "dout", "outb", "vdd")
	b.Port("bl", tech.Metal2, 2, 0, 5, cellHeight, geom.North)
	b.Port("blb", tech.Metal2, w-5, 0, w-2, cellHeight, geom.North)
	b.Port("saen", tech.Poly, 0, wlY, w, wlY+2, geom.West)
	drainPort(b, "dout", 3, 4, true, geom.South)
	return sanity(b.Done())
}

// WriteDriver generates the write driver: in write mode the sense amp
// is bypassed and the bitlines are driven directly.
func WriteDriver(p *tech.Process) *Cell {
	b := newB(p, "writedriver")
	w := widthFor(4)
	frame(b, w)
	b.Rect(tech.Metal2, 2, 0, 5, cellHeight, "bl")
	b.Rect(tech.Metal2, w-5, 0, w-2, cellHeight, "blb")
	b.Rect(tech.Poly, 0, wlY, w, wlY+2, "wen")
	nmos(b, "mn1", 0, 6, "bl", "din_b", "gnd")
	nmos(b, "mn2", 1, 6, "blb", "din", "gnd")
	nmos(b, "men1", 2, 6, "bl", "wen", "blv")
	nmos(b, "men2", 3, 6, "blb", "wen", "blbv")
	pmos(b, "mp1", 0, 6, "bl", "din", "vdd")
	pmos(b, "mp2", 1, 6, "blb", "din_b", "vdd")
	b.Port("bl", tech.Metal2, 2, 0, 5, cellHeight, geom.North)
	b.Port("blb", tech.Metal2, w-5, 0, w-2, cellHeight, geom.North)
	b.Port("wen", tech.Poly, 0, wlY, w, wlY+2, geom.West)
	gatePort(b, "din", 1, geom.South)
	return sanity(b.Done())
}

// ColMux generates one column-multiplexer slice: the pass-transistor
// pair selecting this bitline pair onto the shared data bus (Fig. 2's
// column-multiplexed addressing).
func ColMux(p *tech.Process) *Cell {
	b := newB(p, "colmux")
	w := widthFor(2)
	frame(b, w)
	b.Rect(tech.Metal2, 2, 0, 5, cellHeight, "bl")
	b.Rect(tech.Metal2, w-5, 0, w-2, cellHeight, "blb")
	b.Rect(tech.Poly, 0, wlY, w, wlY+2, "sel")
	nmos(b, "mpass1", 0, 6, "dbus", "sel", "bl")
	nmos(b, "mpass2", 1, 6, "dbusb", "sel", "blb")
	b.Port("bl", tech.Metal2, 2, 0, 5, cellHeight, geom.North)
	b.Port("blb", tech.Metal2, w-5, 0, w-2, cellHeight, geom.North)
	b.Port("sel", tech.Poly, 0, wlY, w, wlY+2, geom.West)
	drainPort(b, "dbus", 0, 6, true, geom.South)
	drainPort(b, "dbusb", 1, 6, true, geom.South)
	return sanity(b.Done())
}

// RowDecoderUnit generates one row decoder slice: an addrBits-input
// static NAND plus the sized wordline driver inverter. It shares the
// bit-cell height so one unit abuts each array row.
func RowDecoderUnit(p *tech.Process, addrBits, bufSize int) *Cell {
	if addrBits < 1 {
		addrBits = 1
	}
	if bufSize < 1 {
		bufSize = 1
	}
	b := newB(p, fmt.Sprintf("rowdec_a%d_x%d", addrBits, bufSize))
	slots := addrBits + 2
	w := widthFor(slots)
	frame(b, w)
	// NAND: series NMOS chain, parallel PMOS.
	for i := 0; i < addrBits; i++ {
		src := fmt.Sprintf("n%d", i)
		if i == addrBits-1 {
			src = "gnd"
		}
		drn := fmt.Sprintf("n%d", i-1)
		if i == 0 {
			drn = "wlb"
		}
		g := fmt.Sprintf("a%d", i)
		nmos(b, fmt.Sprintf("mnd%d", i), i, 4, drn, g, src)
		pmos(b, fmt.Sprintf("mpd%d", i), i, 4, "wlb", g, "vdd")
		// Address input pins: vertical metal2 stubs over the gates.
		x := devX(i) + 5
		b.Rect(tech.Metal2, x, 0, x+3, 8, g)
		b.Port(g, tech.Metal2, x, 0, x+3, 8, geom.South)
	}
	// Wordline driver inverter, sized by bufSize.
	dw := 3 * bufSize
	nmos(b, "mninv", addrBits, dw, "wl", "wlb", "gnd")
	pmos(b, "mpinv", addrBits+1, dw, "wl", "wlb", "vdd")
	// Wordline output on the shared poly track, exiting east.
	b.Rect(tech.Poly, devX(addrBits), wlY, w, wlY+2, "wl")
	b.Port("wl", tech.Poly, devX(addrBits), wlY, w, wlY+2, geom.East)
	return sanity(b.Done())
}

// CAMCell generates one TLB content-addressable bit: a 6T storage cell
// plus the XOR compare stack that discharges the match line on a
// mismatch. The match lines of a TLB row wire-AND horizontally,
// giving the single-cycle parallel compare of the paper's BISR design.
func CAMCell(p *tech.Process) *Cell {
	b := newB(p, "camcell")
	w := widthFor(5)
	frame(b, w)
	b.Rect(tech.Metal2, 2, 0, 5, cellHeight, "sl")
	b.Rect(tech.Metal2, w-5, 0, w-2, cellHeight, "slb")
	b.Rect(tech.Poly, 0, wlY, w, wlY+2, "wl")
	// Match line: metal3 horizontal mid-cell (over the cell, clear of
	// the M1 device tabs).
	b.Rect(tech.Metal3, 0, 12, w, 17, "ml")
	// Storage (6T topology, compacted).
	nmos(b, "pg1", 0, 3, "sl", "wl", "q")
	nmos(b, "pd1", 1, 6, "q", "qb", "gnd")
	nmos(b, "pd2", 2, 6, "qb", "q", "gnd")
	pmos(b, "pu1", 1, 4, "q", "qb", "vdd")
	pmos(b, "pu2", 2, 4, "qb", "q", "vdd")
	// Compare stack: mismatch pulls the match line low.
	nmos(b, "mx1", 3, 4, "ml", "q", "x1")
	nmos(b, "mx2", 4, 4, "x1", "slb", "gnd")
	b.Port("sl", tech.Metal2, 2, 0, 5, cellHeight, geom.North)
	b.Port("slb", tech.Metal2, w-5, 0, w-2, cellHeight, geom.North)
	b.Port("wl", tech.Poly, 0, wlY, w, wlY+2, geom.West)
	b.Port("ml", tech.Metal3, 0, 12, w, 17, geom.East)
	return sanity(b.Done())
}

// PLA crosspoint cells: the pseudo-NMOS NOR-NOR planes are arrays of
// these. A programmed crosspoint carries one NMOS pull-down; an
// unprogrammed one is empty silicon of the same pitch.
const plaPitch = devPitch + 2 // square-ish crosspoint pitch

// PLACrosspoint returns the programmed (device) or empty variant.
func PLACrosspoint(p *tech.Process, programmed bool) *Cell {
	name := "pla_0"
	if programmed {
		name = "pla_1"
	}
	b := newB(p, name)
	b.Abut(0, 0, plaPitch, plaPitch)
	// Input line: vertical poly; term line: horizontal metal3 (clear
	// of the device's M1 tabs).
	b.Rect(tech.Poly, 7, 0, 9, plaPitch, "in")
	b.Rect(tech.Metal3, 0, 8, plaPitch, 13, "term")
	if programmed {
		b.Device("mx", 2, 3, 3, tech.NMOS, "term", "in", "gnd")
	}
	b.Port("in", tech.Poly, 7, 0, 9, plaPitch, geom.South)
	b.Port("term", tech.Metal3, 0, 8, plaPitch, 13, geom.West)
	return sanity(b.Done())
}

// PLAPullup returns the pseudo-NMOS load cell terminating a plane
// line.
func PLAPullup(p *tech.Process) *Cell {
	b := newB(p, "pla_pullup")
	b.Abut(0, 0, plaPitch, cellHeight)
	b.Rect(tech.Metal3, 0, 8, plaPitch, 13, "term")
	b.Rect(tech.Metal1, 0, cellHeight-railW, plaPitch, cellHeight, "vdd")
	b.Device("mpu", 2, pmosRowY, 4, tech.PMOS, "term", "gnd", "vdd")
	b.Port("term", tech.Metal3, 0, 8, plaPitch, 13, geom.West)
	b.Port("vdd", tech.Metal1, 0, cellHeight-railW, plaPitch, cellHeight, geom.East)
	return sanity(b.Done())
}
