// Package bisr implements BISRAMGEN's built-in self-repair: the
// translation lookaside buffer (TLB) that performs a parallel
// associative compare of the incoming row address against the stored
// faulty rows and diverts matches to spare rows in a predetermined,
// strictly increasing sequence; the repairable RAM wrapper; the
// combined test-and-repair controller (single two-pass run and the
// iterated 2k-pass variant that repairs faults within the spares
// themselves); and the two prior-art baselines the paper compares
// against (Sawada et al. 1989 and Chen–Sunada 1993).
package bisr

import "repro/internal/cerr"

// Entry is one TLB row: a faulty row address mapped to the spare row
// whose index equals the entry's position in the fill sequence.
type Entry struct {
	Row   int  // faulty row address
	Spare int  // spare row index it diverts to
	Valid bool // cleared when a later entry supersedes it
}

// TLB is the associative repair map. Stores assign spare rows in
// strictly increasing order; looking up a row returns the most recent
// valid entry, so remapping a row (e.g. when its first spare turned
// out faulty) supersedes the earlier mapping, exactly the property the
// paper uses to guarantee that any faulty row — spare or not — can be
// replaced given enough spares.
type TLB struct {
	spares   int
	entries  []Entry
	overflow bool
}

// NewTLB returns a TLB backed by the given number of spare rows. The
// constructor is total: a negative spare count is clamped to zero (a
// TLB with no capacity), matching the hardware reality that you cannot
// build negative spare rows. Spare counts are validated against the
// user envelope at the sram / compiler boundary.
func NewTLB(spares int) *TLB {
	if spares < 0 {
		spares = 0
	}
	return &TLB{spares: spares}
}

// Reset clears all entries (a fresh self-test run).
func (t *TLB) Reset() {
	t.entries = t.entries[:0]
	t.overflow = false
}

// Store records a faulty row, allocating the next spare in the
// strictly increasing sequence. Storing a row that already has a valid
// entry supersedes it (the old spare is abandoned). It returns the
// assigned spare index, or an error when the spares are exhausted.
func (t *TLB) Store(row int) (int, error) {
	if len(t.entries) >= t.spares {
		t.overflow = true
		return -1, cerr.New(cerr.CodeRepairFailed, "bisr: TLB full (%d spares)", t.spares)
	}
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].Row == row {
			t.entries[i].Valid = false
		}
	}
	spare := len(t.entries)
	t.entries = append(t.entries, Entry{Row: row, Spare: spare, Valid: true})
	return spare, nil
}

// Lookup performs the parallel compare: it returns the spare row for
// an incoming row address, if any valid entry matches.
func (t *TLB) Lookup(row int) (int, bool) {
	// Hardware: all entries compare simultaneously; the newest valid
	// match wins via the priority encoder.
	for i := len(t.entries) - 1; i >= 0; i-- {
		if t.entries[i].Valid && t.entries[i].Row == row {
			return t.entries[i].Spare, true
		}
	}
	return 0, false
}

// Has reports whether the row currently has a valid mapping.
func (t *TLB) Has(row int) bool {
	_, ok := t.Lookup(row)
	return ok
}

// Used returns the number of spares consumed (valid or superseded).
func (t *TLB) Used() int { return len(t.entries) }

// Spares returns the TLB capacity.
func (t *TLB) Spares() int { return t.spares }

// Overflow reports whether a store was rejected for lack of spares.
func (t *TLB) Overflow() bool { return t.overflow }

// Entries returns a copy of the entry table (for reports).
func (t *TLB) Entries() []Entry { return append([]Entry(nil), t.entries...) }

// StrictlyIncreasing verifies the invariant that spare indices were
// issued in increasing order (always true by construction; exposed for
// property tests).
func (t *TLB) StrictlyIncreasing() bool {
	for i := range t.entries {
		if t.entries[i].Spare != i {
			return false
		}
	}
	return true
}
