package bisr

import (
	"fmt"

	"repro/internal/march"
	"repro/internal/sram"
)

// ChenSunadaRAM is a functional model of the Chen–Sunada hierarchical
// self-repairing memory (the paper's §III comparison target): the
// word-oriented array is divided into subblocks, each with two
// redundant word locations and an address-correction block; a
// top-level fault assembler diverts accesses from dead subblocks to
// spare subblocks. It implements march.DUT in both test (raw) and
// normal (corrected) modes, so the same march engines drive it.
type ChenSunadaRAM struct {
	cfg ChenSunadaConfig
	arr *sram.Array
	// Corrected mode: address correction + fault assembler active.
	Corrected bool

	// redundant[addr] is the fault-free redundant location a faulty
	// address was diverted to (each subblock holds at most 2).
	redundant map[int]uint64
	diverted  map[int]bool
	perBlock  map[int]int
	// deadBlock[b] -> spare block index; spare blocks are fault-free.
	deadBlock  map[int]int
	spareStore map[int]uint64 // (spareIdx*SubblockWords + offset) -> data
	sparesUsed int

	compareOps int64
}

// NewChenSunadaRAM wraps a fault-injectable array. The array must
// have no BISRAMGEN spare rows (this scheme brings its own
// redundancy).
func NewChenSunadaRAM(arr *sram.Array, cfg ChenSunadaConfig) (*ChenSunadaRAM, error) {
	if arr.Config().SpareRows != 0 {
		return nil, fmt.Errorf("bisr: Chen-Sunada model wants an array without spare rows")
	}
	if arr.Words() != cfg.Words {
		return nil, fmt.Errorf("bisr: array/config word mismatch")
	}
	if cfg.SubblockWords <= 0 || cfg.Words%cfg.SubblockWords != 0 {
		return nil, fmt.Errorf("bisr: bad subblock geometry")
	}
	return &ChenSunadaRAM{
		cfg: cfg, arr: arr,
		redundant:  map[int]uint64{},
		diverted:   map[int]bool{},
		perBlock:   map[int]int{},
		deadBlock:  map[int]int{},
		spareStore: map[int]uint64{},
	}, nil
}

// Words implements march.DUT.
func (c *ChenSunadaRAM) Words() int { return c.cfg.Words }

// Wait implements march.DUT.
func (c *ChenSunadaRAM) Wait() { c.arr.Wait() }

func (c *ChenSunadaRAM) block(addr int) int { return addr / c.cfg.SubblockWords }

// Read implements march.DUT.
func (c *ChenSunadaRAM) Read(addr int) uint64 {
	if c.Corrected {
		// Sequential compares against the capture blocks (the delay
		// penalty the paper criticises).
		c.compareOps += int64(c.CompareOpsAt(addr))
		if sp, dead := c.deadBlock[c.block(addr)]; dead {
			return c.spareStore[sp*c.cfg.SubblockWords+addr%c.cfg.SubblockWords]
		}
		if c.diverted[addr] {
			return c.redundant[addr]
		}
	}
	return c.arr.Read(addr)
}

// Write implements march.DUT.
func (c *ChenSunadaRAM) Write(addr int, data uint64) {
	if c.Corrected {
		c.compareOps += int64(c.CompareOpsAt(addr))
		if sp, dead := c.deadBlock[c.block(addr)]; dead {
			c.spareStore[sp*c.cfg.SubblockWords+addr%c.cfg.SubblockWords] = data
			return
		}
		if c.diverted[addr] {
			c.redundant[addr] = data
			return
		}
	}
	c.arr.Write(addr, data)
}

// CompareOpsAt returns the sequential comparison count an access to
// addr suffers (1 or 2 depending on captured faults in the subblock).
func (c *ChenSunadaRAM) CompareOpsAt(addr int) int {
	n := c.perBlock[c.block(addr)]
	if n > 2 {
		n = 2
	}
	if n == 0 {
		return 1
	}
	return n
}

// CompareOps returns the cumulative sequential compares in corrected
// mode.
func (c *ChenSunadaRAM) CompareOps() int64 { return c.compareOps }

// SelfTestAndRepair runs the scheme's flow: test raw with IFA-13 and
// the scheme's single data background, register failing addresses in
// the per-subblock capture blocks (up to two each), run the fault
// assembler for over-budget subblocks, then verify in corrected mode.
func (c *ChenSunadaRAM) SelfTestAndRepair() (repaired bool, deadBlocks int, err error) {
	bpw := c.arr.Config().BPW
	c.Corrected = false
	res := march.Run(c, march.IFA13(), march.SingleBackground(), bpw)
	// Register failures.
	over := map[int][]int{}
	for _, addr := range res.FailedAddrs() {
		b := c.block(addr)
		if c.diverted[addr] {
			continue
		}
		if c.perBlock[b] < c.RepairableAddrsPerSubblock() {
			c.perBlock[b]++
			c.diverted[addr] = true
			c.redundant[addr] = 0
		} else {
			c.perBlock[b]++
			over[b] = append(over[b], addr)
		}
	}
	// Fault assembler: divert dead subblocks to spare blocks.
	for b := range over {
		if c.sparesUsed < c.cfg.SpareBlocks {
			c.deadBlock[b] = c.sparesUsed
			c.sparesUsed++
		} else {
			return false, len(over), nil
		}
	}
	// Verification pass, corrected.
	c.Corrected = true
	ver := march.Run(c, march.IFA13(), march.SingleBackground(), bpw)
	return ver.Pass(), len(c.deadBlock), nil
}

// RepairableAddrsPerSubblock mirrors the capacity constant.
func (c *ChenSunadaRAM) RepairableAddrsPerSubblock() int { return 2 }
