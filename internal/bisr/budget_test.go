package bisr

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cerr"
	"repro/internal/sram"
)

// TestRunCtxDeadline runs the iterated repair flow on a large array
// under a 1 ms deadline: the controller must stop promptly, surface
// ERR_BUDGET_EXCEEDED, and hand back the partial Outcome.
func TestRunCtxDeadline(t *testing.T) {
	arr, err := sram.New(sram.Config{Words: 16384, BPW: 16, BPC: 4, SpareRows: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewController(NewRAM(arr))
	ctl.MaxIterations = 4
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	out, err := ctl.RunCtx(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, cerr.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("repair did not stop promptly: %v", elapsed)
	}
	if out == nil {
		t.Fatal("no partial outcome returned")
	}
	if out.Repaired {
		t.Fatal("cancelled run cannot claim success")
	}
}

// TestRunCtxCancelledUpfront exercises the deterministic path: a
// context that is already dead fails before the first engine cycle.
func TestRunCtxCancelledUpfront(t *testing.T) {
	arr := newArr(t, 4)
	ctl := NewController(NewRAM(arr))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := ctl.RunCtx(ctx)
	if !errors.Is(err, cerr.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if out == nil || out.Iterations != 0 {
		t.Fatalf("partial outcome wrong: %+v", out)
	}
}
