package bisr

import (
	"repro/internal/sram"
)

// Mode selects how the repairable RAM treats the TLB.
type Mode int

// Access modes.
const (
	// Bypass ignores the TLB entirely: raw array access (BIST pass 1
	// of the first test-and-repair iteration).
	Bypass Mode = iota
	// Map diverts any incoming row with a valid TLB entry to its spare
	// row (normal operation and BIST pass 2).
	Map
)

// RAM is the built-in self-repairable RAM: the array plus the TLB in
// the address path. It implements march.DUT, so both the march
// interpreter and the microprogrammed BIST engine can drive it.
type RAM struct {
	Arr  *sram.Array
	TLB  *TLB
	Mode Mode

	// tlbLookups counts address translations attempted in Map mode,
	// for the delay-penalty accounting.
	tlbLookups int64
	tlbHits    int64
}

// NewRAM wraps an array whose config carries the spare-row count.
func NewRAM(arr *sram.Array) *RAM {
	return &RAM{Arr: arr, TLB: NewTLB(arr.Config().SpareRows)}
}

// Words returns the addressable word count (spares are not directly
// addressable, exactly as in the hardware).
func (r *RAM) Words() int { return r.Arr.Words() }

// Wait forwards the retention delay.
func (r *RAM) Wait() { r.Arr.Wait() }

// translate maps a word address to (row-space, col-select) honouring
// the mode. The boolean reports whether the access was diverted to a
// spare.
func (r *RAM) translate(addr int) (row, cs int, spare bool) {
	bpc := r.Arr.Config().BPC
	row, cs = addr/bpc, addr%bpc
	if r.Mode == Map {
		r.tlbLookups++
		if sp, ok := r.TLB.Lookup(row); ok {
			r.tlbHits++
			return sp, cs, true
		}
	}
	return row, cs, false
}

// Read returns the word at addr, diverted through the TLB in Map mode.
func (r *RAM) Read(addr int) uint64 {
	row, cs, spare := r.translate(addr)
	if spare {
		return r.Arr.ReadSpare(row, cs)
	}
	return r.Arr.Read(addr)
}

// Write stores the word at addr, diverted through the TLB in Map mode.
func (r *RAM) Write(addr int, data uint64) {
	row, cs, spare := r.translate(addr)
	if spare {
		r.Arr.WriteSpare(row, cs, data)
		return
	}
	r.Arr.Write(addr, data)
}

// TLBStats returns the lookup and hit counts accumulated in Map mode.
func (r *RAM) TLBStats() (lookups, hits int64) { return r.tlbLookups, r.tlbHits }
