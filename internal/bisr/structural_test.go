package bisr

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cerr"
	"repro/internal/logicsim"
)

func newStructural(t *testing.T, spares, addrBits int) *StructuralTLB {
	t.Helper()
	s := logicsim.New()
	st := BuildStructuralTLB(s, spares, addrBits, "tlb")
	if err := st.Reset(); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStructuralTLBBasics(t *testing.T) {
	st := newStructural(t, 4, 5)
	// Empty: no hit anywhere.
	for _, r := range []int{0, 7, 31} {
		if _, hit, err := st.Lookup(r); err != nil || hit {
			t.Fatalf("empty TLB hit row %d (err %v)", r, err)
		}
	}
	// Store rows 10 and 3; strictly increasing spares.
	ok, err := st.StoreRow(10)
	if err != nil || !ok {
		t.Fatal(err)
	}
	ok, err = st.StoreRow(3)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if sp, hit, _ := st.Lookup(10); !hit || sp != 0 {
		t.Fatalf("lookup 10 -> %d hit=%v", sp, hit)
	}
	if sp, hit, _ := st.Lookup(3); !hit || sp != 1 {
		t.Fatalf("lookup 3 -> %d hit=%v", sp, hit)
	}
	if _, hit, _ := st.Lookup(11); hit {
		t.Fatal("phantom hit")
	}
}

func TestStructuralTLBSupersede(t *testing.T) {
	st := newStructural(t, 4, 5)
	if _, err := st.StoreRow(7); err != nil {
		t.Fatal(err)
	}
	// Re-store the same row (faulty spare): the newer entry (spare 1)
	// must win the priority encode.
	if _, err := st.StoreRow(7); err != nil {
		t.Fatal(err)
	}
	sp, hit, err := st.Lookup(7)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || sp != 1 {
		t.Fatalf("superseded lookup -> %d hit=%v, want spare 1", sp, hit)
	}
}

func TestStructuralTLBFull(t *testing.T) {
	st := newStructural(t, 2, 4)
	if ok, _ := st.StoreRow(1); !ok {
		t.Fatal("store 1 refused")
	}
	if ok, _ := st.StoreRow(2); !ok {
		t.Fatal("store 2 refused")
	}
	if !st.IsFull() {
		t.Fatal("full flag not raised")
	}
	if ok, _ := st.StoreRow(3); ok {
		t.Fatal("overflow store accepted")
	}
	// The rejected row must not hit.
	if _, hit, _ := st.Lookup(3); hit {
		t.Fatal("rejected store became visible")
	}
	// Existing entries untouched.
	if sp, hit, _ := st.Lookup(2); !hit || sp != 1 {
		t.Fatal("existing entry corrupted by overflow store")
	}
}

// TestStructuralMatchesBehavioural drives random interleaved
// store/lookup traffic through the gate-level TLB and the behavioural
// TLB and requires identical observable behaviour.
func TestStructuralMatchesBehavioural(t *testing.T) {
	const spares, addrBits = 4, 5
	st := newStructural(t, spares, addrBits)
	ref := NewTLB(spares)
	rng := rand.New(rand.NewSource(99))
	for op := 0; op < 120; op++ {
		row := rng.Intn(1 << addrBits)
		if rng.Intn(3) == 0 && ref.Used() < spares {
			if _, err := ref.Store(row); err != nil {
				t.Fatal(err)
			}
			ok, err := st.StoreRow(row)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("structural store refused while behavioural accepted (op %d)", op)
			}
			continue
		}
		wantSp, wantHit := ref.Lookup(row)
		gotSp, gotHit, err := st.Lookup(row)
		if err != nil {
			t.Fatal(err)
		}
		if wantHit != gotHit || (wantHit && wantSp != gotSp) {
			t.Fatalf("op %d row %d: structural (%d,%v) vs behavioural (%d,%v)",
				op, row, gotSp, gotHit, wantSp, wantHit)
		}
	}
}

// Property: after storing any distinct row sequence within capacity,
// every stored row hits its assignment-order spare.
func TestQuickStructuralAssignment(t *testing.T) {
	f := func(seed int64) bool {
		s := logicsim.New()
		st := BuildStructuralTLB(s, 4, 4, "qt")
		if err := st.Reset(); err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		rows := rng.Perm(16)[:4]
		for i, r := range rows {
			ok, err := st.StoreRow(r)
			if err != nil || !ok {
				return false
			}
			sp, hit, err := st.Lookup(r)
			if err != nil || !hit || sp != i {
				return false
			}
		}
		return st.IsFull()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestStructuralTLBBadGeometryIsTypedError(t *testing.T) {
	s := logicsim.New()
	BuildStructuralTLB(s, 0, 4, "x")
	err := s.Err()
	if err == nil {
		t.Fatal("expected construction error for zero spares")
	}
	if !errors.Is(err, cerr.ErrNetlist) {
		t.Fatalf("construction error must be ErrNetlist, got %v", err)
	}
	// The malformed netlist must refuse to simulate.
	if serr := s.Settle(); serr == nil || !errors.Is(serr, cerr.ErrNetlist) {
		t.Fatalf("Settle on a failed netlist must return the construction error, got %v", serr)
	}
}
