package bisr

import (
	"context"
	"sort"

	"repro/internal/bist"
	"repro/internal/cerr"
	"repro/internal/march"
	"repro/internal/obs"
)

// Outcome summarises a self-test-and-repair session.
type Outcome struct {
	Repaired   bool // the final verification pass saw no faults
	Iterations int  // test-and-repair iterations executed (1 = single 2-pass run)
	SparesUsed int
	Captures   int // total pass-1 captures across iterations
	Overflow   bool
	Stats      []bist.RunStats // per-iteration engine statistics
	// ColumnSuspects lists physical columns whose failures span more
	// rows than the spare budget: the §VI signature of a column
	// (bitline) defect, which row redundancy cannot repair. The
	// controller diagnoses these from the captured miscompare data;
	// the paper's flow reports them and leaves repair to off-chip
	// means.
	ColumnSuspects []int
}

// Controller owns the repair session for one RAM.
type Controller struct {
	RAM  *RAM
	Test march.Test
	// MaxIterations bounds the iterated 2k-pass flow; 1 reproduces the
	// paper's base two-pass algorithm. 0 defaults to 1.
	MaxIterations int
}

// NewController returns a controller running IFA-9, the algorithm
// BISRAMGEN microprograms by default.
func NewController(ram *RAM) *Controller {
	return &Controller{RAM: ram, Test: march.IFA9(), MaxIterations: 1}
}

// Run executes the test-and-repair flow. Each iteration is one
// microprogrammed engine run: pass 1 captures faulty rows into the
// TLB, the SetPass transition flips the RAM into Map mode, and pass 2
// re-tests through the mapping. If pass 2 fails (Repair Unsuccessful)
// and more iterations are allowed, the cycle repeats with capture
// active through the map — replacing faulty spares via the strictly
// increasing spare sequence.
//
// After a successful run the RAM is left in Map mode, ready for
// normal operation.
func (c *Controller) Run() (*Outcome, error) {
	return c.RunCtx(context.Background())
}

// RunCtx is Run with cooperative cancellation. The context is threaded
// into every engine run (checked every few thousand emulated cycles)
// and re-checked between iterations; on expiry the controller returns
// the partial Outcome accumulated so far together with a typed
// cerr.ErrBudgetExceeded, so callers can still report how far the
// iterated repair got.
func (c *Controller) RunCtx(ctx context.Context) (*Outcome, error) {
	out := &Outcome{}
	var endSpan func(...obs.Attr)
	ctx, endSpan = obs.Start(ctx, "bisr.run")
	defer func() {
		endSpan(obs.Int("iterations", out.Iterations),
			obs.Int("captures", out.Captures),
			obs.Bool("repaired", out.Repaired))
	}()
	iters := c.MaxIterations
	if iters <= 0 {
		iters = 1
	}
	bpw := c.RAM.Arr.Config().BPW
	prog, err := bist.Assemble(c.Test)
	if err != nil {
		return nil, err
	}
	// colRows[c] is the set of rows whose captures implicated physical
	// column c, accumulated across iterations for the column-failure
	// diagnosis.
	colRows := map[int]map[int]bool{}
	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			return out, cerr.Wrap(cerr.CodeBudgetExceeded, err,
				"bisr: repair cancelled after %d iterations", it)
		}
		if it == 0 {
			c.RAM.Mode = Bypass
		} else {
			// Iterated repair: test through the existing mapping.
			c.RAM.Mode = Map
		}
		eng := bist.NewEngine(prog, c.RAM, bpw)
		captureEnabled := true
		// Failing incoming rows are accumulated during pass 1 and
		// committed to the TLB at the pass transition; committing
		// mid-march would redirect later pass-1 accesses of the same
		// row to a not-yet-written spare and cascade spurious
		// failures.
		failedRows := map[int]bool{}
		var rowOrder []int
		eng.OnCapture = func(cp bist.Capture) {
			if !captureEnabled {
				return
			}
			out.Captures++
			cfg := c.RAM.Arr.Config()
			row := cp.Addr / cfg.BPC
			if !failedRows[row] {
				failedRows[row] = true
				rowOrder = append(rowOrder, row)
			}
			// Column diagnosis: record which physical columns the
			// miscompared bits sit on.
			cs := cp.Addr % cfg.BPC
			diff := cp.Got ^ cp.Want
			for b := 0; b < cfg.BPW && diff != 0; b++ {
				if diff&(1<<uint(b)) != 0 {
					col := b*cfg.BPC + cs
					if colRows[col] == nil {
						colRows[col] = map[int]bool{}
					}
					colRows[col][row] = true
				}
			}
		}
		eng.OnPass2 = func() {
			captureEnabled = false
			for _, row := range rowOrder {
				if _, err := c.RAM.TLB.Store(row); err != nil {
					out.Overflow = true
					break
				}
			}
			c.RAM.Mode = Map
		}
		stats, err := eng.RunCtx(ctx, maxCyclesFor(c.RAM.Words(), bpw, c.Test))
		if stats != nil {
			out.Stats = append(out.Stats, *stats)
		}
		if err != nil {
			out.SparesUsed = c.RAM.TLB.Used()
			return out, cerr.Wrap(cerr.CodeInternal, err, "bisr: iteration %d", it)
		}
		out.Iterations = it + 1
		out.SparesUsed = c.RAM.TLB.Used()
		if !stats.Unsucc {
			out.Repaired = true
			c.RAM.Mode = Map
			c.diagnoseColumns(out, colRows)
			return out, nil
		}
		if c.RAM.TLB.Overflow() {
			out.Overflow = true
			break
		}
	}
	c.RAM.Mode = Map
	c.diagnoseColumns(out, colRows)
	return out, nil
}

// diagnoseColumns flags physical columns whose failures span more
// rows than the spare budget — the signature of a bitline defect that
// swamps row redundancy.
func (c *Controller) diagnoseColumns(out *Outcome, colRows map[int]map[int]bool) {
	spares := c.RAM.Arr.Config().SpareRows
	for col, rows := range colRows {
		if len(rows) > spares {
			out.ColumnSuspects = append(out.ColumnSuspects, col)
		}
	}
	sort.Ints(out.ColumnSuspects)
}

// maxCyclesFor bounds the engine run generously: ops per address per
// background per pass, times backgrounds, times two passes, plus
// bookkeeping states.
func maxCyclesFor(words, bpw int, t march.Test) int64 {
	perPass := int64(t.OpCount()+4) * int64(words) * int64(bpw+2)
	return 2*perPass + 10_000
}

// StrictGoodness implements the paper's manufacturing "goodness"
// criterion for the yield model: a BISR'ed RAM is good iff the number
// of faulty regular rows is at most the spare count and all spares are
// fault-free (BISRAMGEN's base flow performs a single round of spare
// substitution).
func StrictGoodness(faultyRegularRows, faultySpareRows, spares int) bool {
	return faultySpareRows == 0 && faultyRegularRows <= spares
}

// IteratedRepairable is the relaxed criterion achieved by the 2k-pass
// flow: faulty spares are themselves replaced, so the RAM is
// repairable iff the number of fault-free spares covers the faulty
// regular rows.
func IteratedRepairable(faultyRegularRows, faultySpareRows, spares int) bool {
	good := spares - faultySpareRows
	if good < 0 {
		good = 0
	}
	return faultyRegularRows <= good
}
