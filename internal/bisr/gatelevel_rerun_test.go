package bisr

import (
	"math/rand"
	"testing"

	"repro/internal/bist"
	"repro/internal/march"
	"repro/internal/sram"
)

// TestRerunMatchesFresh pins the netlist-reuse contract: Rerun on a
// reset, already-elaborated netlist must reproduce the verdict,
// capture count, and cycle count of a freshly elaborated run on an
// identical fault pattern.
func TestRerunMatchesFresh(t *testing.T) {
	cfg := sram.Config{Words: 32, BPW: 4, BPC: 4, SpareRows: 4}
	prog, err := bist.Assemble(march.IFA9())
	if err != nil {
		t.Fatal(err)
	}
	seedArr, _ := sram.New(cfg)
	g, err := NewGateLevel(seedArr, prog)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		nf := 1 + rng.Intn(5)
		type fp struct {
			cell sram.CellAddr
			kind sram.FaultKind
		}
		pattern := make([]fp, nf)
		for i := range pattern {
			k := sram.SA0
			if rng.Intn(2) == 1 {
				k = sram.SA1
			}
			pattern[i] = fp{cell: sram.CellAddr{Row: rng.Intn(cfg.Rows()), Col: rng.Intn(cfg.Cols())}, kind: k}
		}
		build := func() *sram.Array {
			a, _ := sram.New(cfg)
			for _, f := range pattern {
				_ = a.Inject(f.cell, sram.Fault{Kind: f.kind})
			}
			return a
		}
		fresh, err := RunGateLevelRepair(build(), march.IFA9(), 4_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Rerun(build(), 4_000_000); err != nil {
			t.Fatal(err)
		}
		if fresh.Repaired() != g.Repaired() || fresh.Captures != g.Captures || fresh.Cycles != g.Cycles {
			t.Errorf("trial %d nf=%d: fresh repaired=%v cap=%d cyc=%d, rerun repaired=%v cap=%d cyc=%d",
				trial, nf, fresh.Repaired(), fresh.Captures, fresh.Cycles,
				g.Repaired(), g.Captures, g.Cycles)
		}
	}
}
