package bisr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func bitmap(t *testing.T, rows, cols int, cells ...[2]int) *FaultBitmap {
	t.Helper()
	f := NewFaultBitmap(rows, cols)
	for _, c := range cells {
		if err := f.Mark(c[0], c[1]); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestAllocateSimpleRowCover(t *testing.T) {
	f := bitmap(t, 8, 8, [2]int{2, 1}, [2]int{2, 5}, [2]int{6, 3})
	a := AllocateSpares(f, 2, 0)
	if !a.Covered {
		t.Fatalf("should cover with 2 row spares: %+v", a)
	}
	if len(a.RepairRows) != 2 || a.RepairRows[0] != 2 || a.RepairRows[1] != 6 {
		t.Fatalf("rows = %v", a.RepairRows)
	}
}

func TestAllocateColumnDefect(t *testing.T) {
	// A whole faulty column swamps row redundancy (the paper's §VI
	// scenario) but a single spare column fixes it.
	f := NewFaultBitmap(16, 8)
	for r := 0; r < 16; r++ {
		if err := f.Mark(r, 3); err != nil {
			t.Fatal(err)
		}
	}
	if RowOnlyRepairable(f, 4) {
		t.Fatal("16 faulty rows must defeat 4 row spares")
	}
	a := AllocateSpares(f, 4, 1)
	if !a.Covered {
		t.Fatalf("one spare column should repair a column defect: %+v", a)
	}
	if len(a.RepairCols) != 1 || a.RepairCols[0] != 3 {
		t.Fatalf("cols = %v", a.RepairCols)
	}
	if len(a.RepairRows) != 0 {
		t.Fatalf("no rows should be spent: %v", a.RepairRows)
	}
	// Must-repair phase should have made this decision (column count
	// 16 exceeds the row budget 4).
	if a.MustCols != 1 {
		t.Fatalf("expected a must-repair column, got %+v", a)
	}
}

func TestAllocateMixedPattern(t *testing.T) {
	// A cross: one bad row, one bad column, plus scattered faults.
	f := NewFaultBitmap(16, 16)
	for c := 0; c < 16; c++ {
		_ = f.Mark(5, c)
	}
	for r := 0; r < 16; r++ {
		_ = f.Mark(r, 9)
	}
	_ = f.Mark(1, 1)
	_ = f.Mark(12, 14)
	a := AllocateSpares(f, 3, 1)
	if !a.Covered {
		t.Fatalf("cross + 2 singles should fit 3 rows + 1 col: %+v", a)
	}
	// The bad column must take the column spare; the bad row a row
	// spare; singles take rows.
	if len(a.RepairCols) != 1 || a.RepairCols[0] != 9 {
		t.Fatalf("cols = %v", a.RepairCols)
	}
	found5 := false
	for _, r := range a.RepairRows {
		if r == 5 {
			found5 = true
		}
	}
	if !found5 {
		t.Fatalf("row 5 not repaired: %v", a.RepairRows)
	}
}

func TestAllocateInsufficient(t *testing.T) {
	// Diagonal of 5 faults needs 5 lines; 2+2 cannot cover.
	f := NewFaultBitmap(8, 8)
	for i := 0; i < 5; i++ {
		_ = f.Mark(i, i)
	}
	a := AllocateSpares(f, 2, 2)
	if a.Covered {
		t.Fatal("5-fault diagonal cannot be covered by 4 spares")
	}
	if len(a.RepairRows) != 2 || len(a.RepairCols) != 2 {
		t.Fatalf("budgets not exhausted: %+v", a)
	}
}

func TestBitmapValidation(t *testing.T) {
	f := NewFaultBitmap(4, 4)
	if err := f.Mark(4, 0); err == nil {
		t.Fatal("row out of range accepted")
	}
	if err := f.Mark(0, -1); err == nil {
		t.Fatal("col out of range accepted")
	}
	_ = f.Mark(1, 1)
	_ = f.Mark(1, 1) // duplicate
	if f.Count() != 1 {
		t.Fatalf("count %d", f.Count())
	}
}

// Property: whenever the allocator claims Covered, replaying the
// repairs over the bitmap really leaves no fault uncovered, and the
// budgets are respected.
func TestQuickAllocationSound(t *testing.T) {
	fcheck := func(seed int64, nRaw, srRaw, scRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		f := NewFaultBitmap(12, 12)
		n := int(nRaw)%20 + 1
		for i := 0; i < n; i++ {
			_ = f.Mark(rng.Intn(12), rng.Intn(12))
		}
		sr, sc := int(srRaw)%5, int(scRaw)%5
		a := AllocateSpares(f, sr, sc)
		if len(a.RepairRows) > sr || len(a.RepairCols) > sc {
			return false
		}
		rows := map[int]bool{}
		cols := map[int]bool{}
		for _, r := range a.RepairRows {
			rows[r] = true
		}
		for _, c := range a.RepairCols {
			cols[c] = true
		}
		uncovered := 0
		for k := range f.faults {
			if !rows[k[0]] && !cols[k[1]] {
				uncovered++
			}
		}
		if a.Covered != (uncovered == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(fcheck, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: 2D allocation is at least as capable as row-only repair.
func TestQuickTwoDDominatesRowOnly(t *testing.T) {
	fcheck := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		f := NewFaultBitmap(10, 10)
		for i := 0; i < int(nRaw)%12+1; i++ {
			_ = f.Mark(rng.Intn(10), rng.Intn(10))
		}
		if RowOnlyRepairable(f, 4) {
			return AllocateSpares(f, 4, 2).Covered
		}
		return true
	}
	if err := quick.Check(fcheck, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
