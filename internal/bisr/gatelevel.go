package bisr

import (
	"fmt"
	"math/bits"

	"repro/internal/bist"
	"repro/internal/logicsim"
	"repro/internal/march"
	"repro/internal/sram"
)

// GateLevel is the complete structural BIST+BISR block: the TRPLA
// (gate-level PLA with its state register), ADDGEN (binary up/down
// counter with synchronous load), DATAGEN (Johnson counter, the
// background XOR network and the XOR/OR read comparator), and the
// TLB (CAM entries, parallel compare, priority encode, fill counter)
// — all elaborated into one logic-simulator netlist. Only the RAM
// array itself stays behavioural: the harness moves data between the
// array and the netlist's data buses each cycle, exactly where the
// real macro's bitlines would sit.
type GateLevel struct {
	Sim *logicsim.Sim
	Arr *sram.Array

	pla *bist.StructuralPLA
	cnt *logicsim.UpDownCounterNets
	jc  *logicsim.JohnsonCounterNets
	tlb *StructuralTLB

	readData []int // driven by the harness with RAM read data
	pattern  []int // background xor invert: write data / expectation
	errNet   int
	rstN     int

	addrBits int
	colBits  int
	bpw      int

	// results
	Captures    int
	Pass2Errors int
	Unsucc      bool
	Cycles      int64
}

// NewGateLevel elaborates the netlist for the given array geometry
// and march program.
func NewGateLevel(arr *sram.Array, prog *bist.Program) (*GateLevel, error) {
	cfg := arr.Config()
	if cfg.Words&(cfg.Words-1) != 0 {
		return nil, fmt.Errorf("bisr: gate-level BIST needs a power-of-2 word count")
	}
	if cfg.SpareRows < 1 {
		return nil, fmt.Errorf("bisr: gate-level BIST needs spare rows")
	}
	g := &GateLevel{
		Arr:      arr,
		Sim:      logicsim.New(),
		addrBits: bits.Len(uint(cfg.Words - 1)),
		colBits:  bits.Len(uint(cfg.BPC - 1)),
		bpw:      cfg.BPW,
	}
	s := g.Sim
	g.rstN = s.Net("rstN")
	g.pla = bist.BuildStructuralPLA(s, prog, "trpla")
	s.Gate(logicsim.BUF, g.pla.RstN, g.rstN)

	// ADDGEN.
	g.cnt = s.UpDownCounter("addgen", g.addrBits, g.rstN)
	sig := func(k int) int { return g.pla.Sigs[k] }
	s.Gate(logicsim.BUF, g.cnt.En, sig(bist.SigAddrStep))
	s.Gate(logicsim.BUF, g.cnt.Up, sig(bist.SigAddrUp))
	s.Gate(logicsim.BUF, g.cnt.Load, sig(bist.SigAddrLoad))
	// tc condition: the counter's terminal-count line.
	s.Gate(logicsim.BUF, g.pla.TC, g.cnt.Carry)

	// DATAGEN: Johnson background, pattern XOR network, comparator.
	g.jc = s.JohnsonCounter("datagen", g.bpw, g.rstN)
	s.Gate(logicsim.BUF, g.jc.En, sig(bist.SigDataStep))
	s.Gate(logicsim.BUF, g.jc.Load, sig(bist.SigDataLoad))
	// bgdone: the last background is the all-ones Johnson state.
	bgdone := s.AndReduce("bgdone", g.jc.Q)
	s.Gate(logicsim.BUF, g.pla.BGDone, bgdone)

	g.pattern = s.Bus("pattern", g.bpw)
	g.readData = s.Bus("readdata", g.bpw)
	diffs := make([]int, g.bpw)
	for i := 0; i < g.bpw; i++ {
		s.Gate(logicsim.XOR, g.pattern[i], g.jc.Q[i], sig(bist.SigInvert))
		diffs[i] = s.Net(fmt.Sprintf("cmp.d%d", i))
		s.Gate(logicsim.XOR, diffs[i], g.readData[i], g.pattern[i])
	}
	g.errNet = s.OrReduce("cmp.err", diffs)
	s.Gate(logicsim.BUF, g.pla.Err, g.errNet)

	// TLB on the row part of the address, with the store strobe gated
	// by the capture signal, a miss (no double allocation for an
	// already-mapped row), and pass 1.
	rowBus := g.cnt.Q[g.colBits:]
	g.tlb = BuildStructuralTLB(s, cfg.SpareRows, len(rowBus), "tlb")
	for i, rb := range rowBus {
		s.Gate(logicsim.BUF, g.tlb.Addr[i], rb)
	}
	s.Gate(logicsim.BUF, g.tlb.RstN, g.rstN)
	nHit := s.Net("tlb.nhit")
	s.Gate(logicsim.NOT, nHit, g.tlb.Hit)
	nPass2 := s.Net("npass2")
	s.Gate(logicsim.NOT, nPass2, g.pla.Pass2Q)
	s.Gate(logicsim.AND, g.tlb.Store, sig(bist.SigCapture), nHit, nPass2)
	return g, nil
}

// reset initialises every block.
func (g *GateLevel) reset() error {
	s := g.Sim
	s.Set(g.rstN, logicsim.L0)
	s.SetBus(g.readData, 0)
	if err := s.Settle(); err != nil {
		return err
	}
	if err := s.ApplyResets(); err != nil {
		return err
	}
	s.Set(g.rstN, logicsim.L1)
	return s.Settle()
}

// ramAccess performs one RAM read or write at the counter address,
// honouring the TLB mapping when pass 2 is active (the hardware's
// address diversion path).
func (g *GateLevel) ramAccess(write bool) (uint64, error) {
	s := g.Sim
	addrU, ok := s.ReadBus(g.cnt.Q)
	if !ok {
		return 0, fmt.Errorf("bisr: address bus unknown")
	}
	addr := int(addrU)
	cs := addr & (1<<uint(g.colBits) - 1)
	mapped := false
	var spare int
	if s.Value(g.pla.Pass2Q) == logicsim.L1 && s.Value(g.tlb.Hit) == logicsim.L1 {
		idx, ok := s.ReadBus(g.tlb.SpareIdx)
		if !ok {
			return 0, fmt.Errorf("bisr: spare index unknown")
		}
		mapped, spare = true, int(idx)
	}
	if write {
		data, ok := s.ReadBus(g.pattern)
		if !ok {
			return 0, fmt.Errorf("bisr: pattern bus unknown")
		}
		if mapped {
			g.Arr.WriteSpare(spare, cs, data)
		} else {
			g.Arr.Write(addr, data)
		}
		return data, nil
	}
	var v uint64
	if mapped {
		v = g.Arr.ReadSpare(spare, cs)
	} else {
		v = g.Arr.Read(addr)
	}
	return v, nil
}

// Run executes the gate-level self-test-and-repair to completion (the
// done state) or until maxCycles.
func (g *GateLevel) Run(maxCycles int64) error {
	if err := g.reset(); err != nil {
		return err
	}
	s := g.Sim
	sigHigh := func(k int) bool { return s.Value(g.pla.Sigs[k]) == logicsim.L1 }
	for g.Cycles = 0; g.Cycles < maxCycles; g.Cycles++ {
		if err := s.Settle(); err != nil {
			return err
		}
		if sigHigh(bist.SigDelay) {
			g.Arr.Wait()
		}
		switch {
		case sigHigh(bist.SigRead):
			v, err := g.ramAccess(false)
			if err != nil {
				return err
			}
			s.SetBus(g.readData, v)
			if err := s.Settle(); err != nil {
				return err
			}
			if sigHigh(bist.SigCapture) {
				g.Captures++
			}
			if sigHigh(bist.SigUnsucc) {
				g.Pass2Errors++
				g.Unsucc = true
			}
		case sigHigh(bist.SigWrite):
			if _, err := g.ramAccess(true); err != nil {
				return err
			}
		}
		if sigHigh(bist.SigDone) {
			return nil
		}
		if err := s.ClockEdge(); err != nil {
			return err
		}
	}
	return fmt.Errorf("bisr: gate-level run did not finish in %d cycles", maxCycles)
}

// Rerun points the elaborated netlist at a fresh behavioural array of
// the same geometry, resets simulator state and result counters, and
// runs again. Monte-Carlo harnesses call this per trial instead of
// re-elaborating an identical netlist each time.
func (g *GateLevel) Rerun(arr *sram.Array, maxCycles int64) error {
	if arr.Config() != g.Arr.Config() {
		return fmt.Errorf("bisr: Rerun array geometry %+v does not match netlist %+v",
			arr.Config(), g.Arr.Config())
	}
	g.Arr = arr
	g.Sim.Reset()
	g.Captures, g.Pass2Errors, g.Unsucc, g.Cycles = 0, 0, false, 0
	return g.Run(maxCycles)
}

// Repaired reports whether the final pass was clean.
func (g *GateLevel) Repaired() bool { return !g.Unsucc }

// SparesUsed returns the number of TLB entries consumed.
func (g *GateLevel) SparesUsed() int {
	// The fill counter value is the consumed-entry count.
	v, _ := g.Sim.ReadBus(g.tlbFillBus())
	return int(v)
}

func (g *GateLevel) tlbFillBus() []int {
	// The fill counter bus nets are named tlb.fill.q[i].
	n := 1
	for 1<<uint(n) < g.Arr.Config().SpareRows+1 {
		n++
	}
	bus := make([]int, n)
	for i := range bus {
		bus[i] = g.Sim.Net(fmt.Sprintf("tlb.fill.q[%d]", i))
	}
	return bus
}

// GateCount returns the netlist size (gates, flip-flops) — reported
// alongside the paper's controller-size claims.
func (g *GateLevel) GateCount() (gates, dffs int) {
	return g.Sim.NumGates(), g.Sim.NumDFFs()
}

// WatchNets returns the nets worth recording in a waveform dump: the
// control signals, state register, address and pattern buses, the
// comparator output and the TLB status lines.
func (g *GateLevel) WatchNets() []int {
	var nets []int
	nets = append(nets, g.pla.Sigs...)
	nets = append(nets, g.pla.StateQ...)
	nets = append(nets, g.pla.Pass2Q)
	nets = append(nets, g.cnt.Q...)
	nets = append(nets, g.pattern...)
	nets = append(nets, g.errNet, g.tlb.Hit, g.tlb.Full)
	return nets
}

// RunGateLevelRepair is the convenience wrapper used by tests and the
// experiments: it assembles the program for the given march test,
// builds the netlist and runs it.
func RunGateLevelRepair(arr *sram.Array, test march.Test, maxCycles int64) (*GateLevel, error) {
	prog, err := bist.Assemble(test)
	if err != nil {
		return nil, err
	}
	g, err := NewGateLevel(arr, prog)
	if err != nil {
		return nil, err
	}
	if err := g.Run(maxCycles); err != nil {
		return nil, err
	}
	return g, nil
}
