package bisr

import (
	"math/rand"
	"testing"

	"repro/internal/march"
	"repro/internal/sram"
)

func glConfig() sram.Config {
	return sram.Config{Words: 32, BPW: 4, BPC: 4, SpareRows: 4}
}

func TestGateLevelFaultFree(t *testing.T) {
	arr := sram.MustNew(glConfig())
	g, err := RunGateLevelRepair(arr, march.IFA9(), 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Repaired() || g.Captures != 0 || g.SparesUsed() != 0 {
		t.Fatalf("fault-free gate-level run: repaired=%v captures=%d spares=%d",
			g.Repaired(), g.Captures, g.SparesUsed())
	}
	gates, dffs := g.GateCount()
	if gates == 0 || dffs == 0 {
		t.Fatal("no netlist built")
	}
	t.Logf("gate-level BIST+BISR: %d gates, %d flip-flops, %d cycles", gates, dffs, g.Cycles)
}

func TestGateLevelRepairsFaultyRow(t *testing.T) {
	arr := sram.MustNew(glConfig())
	if err := arr.Inject(sram.CellAddr{Row: 5, Col: 9}, sram.Fault{Kind: sram.SA1}); err != nil {
		t.Fatal(err)
	}
	g, err := RunGateLevelRepair(arr, march.IFA9(), 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Repaired() {
		t.Fatalf("gate-level repair failed: captures=%d pass2errs=%d", g.Captures, g.Pass2Errors)
	}
	if g.Captures == 0 {
		t.Fatal("fault never captured")
	}
	if g.SparesUsed() != 1 {
		t.Fatalf("spares used %d, want 1", g.SparesUsed())
	}
}

func TestGateLevelDetectsUnrepairable(t *testing.T) {
	arr := sram.MustNew(sram.Config{Words: 32, BPW: 4, BPC: 4, SpareRows: 4})
	// Five faulty rows exceed four spares.
	for _, r := range []int{0, 2, 4, 6, 7} {
		if err := arr.Inject(sram.CellAddr{Row: r, Col: 1}, sram.Fault{Kind: sram.SA0}); err != nil {
			t.Fatal(err)
		}
	}
	g, err := RunGateLevelRepair(arr, march.IFA9(), 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if g.Repaired() {
		t.Fatal("five faulty rows with four spares must be unrepairable")
	}
	if g.Pass2Errors == 0 {
		t.Fatal("pass 2 should observe residual faults")
	}
}

// TestGateLevelMatchesBehavioural runs identical random fault
// patterns through the gate-level netlist and the behavioural
// controller, requiring the same repair verdict and spare usage.
func TestGateLevelMatchesBehavioural(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 6; trial++ {
		n := rng.Intn(5) // 0..4 faults
		type fp struct {
			cell sram.CellAddr
			kind sram.FaultKind
		}
		pattern := make([]fp, n)
		for i := range pattern {
			k := sram.SA0
			if rng.Intn(2) == 1 {
				k = sram.SA1
			}
			pattern[i] = fp{
				cell: sram.CellAddr{Row: rng.Intn(8), Col: rng.Intn(16)},
				kind: k,
			}
		}
		build := func() *sram.Array {
			a := sram.MustNew(glConfig())
			for _, f := range pattern {
				_ = a.Inject(f.cell, sram.Fault{Kind: f.kind})
			}
			return a
		}
		g, err := RunGateLevelRepair(build(), march.IFA9(), 2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		ram := NewRAM(build())
		out, err := NewController(ram).Run()
		if err != nil {
			t.Fatal(err)
		}
		if g.Repaired() != out.Repaired {
			t.Fatalf("trial %d: gate-level repaired=%v behavioural=%v (pattern %v)",
				trial, g.Repaired(), out.Repaired, pattern)
		}
		if out.Repaired && g.SparesUsed() != out.SparesUsed {
			t.Fatalf("trial %d: spares gate-level=%d behavioural=%d",
				trial, g.SparesUsed(), out.SparesUsed)
		}
	}
}

func TestGateLevelRejectsBadGeometry(t *testing.T) {
	arr := sram.MustNew(sram.Config{Words: 48, BPW: 4, BPC: 4, SpareRows: 4})
	if _, err := RunGateLevelRepair(arr, march.IFA9(), 1000); err == nil {
		t.Fatal("non-power-of-2 word count accepted")
	}
	arr2 := sram.MustNew(sram.Config{Words: 32, BPW: 4, BPC: 4})
	if _, err := RunGateLevelRepair(arr2, march.IFA9(), 1000); err == nil {
		t.Fatal("zero spares accepted")
	}
}
