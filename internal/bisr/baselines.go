package bisr

import (
	"sort"

	"repro/internal/cerr"
)

// This file implements the two prior-art self-repair schemes the
// paper critiques in Section III, used as experimental baselines.

// Sawada is the 1989 address-comparison scheme of Sawada et al.: a
// single fail-address register compared against every incoming
// address, diverting a match to one spare location. It can repair
// exactly one faulty word address.
type Sawada struct {
	failAddr int
	valid    bool
	// overflowed records that a second distinct faulty address was
	// presented and could not be registered.
	overflowed bool
}

// NewSawada returns an empty fail-address register.
func NewSawada() *Sawada { return &Sawada{} }

// Register records a faulty word address. The scheme holds only one;
// a second distinct address overflows.
func (s *Sawada) Register(addr int) bool {
	if s.valid && s.failAddr != addr {
		s.overflowed = true
		return false
	}
	s.failAddr, s.valid = addr, true
	return true
}

// Divert reports whether an incoming address is redirected to the
// spare module.
func (s *Sawada) Divert(addr int) bool { return s.valid && addr == s.failAddr }

// Repaired reports whether all registered faults are covered.
func (s *Sawada) Repaired() bool { return !s.overflowed }

// CompareOps returns the number of address comparisons per access
// (one register: one compare).
func (s *Sawada) CompareOps() int { return 1 }

// ChenSunadaConfig describes the hierarchical organisation of the
// Chen–Sunada 1993 scheme: the memory is decomposed into subblocks,
// each with two fault-capture blocks (so at most two faulty word
// addresses repairable per subblock); unrepairable subblocks are
// excluded by the top-level fault assembler, which can divert accesses
// to spare subblocks.
type ChenSunadaConfig struct {
	Words         int // total words
	SubblockWords int // words per lowest-level subblock
	SpareBlocks   int // spare subblocks available to the fault assembler
}

// ChenSunada models the baseline's repair capability.
type ChenSunada struct {
	cfg ChenSunadaConfig
	// capture[b] holds the faulty addresses captured in subblock b
	// (max 2 used for repair).
	capture    map[int][]int
	deadBlocks []int
}

// NewChenSunada returns an empty instance, or a typed
// cerr.ErrInvalidParams when the hierarchical geometry is impossible
// (non-positive sizes, or words not a multiple of the subblock size).
func NewChenSunada(cfg ChenSunadaConfig) (*ChenSunada, error) {
	if cfg.SubblockWords <= 0 || cfg.Words <= 0 || cfg.Words%cfg.SubblockWords != 0 {
		return nil, cerr.New(cerr.CodeInvalidParams,
			"bisr: bad Chen-Sunada geometry (words %d, subblock %d)", cfg.Words, cfg.SubblockWords)
	}
	return &ChenSunada{cfg: cfg, capture: map[int][]int{}}, nil
}

// Register records a faulty word address in its subblock's fault
// signature block.
func (c *ChenSunada) Register(addr int) {
	b := addr / c.cfg.SubblockWords
	for _, a := range c.capture[b] {
		if a == addr {
			return
		}
	}
	c.capture[b] = append(c.capture[b], addr)
}

// Resolve runs the fault assembler: subblocks with more than two
// faulty addresses are excluded and diverted to spare blocks. It
// returns whether the whole memory is repaired.
func (c *ChenSunada) Resolve() bool {
	c.deadBlocks = c.deadBlocks[:0]
	for b, addrs := range c.capture {
		if len(addrs) > 2 {
			c.deadBlocks = append(c.deadBlocks, b)
		}
	}
	sort.Ints(c.deadBlocks)
	return len(c.deadBlocks) <= c.cfg.SpareBlocks
}

// DeadBlocks returns the subblocks excluded by the last Resolve.
func (c *ChenSunada) DeadBlocks() []int {
	return append([]int(nil), c.deadBlocks...)
}

// RepairableAddrsPerSubblock is the scheme's per-subblock limit.
func (c *ChenSunada) RepairableAddrsPerSubblock() int { return 2 }

// CompareOps returns the number of sequential address comparisons an
// access suffers in a subblock with n captured faults: the paper
// stresses that Chen–Sunada compare *sequentially* against the two
// fault-capture blocks, versus the TLB's single parallel compare.
func (c *ChenSunada) CompareOps(addr int) int {
	b := addr / c.cfg.SubblockWords
	n := len(c.capture[b])
	if n > 2 {
		n = 2
	}
	if n == 0 {
		return 1 // still one compare against an empty capture block
	}
	return n
}

// TLBCompareOps is BISRAMGEN's parallel equivalent: always a single
// comparison delay regardless of how many entries are stored.
func TLBCompareOps() int { return 1 }
