package bisr

import (
	"fmt"

	"repro/internal/cerr"
	"repro/internal/logicsim"
)

// StructuralTLB is the gate-level realisation of the repair TLB: one
// register + valid bit per spare, a parallel bank of equality
// comparators on the incoming row address (the single-compare-delay
// property the paper contrasts with Chen–Sunada's sequential scheme),
// a newest-entry-wins priority encoder, and a fill counter assigning
// spares in the strictly increasing sequence. Re-storing a row simply
// writes a newer entry; the priority encoder makes it supersede the
// older one, exactly like the behavioural TLB.
type StructuralTLB struct {
	Sim *logicsim.Sim

	// Addr is the incoming row-address bus (lookup and store share
	// it, as in the hardware where the BIST address bus feeds both).
	Addr []int
	// Store, when high at a clock edge, captures Addr into the next
	// spare's entry register.
	Store int
	// RstN is the active-low reset.
	RstN int

	// Hit is high when any valid entry matches Addr.
	Hit int
	// SpareIdx is the matched spare index (newest match wins).
	SpareIdx []int
	// Full is high when every spare has been consumed.
	Full int

	spares   int
	addrBits int
}

// BuildStructuralTLB elaborates the TLB for the given spare count and
// row-address width onto the simulator. Impossible geometry (no
// spares, no address bits, or a size that would explode the one-hot
// decode) is recorded as a construction error on the simulator — check
// s.Err() after building — and the geometry is clamped so elaboration
// itself stays total.
func BuildStructuralTLB(s *logicsim.Sim, spares, addrBits int, prefix string) *StructuralTLB {
	const maxSpares, maxAddrBits = 4096, 32
	if spares < 1 || addrBits < 1 || spares > maxSpares || addrBits > maxAddrBits {
		s.Failf("bisr: structural TLB geometry (spares %d, addrBits %d) outside [1, %d]x[1, %d]",
			spares, addrBits, maxSpares, maxAddrBits)
		if spares < 1 {
			spares = 1
		}
		if spares > maxSpares {
			spares = maxSpares
		}
		if addrBits < 1 {
			addrBits = 1
		}
		if addrBits > maxAddrBits {
			addrBits = maxAddrBits
		}
	}
	t := &StructuralTLB{
		Sim: s, spares: spares, addrBits: addrBits,
		Addr:  s.Bus(prefix+".addr", addrBits),
		Store: s.Net(prefix + ".store"),
		RstN:  s.Net(prefix + ".rstN"),
	}
	// Constant rails derived from the store input and its complement:
	// zero = store AND NOT store, one = store OR NOT store.
	nstore := s.Net(prefix + ".nstore")
	s.Gate(logicsim.NOT, nstore, t.Store)
	zero := s.Net(prefix + ".zero")
	one := s.Net(prefix + ".one")
	s.Gate(logicsim.AND, zero, t.Store, nstore)
	s.Gate(logicsim.OR, one, t.Store, nstore)

	// Fill counter: counts stores, saturating at spares.
	cntBits := 1
	for 1<<uint(cntBits) < spares+1 {
		cntBits++
	}
	notFull := s.Net(prefix + ".notfull")
	doStore := s.Net(prefix + ".dostore")
	s.Gate(logicsim.AND, doStore, t.Store, notFull)
	cnt := s.UpDownCounter(prefix+".fill", cntBits, t.RstN)
	s.Gate(logicsim.BUF, cnt.En, doStore)
	s.Gate(logicsim.BUF, cnt.Up, one)
	// full = (fill == spares), against the capacity literal.
	sparesBits := make([]int, cntBits)
	for b := 0; b < cntBits; b++ {
		sparesBits[b] = s.Net(fmt.Sprintf("%s.cap%d", prefix, b))
		if spares>>uint(b)&1 == 1 {
			s.Gate(logicsim.BUF, sparesBits[b], one)
		} else {
			s.Gate(logicsim.BUF, sparesBits[b], zero)
		}
	}
	t.Full = s.EqComparator(prefix+".fullcmp", cnt.Q, sparesBits)
	s.Gate(logicsim.NOT, notFull, t.Full)

	// One-hot store-enable decode of the fill pointer.
	loadEn := s.Decoder(prefix+".loaddec", cnt.Q, doStore)

	// Entry registers, valid bits, and match lines.
	matches := make([]int, spares)
	for e := 0; e < spares; e++ {
		en := loadEn[e]
		entry := make([]int, addrBits)
		for b := 0; b < addrBits; b++ {
			q := s.Net(fmt.Sprintf("%s.e%d_%d", prefix, e, b))
			d := s.Net(fmt.Sprintf("%s.e%d_%dd", prefix, e, b))
			s.Gate(logicsim.MUX2, d, en, q, t.Addr[b])
			s.DFF(d, q, t.RstN)
			entry[b] = q
		}
		vq := s.Net(fmt.Sprintf("%s.v%d", prefix, e))
		vd := s.Net(fmt.Sprintf("%s.v%dd", prefix, e))
		s.Gate(logicsim.OR, vd, vq, en)
		s.DFF(vd, vq, t.RstN)
		eq := s.EqComparator(fmt.Sprintf("%s.cmp%d", prefix, e), t.Addr, entry)
		matches[e] = s.Net(fmt.Sprintf("%s.m%d", prefix, e))
		s.Gate(logicsim.AND, matches[e], vq, eq)
	}
	t.Hit = s.OrReduce(prefix+".hit", matches)

	// Newest-wins priority: sel_e = match_e AND NOT(any higher match).
	sels := make([]int, spares)
	for e := 0; e < spares; e++ {
		if e == spares-1 {
			sels[e] = matches[e]
			continue
		}
		higher := s.OrReduce(fmt.Sprintf("%s.hi%d", prefix, e), matches[e+1:])
		nh := s.Net(fmt.Sprintf("%s.nhi%d", prefix, e))
		s.Gate(logicsim.NOT, nh, higher)
		sels[e] = s.Net(fmt.Sprintf("%s.sel%d", prefix, e))
		s.Gate(logicsim.AND, sels[e], matches[e], nh)
	}
	// Binary-encode the selected spare index.
	idxBits := 1
	for 1<<uint(idxBits) < spares {
		idxBits++
	}
	t.SpareIdx = make([]int, idxBits)
	for b := 0; b < idxBits; b++ {
		var srcs []int
		for e := 0; e < spares; e++ {
			if e>>uint(b)&1 == 1 {
				srcs = append(srcs, sels[e])
			}
		}
		t.SpareIdx[b] = s.Net(fmt.Sprintf("%s.idx%d", prefix, b))
		if len(srcs) == 0 {
			s.Gate(logicsim.BUF, t.SpareIdx[b], zero)
			continue
		}
		s.Gate(logicsim.OR, t.SpareIdx[b], srcs...)
	}
	return t
}

// Reset initialises the structural TLB (all entries invalid, fill
// pointer zero).
func (t *StructuralTLB) Reset() error {
	s := t.Sim
	s.Set(t.RstN, logicsim.L0)
	s.Set(t.Store, logicsim.L0)
	s.SetBus(t.Addr, 0)
	if err := s.Settle(); err != nil {
		return err
	}
	if err := s.ApplyResets(); err != nil {
		return err
	}
	s.Set(t.RstN, logicsim.L1)
	return s.Settle()
}

// StoreRow captures a row address into the next spare entry (one
// clock). It returns false when the TLB was already full.
func (t *StructuralTLB) StoreRow(row int) (bool, error) {
	s := t.Sim
	s.SetBus(t.Addr, uint64(row))
	s.Set(t.Store, logicsim.L1)
	if err := s.Settle(); err != nil {
		return false, err
	}
	wasFull := s.Value(t.Full) == logicsim.L1
	if err := s.ClockEdge(); err != nil {
		return false, err
	}
	s.Set(t.Store, logicsim.L0)
	if err := s.Settle(); err != nil {
		return false, err
	}
	return !wasFull, nil
}

// Lookup drives the address and returns (spare index, hit).
func (t *StructuralTLB) Lookup(row int) (int, bool, error) {
	s := t.Sim
	s.SetBus(t.Addr, uint64(row))
	if err := s.Settle(); err != nil {
		return 0, false, err
	}
	if s.Value(t.Hit) != logicsim.L1 {
		return 0, false, nil
	}
	v, ok := s.ReadBus(t.SpareIdx)
	if !ok {
		return 0, false, cerr.New(cerr.CodeSimDiverged, "bisr: spare index bus unknown")
	}
	return int(v), true, nil
}

// IsFull reports the registered full flag.
func (t *StructuralTLB) IsFull() bool { return t.Sim.Value(t.Full) == logicsim.L1 }
