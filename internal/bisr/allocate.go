package bisr

import (
	"fmt"
	"sort"
)

// Two-dimensional spare allocation — the extension the paper declines
// for its access-time cost ("we do not advocate the addition of
// column testing and repair circuitry") but whose algorithmic core is
// the classic repair-allocation problem: given a fault bitmap and a
// budget of spare rows and spare columns, choose replacements
// covering every fault. Optimal allocation is NP-complete; the
// implementation below is the standard two-phase heuristic:
//
//  1. must-repair: a row with more faults than the remaining column
//     budget can only be fixed by a row spare (and symmetrically);
//     iterate to a fixed point;
//  2. greedy cover: repeatedly spend a spare on the line (row or
//     column) covering the most remaining faults, tie-breaking
//     toward the scarcer resource.
//
// It lets the repo quantify what the paper gave up: column defects
// become repairable at the price of the bitline circuitry the paper
// rejects.

// FaultBitmap is the set of faulty cells of an array, row-major
// coordinates.
type FaultBitmap struct {
	Rows, Cols int
	faults     map[[2]int]bool
}

// NewFaultBitmap returns an empty bitmap.
func NewFaultBitmap(rows, cols int) *FaultBitmap {
	return &FaultBitmap{Rows: rows, Cols: cols, faults: map[[2]int]bool{}}
}

// Mark records a faulty cell.
func (f *FaultBitmap) Mark(row, col int) error {
	if row < 0 || row >= f.Rows || col < 0 || col >= f.Cols {
		return fmt.Errorf("bisr: fault (%d,%d) out of %dx%d", row, col, f.Rows, f.Cols)
	}
	f.faults[[2]int{row, col}] = true
	return nil
}

// Count returns the number of faulty cells.
func (f *FaultBitmap) Count() int { return len(f.faults) }

// Allocation is the result of AllocateSpares.
type Allocation struct {
	RepairRows []int // rows replaced by spare rows
	RepairCols []int // columns replaced by spare columns
	// Covered reports whether every fault is covered.
	Covered bool
	// MustRows/MustCols count the must-repair phase decisions.
	MustRows, MustCols int
}

// AllocateSpares runs must-repair followed by greedy cover with the
// given spare budgets.
func AllocateSpares(f *FaultBitmap, spareRows, spareCols int) *Allocation {
	a := &Allocation{}
	usedRow := map[int]bool{}
	usedCol := map[int]bool{}
	remaining := map[[2]int]bool{}
	for k := range f.faults {
		remaining[k] = true
	}
	rowsLeft, colsLeft := spareRows, spareCols

	counts := func() (rowN, colN map[int]int) {
		rowN, colN = map[int]int{}, map[int]int{}
		for k := range remaining {
			rowN[k[0]]++
			colN[k[1]]++
		}
		return rowN, colN
	}
	spend := func(row bool, idx int) {
		if row {
			usedRow[idx] = true
			a.RepairRows = append(a.RepairRows, idx)
			rowsLeft--
			for k := range remaining {
				if k[0] == idx {
					delete(remaining, k)
				}
			}
		} else {
			usedCol[idx] = true
			a.RepairCols = append(a.RepairCols, idx)
			colsLeft--
			for k := range remaining {
				if k[1] == idx {
					delete(remaining, k)
				}
			}
		}
	}

	// Phase 1: must-repair to a fixed point.
	for {
		rowN, colN := counts()
		progressed := false
		for r, n := range rowN {
			if n > colsLeft && rowsLeft > 0 && !usedRow[r] {
				spend(true, r)
				a.MustRows++
				progressed = true
				break
			}
		}
		if progressed {
			continue
		}
		for c, n := range colN {
			if n > rowsLeft && colsLeft > 0 && !usedCol[c] {
				spend(false, c)
				a.MustCols++
				progressed = true
				break
			}
		}
		if !progressed {
			break
		}
	}

	// Phase 2: greedy cover.
	for len(remaining) > 0 && (rowsLeft > 0 || colsLeft > 0) {
		rowN, colN := counts()
		bestRow, bestRowN := -1, 0
		for r, n := range rowN {
			if n > bestRowN || (n == bestRowN && r < bestRow) {
				bestRow, bestRowN = r, n
			}
		}
		bestCol, bestColN := -1, 0
		for c, n := range colN {
			if n > bestColN || (n == bestColN && c < bestCol) {
				bestCol, bestColN = c, n
			}
		}
		switch {
		case rowsLeft == 0 && bestColN > 0:
			spend(false, bestCol)
		case colsLeft == 0 && bestRowN > 0:
			spend(true, bestRow)
		case bestRowN >= bestColN && rowsLeft > 0:
			spend(true, bestRow)
		case colsLeft > 0:
			spend(false, bestCol)
		default:
			// Both budgets empty.
		}
		if rowsLeft == 0 && colsLeft == 0 {
			break
		}
	}
	a.Covered = len(remaining) == 0
	sort.Ints(a.RepairRows)
	sort.Ints(a.RepairCols)
	return a
}

// RowOnlyRepairable is the paper's base capability on the same
// bitmap: cover with spare rows alone.
func RowOnlyRepairable(f *FaultBitmap, spareRows int) bool {
	rows := map[int]bool{}
	for k := range f.faults {
		rows[k[0]] = true
	}
	return len(rows) <= spareRows
}
