package bisr

import (
	"testing"

	"repro/internal/march"
	"repro/internal/sram"
)

func mustInject(t *testing.T, a *sram.Array, c sram.CellAddr, f sram.Fault) {
	t.Helper()
	if err := a.Inject(c, f); err != nil {
		t.Fatal(err)
	}
}

func csRAM(t *testing.T) (*ChenSunadaRAM, *sram.Array) {
	t.Helper()
	arr := sram.MustNew(sram.Config{Words: 64, BPW: 4, BPC: 4})
	c, err := NewChenSunadaRAM(arr, ChenSunadaConfig{Words: 64, SubblockWords: 16, SpareBlocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c, arr
}

func TestCSFunctionalFaultFree(t *testing.T) {
	c, _ := csRAM(t)
	ok, dead, err := c.SelfTestAndRepair()
	if err != nil {
		t.Fatal(err)
	}
	if !ok || dead != 0 {
		t.Fatalf("fault-free: repaired=%v dead=%d", ok, dead)
	}
	// Normal operation as a memory.
	c.Write(10, 0xB)
	if c.Read(10) != 0xB {
		t.Fatal("normal-mode access broken")
	}
}

func TestCSRepairsTwoPerSubblock(t *testing.T) {
	c, arr := csRAM(t)
	// Two faulty words inside subblock 0 (addresses 1 and 5).
	mustInject(t, arr, sram.CellAddr{Row: 0, Col: 5}, sram.Fault{Kind: sram.SA1}) // addr 1 bit 1
	mustInject(t, arr, sram.CellAddr{Row: 1, Col: 1}, sram.Fault{Kind: sram.SA0}) // addr 5 bit 0
	ok, dead, err := c.SelfTestAndRepair()
	if err != nil {
		t.Fatal(err)
	}
	if !ok || dead != 0 {
		t.Fatalf("two faults in a subblock should repair in place: ok=%v dead=%d", ok, dead)
	}
	// The diverted addresses function correctly now.
	if !march.Run(c, march.IFA13(), march.SingleBackground(), 4).Pass() {
		t.Fatal("post-repair march failed")
	}
	// Access latency penalty: the affected subblock pays 2 sequential
	// compares, others 1.
	if c.CompareOpsAt(1) != 2 || c.CompareOpsAt(20) != 1 {
		t.Fatalf("compare ops: %d / %d", c.CompareOpsAt(1), c.CompareOpsAt(20))
	}
}

func TestCSFaultAssemblerDivertsDeadBlock(t *testing.T) {
	c, arr := csRAM(t)
	// Three faulty words in subblock 1 (addrs 16..31): exceeds the
	// two capture blocks; the spare block absorbs it.
	mustInject(t, arr, sram.CellAddr{Row: 4, Col: 1}, sram.Fault{Kind: sram.SA0}) // addr 16
	mustInject(t, arr, sram.CellAddr{Row: 5, Col: 2}, sram.Fault{Kind: sram.SA1}) // addr 21? (row5,cs1)
	mustInject(t, arr, sram.CellAddr{Row: 6, Col: 7}, sram.Fault{Kind: sram.SA0}) // addr 26ish
	ok, dead, err := c.SelfTestAndRepair()
	if err != nil {
		t.Fatal(err)
	}
	if !ok || dead != 1 {
		t.Fatalf("dead block should divert to the spare: ok=%v dead=%d", ok, dead)
	}
	if !march.Run(c, march.IFA13(), march.SingleBackground(), 4).Pass() {
		t.Fatal("post-assembler march failed")
	}
}

func TestCSFailsWhenSparesExhausted(t *testing.T) {
	c, arr := csRAM(t)
	// Kill two subblocks (three faults each) with one spare block.
	for _, row := range []int{0, 1, 2, 4, 5, 6} {
		mustInject(t, arr, sram.CellAddr{Row: row, Col: 1}, sram.Fault{Kind: sram.SA0})
	}
	ok, _, err := c.SelfTestAndRepair()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("two dead subblocks with one spare must fail")
	}
}

func TestCSRejectsBadGeometry(t *testing.T) {
	arr := sram.MustNew(sram.Config{Words: 64, BPW: 4, BPC: 4, SpareRows: 4})
	if _, err := NewChenSunadaRAM(arr, ChenSunadaConfig{Words: 64, SubblockWords: 16}); err == nil {
		t.Fatal("array with BISRAMGEN spares accepted")
	}
	arr2 := sram.MustNew(sram.Config{Words: 64, BPW: 4, BPC: 4})
	if _, err := NewChenSunadaRAM(arr2, ChenSunadaConfig{Words: 32, SubblockWords: 16}); err == nil {
		t.Fatal("word mismatch accepted")
	}
	if _, err := NewChenSunadaRAM(arr2, ChenSunadaConfig{Words: 64, SubblockWords: 13}); err == nil {
		t.Fatal("bad subblock size accepted")
	}
}

// TestCSVsBISRAMGENOnRowCluster demonstrates the architectural
// difference: a cluster of faulty words in ONE physical row is one
// row-spare for BISRAMGEN but up to bpc capture entries for
// Chen-Sunada.
func TestCSVsBISRAMGENOnRowCluster(t *testing.T) {
	// Row 2 fully faulty -> its 4 word addresses (8..11) all fail.
	build := func(spares int) *sram.Array {
		a := sram.MustNew(sram.Config{Words: 64, BPW: 4, BPC: 4, SpareRows: spares})
		a.InjectRow(2)
		return a
	}
	// BISRAMGEN: one spare row suffices (4 available).
	ram := NewRAM(build(4))
	out, err := NewController(ram).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Repaired || out.SparesUsed != 1 {
		t.Fatalf("BISRAMGEN should spend exactly one row: %+v", out)
	}
	// Chen-Sunada: 4 faulty addresses in one 16-word subblock exceed
	// its 2 capture blocks; it must burn its spare block.
	cs, err := NewChenSunadaRAM(build(0), ChenSunadaConfig{Words: 64, SubblockWords: 16, SpareBlocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	ok, dead, err := cs.SelfTestAndRepair()
	if err != nil {
		t.Fatal(err)
	}
	if !ok || dead != 1 {
		t.Fatalf("Chen-Sunada should need the whole spare block: ok=%v dead=%d", ok, dead)
	}
}
