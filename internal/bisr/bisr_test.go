package bisr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/march"
	"repro/internal/sram"
)

func newArr(t *testing.T, spares int) *sram.Array {
	t.Helper()
	return sram.MustNew(sram.Config{Words: 64, BPW: 4, BPC: 4, SpareRows: spares})
}

func TestTLBBasics(t *testing.T) {
	tlb := NewTLB(4)
	if tlb.Spares() != 4 || tlb.Used() != 0 {
		t.Fatal("fresh TLB wrong")
	}
	sp, err := tlb.Store(10)
	if err != nil || sp != 0 {
		t.Fatalf("first store -> spare %d err %v", sp, err)
	}
	sp, err = tlb.Store(3)
	if err != nil || sp != 1 {
		t.Fatalf("second store -> spare %d", sp)
	}
	if got, ok := tlb.Lookup(10); !ok || got != 0 {
		t.Fatal("lookup 10 failed")
	}
	if got, ok := tlb.Lookup(3); !ok || got != 1 {
		t.Fatal("lookup 3 failed")
	}
	if _, ok := tlb.Lookup(99); ok {
		t.Fatal("phantom lookup")
	}
	if !tlb.StrictlyIncreasing() {
		t.Fatal("spare sequence must be strictly increasing")
	}
}

func TestTLBRemapSupersedes(t *testing.T) {
	tlb := NewTLB(4)
	if _, err := tlb.Store(7); err != nil {
		t.Fatal(err)
	}
	// Spare 0 turned out faulty; row 7 is re-stored.
	sp, err := tlb.Store(7)
	if err != nil || sp != 1 {
		t.Fatalf("remap -> spare %d err %v", sp, err)
	}
	got, ok := tlb.Lookup(7)
	if !ok || got != 1 {
		t.Fatalf("lookup after remap -> %d", got)
	}
	// Entry 0 is superseded, not reused.
	es := tlb.Entries()
	if es[0].Valid || !es[1].Valid {
		t.Fatal("supersession flags wrong")
	}
	if tlb.Used() != 2 {
		t.Fatal("remap must consume a new spare")
	}
}

func TestTLBOverflow(t *testing.T) {
	tlb := NewTLB(2)
	if _, err := tlb.Store(1); err != nil {
		t.Fatal(err)
	}
	if _, err := tlb.Store(2); err != nil {
		t.Fatal(err)
	}
	if _, err := tlb.Store(3); err == nil {
		t.Fatal("overflow not detected")
	}
	if !tlb.Overflow() {
		t.Fatal("overflow flag not set")
	}
	tlb.Reset()
	if tlb.Used() != 0 || tlb.Overflow() {
		t.Fatal("reset failed")
	}
}

func TestRAMMapping(t *testing.T) {
	arr := newArr(t, 4)
	ram := NewRAM(arr)
	ram.Write(5, 0xA)
	if ram.Read(5) != 0xA {
		t.Fatal("bypass access failed")
	}
	// Map row 1 (addrs 4..7) to spare 0.
	if _, err := ram.TLB.Store(1); err != nil {
		t.Fatal(err)
	}
	ram.Mode = Map
	ram.Write(5, 0x7)
	// The raw array word 5 must be untouched; the spare holds 0x7.
	if arr.Read(5) != 0xA {
		t.Fatal("mapped write leaked into the regular row")
	}
	if arr.ReadSpare(0, 1) != 0x7 {
		t.Fatal("mapped write missed the spare row")
	}
	if ram.Read(5) != 0x7 {
		t.Fatal("mapped read wrong")
	}
	// Unmapped rows still access the main array.
	ram.Write(9, 0x3)
	if arr.Read(9) != 0x3 {
		t.Fatal("unmapped access diverted")
	}
	lookups, hits := ram.TLBStats()
	if lookups == 0 || hits == 0 || hits > lookups {
		t.Fatalf("tlb stats %d/%d", hits, lookups)
	}
}

func TestRepairSingleFaultyRow(t *testing.T) {
	arr := newArr(t, 4)
	// Fault in row 3.
	if err := arr.Inject(sram.CellAddr{Row: 3, Col: 7}, sram.Fault{Kind: sram.SA0}); err != nil {
		t.Fatal(err)
	}
	ram := NewRAM(arr)
	ctl := NewController(ram)
	out, err := ctl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Repaired {
		t.Fatalf("repair failed: %+v", out)
	}
	if out.SparesUsed != 1 {
		t.Fatalf("spares used %d, want 1", out.SparesUsed)
	}
	if out.Iterations != 1 {
		t.Fatalf("iterations %d", out.Iterations)
	}
	// Post-repair, the RAM is fully functional.
	res := march.Run(ram, march.IFA9(), march.JohnsonBackgrounds(4), 4)
	if !res.Pass() {
		t.Fatalf("post-repair march failed: %v", res.Failures[0])
	}
}

func TestRepairMultipleRows(t *testing.T) {
	arr := newArr(t, 4)
	for _, row := range []int{0, 5, 9, 15} {
		arr.InjectRow(row)
	}
	ram := NewRAM(arr)
	out, err := NewController(ram).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Repaired || out.SparesUsed != 4 {
		t.Fatalf("outcome %+v", out)
	}
	res := march.Run(ram, march.IFA9(), march.JohnsonBackgrounds(4), 4)
	if !res.Pass() {
		t.Fatal("post-repair march failed")
	}
}

func TestRepairFailsWithTooManyRows(t *testing.T) {
	arr := newArr(t, 2)
	for _, row := range []int{0, 5, 9} {
		arr.InjectRow(row)
	}
	ram := NewRAM(arr)
	out, err := NewController(ram).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Repaired {
		t.Fatal("3 faulty rows cannot be repaired with 2 spares")
	}
	if !out.Overflow {
		t.Fatal("overflow should be reported")
	}
}

func TestColumnFaultSwampsRowRedundancy(t *testing.T) {
	// The paper: a faulty column makes every word on it faulty,
	// swamping row redundancy -> Repair Unsuccessful, and the
	// controller's diagnosis must finger the column.
	arr := newArr(t, 4)
	arr.InjectColumn(2, true)
	ram := NewRAM(arr)
	out, err := NewController(ram).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Repaired {
		t.Fatal("column fault must not be repairable by row spares")
	}
	if len(out.ColumnSuspects) != 1 || out.ColumnSuspects[0] != 2 {
		t.Fatalf("column diagnosis wrong: %v, want [2]", out.ColumnSuspects)
	}
}

func TestNoColumnSuspectsForScatteredFaults(t *testing.T) {
	arr := newArr(t, 4)
	// Three scattered single-cell faults on distinct columns: no
	// column should be suspected.
	for i, cell := range []sram.CellAddr{{Row: 1, Col: 0}, {Row: 5, Col: 7}, {Row: 9, Col: 12}} {
		k := sram.SA0
		if i%2 == 1 {
			k = sram.SA1
		}
		if err := arr.Inject(cell, sram.Fault{Kind: k}); err != nil {
			t.Fatal(err)
		}
	}
	ram := NewRAM(arr)
	out, err := NewController(ram).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Repaired {
		t.Fatal("scattered faults within capacity should repair")
	}
	if len(out.ColumnSuspects) != 0 {
		t.Fatalf("false column suspects: %v", out.ColumnSuspects)
	}
}

func TestIteratedRepairHealsFaultySpare(t *testing.T) {
	arr := newArr(t, 4)
	rows := arr.Config().Rows()
	// Row 2 faulty, and spare 0 (physical row rows+0) also faulty: the
	// base 2-pass flow maps row 2 -> spare 0 and then fails; the
	// iterated flow remaps row 2 -> spare 1.
	if err := arr.Inject(sram.CellAddr{Row: 2, Col: 0}, sram.Fault{Kind: sram.SA1}); err != nil {
		t.Fatal(err)
	}
	if err := arr.Inject(sram.CellAddr{Row: rows, Col: 3}, sram.Fault{Kind: sram.SA0}); err != nil {
		t.Fatal(err)
	}
	// Base flow fails.
	ram1 := NewRAM(sramClone(t, arr))
	out1, err := NewController(ram1).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out1.Repaired {
		t.Fatal("base 2-pass flow should fail on a faulty spare")
	}
	// Iterated flow succeeds.
	ram2 := NewRAM(arr)
	ctl := NewController(ram2)
	ctl.MaxIterations = 4
	out2, err := ctl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out2.Repaired {
		t.Fatalf("iterated flow should heal the faulty spare: %+v", out2)
	}
	if out2.Iterations < 2 {
		t.Fatalf("expected >= 2 iterations, got %d", out2.Iterations)
	}
	if sp, ok := ram2.TLB.Lookup(2); !ok || sp == 0 {
		t.Fatalf("row 2 should map past the faulty spare, got %d ok=%v", sp, ok)
	}
	res := march.Run(ram2, march.IFA9(), march.JohnsonBackgrounds(4), 4)
	if !res.Pass() {
		t.Fatal("post-iterated-repair march failed")
	}
}

// sramClone rebuilds an array with the same injected faults by
// replaying a fresh instance (the Array has no Clone; tests re-inject).
func sramClone(t *testing.T, src *sram.Array) *sram.Array {
	t.Helper()
	cfg := src.Config()
	dst := sram.MustNew(cfg)
	rows := cfg.Rows()
	// Recreate the two specific faults of the iterated test.
	if err := dst.Inject(sram.CellAddr{Row: 2, Col: 0}, sram.Fault{Kind: sram.SA1}); err != nil {
		t.Fatal(err)
	}
	if err := dst.Inject(sram.CellAddr{Row: rows, Col: 3}, sram.Fault{Kind: sram.SA0}); err != nil {
		t.Fatal(err)
	}
	return dst
}

func TestGoodnessCriteria(t *testing.T) {
	if !StrictGoodness(3, 0, 4) || StrictGoodness(5, 0, 4) || StrictGoodness(1, 1, 4) {
		t.Fatal("strict goodness wrong")
	}
	if !IteratedRepairable(3, 1, 4) || IteratedRepairable(4, 1, 4) || !IteratedRepairable(0, 4, 4) {
		t.Fatal("iterated repairability wrong")
	}
	if IteratedRepairable(1, 9, 4) {
		t.Fatal("over-faulted spares should clamp to zero")
	}
}

func TestSawadaBaseline(t *testing.T) {
	s := NewSawada()
	if !s.Register(12) || !s.Divert(12) || s.Divert(13) {
		t.Fatal("single-address repair wrong")
	}
	if !s.Register(12) {
		t.Fatal("re-registering the same address is fine")
	}
	if s.Register(13) {
		t.Fatal("second address must overflow")
	}
	if s.Repaired() {
		t.Fatal("overflowed register cannot claim repair")
	}
	if s.CompareOps() != 1 {
		t.Fatal("compare ops wrong")
	}
}

func TestChenSunadaBaseline(t *testing.T) {
	cs, err := NewChenSunada(ChenSunadaConfig{Words: 64, SubblockWords: 16, SpareBlocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewChenSunada(ChenSunadaConfig{Words: 64, SubblockWords: 13}); err == nil {
		t.Fatal("non-divisible geometry must be rejected")
	}
	// Two faults in subblock 0: repairable in place.
	cs.Register(1)
	cs.Register(5)
	// Duplicate registration is idempotent.
	cs.Register(5)
	if !cs.Resolve() || len(cs.DeadBlocks()) != 0 {
		t.Fatal("two faults per subblock should repair in place")
	}
	// Third fault kills subblock 0; the single spare block absorbs it.
	cs.Register(9)
	if !cs.Resolve() {
		t.Fatal("fault assembler should divert the dead block")
	}
	if db := cs.DeadBlocks(); len(db) != 1 || db[0] != 0 {
		t.Fatalf("dead blocks %v", db)
	}
	// A second dead subblock exceeds the spare blocks.
	cs.Register(17)
	cs.Register(21)
	cs.Register(25)
	if cs.Resolve() {
		t.Fatal("two dead blocks with one spare should fail")
	}
	// Sequential compare penalty grows with captured faults; the TLB
	// stays at one.
	if cs.CompareOps(1) != 2 || cs.CompareOps(40) != 1 {
		t.Fatalf("compare ops %d %d", cs.CompareOps(1), cs.CompareOps(40))
	}
	if TLBCompareOps() != 1 {
		t.Fatal("TLB parallel compare must be a single op")
	}
}

// Property: for random fault patterns within capacity, the controller
// always repairs, and the repaired RAM passes a verification march.
func TestQuickRepairWithinCapacity(t *testing.T) {
	f := func(seed int64, nRows uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		spares := 4
		arr := sram.MustNew(sram.Config{Words: 64, BPW: 4, BPC: 4, SpareRows: spares})
		n := int(nRows)%spares + 1 // 1..4 faulty rows
		rows := rng.Perm(arr.Config().Rows())[:n]
		for _, r := range rows {
			// One random stuck cell per chosen row.
			col := rng.Intn(arr.Config().Cols())
			kind := sram.SA0
			if rng.Intn(2) == 1 {
				kind = sram.SA1
			}
			if err := arr.Inject(sram.CellAddr{Row: r, Col: col}, sram.Fault{Kind: kind}); err != nil {
				return false
			}
		}
		ram := NewRAM(arr)
		out, err := NewController(ram).Run()
		if err != nil || !out.Repaired {
			return false
		}
		return march.Run(ram, march.IFA9(), march.JohnsonBackgrounds(4), 4).Pass()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: the TLB spare sequence is strictly increasing under any
// store pattern.
func TestQuickTLBStrictlyIncreasing(t *testing.T) {
	f := func(rows []uint8) bool {
		tlb := NewTLB(len(rows))
		for _, r := range rows {
			if _, err := tlb.Store(int(r)); err != nil {
				return false
			}
		}
		return tlb.StrictlyIncreasing()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
